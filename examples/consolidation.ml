(* Server consolidation: mixed workloads on one physical machine.

   The paper's §5.3 scenario: several 4-VCPU VMs share 8 PCPUs in
   work-conserving mode — two run high-throughput SPEC-rate workloads
   (no synchronization), two run parallel NAS benchmarks (barrier
   synchronization). We compare all three schedulers:

   - credit: concurrent VMs suffer from de-synchronized VCPUs;
   - con:    static coscheduling fixes them but taxes the throughput
             VMs whenever the concurrent VMs run, synchronizing or not;
   - asman:  coschedules only while the Monitoring Module sees
             over-threshold waits — concurrent VMs recover while the
             throughput VMs pay less than under CON.

     dune exec examples/consolidation.exe *)

open Asman

let vms config =
  let freq = Config.freq config in
  let scale = config.Config.scale in
  let cpu b = Sim_workloads.Speccpu.workload (Sim_workloads.Speccpu.params b ~freq ~scale) in
  let nas b = Sim_workloads.Nas.workload (Sim_workloads.Nas.params b ~freq ~scale) in
  [
    ("bzip2", cpu Sim_workloads.Speccpu.Bzip2);
    ("gcc", cpu Sim_workloads.Speccpu.Gcc);
    ("SP", nas Sim_workloads.Nas.SP);
    ("LU", nas Sim_workloads.Nas.LU);
  ]

let () =
  let config = Config.with_scale Config.default 0.1 in
  let names = List.map fst (vms config) in
  let results =
    List.map
      (fun sched ->
        let specs =
          List.map
            (fun (name, workload) ->
              { Scenario.vm_name = name; weight = 256; vcpus = 4;
                workload = Some workload })
            (vms config)
        in
        let scenario = Scenario.build config ~sched ~vms:specs in
        let metrics = Runner.run_rounds scenario ~rounds:3 ~max_sec:120. in
        ( Config.sched_name sched,
          List.map (fun name -> Runner.mean_round_sec metrics ~vm:name) names ))
      [ Config.Credit; Config.Asman; Config.Cosched_static ]
  in
  let headers = "VM" :: List.map fst results in
  let rows =
    List.mapi
      (fun i name ->
        name
        :: List.map
             (fun (_, times) -> Sim_stats.Table.fixed ~decimals:3 (List.nth times i))
             results)
      names
  in
  print_endline "Mean round time (simulated seconds) per VM:";
  print_string (Sim_stats.Table.render ~headers rows);
  let get sched name =
    let _, times = List.find (fun (s, _) -> s = sched) results in
    List.nth times (Option.get (List.find_index (( = ) name) names))
  in
  Printf.printf
    "\nLU: ASMan/Credit = %.2f, CON/Credit = %.2f (coscheduling helps)\n\
     bzip2: ASMan/Credit = %.2f, CON/Credit = %.2f (dynamic costs less)\n"
    (get "asman" "LU" /. get "credit" "LU")
    (get "con" "LU" /. get "credit" "LU")
    (get "asman" "bzip2" /. get "credit" "bzip2")
    (get "con" "bzip2" /. get "credit" "bzip2")
