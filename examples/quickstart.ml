(* Quickstart: the smallest end-to-end use of the library.

   One VM with 4 VCPUs runs the LU benchmark at a 22.2% VCPU online
   rate (weight 32 next to an idle weight-256 Dom0, strict cap). We run
   it once under the baseline Credit scheduler and once under ASMan,
   and print run time and spinlock statistics.

     dune exec examples/quickstart.exe *)

open Asman

let run sched =
  (* A small configuration: scale 0.1 shrinks the benchmark ~10x. *)
  let config = Config.with_scale Config.default 0.1 in
  let config = Config.with_work_conserving config false in
  let workload =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq:(Config.freq config)
         ~scale:config.Config.scale)
  in
  let scenario =
    Scenario.build config ~sched
      ~vms:
        [ { Scenario.vm_name = "V1"; weight = 32; vcpus = 4; workload = Some workload } ]
  in
  let metrics = Runner.run_rounds scenario ~rounds:1 ~max_sec:120. in
  let vm = Runner.vm_metrics metrics ~vm:"V1" in
  let monitor = Runner.monitor_of scenario ~vm:"V1" in
  let histogram = Sim_guest.Monitor.spin_histogram monitor in
  Printf.printf
    "%-6s  run time %.3f s   online rate %.3f (expected %.3f)\n\
    \        monitored waits: %d total, %d over 2^20 cycles, max 2^%d\n"
    (Config.sched_name sched)
    (Runner.first_round_sec metrics ~vm:"V1")
    vm.Runner.online_rate vm.Runner.expected_online
    (Sim_stats.Histogram.count histogram)
    (Sim_stats.Histogram.count_ge_pow2 histogram 20)
    (match Sim_stats.Histogram.max_value histogram with
    | Some v when v >= 1 -> Sim_engine.Units.log2_floor v
    | Some _ | None -> 0)

let () =
  print_endline "LU on a 4-VCPU VM at a 22.2% online rate:";
  run Config.Credit;
  run Config.Asman;
  print_endline
    "\nASMan detects the over-threshold spinlock waits that virtualization\n\
     induces and coschedules the VM's VCPUs, recovering close to the\n\
     fair-share run time (4.5x the 100% run)."
