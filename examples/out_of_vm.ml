(* Out-of-VM VCRD detection — the paper's §7 future work, working.

   The prototype's one intrusive requirement is the Monitoring Module
   inside the guest kernel ("It is still an open issue to monitor the
   VCRD of a VM from outside the VM", §5.4). This example runs LU at a
   22.2% online rate three ways:

   - credit:     the baseline, no detection;
   - asman:      the paper's prototype (guest hypercalls);
   - asman-oov:  detection from pause-loop exits alone — the hardware
                 tells the VMM a VCPU burned a full PLE window
                 busy-spinning, and the VMM runs its own Roth-Erev
                 estimator. The guest is COMPLETELY unmodified (we even
                 disable its VCRD reporting to prove it).

     dune exec examples/out_of_vm.exe *)

open Asman

let run sched ~report_vcrd =
  let config = Config.with_scale Config.default 0.1 in
  let gp = Config.guest_params config in
  let gp =
    {
      gp with
      Sim_guest.Kernel.monitor =
        { gp.Sim_guest.Kernel.monitor with Sim_guest.Monitor.report_vcrd };
    }
  in
  let config = { config with Config.guest_params = Some gp } in
  let workload =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq:(Config.freq config)
         ~scale:config.Config.scale)
  in
  let s =
    Scenario.build
      (Config.with_work_conserving config false)
      ~sched
      ~vms:
        [ { Scenario.vm_name = "V1"; weight = 32; vcpus = 4; workload = Some workload } ]
  in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:120. in
  let vm = Runner.vm_metrics m ~vm:"V1" in
  Printf.printf
    "%-10s run time %.3f s   hypercalls from guest: %-4s  PLE exits: %4d  \
     vcrd flips: %d\n"
    (Config.sched_name sched)
    (Runner.first_round_sec m ~vm:"V1")
    (if report_vcrd then "yes" else "none")
    (Sim_vmm.Vmm.ple_exits s.Scenario.vmm)
    vm.Runner.vcrd_transitions

let () =
  print_endline "LU at a 22.2% VCPU online rate:";
  run Config.Credit ~report_vcrd:false;
  run Config.Asman ~report_vcrd:true;
  run Config.Asman_oov ~report_vcrd:false;
  print_endline
    "\nasman-oov matches the in-VM prototype without any guest kernel\n\
     modification: the pause-loop-exit signal plus a VMM-side estimator\n\
     replace the Monitoring Module and the do_vcrd_op hypercall."
