(* Adversarial guests: a tick-dodging VM stealing CPU from honest
   tenants.

   A two-PCPU host runs one low-weight attacker VM whose guest
   computes for ~3/4 of the accounting-tick interval and then sleeps
   across the tick, next to three high-weight VMs running sustained
   CPU-bound work. Under Xen-style *sampled* accounting (the periodic
   tick debits a full quantum from whoever occupies the PCPU at the
   tick instant) the dodger is never the occupant when the bill
   arrives, keeps maximal credit — and with it strict dispatch
   priority — so it attains far more CPU than its weight entitles it
   to. Under span-exact *precise* accounting (the default) the same
   guest is billed for every cycle and stays inside its entitlement.

     dune exec examples/theft_attack.exe *)

open Asman

let window_sec = 1.0

let run accounting =
  let config =
    {
      Config.default with
      Config.topology = Sim_hw.Topology.make ~sockets:1 ~cores_per_socket:2;
      accounting;
    }
  in
  let slot_cycles = Sim_hw.Cpu_model.slot_cycles config.Config.cpu in
  let attacker = Sim_workloads.Attack.tick_dodge ~threads:1 ~slot_cycles () in
  let victim name =
    {
      Scenario.vm_name = name;
      weight = 512;
      vcpus = 2;
      workload =
        Some
          (Sim_workloads.Speccpu.workload
             (Sim_workloads.Speccpu.params Sim_workloads.Speccpu.Gcc
                ~freq:(Config.freq config) ~scale:config.Config.scale));
    }
  in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:
        ({
           Scenario.vm_name = "attacker";
           weight = 128;
           vcpus = 1;
           workload = Some attacker;
         }
        :: List.map victim [ "V1"; "V2"; "V3" ])
  in
  let m = Runner.run_window s ~sec:window_sec in
  Printf.printf "%s accounting:\n"
    (String.capitalize_ascii (Sim_vmm.Vmm.accounting_name accounting));
  List.iter
    (fun (vm : Runner.vm_metrics) ->
      let ratio =
        if vm.Runner.entitled_cycles <= 0 then nan
        else
          float_of_int vm.Runner.attained_cycles
          /. float_of_int vm.Runner.entitled_cycles
      in
      Printf.printf
        "  %-8s  attained/entitled %5.2fx  (online %.3f, entitled %.3f, \
         theft %d cycles)\n"
        vm.Runner.vm_name ratio vm.Runner.online_rate vm.Runner.expected_online
        vm.Runner.theft_cycles)
    m.Runner.vms

let () =
  print_endline
    "One tick-dodging attacker VM (weight 128) vs three sustained gcc VMs\n\
     (weight 512) on 2 PCPUs, Credit scheduler, work-conserving:\n";
  run Sim_vmm.Vmm.Sampled;
  print_newline ();
  run Sim_vmm.Vmm.Precise;
  print_endline
    "\nSampled accounting lets the dodger run beyond its entitlement by\n\
     sleeping across every debiting tick; precise accounting bills the\n\
     same guest span-exactly and contains it."
