(* The Roth-Erev duration estimator on synthetic localities.

   The paper's Algorithm 1 must guess how long each locality of
   synchronization lasts, knowing only when over-threshold spinlocks
   occur. This example generates a synthetic locality trace (AR(1)
   correlated durations, per the locality model of §4.2), feeds its
   events to the estimator and scores the resulting coscheduling
   windows: how much locality time they cover (avoiding
   under-coscheduling) and how much window time falls outside any
   locality (over-coscheduling overhead).

     dune exec examples/adaptive_learning.exe *)

open Sim_engine
open Sim_learn

let freq = Units.ghz_f 2.33

let slot = Units.cycles_of_ms freq 10

let score rng profile =
  let trace = Locality.generate rng profile ~n:400 in
  let estimator =
    Estimator.create (Estimator.default_params ~slot_cycles:slot)
      (Rng.split rng)
  in
  let windows =
    List.map
      (fun time -> (time, Estimator.on_adjusting_event estimator ~now:time))
      (Locality.event_times trace)
  in
  let hit, excess = Locality.coverage trace ~windows in
  (trace, estimator, hit, excess)

let () =
  let rng = Rng.create 7L in
  print_endline
    "locality profile                   coverage  over-cosched  chosen x";
  List.iter
    (fun (label, profile) ->
      let trace, estimator, hit, excess = score (Rng.split rng) profile in
      let chosen =
        match Estimator.last_estimate estimator with
        | Some x -> Printf.sprintf "%.0f ms" (Units.ms_of_cycles freq x)
        | None -> "-"
      in
      Printf.printf "%-34s %6.1f%%  %10.1f%%  %9s   (autocorr lag1 %.2f)\n"
        label (100. *. hit) (100. *. excess) chosen
        (Locality.autocorrelation trace ~lag:1))
    [
      ( "short bursts, long gaps",
        {
          Locality.mean_duration = 2. *. float_of_int slot;
          mean_gap = 20. *. float_of_int slot;
          correlation = 0.6;
          jitter_cv = 0.3;
        } );
      ( "default (4-slot localities)",
        Locality.default_profile ~slot_cycles:slot );
      ( "long, strongly correlated",
        {
          Locality.mean_duration = 12. *. float_of_int slot;
          mean_gap = 10. *. float_of_int slot;
          correlation = 0.9;
          jitter_cv = 0.2;
        } );
    ];
  print_endline
    "\nHigh coverage means the VCRD stays HIGH through the locality\n\
     (no residual over-threshold spinlocks); low over-coscheduling means\n\
     little wasted gang time — the trade-off of paper §3.1."
