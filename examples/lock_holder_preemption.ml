(* Lock-holder preemption, demonstrated on a synthetic lock storm.

   Four threads hammer one guest-kernel spinlock. On real hardware the
   critical section is microseconds, so waits stay tiny. When the VMM
   time-shares the VCPUs (online rate < 100%), a holder's VCPU can be
   descheduled mid-critical-section, leaving the other VCPUs spinning
   for entire scheduling periods: waits jump from ~2^10 to ~2^25+
   cycles — the paper's over-threshold spinlocks (Figures 1b and 2).

     dune exec examples/lock_holder_preemption.exe *)

open Asman

let storm config sched ~weight =
  let freq = Config.freq config in
  let workload =
    Sim_workloads.Synthetic.lock_storm ~threads:4 ~rounds:2000
      ~cs_cycles:(Sim_engine.Units.cycles_of_us freq 3)
      ~think_cycles:(Sim_engine.Units.cycles_of_us freq 60)
      ()
  in
  let scenario =
    Scenario.build
      (Config.with_work_conserving config false)
      ~sched
      ~vms:
        [ { Scenario.vm_name = "V1"; weight; vcpus = 4; workload = Some workload } ]
  in
  let _ = Runner.run_rounds scenario ~rounds:1 ~max_sec:120. in
  Runner.monitor_of scenario ~vm:"V1"

let describe monitor =
  let h = Sim_guest.Monitor.spin_histogram monitor in
  let ge k = Sim_stats.Histogram.count_ge_pow2 h k in
  Printf.printf
    "    %6d lock acquisitions; waits >=2^15: %3d  >=2^20: %3d  >=2^25: %3d  \
     (max 2^%d)\n"
    (Sim_stats.Histogram.count h)
    (ge 15) (ge 20) (ge 25)
    (match Sim_stats.Histogram.max_value h with
    | Some v when v >= 1 -> Sim_engine.Units.log2_floor v
    | Some _ | None -> 0)

let () =
  let config = Config.with_scale Config.default 1.0 in
  List.iter
    (fun (weight, rate) ->
      Printf.printf "online rate %s (weight %d):\n" rate weight;
      Printf.printf "  credit:\n";
      describe (storm config Config.Credit ~weight);
      Printf.printf "  asman:\n";
      describe (storm config Config.Asman ~weight))
    [ (256, "100%"); (64, "40%"); (32, "22.2%") ];
  print_endline
    "\nAt 100% no holder is ever preempted, so waits stay far below the\n\
     2^20-cycle threshold. At reduced online rates the Credit scheduler\n\
     preempts lock holders and waits explode; ASMan's Monitoring Module\n\
     detects them and coscheduling suppresses the tail."
