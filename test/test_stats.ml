(* Tests for histograms, summaries, series, tables and CSV. *)

open Sim_stats

(* ----- Histogram ----- *)

let test_hist_buckets () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 1; 2; 3; 1024; 1025; 2047; 2048 ];
  Alcotest.(check int) "count" 8 (Histogram.count h);
  Alcotest.(check int) "bucket 0 (values 0,1)" 2 (Histogram.bucket h 0);
  Alcotest.(check int) "bucket 1 (values 2,3)" 2 (Histogram.bucket h 1);
  Alcotest.(check int) "bucket 10" 3 (Histogram.bucket h 10);
  Alcotest.(check int) "bucket 11" 1 (Histogram.bucket h 11)

let test_hist_count_ge () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 100; 1024; 1_048_576; 40_000_000 ];
  Alcotest.(check int) ">=2^10" 3 (Histogram.count_ge_pow2 h 10);
  Alcotest.(check int) ">=2^20" 2 (Histogram.count_ge_pow2 h 20);
  Alcotest.(check int) ">=2^25" 1 (Histogram.count_ge_pow2 h 25);
  Alcotest.(check int) ">=2^30" 0 (Histogram.count_ge_pow2 h 30)

let test_hist_minmax_mean () =
  let h = Histogram.create () in
  Alcotest.(check bool) "empty min" true (Histogram.min_value h = None);
  List.iter (Histogram.add h) [ 5; 10; 15 ];
  Alcotest.(check bool) "min" true (Histogram.min_value h = Some 5);
  Alcotest.(check bool) "max" true (Histogram.max_value h = Some 15);
  Alcotest.(check (float 1e-9)) "mean" 10. (Histogram.mean h);
  Alcotest.(check int) "sum" 30 (Histogram.sum h)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 100 ];
  List.iter (Histogram.add b) [ 2_000; 3 ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "count" 4 (Histogram.count m);
  Alcotest.(check bool) "max" true (Histogram.max_value m = Some 2_000);
  Alcotest.(check int) "inputs untouched" 2 (Histogram.count a)

let test_hist_negative () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Histogram.add: negative sample") (fun () ->
      Histogram.add h (-1))

let prop_hist_total =
  QCheck.Test.make ~name:"histogram buckets sum to count"
    QCheck.(list (int_range 0 1_000_000))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let total = ref 0 in
      for k = 0 to 62 do
        total := !total + Histogram.bucket h k
      done;
      !total = List.length samples)

(* ----- Summary ----- *)

let test_summary_basics () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2. (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9. (Summary.max_value s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Summary.variance s))

let test_percentile () =
  let values = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "p0" 1. (Summary.percentile values 0.);
  Alcotest.(check (float 1e-9)) "p100" 4. (Summary.percentile values 1.);
  Alcotest.(check (float 1e-9)) "p50" 2.5 (Summary.percentile values 0.5);
  Alcotest.check_raises "empty"
    (Invalid_argument "Summary.percentile: empty array") (fun () ->
      ignore (Summary.percentile [||] 0.5))

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean lies within [min, max]"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.))
    (fun values ->
      let s = Summary.of_array (Array.of_list values) in
      Summary.mean s >= Summary.min_value s -. 1e-9
      && Summary.mean s <= Summary.max_value s +. 1e-9)

(* ----- Series ----- *)

let series_a =
  Series.make ~label:"a" ~x_name:"x" ~y_name:"y" [ (1., 10.); (2., 20.) ]

let test_series_access () =
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "points" [ (1., 10.); (2., 20.) ] (Series.points series_a);
  Alcotest.(check bool) "y_at hit" true (Series.y_at series_a 2. = Some 20.);
  Alcotest.(check bool) "y_at miss" true (Series.y_at series_a 3. = None)

let test_series_map_ratio () =
  let doubled = Series.map_y series_a ~f:(fun y -> y *. 2.) in
  Alcotest.(check bool) "map" true (Series.y_at doubled 1. = Some 20.);
  let r = Series.ratio doubled series_a in
  Alcotest.(check bool) "ratio" true (Series.y_at r 2. = Some 2.)

(* ----- Table ----- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let out = Table.render ~headers:[ "k"; "v" ] [ [ "a"; "1" ]; [ "b" ] ] in
  Alcotest.(check bool) "has header" true (contains_sub out "| k");
  Alcotest.(check bool) "has row a" true (contains_sub out "| a");
  (* Short rows are padded with an empty cell. *)
  Alcotest.(check bool) "pads short rows" true (contains_sub out "| b")

let test_table_fixed () =
  Alcotest.(check string) "two decimals" "3.14" (Table.fixed 3.14159);
  Alcotest.(check string) "nan" "-" (Table.fixed nan);
  Alcotest.(check string) "decimals" "2.7183" (Table.fixed ~decimals:4 2.71828)

let test_bar_chart () =
  let out = Table.bar_chart ~width:10 [ ("x", 10.); ("y", 5.) ] in
  Alcotest.(check bool) "x longer than y" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    let hashes s = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 s in
    match lines with
    | lx :: ly :: _ -> hashes lx = 10 && hashes ly = 5
    | _ -> false)

(* ----- CSV ----- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_of_series () =
  let rows = Csv.of_series [ series_a ] in
  Alcotest.(check int) "rows" 3 (List.length rows);
  Alcotest.(check (list string)) "header" [ "x"; "a" ] (List.hd rows)

let suite =
  [
    Alcotest.test_case "hist buckets" `Quick test_hist_buckets;
    Alcotest.test_case "hist count_ge" `Quick test_hist_count_ge;
    Alcotest.test_case "hist min/max/mean" `Quick test_hist_minmax_mean;
    Alcotest.test_case "hist merge" `Quick test_hist_merge;
    Alcotest.test_case "hist negative" `Quick test_hist_negative;
    QCheck_alcotest.to_alcotest prop_hist_total;
    Alcotest.test_case "summary basics" `Quick test_summary_basics;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "percentile" `Quick test_percentile;
    QCheck_alcotest.to_alcotest prop_mean_within_bounds;
    Alcotest.test_case "series access" `Quick test_series_access;
    Alcotest.test_case "series map/ratio" `Quick test_series_map_ratio;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table fixed" `Quick test_table_fixed;
    Alcotest.test_case "bar chart" `Quick test_bar_chart;
    Alcotest.test_case "csv escape" `Quick test_csv_escape;
    Alcotest.test_case "csv of series" `Quick test_csv_of_series;
  ]
