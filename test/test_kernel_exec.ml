(* Execution-semantics tests for the guest kernel: preemption-exact
   compute resumption, guest timeslicing, spin-then-block transitions,
   hooks, and error paths. *)

open Asman

let config = Config.with_scale (Config.with_seed Config.default 41L) 0.05

let freq = Config.freq config

let us n = Sim_engine.Units.cycles_of_us freq n
let ms n = Sim_engine.Units.cycles_of_ms freq n

let build ?(sched = Config.Credit) ?(weight = 256) ?(vcpus = 4)
    ?(work_conserving = false) workload =
  Scenario.build
    (Config.with_work_conserving config work_conserving)
    ~sched
    ~vms:[ { Scenario.vm_name = "V"; weight; vcpus; workload = Some workload } ]

let kernel_of s =
  match (Scenario.find_vm s "V").Scenario.kernel with
  | Some k -> k
  | None -> Alcotest.fail "kernel missing"

(* Compute work survives preemption exactly: at a 40% cap a pure
   compute thread's total online time equals its program's demand. *)
let test_preemption_exact_compute () =
  let chunk = ms 7 in
  let workload =
    Sim_workloads.Synthetic.compute_only ~threads:1 ~chunks:20
      ~chunk_cycles:chunk ()
  in
  let s = build ~weight:64 ~vcpus:1 workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:10. in
  let inst = Scenario.find_vm s "V" in
  let vcpu = inst.Scenario.domain.Sim_vmm.Domain.vcpus.(0) in
  let demand = 20 * chunk in
  let overhead_allowance = demand / 10 in
  Alcotest.(check bool)
    (Printf.sprintf "online %d ~ demand %d" vcpu.Sim_vmm.Vcpu.online_cycles demand)
    true
    (vcpu.Sim_vmm.Vcpu.online_cycles >= demand
    && vcpu.Sim_vmm.Vcpu.online_cycles < demand + overhead_allowance);
  Alcotest.(check int) "one round" 1 (Runner.vm_metrics m ~vm:"V").Runner.rounds

(* Two threads pinned to one VCPU must interleave via the guest
   timeslice and both finish. *)
let test_guest_timeslicing () =
  let program =
    Sim_guest.Program.make
      [ Sim_guest.Program.Repeat (10, [ Sim_guest.Program.Compute (ms 3) ]) ]
  in
  let workload =
    {
      Sim_workloads.Workload.name = "two-on-one";
      kind = Sim_workloads.Workload.Throughput;
      threads =
        [
          { Sim_workloads.Workload.affinity = 0; program; restart = false };
          { Sim_workloads.Workload.affinity = 0; program; restart = false };
        ];
      barriers = [];
      semaphores = [];
    }
  in
  let s = build ~vcpus:1 workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:10. in
  let runtime = Runner.first_round_sec m ~vm:"V" in
  (* 2 threads x 30 ms of work on one VCPU: ~60 ms total, and the
     round (= both threads done) completes near it. *)
  Alcotest.(check bool)
    (Printf.sprintf "both ran to completion (%.3f s)" runtime)
    true
    (runtime > 0.055 && runtime < 0.085);
  let k = kernel_of s in
  Alcotest.(check bool) "all finished" true (Sim_guest.Kernel.all_finished k)

(* A barrier waiter transitions Spin_barrier -> Blocked_barrier after
   the grace budget and its VCPU halts (stops burning credit). *)
let test_spin_then_block_transition () =
  let grace = ms 2 in
  let gp = { (Config.guest_params config) with Sim_guest.Kernel.spin_grace = grace } in
  let config = { config with Config.guest_params = Some gp } in
  let program_fast =
    Sim_guest.Program.make [ Sim_guest.Program.Barrier 0 ]
  in
  let program_slow =
    Sim_guest.Program.make
      [ Sim_guest.Program.Compute (ms 20); Sim_guest.Program.Barrier 0 ]
  in
  let workload =
    {
      Sim_workloads.Workload.name = "spin-block";
      kind = Sim_workloads.Workload.Concurrent;
      threads =
        [
          { Sim_workloads.Workload.affinity = 0; program = program_fast; restart = false };
          { Sim_workloads.Workload.affinity = 1; program = program_slow; restart = false };
        ];
      barriers = [ (0, 2) ];
      semaphores = [];
    }
  in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 2; workload = Some workload } ]
  in
  let engine = s.Scenario.engine in
  let inst = Scenario.find_vm s "V" in
  let fast_thread = List.hd inst.Scenario.threads in
  let observed_blocked = ref false in
  let rec watch () =
    (match fast_thread.Sim_guest.Thread.status with
    | Sim_guest.Thread.Blocked_barrier _ -> observed_blocked := true
    | _ -> ());
    ignore (Sim_engine.Engine.schedule_after engine ~delay:(ms 1) watch)
  in
  ignore (Sim_engine.Engine.schedule_after engine ~delay:0 watch);
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:5. in
  Alcotest.(check bool) "blocked after grace" true !observed_blocked;
  Alcotest.(check int) "completed" 1 (Runner.vm_metrics m ~vm:"V").Runner.rounds;
  (* The fast waiter slept rather than spinning 20 ms: its online time
     is far below the slow thread's compute. *)
  let fast_vcpu = inst.Scenario.domain.Sim_vmm.Domain.vcpus.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "waiter slept (online %.1f ms)"
       (Sim_engine.Units.ms_of_cycles freq fast_vcpu.Sim_vmm.Vcpu.online_cycles))
    true
    (fast_vcpu.Sim_vmm.Vcpu.online_cycles < ms 6)

let test_round_and_finished_hooks () =
  let workload =
    Sim_workloads.Synthetic.compute_only ~threads:2 ~chunks:2 ~chunk_cycles:(us 500) ()
  in
  let s = build ~vcpus:2 workload in
  let k = kernel_of s in
  let rounds = ref 0 and finished = ref 0 in
  Sim_guest.Kernel.set_round_hook k (fun _ ~round:_ ~duration ->
      if duration <= 0 then Alcotest.fail "non-positive duration";
      incr rounds);
  Sim_guest.Kernel.set_finished_hook k (fun _ -> incr finished);
  (* Drive the engine directly: Runner installs its own round hook. *)
  Sim_engine.Engine.run
    ~until:(Sim_engine.Units.cycles_of_sec_f freq 2.)
    s.Scenario.engine;
  Alcotest.(check int) "round hook per thread" 2 !rounds;
  Alcotest.(check int) "finished hook per thread" 2 !finished

let test_marks_reset () =
  let workload =
    Sim_workloads.Synthetic.lock_storm ~threads:2 ~rounds:50 ~cs_cycles:(us 1)
      ~think_cycles:(us 10) ()
  in
  let s = build ~vcpus:2 workload in
  let k = kernel_of s in
  let _ = Runner.run_rounds s ~rounds:1 ~max_sec:5. in
  Alcotest.(check int) "marks counted" 100 (Sim_guest.Kernel.total_marks k);
  Sim_guest.Kernel.reset_marks k;
  Alcotest.(check int) "marks reset" 0 (Sim_guest.Kernel.total_marks k)

let test_undeclared_objects_rejected () =
  let s = build (Sim_workloads.Synthetic.compute_only ~threads:1 ~chunks:1 ~chunk_cycles:100 ()) in
  let k = kernel_of s in
  let raised p =
    try
      ignore (Sim_guest.Kernel.add_thread k ~affinity:0 p);
      false
    with
    | Invalid_argument _ | Failure _ -> true
  in
  Alcotest.(check bool) "undeclared barrier" true
    (raised (Sim_guest.Program.make [ Sim_guest.Program.Barrier 9 ]));
  Alcotest.(check bool) "undeclared semaphore" true
    (raised (Sim_guest.Program.make [ Sim_guest.Program.Sem_wait 9 ]))

let test_duplicate_objects_rejected () =
  let s = build (Sim_workloads.Synthetic.barrier_loop ~threads:2 ~rounds:1 ~compute_cycles:(us 100) ~cv:0. ()) in
  let k = kernel_of s in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "duplicate barrier" true
    (raised (fun () -> Sim_guest.Kernel.add_barrier k ~id:0 ~parties:2));
  Sim_guest.Kernel.add_semaphore k ~id:5 ~init:1;
  Alcotest.(check bool) "duplicate semaphore" true
    (raised (fun () -> Sim_guest.Kernel.add_semaphore k ~id:5 ~init:1))

let test_lock_stats_listing () =
  let workload =
    Sim_workloads.Synthetic.barrier_loop ~threads:2 ~rounds:3
      ~compute_cycles:(us 200) ~cv:0.01 ()
  in
  let s = build ~vcpus:2 workload in
  let k = kernel_of s in
  let _ = Runner.run_rounds s ~rounds:1 ~max_sec:5. in
  (* The barrier's internal arrival lock shows up in lock_stats. *)
  let stats = Sim_guest.Kernel.lock_stats k in
  Alcotest.(check bool) "internal lock listed" true (stats <> []);
  let total =
    List.fold_left (fun acc (_, l) -> acc + Sim_guest.Spinlock.acquisitions l) 0 stats
  in
  (* 2 threads x 3 rounds of arrivals. *)
  Alcotest.(check int) "arrival acquisitions" 6 total

let test_total_spin_accounting () =
  let workload =
    Sim_workloads.Synthetic.barrier_loop ~threads:2 ~rounds:5
      ~compute_cycles:(ms 1) ~cv:0.3 ()
  in
  let s = build ~vcpus:2 workload in
  let k = kernel_of s in
  let _ = Runner.run_rounds s ~rounds:1 ~max_sec:5. in
  Alcotest.(check bool) "spin wall time accumulated" true
    (Sim_guest.Kernel.total_spin_cycles k > 0)

let test_semaphore_pipeline_order () =
  (* Producer posts N tokens; consumer must see them all: counts are
     conserved through the kernel path. *)
  let n = 20 in
  let producer =
    Sim_guest.Program.make
      [ Sim_guest.Program.Repeat
          (n, [ Sim_guest.Program.Compute (us 50); Sim_guest.Program.Sem_post 0 ]) ]
  in
  let consumer =
    Sim_guest.Program.make
      [ Sim_guest.Program.Repeat
          (n, [ Sim_guest.Program.Sem_wait 0; Sim_guest.Program.Mark ]) ]
  in
  let workload =
    {
      Sim_workloads.Workload.name = "pipeline";
      kind = Sim_workloads.Workload.Concurrent;
      threads =
        [
          { Sim_workloads.Workload.affinity = 0; program = producer; restart = false };
          { Sim_workloads.Workload.affinity = 1; program = consumer; restart = false };
        ];
      barriers = [];
      semaphores = [ (0, 0) ];
    }
  in
  let s = build ~vcpus:2 workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:5. in
  Alcotest.(check int) "completed" 1 (Runner.vm_metrics m ~vm:"V").Runner.rounds;
  Alcotest.(check int) "all tokens consumed" n
    (Sim_guest.Kernel.total_marks (kernel_of s))

let test_restart_rounds_progress () =
  let base =
    Sim_workloads.Synthetic.barrier_loop ~threads:2 ~rounds:2
      ~compute_cycles:(us 300) ~cv:0.01 ()
  in
  let workload =
    {
      base with
      Sim_workloads.Workload.threads =
        List.map
          (fun t -> { t with Sim_workloads.Workload.restart = true })
          base.Sim_workloads.Workload.threads;
    }
  in
  let s = build ~vcpus:2 workload in
  let _ = Runner.run_rounds s ~rounds:5 ~max_sec:5. in
  Alcotest.(check bool) "many rounds" true
    (Sim_guest.Kernel.min_rounds (kernel_of s) >= 5)

let suite =
  [
    Alcotest.test_case "preemption-exact compute" `Quick test_preemption_exact_compute;
    Alcotest.test_case "guest timeslicing" `Quick test_guest_timeslicing;
    Alcotest.test_case "spin-then-block" `Quick test_spin_then_block_transition;
    Alcotest.test_case "round/finished hooks" `Quick test_round_and_finished_hooks;
    Alcotest.test_case "marks reset" `Quick test_marks_reset;
    Alcotest.test_case "undeclared objects" `Quick test_undeclared_objects_rejected;
    Alcotest.test_case "duplicate objects" `Quick test_duplicate_objects_rejected;
    Alcotest.test_case "lock stats" `Quick test_lock_stats_listing;
    Alcotest.test_case "spin accounting" `Quick test_total_spin_accounting;
    Alcotest.test_case "semaphore pipeline" `Quick test_semaphore_pipeline_order;
    Alcotest.test_case "restart rounds" `Quick test_restart_rounds_progress;
  ]
