(* Tests for scenario building and the runner protocols. *)

open Asman

let config = Config.with_scale (Config.with_seed Config.default 3L) 0.05

let freq = Config.freq config

let tiny_workload () =
  Sim_workloads.Synthetic.compute_only ~threads:2 ~chunks:3
    ~chunk_cycles:(Sim_engine.Units.cycles_of_ms freq 2) ()

let test_build_creates_dom0 () =
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:
        [ { Scenario.vm_name = "V1"; weight = 256; vcpus = 4;
            workload = Some (tiny_workload ()) } ]
  in
  Alcotest.(check string) "dom0 name" "Domain-0" s.Scenario.dom0.Sim_vmm.Domain.name;
  Alcotest.(check int) "dom0 vcpus = pcpus" 8
    (Sim_vmm.Domain.vcpu_count s.Scenario.dom0);
  Alcotest.(check int) "dom0 weight" 256 s.Scenario.dom0.Sim_vmm.Domain.weight;
  Alcotest.(check int) "two domains total" 2
    (List.length (Sim_vmm.Vmm.domains s.Scenario.vmm))

let test_build_validation () =
  let raised f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true
    (raised (fun () -> Scenario.build config ~sched:Config.Credit ~vms:[]));
  Alcotest.(check bool) "bad weight" true
    (raised (fun () ->
         Scenario.build config ~sched:Config.Credit
           ~vms:[ { Scenario.vm_name = "x"; weight = 0; vcpus = 1; workload = None } ]))

let test_concurrent_marking () =
  let nas =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.EP ~freq ~scale:0.05)
  in
  let cpu =
    Sim_workloads.Speccpu.workload
      (Sim_workloads.Speccpu.params Sim_workloads.Speccpu.Gcc ~freq ~scale:0.05)
  in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:
        [
          { Scenario.vm_name = "par"; weight = 256; vcpus = 4; workload = Some nas };
          { Scenario.vm_name = "thr"; weight = 256; vcpus = 4; workload = Some cpu };
        ]
  in
  let par = Scenario.find_vm s "par" and thr = Scenario.find_vm s "thr" in
  Alcotest.(check bool) "NAS marked concurrent" true
    par.Scenario.domain.Sim_vmm.Domain.concurrent_type;
  Alcotest.(check bool) "SPEC rate not" false
    thr.Scenario.domain.Sim_vmm.Domain.concurrent_type

let test_idle_vm () =
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:
        [
          { Scenario.vm_name = "busy"; weight = 256; vcpus = 2;
            workload = Some (tiny_workload ()) };
          { Scenario.vm_name = "idle"; weight = 256; vcpus = 2; workload = None };
        ]
  in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:5. in
  let idle = Runner.vm_metrics m ~vm:"idle" in
  Alcotest.(check int) "idle VM does nothing" 0 idle.Runner.rounds;
  Alcotest.(check (float 1e-9)) "never online" 0. idle.Runner.online_rate

let test_find_vm () =
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:
        [ { Scenario.vm_name = "V1"; weight = 256; vcpus = 2;
            workload = Some (tiny_workload ()) } ]
  in
  Alcotest.(check string) "found" "V1"
    (Scenario.find_vm s "V1").Scenario.spec.Scenario.vm_name;
  let raised =
    try ignore (Scenario.find_vm s "nope"); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "missing raises" true raised

let test_vm_helper () =
  let spec = Scenario.vm ~name:"w" (tiny_workload ()) in
  Alcotest.(check int) "default weight" 256 spec.Scenario.weight;
  Alcotest.(check int) "default vcpus" 4 spec.Scenario.vcpus

let test_run_rounds_counts () =
  let workload =
    Sim_workloads.Synthetic.barrier_loop ~threads:2 ~rounds:5
      ~compute_cycles:(Sim_engine.Units.cycles_of_ms freq 1) ~cv:0.01 ()
  in
  (* restart=false: exactly one VM round is ever completed. *)
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 2; workload = Some workload } ]
  in
  let m = Runner.run_rounds s ~rounds:3 ~max_sec:1. in
  Alcotest.(check int) "one round only" 1 (Runner.vm_metrics m ~vm:"V").Runner.rounds

let test_run_rounds_multiple () =
  let base =
    Sim_workloads.Synthetic.barrier_loop ~threads:2 ~rounds:4
      ~compute_cycles:(Sim_engine.Units.cycles_of_ms freq 1) ~cv:0.01 ()
  in
  let workload =
    {
      base with
      Sim_workloads.Workload.threads =
        List.map
          (fun s -> { s with Sim_workloads.Workload.restart = true })
          base.Sim_workloads.Workload.threads;
    }
  in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 2; workload = Some workload } ]
  in
  let m = Runner.run_rounds s ~rounds:3 ~max_sec:5. in
  let vm = Runner.vm_metrics m ~vm:"V" in
  Alcotest.(check bool) "at least 3 rounds" true (vm.Runner.rounds >= 3);
  Alcotest.(check int) "durations recorded" vm.Runner.rounds
    (List.length vm.Runner.round_sec);
  List.iter
    (fun d -> if d <= 0. then Alcotest.fail "non-positive round duration")
    vm.Runner.round_sec;
  (* first and mean agree with the recorded list *)
  Alcotest.(check (float 1e-12)) "first" (List.hd vm.Runner.round_sec)
    (Runner.first_round_sec m ~vm:"V")

let test_run_window_duration () =
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 2;
               workload = Some (tiny_workload ()) } ]
  in
  let m = Runner.run_window s ~sec:0.25 in
  Alcotest.(check (float 1e-6)) "window length" 0.25 m.Runner.wall_sec

let test_run_window_marks () =
  let workload =
    Sim_workloads.Synthetic.lock_storm ~threads:2 ~rounds:1_000_000
      ~cs_cycles:(Sim_engine.Units.cycles_of_us freq 1)
      ~think_cycles:(Sim_engine.Units.cycles_of_us freq 50)
      ()
  in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 2; workload = Some workload } ]
  in
  let m1 = Runner.run_window s ~sec:0.1 in
  let m2 = Runner.run_window s ~sec:0.2 in
  let marks1 = (Runner.vm_metrics m1 ~vm:"V").Runner.marks in
  let marks2 = (Runner.vm_metrics m2 ~vm:"V").Runner.marks in
  Alcotest.(check bool) "throughput measured" true (marks1 > 0);
  (* Twice the window: roughly twice the marks (steady state). *)
  let ratio = float_of_int marks2 /. float_of_int marks1 in
  Alcotest.(check bool)
    (Printf.sprintf "scales with window (%.2f)" ratio)
    true
    (ratio > 1.6 && ratio < 2.4)

let test_invalid_runner_args () =
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 2;
               workload = Some (tiny_workload ()) } ]
  in
  let raised f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "rounds 0" true
    (raised (fun () -> Runner.run_rounds s ~rounds:0 ~max_sec:1.));
  Alcotest.(check bool) "sec 0" true
    (raised (fun () -> Runner.run_window s ~sec:0.))

let suite =
  [
    Alcotest.test_case "dom0" `Quick test_build_creates_dom0;
    Alcotest.test_case "validation" `Quick test_build_validation;
    Alcotest.test_case "concurrent marking" `Quick test_concurrent_marking;
    Alcotest.test_case "idle VM" `Quick test_idle_vm;
    Alcotest.test_case "find_vm" `Quick test_find_vm;
    Alcotest.test_case "vm helper" `Quick test_vm_helper;
    Alcotest.test_case "run_rounds single" `Quick test_run_rounds_counts;
    Alcotest.test_case "run_rounds multiple" `Quick test_run_rounds_multiple;
    Alcotest.test_case "run_window duration" `Quick test_run_window_duration;
    Alcotest.test_case "run_window marks" `Quick test_run_window_marks;
    Alcotest.test_case "invalid args" `Quick test_invalid_runner_args;
  ]
