(* Tests for time-unit conversions. *)

open Sim_engine

let freq = Units.ghz_f 2.33

let test_freq_khz () =
  Alcotest.(check int) "2.33 GHz in kHz" 2_330_000 (Units.freq_to_khz freq);
  Alcotest.(check int) "mhz" 1_000_000 (Units.freq_to_khz (Units.mhz 1_000));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Units.khz: frequency must be positive") (fun () ->
      ignore (Units.khz 0))

let test_cycle_conversions () =
  Alcotest.(check int) "1 ms" 2_330_000 (Units.cycles_of_ms freq 1);
  Alcotest.(check int) "10 ms" 23_300_000 (Units.cycles_of_ms freq 10);
  Alcotest.(check int) "1 us" 2_330 (Units.cycles_of_us freq 1);
  Alcotest.(check int) "1 s" 2_330_000_000 (Units.cycles_of_sec freq 1);
  Alcotest.(check int) "100 ns" 233 (Units.cycles_of_ns freq 100)

let test_fractional_seconds () =
  Alcotest.(check int) "0.5 s" 1_165_000_000 (Units.cycles_of_sec_f freq 0.5)

let test_roundtrip () =
  let cycles = 4_660_000 in
  Alcotest.(check (float 1e-9)) "sec_of_cycles" 0.002
    (Units.sec_of_cycles freq cycles);
  Alcotest.(check (float 1e-9)) "ms_of_cycles" 2. (Units.ms_of_cycles freq cycles);
  Alcotest.(check (float 1e-6)) "us_of_cycles" 2000.
    (Units.us_of_cycles freq cycles)

let test_pow2 () =
  Alcotest.(check int) "2^0" 1 (Units.pow2 0);
  Alcotest.(check int) "2^10" 1024 (Units.pow2 10);
  Alcotest.(check int) "2^20" 1_048_576 (Units.pow2 20);
  Alcotest.check_raises "negative"
    (Invalid_argument "Units.pow2: exponent out of range") (fun () ->
      ignore (Units.pow2 (-1)))

let test_log2_floor () =
  Alcotest.(check int) "1" 0 (Units.log2_floor 1);
  Alcotest.(check int) "2" 1 (Units.log2_floor 2);
  Alcotest.(check int) "3" 1 (Units.log2_floor 3);
  Alcotest.(check int) "1024" 10 (Units.log2_floor 1024);
  Alcotest.(check int) "1025" 10 (Units.log2_floor 1025);
  Alcotest.check_raises "zero"
    (Invalid_argument "Units.log2_floor: argument must be >= 1") (fun () ->
      ignore (Units.log2_floor 0))

let test_pp_cycles () =
  let show c = Format.asprintf "%a" (Units.pp_cycles freq) c in
  Alcotest.(check string) "seconds" "2.000 s" (show (Units.cycles_of_sec freq 2));
  Alcotest.(check string) "millis" "3.000 ms" (show (Units.cycles_of_ms freq 3));
  Alcotest.(check string) "micros" "5.000 us" (show (Units.cycles_of_us freq 5))

let prop_log2_floor_bounds =
  QCheck.Test.make ~name:"2^log2_floor n <= n < 2^(log2_floor n + 1)"
    QCheck.(int_range 1 (1 lsl 40))
    (fun n ->
      let k = Units.log2_floor n in
      Units.pow2 k <= n && (k = 61 || n < Units.pow2 (k + 1)))

let prop_ms_roundtrip =
  QCheck.Test.make ~name:"ms -> cycles -> ms roundtrip"
    QCheck.(int_range 1 100_000)
    (fun ms ->
      let back = Units.ms_of_cycles freq (Units.cycles_of_ms freq ms) in
      abs_float (back -. float_of_int ms) < 1e-6)

let suite =
  [
    Alcotest.test_case "freq" `Quick test_freq_khz;
    Alcotest.test_case "cycle conversions" `Quick test_cycle_conversions;
    Alcotest.test_case "fractional seconds" `Quick test_fractional_seconds;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "pow2" `Quick test_pow2;
    Alcotest.test_case "log2_floor" `Quick test_log2_floor;
    Alcotest.test_case "pp_cycles" `Quick test_pp_cycles;
    QCheck_alcotest.to_alcotest prop_log2_floor_bounds;
    QCheck_alcotest.to_alcotest prop_ms_roundtrip;
  ]
