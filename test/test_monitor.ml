(* Tests for the Monitoring Module: recording, thresholds, VCRD
   window management through the hypercall. *)

open Asman

let freq = Config.freq Config.default

let make_env () =
  (* A minimal stack: machine + vmm + one 2-VCPU domain, no guest
     kernel — we drive the monitor directly. *)
  let engine = Sim_engine.Engine.create ~seed:2L () in
  let machine =
    Sim_hw.Machine.create engine Config.default.Config.cpu
      Config.default.Config.topology
  in
  let vmm = Sim_vmm.Vmm.create machine ~sched:Sim_vmm.Sched_credit.make in
  let domain = Sim_vmm.Vmm.create_domain vmm ~name:"V" ~weight:256 ~vcpus:2 () in
  let hypercall = Sim_vmm.Hypercall.create vmm in
  let params =
    Sim_guest.Monitor.default_params
      ~slot_cycles:(Sim_hw.Cpu_model.slot_cycles Config.default.Config.cpu)
  in
  let monitor =
    Sim_guest.Monitor.create params ~engine ~hypercall ~domain
      ~rng:(Sim_engine.Rng.create 3L)
  in
  (engine, vmm, domain, hypercall, monitor)

let test_default_threshold () =
  let _, _, _, _, monitor = make_env () in
  Alcotest.(check int) "2^20" 1_048_576
    (Sim_guest.Monitor.threshold_cycles monitor)

let test_records_histogram_and_trace () =
  let _, _, _, _, monitor = make_env () in
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:1 ~wait:0;
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:1 ~wait:500;
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:2 ~wait:5_000;
  let h = Sim_guest.Monitor.spin_histogram monitor in
  Alcotest.(check int) "all recorded" 3 (Sim_stats.Histogram.count h);
  (* Trace keeps only waits >= 2^10. *)
  Alcotest.(check int) "trace filtered" 1
    (List.length (Sim_guest.Monitor.trace monitor));
  Alcotest.(check int) "no over-threshold" 0
    (Sim_guest.Monitor.over_threshold_count monitor)

let test_over_threshold_raises_vcrd () =
  let _, _, domain, hypercall, monitor = make_env () in
  Alcotest.(check bool) "low before" true (domain.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.Low);
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:7 ~wait:2_000_000;
  Alcotest.(check bool) "high after" true
    (domain.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High);
  Alcotest.(check int) "one adjusting event" 1
    (Sim_guest.Monitor.adjusting_events monitor);
  Alcotest.(check int) "hypercall counted" 1
    (Sim_vmm.Hypercall.stats_for hypercall domain).Sim_vmm.Hypercall.to_high

let test_window_closes_after_online_budget () =
  let engine, vmm, domain, _, monitor = make_env () in
  Sim_vmm.Vmm.start vmm;
  (* Give the domain runnable VCPUs so it consumes online time. *)
  Array.iter (fun v -> Sim_vmm.Vmm.vcpu_wake vmm v) domain.Sim_vmm.Domain.vcpus;
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:7 ~wait:2_000_000;
  Alcotest.(check bool) "high" true (domain.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High);
  (* The longest candidate is 16 slots of online time per VCPU; with
     both VCPUs always online that is at most ~16 slots of wall time.
     Run for 40 slots to be safe. *)
  let slot = Sim_hw.Cpu_model.slot_cycles Config.default.Config.cpu in
  Sim_engine.Engine.run ~until:(40 * slot) engine;
  Alcotest.(check bool) "low after window" true
    (domain.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.Low)

let test_retrigger_extends_window () =
  let engine, vmm, domain, _, monitor = make_env () in
  Sim_vmm.Vmm.start vmm;
  Array.iter (fun v -> Sim_vmm.Vmm.vcpu_wake vmm v) domain.Sim_vmm.Domain.vcpus;
  let slot = Sim_hw.Cpu_model.slot_cycles Config.default.Config.cpu in
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:7 ~wait:2_000_000;
  (* Re-trigger well inside even the smallest window (slot/2 of wall
     time with both VCPUs online): VCRD must stay HIGH throughout. *)
  for i = 1 to 20 do
    Sim_engine.Engine.run ~until:(i * slot / 8) engine;
    Alcotest.(check bool) "still high" true
      (domain.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High);
    Sim_guest.Monitor.record_spin_wait monitor ~lock_id:7 ~wait:2_000_000
  done;
  Alcotest.(check int) "21 adjusting events" 21
    (Sim_guest.Monitor.adjusting_events monitor)

let test_report_disabled () =
  let engine = Sim_engine.Engine.create () in
  let machine =
    Sim_hw.Machine.create engine Config.default.Config.cpu
      Config.default.Config.topology
  in
  let vmm = Sim_vmm.Vmm.create machine ~sched:Sim_vmm.Sched_credit.make in
  let domain = Sim_vmm.Vmm.create_domain vmm ~name:"V" ~weight:256 ~vcpus:2 () in
  let hypercall = Sim_vmm.Hypercall.create vmm in
  let params =
    {
      (Sim_guest.Monitor.default_params
         ~slot_cycles:(Sim_hw.Cpu_model.slot_cycles Config.default.Config.cpu))
      with
      Sim_guest.Monitor.report_vcrd = false;
    }
  in
  let monitor =
    Sim_guest.Monitor.create params ~engine ~hypercall ~domain
      ~rng:(Sim_engine.Rng.create 3L)
  in
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:7 ~wait:2_000_000;
  Alcotest.(check bool) "vcrd untouched" true
    (domain.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.Low);
  Alcotest.(check int) "but still counted" 1
    (Sim_guest.Monitor.over_threshold_count monitor)

let test_reset_window () =
  let _, _, _, _, monitor = make_env () in
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:1 ~wait:5_000;
  Sim_guest.Monitor.record_sem_wait monitor ~wait:100;
  Sim_guest.Monitor.reset_window monitor;
  Alcotest.(check int) "spin cleared" 0
    (Sim_stats.Histogram.count (Sim_guest.Monitor.spin_histogram monitor));
  Alcotest.(check int) "sem cleared" 0
    (Sim_stats.Histogram.count (Sim_guest.Monitor.sem_histogram monitor));
  Alcotest.(check int) "trace cleared" 0
    (List.length (Sim_guest.Monitor.trace monitor))

let test_trace_window_filter () =
  let engine, _, _, _, monitor = make_env () in
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:1 ~wait:5_000;
  ignore (Sim_engine.Engine.schedule_at engine ~time:1_000 (fun () ->
      Sim_guest.Monitor.record_spin_wait monitor ~lock_id:1 ~wait:6_000));
  Sim_engine.Engine.run engine;
  Alcotest.(check int) "window [500,2000]" 1
    (List.length (Sim_guest.Monitor.trace_in_window monitor ~from_:500 ~until:2_000))

let suite =
  [
    Alcotest.test_case "threshold" `Quick test_default_threshold;
    Alcotest.test_case "histogram and trace" `Quick test_records_histogram_and_trace;
    Alcotest.test_case "over-threshold raises vcrd" `Quick
      test_over_threshold_raises_vcrd;
    Alcotest.test_case "window closes" `Quick test_window_closes_after_online_budget;
    Alcotest.test_case "retrigger extends" `Quick test_retrigger_extends_window;
    Alcotest.test_case "report disabled" `Quick test_report_disabled;
    Alcotest.test_case "reset window" `Quick test_reset_window;
    Alcotest.test_case "trace window filter" `Quick test_trace_window_filter;
  ]
