(* Unit and property tests for the binary min-heap. *)

let pop_all h =
  let rec go acc =
    match Sim_engine.Heap.pop h with
    | None -> List.rev acc
    | Some (k, s, v) -> go ((k, s, v) :: acc)
  in
  go []

let test_empty () =
  let h = Sim_engine.Heap.create () in
  Alcotest.(check int) "length" 0 (Sim_engine.Heap.length h);
  Alcotest.(check bool) "is_empty" true (Sim_engine.Heap.is_empty h);
  Alcotest.(check bool) "peek" true (Sim_engine.Heap.peek h = None);
  Alcotest.(check bool) "pop" true (Sim_engine.Heap.pop h = None)

let test_ordering () =
  let h = Sim_engine.Heap.create () in
  List.iteri
    (fun i k -> Sim_engine.Heap.add h ~key:k ~seq:i (string_of_int k))
    [ 5; 3; 9; 1; 7; 3 ];
  let keys = List.map (fun (k, _, _) -> k) (pop_all h) in
  Alcotest.(check (list int)) "sorted" [ 1; 3; 3; 5; 7; 9 ] keys

let test_fifo_ties () =
  let h = Sim_engine.Heap.create () in
  for i = 0 to 9 do
    Sim_engine.Heap.add h ~key:42 ~seq:i i
  done;
  let seqs = List.map (fun (_, s, _) -> s) (pop_all h) in
  Alcotest.(check (list int)) "fifo on equal keys" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] seqs

let test_peek_does_not_remove () =
  let h = Sim_engine.Heap.create () in
  Sim_engine.Heap.add h ~key:1 ~seq:0 "a";
  (match Sim_engine.Heap.peek h with
  | Some (1, 0, "a") -> ()
  | Some _ | None -> Alcotest.fail "bad peek");
  Alcotest.(check int) "still there" 1 (Sim_engine.Heap.length h)

let test_clear () =
  let h = Sim_engine.Heap.create () in
  for i = 0 to 99 do
    Sim_engine.Heap.add h ~key:i ~seq:i i
  done;
  Sim_engine.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Sim_engine.Heap.length h);
  (* Reusable after clear. *)
  Sim_engine.Heap.add h ~key:7 ~seq:0 7;
  Alcotest.(check int) "reusable" 1 (Sim_engine.Heap.length h)

let test_fold () =
  let h = Sim_engine.Heap.create () in
  List.iteri (fun i k -> Sim_engine.Heap.add h ~key:k ~seq:i k) [ 4; 2; 6 ];
  let total = Sim_engine.Heap.fold h ~init:0 ~f:( + ) in
  Alcotest.(check int) "fold sum" 12 total

let test_growth () =
  let h = Sim_engine.Heap.create () in
  for i = 1000 downto 1 do
    Sim_engine.Heap.add h ~key:i ~seq:(1000 - i) i
  done;
  Alcotest.(check int) "length" 1000 (Sim_engine.Heap.length h);
  let keys = List.map (fun (k, _, _) -> k) (pop_all h) in
  Alcotest.(check (list int)) "sorted 1..1000" (List.init 1000 (fun i -> i + 1)) keys

let prop_extraction_sorted =
  QCheck.Test.make ~name:"heap extraction is sorted"
    QCheck.(list (pair small_int small_int))
    (fun pairs ->
      let h = Sim_engine.Heap.create () in
      List.iteri
        (fun i (k, v) -> Sim_engine.Heap.add h ~key:k ~seq:i v)
        pairs;
      let out = List.map (fun (k, s, _) -> (k, s)) (pop_all h) in
      out = List.sort compare out)

let prop_length =
  QCheck.Test.make ~name:"heap length tracks insertions"
    QCheck.(list small_int)
    (fun keys ->
      let h = Sim_engine.Heap.create () in
      List.iteri (fun i k -> Sim_engine.Heap.add h ~key:k ~seq:i ()) keys;
      Sim_engine.Heap.length h = List.length keys)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "fold" `Quick test_fold;
    Alcotest.test_case "growth" `Quick test_growth;
    QCheck_alcotest.to_alcotest prop_extraction_sorted;
    QCheck_alcotest.to_alcotest prop_length;
  ]
