(* Cross-cutting property tests: random workloads through the whole
   stack must terminate, preserve invariants and conserve work.

   Workloads come from SimCheck's seeded generator
   ([Sim_check.Gen.finite_workload]), which draws over compute loops,
   lock storms, barrier phases, semaphore ping-pong and random
   lock/compute programs — wider than the random-program-only
   generator this file used to hardcode. The old generator's exact
   shapes survive as [test/corpus/legacy-random-*.json]. *)

open Asman

let freq = Config.freq Config.default

let run_random_scenario ~seed ~sched ~nvms =
  let rng = Sim_engine.Rng.create seed in
  let config =
    Config.with_work_conserving
      (Config.with_scale (Config.with_seed Config.default seed) 0.05)
      false
  in
  let descs =
    List.init nvms (fun i ->
        {
          Scenario.vd_name = Printf.sprintf "V%d" i;
          vd_weight = 64 * (i + 1);
          vd_vcpus = 4;
          vd_workload = Some (Sim_check.Gen.finite_workload rng);
        })
  in
  let s = Scenario.of_descs config ~sched descs in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:30. in
  (s, m, descs)

let all_rounds_complete (m : Runner.metrics) descs =
  List.for_all
    (fun (d : Scenario.vm_desc) ->
      (Runner.vm_metrics m ~vm:d.Scenario.vd_name).Runner.rounds = 1)
    descs

let prop_random_workloads_terminate =
  QCheck.Test.make ~count:15
    ~name:"random generated workloads terminate and hold invariants"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let s, m, descs =
        run_random_scenario ~seed:(Int64.of_int seed) ~sched:Config.Credit
          ~nvms:1
      in
      all_rounds_complete m descs
      && Sim_vmm.Vmm.check_invariants s.Scenario.vmm = Ok ())

let prop_random_workloads_terminate_asman =
  QCheck.Test.make ~count:10
    ~name:"random generated workloads terminate under asman"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let s, m, descs =
        run_random_scenario ~seed:(Int64.of_int seed) ~sched:Config.Asman
          ~nvms:2
      in
      all_rounds_complete m descs
      && Sim_vmm.Vmm.check_invariants s.Scenario.vmm = Ok ())

(* Work conservation: total online time across a run can never exceed
   wall time x PCPUs, and a busy system should not leave PCPUs idle
   while UNDER work is queued (checked in aggregate: online + idle =
   capacity). *)
let prop_capacity_conserved =
  QCheck.Test.make ~count:10 ~name:"online + idle = capacity"
    QCheck.(int_range 1 500)
    (fun seed ->
      let config =
        Config.with_scale (Config.with_seed Config.default (Int64.of_int seed)) 0.05
      in
      let workload =
        Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:50
          ~chunk_cycles:(Sim_engine.Units.cycles_of_ms freq 3) ()
      in
      let s =
        Scenario.build config ~sched:Config.Credit
          ~vms:
            [ { Scenario.vm_name = "V"; weight = 256; vcpus = 4; workload = Some workload } ]
      in
      let m = Runner.run_window s ~sec:0.3 in
      let vm = Runner.vm_metrics m ~vm:"V" in
      let idle = Sim_vmm.Vmm.idle_fraction s.Scenario.vmm in
      (* 4 of 8 PCPUs busy with the VM; dom0 idle: fractions add up. *)
      let online_frac = vm.Runner.online_rate *. 4. /. 8. in
      abs_float (online_frac +. idle -. 1.) < 0.05)

(* Determinism across the stack: identical seeds give identical
   simulations (event counts are a strong fingerprint). *)
let prop_deterministic =
  QCheck.Test.make ~count:8 ~name:"same seed, same simulation"
    QCheck.(int_range 1 100)
    (fun seed ->
      let fingerprint () =
        let s, m, _ =
          run_random_scenario ~seed:(Int64.of_int seed) ~sched:Config.Asman
            ~nvms:1
        in
        (m.Runner.events_fired, m.Runner.ctx_switches,
         Sim_engine.Engine.now s.Scenario.engine)
      in
      fingerprint () = fingerprint ())

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_workloads_terminate;
    QCheck_alcotest.to_alcotest prop_random_workloads_terminate_asman;
    QCheck_alcotest.to_alcotest prop_capacity_conserved;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]
