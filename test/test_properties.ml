(* Cross-cutting property tests: random workloads through the whole
   stack must terminate, preserve invariants and conserve work. *)

open Asman

let freq = Config.freq Config.default

let run_random_scenario ~seed ~sched ~threads ~ops =
  let rng = Sim_engine.Rng.create seed in
  let config = Config.with_scale (Config.with_seed Config.default seed) 0.05 in
  let programs =
    List.init threads (fun _ ->
        Sim_workloads.Synthetic.random_program rng ~ops ~nlocks:2
          ~max_compute:(Sim_engine.Units.cycles_of_us freq 500))
  in
  let workload =
    {
      Sim_workloads.Workload.name = "random";
      kind = Sim_workloads.Workload.Concurrent;
      threads =
        List.mapi
          (fun i program -> { Sim_workloads.Workload.affinity = i; program; restart = false })
          programs;
      barriers = [];
      semaphores = [];
    }
  in
  let s =
    Scenario.build
      (Config.with_work_conserving config false)
      ~sched
      ~vms:[ { Scenario.vm_name = "V"; weight = 64; vcpus = 4; workload = Some workload } ]
  in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:30. in
  (s, m)

let prop_random_programs_terminate =
  QCheck.Test.make ~count:15 ~name:"random lock programs terminate and hold invariants"
    QCheck.(pair (int_range 1 1000) (int_range 1 25))
    (fun (seed, ops) ->
      let s, m =
        run_random_scenario ~seed:(Int64.of_int seed) ~sched:Config.Credit
          ~threads:4 ~ops
      in
      let vm = Runner.vm_metrics m ~vm:"V" in
      vm.Runner.rounds = 1
      && Sim_vmm.Vmm.check_invariants s.Scenario.vmm = Ok ())

let prop_random_programs_terminate_asman =
  QCheck.Test.make ~count:10 ~name:"random programs terminate under asman"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let s, m =
        run_random_scenario ~seed:(Int64.of_int seed) ~sched:Config.Asman
          ~threads:4 ~ops:15
      in
      let vm = Runner.vm_metrics m ~vm:"V" in
      vm.Runner.rounds = 1
      && Sim_vmm.Vmm.check_invariants s.Scenario.vmm = Ok ())

(* Work conservation: total online time across a run can never exceed
   wall time x PCPUs, and a busy system should not leave PCPUs idle
   while UNDER work is queued (checked in aggregate: online + idle =
   capacity). *)
let prop_capacity_conserved =
  QCheck.Test.make ~count:10 ~name:"online + idle = capacity"
    QCheck.(int_range 1 500)
    (fun seed ->
      let config =
        Config.with_scale (Config.with_seed Config.default (Int64.of_int seed)) 0.05
      in
      let workload =
        Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:50
          ~chunk_cycles:(Sim_engine.Units.cycles_of_ms freq 3) ()
      in
      let s =
        Scenario.build config ~sched:Config.Credit
          ~vms:
            [ { Scenario.vm_name = "V"; weight = 256; vcpus = 4; workload = Some workload } ]
      in
      let m = Runner.run_window s ~sec:0.3 in
      let vm = Runner.vm_metrics m ~vm:"V" in
      let idle = Sim_vmm.Vmm.idle_fraction s.Scenario.vmm in
      (* 4 of 8 PCPUs busy with the VM; dom0 idle: fractions add up. *)
      let online_frac = vm.Runner.online_rate *. 4. /. 8. in
      abs_float (online_frac +. idle -. 1.) < 0.05)

(* Determinism across the stack: identical seeds give identical
   simulations (event counts are a strong fingerprint). *)
let prop_deterministic =
  QCheck.Test.make ~count:8 ~name:"same seed, same simulation"
    QCheck.(int_range 1 100)
    (fun seed ->
      let fingerprint () =
        let s, m =
          run_random_scenario ~seed:(Int64.of_int seed) ~sched:Config.Asman
            ~threads:3 ~ops:10
        in
        (m.Runner.events_fired, m.Runner.ctx_switches,
         Sim_engine.Engine.now s.Scenario.engine)
      in
      fingerprint () = fingerprint ())

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_programs_terminate;
    QCheck_alcotest.to_alcotest prop_random_programs_terminate_asman;
    QCheck_alcotest.to_alcotest prop_capacity_conserved;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]
