(* Tests for the deterministic splitmix64 RNG. *)

open Sim_engine

let test_determinism () =
  let a = Rng.create 123L and b = Rng.create 123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let different = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then different := true
  done;
  Alcotest.(check bool) "streams differ" true !different

let test_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  let a = Rng.next_int64 child and b = Rng.next_int64 parent in
  Alcotest.(check bool) "child differs from parent" true (a <> b)

let test_copy () =
  let a = Rng.create 9L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of range"
  done

let test_int_invalid () =
  let rng = Rng.create 7L in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.create 11L in
  for _ = 1 to 500 do
    let v = Rng.int_in rng ~lo:(-3) ~hi:3 in
    if v < -3 || v > 3 then Alcotest.fail "out of range"
  done

let test_uniform_range () =
  let rng = Rng.create 21L in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng in
    if u < 0. || u >= 1. then Alcotest.fail "uniform out of [0,1)"
  done

let test_uniform_mean () =
  let rng = Rng.create 33L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.uniform rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create 55L in
  let n = 20_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian rng ~mu:3. ~sigma:2. in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~3" true (abs_float (mean -. 3.) < 0.1);
  Alcotest.(check bool) "var ~4" true (abs_float (var -. 4.) < 0.3)

let test_exponential_mean () =
  let rng = Rng.create 77L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:5.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~5" true (abs_float (mean -. 5.) < 0.25)

let test_lognormal () =
  let rng = Rng.create 88L in
  Alcotest.(check (float 0.)) "cv=0 is exact" 100.
    (Rng.lognormal_cv rng ~mean:100. ~cv:0.);
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.lognormal_cv rng ~mean:100. ~cv:0.3
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "arithmetic mean preserved" true
    (abs_float (mean -. 100.) < 3.)

let test_shuffle_is_permutation () =
  let rng = Rng.create 99L in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_pick () =
  let rng = Rng.create 13L in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    let v = Rng.pick rng arr in
    if not (Array.exists (( = ) v) arr) then Alcotest.fail "pick outside array"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let prop_int_in_range =
  QCheck.Test.make ~name:"int_in respects bounds"
    QCheck.(triple int64 small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create seed in
      let v = Rng.int_in rng ~lo ~hi in
      lo <= v && v <= hi)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split" `Quick test_split_independent;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid" `Quick test_int_invalid;
    Alcotest.test_case "int_in" `Quick test_int_in;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "lognormal" `Quick test_lognormal;
    Alcotest.test_case "shuffle" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "pick" `Quick test_pick;
    QCheck_alcotest.to_alcotest prop_int_in_range;
  ]
