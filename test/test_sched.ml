(* Scheduler-level tests: work stealing, coscheduling mechanics,
   relocation (Algorithm 3), the cap and the gang behaviours. *)

open Asman

let config = Config.with_scale (Config.with_seed Config.default 21L) 0.05

let freq = Config.freq config

let ms n = Sim_engine.Units.cycles_of_ms freq n

let nas b =
  Sim_workloads.Nas.workload (Sim_workloads.Nas.params b ~freq ~scale:0.05)

(* ----- load balancing ----- *)

let test_work_stealing_spreads_load () =
  (* 4 compute threads on a VM whose VCPUs start on neighbouring
     PCPUs: stealing must keep all four online essentially always. *)
  let workload =
    Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:200
      ~chunk_cycles:(ms 5) ()
  in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 4; workload = Some workload } ]
  in
  let m = Runner.run_window s ~sec:0.5 in
  let vm = Runner.vm_metrics m ~vm:"V" in
  Alcotest.(check bool)
    (Printf.sprintf "all online (%.3f)" vm.Runner.online_rate)
    true (vm.Runner.online_rate > 0.95)

let test_more_vcpus_than_pcpus () =
  (* A 16-VCPU VM on 8 PCPUs: online rate ~0.5, no crashes. *)
  let workload =
    Sim_workloads.Synthetic.compute_only ~threads:16 ~chunks:100
      ~chunk_cycles:(ms 5) ()
  in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:[ { Scenario.vm_name = "V"; weight = 256; vcpus = 16; workload = Some workload } ]
  in
  let m = Runner.run_window s ~sec:0.5 in
  let vm = Runner.vm_metrics m ~vm:"V" in
  Alcotest.(check bool)
    (Printf.sprintf "half online (%.3f)" vm.Runner.online_rate)
    true
    (vm.Runner.online_rate > 0.4 && vm.Runner.online_rate < 0.6);
  Alcotest.(check bool) "invariants" true
    (Sim_vmm.Vmm.check_invariants s.Scenario.vmm = Ok ())

(* ----- the cap (non-work-conserving) ----- *)

let test_cap_is_enforced_per_scheduler () =
  List.iter
    (fun sched ->
      let s =
        Scenario.build
          (Config.with_work_conserving config false)
          ~sched
          ~vms:
            [ { Scenario.vm_name = "V"; weight = 32; vcpus = 4;
                workload = Some (nas Sim_workloads.Nas.LU) } ]
      in
      let m = Runner.run_window s ~sec:2. in
      let vm = Runner.vm_metrics m ~vm:"V" in
      Alcotest.(check bool)
        (Printf.sprintf "%s capped near 0.222 (%.3f)" (Config.sched_name sched)
           vm.Runner.online_rate)
        true
        (vm.Runner.online_rate < 0.30))
    [ Config.Credit; Config.Asman; Config.Cosched_static ]

(* ----- coscheduling mechanics ----- *)

let high_scenario sched =
  (* An LU VM at a low online rate: VCRD goes HIGH early and often. *)
  Scenario.build
    (Config.with_work_conserving config false)
    ~sched
    ~vms:
      [ { Scenario.vm_name = "V"; weight = 64; vcpus = 4;
          workload = Some (nas Sim_workloads.Nas.LU) } ]

let test_asman_sends_ipis_credit_does_not () =
  let count sched =
    let s = high_scenario sched in
    let m = Runner.run_window s ~sec:1.5 in
    m.Runner.ipis
  in
  Alcotest.(check int) "credit sends none" 0 (count Config.Credit);
  Alcotest.(check bool) "asman sends some" true (count Config.Asman > 0)

let test_relocation_distinct_pcpus () =
  (* While VCRD is HIGH, the domain's Ready VCPUs must sit in distinct
     run queues (Algorithm 3, lines 8-15). Sample during a run. *)
  let s = high_scenario Config.Asman in
  let inst = Scenario.find_vm s "V" in
  let dom = inst.Scenario.domain in
  let violations = ref 0 and samples = ref 0 in
  let rec check () =
    (if dom.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High then begin
       incr samples;
       let homes =
         Array.to_list dom.Sim_vmm.Domain.vcpus
         |> List.filter Sim_vmm.Vcpu.is_ready
         |> List.map (fun v -> v.Sim_vmm.Vcpu.home)
       in
       if List.length (List.sort_uniq compare homes) <> List.length homes then
         incr violations
     end);
    ignore (Sim_engine.Engine.schedule_after s.Scenario.engine ~delay:(ms 3) check)
  in
  ignore (Sim_engine.Engine.schedule_after s.Scenario.engine ~delay:0 check);
  let _ = Runner.run_window s ~sec:1.5 in
  Alcotest.(check bool) "sampled HIGH state" true (!samples > 0);
  Alcotest.(check int) "ready siblings on distinct pcpus" 0 !violations

let test_boost_cleared_on_low () =
  let s = high_scenario Config.Asman in
  let inst = Scenario.find_vm s "V" in
  let dom = inst.Scenario.domain in
  let violations = ref 0 in
  let rec check () =
    (if dom.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.Low then
       Array.iter
         (fun (v : Sim_vmm.Vcpu.t) ->
           if v.Sim_vmm.Vcpu.boosted && Sim_vmm.Vcpu.is_ready v then
             incr violations)
         dom.Sim_vmm.Domain.vcpus);
    ignore (Sim_engine.Engine.schedule_after s.Scenario.engine ~delay:(ms 5) check)
  in
  ignore (Sim_engine.Engine.schedule_after s.Scenario.engine ~delay:0 check);
  let _ = Runner.run_window s ~sec:1.5 in
  Alcotest.(check int) "no stale boosts while LOW" 0 !violations

let test_static_cosched_ignores_vcrd () =
  (* CON gang-schedules concurrent-typed VMs even when monitoring is
     disabled (no VCRD reports at all). *)
  let quiet =
    let p = Config.guest_params config in
    {
      p with
      Sim_guest.Kernel.monitor =
        { p.Sim_guest.Kernel.monitor with Sim_guest.Monitor.report_vcrd = false };
    }
  in
  let config_quiet = { config with Config.guest_params = Some quiet } in
  let s =
    Scenario.build
      (Config.with_work_conserving config_quiet false)
      ~sched:Config.Cosched_static
      ~vms:
        [ { Scenario.vm_name = "V"; weight = 64; vcpus = 4;
            workload = Some (nas Sim_workloads.Nas.LU) } ]
  in
  let m = Runner.run_window s ~sec:1.0 in
  Alcotest.(check bool) "still coschedules (ipis)" true (m.Runner.ipis > 0);
  let vm = Runner.vm_metrics m ~vm:"V" in
  Alcotest.(check int) "no vcrd flips" 0 vm.Runner.vcrd_transitions

let test_gang_improves_barrier_workload () =
  (* Direct mechanism check on a pure barrier loop at 40%: the gang
     schedulers beat the Credit baseline. *)
  let time sched =
    let workload =
      Sim_workloads.Synthetic.barrier_loop ~threads:4 ~rounds:60
        ~compute_cycles:(ms 2) ~cv:0.005 ()
    in
    let s =
      Scenario.build
        (Config.with_work_conserving config false)
        ~sched
        ~vms:[ { Scenario.vm_name = "V"; weight = 64; vcpus = 4; workload = Some workload } ]
    in
    let m = Runner.run_rounds s ~rounds:1 ~max_sec:30. in
    Runner.first_round_sec m ~vm:"V"
  in
  let credit = time Config.Credit in
  let con = time Config.Cosched_static in
  Alcotest.(check bool)
    (Printf.sprintf "static gang faster (%.3f vs %.3f)" con credit)
    true (con < credit)

let test_hypercall_stats () =
  let s = high_scenario Config.Asman in
  let inst = Scenario.find_vm s "V" in
  let _ = Runner.run_window s ~sec:1.0 in
  match inst.Scenario.kernel with
  | Some k ->
    let hc = Sim_guest.Kernel.hypercall k in
    let stats = Sim_vmm.Hypercall.stats_for hc inst.Scenario.domain in
    Alcotest.(check bool) "to_high counted" true (stats.Sim_vmm.Hypercall.to_high > 0);
    Alcotest.(check bool) "total >= to_high" true
      (Sim_vmm.Hypercall.total_calls hc >= stats.Sim_vmm.Hypercall.to_high)
  | None -> Alcotest.fail "no kernel"

let suite =
  [
    Alcotest.test_case "work stealing" `Quick test_work_stealing_spreads_load;
    Alcotest.test_case "overcommit" `Quick test_more_vcpus_than_pcpus;
    Alcotest.test_case "cap enforced" `Slow test_cap_is_enforced_per_scheduler;
    Alcotest.test_case "ipis only from gangs" `Quick
      test_asman_sends_ipis_credit_does_not;
    Alcotest.test_case "relocation distinct" `Quick test_relocation_distinct_pcpus;
    Alcotest.test_case "boost cleared on low" `Quick test_boost_cleared_on_low;
    Alcotest.test_case "static ignores vcrd" `Quick test_static_cosched_ignores_vcrd;
    Alcotest.test_case "gang beats credit on barriers" `Slow
      test_gang_improves_barrier_workload;
    Alcotest.test_case "hypercall stats" `Quick test_hypercall_stats;
  ]
