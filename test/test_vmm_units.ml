(* Unit tests for VMM building blocks: VCPU, Domain (Equations 1-2),
   Runqueue ordering and Credit accounting (Algorithm 3). *)

open Sim_vmm

let mk_vcpu ?(domain_id = 0) ?(id = 0) ?(index = 0) () =
  Vcpu.make ~id ~domain_id ~index ~home:0

let mk_domain ?(id = 0) ?(weight = 256) ?(vcpus = 4) () =
  let arr =
    Array.init vcpus (fun index -> Vcpu.make ~id:index ~domain_id:id ~index ~home:index)
  in
  Domain.make ~id ~name:(Printf.sprintf "dom%d" id) ~weight ~vcpus:arr ()

(* ----- Vcpu ----- *)

let test_vcpu_initial () =
  let v = mk_vcpu () in
  Alcotest.(check bool) "blocked" true (Vcpu.is_blocked v);
  Alcotest.(check int) "credit" 0 v.Vcpu.credit;
  Alcotest.(check bool) "eligible" true (Vcpu.eligible v)

let test_vcpu_eligibility () =
  let v = mk_vcpu () in
  v.Vcpu.parked <- true;
  Alcotest.(check bool) "parked not eligible" false (Vcpu.eligible v);
  v.Vcpu.boosted <- true;
  Alcotest.(check bool) "boost overrides parked" true (Vcpu.eligible v)

let test_vcpu_states () =
  let v = mk_vcpu () in
  v.Vcpu.state <- Vcpu.Running 3;
  Alcotest.(check bool) "running" true (Vcpu.is_running v);
  Alcotest.(check bool) "running_on" true (Vcpu.running_on v = Some 3);
  v.Vcpu.state <- Vcpu.Ready;
  Alcotest.(check bool) "ready" true (Vcpu.is_ready v);
  Alcotest.(check bool) "no pcpu" true (Vcpu.running_on v = None)

(* ----- Domain: Equations 1 and 2 ----- *)

let test_weight_proportion () =
  let d0 = mk_domain ~id:0 ~weight:256 () in
  let d1 = mk_domain ~id:1 ~weight:128 () in
  let all = [ d0; d1 ] in
  Alcotest.(check (float 1e-9)) "eq 1 d0" (256. /. 384.)
    (Domain.weight_proportion d0 ~all);
  Alcotest.(check (float 1e-9)) "eq 1 d1" (128. /. 384.)
    (Domain.weight_proportion d1 ~all)

(* The paper's setup: Dom0 with weight 256 and V1 with 4 VCPUs on 8
   PCPUs; weights 256/128/64/32 must give 100/66.7/40/22.2%. *)
let test_expected_online_rate_paper_values () =
  List.iter
    (fun (weight, expected) ->
      let dom0 = mk_domain ~id:0 ~weight:256 ~vcpus:8 () in
      let v1 = mk_domain ~id:1 ~weight ~vcpus:4 () in
      let rate = Domain.expected_online_rate v1 ~all:[ dom0; v1 ] ~pcpus:8 in
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "weight %d" weight)
        expected rate)
    [ (256, 1.0); (128, 0.6667); (64, 0.4); (32, 0.2222) ]

let test_online_rate_capped_at_one () =
  let d = mk_domain ~id:0 ~weight:256 ~vcpus:1 () in
  Alcotest.(check (float 1e-9)) "capped" 1.
    (Domain.expected_online_rate d ~all:[ d ] ~pcpus:8)

let test_domain_validation () =
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero weight" true
    (raised (fun () -> ignore (mk_domain ~weight:0 ())));
  Alcotest.(check bool) "foreign vcpu" true
    (raised (fun () ->
         let v = Vcpu.make ~id:0 ~domain_id:99 ~index:0 ~home:0 in
         ignore (Domain.make ~id:0 ~name:"x" ~weight:1 ~vcpus:[| v |] ())))

let test_vcrd_accounting () =
  let d = mk_domain () in
  Alcotest.(check bool) "starts low" true (d.Domain.vcrd = Domain.Low);
  Alcotest.(check bool) "low->high changes" true
    (Domain.set_vcrd d ~now:100 Domain.High);
  Alcotest.(check bool) "high->high no change" false
    (Domain.set_vcrd d ~now:200 Domain.High);
  Alcotest.(check bool) "high->low changes" true
    (Domain.set_vcrd d ~now:350 Domain.Low);
  Alcotest.(check int) "transitions" 1 d.Domain.vcrd_transitions;
  Alcotest.(check int) "high cycles" 250 d.Domain.high_cycles

(* ----- Runqueue ----- *)

let test_runqueue_basics () =
  let rq = Runqueue.create ~pcpu:2 in
  Alcotest.(check bool) "empty" true (Runqueue.is_empty rq);
  let v = mk_vcpu () in
  v.Vcpu.state <- Vcpu.Ready;
  Runqueue.insert rq v;
  Alcotest.(check int) "home updated" 2 v.Vcpu.home;
  Alcotest.(check bool) "mem" true (Runqueue.mem rq v);
  Alcotest.(check int) "length" 1 (Runqueue.length rq);
  Runqueue.remove rq v;
  Alcotest.(check bool) "removed" false (Runqueue.mem rq v)

let test_runqueue_rejects () =
  let rq = Runqueue.create ~pcpu:0 in
  let v = mk_vcpu () in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "insert blocked" true
    (raised (fun () -> Runqueue.insert rq v));
  v.Vcpu.state <- Vcpu.Ready;
  Runqueue.insert rq v;
  Alcotest.(check bool) "double insert" true
    (raised (fun () -> Runqueue.insert rq v));
  let w = mk_vcpu ~id:1 () in
  w.Vcpu.state <- Vcpu.Ready;
  Alcotest.(check bool) "remove absent" true
    (raised (fun () -> Runqueue.remove rq w))

let ready ?(credit = 0) ?(boosted = false) ?(parked = false) id =
  let v = mk_vcpu ~id () in
  v.Vcpu.state <- Vcpu.Ready;
  v.Vcpu.credit <- credit;
  v.Vcpu.boosted <- boosted;
  v.Vcpu.parked <- parked;
  v

let test_head_order () =
  let rq = Runqueue.create ~pcpu:0 in
  let a = ready ~credit:100 0 in
  let b = ready ~credit:300 1 in
  let c = ready ~credit:200 ~boosted:true 2 in
  List.iter (Runqueue.insert rq) [ a; b; c ];
  (match Runqueue.head rq with
  | Some h -> Alcotest.(check int) "boost first" 2 h.Vcpu.id
  | None -> Alcotest.fail "no head");
  c.Vcpu.boosted <- false;
  match Runqueue.head rq with
  | Some h -> Alcotest.(check int) "max credit" 1 h.Vcpu.id
  | None -> Alcotest.fail "no head"

let test_head_skips_parked () =
  let rq = Runqueue.create ~pcpu:0 in
  let a = ready ~credit:500 ~parked:true 0 in
  let b = ready ~credit:10 1 in
  List.iter (Runqueue.insert rq) [ a; b ];
  (match Runqueue.head rq with
  | Some h -> Alcotest.(check int) "unparked wins" 1 h.Vcpu.id
  | None -> Alcotest.fail "no head");
  a.Vcpu.boosted <- true;
  match Runqueue.head rq with
  | Some h -> Alcotest.(check int) "boosted parked eligible" 0 h.Vcpu.id
  | None -> Alcotest.fail "no head"

let test_head_under () =
  let rq = Runqueue.create ~pcpu:0 in
  let a = ready ~credit:(-5) 0 in
  let b = ready ~credit:7 1 in
  List.iter (Runqueue.insert rq) [ a; b ];
  (match Runqueue.head_under rq with
  | Some h -> Alcotest.(check int) "under" 1 h.Vcpu.id
  | None -> Alcotest.fail "no head");
  Runqueue.remove rq b;
  Alcotest.(check bool) "no under" true (Runqueue.head_under rq = None);
  Alcotest.(check bool) "head still over" true (Runqueue.head rq != None)

let test_fifo_ties () =
  let rq = Runqueue.create ~pcpu:0 in
  let a = ready ~credit:50 0 in
  let b = ready ~credit:50 1 in
  List.iter (Runqueue.insert rq) [ a; b ];
  match Runqueue.head rq with
  | Some h -> Alcotest.(check int) "first inserted wins ties" 0 h.Vcpu.id
  | None -> Alcotest.fail "no head"

let test_find_domain () =
  let rq = Runqueue.create ~pcpu:0 in
  let a = ready 0 in
  let b = ready 1 in
  b.Vcpu.state <- Vcpu.Ready;
  List.iter (Runqueue.insert rq) [ a; b ];
  Alcotest.(check bool) "has domain 0" true (Runqueue.has_domain rq ~domain_id:0);
  Alcotest.(check bool) "no domain 9" false (Runqueue.has_domain rq ~domain_id:9);
  Alcotest.(check int) "find" 2 (List.length (Runqueue.find_domain rq ~domain_id:0))

(* ----- Credit ----- *)

let test_burn () =
  let slot = 1_000_000 in
  Alcotest.(check int) "full slot" 1000
    (Credit.burn ~credit_unit:1000 ~slot_cycles:slot ~run_cycles:slot);
  Alcotest.(check int) "half slot" 500
    (Credit.burn ~credit_unit:1000 ~slot_cycles:slot ~run_cycles:(slot / 2));
  Alcotest.(check int) "zero" 0
    (Credit.burn ~credit_unit:1000 ~slot_cycles:slot ~run_cycles:0);
  let raised =
    try ignore (Credit.burn ~credit_unit:1000 ~slot_cycles:slot ~run_cycles:(slot + 1)); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "overrun raises" true raised

let test_assign_shares () =
  let d0 = mk_domain ~id:0 ~weight:256 ~vcpus:8 () in
  let d1 = mk_domain ~id:1 ~weight:256 ~vcpus:4 () in
  Credit.assign ~domains:[ d0; d1 ] ~pcpus:8 ~slots_per_period:3
    ~credit_unit:1000 ~work_conserving:true;
  (* total = 8 * 1000 * 3 = 24000; each domain gets half. *)
  Alcotest.(check int) "d0 per vcpu" (12_000 / 8) d0.Domain.vcpus.(0).Vcpu.credit;
  Alcotest.(check int) "d1 per vcpu" (12_000 / 4) d1.Domain.vcpus.(0).Vcpu.credit

let test_assign_cap () =
  let d = mk_domain ~id:0 ~weight:256 ~vcpus:1 () in
  for _ = 1 to 10 do
    Credit.assign ~domains:[ d ] ~pcpus:8 ~slots_per_period:3 ~credit_unit:1000
      ~work_conserving:true
  done;
  Alcotest.(check int) "capped" (Credit.cap ~credit_unit:1000 ~slots_per_period:3)
    d.Domain.vcpus.(0).Vcpu.credit

let test_assign_parking () =
  let d = mk_domain ~id:0 ~weight:256 ~vcpus:1 () in
  d.Domain.vcpus.(0).Vcpu.credit <- -5_000;
  Credit.assign ~domains:[ d ] ~pcpus:1 ~slots_per_period:3 ~credit_unit:1000
    ~work_conserving:false;
  Alcotest.(check bool) "still parked (negative)" true d.Domain.vcpus.(0).Vcpu.parked;
  Credit.assign ~domains:[ d ] ~pcpus:1 ~slots_per_period:3 ~credit_unit:1000
    ~work_conserving:false;
  Alcotest.(check bool) "unparked once positive" false
    d.Domain.vcpus.(0).Vcpu.parked

let test_assign_wc_never_parks () =
  let d = mk_domain ~id:0 ~weight:256 ~vcpus:1 () in
  d.Domain.vcpus.(0).Vcpu.credit <- -50_000;
  Credit.assign ~domains:[ d ] ~pcpus:1 ~slots_per_period:3 ~credit_unit:1000
    ~work_conserving:true;
  Alcotest.(check bool) "not parked in WC" false d.Domain.vcpus.(0).Vcpu.parked

let prop_assign_proportional =
  QCheck.Test.make ~name:"credit split proportional to weights"
    QCheck.(pair (int_range 1 1024) (int_range 1 1024))
    (fun (w0, w1) ->
      let d0 = mk_domain ~id:0 ~weight:w0 ~vcpus:2 () in
      let d1 = mk_domain ~id:1 ~weight:w1 ~vcpus:2 () in
      Credit.assign ~domains:[ d0; d1 ] ~pcpus:4 ~slots_per_period:3
        ~credit_unit:1000 ~work_conserving:true;
      let c0 = d0.Domain.vcpus.(0).Vcpu.credit * 2 in
      let c1 = d1.Domain.vcpus.(0).Vcpu.credit * 2 in
      (* Integer rounding: allow a small absolute slack. *)
      abs ((c0 * w1) - (c1 * w0)) <= 4 * (w0 + w1))

let suite =
  [
    Alcotest.test_case "vcpu initial" `Quick test_vcpu_initial;
    Alcotest.test_case "vcpu eligibility" `Quick test_vcpu_eligibility;
    Alcotest.test_case "vcpu states" `Quick test_vcpu_states;
    Alcotest.test_case "eq1 weight proportion" `Quick test_weight_proportion;
    Alcotest.test_case "eq2 paper online rates" `Quick
      test_expected_online_rate_paper_values;
    Alcotest.test_case "online rate cap" `Quick test_online_rate_capped_at_one;
    Alcotest.test_case "domain validation" `Quick test_domain_validation;
    Alcotest.test_case "vcrd accounting" `Quick test_vcrd_accounting;
    Alcotest.test_case "runqueue basics" `Quick test_runqueue_basics;
    Alcotest.test_case "runqueue rejects" `Quick test_runqueue_rejects;
    Alcotest.test_case "head order" `Quick test_head_order;
    Alcotest.test_case "head skips parked" `Quick test_head_skips_parked;
    Alcotest.test_case "head under" `Quick test_head_under;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "find domain" `Quick test_find_domain;
    Alcotest.test_case "burn" `Quick test_burn;
    Alcotest.test_case "assign shares" `Quick test_assign_shares;
    Alcotest.test_case "assign cap" `Quick test_assign_cap;
    Alcotest.test_case "assign parking" `Quick test_assign_parking;
    Alcotest.test_case "assign wc" `Quick test_assign_wc_never_parks;
    QCheck_alcotest.to_alcotest prop_assign_proportional;
  ]
