(* Model-checking property tests: drive the synchronization primitives
   with random operation sequences against simple reference models, and
   exercise the report layer. *)

open Sim_guest

let mk_thread id =
  Thread.make ~id ~affinity:0 ~restart:false ~rng:(Sim_engine.Rng.create 1L)
    (Program.make [ Program.Compute 1 ])

(* ----- spinlock vs a reference model -----

   Random sequences of {try_acquire, enqueue, release, grant, abort}
   must keep the lock's view consistent with a trivial model: at most
   one owner; a waiter never owns; grants only to queued waiters. *)

let prop_spinlock_model =
  QCheck.Test.make ~count:200 ~name:"spinlock random-op model"
    QCheck.(pair int64 (list (int_range 0 4)))
    (fun (seed, ops) ->
      let rng = Sim_engine.Rng.create seed in
      let lock = Spinlock.create ~id:0 in
      let threads = Array.init 4 mk_thread in
      let owner = ref None and waiting = ref [] in
      let now = ref 0 in
      let ok = ref true in
      let check_consistent () =
        (match (Spinlock.owner lock, !owner) with
        | Some a, Some b when a == b -> ()
        | None, None -> ()
        | _ -> ok := false);
        if Spinlock.waiter_count lock <> List.length !waiting then ok := false
      in
      List.iter
        (fun op ->
          incr now;
          let th = threads.(Sim_engine.Rng.int rng 4) in
          match op with
          | 0 ->
            (* try_acquire: must succeed iff free and unreserved *)
            let free = !owner = None && not (Spinlock.is_reserved lock) in
            let got = Spinlock.try_acquire lock th ~now:!now in
            if got <> free then ok := false;
            if got then owner := Some th
          | 1 ->
            (* enqueue if legal *)
            let is_owner = match !owner with Some o -> o == th | None -> false in
            let waits = List.exists (fun w -> w == th) !waiting in
            if (not is_owner) && not waits then begin
              Spinlock.enqueue_waiter lock th ~now:!now;
              waiting := !waiting @ [ th ]
            end
          | 2 -> (
            (* release if owner *)
            match !owner with
            | Some o when o == th ->
              Spinlock.release lock th;
              owner := None
            | Some _ | None -> ())
          | 3 -> (
            (* reserve+grant the earliest waiter if possible *)
            match Spinlock.pick_online_waiter lock ~online:(fun _ -> true) with
            | Some w ->
              Spinlock.reserve_for lock w;
              ignore (Spinlock.complete_grant lock w ~now:!now);
              owner := Some w;
              waiting := List.filter (fun x -> x != w) !waiting
            | None -> ())
          | _ -> (
            (* reserve+abort: state must be unchanged *)
            match Spinlock.pick_online_waiter lock ~online:(fun _ -> true) with
            | Some w ->
              Spinlock.reserve_for lock w;
              Spinlock.abort_grant lock w
            | None -> ());
          check_consistent ())
        ops;
      !ok)

(* ----- barrier under random arrival orders ----- *)

let prop_barrier_random_arrivals =
  QCheck.Test.make ~count:100 ~name:"barrier crossings under random arrivals"
    QCheck.(pair (int_range 1 6) (int_range 1 20))
    (fun (parties, rounds) ->
      let b = Barrier.create ~id:0 ~parties in
      let lasts = ref 0 in
      for round = 1 to rounds do
        for arrival = 1 to parties do
          match Barrier.arrive b ~now:((round * 100) + arrival) with
          | `Last ->
            incr lasts;
            if arrival <> parties then raise Exit
          | `Wait gen -> if gen <> round - 1 then raise Exit
        done
      done;
      !lasts = rounds
      && Barrier.crossings b = rounds
      && Barrier.generation b = rounds)

(* ----- semaphore conservation ----- *)

let prop_semaphore_conservation =
  QCheck.Test.make ~count:200 ~name:"semaphore tokens are conserved"
    QCheck.(pair (int_range 0 5) (list bool))
    (fun (init, ops) ->
      let s = Semaphore.create ~id:0 ~init in
      let next_id = ref 0 in
      let outstanding = ref 0 (* waits granted *) and posts = ref 0 in
      List.iter
        (fun is_post ->
          if is_post then begin
            incr posts;
            match Semaphore.post s with
            | Some _ -> incr outstanding
            | None -> ()
          end
          else if Semaphore.try_wait s then incr outstanding
          else begin
            incr next_id;
            Semaphore.enqueue_waiter s (mk_thread !next_id) ~now:!next_id
          end)
        ops;
      (* tokens in = init + posts; tokens out = grants + current count;
         queued waiters hold no token. *)
      init + !posts = !outstanding + Semaphore.count s)

(* ----- estimator coverage on synthetic localities ----- *)

let test_estimator_covers_persistent_locality () =
  (* A workload that triggers right after every window closes must end
     up with near-continuous coverage (the under-coscheduling rule). *)
  let freq = Sim_engine.Units.ghz_f 2.33 in
  let slot = Sim_engine.Units.cycles_of_ms freq 10 in
  let est =
    Sim_learn.Estimator.create
      (Sim_learn.Estimator.default_params ~slot_cycles:slot)
      (Sim_engine.Rng.create 9L)
  in
  let time = ref 0 in
  let windows = ref [] in
  for _ = 1 to 80 do
    let x = Sim_learn.Estimator.on_adjusting_event est ~now:!time in
    windows := (!time, x) :: !windows;
    time := !time + x + (slot / 10)
  done;
  (* Total gap time between windows is the slot/10 slack per event. *)
  let total = !time in
  let covered =
    List.fold_left (fun acc (_, x) -> acc + x) 0 !windows
  in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f" (float_of_int covered /. float_of_int total))
    true
    (float_of_int covered /. float_of_int total > 0.85)

(* ----- report layer ----- *)

let test_trace_csv () =
  let entries =
    [
      { Sim_guest.Monitor.time = 100; wait = 2048; lock_id = 3 };
      { Sim_guest.Monitor.time = 200; wait = 0; lock_id = -1001 };
    ]
  in
  let csv = Asman.Report.trace_csv entries in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + rows" 3 (List.length lines);
  Alcotest.(check string) "header" "time_cycles,wait_cycles,log2_wait,lock_id"
    (List.hd lines);
  Alcotest.(check string) "row" "100,2048,11,3" (List.nth lines 1);
  Alcotest.(check string) "zero wait row" "200,0,0,-1001" (List.nth lines 2)

let test_summary_line () =
  match Asman.Experiments.find "fig7" with
  | None -> Alcotest.fail "fig7 missing"
  | Some e ->
    let outcome =
      { Asman.Experiments.series = []; expected = []; notes = [ "n" ] }
    in
    let line = Asman.Report.summary_line e outcome in
    Alcotest.(check bool) "mentions id" true
      (String.length line > 4 && String.sub line 0 4 = "fig7")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_spinlock_model;
    QCheck_alcotest.to_alcotest prop_barrier_random_arrivals;
    QCheck_alcotest.to_alcotest prop_semaphore_conservation;
    Alcotest.test_case "estimator coverage" `Quick
      test_estimator_covers_persistent_locality;
    Alcotest.test_case "trace csv" `Quick test_trace_csv;
    Alcotest.test_case "summary line" `Quick test_summary_line;
  ]
