(* Differential tests: the timing-wheel event queue against the
   binary-heap oracle. Both backends must produce the exact same
   (time, seq) pop sequence for any schedule/cancel script, and whole
   simulations must be bit-identical across backends. *)

open Sim_engine

(* ----- script interpreter -----

   A script is a list of operations driven against one backend; we
   record the (time, tag) sequence of fired events and compare across
   backends. Operations reference previously returned handles by
   index, so the same script is replayable on either backend. *)

type op =
  | Schedule of int (* delay from current time *)
  | Cancel of int (* cancel the [i mod live]-th outstanding handle *)
  | Pop
  | Pop_until of int (* pop with limit = now + delta *)

let run_script kind ops =
  let q = Equeue.create kind in
  let handles = ref [] in
  let fired = ref [] in
  let now = ref 0 in
  let tag = ref 0 in
  let pop ?limit () =
    match Equeue.pop ?limit q with
    | Equeue.Event (time, action) ->
      now := time;
      action ()
    | Equeue.Beyond -> (match limit with Some l -> now := max !now l | None -> ())
    | Equeue.Empty -> ()
  in
  List.iter
    (fun op ->
      match op with
      | Schedule delay ->
        let id = !tag in
        incr tag;
        let h =
          Equeue.schedule q ~time:(!now + delay) (fun () ->
              fired := (!now, id) :: !fired)
        in
        handles := h :: !handles
      | Cancel i -> begin
        match !handles with
        | [] -> ()
        | hs ->
          let h = List.nth hs (i mod List.length hs) in
          ignore (Equeue.cancel q h)
      end
      | Pop -> pop ()
      | Pop_until delta -> pop ~limit:(!now + delta) ())
    ops;
  (* Drain the queue to the end. *)
  let rec drain () =
    match Equeue.pop q with
    | Equeue.Event (time, action) ->
      now := time;
      action ();
      drain ()
    | Equeue.Beyond | Equeue.Empty -> ()
  in
  drain ();
  List.rev !fired

let check_script ops =
  let wheel = run_script Equeue.Wheel_queue ops in
  let heap = run_script Equeue.Heap_queue ops in
  wheel = heap

(* Delays that stress every region of the wheel: same-instant bursts
   (0), level-0 (< 2^20), each higher level, and far-future beyond
   the 2^38 window. *)
let delay_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return 0);
        (4, int_range 1 4096);
        (4, int_range 4096 (1 lsl 20));
        (3, int_range (1 lsl 20) (1 lsl 26));
        (2, int_range (1 lsl 26) (1 lsl 32));
        (1, int_range (1 lsl 32) (1 lsl 38));
        (1, int_range (1 lsl 38) (1 lsl 40));
      ])

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun d -> Schedule d) delay_gen);
        (2, map (fun i -> Cancel i) (int_bound 1000));
        (3, return Pop);
        (2, map (fun d -> Pop_until d) delay_gen);
      ])

let shrink_op op =
  match op with
  | Schedule d -> QCheck.Iter.map (fun d -> Schedule d) (QCheck.Shrink.int d)
  | Cancel i -> QCheck.Iter.map (fun i -> Cancel i) (QCheck.Shrink.int i)
  | Pop -> QCheck.Iter.empty
  | Pop_until d -> QCheck.Iter.map (fun d -> Pop_until d) (QCheck.Shrink.int d)

let script_arb =
  QCheck.make
    ~shrink:(QCheck.Shrink.list ~shrink:shrink_op)
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Schedule d -> Printf.sprintf "S%d" d
             | Cancel i -> Printf.sprintf "C%d" i
             | Pop -> "P"
             | Pop_until d -> Printf.sprintf "U%d" d)
           ops))
    QCheck.Gen.(list_size (int_range 1 200) op_gen)

let prop_backends_agree =
  QCheck.Test.make ~count:300 ~name:"wheel and heap pop sequences agree"
    script_arb check_script

(* Directed scripts for the hand-picked hazards. *)
let test_same_time_burst () =
  let ops = List.init 50 (fun _ -> Schedule 100) @ [ Pop; Pop; Schedule 0 ] in
  Alcotest.(check bool) "burst" true (check_script ops)

let test_far_future () =
  let ops =
    [
      Schedule (1 lsl 39);
      Schedule 10;
      Pop;
      Schedule ((1 lsl 39) + 5);
      Pop;
      Schedule 1;
      Pop;
      Pop;
    ]
  in
  Alcotest.(check bool) "far future" true (check_script ops)

let test_cancel_everywhere () =
  let ops =
    [
      Schedule 10;
      Schedule (1 lsl 21);
      Schedule (1 lsl 30);
      Schedule (1 lsl 39);
      Cancel 0;
      Cancel 1;
      Cancel 2;
      Cancel 3;
      Schedule 5;
      Pop;
    ]
  in
  Alcotest.(check bool) "cancel everywhere" true (check_script ops)

(* ----- the fused drain loop under cancellation -----

   [Equeue.drain] pops without materialising [pop_result] blocks, so
   it has its own unlink/recycle path; cancelling events from inside
   the drained window — including events later in the *same* window —
   must leave both backends with identical fire sequences and queue
   contents. *)

(* Directed: a drain whose actions cancel later same-window events,
   re-cancel already-fired ones (stale, must be [false]), and schedule
   new events both inside and beyond the limit. *)
let drain_cancel_trace kind =
  let q = Equeue.create kind in
  let fired = ref [] in
  let n = 24 in
  let handles = Array.make n (-1) in
  for i = 0 to n - 1 do
    (* pairs share fire times, so cancellation also crosses seq
       tie-breaks *)
    handles.(i) <-
      Equeue.schedule q
        ~time:(10 * (i / 2))
        (fun () ->
          fired := i :: !fired;
          (* cancel an event later in the same drained window *)
          if i mod 3 = 0 && i + 5 < n then
            ignore (Equeue.cancel q handles.(i + 5));
          (* stale: this very event is firing, cancel must refuse *)
          if Equeue.cancel q handles.(i) then fired := -1 :: !fired;
          (* grow the window from inside the drain... *)
          if i = 4 then
            ignore
              (Equeue.schedule q ~time:95 (fun () -> fired := 100 :: !fired));
          (* ...and schedule beyond it, to be left queued *)
          if i = 6 then
            ignore (Equeue.schedule q ~time:5000 (fun () -> ())))
  done;
  Equeue.drain q ~limit:100 (fun _time action -> action ());
  (List.rev !fired, Equeue.length q)

let test_drain_cancel_directed () =
  let wheel = drain_cancel_trace Equeue.Wheel_queue in
  let heap = drain_cancel_trace Equeue.Heap_queue in
  Alcotest.(check (pair (list int) int))
    "drain/cancel trace agrees with heap oracle" heap wheel;
  (* the cancellations actually bit: cancelled indices are absent *)
  let fired, leftover = wheel in
  Alcotest.(check bool) "i=5 cancelled by i=0" false (List.mem 5 fired);
  Alcotest.(check bool) "i=11 cancelled by i=6" false (List.mem 11 fired);
  Alcotest.(check bool) "no stale cancel succeeded" false (List.mem (-1) fired);
  Alcotest.(check bool) "in-window growth fired" true (List.mem 100 fired);
  Alcotest.(check int) "beyond-limit events left queued" 2 leftover

(* Seeded interleavings of drain and cancel: every action flips a
   coin per outstanding handle; both backends must agree event for
   event. Deterministic per seed — no QCheck shrinking needed, a
   failing seed is the repro. *)
let drain_cancel_seeded seed kind =
  let rng = Rng.create (Int64.of_int seed) in
  let q = Equeue.create kind in
  let fired = ref [] in
  let handles = ref [] in
  let tag = ref 0 in
  let rec spawn time =
    let id = !tag in
    incr tag;
    if id < 400 then begin
      let h =
        Equeue.schedule q ~time (fun () ->
            fired := (time, id) :: !fired;
            List.iter
              (fun h -> if Rng.int rng 8 = 0 then ignore (Equeue.cancel q h))
              !handles;
            if Rng.int rng 3 = 0 then
              spawn (time + Rng.int_in rng ~lo:0 ~hi:300))
      in
      handles := h :: !handles
    end
  in
  for _ = 1 to 60 do
    spawn (Rng.int_in rng ~lo:0 ~hi:900)
  done;
  Equeue.drain q ~limit:600 (fun _time action -> action ());
  let rest = ref [] in
  let rec pop_all () =
    match Equeue.pop q with
    | Equeue.Event (time, action) ->
      rest := time :: !rest;
      action ();
      pop_all ()
    | Equeue.Beyond | Equeue.Empty -> ()
  in
  pop_all ();
  (List.rev !fired, List.rev !rest)

let test_drain_cancel_seeded () =
  for seed = 1 to 20 do
    let wheel = drain_cancel_seeded seed Equeue.Wheel_queue in
    let heap = drain_cancel_seeded seed Equeue.Heap_queue in
    if wheel <> heap then
      Alcotest.failf "drain/cancel seed %d: wheel and heap disagree" seed
  done

(* Periodic chains with jitter, through the Engine API: both backends
   must see identical firing orders and clocks. *)
let engine_trace kind =
  let e = Engine.create ~seed:7L ~queue:kind () in
  let log = ref [] in
  let rng = Engine.rng e in
  let stop1 =
    Engine.periodic e ~start:0 ~period:1000
      ~jitter:(fun () -> Rng.int_in rng ~lo:0 ~hi:64)
      (fun () -> log := (Engine.now e, 1) :: !log)
  in
  let stop2 =
    Engine.periodic e ~start:500 ~period:700 (fun () ->
        log := (Engine.now e, 2) :: !log)
  in
  ignore
    (Engine.schedule_at e ~time:20_000 (fun () ->
         stop1 ();
         stop2 ()));
  Engine.run e;
  (Engine.now e, Engine.events_fired e, List.rev !log)

let test_engine_periodic_identical () =
  let w = engine_trace Engine.Wheel_queue in
  let h = engine_trace Engine.Heap_queue in
  Alcotest.(check bool) "periodic chains identical" true (w = h)

(* Whole-simulation determinism: fig1a outcomes must be identical
   between backends and across worker counts. *)
let test_fig1a_identical_across_backends () =
  let config = Asman.Config.{ default with scale = 0.02; seed = 5L } in
  let exp =
    match Asman.Experiments.find "fig1a" with
    | Some e -> e
    | None -> Alcotest.fail "fig1a not registered"
  in
  let run kind workers =
    Engine.set_default_queue kind;
    Asman.Pool.set_jobs workers;
    let r = exp.Asman.Experiments.run config in
    Engine.set_default_queue Engine.Wheel_queue;
    r
  in
  let base = run Engine.Heap_queue 1 in
  let wheel1 = run Engine.Wheel_queue 1 in
  let wheel4 = run Engine.Wheel_queue 4 in
  let heap4 = run Engine.Heap_queue 4 in
  Alcotest.(check bool) "wheel -j1 = heap -j1" true (wheel1 = base);
  Alcotest.(check bool) "wheel -j4 = heap -j1" true (wheel4 = base);
  Alcotest.(check bool) "heap -j4 = heap -j1" true (heap4 = base)

let suite =
  [
    Alcotest.test_case "same-time burst" `Quick test_same_time_burst;
    Alcotest.test_case "far future" `Quick test_far_future;
    Alcotest.test_case "cancel everywhere" `Quick test_cancel_everywhere;
    Alcotest.test_case "drain/cancel directed" `Quick test_drain_cancel_directed;
    Alcotest.test_case "drain/cancel seeded vs heap oracle" `Quick
      test_drain_cancel_seeded;
    Alcotest.test_case "periodic identical" `Quick test_engine_periodic_identical;
    QCheck_alcotest.to_alcotest prop_backends_agree;
    Alcotest.test_case "fig1a identical across backends" `Slow
      test_fig1a_identical_across_backends;
  ]
