(* The cluster layer's directed tests: trace generation (determinism
   and the per-entry-stream prefix property), placement policy
   decisions on hand-built host views, a full datacenter run with
   pressure migrations landing among live arrivals (conservation,
   reservation honoring, stop-and-copy cost accounting), and fabric
   worker-count invariance of the placement log and digest. *)

open Asman
module Cluster = Sim_cluster.Cluster
module Placement = Sim_cluster.Placement
module Vtrace = Sim_cluster.Vtrace

let config seed =
  {
    Config.default with
    Config.seed;
    topology = Sim_hw.Topology.make ~sockets:2 ~cores_per_socket:2;
    obs = { Config.default.Config.obs with Config.hub = false };
  }

(* ----- trace generation ----- *)

let test_trace_deterministic () =
  let gen vms =
    Vtrace.generate ~max_vcpus:4 ~seed:42L ~vms ~dist:Vtrace.Bimodal
      ~horizon_sec:1.0 ()
  in
  Alcotest.(check bool) "same seed, same trace" true (gen 8 = gen 8);
  (* per-entry streams: the 7-VM trace is exactly the 8-VM trace minus
     vm7 — dropping a trace entry never perturbs the survivors *)
  let eight = gen 8 and seven = gen 7 in
  Alcotest.(check bool)
    "shorter trace is a prefix (modulo the arrival sort)" true
    (List.filter (fun (e : Vtrace.entry) -> e.Vtrace.e_name <> "vm7") eight
    = seven);
  List.iter
    (fun (e : Vtrace.entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s arrives inside the horizon" e.Vtrace.e_name)
        true
        (e.Vtrace.e_arrive_sec >= 0.0 && e.Vtrace.e_arrive_sec < 1.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s has sane vcpus" e.Vtrace.e_name)
        true
        (e.Vtrace.e_vcpus >= 1 && e.Vtrace.e_vcpus <= 4))
    eight

let test_dist_names_roundtrip () =
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Vtrace.dist_name d ^ " round-trips")
        true
        (Vtrace.dist_of_name (Vtrace.dist_name d) = Some d))
    [ Vtrace.Uniform; Vtrace.Bimodal; Vtrace.Heavy ]

(* ----- placement decisions on hand-built views ----- *)

(* Three hosts of 8 slots. Host 0 holds a short-lived resident (drains
   at t=1), host 1 a long-lived one (drains at t=9), host 2 is empty.
   The arriving VM predicts a long life (ends t=9.5). *)
let hand_views () =
  let views =
    Array.init 3 (fun id -> Placement.make_view ~id ~capacity:8)
  in
  Placement.admit views.(0)
    { Placement.r_name = "short"; r_vcpus = 2; r_predicted_end_sec = 1.0 };
  Placement.admit views.(1)
    { Placement.r_name = "long"; r_vcpus = 4; r_predicted_end_sec = 9.0 };
  views

let choose policy views =
  Placement.choose policy views ~vcpus:2 ~now_sec:0.0 ~predicted_end_sec:9.5
    ~penalty_sec:0.75

let test_policies_diverge () =
  let views = hand_views () in
  (* first-fit: lowest feasible id, blind to lifetimes *)
  Alcotest.(check (option int)) "first-fit stacks on host 0" (Some 0)
    (choose Placement.First_fit views);
  (* best-fit: tightest remaining capacity *)
  Alcotest.(check (option int)) "best-fit packs the fullest host" (Some 1)
    (choose Placement.Best_fit views);
  (* lifetime-aware: placing next to the long-lived resident extends
     host 1's drain window by only 0.5s (vs 8.5s on host 0 and 9.5s on
     host 2), and the utilization penalty cannot make up the gap *)
  Alcotest.(check (option int)) "lifetime-aware aligns exits on host 1"
    (Some 1)
    (choose Placement.Lifetime_aware views);
  (* a full host is skipped by every policy *)
  views.(0).Placement.h_used <- 8;
  views.(1).Placement.h_used <- 8;
  views.(2).Placement.h_used <- 8;
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        (Placement.policy_name p ^ " rejects a full cluster")
        None (choose p views))
    [ Placement.First_fit; Placement.Best_fit; Placement.Lifetime_aware ]

(* ----- full datacenter runs ----- *)

(* Seed 5 on this shape is a pinned scenario with several pressure
   migrations completing while later trace VMs are still arriving —
   the mid-migration window the reservation bookkeeping must survive. *)
let mig_seed = 5L
let mig_hosts = 3
let mig_vms = 12
let mig_horizon = 0.6

let run_mig ?(policy = Placement.First_fit) ~workers () =
  let c = config mig_seed in
  let trace =
    Vtrace.generate ~max_vcpus:(Config.pcpus c) ~seed:mig_seed ~vms:mig_vms
      ~dist:Vtrace.Bimodal ~horizon_sec:mig_horizon ()
  in
  let t =
    Cluster.build c ~sched:Config.Asman ~policy ~hosts:mig_hosts ~trace
  in
  let r = Cluster.run ~workers t ~horizon_sec:mig_horizon in
  (t, r, trace)

let test_migration_under_pressure () =
  let t, r, _ = run_mig ~workers:1 () in
  Alcotest.(check bool)
    (Printf.sprintf "pressure migrations completed (got %d)"
       r.Cluster.cr_migrations)
    true
    (r.Cluster.cr_migrations >= 1);
  (* at least one arrival was admitted or deferred while a
     stop-and-copy was in flight: the log shows a place/defer entry
     strictly inside an [evict X .. migrated X] window *)
  let log = Cluster.placement_log t in
  let mid_migration_arrivals =
    List.fold_left
      (fun acc (te, e) ->
        if String.starts_with ~prefix:"evict " e then
          let name = List.nth (String.split_on_char ' ' e) 1 in
          match
            List.find_opt
              (fun (_, m) ->
                String.starts_with ~prefix:("migrated " ^ name ^ " ") m)
              log
          with
          | Some (tm, _) ->
            acc
            + List.length
                (List.filter
                   (fun (tp, p) ->
                     tp > te && tp < tm
                     && (String.starts_with ~prefix:"place " p
                        || String.starts_with ~prefix:"defer " p))
                   log)
          | None -> acc
        else acc)
      0 log
  in
  Alcotest.(check bool)
    (Printf.sprintf "arrivals landed mid-migration (got %d)"
       mid_migration_arrivals)
    true
    (mid_migration_arrivals >= 1);
  (* ...and the reservation bookkeeping survived them: no double
     residency, no oversubscribed host, departures on time *)
  Alcotest.(check (list string)) "cluster conserved" []
    (Cluster.conservation_errors t)

let test_migration_cost_accounting () =
  let _, r, trace = run_mig ~workers:1 () in
  let c = config mig_seed in
  let lookahead = Sim_hw.Cpu_model.slot_cycles c.Config.cpu in
  let copy_per_mb = Sim_engine.Units.cycles_of_us (Config.freq c) 100 in
  let migrated =
    List.filter (fun v -> v.Cluster.v_migrations > 0) r.Cluster.cr_vms
  in
  Alcotest.(check bool) "some VM migrated" true (migrated <> []);
  List.iter
    (fun (v : Cluster.vm_report) ->
      let entry =
        List.find
          (fun (e : Vtrace.entry) -> e.Vtrace.e_name = v.Cluster.v_name)
          trace
      in
      (* every completed migration froze the guest for at least the
         transit hop plus the footprint-proportional stop-and-copy *)
      let floor =
        v.Cluster.v_migrations
        * (lookahead + (entry.Vtrace.e_footprint_mb * copy_per_mb))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s downtime %d >= %d (%d migration(s), %d MB)"
           v.Cluster.v_name v.Cluster.v_downtime_cycles floor
           v.Cluster.v_migrations entry.Vtrace.e_footprint_mb)
        true
        (v.Cluster.v_downtime_cycles >= floor))
    migrated;
  List.iter
    (fun (v : Cluster.vm_report) ->
      if v.Cluster.v_migrations = 0 then
        Alcotest.(check int)
          (v.Cluster.v_name ^ " never froze")
          0 v.Cluster.v_downtime_cycles)
    r.Cluster.cr_vms

let test_policies_diverge_full_run () =
  let _, ff, _ = run_mig ~policy:Placement.First_fit ~workers:1 () in
  let _, la, _ = run_mig ~policy:Placement.Lifetime_aware ~workers:1 () in
  Alcotest.(check bool)
    "first-fit and lifetime-aware pick different placements" true
    (ff.Cluster.cr_log <> la.Cluster.cr_log);
  Alcotest.(check string) "reports carry their policy" "first-fit"
    ff.Cluster.cr_policy;
  Alcotest.(check string) "reports carry their policy" "lifetime"
    la.Cluster.cr_policy

(* ----- fabric worker-count invariance ----- *)

let test_workers_invariant () =
  let c = config 9L in
  let trace =
    Vtrace.generate ~max_vcpus:(Config.pcpus c) ~seed:9L ~vms:14
      ~dist:Vtrace.Heavy ~horizon_sec:0.5 ()
  in
  let run workers =
    let t =
      Cluster.build c ~sched:Config.Credit ~policy:Placement.Lifetime_aware
        ~hosts:4 ~trace
    in
    Cluster.run ~workers t ~horizon_sec:0.5
  in
  let r1 = run 1 and r2 = run 2 in
  Alcotest.(check int) "digests agree across worker counts"
    r1.Cluster.cr_digest r2.Cluster.cr_digest;
  Alcotest.(check bool) "placement logs agree across worker counts" true
    (r1.Cluster.cr_log = r2.Cluster.cr_log);
  Alcotest.(check int) "departures agree" r1.Cluster.cr_departures
    r2.Cluster.cr_departures;
  Alcotest.(check int) "migrations agree" r1.Cluster.cr_migrations
    r2.Cluster.cr_migrations

let suite =
  [
    Alcotest.test_case "trace generation is deterministic with the prefix \
                        property" `Quick test_trace_deterministic;
    Alcotest.test_case "lifetime distribution names round-trip" `Quick
      test_dist_names_roundtrip;
    Alcotest.test_case "policies diverge on a hand-built 3-host view" `Quick
      test_policies_diverge;
    Alcotest.test_case "migrations complete under live arrival pressure"
      `Slow test_migration_under_pressure;
    Alcotest.test_case "stop-and-copy downtime accounts transit plus \
                        footprint" `Slow test_migration_cost_accounting;
    Alcotest.test_case "first-fit and lifetime-aware place differently"
      `Slow test_policies_diverge_full_run;
    Alcotest.test_case "placement log and digest are worker-count invariant"
      `Slow test_workers_invariant;
  ]
