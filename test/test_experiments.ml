(* Smoke tests for the experiment registry and report rendering. The
   full figure regeneration lives in bench/; here we only check the
   registry's integrity and run the cheapest experiment end-to-end at
   a tiny scale. *)

open Asman

let test_registry () =
  let ids = Experiments.ids () in
  Alcotest.(check (list string)) "paper order"
    [ "fig1a"; "fig1b"; "fig2"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11a";
      "fig11b"; "fig12a"; "fig12b"; "theft"; "resilience" ]
    ids;
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some e -> Alcotest.(check string) "id matches" id e.Experiments.id
      | None -> Alcotest.failf "missing %s" id)
    ids;
  Alcotest.(check bool) "unknown" true (Experiments.find "nope" = None)

let test_online_rate_points () =
  Alcotest.(check (list (pair int (float 0.1))))
    "equation 2 sweep"
    [ (256, 100.); (128, 66.7); (64, 40.); (32, 22.2) ]
    Experiments.online_rate_points

let tiny = Config.with_scale (Config.with_seed Config.default 5L) 0.03

let test_fig1a_tiny () =
  match Experiments.find "fig1a" with
  | None -> Alcotest.fail "fig1a missing"
  | Some e ->
    let o = e.Experiments.run tiny in
    Alcotest.(check int) "two measured series" 2
      (List.length o.Experiments.series);
    Alcotest.(check bool) "paper series present" true
      (o.Experiments.expected <> []);
    let runtime = List.hd o.Experiments.series in
    (* Monotone: lower online rate, longer run time. *)
    let ys =
      List.map snd
        (List.sort compare (Sim_stats.Series.points runtime))
    in
    let rec decreasing = function
      | a :: (b :: _ as rest) -> a > b && decreasing rest
      | _ -> true
    in
    Alcotest.(check bool) "runtime decreases with online rate" true
      (decreasing ys)

let test_nas_runtime_helper () =
  let t =
    Experiments.nas_runtime tiny ~sched:Config.Credit
      ~bench:Sim_workloads.Nas.MG ~weight:256
  in
  Alcotest.(check bool) "positive" true (t > 0.)

let test_wait_bucket_counts () =
  let s =
    Scenario.build
      (Config.with_work_conserving tiny false)
      ~sched:Config.Credit
      ~vms:
        [
          {
            Scenario.vm_name = "V1";
            weight = 64;
            vcpus = 4;
            workload =
              Some
                (Sim_workloads.Nas.workload
                   (Sim_workloads.Nas.params Sim_workloads.Nas.LU
                      ~freq:(Config.freq tiny) ~scale:0.03));
          };
        ]
  in
  let _ = Runner.run_rounds s ~rounds:1 ~max_sec:30. in
  let counts = Experiments.wait_bucket_counts (Runner.monitor_of s ~vm:"V1") in
  Alcotest.(check (list string)) "bands"
    [ ">=2^10"; ">=2^15"; ">=2^20"; ">=2^25" ]
    (List.map fst counts);
  (* Bands are nested: each is a superset of the next. *)
  let values = List.map snd counts in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "nested" true (non_increasing values)

let test_report_rendering () =
  match Experiments.find "fig1a" with
  | None -> Alcotest.fail "fig1a missing"
  | Some e ->
    let o = e.Experiments.run tiny in
    let text = Report.outcome e o in
    Alcotest.(check bool) "mentions id" true
      (String.length text > 0
      &&
      let rec find i =
        i + 5 <= String.length text
        && (String.sub text i 5 = "fig1a" || find (i + 1))
      in
      find 0);
    let csv = Report.series_csv o.Experiments.series in
    Alcotest.(check bool) "csv non-empty" true (String.length csv > 0)

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "online rate points" `Quick test_online_rate_points;
    Alcotest.test_case "fig1a tiny" `Slow test_fig1a_tiny;
    Alcotest.test_case "nas_runtime helper" `Quick test_nas_runtime_helper;
    Alcotest.test_case "wait buckets" `Quick test_wait_bucket_counts;
    Alcotest.test_case "report rendering" `Slow test_report_rendering;
  ]
