(* Run registry (lib/registry): record JSON round-trips, canonical
   digest stability under field reordering, the compare verdict
   engine's gates (regress / improve / neutral, strict sections),
   BENCH_*.json ingestion, directory save/load/list/resolve, and the
   self-contained HTML report. *)

open Asman
module Cjson = Sim_registry.Cjson
module Record = Sim_registry.Record
module Registry = Sim_registry.Registry
module Compare = Sim_registry.Compare
module Html = Sim_registry.Html

(* ----- builders ----- *)

let run_row (rid, w) =
  Cjson.Obj [ ("id", Cjson.String rid); ("wall_sec", Cjson.Float w) ]

let micro_row (bench, backend, pending, rate) =
  Cjson.Obj
    [
      ("bench", Cjson.String bench);
      ("backend", Cjson.String backend);
      ("pending", Cjson.Float pending);
      ("ops_per_sec", Cjson.Float rate);
    ]

let fairness_row (fid, ratio) =
  Cjson.Obj [ ("id", Cjson.String fid); ("ratio", Cjson.Float ratio) ]

let check_row (cid, v) =
  Cjson.Obj [ ("id", Cjson.String cid); ("value", Cjson.Float v) ]

let cluster_row = check_row

(* A bench-kind record with the given metric sections; a section
   passed as [] is omitted entirely (matters for strict-sections). *)
let mk ~id ?(date = "2026-08-07T00:00:00") ?(wall = 10.) ?(runs = [])
    ?(micro = []) ?(fairness = []) ?(check = []) ?(cluster = []) () =
  let sec name row = function
    | [] -> []
    | entries -> [ (name, Cjson.List (List.map row entries)) ]
  in
  let sections =
    Cjson.Obj
      (sec "runs" run_row runs
      @ sec "micro" micro_row micro
      @ sec "fairness" fairness_row fairness
      @ sec "check" check_row check
      @ sec "cluster" cluster_row cluster)
  in
  Record.make ~id ~kind:"bench" ~date ~git:(Some ("cafe01", false)) ~seed:42L
    ~scale:1. ~queue:"wheel" ~workers:2 ~label:id
    ~spec:(Cjson.Obj [ ("id", Cjson.String id) ])
    ~wall_sec:wall ~sections ()

let compare_t ?(strict = false) old_r new_r =
  Compare.records { Compare.default with Compare.strict_sections = strict }
    old_r new_r

(* ----- record round-trip ----- *)

let test_round_trip () =
  let r =
    Record.make ~id:"r1" ~kind:"theft" ~date:"2026-08-07T10:00:00"
      ~git:(Some ("abc123", true)) ~seed:123456789L ~scale:0.5 ~queue:"heap"
      ~workers:4 ~sim_jobs:2 ~topology:"8x16" ~numa:true ~accounting:"sampled"
      ~chaos:"ipi-loss-5" ~label:"bench theft"
      ~spec:(Cjson.Obj [ ("ids", Cjson.List [ Cjson.String "theft" ]) ])
      ~wall_sec:12.5 ~busy_sec:40.25
      ~sections:
        (Cjson.Obj [ ("runs", Cjson.List [ run_row ("theft", 1.5) ]) ])
      ~metrics:[ ("events", 100.); ("vm.V1.rounds", 3.) ]
      ~exports:[ "trace.json"; "metrics.json" ]
      ()
  in
  let r' =
    Record.of_json
      (Cjson.of_string (Cjson.to_string ~indent:true (Record.to_json r)))
  in
  Alcotest.(check bool) "record round-trips exactly" true (r = r')

let test_round_trip_wide_seed () =
  (* Int64.max_int does not fit an OCaml int, so the seed serializes
     as a decimal string; it must still round-trip exactly. *)
  let r =
    Record.make ~id:"r2" ~kind:"run" ~date:"2026-08-07T10:00:00" ~git:None
      ~seed:Int64.max_int ~scale:1. ~queue:"wheel" ~workers:1 ~label:"x"
      ~spec:Cjson.Null ~wall_sec:0.1 ()
  in
  let r' = Record.of_json (Cjson.of_string (Cjson.to_string (Record.to_json r))) in
  Alcotest.(check int64) "wide seed survives" Int64.max_int r'.Record.seed;
  Alcotest.(check bool) "no git info round-trips" true
    (r'.Record.git_sha = None)

(* ----- canonical digest ----- *)

let test_digest_reorder_stable () =
  let a = Cjson.of_string {|{"b":1,"a":[{"y":2.5,"x":"s"}],"c":null}|} in
  let b = Cjson.of_string {|{"c":null,"a":[{"x":"s","y":2.5}],"b":1}|} in
  Alcotest.(check string)
    "field order does not change the digest"
    (Record.canonical_digest a) (Record.canonical_digest b);
  let c = Cjson.of_string {|{"c":null,"a":[{"x":"s","y":2.5}],"b":2}|} in
  Alcotest.(check bool)
    "a value change does" true
    (Record.canonical_digest a <> Record.canonical_digest c)

let test_digest_list_order_matters () =
  (* Lists are ordered data (e.g. VM lists): reordering them is a
     different spec, unlike object fields. *)
  let a = Cjson.of_string {|{"vms":["a","b"]}|} in
  let b = Cjson.of_string {|{"vms":["b","a"]}|} in
  Alcotest.(check bool) "list order is significant" true
    (Record.canonical_digest a <> Record.canonical_digest b)

(* ----- compare: verdict gates ----- *)

let test_compare_wall_regression () =
  let old_r = mk ~id:"old" ~runs:[ ("fig7", 1.0) ] () in
  let slow = mk ~id:"new" ~runs:[ ("fig7", 1.4) ] () in
  let ok = mk ~id:"new" ~runs:[ ("fig7", 1.1) ] () in
  let fast = mk ~id:"new" ~runs:[ ("fig7", 0.5) ] () in
  Alcotest.(check int) "+40% wall regresses" 1
    (compare_t old_r slow).Compare.regressions;
  Alcotest.(check int) "+10% wall is neutral" 0
    (compare_t old_r ok).Compare.regressions;
  Alcotest.(check int) "an improvement never gates" 0
    (compare_t old_r fast).Compare.regressions

let test_compare_min_wall_exemption () =
  (* Old run under min_wall (0.25 s): doubled wall time is still
     scheduler noise, reported but not gated. *)
  let old_r = mk ~id:"old" ~runs:[ ("fig1b", 0.1) ] () in
  let new_r = mk ~id:"new" ~runs:[ ("fig1b", 0.2) ] () in
  let r = compare_t old_r new_r in
  Alcotest.(check int) "too short to gate" 0 r.Compare.regressions;
  Alcotest.(check bool) "but still reported" true
    (let rec contains_sub h n i =
       i + String.length n <= String.length h
       && (String.sub h i (String.length n) = n || contains_sub h n (i + 1))
     in
     contains_sub r.Compare.text "ungated" 0)

let test_compare_micro_direction () =
  (* Micro gates on throughput SHRINK; wall gates on GROWTH. *)
  let old_r = mk ~id:"old" ~micro:[ ("hold", "wheel", 1e6, 1000.) ] () in
  let slow = mk ~id:"new" ~micro:[ ("hold", "wheel", 1e6, 600.) ] () in
  let fast = mk ~id:"new" ~micro:[ ("hold", "wheel", 1e6, 2000.) ] () in
  Alcotest.(check int) "-40% throughput regresses" 1
    (compare_t old_r slow).Compare.regressions;
  Alcotest.(check int) "+100% throughput is fine" 0
    (compare_t old_r fast).Compare.regressions

let test_compare_fairness_symmetric () =
  let old_r = mk ~id:"old" ~fairness:[ ("V1 steal", 1.0) ] () in
  let up = mk ~id:"new" ~fairness:[ ("V1 steal", 1.06) ] () in
  let down = mk ~id:"new" ~fairness:[ ("V1 steal", 0.94) ] () in
  let close = mk ~id:"new" ~fairness:[ ("V1 steal", 1.02) ] () in
  Alcotest.(check int) "+6% drift regresses" 1
    (compare_t old_r up).Compare.regressions;
  Alcotest.(check int) "-6% drift regresses too (symmetric)" 1
    (compare_t old_r down).Compare.regressions;
  Alcotest.(check int) "+2% drift is within tolerance" 0
    (compare_t old_r close).Compare.regressions

let test_compare_check_counts () =
  let old_r =
    mk ~id:"old" ~check:[ ("cases", 100.); ("failures", 0.); ("timeouts", 0.) ]
      ()
  in
  let broke =
    mk ~id:"new" ~check:[ ("cases", 100.); ("failures", 1.); ("timeouts", 0.) ]
      ()
  in
  let fixed =
    mk ~id:"new" ~check:[ ("cases", 50.); ("failures", 0.); ("timeouts", 0.) ]
      ()
  in
  Alcotest.(check int) "one new failure regresses (absolute, not %)" 1
    (compare_t old_r broke).Compare.regressions;
  Alcotest.(check int) "fewer cases / zero failures does not gate" 0
    (compare_t old_r fixed).Compare.regressions

let test_compare_cluster_drift () =
  (* Cluster runs are seeded and deterministic: density/p99 entries
     gate symmetrically like fairness ratios; migration counters are
     informational only. *)
  let old_r =
    mk ~id:"old"
      ~cluster:
        [
          ("density asman/lifetime L1.5", 3.2);
          ("p99_stall_ms", 12.0);
          ("migrations", 5.);
        ]
      ()
  in
  let extract r =
    mk ~id:"x" ~cluster:r () |> fun rec_ -> Compare.cluster_of rec_
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "cluster section round-trips through the extractor"
    [
      ("density asman/lifetime L1.5", 3.2);
      ("p99_stall_ms", 12.0);
      ("migrations", 5.);
    ]
    (extract
       [
         ("density asman/lifetime L1.5", 3.2);
         ("p99_stall_ms", 12.0);
         ("migrations", 5.);
       ]);
  let denser =
    mk ~id:"new"
      ~cluster:
        [
          ("density asman/lifetime L1.5", 3.5);
          ("p99_stall_ms", 12.0);
          ("migrations", 5.);
        ]
      ()
  in
  let sparser =
    mk ~id:"new"
      ~cluster:
        [
          ("density asman/lifetime L1.5", 2.9);
          ("p99_stall_ms", 12.0);
          ("migrations", 5.);
        ]
      ()
  in
  let slower_tail =
    mk ~id:"new"
      ~cluster:
        [
          ("density asman/lifetime L1.5", 3.2);
          ("p99_stall_ms", 14.0);
          ("migrations", 5.);
        ]
      ()
  in
  let more_migrations =
    mk ~id:"new"
      ~cluster:
        [
          ("density asman/lifetime L1.5", 3.2);
          ("p99_stall_ms", 12.0);
          ("migrations", 50.);
        ]
      ()
  in
  let close =
    mk ~id:"new"
      ~cluster:
        [
          ("density asman/lifetime L1.5", 3.25);
          ("p99_stall_ms", 12.1);
          ("migrations", 5.);
        ]
      ()
  in
  Alcotest.(check int) "+9% density regresses" 1
    (compare_t old_r denser).Compare.regressions;
  Alcotest.(check int) "-9% density regresses too (symmetric)" 1
    (compare_t old_r sparser).Compare.regressions;
  Alcotest.(check int) "+17% p99 stall regresses" 1
    (compare_t old_r slower_tail).Compare.regressions;
  Alcotest.(check int) "migration counters never gate" 0
    (compare_t old_r more_migrations).Compare.regressions;
  Alcotest.(check int) "sub-threshold drift is neutral" 0
    (compare_t old_r close).Compare.regressions

let test_compare_strict_sections () =
  let old_r =
    mk ~id:"old" ~runs:[ ("fig7", 1.0) ] ~fairness:[ ("V1 steal", 1.0) ] ()
  in
  let new_r = mk ~id:"new" ~runs:[ ("fig7", 1.0) ] () in
  Alcotest.(check int) "lax: a vanished section only reports" 0
    (compare_t old_r new_r).Compare.regressions;
  Alcotest.(check int) "strict: a vanished section regresses" 1
    (compare_t ~strict:true old_r new_r).Compare.regressions;
  (* A section appearing is growth, not a regression, even strictly. *)
  Alcotest.(check int) "strict: a new section never gates" 0
    (compare_t ~strict:true new_r old_r).Compare.regressions

let test_compare_one_sided_entries () =
  let old_r = mk ~id:"old" ~runs:[ ("fig7", 1.0) ] () in
  let new_r = mk ~id:"new" ~runs:[ ("fig7", 1.0); ("fig13", 99.0) ] () in
  Alcotest.(check int) "entries on one side only never gate" 0
    (compare_t ~strict:true old_r new_r).Compare.regressions

(* ----- BENCH_*.json ingestion ----- *)

let bench_dump =
  {|{
  "date": "2026-08-06",
  "scale": 1,
  "seed": 42,
  "workers": 3,
  "queue": "wheel",
  "total_wall_sec": 12.5,
  "runs": [ {"id":"fig7","wall_sec":1.0,"busy_sec":2.0,"jobs":4,"workers":3,"speedup":2.0,"job_sec":[0.5,0.5]} ],
  "micro": [ {"bench":"hold","backend":"wheel","pending":100000,"ops_per_sec":1000.5} ],
  "profile": []
}|}

let test_ingest_bench () =
  let r = Registry.ingest_bench ~id:"BENCH_X" (Cjson.of_string bench_dump) in
  Alcotest.(check string) "kind" "bench" r.Record.kind;
  Alcotest.(check string) "date" "2026-08-06" r.Record.date;
  Alcotest.(check int) "workers" 3 r.Record.workers;
  Alcotest.(check (float 1e-9)) "wall" 12.5 r.Record.wall_sec;
  Alcotest.(check (list (pair string (float 1e-9))))
    "runs section survives verbatim"
    [ ("fig7", 1.0) ]
    (Compare.runs_of r);
  Alcotest.(check (list (pair string (float 1e-9))))
    "micro keys carry backend and pending"
    [ ("hold wheel 100000", 1000.5) ]
    (Compare.micro_of r);
  (* Old dumps have no stamps: everything defaults. *)
  Alcotest.(check bool) "no git sha" true (r.Record.git_sha = None);
  Alcotest.(check string) "accounting defaults" "precise" r.Record.accounting

(* ----- save / load / list / resolve ----- *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "asman-registry-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let test_save_load_list_resolve () =
  with_temp_dir (fun dir ->
      let r1 = mk ~id:"b-one" ~date:"2026-08-06T00:00:00" ~runs:[ ("fig7", 1.) ] () in
      let r2 = mk ~id:"a-two" ~date:"2026-08-07T00:00:00" ~runs:[ ("fig7", 2.) ] () in
      let p1 = Registry.save ~dir r1 in
      let (_ : string) = Registry.save ~dir r2 in
      Alcotest.(check bool) "saved under <dir>/<id>.json" true
        (Filename.basename p1 = "b-one.json");
      let r1' = Registry.load p1 in
      Alcotest.(check bool) "load round-trips" true (r1 = r1');
      (* A non-record file in the directory must be skipped, not fatal. *)
      let oc = open_out (Filename.concat dir "cost_cache") in
      output_string oc "fig7:0 1.5\n";
      close_out oc;
      let listed = Registry.list ~dir () in
      Alcotest.(check (list string))
        "list sorts by (date, id) and skips non-records"
        [ "b-one"; "a-two" ]
        (List.map (fun (r : Record.t) -> r.Record.id) listed);
      (* Resolution: bare id, record path, raw dump path. *)
      let by_id = Registry.resolve ~dir "a-two" in
      Alcotest.(check bool) "resolve by id" true (by_id = r2);
      let by_path = Registry.resolve ~dir p1 in
      Alcotest.(check bool) "resolve by path" true (by_path = r1);
      let dump = Filename.concat dir "BENCH_raw.json" in
      let oc = open_out dump in
      output_string oc bench_dump;
      close_out oc;
      let ingested = Registry.resolve ~dir dump in
      Alcotest.(check string) "raw dumps ingest on resolve" "BENCH_raw"
        ingested.Record.id)

(* ----- HTML report ----- *)

let report_records () =
  [
    mk ~id:"run-1" ~date:"2026-08-05T00:00:00" ~wall:10.
      ~runs:[ ("fig7", 1.0); ("fig10", 5.0) ]
      ~micro:[ ("hold", "wheel", 1e6, 1.5e6) ]
      ~fairness:[ ("V1 steal", 1.0) ]
      ~check:[ ("cases", 100.); ("failures", 0.) ]
      ~cluster:[ ("density asman/lifetime L1.5", 3.2); ("p99_stall_ms", 12.0) ]
      ();
    mk ~id:"run-2" ~date:"2026-08-06T00:00:00" ~wall:11.
      ~runs:[ ("fig7", 1.1); ("fig10", 5.2) ]
      ~micro:[ ("hold", "wheel", 1e6, 1.4e6) ]
      ~fairness:[ ("V1 steal", 1.01) ]
      ~check:[ ("cases", 100.); ("failures", 0.) ]
      ~cluster:[ ("density asman/lifetime L1.5", 3.3); ("p99_stall_ms", 11.8) ]
      ();
  ]

let contains h n =
  let rec go i =
    i + String.length n <= String.length h
    && (String.sub h i (String.length n) = n || go (i + 1))
  in
  go 0

let test_html_well_formed_and_self_contained () =
  let html = Html.report (report_records ()) in
  (match Sim_obs.Json.validate_html html with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("report not well-formed: " ^ msg));
  (* >= 3 metric families actually rendered for these records. *)
  List.iter
    (fun fam ->
      Alcotest.(check bool) (fam ^ " family present") true (contains html fam))
    [
      "Figure / ablation wall time";
      "Micro throughput";
      "Fairness: attained / entitled";
      "SimCheck health";
      "Cluster consolidation";
    ];
  Alcotest.(check bool) "inline SVG" true (contains html "<svg")

let test_html_deterministic_across_workers () =
  let records = report_records () in
  let saved = Pool.jobs () in
  Pool.set_jobs 1;
  let at1 = Html.report records in
  Pool.set_jobs 4;
  let at4 = Html.report records in
  Pool.set_jobs saved;
  Alcotest.(check bool) "byte-identical at -j1 and -j4" true (at1 = at4);
  Alcotest.(check bool) "byte-identical across renders" true
    (at1 = Html.report records)

let suite =
  [
    Alcotest.test_case "record round-trip" `Quick test_round_trip;
    Alcotest.test_case "wide-seed round-trip" `Quick test_round_trip_wide_seed;
    Alcotest.test_case "digest: field order" `Quick test_digest_reorder_stable;
    Alcotest.test_case "digest: list order" `Quick
      test_digest_list_order_matters;
    Alcotest.test_case "compare: wall gates" `Quick
      test_compare_wall_regression;
    Alcotest.test_case "compare: min-wall exemption" `Quick
      test_compare_min_wall_exemption;
    Alcotest.test_case "compare: micro direction" `Quick
      test_compare_micro_direction;
    Alcotest.test_case "compare: fairness symmetric" `Quick
      test_compare_fairness_symmetric;
    Alcotest.test_case "compare: check counts" `Quick
      test_compare_check_counts;
    Alcotest.test_case "compare: cluster drift" `Quick
      test_compare_cluster_drift;
    Alcotest.test_case "compare: strict sections" `Quick
      test_compare_strict_sections;
    Alcotest.test_case "compare: one-sided entries" `Quick
      test_compare_one_sided_entries;
    Alcotest.test_case "ingest BENCH dump" `Quick test_ingest_bench;
    Alcotest.test_case "save/load/list/resolve" `Quick
      test_save_load_list_resolve;
    Alcotest.test_case "html report: self-contained" `Quick
      test_html_well_formed_and_self_contained;
    Alcotest.test_case "html report: deterministic" `Quick
      test_html_deterministic_across_workers;
  ]
