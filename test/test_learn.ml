(* Tests for the Roth-Erev learner, the Algorithm 1/2 estimator, and
   the locality model. *)

open Sim_learn
open Sim_engine

(* ----- Roth_erev ----- *)

let candidates = [| 1.; 2.; 4.; 8. |]

let test_initial_propensities () =
  let t = Roth_erev.create Roth_erev.default_params ~candidates in
  (* q0 = s(0) * A / N with A = mean = 3.75, N = 4 *)
  Array.iter
    (fun q -> Alcotest.(check (float 1e-9)) "q0" (3.75 /. 4.) q)
    (Roth_erev.propensities t)

let test_select_best () =
  let t = Roth_erev.create Roth_erev.default_params ~candidates in
  Roth_erev.update t ~reinforcement:(fun j -> if j = 2 then 10. else 0.);
  Alcotest.(check int) "argmax" 2 (Roth_erev.select_best t)

let test_select_probabilistic_valid () =
  let t = Roth_erev.create Roth_erev.default_params ~candidates in
  let rng = Rng.create 3L in
  for _ = 1 to 200 do
    let j = Roth_erev.select_probabilistic t rng in
    if j < 0 || j >= 4 then Alcotest.fail "index out of range"
  done

let test_probabilistic_follows_mass () =
  let t = Roth_erev.create Roth_erev.default_params ~candidates in
  (* Put almost all mass on index 1. *)
  Roth_erev.update t ~reinforcement:(fun j -> if j = 1 then 1000. else 0.);
  let rng = Rng.create 17L in
  let hits = ref 0 in
  for _ = 1 to 200 do
    if Roth_erev.select_probabilistic t rng = 1 then incr hits
  done;
  Alcotest.(check bool) "mostly index 1" true (!hits > 190)

let test_update_recency_and_floor () =
  let params = { Roth_erev.default_params with Roth_erev.recency = 0.5 } in
  let t = Roth_erev.create params ~candidates in
  let q0 = (Roth_erev.propensities t).(0) in
  Roth_erev.update t ~reinforcement:(fun _ -> 0.);
  Alcotest.(check (float 1e-9)) "decay" (q0 /. 2.) (Roth_erev.propensity t 0);
  for _ = 1 to 200 do
    Roth_erev.update t ~reinforcement:(fun _ -> 0.)
  done;
  Alcotest.(check bool) "floored positive" true
    (Roth_erev.propensity t 0 >= params.Roth_erev.floor)

let test_update_sees_pre_update_state () =
  let t = Roth_erev.create Roth_erev.default_params ~candidates in
  let seen = ref [] in
  Roth_erev.update t ~reinforcement:(fun j ->
      seen := Roth_erev.propensity t j :: !seen;
      float_of_int j);
  (* All reinforcements computed against the same initial q. *)
  List.iter
    (fun q -> Alcotest.(check (float 1e-9)) "pre-update" (3.75 /. 4.) q)
    !seen

let test_params_validation () =
  let invalid p =
    try
      ignore (Roth_erev.create p ~candidates);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "recency >= 1" true
    (invalid { Roth_erev.default_params with Roth_erev.recency = 1.0 });
  Alcotest.(check bool) "negative experimentation" true
    (invalid { Roth_erev.default_params with Roth_erev.experimentation = -0.1 });
  Alcotest.(check bool) "empty candidates" true
    (try
       ignore (Roth_erev.create Roth_erev.default_params ~candidates:[||]);
       false
     with Invalid_argument _ -> true)

(* ----- Estimator ----- *)

let freq = Units.ghz_f 2.33

let slot = Units.cycles_of_ms freq 10

let make_estimator ?(seed = 1L) () =
  Estimator.create (Estimator.default_params ~slot_cycles:slot) (Rng.create seed)

let test_estimates_are_candidates () =
  let t = make_estimator () in
  let cands = Array.to_list (Estimator.candidates t) in
  let time = ref 0 in
  for _ = 1 to 50 do
    time := !time + (slot * 3);
    let x = Estimator.on_adjusting_event t ~now:!time in
    if not (List.mem x cands) then Alcotest.fail "estimate not a candidate"
  done;
  Alcotest.(check int) "events counted" 50 (Estimator.events_seen t)

let test_monotone_time_required () =
  let t = make_estimator () in
  ignore (Estimator.on_adjusting_event t ~now:1000);
  let raised =
    try
      ignore (Estimator.on_adjusting_event t ~now:500);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "time must not go backwards" true raised

(* Persistent under-coscheduling (the next over-threshold spinlock
   arrives right after every window) must push the estimate to longer
   durations — the core of Algorithm 2. *)
let test_under_coscheduling_grows_estimate () =
  let t = make_estimator () in
  let time = ref 0 in
  let last = ref 0 in
  for _ = 1 to 60 do
    let x = Estimator.on_adjusting_event t ~now:!time in
    last := x;
    (* Next event exactly at window end: slack 0 <= delta. *)
    time := !time + x
  done;
  let cands = Estimator.candidates t in
  Alcotest.(check int) "converged to longest candidate"
    cands.(Array.length cands - 1) !last

let test_normalized_propensities () =
  let t = make_estimator () in
  let time = ref 0 in
  for _ = 1 to 30 do
    time := !time + (4 * slot);
    ignore (Estimator.on_adjusting_event t ~now:!time)
  done;
  Array.iter
    (fun q ->
      if q <= 0. || q > 100. then
        Alcotest.failf "propensity %f not O(1)-scaled" q)
    (Estimator.propensities t)

let test_last_estimate () =
  let t = make_estimator () in
  Alcotest.(check bool) "none initially" true (Estimator.last_estimate t = None);
  let x = Estimator.on_adjusting_event t ~now:0 in
  Alcotest.(check bool) "some after event" true
    (Estimator.last_estimate t = Some x)

let test_estimator_validation () =
  let p = Estimator.default_params ~slot_cycles:slot in
  let bad = { p with Estimator.candidates_cycles = [| 0 |] } in
  let raised =
    try ignore (Estimator.create bad (Rng.create 1L)); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "non-positive candidate" true raised

(* ----- Locality ----- *)

let profile = Locality.default_profile ~slot_cycles:slot

let test_generate () =
  let rng = Rng.create 4L in
  let t = Locality.generate rng profile ~n:50 in
  Alcotest.(check int) "count" 50 (List.length t.Locality.localities);
  List.iter
    (fun l ->
      if l.Locality.duration <= 0 then Alcotest.fail "non-positive duration")
    t.Locality.localities;
  (* Starts strictly increase. *)
  let starts = List.map (fun l -> l.Locality.start) t.Locality.localities in
  Alcotest.(check bool) "sorted starts" true
    (List.sort compare starts = starts)

let test_event_times_inside_localities () =
  let rng = Rng.create 5L in
  let t = Locality.generate rng profile ~n:20 in
  let events = Locality.event_times t in
  Alcotest.(check bool) "non-empty" true (events <> []);
  Alcotest.(check bool) "sorted" true (List.sort compare events = events);
  List.iter
    (fun time ->
      let inside =
        List.exists
          (fun l ->
            time >= l.Locality.start
            && time < l.Locality.start + l.Locality.duration)
          t.Locality.localities
      in
      if not inside then Alcotest.fail "event outside locality")
    events

let test_coverage_bounds () =
  let rng = Rng.create 6L in
  let t = Locality.generate rng profile ~n:30 in
  (* Perfect windows: exactly the localities. *)
  let exact =
    List.map
      (fun l -> (l.Locality.start, l.Locality.duration))
      t.Locality.localities
  in
  let hit, excess = Locality.coverage t ~windows:exact in
  Alcotest.(check (float 1e-9)) "full coverage" 1. hit;
  Alcotest.(check (float 1e-9)) "no excess" 0. excess;
  (* No windows at all. *)
  let hit0, excess0 = Locality.coverage t ~windows:[] in
  Alcotest.(check (float 1e-9)) "zero coverage" 0. hit0;
  Alcotest.(check (float 1e-9)) "zero excess" 0. excess0

let test_coverage_merges_overlaps () =
  let rng = Rng.create 8L in
  let t = Locality.generate rng profile ~n:10 in
  let l = List.hd t.Locality.localities in
  (* The same window three times must not triple-count. *)
  let w = (l.Locality.start, l.Locality.duration) in
  let hit, _ = Locality.coverage t ~windows:[ w; w; w ] in
  Alcotest.(check bool) "hit <= 1" true (hit <= 1.)

let test_autocorrelation_sign () =
  let rng = Rng.create 9L in
  let correlated =
    Locality.generate rng
      { profile with Locality.correlation = 0.9; jitter_cv = 0.1 }
      ~n:300
  in
  let ac = Locality.autocorrelation correlated ~lag:1 in
  Alcotest.(check bool) "strong positive autocorrelation" true (ac > 0.5)

let prop_estimator_positive =
  QCheck.Test.make ~name:"estimates always positive"
    QCheck.(pair int64 (list (int_range 1 1_000_000_000)))
    (fun (seed, gaps) ->
      let t = make_estimator ~seed () in
      let time = ref 0 in
      List.for_all
        (fun gap ->
          time := !time + gap;
          Estimator.on_adjusting_event t ~now:!time > 0)
        gaps)

let suite =
  [
    Alcotest.test_case "initial propensities" `Quick test_initial_propensities;
    Alcotest.test_case "select best" `Quick test_select_best;
    Alcotest.test_case "probabilistic valid" `Quick test_select_probabilistic_valid;
    Alcotest.test_case "probabilistic mass" `Quick test_probabilistic_follows_mass;
    Alcotest.test_case "recency and floor" `Quick test_update_recency_and_floor;
    Alcotest.test_case "pre-update view" `Quick test_update_sees_pre_update_state;
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "estimates are candidates" `Quick test_estimates_are_candidates;
    Alcotest.test_case "monotone time" `Quick test_monotone_time_required;
    Alcotest.test_case "under-coscheduling grows x" `Quick
      test_under_coscheduling_grows_estimate;
    Alcotest.test_case "normalized propensities" `Quick test_normalized_propensities;
    Alcotest.test_case "last estimate" `Quick test_last_estimate;
    Alcotest.test_case "estimator validation" `Quick test_estimator_validation;
    Alcotest.test_case "locality generate" `Quick test_generate;
    Alcotest.test_case "locality events" `Quick test_event_times_inside_localities;
    Alcotest.test_case "coverage bounds" `Quick test_coverage_bounds;
    Alcotest.test_case "coverage merge" `Quick test_coverage_merges_overlaps;
    Alcotest.test_case "autocorrelation" `Quick test_autocorrelation_sign;
    QCheck_alcotest.to_alcotest prop_estimator_positive;
  ]
