(* Tests for the hardware model: CPU timing, topology, machine. *)

open Sim_hw

let test_cpu_model_defaults () =
  let m = Cpu_model.default in
  Alcotest.(check int) "slot = 10 ms" 23_300_000 (Cpu_model.slot_cycles m);
  Alcotest.(check int) "period = 3 slots" 69_900_000 (Cpu_model.period_cycles m);
  Alcotest.(check int) "slice = 3 slots" 69_900_000 (Cpu_model.slice_cycles m);
  Alcotest.(check bool) "valid" true (Cpu_model.validate m = Ok ())

let test_cpu_model_validation () =
  let bad = { Cpu_model.default with Cpu_model.slot_ms = 0 } in
  Alcotest.(check bool) "invalid slot" true
    (match Cpu_model.validate bad with Error _ -> true | Ok () -> false);
  let bad_slice = { Cpu_model.default with Cpu_model.slots_per_slice = -1 } in
  Alcotest.(check bool) "invalid slice" true
    (match Cpu_model.validate bad_slice with Error _ -> true | Ok () -> false)

let test_topology () =
  let t = Topology.default in
  Alcotest.(check int) "8 pcpus" 8 (Topology.pcpu_count t);
  Alcotest.(check int) "socket of 0" 0 (Topology.socket_of t 0);
  Alcotest.(check int) "socket of 4" 1 (Topology.socket_of t 4);
  Alcotest.(check bool) "same socket" true (Topology.same_socket t 0 3);
  Alcotest.(check bool) "cross socket" false (Topology.same_socket t 3 4);
  Alcotest.(check (list int)) "socket 1 pcpus" [ 4; 5; 6; 7 ]
    (Topology.pcpus_of_socket t 1);
  let raised = try ignore (Topology.socket_of t 8); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "out of range" true raised

let make_machine ?(stagger = true) () =
  let engine = Sim_engine.Engine.create () in
  let machine =
    Machine.create ~stagger engine Cpu_model.default Topology.default
  in
  (engine, machine)

let test_phases_staggered () =
  let _, m = make_machine () in
  let slot = Cpu_model.slot_cycles Cpu_model.default in
  Alcotest.(check int) "pcpu 0 phase" 0 (Machine.phase m 0);
  Alcotest.(check int) "pcpu 1 phase" (slot / 8) (Machine.phase m 1);
  Alcotest.(check int) "pcpu 7 phase" (7 * slot / 8) (Machine.phase m 7)

let test_phases_aligned () =
  let _, m = make_machine ~stagger:false () in
  for p = 0 to 7 do
    Alcotest.(check int) "aligned" 0 (Machine.phase m p)
  done

let test_next_boundary () =
  let _, m = make_machine () in
  let slot = Cpu_model.slot_cycles Cpu_model.default in
  Alcotest.(check int) "first boundary" 0 (Machine.next_boundary m ~pcpu:0 ~after:(-1));
  Alcotest.(check int) "after 0" slot (Machine.next_boundary m ~pcpu:0 ~after:0);
  let ph1 = Machine.phase m 1 in
  Alcotest.(check int) "pcpu1 first" ph1 (Machine.next_boundary m ~pcpu:1 ~after:0);
  Alcotest.(check int) "pcpu1 second" (ph1 + slot)
    (Machine.next_boundary m ~pcpu:1 ~after:ph1)

let test_slot_events () =
  let engine, m = make_machine () in
  let counts = Array.make 8 0 in
  Machine.set_slot_handler m (fun pcpu -> counts.(pcpu) <- counts.(pcpu) + 1);
  Machine.start m;
  let slot = Cpu_model.slot_cycles Cpu_model.default in
  (* Run for exactly 3 slots: every PCPU sees 3 boundaries (its phase
     offset puts each boundary within the window). *)
  Sim_engine.Engine.run ~until:((3 * slot) - 1) engine;
  Array.iteri
    (fun p c -> Alcotest.(check int) (Printf.sprintf "pcpu %d slots" p) 3 c)
    counts

let test_period_before_slot () =
  let engine, m = make_machine () in
  let log = ref [] in
  Machine.set_slot_handler m (fun pcpu ->
      if pcpu = 0 then log := `Slot :: !log);
  Machine.set_period_handler m (fun () -> log := `Period :: !log);
  Machine.start m;
  Sim_engine.Engine.run ~until:1 engine;
  (* At t = 0 the period handler must fire before PCPU 0's slot handler
     so fresh credit is visible to the decision. *)
  match List.rev !log with
  | `Period :: `Slot :: _ -> ()
  | _ -> Alcotest.fail "period did not precede slot at t=0"

let test_requires_handler () =
  let _, m = make_machine () in
  let raised = try Machine.start m; false with Failure _ -> true in
  Alcotest.(check bool) "start without handler fails" true raised

let test_double_start () =
  let _, m = make_machine () in
  Machine.set_slot_handler m (fun _ -> ());
  Machine.start m;
  let raised = try Machine.start m; false with Failure _ -> true in
  Alcotest.(check bool) "double start fails" true raised

let test_ipi () =
  let engine, m = make_machine () in
  Machine.set_slot_handler m (fun _ -> ());
  let delivered = ref (-1) in
  Machine.send_ipi m ~src:0 ~dst:3 (fun () -> delivered := Sim_engine.Engine.now engine);
  Alcotest.(check int) "counted" 1 (Machine.ipis_sent m);
  Sim_engine.Engine.run ~until:Cpu_model.default.Cpu_model.ipi_latency_cycles engine;
  Alcotest.(check int) "latency"
    Cpu_model.default.Cpu_model.ipi_latency_cycles !delivered

let test_ipi_cross_socket () =
  let engine, m = make_machine () in
  Machine.set_slot_handler m (fun _ -> ());
  let base = Cpu_model.default.Cpu_model.ipi_latency_cycles in
  let same = ref (-1) and cross = ref (-1) in
  Machine.send_ipi m ~src:0 ~dst:3 (fun () -> same := Sim_engine.Engine.now engine);
  Machine.send_ipi m ~src:0 ~dst:4 (fun () -> cross := Sim_engine.Engine.now engine);
  Sim_engine.Engine.run ~until:(3 * base) engine;
  Alcotest.(check int) "same socket latency" base !same;
  Alcotest.(check int) "cross socket doubles" (2 * base) !cross;
  Alcotest.(check int) "cross counter" 1 (Machine.ipis_cross_socket m);
  Alcotest.(check int) "total counter" 2 (Machine.ipis_sent m)

let test_ipi_bad_dst () =
  let _, m = make_machine () in
  let raised =
    try Machine.send_ipi m ~src:0 ~dst:99 (fun () -> ()); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad dst" true raised

let suite =
  [
    Alcotest.test_case "cpu model defaults" `Quick test_cpu_model_defaults;
    Alcotest.test_case "cpu model validation" `Quick test_cpu_model_validation;
    Alcotest.test_case "topology" `Quick test_topology;
    Alcotest.test_case "staggered phases" `Quick test_phases_staggered;
    Alcotest.test_case "aligned phases" `Quick test_phases_aligned;
    Alcotest.test_case "next boundary" `Quick test_next_boundary;
    Alcotest.test_case "slot events" `Quick test_slot_events;
    Alcotest.test_case "period before slot" `Quick test_period_before_slot;
    Alcotest.test_case "handler required" `Quick test_requires_handler;
    Alcotest.test_case "double start" `Quick test_double_start;
    Alcotest.test_case "ipi" `Quick test_ipi;
    Alcotest.test_case "ipi cross socket" `Quick test_ipi_cross_socket;
    Alcotest.test_case "ipi bad dst" `Quick test_ipi_bad_dst;
  ]
