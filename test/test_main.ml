let () =
  Alcotest.run "asman"
    [
      ("heap", Test_heap.suite);
      ("rng", Test_rng.suite);
      ("units", Test_units.suite);
      ("engine", Test_engine.suite);
      ("equeue", Test_equeue.suite);
      ("stats", Test_stats.suite);
      ("hw", Test_hw.suite);
      ("vmm-units", Test_vmm_units.suite);
      ("learn", Test_learn.suite);
      ("guest-units", Test_guest_units.suite);
      ("monitor", Test_monitor.suite);
      ("kernel-exec", Test_kernel_exec.suite);
      ("workloads", Test_workloads.suite);
      ("scenario", Test_scenario.suite);
      ("sched", Test_sched.suite);
      ("integration", Test_integration.suite);
      ("pool", Test_pool.suite);
      ("faults", Test_faults.suite);
      ("experiments", Test_experiments.suite);
      ("oov-ablations", Test_oov.suite);
      ("models", Test_models.suite);
      ("properties", Test_properties.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("shard", Test_shard.suite);
      ("decouple", Test_decouple.suite);
      ("cluster", Test_cluster.suite);
      ("registry", Test_registry.suite);
    ]
