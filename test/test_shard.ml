(* Conservative PDES shard engine: window protocol, cross-shard
   mailbox ordering, and the -j1-vs-jN determinism contract — both at
   the Shard level (real partitioned queues) and at the scenario level
   (the engine's coupled-mode sharding ledger behind --sim-jobs). *)

open Sim_engine

(* ----- window protocol ----- *)

(* An event exactly at the lookahead edge belongs to the next window:
   with lookahead 100 and events at t=0 and t=100, the first window's
   horizon is 0 + 100, draining strictly below it — so the run takes
   exactly two windows. *)
let test_horizon_edge_defers () =
  let t = Shard.create ~shards:1 ~lookahead:100 () in
  let order = ref [] in
  ignore (Shard.schedule t ~shard:0 ~time:0 (fun () -> order := 0 :: !order));
  ignore
    (Shard.schedule t ~shard:0 ~time:100 (fun () -> order := 100 :: !order));
  Shard.run ~workers:1 t;
  Alcotest.(check (list int)) "both fired in order" [ 0; 100 ] (List.rev !order);
  Alcotest.(check int) "two windows" 2 (Shard.windows t)

(* Events strictly inside the horizon all drain in one window. *)
let test_within_horizon_one_window () =
  let t = Shard.create ~shards:1 ~lookahead:100 () in
  for time = 0 to 99 do
    ignore (Shard.schedule t ~shard:0 ~time (fun () -> ()))
  done;
  Shard.run ~workers:1 t;
  Alcotest.(check int) "one window" 1 (Shard.windows t);
  Alcotest.(check int) "all fired" 100 (Shard.events_fired t)

(* [until] clamps every shard clock even when queues still hold
   events, mirroring Engine.run. *)
let test_until_clamps_clocks () =
  let t = Shard.create ~shards:2 ~lookahead:10 () in
  ignore (Shard.schedule t ~shard:0 ~time:5 (fun () -> ()));
  ignore (Shard.schedule t ~shard:1 ~time:500 (fun () -> ()));
  Shard.run ~workers:1 ~until:50 t;
  Alcotest.(check int) "shard 0 clock at until" 50 (Shard.clock t ~shard:0);
  Alcotest.(check int) "shard 1 clock at until" 50 (Shard.clock t ~shard:1);
  Alcotest.(check int) "late event still queued" 1 (Shard.events_fired t)

(* ----- post contract ----- *)

let test_post_below_lookahead_rejected () =
  let t = Shard.create ~shards:2 ~lookahead:100 () in
  ignore
    (Shard.schedule t ~shard:0 ~time:50 (fun () ->
         (* clock is 50; lookahead demands time >= 150. *)
         Alcotest.check_raises "sub-lookahead post rejected"
           (Invalid_argument
              "Shard.post: time 149 violates lookahead (shard 0 clock 50 + 100)")
           (fun () -> Shard.post t ~src:0 ~dst:1 ~time:149 (fun () -> ()))));
  Shard.run ~workers:1 t

let test_post_at_lookahead_accepted () =
  let t = Shard.create ~shards:2 ~lookahead:100 () in
  let delivered = ref (-1) in
  ignore
    (Shard.schedule t ~shard:0 ~time:50 (fun () ->
         Shard.post t ~src:0 ~dst:1 ~time:150 (fun () ->
             delivered := Shard.clock t ~shard:1)));
  Shard.run ~workers:1 t;
  Alcotest.(check int) "delivered exactly at lookahead edge" 150 !delivered;
  Alcotest.(check int) "one cross post" 1 (Shard.cross_posts t)

(* Cross-shard mail is delivered in (time, src, per-src seq) order no
   matter the order the posts were made in. *)
let test_mail_order () =
  let t = Shard.create ~shards:3 ~lookahead:10 () in
  let log = ref [] in
  let arrival tag () = log := tag :: !log in
  (* Shard 0 and shard 1 each post to shard 2 from their t=0 events;
     posts land at mixed times and are issued in an order that
     disagrees with (time, src, seq). *)
  ignore
    (Shard.schedule t ~shard:0 ~time:0 (fun () ->
         Shard.post t ~src:0 ~dst:2 ~time:30 (arrival "t30-src0-a");
         Shard.post t ~src:0 ~dst:2 ~time:20 (arrival "t20-src0");
         Shard.post t ~src:0 ~dst:2 ~time:30 (arrival "t30-src0-b")));
  ignore
    (Shard.schedule t ~shard:1 ~time:0 (fun () ->
         Shard.post t ~src:1 ~dst:2 ~time:30 (arrival "t30-src1");
         Shard.post t ~src:1 ~dst:2 ~time:20 (arrival "t20-src1")));
  Shard.run ~workers:1 t;
  Alcotest.(check (list string))
    "delivery order is (time, src, seq)"
    [ "t20-src0"; "t20-src1"; "t30-src0-a"; "t30-src0-b"; "t30-src1" ]
    (List.rev !log)

(* ----- cancel ----- *)

(* Cancelling from inside the drained window: an early event unlinks a
   later event of the same window mid-drain; the victim must not fire,
   and re-cancelling (now stale) must refuse. *)
let test_cancel_inside_drained_window () =
  let t = Shard.create ~shards:1 ~lookahead:100 () in
  let fired = ref [] in
  let victim = ref (-1) in
  let live = ref false in
  let stale = ref true in
  ignore
    (Shard.schedule t ~shard:0 ~time:5 (fun () ->
         fired := 5 :: !fired;
         live := Shard.cancel t ~shard:0 !victim;
         stale := Shard.cancel t ~shard:0 !victim));
  ignore (Shard.schedule t ~shard:0 ~time:7 (fun () -> fired := 7 :: !fired));
  victim := Shard.schedule t ~shard:0 ~time:8 (fun () -> fired := 8 :: !fired);
  Shard.run ~workers:1 t;
  Alcotest.(check (list int)) "victim never fired" [ 5; 7 ] (List.rev !fired);
  Alcotest.(check bool) "live cancel succeeded" true !live;
  Alcotest.(check bool) "second cancel is stale" false !stale;
  Alcotest.(check int) "two events fired" 2 (Shard.events_fired t)

(* Mailbox delivery recycles pooled queue slots on the destination
   shard; cancelling a local decoy scheduled at the mailed event's
   exact fire time must unlink the decoy, never the mail. *)
let test_cancel_decoy_spares_mailed_event () =
  let t = Shard.create ~shards:2 ~lookahead:100 () in
  let fired = ref [] in
  let decoy =
    Shard.schedule t ~shard:1 ~time:200 (fun () -> fired := "decoy" :: !fired)
  in
  ignore
    (Shard.schedule t ~shard:0 ~time:0 (fun () ->
         Shard.post t ~src:0 ~dst:1 ~time:200 (fun () ->
             fired := "mail" :: !fired)));
  ignore
    (Shard.schedule t ~shard:1 ~time:150 (fun () ->
         Alcotest.(check bool)
           "decoy cancel succeeds" true
           (Shard.cancel t ~shard:1 decoy)));
  Shard.run ~workers:1 t;
  Alcotest.(check (list string))
    "mail delivered, decoy suppressed" [ "mail" ] (List.rev !fired);
  Alcotest.(check int) "one cross post" 1 (Shard.cross_posts t)

(* Cancelling a not-yet-delivered window's event from a mailed
   action: mail fires on the destination shard and may cancel
   destination-local events like any local action. *)
let test_mailed_action_cancels_local_event () =
  let t = Shard.create ~shards:2 ~lookahead:50 () in
  let fired = ref [] in
  let doomed =
    Shard.schedule t ~shard:1 ~time:120 (fun () -> fired := "doomed" :: !fired)
  in
  ignore
    (Shard.schedule t ~shard:0 ~time:0 (fun () ->
         Shard.post t ~src:0 ~dst:1 ~time:100 (fun () ->
             fired := "mail" :: !fired;
             Alcotest.(check bool)
               "mailed action cancels ahead" true
               (Shard.cancel t ~shard:1 doomed))));
  Shard.run ~workers:1 t;
  Alcotest.(check (list string))
    "only the mail fired" [ "mail" ] (List.rev !fired)

(* ----- determinism contracts ----- *)

(* A deterministic little workload: self-rescheduling chains whose
   delays derive from (pcpu, fire time) only, plus cross-shard posts —
   the same partition-independent construction the pdes bench uses. *)
let build_chains t ~pcpus ~shards ~lookahead:la =
  let shard_of p = p * shards / pcpus in
  let mix v =
    let h = v * 0x15813 in
    (h lxor (h lsr 17)) land 0xFFFFFF
  in
  for p = 0 to pcpus - 1 do
    let sp = shard_of p in
    let sdst = shard_of ((p + (pcpus / 2)) mod pcpus) in
    let rec act () =
      let time = Shard.clock t ~shard:sp in
      let m = mix ((time * 61) + p) in
      if m land 7 = 0 then
        Shard.post t ~src:sp ~dst:sdst
          ~time:(time + la + 1 + (m lsr 3))
          (fun () -> ());
      ignore (Shard.schedule t ~shard:sp ~time:(time + 1 + (m lsr 4)) act)
    in
    ignore (Shard.schedule t ~shard:sp ~time:(1 + mix (p * 977)) act)
  done

(* Same partition, different worker counts: identical per-shard
   streams, checked via the order-sensitive fingerprint. *)
let test_workers_irrelevant () =
  let run workers =
    let t = Shard.create ~shards:4 ~lookahead:1000 () in
    build_chains t ~pcpus:16 ~shards:4 ~lookahead:1000;
    Shard.run ~workers ~until:100_000 t;
    (Shard.fingerprint t, Shard.events_fired t)
  in
  let seq = run 1 in
  let par = run 4 in
  Alcotest.(check (pair string int)) "1 worker = 4 workers" seq par

(* Different partitions of the same chains: identical event multiset,
   checked via the commutative digest — the -j1-vs-jN oracle. *)
let test_partition_independent_digest () =
  let run shards =
    let t = Shard.create ~shards ~lookahead:1000 () in
    build_chains t ~pcpus:16 ~shards ~lookahead:1000;
    Shard.run ~workers:1 ~until:100_000 t;
    (Shard.digest t, Shard.events_fired t)
  in
  let d1, e1 = run 1 in
  let d2, e2 = run 2 in
  let d4, e4 = run 4 in
  Alcotest.(check int) "-j1 = -j2 events" e1 e2;
  Alcotest.(check int) "-j1 = -j4 events" e1 e4;
  Alcotest.(check int) "-j1 = -j2 digest" d1 d2;
  Alcotest.(check int) "-j1 = -j4 digest" d1 d4

(* A worker raising mid-window must not wedge or kill the team: the
   exception propagates to the caller after the window barrier. *)
let test_worker_exception_propagates () =
  let t = Shard.create ~shards:4 ~lookahead:10 () in
  ignore (Shard.schedule t ~shard:2 ~time:5 (fun () -> failwith "boom"));
  Alcotest.check_raises "action exception reaches run" (Failure "boom")
    (fun () -> Shard.run ~workers:4 t)

(* ----- scenario level: --sim-jobs is outcome-invariant ----- *)

(* The engine's coupled-mode ledger must never change scheduler-visible
   results: fig1a outcomes are byte-identical at sim-jobs 1/2/4. *)
let test_fig1a_identical_across_sim_jobs () =
  let exp =
    match Asman.Experiments.find "fig1a" with
    | Some e -> e
    | None -> Alcotest.fail "fig1a not registered"
  in
  let run sim_jobs =
    let config =
      Asman.Config.{ default with scale = 0.02; seed = 5L; sim_jobs }
    in
    exp.Asman.Experiments.run config
  in
  let base = run 1 in
  Alcotest.(check bool) "sim-jobs 2 = sim-jobs 1" true (run 2 = base);
  Alcotest.(check bool) "sim-jobs 4 = sim-jobs 1" true (run 4 = base)

let suite =
  [
    Alcotest.test_case "horizon edge defers" `Quick test_horizon_edge_defers;
    Alcotest.test_case "within horizon one window" `Quick
      test_within_horizon_one_window;
    Alcotest.test_case "until clamps clocks" `Quick test_until_clamps_clocks;
    Alcotest.test_case "post below lookahead rejected" `Quick
      test_post_below_lookahead_rejected;
    Alcotest.test_case "post at lookahead accepted" `Quick
      test_post_at_lookahead_accepted;
    Alcotest.test_case "mail order (time, src, seq)" `Quick test_mail_order;
    Alcotest.test_case "cancel inside drained window" `Quick
      test_cancel_inside_drained_window;
    Alcotest.test_case "cancel decoy spares mailed event" `Quick
      test_cancel_decoy_spares_mailed_event;
    Alcotest.test_case "mailed action cancels local event" `Quick
      test_mailed_action_cancels_local_event;
    Alcotest.test_case "worker count irrelevant" `Quick test_workers_irrelevant;
    Alcotest.test_case "partition-independent digest" `Quick
      test_partition_independent_digest;
    Alcotest.test_case "worker exception propagates" `Quick
      test_worker_exception_propagates;
    Alcotest.test_case "fig1a identical across sim-jobs" `Slow
      test_fig1a_identical_across_sim_jobs;
  ]
