(* Tests for the workload models. *)

open Sim_workloads

let freq = Sim_engine.Units.ghz_f 2.33

(* ----- NAS ----- *)

let test_nas_names () =
  Alcotest.(check int) "seven benchmarks" 7 (List.length Nas.all);
  List.iter
    (fun b ->
      match Nas.of_name (Nas.name b) with
      | Some b' -> Alcotest.(check string) "roundtrip" (Nas.name b) (Nas.name b')
      | None -> Alcotest.fail "name roundtrip failed")
    Nas.all;
  Alcotest.(check bool) "lowercase accepted" true (Nas.of_name "lu" = Some Nas.LU);
  Alcotest.(check bool) "unknown" true (Nas.of_name "zz" = None)

let test_nas_scale () =
  let full = Nas.params Nas.LU ~freq ~scale:1.0 in
  let half = Nas.params Nas.LU ~freq ~scale:0.5 in
  Alcotest.(check bool) "iters scale" true
    (abs (half.Nas.iters * 2 - full.Nas.iters) <= 2);
  Alcotest.(check int) "phase length unchanged" full.Nas.phase_compute
    half.Nas.phase_compute;
  let tiny = Nas.params Nas.LU ~freq ~scale:0.0001 in
  Alcotest.(check bool) "iters floor" true (tiny.Nas.iters >= 2);
  let raised =
    try ignore (Nas.params Nas.LU ~freq ~scale:0.); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero scale" true raised

let test_nas_workload_structure () =
  let p = Nas.params Nas.LU ~freq ~scale:0.1 in
  let w = Nas.workload ~threads:4 p in
  Alcotest.(check int) "threads" 4 (Workload.thread_count w);
  Alcotest.(check bool) "concurrent" true (w.Workload.kind = Workload.Concurrent);
  Alcotest.(check int) "barriers" p.Nas.phases_per_iter
    (List.length w.Workload.barriers);
  List.iter
    (fun (_, parties) -> Alcotest.(check int) "parties" 4 parties)
    w.Workload.barriers;
  (* All threads share one program shape. *)
  List.iter
    (fun spec ->
      Alcotest.(check bool) "restart for repeated rounds" true
        spec.Workload.restart)
    w.Workload.threads

let test_nas_sync_signatures () =
  (* EP must be far coarser than CG (sync ops per unit of compute). *)
  let density b =
    let p = Nas.params b ~freq ~scale:1.0 in
    float_of_int (p.Nas.phases_per_iter * (p.Nas.locks_per_phase + 1))
    /. Sim_engine.Units.sec_of_cycles freq
         (p.Nas.phases_per_iter * p.Nas.phase_compute)
  in
  Alcotest.(check bool) "EP coarsest" true (density Nas.EP < density Nas.CG /. 10.);
  Alcotest.(check bool) "LU sync-heavy" true (density Nas.LU > density Nas.BT)

let test_nas_ideal_runtime () =
  let sec = Nas.ideal_runtime_sec Nas.LU ~freq ~scale:0.1 in
  Alcotest.(check bool) "in range" true (sec > 0.2 && sec < 0.5)

(* ----- SPEC CPU ----- *)

let test_speccpu () =
  let gcc = Speccpu.params Speccpu.Gcc ~freq ~scale:1.0 in
  let bzip2 = Speccpu.params Speccpu.Bzip2 ~freq ~scale:1.0 in
  Alcotest.(check bool) "bzip2 longer" true (bzip2.Speccpu.chunks > gcc.Speccpu.chunks);
  let w = Speccpu.workload ~copies:4 gcc in
  Alcotest.(check int) "four copies" 4 (Workload.thread_count w);
  Alcotest.(check bool) "throughput kind" true
    (w.Workload.kind = Workload.Throughput);
  Alcotest.(check bool) "no sync objects" true
    (w.Workload.barriers = [] && w.Workload.semaphores = []);
  List.iter
    (fun spec ->
      Alcotest.(check (list int)) "no locks" []
        (Sim_guest.Program.locks_referenced spec.Workload.program))
    w.Workload.threads

(* ----- SPECjbb ----- *)

let test_specjbb_structure () =
  let p = Specjbb.default_params ~freq ~warehouses:6 in
  let w = Specjbb.workload ~vcpus:4 p in
  Alcotest.(check int) "six warehouse threads" 6 (Workload.thread_count w);
  (* Warehouses spread over the four VCPUs. *)
  let affinities =
    List.map (fun s -> s.Workload.affinity) w.Workload.threads
  in
  Alcotest.(check (list int)) "round robin affinity" [ 0; 1; 2; 3; 0; 1 ] affinities;
  List.iter
    (fun spec ->
      let locks = Sim_guest.Program.locks_referenced spec.Workload.program in
      Alcotest.(check bool) "uses the hot lock set" true
        (locks <> [] && List.for_all (fun l -> l < p.Specjbb.hot_locks) locks))
    w.Workload.threads

let test_specjbb_score () =
  let entries = [ (1, 10.); (3, 20.); (4, 30.); (8, 50.) ] in
  Alcotest.(check (float 1e-9)) "mean of >= 4 warehouses" 40.
    (Specjbb.score entries ~vcpus:4);
  let raised =
    try ignore (Specjbb.score [ (1, 10.) ] ~vcpus:4); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "no qualifying" true raised

(* ----- workload installation ----- *)

let test_install () =
  let config = Asman.Config.with_scale Asman.Config.default 0.05 in
  let workload =
    Nas.workload (Nas.params Nas.MG ~freq:(Asman.Config.freq config) ~scale:0.05)
  in
  let s =
    Asman.Scenario.build config ~sched:Asman.Config.Credit
      ~vms:
        [ { Asman.Scenario.vm_name = "V"; weight = 256; vcpus = 4;
            workload = Some workload } ]
  in
  let inst = Asman.Scenario.find_vm s "V" in
  match inst.Asman.Scenario.kernel with
  | Some k ->
    Alcotest.(check int) "threads installed" 4
      (List.length (Sim_guest.Kernel.threads k));
    Alcotest.(check int) "barriers installed"
      (List.length workload.Workload.barriers)
      (List.length (Sim_guest.Kernel.barrier_stats k))
  | None -> Alcotest.fail "no kernel"

let test_critical_path () =
  let w =
    Synthetic.compute_only ~threads:3 ~chunks:2 ~chunk_cycles:1000 ()
  in
  Alcotest.(check int) "critical path" 2000 (Workload.critical_path_cycles w);
  Alcotest.(check int) "total" 6000 (Workload.total_compute_cycles w)

let test_random_program_well_formed () =
  let rng = Sim_engine.Rng.create 5L in
  for _ = 1 to 20 do
    let p = Synthetic.random_program rng ~ops:30 ~nlocks:3 ~max_compute:1000 in
    (* Locks appear in balanced Lock/Compute/Unlock triples: the
       cursor stream must alternate lock/unlock per lock id. *)
    let held = Hashtbl.create 4 in
    let r = Sim_engine.Rng.create 6L in
    let c = Sim_guest.Program.cursor p in
    let rec walk () =
      match Sim_guest.Program.next c ~rng:r with
      | None -> ()
      | Some (Sim_guest.Program.I_lock l) ->
        if Hashtbl.mem held l then Alcotest.fail "re-lock while held";
        Hashtbl.replace held l ();
        walk ()
      | Some (Sim_guest.Program.I_unlock l) ->
        if not (Hashtbl.mem held l) then Alcotest.fail "unlock without lock";
        Hashtbl.remove held l;
        walk ()
      | Some _ -> walk ()
    in
    walk ();
    Alcotest.(check int) "all released" 0 (Hashtbl.length held)
  done

let suite =
  [
    Alcotest.test_case "nas names" `Quick test_nas_names;
    Alcotest.test_case "nas scale" `Quick test_nas_scale;
    Alcotest.test_case "nas workload structure" `Quick test_nas_workload_structure;
    Alcotest.test_case "nas sync signatures" `Quick test_nas_sync_signatures;
    Alcotest.test_case "nas ideal runtime" `Quick test_nas_ideal_runtime;
    Alcotest.test_case "speccpu" `Quick test_speccpu;
    Alcotest.test_case "specjbb structure" `Quick test_specjbb_structure;
    Alcotest.test_case "specjbb score" `Quick test_specjbb_score;
    Alcotest.test_case "install" `Quick test_install;
    Alcotest.test_case "critical path" `Quick test_critical_path;
    Alcotest.test_case "random program" `Quick test_random_program_well_formed;
  ]
