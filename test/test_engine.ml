(* Tests for the discrete-event engine. *)

open Sim_engine

let test_time_starts_at_zero () =
  let e = Engine.create () in
  Alcotest.(check int) "now" 0 (Engine.now e)

let test_fires_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag () = log := tag :: !log in
  ignore (Engine.schedule_at e ~time:30 (record "c"));
  ignore (Engine.schedule_at e ~time:10 (record "a"));
  ignore (Engine.schedule_at e ~time:20 (record "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.schedule_at e ~time:5 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_schedule_after () =
  let e = Engine.create () in
  let fired = ref (-1) in
  ignore
    (Engine.schedule_at e ~time:100 (fun () ->
         ignore
           (Engine.schedule_after e ~delay:50 (fun () -> fired := Engine.now e))));
  Engine.run e;
  Alcotest.(check int) "relative" 150 !fired

let test_past_raises () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e ~time:10 (fun () -> ()));
  Engine.run e;
  (* now = 10; scheduling before now must fail *)
  let raised =
    try
      ignore (Engine.schedule_at e ~time:5 (fun () -> ()));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "past scheduling raises" true raised

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e ~time:10 (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Engine.is_pending e h);
  Engine.cancel e h;
  Alcotest.(check bool) "not pending" false (Engine.is_pending e h);
  Engine.run e;
  Alcotest.(check bool) "did not fire" false !fired;
  (* double-cancel is a no-op *)
  Engine.cancel e h

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule_at e ~time:(i * 10) (fun () -> incr count))
  done;
  Engine.run ~until:35 e;
  Alcotest.(check int) "fired 3 of 10" 3 !count;
  Alcotest.(check int) "clock parked at limit" 35 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest fired" 10 !count

let test_run_until_empty_advances_clock () =
  let e = Engine.create () in
  Engine.run ~until:1_000 e;
  Alcotest.(check int) "clock advanced" 1_000 (Engine.now e)

let test_halt () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule_at e ~time:i (fun () ->
           incr count;
           if !count = 4 then Engine.halt e))
  done;
  Engine.run e;
  Alcotest.(check int) "halted after 4" 4 !count;
  Alcotest.(check bool) "halted flag" true (Engine.halted e)

let test_events_fired () =
  let e = Engine.create () in
  for i = 1 to 7 do
    ignore (Engine.schedule_at e ~time:i (fun () -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "count" 7 (Engine.events_fired e)

let test_pending_count () =
  let e = Engine.create () in
  let h1 = Engine.schedule_at e ~time:1 (fun () -> ()) in
  let _h2 = Engine.schedule_at e ~time:2 (fun () -> ()) in
  Alcotest.(check int) "two pending" 2 (Engine.pending_count e);
  Engine.cancel e h1;
  Alcotest.(check int) "one pending" 1 (Engine.pending_count e)

let test_recursive_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 100 then ignore (Engine.schedule_after e ~delay:1 tick)
  in
  ignore (Engine.schedule_at e ~time:0 tick);
  Engine.run e;
  Alcotest.(check int) "ticks" 100 !count;
  Alcotest.(check int) "time" 99 (Engine.now e)

let test_zero_delay_fires_after_queued () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_at e ~time:10 (fun () ->
         ignore (Engine.schedule_after e ~delay:0 (fun () -> log := "late" :: !log));
         log := "first" :: !log));
  ignore (Engine.schedule_at e ~time:10 (fun () -> log := "second" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "zero delay ordering"
    [ "first"; "second"; "late" ] (List.rev !log)

let prop_monotone_clock =
  QCheck.Test.make ~name:"clock is monotone over random schedules"
    QCheck.(list (int_range 0 10_000))
    (fun times ->
      let e = Engine.create () in
      let ok = ref true in
      let last = ref 0 in
      List.iter
        (fun t ->
          ignore
            (Engine.schedule_at e ~time:t (fun () ->
                 if Engine.now e < !last then ok := false;
                 last := Engine.now e)))
        times;
      Engine.run e;
      !ok)

let suite =
  [
    Alcotest.test_case "zero start" `Quick test_time_starts_at_zero;
    Alcotest.test_case "order" `Quick test_fires_in_order;
    Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
    Alcotest.test_case "schedule_after" `Quick test_schedule_after;
    Alcotest.test_case "past raises" `Quick test_past_raises;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "run until empty" `Quick test_run_until_empty_advances_clock;
    Alcotest.test_case "halt" `Quick test_halt;
    Alcotest.test_case "events fired" `Quick test_events_fired;
    Alcotest.test_case "pending count" `Quick test_pending_count;
    Alcotest.test_case "recursive" `Quick test_recursive_scheduling;
    Alcotest.test_case "zero delay" `Quick test_zero_delay_fires_after_queued;
    QCheck_alcotest.to_alcotest prop_monotone_clock;
  ]
