(* The chaos layer end-to-end: named profiles parse, fault runs
   complete with the runtime invariant checker clean (credit
   conserved, no VCPU lost or duplicated), the coscheduling watchdog
   demotes under sustained IPI loss, and a (profile, seed) pair
   reproduces the same numbers at any worker count. *)

open Asman
module Fault = Sim_faults.Fault

(* Three LU VMs over-commit the 8 PCPUs, so the gang scheduler sends
   coscheduling IPIs every period — the traffic the faults attack. *)
let contended config ~sched =
  let lu () =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq:(Config.freq config)
         ~scale:config.Config.scale)
  in
  Scenario.build config ~sched
    ~vms:
      (List.map
         (fun i ->
           {
             Scenario.vm_name = Printf.sprintf "V%d" i;
             weight = 256;
             vcpus = 4;
             workload = Some (lu ());
           })
         [ 1; 2; 3 ])

let run_chaos ?(rounds = 2) ~seed ~sched chaos =
  let config = Config.with_scale (Config.with_seed Config.default seed) 0.02 in
  let config =
    { config with Config.faults = chaos; invariants = Sim_vmm.Vmm.Record }
  in
  let s = contended config ~sched in
  let m = Runner.run_rounds s ~rounds ~max_sec:120. in
  (s, m)

let counter m name =
  match List.assoc_opt name m.Runner.sched_counters with
  | Some v -> v
  | None -> 0

let fault_stat m name =
  match List.assoc_opt name m.Runner.fault_stats with Some v -> v | None -> 0

let assert_healthy ~what (s, m) =
  Alcotest.(check int)
    (what ^ ": zero invariant violations")
    0 m.Runner.invariant_violations;
  (match Sim_vmm.Vmm.check_invariants s.Scenario.vmm with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: structural invariants broken: %s" what msg);
  List.iter
    (fun (vm : Runner.vm_metrics) ->
      if vm.Runner.rounds < 1 then
        Alcotest.failf "%s: VM %s never completed a round" what
          vm.Runner.vm_name)
    m.Runner.vms

(* ----- profile naming ----- *)

let test_profile_names () =
  List.iter
    (fun name ->
      (* [known_names] mixes concrete names with <pct> templates. *)
      if not (String.contains name '<') then
        match Fault.of_name name with
        | Some p ->
          Alcotest.(check string) "name round-trips" name p.Fault.pname
        | None -> Alcotest.failf "known name %S does not parse" name)
    Fault.known_names;
  List.iter
    (fun name ->
      match Fault.of_name name with
      | Some p -> Alcotest.(check string) "parametrized" name p.Fault.pname
      | None -> Alcotest.failf "parametrized name %S does not parse" name)
    [ "ipi-loss-10"; "ipi-delay-25"; "vcrd-loss-5" ];
  Alcotest.(check bool) "unknown rejected" true (Fault.of_name "gamma-rays" = None);
  Alcotest.(check bool) "overrange rejected" true (Fault.of_name "ipi-loss-250" = None);
  Alcotest.(check bool) "zero rate is none" true (Fault.is_none (Fault.ipi_loss 0.));
  Alcotest.(check bool) "real rate is a profile" false
    (Fault.is_none (Fault.ipi_loss 0.1));
  Alcotest.(check bool) "to_string non-empty" true
    (String.length (Fault.to_string Fault.chaos_heavy) > 0)

(* ----- every profile completes with invariants intact ----- *)

let test_chaos_profiles_run_clean () =
  List.iter
    (fun name ->
      match Fault.of_name name with
      | None -> Alcotest.failf "profile %S missing" name
      | Some chaos ->
        assert_healthy ~what:name
          (run_chaos ~seed:7L ~sched:Config.Asman chaos))
    [ "ipi-loss-10"; "ipi-delay-25"; "vcrd-loss-20"; "jitter"; "chaos-mild" ];
  (* Credit under the heavy profile: the fault surface minus IPIs. *)
  assert_healthy ~what:"chaos-heavy/credit"
    (run_chaos ~seed:7L ~sched:Config.Credit Fault.chaos_heavy)

(* Stall and hotplug windows first open at 0.7 s / 1.0 s of simulated
   time, so these runs need enough rounds to get there. *)
let named name =
  match Fault.of_name name with
  | Some p -> p
  | None -> Alcotest.failf "profile %S missing" name

let test_stall_and_hotplug () =
  let _, m_stall =
    let r = run_chaos ~rounds:12 ~seed:7L ~sched:Config.Asman (named "stall") in
    assert_healthy ~what:"stall" r;
    r
  in
  Alcotest.(check bool) "a stall window fired" true
    (fault_stat m_stall "pcpu_stalls" >= 1);
  Alcotest.(check bool) "stalled ticks suppressed" true
    (fault_stat m_stall "ticks_suppressed" >= 1);
  let _, m_plug =
    let r =
      run_chaos ~rounds:12 ~seed:7L ~sched:Config.Asman (named "hotplug")
    in
    assert_healthy ~what:"hotplug" r;
    r
  in
  Alcotest.(check bool) "an offline window fired" true
    (fault_stat m_plug "pcpu_offlines" >= 1)

(* ----- self-healing: sustained IPI loss demotes to Credit ----- *)

let test_watchdog_demotes () =
  let ((_, m) as r) =
    run_chaos ~rounds:6 ~seed:5L ~sched:Config.Asman (Fault.ipi_loss 0.10)
  in
  assert_healthy ~what:"ipi-loss-10" r;
  Alcotest.(check bool) "IPIs were dropped" true
    (fault_stat m "ipis_dropped" >= 1);
  Alcotest.(check bool) "launches were tracked" true
    (counter m "cosched_launches" >= 1);
  Alcotest.(check bool) "watchdog demoted at least once" true
    (counter m "watchdog_demotions" >= 1)

let test_clean_run_has_no_watchdog_noise () =
  let _, m = run_chaos ~seed:5L ~sched:Config.Asman Fault.none in
  Alcotest.(check (list (pair string int))) "no fault stats" [] m.Runner.fault_stats;
  Alcotest.(check (list (pair string int)))
    "no watchdog counters" [] m.Runner.sched_counters;
  Alcotest.(check int) "no violations" 0 m.Runner.invariant_violations

(* ----- property: randomized fault schedules hold the invariants ----- *)

let prop_fault_runs_hold_invariants =
  QCheck.Test.make ~count:5
    ~name:"credit conserved and no VCPU lost under random fault seeds"
    QCheck.(pair (int_range 1 10_000) (int_range 0 3))
    (fun (seed, pick) ->
      let chaos =
        match pick with
        | 0 -> Fault.ipi_loss 0.20
        | 1 -> Fault.chaos_mild
        | 2 -> Fault.chaos_heavy
        | _ -> named "stall"
      in
      let s, m = run_chaos ~seed:(Int64.of_int seed) ~sched:Config.Asman chaos in
      m.Runner.invariant_violations = 0
      && Sim_vmm.Vmm.check_invariants s.Scenario.vmm = Ok ())

(* ----- chaos runs are deterministic at any worker count ----- *)

let test_deterministic_across_workers () =
  let grid =
    [
      (Config.Asman, 0.0); (Config.Asman, 0.1); (Config.Asman, 0.2);
      (Config.Credit, 0.2);
    ]
  in
  let measure (sched, rate) =
    let _, m = run_chaos ~seed:5L ~sched (Fault.ipi_loss rate) in
    ( m.Runner.events_fired,
      m.Runner.ipis,
      counter m "watchdog_demotions",
      fault_stat m "ipis_dropped",
      List.map (fun (v : Runner.vm_metrics) -> v.Runner.round_sec) m.Runner.vms
    )
  in
  let sequential = Pool.map ~jobs:1 measure grid in
  let parallel = Pool.map ~jobs:4 measure grid in
  if sequential <> parallel then
    Alcotest.fail "chaos runs differ between -j1 and -j4"

let suite =
  [
    Alcotest.test_case "profile names" `Quick test_profile_names;
    Alcotest.test_case "chaos profiles run clean" `Slow
      test_chaos_profiles_run_clean;
    Alcotest.test_case "stall and hotplug windows" `Slow test_stall_and_hotplug;
    Alcotest.test_case "watchdog demotes under IPI loss" `Slow
      test_watchdog_demotes;
    Alcotest.test_case "clean run has no watchdog noise" `Quick
      test_clean_run_has_no_watchdog_noise;
    QCheck_alcotest.to_alcotest prop_fault_runs_hold_invariants;
    Alcotest.test_case "deterministic across workers" `Slow
      test_deterministic_across_workers;
  ]
