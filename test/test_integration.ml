(* Integration tests: full scenarios through Scenario/Runner.

   These exercise the whole stack — machine, VMM, scheduler, guest
   kernel, workloads — on small configurations and check behavioural
   invariants rather than exact numbers. *)

open Asman

let base_config =
  Config.with_scale (Config.with_seed Config.default 11L) 0.05

let single_vm ?(config = base_config) ?(sched = Config.Credit) ?(weight = 256)
    ?(vcpus = 4) workload =
  Scenario.build
    (Config.with_work_conserving config false)
    ~sched
    ~vms:[ { Scenario.vm_name = "V1"; weight; vcpus; workload = Some workload } ]

let freq = Config.freq base_config

let us n = Sim_engine.Units.cycles_of_us freq n
let ms n = Sim_engine.Units.cycles_of_ms freq n

(* ----- basic execution ----- *)

let test_compute_only_completes () =
  let workload =
    Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:10
      ~chunk_cycles:(ms 5) ()
  in
  let s = single_vm workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:10. in
  let runtime = Runner.first_round_sec m ~vm:"V1" in
  (* 10 chunks x 5 ms at a 100% online rate: ~50 ms per thread. *)
  Alcotest.(check bool) "close to ideal" true (runtime >= 0.05 && runtime < 0.08);
  Alcotest.(check bool) "invariants" true
    (Sim_vmm.Vmm.check_invariants s.Scenario.vmm = Ok ())

let test_compute_duration_scales_with_online_rate () =
  let workload () =
    Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:40
      ~chunk_cycles:(ms 5) ()
  in
  let time weight =
    let s = single_vm ~weight (workload ()) in
    let m = Runner.run_rounds s ~rounds:1 ~max_sec:20. in
    Runner.first_round_sec m ~vm:"V1"
  in
  let full = time 256 and capped = time 64 in
  (* 40% online rate: pure compute takes ~2.5x longer (quantization of
     30 ms bursts adds noise on top of the exact 2.5). *)
  Alcotest.(check bool)
    (Printf.sprintf "cap slows compute (%.2fx)" (capped /. full))
    true
    (capped /. full > 1.9 && capped /. full < 3.5)

let test_ping_pong_semaphores () =
  let workload = Sim_workloads.Synthetic.ping_pong ~rounds:50 ~compute_cycles:(us 200) in
  let s = single_vm workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:10. in
  Alcotest.(check int) "completed" 1 (Runner.vm_metrics m ~vm:"V1").Runner.rounds;
  (* Semaphore waits are blocking: none should be recorded as spin. *)
  let mon = Runner.monitor_of s ~vm:"V1" in
  Alcotest.(check bool) "sem waits recorded" true
    (Sim_stats.Histogram.count (Sim_guest.Monitor.sem_histogram mon) > 0)

let test_barrier_loop_completes () =
  let workload =
    Sim_workloads.Synthetic.barrier_loop ~threads:4 ~rounds:20
      ~compute_cycles:(ms 1) ~cv:0.01 ()
  in
  let s = single_vm workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:10. in
  Alcotest.(check int) "completed" 1 (Runner.vm_metrics m ~vm:"V1").Runner.rounds;
  let inst = Scenario.find_vm s "V1" in
  match inst.Scenario.kernel with
  | Some k ->
    let crossings =
      List.fold_left
        (fun acc (_, b) -> acc + Sim_guest.Barrier.crossings b)
        0 (Sim_guest.Kernel.barrier_stats k)
    in
    Alcotest.(check int) "20 crossings" 20 crossings
  | None -> Alcotest.fail "kernel missing"

let test_lock_storm_mutual_exclusion_stats () =
  let workload =
    Sim_workloads.Synthetic.lock_storm ~threads:4 ~rounds:100 ~cs_cycles:(us 2)
      ~think_cycles:(us 20) ()
  in
  let s = single_vm workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:10. in
  Alcotest.(check int) "completed" 1 (Runner.vm_metrics m ~vm:"V1").Runner.rounds;
  let inst = Scenario.find_vm s "V1" in
  match inst.Scenario.kernel with
  | Some k ->
    let _, lock = List.hd (Sim_guest.Kernel.lock_stats k) in
    Alcotest.(check int) "400 acquisitions" 400 (Sim_guest.Spinlock.acquisitions lock);
    Alcotest.(check bool) "contention occurred" true
      (Sim_guest.Spinlock.contended_acquisitions lock > 0);
    Alcotest.(check int) "marks" 400 (Sim_guest.Kernel.total_marks k)
  | None -> Alcotest.fail "kernel missing"

(* ----- fairness (Equations 1-2 hold dynamically) ----- *)

let test_online_rates_match_weights () =
  List.iter
    (fun (weight, expected) ->
      let workload =
        Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:200
          ~chunk_cycles:(ms 5) ()
      in
      let s = single_vm ~weight workload in
      let m = Runner.run_rounds s ~rounds:1 ~max_sec:8. in
      let vm = Runner.vm_metrics m ~vm:"V1" in
      Alcotest.(check bool)
        (Printf.sprintf "weight %d online ~%.3f (got %.3f)" weight expected
           vm.Runner.online_rate)
        true
        (abs_float (vm.Runner.online_rate -. expected) < 0.05))
    [ (256, 1.0); (128, 0.667); (64, 0.4); (32, 0.222) ]

let test_two_vm_share () =
  (* Two busy VMs with 2:1 weights in capped mode: online rates 2:1. *)
  let mk () =
    Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:400
      ~chunk_cycles:(ms 5) ()
  in
  let config = Config.with_work_conserving base_config false in
  let s =
    Scenario.build config ~sched:Config.Credit
      ~vms:
        [
          { Scenario.vm_name = "A"; weight = 512; vcpus = 4; workload = Some (mk ()) };
          { Scenario.vm_name = "B"; weight = 256; vcpus = 4; workload = Some (mk ()) };
        ]
  in
  (* Keep the window well inside the workload duration (A finishes
     its 2 s of work in ~2 s at full speed). *)
  let m = Runner.run_window s ~sec:1.5 in
  let a = (Runner.vm_metrics m ~vm:"A").Runner.online_rate in
  let b = (Runner.vm_metrics m ~vm:"B").Runner.online_rate in
  (* Entitlements: A = 8 * 0.5 / 4 = 1.0, B = 8 * 0.25 / 4 = 0.5. *)
  Alcotest.(check bool)
    (Printf.sprintf "2:1 share (%.3f vs %.3f)" a b)
    true
    (abs_float (a -. 1.0) < 0.07 && abs_float (b -. 0.5) < 0.07)

let test_work_conserving_uses_slack () =
  (* One busy VM in work-conserving mode with a low weight still gets
     the whole machine when nothing else runs. *)
  let workload =
    Sim_workloads.Synthetic.compute_only ~threads:4 ~chunks:100
      ~chunk_cycles:(ms 5) ()
  in
  let s =
    Scenario.build base_config ~sched:Config.Credit
      ~vms:
        [ { Scenario.vm_name = "V1"; weight = 32; vcpus = 4; workload = Some workload } ]
  in
  let m = Runner.run_window s ~sec:0.4 in
  let vm = Runner.vm_metrics m ~vm:"V1" in
  Alcotest.(check bool)
    (Printf.sprintf "uses slack (%.3f)" vm.Runner.online_rate)
    true (vm.Runner.online_rate > 0.9)

(* ----- scheduler invariants ----- *)

let test_invariants_during_run () =
  let workload =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.CG ~freq ~scale:0.05)
  in
  List.iter
    (fun sched ->
      let s = single_vm ~sched ~weight:64 workload in
      (* Check structural invariants at many points during the run. *)
      let engine = s.Scenario.engine in
      let violations = ref 0 in
      let rec check () =
        (match Sim_vmm.Vmm.check_invariants s.Scenario.vmm with
        | Ok () -> ()
        | Error _ -> incr violations);
        ignore (Sim_engine.Engine.schedule_after engine ~delay:(ms 7) check)
      in
      ignore (Sim_engine.Engine.schedule_after engine ~delay:0 check);
      let _ = Runner.run_rounds s ~rounds:1 ~max_sec:10. in
      Alcotest.(check int)
        (Printf.sprintf "no violations under %s" (Config.sched_name sched))
        0 !violations)
    [ Config.Credit; Config.Asman; Config.Cosched_static ]

let test_no_pcpu_overcommit () =
  (* A VCPU can be Running on at most one PCPU: implied by invariants,
     but double-check via the current map after a busy multi-VM run. *)
  let mk b = Sim_workloads.Nas.workload (Sim_workloads.Nas.params b ~freq ~scale:0.05) in
  let s =
    Scenario.build base_config ~sched:Config.Asman
      ~vms:
        [
          { Scenario.vm_name = "A"; weight = 256; vcpus = 4;
            workload = Some (mk Sim_workloads.Nas.LU) };
          { Scenario.vm_name = "B"; weight = 256; vcpus = 4;
            workload = Some (mk Sim_workloads.Nas.SP) };
        ]
  in
  let _ = Runner.run_window s ~sec:1.0 in
  let seen = Hashtbl.create 16 in
  for p = 0 to Sim_vmm.Vmm.pcpu_count s.Scenario.vmm - 1 do
    match Sim_vmm.Vmm.current_on s.Scenario.vmm p with
    | Some v ->
      if Hashtbl.mem seen v.Sim_vmm.Vcpu.id then Alcotest.fail "vcpu on two pcpus";
      Hashtbl.replace seen v.Sim_vmm.Vcpu.id ()
    | None -> ()
  done;
  Alcotest.(check bool) "ran" true (Sim_engine.Engine.now s.Scenario.engine > 0)

(* ----- the headline behaviours ----- *)

let lu_runtime sched weight =
  let workload =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq ~scale:0.05)
  in
  let s = single_vm ~sched ~weight workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
  Runner.first_round_sec m ~vm:"V1"

let test_credit_degrades_concurrent () =
  let full = lu_runtime Config.Credit 256 in
  let capped = lu_runtime Config.Credit 32 in
  (* Fair share alone would give 4.5x; virtualization-induced
     synchronization stalls push well beyond it (paper Fig 1a). *)
  Alcotest.(check bool)
    (Printf.sprintf "superlinear degradation (%.1fx)" (capped /. full))
    true
    (capped /. full > 5.5)

let test_asman_recovers_concurrent () =
  let credit = lu_runtime Config.Credit 32 in
  let asman = lu_runtime Config.Asman 32 in
  (* Paper Fig 7: ASMan saves ~30% of the Credit run time at 22.2%. *)
  Alcotest.(check bool)
    (Printf.sprintf "asman faster (%.2f vs %.2f)" asman credit)
    true
    (asman < 0.8 *. credit)

let test_asman_detects_over_threshold () =
  let workload =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq ~scale:0.05)
  in
  let s = single_vm ~sched:Config.Asman ~weight:32 workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
  let vm = Runner.vm_metrics m ~vm:"V1" in
  Alcotest.(check bool) "adjusting events occurred" true
    (vm.Runner.adjusting_events > 0);
  Alcotest.(check bool) "vcrd flipped" true (vm.Runner.vcrd_transitions > 0);
  Alcotest.(check bool) "ipis were sent" true (m.Runner.ipis > 0)

let test_no_over_threshold_at_full_rate () =
  let workload =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq ~scale:0.05)
  in
  let s = single_vm ~sched:Config.Credit ~weight:256 workload in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:30. in
  let vm = Runner.vm_metrics m ~vm:"V1" in
  Alcotest.(check int) "no over-threshold waits at 100%" 0
    vm.Runner.spin_over_threshold

let test_throughput_insensitive_to_scheduler () =
  (* Non-concurrent workloads must not care about coscheduling
     (paper: "while keeping the performance of non-concurrent
     workloads"). *)
  let time sched =
    let workload =
      Sim_workloads.Speccpu.workload
        (Sim_workloads.Speccpu.params Sim_workloads.Speccpu.Gcc ~freq ~scale:0.05)
    in
    let s = single_vm ~sched ~weight:64 workload in
    let m = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
    Runner.first_round_sec m ~vm:"V1"
  in
  let credit = time Config.Credit and asman = time Config.Asman in
  Alcotest.(check bool)
    (Printf.sprintf "within 10%% (%.3f vs %.3f)" credit asman)
    true
    (abs_float (asman -. credit) /. credit < 0.10)

let test_determinism () =
  let run () = lu_runtime Config.Asman 64 in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12)) "identical runs" a b

let test_seed_changes_outcome () =
  let run seed =
    let config = Config.with_seed base_config seed in
    let workload =
      Sim_workloads.Nas.workload
        (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq
           ~scale:config.Config.scale)
    in
    let s = single_vm ~config ~weight:64 workload in
    let m = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
    (Runner.first_round_sec m ~vm:"V1", m.Runner.events_fired)
  in
  (* Different seeds draw different compute jitter; run times differ. *)
  Alcotest.(check bool) "seeds matter" true (run 1L <> run 2L)

let suite =
  [
    Alcotest.test_case "compute-only completes" `Quick test_compute_only_completes;
    Alcotest.test_case "compute scales with cap" `Quick
      test_compute_duration_scales_with_online_rate;
    Alcotest.test_case "ping-pong semaphores" `Quick test_ping_pong_semaphores;
    Alcotest.test_case "barrier loop" `Quick test_barrier_loop_completes;
    Alcotest.test_case "lock storm stats" `Quick test_lock_storm_mutual_exclusion_stats;
    Alcotest.test_case "online rates = eq 2" `Slow test_online_rates_match_weights;
    Alcotest.test_case "two-VM 2:1 share" `Slow test_two_vm_share;
    Alcotest.test_case "work-conserving slack" `Quick test_work_conserving_uses_slack;
    Alcotest.test_case "invariants during run" `Slow test_invariants_during_run;
    Alcotest.test_case "no pcpu overcommit" `Quick test_no_pcpu_overcommit;
    Alcotest.test_case "credit degrades concurrent" `Slow
      test_credit_degrades_concurrent;
    Alcotest.test_case "asman recovers concurrent" `Slow
      test_asman_recovers_concurrent;
    Alcotest.test_case "asman detects over-threshold" `Slow
      test_asman_detects_over_threshold;
    Alcotest.test_case "clean at 100%" `Quick test_no_over_threshold_at_full_rate;
    Alcotest.test_case "throughput insensitive" `Slow
      test_throughput_insensitive_to_scheduler;
    Alcotest.test_case "determinism" `Slow test_determinism;
    Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_outcome;
  ]
