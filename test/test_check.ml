(* SimCheck's own tests: generator determinism and serialization,
   each oracle against a hand-built violating record, shrinker
   convergence on planted bugs, the committed repro corpus, and the
   timed-out-case reporting path. *)

open Asman
module Trace = Sim_obs.Trace
module Gen = Sim_check.Gen
module Spec = Sim_check.Spec
module Oracle = Sim_check.Oracle
module Shrink = Sim_check.Shrink
module Case = Sim_check.Case
module Check = Sim_check.Check

(* ----- generator ----- *)

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld regenerates identically" seed)
        true
        (Gen.spec seed = Gen.spec seed))
    [ 1L; 2L; 42L; -7L; 0x4D595DF4D0F33173L ]

let test_gen_case_seeds_distinct () =
  let seen = Hashtbl.create 256 in
  for index = 0 to 99 do
    Hashtbl.replace seen (Gen.case_seed ~seed:1L ~index) ()
  done;
  Alcotest.(check int) "100 distinct case seeds" 100 (Hashtbl.length seen)

let test_gen_specs_valid () =
  for index = 0 to 49 do
    let spec = Gen.spec (Gen.case_seed ~seed:3L ~index) in
    match Spec.validate spec with
    | Ok () -> ()
    | Error e -> Alcotest.failf "generated spec %d invalid: %s" index e
  done

let test_spec_json_roundtrip () =
  for index = 0 to 49 do
    let spec = Gen.spec (Gen.case_seed ~seed:4L ~index) in
    let spec' = Spec.of_string (Spec.to_string spec) in
    if spec' <> spec then
      Alcotest.failf "spec %d did not survive JSON round-trip:\n%s" index
        (Spec.to_string spec)
  done

(* ----- oracles vs hand-built violating records ----- *)

let vm_obs ?(domain = 1) ?(vcpus = [| 2; 3 |]) ?(weight = 256)
    ?(concurrent = true) ?credits ?(rate = 0.5) ?(expected = 0.5)
    ?(attacker = false) name =
  {
    Oracle.o_name = name;
    o_domain = domain;
    o_vcpus = vcpus;
    o_weight = weight;
    o_concurrent = concurrent;
    o_final_credits =
      (match credits with
      | Some c -> c
      | None -> Array.map (fun _ -> 0) vcpus);
    o_online_rate = rate;
    o_expected_online = expected;
    o_attacker = attacker;
  }

(* pcpus 2, slot 10 M cycles, 3 slots/period, unit 1000: floor -3000,
   cap 6000, gang window slot/4 = 2.5 M. *)
let input ?(pcpus = 2) ?(sched = "asman") ?(check_fairness = false)
    ?(accounting = "precise") ?(check_entitlement = false)
    ?(finished = 100_000_000) ?(entries = []) ?(runtime_violations = 0)
    ?(structural = Ok ()) ?(probe_errors = []) ?(vms = [ vm_obs "vm0" ]) () =
  {
    Oracle.pcpus;
    slot_cycles = 10_000_000;
    slots_per_period = 3;
    credit_unit = 1000;
    work_conserving = true;
    clean = true;
    sched;
    check_fairness;
    accounting;
    check_entitlement;
    started = 0;
    finished;
    entries;
    trace_dropped = 0;
    dom0 = 0;
    dom0_vcpus = [| 0; 1 |];
    vms;
    runtime_violations;
    runtime_messages =
      (if runtime_violations > 0 then [ "planted violation" ] else []);
    structural;
    probe_errors;
  }

let check_verdict name oracle expect inp =
  let got =
    match oracle.Oracle.check inp with
    | Oracle.Pass -> "pass"
    | Oracle.Skip _ -> "skip"
    | Oracle.Fail _ -> "fail"
  in
  Alcotest.(check string) name expect got

let at t ev = { Trace.at = t; ev }

let test_oracle_invariants () =
  check_verdict "clean input passes" Oracle.invariants "pass" (input ());
  check_verdict "runtime violation fails" Oracle.invariants "fail"
    (input ~runtime_violations:1 ());
  check_verdict "probe error fails" Oracle.invariants "fail"
    (input ~probe_errors:[ "vcpu 2 queued twice" ] ());
  check_verdict "final structural error fails" Oracle.invariants "fail"
    (input ~structural:(Error "vcpu 2 lost") ())

let test_oracle_credit_bounds () =
  check_verdict "credits at zero pass" Oracle.credit_bounds "pass" (input ());
  check_verdict "credit above cap fails" Oracle.credit_bounds "fail"
    (input ~vms:[ vm_obs ~credits:[| 6001; 0 |] "vm0" ] ());
  check_verdict "credit below floor fails" Oracle.credit_bounds "fail"
    (input ~vms:[ vm_obs ~credits:[| 0; -3001 |] "vm0" ] ())

let test_oracle_monotonic_time () =
  check_verdict "ordered entries pass" Oracle.monotonic_time "pass"
    (input
       ~entries:
         [
           at 10 (Trace.Sched_idle { pcpu = 0 });
           at 20 (Trace.Sched_idle { pcpu = 1 });
         ]
       ());
  check_verdict "time going backwards fails" Oracle.monotonic_time "fail"
    (input
       ~entries:
         [
           at 20 (Trace.Sched_idle { pcpu = 0 });
           at 10 (Trace.Sched_idle { pcpu = 1 });
         ]
       ());
  check_verdict "timestamp beyond window end fails" Oracle.monotonic_time
    "fail"
    (input ~finished:100 ~entries:[ at 200 (Trace.Sched_idle { pcpu = 0 }) ] ())

let test_oracle_trace_wellformed () =
  check_verdict "pcpu out of range fails" Oracle.trace_wellformed "fail"
    (input ~entries:[ at 10 (Trace.Sched_idle { pcpu = 5 }) ] ());
  check_verdict "unknown domain fails" Oracle.trace_wellformed "fail"
    (input
       ~entries:[ at 10 (Trace.Sched_switch { pcpu = 0; vcpu = 2; domain = 9 }) ]
       ());
  check_verdict "gang launch without IPIs fails" Oracle.trace_wellformed "fail"
    (input
       ~entries:
         [
           at 10
             (Trace.Gang_launch { domain = 1; pcpu = 0; ipis = 0; retry = false });
         ]
       ())

let test_oracle_vcpu_conservation () =
  check_verdict "unknown vcpu in schedule fails" Oracle.vcpu_conservation
    "fail"
    (input
       ~entries:
         [ at 10 (Trace.Sched_switch { pcpu = 0; vcpu = 99; domain = 1 }) ]
       ());
  (* the same VCPU switched onto both PCPUs, never descheduled: its
     running intervals overlap — a duplicated VCPU *)
  check_verdict "vcpu on two PCPUs at once fails" Oracle.vcpu_conservation
    "fail"
    (input
       ~entries:
         [
           at 10 (Trace.Sched_switch { pcpu = 0; vcpu = 2; domain = 1 });
           at 20 (Trace.Sched_switch { pcpu = 1; vcpu = 2; domain = 1 });
         ]
       ());
  check_verdict "disjoint schedule passes" Oracle.vcpu_conservation "pass"
    (input
       ~entries:
         [
           at 10 (Trace.Sched_switch { pcpu = 0; vcpu = 2; domain = 1 });
           at 20 (Trace.Sched_block { pcpu = 0; vcpu = 2; domain = 1 });
           at 30 (Trace.Sched_switch { pcpu = 1; vcpu = 2; domain = 1 });
         ]
       ())

let test_oracle_credit_burn () =
  (* vcpu 2 runs 21 slots' worth and blocks; nothing ever billed *)
  let running =
    [
      at 10 (Trace.Sched_switch { pcpu = 0; vcpu = 2; domain = 1 });
      at 210_000_000 (Trace.Sched_block { pcpu = 0; vcpu = 2; domain = 1 });
    ]
  in
  check_verdict "unbilled run time fails" Oracle.credit_burn "fail"
    (input ~finished:300_000_000 ~entries:running ());
  let billed =
    running
    @ [
        at 210_000_001
          (Trace.Credit_account
             { vcpu = 2; domain = 1; credit = 0; burned = 21_000 });
      ]
  in
  check_verdict "billed run time passes" Oracle.credit_burn "pass"
    (input ~finished:300_000_000 ~entries:billed ())

let test_oracle_proportionality () =
  let fairness rate =
    input ~check_fairness:true ~sched:"credit"
      ~vms:[ vm_obs ~rate ~expected:0.5 "vm0" ]
      ()
  in
  check_verdict "share within tolerance passes" Oracle.proportionality "pass"
    (fairness 0.45);
  check_verdict "starved VM fails" Oracle.proportionality "fail"
    (fairness 0.2);
  check_verdict "slack absorption above share passes" Oracle.proportionality
    "pass" (fairness 0.9);
  check_verdict "non-fairness shape skips" Oracle.proportionality "skip"
    (input ~vms:[ vm_obs ~rate:0.0 ~expected:0.5 "vm0" ] ())

(* A gang launch of domain 1 while sibling vcpu 2 is trace-provably
   Ready (it was displaced by dom0, not blocked) and never runs in
   the slot/4 window. *)
let gang_entries ~rescued =
  [
    at 100 (Trace.Vcrd_change { domain = 1; high = true });
    at 200 (Trace.Sched_switch { pcpu = 0; vcpu = 2; domain = 1 });
    at 300 (Trace.Sched_switch { pcpu = 0; vcpu = 0; domain = 0 });
    at 400 (Trace.Sched_switch { pcpu = 1; vcpu = 3; domain = 1 });
    at 500 (Trace.Gang_launch { domain = 1; pcpu = 1; ipis = 1; retry = false });
  ]
  @
  if rescued then [ at 600 (Trace.Sched_switch { pcpu = 0; vcpu = 2; domain = 1 }) ]
  else []

let test_oracle_gang_atomicity () =
  check_verdict "dropped ready sibling fails" Oracle.gang_atomicity "fail"
    (input ~entries:(gang_entries ~rescued:false) ());
  check_verdict "sibling running within window passes" Oracle.gang_atomicity
    "pass"
    (input ~entries:(gang_entries ~rescued:true) ());
  check_verdict "credit scheduler skips" Oracle.gang_atomicity "skip"
    (input ~sched:"credit" ~entries:(gang_entries ~rescued:false) ())

let test_run_all_reports_failures () =
  let bad = input ~vms:[ vm_obs ~credits:[| 6001; 0 |] "vm0" ] () in
  let failures = Oracle.run_all bad in
  Alcotest.(check bool)
    "credit-bounds failure reported" true
    (List.exists (fun f -> f.Oracle.oracle = "credit-bounds") failures);
  Alcotest.(check (list string)) "clean input yields no failures" []
    (List.map (fun f -> f.Oracle.oracle) (Oracle.run_all (input ())))

(* ----- shrinker ----- *)

let big_spec =
  {
    Spec.seed = 1L;
    sched = "asman";
    scale = 0.05;
    work_conserving = true;
    faults = "chaos-mild";
    queue = "wheel";
    sim_jobs = 2;
    decouple = false;
    sockets = 2;
    cores_per_socket = 4;
    horizon_sec = 0.4;
    check_fairness = false;
    accounting = "precise";
    check_entitlement = false;
    vms =
      List.init 4 (fun i ->
          {
            Spec.v_name = Printf.sprintf "vm%d" i;
            v_weight = 256;
            v_vcpus = 8;
            v_workload =
              Some
                (Scenario.W_compute { threads = 4; chunks = 100; chunk_us = 500 });
          });
    cluster = None;
    provenance = None;
  }

let planted = [ { Oracle.oracle = "planted"; message = "bug" } ]

let test_shrink_converges () =
  (* the planted bug needs one VM with >= 2 VCPUs; everything else
     must shrink away *)
  let fails (s : Spec.t) =
    if List.exists (fun (v : Spec.vm) -> v.Spec.v_vcpus >= 2) s.Spec.vms then
      planted
    else []
  in
  let shrunk, failures =
    Shrink.minimize ~budget:500 ~fails big_spec ~initial_failures:planted
  in
  Alcotest.(check bool) "still failing" true (failures <> []);
  Alcotest.(check int) "one VM left" 1 (List.length shrunk.Spec.vms);
  Alcotest.(check int) "vcpus at the failure threshold" 2
    (List.fold_left (fun m (v : Spec.vm) -> max m v.Spec.v_vcpus) 0
       shrunk.Spec.vms);
  Alcotest.(check string) "faults dropped" "none" shrunk.Spec.faults;
  Alcotest.(check bool) "horizon shrunk to the floor" true
    (shrunk.Spec.horizon_sec <= 0.05 +. 1e-9)

let test_shrink_stays_on_same_oracle () =
  (* dropping to a single VM would trade failure A for failure B; the
     shrinker must refuse the trade and stop at two VMs *)
  let fails (s : Spec.t) =
    if List.length s.Spec.vms > 1 then [ { Oracle.oracle = "A"; message = "" } ]
    else [ { Oracle.oracle = "B"; message = "" } ]
  in
  let shrunk, failures =
    Shrink.minimize ~budget:500 ~fails big_spec
      ~initial_failures:[ { Oracle.oracle = "A"; message = "" } ]
  in
  Alcotest.(check int) "stopped at two VMs" 2 (List.length shrunk.Spec.vms);
  Alcotest.(check bool) "failure is still oracle A" true
    (List.exists (fun f -> f.Oracle.oracle = "A") failures)

let test_shrink_respects_budget () =
  let evals = ref 0 in
  let fails _ =
    incr evals;
    planted
  in
  let _ = Shrink.minimize ~budget:7 ~fails big_spec ~initial_failures:planted in
  Alcotest.(check bool)
    (Printf.sprintf "at most 7 evaluations (got %d)" !evals)
    true (!evals <= 7)

let test_oracle_entitlement () =
  let attacker = vm_obs ~attacker:true ~vcpus:[| 9 |] ~rate:0.4 ~expected:0.1 "attacker" in
  let victim = vm_obs ~rate:0.5 ~expected:0.5 "victim0" in
  check_verdict "non-attack shape skips" Oracle.entitlement "skip"
    (input ~vms:[ attacker; victim ] ());
  check_verdict "sampled accounting skips (theft is modeled behaviour)"
    Oracle.entitlement "skip"
    (input ~accounting:"sampled" ~check_entitlement:true
       ~vms:[ attacker; victim ] ());
  check_verdict "faulty run skips" Oracle.entitlement "skip"
    {
      (input ~check_entitlement:true ~vms:[ attacker; victim ] ()) with
      Oracle.clean = false;
    };
  check_verdict "attacker 4x entitlement over 1x victims fails"
    Oracle.entitlement "fail"
    (input ~check_entitlement:true ~vms:[ attacker; victim ] ());
  check_verdict "attacker within entitlement passes" Oracle.entitlement "pass"
    (input ~check_entitlement:true
       ~vms:
         [
           vm_obs ~attacker:true ~vcpus:[| 9 |] ~rate:0.12 ~expected:0.1
             "attacker";
           victim;
         ]
       ());
  (* work-conserving slack lifts everyone: the attacker is over its
     entitlement but so are the victims, so nothing was stolen *)
  check_verdict "shared slack passes the relative test" Oracle.entitlement
    "pass"
    (input ~check_entitlement:true
       ~vms:
         [
           vm_obs ~attacker:true ~vcpus:[| 9 |] ~rate:0.3 ~expected:0.1
             "attacker";
           vm_obs ~rate:0.8 ~expected:0.5 "victim0";
         ]
       ());
  check_verdict "no victims skips" Oracle.entitlement "skip"
    (input ~check_entitlement:true ~vms:[ attacker ] ());
  check_verdict "no attackers skips" Oracle.entitlement "skip"
    (input ~check_entitlement:true ~vms:[ victim ] ())

(* ----- planted mutation caught end to end ----- *)

(* The shrunk shape the fuzzer itself converged to for this mutation:
   one NAS VM, capped mode. Deterministic, so a directed test can pin
   it. *)
let mutation_spec =
  {
    Spec.seed = 6693850188908107858L;
    sched = "con";
    scale = 0.05;
    work_conserving = false;
    faults = "none";
    queue = "wheel";
    sim_jobs = 1;
    decouple = false;
    sockets = 2;
    cores_per_socket = 2;
    horizon_sec = 0.14;
    check_fairness = false;
    accounting = "precise";
    check_entitlement = false;
    vms =
      [
        {
          Spec.v_name = "vm0";
          v_weight = 1024;
          v_vcpus = 2;
          v_workload = Some (Scenario.W_nas "CG");
        };
      ];
    cluster = None;
    provenance = None;
  }

let test_mutation_skip_credit_burn_caught () =
  Fun.protect
    ~finally:(fun () -> Sim_vmm.Mutation.set None)
    (fun () ->
      Alcotest.(check (list string))
        "spec passes unmutated" []
        (List.map
           (fun f -> f.Oracle.oracle)
           (Case.run mutation_spec));
      Sim_vmm.Mutation.set (Some Sim_vmm.Mutation.Skip_credit_burn);
      let failures = Case.run mutation_spec in
      Alcotest.(check bool)
        "credit-burn oracle catches the planted bug" true
        (List.exists (fun f -> f.Oracle.oracle = "credit-burn") failures))

(* The committed tick-dodge corpus shape, pinned: replays clean with
   real precise accounting, and the entitlement oracle must convict it
   once the [Sampled_accounting] mutation silently turns the precise
   charge path into tick-sampled debiting. *)
let sampled_mutation_spec =
  {
    Spec.seed = -4619933354561587056L;
    sched = "asman";
    scale = 0.05;
    work_conserving = false;
    faults = "none";
    queue = "heap";
    sim_jobs = 1;
    decouple = false;
    sockets = 1;
    cores_per_socket = 1;
    horizon_sec = 0.125;
    check_fairness = false;
    accounting = "precise";
    check_entitlement = true;
    vms =
      [
        {
          Spec.v_name = "attacker";
          v_weight = 64;
          v_vcpus = 1;
          v_workload = Some (Scenario.W_attack_dodge { threads = 1 });
        };
        {
          Spec.v_name = "victim1";
          v_weight = 512;
          v_vcpus = 1;
          v_workload = Some (Scenario.W_speccpu "bzip2");
        };
      ];
    cluster = None;
    provenance = None;
  }

let test_mutation_sampled_accounting_caught () =
  Fun.protect
    ~finally:(fun () -> Sim_vmm.Mutation.set None)
    (fun () ->
      Alcotest.(check (list string))
        "attack spec passes unmutated" []
        (List.map (fun f -> f.Oracle.oracle) (Case.run sampled_mutation_spec));
      Sim_vmm.Mutation.set (Some Sim_vmm.Mutation.Sampled_accounting);
      let failures = Case.run sampled_mutation_spec in
      Alcotest.(check bool)
        "entitlement oracle catches the planted bug" true
        (List.exists (fun f -> f.Oracle.oracle = "entitlement") failures))

(* ----- the cluster axis ----- *)

let cluster_spec =
  {
    Spec.seed = 11L;
    sched = "credit";
    scale = 0.05;
    work_conserving = true;
    faults = "none";
    queue = "wheel";
    sim_jobs = 1;
    decouple = false;
    sockets = 1;
    cores_per_socket = 2;
    horizon_sec = 0.3;
    check_fairness = false;
    accounting = "precise";
    check_entitlement = false;
    vms = [];
    cluster =
      Some
        {
          Spec.cl_hosts = 4;
          cl_trace_seed = 7L;
          cl_policy = "first-fit";
          cl_dist = "bimodal";
          cl_vms = 6;
        };
    provenance = None;
  }

let test_cluster_spec_json () =
  Alcotest.(check bool) "cluster spec survives JSON round-trip" true
    (Spec.of_string (Spec.to_string cluster_spec) = cluster_spec);
  (* back-compat: single-host spec JSON (no "cluster" key, as every
     pre-cluster corpus file) parses to a single-host spec *)
  let single = Spec.to_string mutation_spec in
  Alcotest.(check bool) "no cluster key emitted for single-host specs" true
    (Sim_check.Cjson.member "cluster" (Sim_check.Cjson.of_string single)
    = None);
  Alcotest.(check bool) "absent cluster key parses to None" true
    ((Spec.of_string single).Spec.cluster = None)

let test_cluster_spec_validation () =
  let with_cluster f =
    match cluster_spec.Spec.cluster with
    | Some c -> { cluster_spec with Spec.cluster = Some (f c) }
    | None -> assert false
  in
  let rejected s =
    match Spec.validate s with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "cluster spec validates" true
    (Spec.validate cluster_spec = Ok ());
  Alcotest.(check bool) "zero hosts rejected" true
    (rejected (with_cluster (fun c -> { c with Spec.cl_hosts = 0 })));
  Alcotest.(check bool) "empty trace rejected" true
    (rejected (with_cluster (fun c -> { c with Spec.cl_vms = 0 })));
  Alcotest.(check bool) "unknown policy rejected" true
    (rejected (with_cluster (fun c -> { c with Spec.cl_policy = "psychic" })));
  Alcotest.(check bool) "unknown distribution rejected" true
    (rejected (with_cluster (fun c -> { c with Spec.cl_dist = "cauchy" })));
  Alcotest.(check bool) "cluster excludes fault injection" true
    (rejected { cluster_spec with Spec.faults = "chaos-mild" });
  Alcotest.(check bool) "cluster excludes decouple" true
    (rejected { cluster_spec with Spec.decouple = true; sim_jobs = 2 })

(* The planted double-place mutation end to end: the pinned cluster
   spec replays clean, the armed mutation books arriving VMs on two
   hosts, the cluster-conservation oracle convicts it, and the
   shrinker walks the datacenter down to a <= 2-host one-VM repro
   (one host cannot double-place: there is no second feasible host). *)
let test_mutation_double_place_caught () =
  Fun.protect
    ~finally:(fun () -> Sim_vmm.Mutation.set None)
    (fun () ->
      Alcotest.(check (list string))
        "cluster spec passes unmutated" []
        (List.map (fun f -> f.Oracle.oracle) (Case.run cluster_spec));
      Sim_vmm.Mutation.set (Some Sim_vmm.Mutation.Double_place);
      let failures = Case.run cluster_spec in
      Alcotest.(check bool)
        "cluster-conservation oracle catches the planted bug" true
        (List.exists
           (fun f -> f.Oracle.oracle = "cluster-conservation")
           failures);
      let shrunk, still =
        Shrink.minimize ~budget:40 ~fails:Case.run cluster_spec
          ~initial_failures:failures
      in
      Alcotest.(check bool) "shrunk repro still fails the same oracle" true
        (List.exists
           (fun f -> f.Oracle.oracle = "cluster-conservation")
           still);
      match shrunk.Spec.cluster with
      | None -> Alcotest.fail "shrinker dropped the cluster axis"
      | Some c ->
        Alcotest.(check bool)
          (Printf.sprintf "shrunk to <= 2 hosts (got %d)" c.Spec.cl_hosts)
          true (c.Spec.cl_hosts <= 2);
        Alcotest.(check int) "shrunk to a single-entry trace" 1 c.Spec.cl_vms)

(* ----- timed-out cases are reported, not dropped ----- *)

let test_timeout_reported_with_seed () =
  let report = Check.run ~jobs:2 ~timeout_sec:1e-6 ~cases:2 ~seed:5L () in
  Alcotest.(check bool) "run fails" false (Check.passed report);
  match report.Check.timeouts with
  | [ t ] ->
    Alcotest.(check int64)
      "timeout carries the case seed"
      (Gen.case_seed ~seed:5L ~index:t.Check.tr_index)
      t.Check.tr_seed
  | ts -> Alcotest.failf "expected exactly one timeout, got %d" (List.length ts)

(* ----- the committed corpus replays clean ----- *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare

let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is not empty" true (List.length files >= 3);
  List.iter
    (fun f ->
      let spec = Spec.load (Filename.concat "corpus" f) in
      match Case.run spec with
      | [] -> ()
      | fs ->
        Alcotest.failf "corpus case %s failed: %s: %s" f
          (List.hd fs).Oracle.oracle (List.hd fs).Oracle.message)
    files

let suite =
  [
    Alcotest.test_case "generator is seed-deterministic" `Quick
      test_gen_deterministic;
    Alcotest.test_case "case seeds are distinct" `Quick
      test_gen_case_seeds_distinct;
    Alcotest.test_case "generated specs validate" `Quick test_gen_specs_valid;
    Alcotest.test_case "spec JSON round-trips" `Quick test_spec_json_roundtrip;
    Alcotest.test_case "oracle: invariants" `Quick test_oracle_invariants;
    Alcotest.test_case "oracle: credit-bounds" `Quick test_oracle_credit_bounds;
    Alcotest.test_case "oracle: monotonic-time" `Quick
      test_oracle_monotonic_time;
    Alcotest.test_case "oracle: trace-wellformed" `Quick
      test_oracle_trace_wellformed;
    Alcotest.test_case "oracle: vcpu-conservation" `Quick
      test_oracle_vcpu_conservation;
    Alcotest.test_case "oracle: credit-burn" `Quick test_oracle_credit_burn;
    Alcotest.test_case "oracle: proportionality" `Quick
      test_oracle_proportionality;
    Alcotest.test_case "oracle: gang-atomicity" `Quick
      test_oracle_gang_atomicity;
    Alcotest.test_case "oracle: entitlement" `Quick test_oracle_entitlement;
    Alcotest.test_case "run_all reports failures" `Quick
      test_run_all_reports_failures;
    Alcotest.test_case "shrinker converges on a planted bug" `Quick
      test_shrink_converges;
    Alcotest.test_case "shrinker refuses to change bugs" `Quick
      test_shrink_stays_on_same_oracle;
    Alcotest.test_case "shrinker respects its budget" `Quick
      test_shrink_respects_budget;
    Alcotest.test_case "planted skip-credit-burn is caught" `Slow
      test_mutation_skip_credit_burn_caught;
    Alcotest.test_case "planted sampled-accounting is caught" `Slow
      test_mutation_sampled_accounting_caught;
    Alcotest.test_case "cluster spec JSON round-trips with back-compat"
      `Quick test_cluster_spec_json;
    Alcotest.test_case "cluster spec validation" `Quick
      test_cluster_spec_validation;
    Alcotest.test_case "planted double-place is caught and shrunk" `Slow
      test_mutation_double_place_caught;
    Alcotest.test_case "timed-out case reported with its seed" `Quick
      test_timeout_reported_with_seed;
    Alcotest.test_case "committed corpus replays clean" `Slow
      test_corpus_replays;
  ]
