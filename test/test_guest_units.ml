(* Unit tests for guest primitives: programs, spinlocks, semaphores,
   barriers and the guest thread scheduler. *)

open Sim_guest

let rng () = Sim_engine.Rng.create 1L

(* ----- Program ----- *)

let drain cursor =
  let r = rng () in
  let rec go acc =
    match Program.next cursor ~rng:r with
    | None -> List.rev acc
    | Some i -> go (i :: acc)
  in
  go []

let test_program_flattening () =
  let p =
    Program.make
      [
        Program.Compute 10;
        Program.Repeat (2, [ Program.Lock 0; Program.Unlock 0 ]);
        Program.Mark;
      ]
  in
  let instrs = drain (Program.cursor p) in
  Alcotest.(check int) "count" 6 (List.length instrs);
  Alcotest.(check int) "static count" 6 (Program.static_instr_count p);
  match instrs with
  | [ Program.I_compute 10; Program.I_lock 0; Program.I_unlock 0;
      Program.I_lock 0; Program.I_unlock 0; Program.I_mark ] ->
    ()
  | _ -> Alcotest.fail "unexpected instruction stream"

let test_program_nested_repeat () =
  let p =
    Program.make
      [ Program.Repeat (3, [ Program.Repeat (2, [ Program.Compute 1 ]) ]) ]
  in
  Alcotest.(check int) "6 computes" 6 (List.length (drain (Program.cursor p)))

let test_program_empty_repeat () =
  let p = Program.make [ Program.Repeat (0, [ Program.Compute 1 ]); Program.Mark ] in
  Alcotest.(check int) "skips empty loop" 1 (List.length (drain (Program.cursor p)))

let test_program_reset () =
  let p = Program.make [ Program.Compute 5; Program.Compute 6 ] in
  let c = Program.cursor p in
  let r = rng () in
  ignore (Program.next c ~rng:r);
  Program.reset c;
  Alcotest.(check int) "full stream after reset" 2 (List.length (drain c))

let test_program_compute_rand () =
  let p = Program.make [ Program.Compute_rand { mean = 1000; cv = 0.1 } ] in
  let r = rng () in
  match Program.next (Program.cursor p) ~rng:r with
  | Some (Program.I_compute n) ->
    Alcotest.(check bool) "near mean" true (n > 500 && n < 2000)
  | _ -> Alcotest.fail "expected compute"

let test_program_totals () =
  let p =
    Program.make
      [
        Program.Compute 100;
        Program.Repeat (3, [ Program.Compute_rand { mean = 50; cv = 0.2 } ]);
      ]
  in
  Alcotest.(check int) "total compute (means)" 250 (Program.total_compute_cycles p)

let test_program_referenced () =
  let p =
    Program.make
      [
        Program.Lock 3; Program.Unlock 3;
        Program.Repeat (2, [ Program.Barrier 1; Program.Sem_wait 7 ]);
        Program.Sem_post 2;
      ]
  in
  Alcotest.(check (list int)) "locks" [ 3 ] (Program.locks_referenced p);
  Alcotest.(check (list int)) "barriers" [ 1 ] (Program.barriers_referenced p);
  Alcotest.(check (list int)) "sems" [ 2; 7 ] (Program.semaphores_referenced p)

let test_program_validation () =
  let invalid ops =
    try ignore (Program.make ops); false with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative compute" true (invalid [ Program.Compute (-1) ]);
  Alcotest.(check bool) "negative repeat" true
    (invalid [ Program.Repeat (-1, []) ]);
  Alcotest.(check bool) "zero mean" true
    (invalid [ Program.Compute_rand { mean = 0; cv = 0.1 } ])

let prop_static_count_matches_stream =
  QCheck.Test.make ~name:"static_instr_count = executed instructions"
    QCheck.(pair (int_range 0 5) (int_range 0 5))
    (fun (reps, body) ->
      let ops =
        [ Program.Repeat (reps, List.init body (fun _ -> Program.Compute 1)) ]
      in
      let p = Program.make ops in
      Program.static_instr_count p = List.length (drain (Program.cursor p)))

(* ----- Thread helpers ----- *)

let mk_thread ?(affinity = 0) id =
  Thread.make ~id ~affinity ~restart:false ~rng:(rng ())
    (Program.make [ Program.Compute 1 ])

(* ----- Spinlock ----- *)

let test_spinlock_fast_path () =
  let l = Spinlock.create ~id:0 in
  let t1 = mk_thread 1 in
  Alcotest.(check bool) "acquire" true (Spinlock.try_acquire l t1 ~now:0);
  Alcotest.(check bool) "held" true
    (match Spinlock.owner l with Some o -> o == t1 | None -> false);
  Alcotest.(check bool) "second fails" false
    (Spinlock.try_acquire l (mk_thread 2) ~now:0);
  Spinlock.release l t1;
  Alcotest.(check bool) "free again" true
    (Spinlock.try_acquire l (mk_thread 3) ~now:0);
  Alcotest.(check int) "acquisitions" 2 (Spinlock.acquisitions l)

let test_spinlock_release_validation () =
  let l = Spinlock.create ~id:0 in
  let t1 = mk_thread 1 and t2 = mk_thread 2 in
  ignore (Spinlock.try_acquire l t1 ~now:0);
  let raised = try Spinlock.release l t2; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "non-owner release" true raised

let test_spinlock_handoff () =
  let l = Spinlock.create ~id:0 in
  let holder = mk_thread 1 and w1 = mk_thread 2 and w2 = mk_thread 3 in
  ignore (Spinlock.try_acquire l holder ~now:0);
  Spinlock.enqueue_waiter l w1 ~now:10;
  Spinlock.enqueue_waiter l w2 ~now:20;
  Alcotest.(check int) "two waiters" 2 (Spinlock.waiter_count l);
  Alcotest.(check bool) "held: no grant" true
    (Spinlock.pick_online_waiter l ~online:(fun _ -> true) = None);
  Spinlock.release l holder;
  (* Earliest online waiter wins. *)
  (match Spinlock.pick_online_waiter l ~online:(fun t -> t == w2) with
  | Some t when t == w2 -> ()
  | _ -> Alcotest.fail "expected w2 (only online)");
  (match Spinlock.pick_online_waiter l ~online:(fun _ -> true) with
  | Some t when t == w1 -> ()
  | _ -> Alcotest.fail "expected w1 (earliest)");
  Spinlock.reserve_for l w1;
  Alcotest.(check bool) "reserved" true (Spinlock.is_reserved l);
  Alcotest.(check bool) "no pick while reserved" true
    (Spinlock.pick_online_waiter l ~online:(fun _ -> true) = None);
  let wait = Spinlock.complete_grant l w1 ~now:110 in
  Alcotest.(check int) "waited" 100 wait;
  Alcotest.(check int) "one waiter left" 1 (Spinlock.waiter_count l);
  Alcotest.(check int) "contended count" 1 (Spinlock.contended_acquisitions l)

let test_spinlock_abort_grant () =
  let l = Spinlock.create ~id:0 in
  let holder = mk_thread 1 and w = mk_thread 2 in
  ignore (Spinlock.try_acquire l holder ~now:0);
  Spinlock.enqueue_waiter l w ~now:5;
  Spinlock.release l holder;
  Spinlock.reserve_for l w;
  Spinlock.abort_grant l w;
  Alcotest.(check bool) "unreserved" false (Spinlock.is_reserved l);
  Alcotest.(check int) "still waiting" 1 (Spinlock.waiter_count l)

let test_spinlock_waiter_validation () =
  let l = Spinlock.create ~id:0 in
  let t = mk_thread 1 in
  ignore (Spinlock.try_acquire l t ~now:0);
  let raised =
    try Spinlock.enqueue_waiter l t ~now:1; false with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "owner cannot wait" true raised

(* ----- Semaphore ----- *)

let test_semaphore_counting () =
  let s = Semaphore.create ~id:0 ~init:2 in
  Alcotest.(check bool) "wait 1" true (Semaphore.try_wait s);
  Alcotest.(check bool) "wait 2" true (Semaphore.try_wait s);
  Alcotest.(check bool) "wait 3 fails" false (Semaphore.try_wait s);
  Alcotest.(check bool) "post no waiter" true (Semaphore.post s = None);
  Alcotest.(check int) "count back to 1" 1 (Semaphore.count s)

let test_semaphore_fifo_handoff () =
  let s = Semaphore.create ~id:0 ~init:0 in
  let a = mk_thread 1 and b = mk_thread 2 in
  Semaphore.enqueue_waiter s a ~now:10;
  Semaphore.enqueue_waiter s b ~now:20;
  (match Semaphore.post s with
  | Some (t, 10) when t == a -> ()
  | _ -> Alcotest.fail "expected a first");
  (match Semaphore.post s with
  | Some (t, 20) when t == b -> ()
  | _ -> Alcotest.fail "expected b second");
  Alcotest.(check int) "count stays 0 on handoffs" 0 (Semaphore.count s);
  Alcotest.(check int) "blocked waits" 2 (Semaphore.blocked_waits s)

let test_semaphore_validation () =
  let raised =
    try ignore (Semaphore.create ~id:0 ~init:(-1)); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative init" true raised

(* ----- Barrier ----- *)

let test_barrier_episode () =
  let b = Barrier.create ~id:0 ~parties:3 in
  Alcotest.(check int) "gen 0" 0 (Barrier.generation b);
  (match Barrier.arrive b ~now:100 with
  | `Wait 0 -> ()
  | _ -> Alcotest.fail "first should wait");
  (match Barrier.arrive b ~now:150 with
  | `Wait 0 -> ()
  | _ -> Alcotest.fail "second should wait");
  (match Barrier.arrive b ~now:200 with
  | `Last -> ()
  | `Wait _ -> Alcotest.fail "third should close");
  Alcotest.(check int) "gen 1" 1 (Barrier.generation b);
  Alcotest.(check bool) "passed for gen 0" true (Barrier.passed b ~gen:0);
  Alcotest.(check bool) "not passed for gen 1" false (Barrier.passed b ~gen:1);
  Alcotest.(check int) "crossings" 1 (Barrier.crossings b);
  Alcotest.(check int) "longest episode" 100 (Barrier.longest_episode b)

let test_barrier_single_party () =
  let b = Barrier.create ~id:0 ~parties:1 in
  (match Barrier.arrive b ~now:5 with
  | `Last -> ()
  | `Wait _ -> Alcotest.fail "single party never waits");
  Alcotest.(check int) "gen" 1 (Barrier.generation b)

let test_barrier_reuse () =
  let b = Barrier.create ~id:0 ~parties:2 in
  for round = 1 to 5 do
    ignore (Barrier.arrive b ~now:(round * 100));
    match Barrier.arrive b ~now:((round * 100) + 1) with
    | `Last -> ()
    | `Wait _ -> Alcotest.fail "should close"
  done;
  Alcotest.(check int) "five crossings" 5 (Barrier.crossings b);
  Alcotest.(check int) "gen 5" 5 (Barrier.generation b)

(* ----- Gsched ----- *)

let executable_thread id =
  let t = mk_thread id in
  t.Thread.status <- Thread.Runnable;
  t

let test_gsched_round_robin () =
  let g = Gsched.create ~timeslice:1000 in
  let a = executable_thread 1
  and b = executable_thread 2
  and c = executable_thread 3 in
  List.iter (Gsched.add g) [ a; b; c ];
  Gsched.set_active g (Some a);
  (match Gsched.pick g with
  | Some t when t == b -> ()
  | _ -> Alcotest.fail "after a comes b");
  Gsched.set_active g (Some c);
  (match Gsched.pick g with
  | Some t when t == a -> ()
  | _ -> Alcotest.fail "wraps to a");
  b.Thread.status <- Thread.Blocked_sem 0;
  Gsched.set_active g (Some a);
  match Gsched.pick g with
  | Some t when t == c -> ()
  | _ -> Alcotest.fail "skips blocked b"

let test_gsched_no_executable () =
  let g = Gsched.create ~timeslice:1000 in
  let a = mk_thread 1 in
  a.Thread.status <- Thread.Finished;
  Gsched.add g a;
  Alcotest.(check bool) "none" true (Gsched.pick g = None);
  Alcotest.(check int) "executable count" 0 (Gsched.executable_count g)

let test_gsched_duplicate () =
  let g = Gsched.create ~timeslice:1000 in
  let a = executable_thread 1 in
  Gsched.add g a;
  let raised = try Gsched.add g a; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "duplicate add" true raised

let suite =
  [
    Alcotest.test_case "program flattening" `Quick test_program_flattening;
    Alcotest.test_case "nested repeat" `Quick test_program_nested_repeat;
    Alcotest.test_case "empty repeat" `Quick test_program_empty_repeat;
    Alcotest.test_case "cursor reset" `Quick test_program_reset;
    Alcotest.test_case "compute_rand" `Quick test_program_compute_rand;
    Alcotest.test_case "compute totals" `Quick test_program_totals;
    Alcotest.test_case "referenced ids" `Quick test_program_referenced;
    Alcotest.test_case "program validation" `Quick test_program_validation;
    QCheck_alcotest.to_alcotest prop_static_count_matches_stream;
    Alcotest.test_case "spinlock fast path" `Quick test_spinlock_fast_path;
    Alcotest.test_case "spinlock release check" `Quick test_spinlock_release_validation;
    Alcotest.test_case "spinlock handoff" `Quick test_spinlock_handoff;
    Alcotest.test_case "spinlock abort" `Quick test_spinlock_abort_grant;
    Alcotest.test_case "spinlock waiter check" `Quick test_spinlock_waiter_validation;
    Alcotest.test_case "semaphore counting" `Quick test_semaphore_counting;
    Alcotest.test_case "semaphore fifo" `Quick test_semaphore_fifo_handoff;
    Alcotest.test_case "semaphore validation" `Quick test_semaphore_validation;
    Alcotest.test_case "barrier episode" `Quick test_barrier_episode;
    Alcotest.test_case "barrier single party" `Quick test_barrier_single_party;
    Alcotest.test_case "barrier reuse" `Quick test_barrier_reuse;
    Alcotest.test_case "gsched round robin" `Quick test_gsched_round_robin;
    Alcotest.test_case "gsched empty" `Quick test_gsched_no_executable;
    Alcotest.test_case "gsched duplicate" `Quick test_gsched_duplicate;
  ]
