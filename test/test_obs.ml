(* Observability layer: ring semantics, trace masks, exporters,
   metrics snapshot determinism across Pool worker counts, and the
   LHP classifier on a hand-built scenario. *)

open Asman
module Ring = Sim_obs.Ring
module Trace = Sim_obs.Trace
module Metrics = Sim_obs.Metrics

(* ----- ring buffer ----- *)

let test_ring_wrap_and_drop () =
  let r = Ring.create ~cap:4 in
  for i = 1 to 4 do
    Ring.push r i
  done;
  Alcotest.(check int) "full, nothing dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4 ] (Ring.to_list r);
  Ring.push r 5;
  Ring.push r 6;
  Alcotest.(check int) "two overwritten" 2 (Ring.dropped r);
  Alcotest.(check (list int)) "newest survive" [ 3; 4; 5; 6 ] (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Ring.to_list r);
  Alcotest.(check int) "drop tally is lifetime" 2 (Ring.dropped r)

let test_ring_zero_cap () =
  let r = Ring.create ~cap:0 in
  Ring.push r 1;
  Alcotest.(check (list int)) "keeps nothing" [] (Ring.to_list r);
  Alcotest.(check int) "counts the drop" 1 (Ring.dropped r)

(* ----- trace masks ----- *)

let test_trace_mask_gating () =
  let tr = Trace.create () in
  List.iter
    (fun c -> Alcotest.(check bool) "disabled" false (Trace.on tr c))
    Trace.categories;
  Trace.enable tr ~mask:(Trace.cat_bit Trace.Sched);
  Alcotest.(check bool) "sched on" true (Trace.on tr Trace.Sched);
  Alcotest.(check bool) "gang off" false (Trace.on tr Trace.Gang);
  (* Call-site discipline: emit only under the guard, so a masked
     category contributes no entries. *)
  let emit_guarded cat ev =
    if Trace.on tr cat then Trace.emit tr ~now:10 ev
  in
  emit_guarded Trace.Sched (Trace.Sched_idle { pcpu = 0 });
  emit_guarded Trace.Gang (Trace.Gang_ack { domain = 1; pcpu = 0 });
  Alcotest.(check int) "only sched recorded" 1 (Trace.length tr)

let test_mask_of_string () =
  (match Trace.mask_of_string "all" with
  | Ok m -> Alcotest.(check int) "all" Trace.all_mask m
  | Error e -> Alcotest.fail e);
  (match Trace.mask_of_string "sched,gang" with
  | Ok m ->
    Alcotest.(check int) "two cats"
      (Trace.cat_bit Trace.Sched lor Trace.cat_bit Trace.Gang)
      m
  | Error e -> Alcotest.fail e);
  match Trace.mask_of_string "sched,bogus" with
  | Ok _ -> Alcotest.fail "accepted unknown category"
  | Error _ -> ()

(* ----- exporters ----- *)

let sample_trace () =
  let tr = Trace.create () in
  Trace.enable tr ~mask:Trace.all_mask;
  Trace.emit tr ~now:0 (Trace.Sched_switch { pcpu = 0; vcpu = 0; domain = 1 });
  Trace.emit tr ~now:0 (Trace.Sched_switch { pcpu = 1; vcpu = 1; domain = 1 });
  Trace.emit tr ~now:500 (Trace.Credit_account { vcpu = 0; domain = 1; credit = 90; burned = 10 });
  Trace.emit tr ~now:900 (Trace.Gang_launch { domain = 1; pcpu = 0; ipis = 3; retry = false });
  Trace.emit tr ~now:1_000 (Trace.Sched_idle { pcpu = 1 });
  Trace.emit tr ~now:1_200
    (Trace.Spin_overthreshold { domain = 1; vcpu = 0; lock_id = 7; wait = 400; holder = 1 });
  Trace.emit tr ~now:1_500 (Trace.Sched_block { pcpu = 0; vcpu = 0; domain = 1 });
  tr

let test_chrome_json_well_formed () =
  let tr = sample_trace () in
  let doc =
    Trace.to_chrome_json ~vm_names:[ (1, "V1") ] ~freq_hz:2_330_000_000
      ~pcpus:2 tr
  in
  (match Sim_obs.Json.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("chrome export: " ^ e));
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has traceEvents" true
    (contains ~needle:"traceEvents" doc)

let test_jsonl_and_csv () =
  let tr = sample_trace () in
  let csv = Trace.to_csv tr in
  Alcotest.(check int) "csv rows = events + header" (Trace.length tr + 1)
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)));
  String.split_on_char '\n' (Trace.to_jsonl tr)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Sim_obs.Json.validate line with
         | Ok () -> ()
         | Error e -> Alcotest.fail (Printf.sprintf "jsonl %S: %s" line e))

(* ----- metrics snapshot determinism across worker counts ----- *)

let snapshot_of_seed seed =
  let config =
    Config.with_seed (Config.with_scale Config.default 0.02) (Int64.of_int seed)
  in
  let workload =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq:(Config.freq config)
         ~scale:0.02)
  in
  let scenario =
    Scenario.build config ~sched:Config.Asman
      ~vms:
        [ { Scenario.vm_name = "V1"; weight = 256; vcpus = 4;
            workload = Some workload } ]
  in
  let (_ : Runner.metrics) = Runner.run_window scenario ~sec:0.05 in
  Metrics.to_text (Metrics.snapshot (Sim_vmm.Vmm.metrics scenario.Scenario.vmm))

let test_snapshot_determinism_across_jobs () =
  let seeds = [ 3; 4; 5; 6 ] in
  let sequential = Pool.map ~jobs:1 snapshot_of_seed seeds in
  let parallel = Pool.map ~jobs:4 snapshot_of_seed seeds in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d identical at -j1 and -j4" (List.nth seeds i))
        a b)
    (List.combine sequential parallel)

(* ----- LHP classification golden test ----- *)

(* Waiter (vcpu 0) runs on pcpu 0 throughout; holder (vcpu 1) runs on
   pcpu 1 but is descheduled during [100, 200]. The first wait spans
   [50, 300] and overlaps the gap for 100 cycles (40% >> 10%):
   preempted-holder. The second spans [290, 320] while the holder is
   back on-CPU: contended. *)
let lhp_entries =
  [
    { Trace.at = 0; ev = Trace.Sched_switch { pcpu = 0; vcpu = 0; domain = 1 } };
    { Trace.at = 0; ev = Trace.Sched_switch { pcpu = 1; vcpu = 1; domain = 1 } };
    { Trace.at = 100; ev = Trace.Sched_idle { pcpu = 1 } };
    { Trace.at = 200; ev = Trace.Sched_switch { pcpu = 1; vcpu = 1; domain = 1 } };
    {
      Trace.at = 300;
      ev =
        Trace.Spin_overthreshold
          { domain = 1; vcpu = 0; lock_id = 7; wait = 250; holder = 1 };
    };
    {
      Trace.at = 320;
      ev =
        Trace.Spin_overthreshold
          { domain = 1; vcpu = 0; lock_id = 8; wait = 30; holder = 1 };
    };
  ]

let test_lhp_classification () =
  let timeline = Sim_obs.Timeline.of_entries ~pcpus:2 lhp_entries in
  let report = Sim_obs.Lhp.classify ~timeline lhp_entries in
  Alcotest.(check int) "total" 2 report.Sim_obs.Lhp.total;
  Alcotest.(check int) "preempted" 1 report.Sim_obs.Lhp.preempted;
  Alcotest.(check int) "contended" 1 report.Sim_obs.Lhp.contended;
  Alcotest.(check (float 1e-9)) "share" 0.5 report.Sim_obs.Lhp.preempted_share;
  match report.Sim_obs.Lhp.by_domain with
  | [ (1, 1, 1) ] -> ()
  | other ->
    Alcotest.fail
      (Printf.sprintf "by_domain: %s"
         (String.concat ";"
            (List.map (fun (d, p, c) -> Printf.sprintf "(%d,%d,%d)" d p c) other)))

let test_lhp_unknown_holder_uses_sibling () =
  (* Same timeline, but the wait does not know its holder (-1): the
     most-descheduled sibling VCPU of domain 1 (vcpu 1, off 100 of
     250 cycles) stands in, so it still classifies preempted. *)
  let entries =
    [
      { Trace.at = 0; ev = Trace.Sched_switch { pcpu = 0; vcpu = 0; domain = 1 } };
      { Trace.at = 0; ev = Trace.Sched_switch { pcpu = 1; vcpu = 1; domain = 1 } };
      { Trace.at = 100; ev = Trace.Sched_idle { pcpu = 1 } };
      { Trace.at = 200; ev = Trace.Sched_switch { pcpu = 1; vcpu = 1; domain = 1 } };
      {
        Trace.at = 300;
        ev =
          Trace.Spin_overthreshold
            { domain = 1; vcpu = 0; lock_id = 9; wait = 250; holder = -1 };
      };
    ]
  in
  let timeline = Sim_obs.Timeline.of_entries ~pcpus:2 entries in
  let report = Sim_obs.Lhp.classify ~timeline entries in
  Alcotest.(check int) "preempted via sibling" 1 report.Sim_obs.Lhp.preempted

(* ----- monitor trace ring regression ----- *)

let test_monitor_trace_drop_accounting () =
  let engine = Sim_engine.Engine.create ~seed:2L () in
  let machine =
    Sim_hw.Machine.create engine Config.default.Config.cpu
      Config.default.Config.topology
  in
  let vmm = Sim_vmm.Vmm.create machine ~sched:Sim_vmm.Sched_credit.make in
  let domain = Sim_vmm.Vmm.create_domain vmm ~name:"V" ~weight:256 ~vcpus:2 () in
  let hypercall = Sim_vmm.Hypercall.create vmm in
  let params =
    {
      (Sim_guest.Monitor.default_params
         ~slot_cycles:(Sim_hw.Cpu_model.slot_cycles Config.default.Config.cpu))
      with
      Sim_guest.Monitor.trace_cap = 3;
    }
  in
  let monitor =
    Sim_guest.Monitor.create params ~engine ~hypercall ~domain
      ~rng:(Sim_engine.Rng.create 3L)
  in
  (* Waits above the trace threshold (2^10) but below the adjusting
     threshold (2^20). Exactly at capacity: nothing dropped. *)
  for i = 1 to 3 do
    Sim_guest.Monitor.record_spin_wait monitor ~lock_id:i ~wait:(2_000 + i)
  done;
  Alcotest.(check int) "at capacity" 3
    (List.length (Sim_guest.Monitor.trace monitor));
  Alcotest.(check int) "no drops at boundary" 0
    (Sim_guest.Monitor.trace_dropped monitor);
  (* One past capacity: oldest overwritten, drop counted. *)
  Sim_guest.Monitor.record_spin_wait monitor ~lock_id:4 ~wait:2_004;
  let entries = Sim_guest.Monitor.trace monitor in
  Alcotest.(check int) "still capped" 3 (List.length entries);
  Alcotest.(check int) "one drop" 1 (Sim_guest.Monitor.trace_dropped monitor);
  Alcotest.(check (list int)) "newest three survive" [ 2; 3; 4 ]
    (List.map (fun (e : Sim_guest.Monitor.trace_entry) -> e.Sim_guest.Monitor.lock_id) entries);
  Sim_guest.Monitor.reset_window monitor;
  Alcotest.(check int) "window reset clears trace" 0
    (List.length (Sim_guest.Monitor.trace monitor));
  Alcotest.(check int) "drop tally survives reset" 1
    (Sim_guest.Monitor.trace_dropped monitor)

(* ----- metrics registry basics ----- *)

let test_metrics_diff_and_lookup () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~subsystem:"test" ~name:"hits" () in
  let g = ref 7 in
  Metrics.gauge m ~subsystem:"test" ~name:"depth" (fun () -> !g);
  let per_vm = Metrics.counter m ~subsystem:"test" ~vm:"V1" ~name:"hits" () in
  Metrics.incr c;
  Metrics.incr c ~by:4;
  let base = Metrics.snapshot m in
  Metrics.incr c ~by:10;
  Metrics.incr per_vm ~by:2;
  g := 9;
  let d = Metrics.diff ~base (Metrics.snapshot m) in
  Alcotest.(check int) "counter diffed" 10
    (Metrics.get d ~subsystem:"test" ~name:"hits" ());
  Alcotest.(check int) "gauge diffed" 2
    (Metrics.get d ~subsystem:"test" ~name:"depth" ());
  Alcotest.(check int) "vm label distinct" 2
    (Metrics.get d ~subsystem:"test" ~vm:"V1" ~name:"hits" ());
  Alcotest.(check int) "absent key is 0" 0
    (Metrics.get d ~subsystem:"test" ~name:"missing" ());
  match Sim_obs.Json.validate (Metrics.to_json (Metrics.snapshot m)) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("metrics json: " ^ e)

let suite =
  [
    Alcotest.test_case "ring wrap and drop accounting" `Quick
      test_ring_wrap_and_drop;
    Alcotest.test_case "zero-capacity ring" `Quick test_ring_zero_cap;
    Alcotest.test_case "trace mask gates emission" `Quick
      test_trace_mask_gating;
    Alcotest.test_case "category mask parsing" `Quick test_mask_of_string;
    Alcotest.test_case "chrome export is valid JSON" `Quick
      test_chrome_json_well_formed;
    Alcotest.test_case "csv/jsonl exports" `Quick test_jsonl_and_csv;
    Alcotest.test_case "metrics snapshots identical at -j1 and -j4" `Slow
      test_snapshot_determinism_across_jobs;
    Alcotest.test_case "LHP golden classification" `Quick
      test_lhp_classification;
    Alcotest.test_case "LHP sibling heuristic for unknown holder" `Quick
      test_lhp_unknown_holder_uses_sibling;
    Alcotest.test_case "monitor trace ring drop accounting" `Quick
      test_monitor_trace_drop_accounting;
    Alcotest.test_case "metrics diff and lookup" `Quick
      test_metrics_diff_and_lookup;
  ]
