(* Decoupled VMM on the PDES fabric: cross-shard message ordering
   under the (time, src, seq) discipline, the steal protocol's race
   behaviour (same-window contention, stale requests after the target
   migrated), worker-count invariance of full decoupled scenarios, and
   the mailbox hot path's zero-allocation contract. *)

open Sim_engine
open Asman

(* ----- mailbox (time, src, seq) ordering ----- *)

let flush_order mb =
  let order = ref [] in
  ignore (Mailbox.flush mb (fun ~time:_ act -> act ()));
  ignore order;
  ()

let _ = flush_order

let test_mailbox_orders_by_time () =
  let mb = Mailbox.create ~cap:4 () in
  let order = ref [] in
  let mark x () = order := x :: !order in
  Mailbox.post mb ~time:30 ~src:0 ~seq:0 (mark 30);
  Mailbox.post mb ~time:10 ~src:0 ~seq:1 (mark 10);
  Mailbox.post mb ~time:20 ~src:0 ~seq:2 (mark 20);
  let n = Mailbox.flush mb (fun ~time:_ act -> act ()) in
  Alcotest.(check int) "three delivered" 3 n;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !order)

(* Equal-time mail from different sources delivers in source order —
   the tie-break that makes a window boundary race (two shards posting
   at the same timestamp) deterministic. *)
let test_mailbox_ties_break_on_src () =
  let mb = Mailbox.create ~cap:4 () in
  let order = ref [] in
  let mark x () = order := x :: !order in
  Mailbox.post mb ~time:100 ~src:2 ~seq:0 (mark 2);
  Mailbox.post mb ~time:100 ~src:0 ~seq:0 (mark 0);
  Mailbox.post mb ~time:100 ~src:1 ~seq:0 (mark 1);
  ignore (Mailbox.flush mb (fun ~time:_ act -> act ()));
  Alcotest.(check (list int)) "src order at equal time" [ 0; 1; 2 ]
    (List.rev !order)

(* Equal (time, src) falls back to the per-src sequence: one source's
   same-timestamp posts keep their program order. *)
let test_mailbox_ties_break_on_seq () =
  let mb = Mailbox.create ~cap:4 () in
  let order = ref [] in
  let mark x () = order := x :: !order in
  Mailbox.post mb ~time:100 ~src:1 ~seq:7 (mark 7);
  Mailbox.post mb ~time:100 ~src:1 ~seq:5 (mark 5);
  Mailbox.post mb ~time:100 ~src:1 ~seq:6 (mark 6);
  ignore (Mailbox.flush mb (fun ~time:_ act -> act ()));
  Alcotest.(check (list int)) "seq order at equal (time, src)" [ 5; 6; 7 ]
    (List.rev !order)

(* ----- mailbox hot path allocates nothing (regression) ----- *)

let test_mailbox_flush_zero_alloc () =
  let mb = Mailbox.create ~cap:16 () in
  let nop () = () in
  let sink ~time:_ (_ : unit -> unit) = () in
  (* warm up past the doubling threshold so steady state is reached *)
  for i = 0 to 127 do
    Mailbox.post mb ~time:i ~src:0 ~seq:i nop
  done;
  ignore (Mailbox.flush mb sink);
  let before = Gc.minor_words () in
  for w = 0 to 9 do
    for i = 0 to 99 do
      Mailbox.post mb ~time:((w * 100) + i) ~src:(i land 3) ~seq:i nop
    done;
    ignore (Mailbox.flush mb sink)
  done;
  let words = Gc.minor_words () -. before in
  (* 1000 posts + 10 flushes; the budget covers Gc.minor_words's own
     boxed floats and nothing else — a per-message allocation would
     cost thousands of words *)
  Alcotest.(check bool)
    (Printf.sprintf "hot path allocation-free (%.0f minor words)" words)
    true
    (words < 256.)

(* ----- steal races on the fabric, modeled with a token ----- *)

(* The steal protocol's race shape, reduced to its ordering skeleton:
   a victim member holds one migratable token; thief members post
   steal requests; the victim grants to the first request its window
   delivers and nacks the rest. The full VMM rides exactly this
   discipline (Decouple.handle_steal_req), so these tests pin the
   ordering contract with none of the scheduler noise. *)

type steal_world = {
  fab : Fabric.t;
  mutable token_home : int;  (** member currently holding the token *)
  mutable grants : (int * int) list;  (** (thief, grant time), newest first *)
  mutable nacks : (int * int) list;
}

let la = 100

let make_world ?seed:(s = 1L) () =
  let engines =
    Array.init 3 (fun i -> Engine.create ~seed:(Int64.add s (Int64.of_int i)) ())
  in
  let fab = Fabric.create ~lookahead:la engines in
  ({ fab; token_home = 0; grants = []; nacks = [] }, engines)

(* Victim-side request handler: grant iff the token is still here —
   a request arriving after the token migrated is stale and nacks,
   never double-grants. *)
let handle_request w ~victim ~thief ~now =
  if w.token_home = victim then begin
    w.token_home <- -1 (* in flight: detached from the victim *);
    Fabric.post w.fab ~src:victim ~dst:thief ~time:(now + la) (fun () ->
        w.token_home <- thief;
        w.grants <- (thief, now + la) :: w.grants)
  end
  else
    Fabric.post w.fab ~src:victim ~dst:thief ~time:(now + la) (fun () ->
        w.nacks <- (thief, now + la) :: w.nacks)

(* Two thieves race for one token in the same window: requests from
   members 1 and 2 land at the victim at the same timestamp, so the
   (time, src, seq) order decides — member 1 wins, member 2 is nacked,
   and the outcome is identical at any worker count. *)
let run_same_window_race ~workers =
  let w, engines = make_world () in
  for thief = 1 to 2 do
    ignore
      (Engine.schedule_at engines.(thief) ~time:0 (fun () ->
           Fabric.post w.fab ~src:thief ~dst:0 ~time:la (fun () ->
               let now = Engine.now engines.(0) in
               handle_request w ~victim:0 ~thief ~now)))
  done;
  Fabric.run ~workers w.fab;
  (w.grants, w.nacks, Fabric.digest w.fab)

let test_same_window_steal_race () =
  let grants, nacks, _ = run_same_window_race ~workers:1 in
  Alcotest.(check (list (pair int int)))
    "lower-indexed thief wins the window"
    [ (1, 2 * la) ]
    grants;
  Alcotest.(check (list (pair int int)))
    "other thief nacked, not double-granted"
    [ (2, 2 * la) ]
    nacks

let test_same_window_steal_race_worker_invariant () =
  let g1, n1, d1 = run_same_window_race ~workers:1 in
  let g2, n2, d2 = run_same_window_race ~workers:2 in
  Alcotest.(check (list (pair int int))) "grants equal" g1 g2;
  Alcotest.(check (list (pair int int))) "nacks equal" n1 n2;
  Alcotest.(check int) "fabric digest equal" d1 d2

(* A stale request: thief 1 wins in an early window and the token
   moves; thief 2's request, posted two windows later, reaches a
   victim that no longer holds the token and must nack — the
   relocation's window barrier has already published the new home. *)
let test_stale_steal_request_after_migration () =
  let w, engines = make_world () in
  ignore
    (Engine.schedule_at engines.(1) ~time:0 (fun () ->
         Fabric.post w.fab ~src:1 ~dst:0 ~time:la (fun () ->
             let now = Engine.now engines.(0) in
             handle_request w ~victim:0 ~thief:1 ~now)));
  ignore
    (Engine.schedule_at engines.(2) ~time:(3 * la) (fun () ->
         Fabric.post w.fab ~src:2 ~dst:0 ~time:(4 * la) (fun () ->
             let now = Engine.now engines.(0) in
             handle_request w ~victim:0 ~thief:2 ~now)));
  Fabric.run ~workers:1 w.fab;
  Alcotest.(check (list (pair int int))) "first thief granted" [ (1, 2 * la) ]
    w.grants;
  Alcotest.(check int) "token lives with thief 1" 1 w.token_home;
  Alcotest.(check (list (pair int int)))
    "late request nacked after migration"
    [ (2, 5 * la) ]
    w.nacks

(* ----- full decoupled scenarios ----- *)

let dec_config ~sockets ~cores =
  {
    Config.default with
    Config.topology = Sim_hw.Topology.make ~sockets ~cores_per_socket:cores;
    scale = 0.05;
    seed = 11L;
    sim_jobs = 2;
    decouple = true;
    obs = { Config.default.Config.obs with Config.hub = false };
  }

let heavy name = Scenario.vm ~name ~vcpus:2 ~weight:256
let light name = Scenario.vm ~name ~vcpus:1 ~weight:256

(* Round-robin split: even indices land on shard 0, odd on shard 1.
   Shard 0 is overcommitted with throughput VMs (6 VCPUs on 2 PCPUs,
   so preempted domains sit quiescent in the runqueues); shard 1's
   finite workloads drain fast and leave it idle — the balance ticks
   must then move work across. *)
let steal_scenario config =
  let wl d = Scenario.workload_of_desc config d in
  [
    heavy "vm0" (wl (Scenario.W_speccpu "gcc"));
    light "vm1" (wl (Scenario.W_compute { threads = 1; chunks = 3; chunk_us = 400 }));
    heavy "vm2" (wl (Scenario.W_nas "LU"));
    light "vm3" (wl (Scenario.W_compute { threads = 1; chunks = 3; chunk_us = 400 }));
    heavy "vm4" (wl (Scenario.W_speccpu "bzip2"));
    light "vm5" (wl (Scenario.W_compute { threads = 1; chunks = 3; chunk_us = 400 }));
  ]

let run_steal_scenario ~workers =
  let config = dec_config ~sockets:2 ~cores:2 in
  let d =
    Decouple.build config ~sched:Config.Asman ~vms:(steal_scenario config)
  in
  Decouple.run ~workers d ~rounds:2 ~max_sec:4.0

let test_decoupled_steals_move_work () =
  let r = run_steal_scenario ~workers:1 in
  Alcotest.(check bool)
    (Printf.sprintf "at least one grant (got %d of %d requests)"
       r.Decouple.rp_grants r.Decouple.rp_steal_reqs)
    true
    (r.Decouple.rp_grants >= 1);
  let migrated =
    List.filter (fun v -> v.Decouple.r_migrations > 0) r.Decouple.rp_vms
  in
  Alcotest.(check bool) "a migrated VM exists" true (migrated <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s kept progressing after migration (%d rounds)"
           v.Decouple.r_vm v.Decouple.r_rounds)
        true
        (v.Decouple.r_rounds >= 1))
    migrated;
  (* steal latency is the protocol's 2-window round trip *)
  Alcotest.(check bool) "steal latency positive" true
    (r.Decouple.rp_mean_steal_latency_cycles > 0.)

let test_decoupled_worker_invariance () =
  let r1 = run_steal_scenario ~workers:1 in
  let r2 = run_steal_scenario ~workers:2 in
  Alcotest.(check string) "fingerprints equal"
    r1.Decouple.rp_fingerprint r2.Decouple.rp_fingerprint;
  Alcotest.(check int) "digests equal" r1.Decouple.rp_digest
    r2.Decouple.rp_digest;
  Alcotest.(check int) "events equal" r1.Decouple.rp_events
    r2.Decouple.rp_events;
  Alcotest.(check int) "grants equal" r1.Decouple.rp_grants
    r2.Decouple.rp_grants;
  List.iter2
    (fun a b ->
      Alcotest.(check string) "vm name" a.Decouple.r_vm b.Decouple.r_vm;
      Alcotest.(check int)
        (a.Decouple.r_vm ^ " rounds")
        a.Decouple.r_rounds b.Decouple.r_rounds;
      Alcotest.(check int)
        (a.Decouple.r_vm ^ " final shard")
        a.Decouple.r_final_shard b.Decouple.r_final_shard)
    r1.Decouple.rp_vms r2.Decouple.rp_vms

(* Build-time preconditions: misaligned topology and missing VMs are
   rejected up front, not discovered as a mid-run crash. *)
let test_build_rejects_bad_shapes () =
  let config = dec_config ~sockets:3 ~cores:2 in
  let vms = steal_scenario config in
  Alcotest.check_raises "sockets not divisible by shards"
    (Invalid_argument
       "Decouple.build: 3 sockets cannot split into 2 socket-aligned shards \
        (pick --topology SxC with S a multiple of --sim-jobs)")
    (fun () -> ignore (Decouple.build config ~sched:Config.Asman ~vms));
  let config1 = { (dec_config ~sockets:2 ~cores:2) with Config.sim_jobs = 1 } in
  Alcotest.check_raises "one shard is not decoupled"
    (Invalid_argument "Decouple.build: --decouple needs --sim-jobs >= 2")
    (fun () ->
      ignore (Decouple.build config1 ~sched:Config.Asman ~vms))

(* Parking a kernel that still owns pending events must refuse: the
   quiescence gate is what keeps a migrating domain's state complete
   inside the grant message. *)
let test_park_requires_quiescence () =
  let config =
    {
      Config.default with
      Config.topology = Sim_hw.Topology.make ~sockets:1 ~cores_per_socket:2;
      scale = 0.05;
      seed = 3L;
      obs = { Config.default.Config.obs with Config.hub = false };
    }
  in
  let wl = Scenario.workload_of_desc config (Scenario.W_speccpu "gcc") in
  let s =
    Scenario.build config ~sched:Config.Asman
      ~vms:[ Scenario.vm ~name:"vm0" ~vcpus:2 ~weight:256 wl ]
  in
  (* run mid-workload: the kernel is busy, not quiescent *)
  Sim_engine.Engine.run ~until:(Units.cycles_of_sec_f (Config.freq config) 0.05)
    s.Scenario.engine;
  let inst = List.hd s.Scenario.vms in
  match inst.Scenario.kernel with
  | None -> Alcotest.fail "workload VM has a kernel"
  | Some k ->
    Alcotest.(check bool) "kernel busy mid-run" false
      (Sim_guest.Kernel.quiescent k);
    Alcotest.check_raises "park refuses a busy kernel"
      (Failure "Kernel.park: kernel not quiescent") (fun () ->
        Sim_guest.Kernel.park k)

let suite =
  [
    Alcotest.test_case "mailbox: time order" `Quick test_mailbox_orders_by_time;
    Alcotest.test_case "mailbox: src tie-break" `Quick
      test_mailbox_ties_break_on_src;
    Alcotest.test_case "mailbox: seq tie-break" `Quick
      test_mailbox_ties_break_on_seq;
    Alcotest.test_case "mailbox: zero-alloc hot path" `Quick
      test_mailbox_flush_zero_alloc;
    Alcotest.test_case "same-window steal race" `Quick
      test_same_window_steal_race;
    Alcotest.test_case "same-window race is worker-invariant" `Quick
      test_same_window_steal_race_worker_invariant;
    Alcotest.test_case "stale request after migration nacks" `Quick
      test_stale_steal_request_after_migration;
    Alcotest.test_case "decoupled steals move work" `Quick
      test_decoupled_steals_move_work;
    Alcotest.test_case "decoupled run is worker-invariant" `Quick
      test_decoupled_worker_invariance;
    Alcotest.test_case "build rejects bad shapes" `Quick
      test_build_rejects_bad_shapes;
    Alcotest.test_case "park requires quiescence" `Quick
      test_park_requires_quiescence;
  ]
