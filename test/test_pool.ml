(* The domain worker pool: order preservation, exception propagation,
   sequential/parallel equivalence, and the determinism argument for
   the experiment fan-out — one representative figure must render a
   byte-identical report sequentially and with 4 workers. *)

open Asman

let square x = x * x

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let expect = List.map square xs in
  Alcotest.(check (list int)) "jobs=4" expect (Pool.map ~jobs:4 square xs);
  Alcotest.(check (list int)) "jobs=1" expect (Pool.map ~jobs:1 square xs);
  Alcotest.(check (list int))
    "more workers than jobs" expect
    (Pool.map ~jobs:13 square xs)

let test_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 square []);
  Alcotest.(check (list int)) "singleton" [ 49 ] (Pool.map ~jobs:4 square [ 7 ]);
  Alcotest.(check (list int))
    "jobs clamped to 1" [ 1; 4 ]
    (Pool.map ~jobs:0 square [ 1; 2 ])

let test_exception_propagates () =
  Alcotest.check_raises "failure resurfaces" (Failure "job 37 boom") (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 37 then failwith "job 37 boom" else x)
           (List.init 64 Fun.id)))

(* The first failure aborts the queue: unstarted jobs are dropped. In
   the sequential path the cut is exact (nothing after the failing
   index runs); in the parallel path only in-flight jobs may finish,
   so with the failure first not all 256 can have started. *)
let test_abort_on_first_error () =
  let ran = Atomic.make 0 in
  let job fail_at x =
    Atomic.incr ran;
    if x = fail_at then failwith "abort";
    x
  in
  Atomic.set ran 0;
  (try ignore (Pool.map ~jobs:1 (job 3) (List.init 64 Fun.id))
   with Failure _ -> ());
  Alcotest.(check int) "sequential stops at the failure" 4 (Atomic.get ran);
  Atomic.set ran 0;
  (try
     ignore
       (Pool.map ~jobs:4
          (fun x ->
            let y = job 0 x in
            Unix.sleepf 0.001;
            y)
          (List.init 256 Fun.id))
   with Failure _ -> ());
  Alcotest.(check bool) "parallel drains the queue" true (Atomic.get ran < 256)

let test_job_timeout () =
  let xs = [ 0; 1; 2 ] in
  let f x =
    if x = 1 then Unix.sleepf 0.05;
    x * 10
  in
  Alcotest.(check (list int))
    "generous limit passes" [ 0; 10; 20 ]
    (Pool.map ~jobs:2 ~timeout_sec:30. f xs);
  match Pool.map ~jobs:2 ~timeout_sec:0.01 f xs with
  | _ -> Alcotest.fail "timeout not raised"
  | exception Pool.Job_timeout { index; elapsed_sec; limit_sec } ->
    Alcotest.(check int) "offending index" 1 index;
    Alcotest.(check bool) "elapsed over limit" true (elapsed_sec > limit_sec)

let test_seq_par_equivalence () =
  let f x = (x * 7919) mod 997 in
  let xs = List.init 257 Fun.id in
  Alcotest.(check (list int))
    "j1 = j4"
    (Pool.map ~jobs:1 f xs)
    (Pool.map ~jobs:4 f xs)

let test_jobs_knob () =
  Alcotest.(check bool) "default positive" true (Pool.default_jobs () >= 1);
  let saved = Pool.jobs () in
  Pool.set_jobs 3;
  Alcotest.(check int) "set_jobs" 3 (Pool.jobs ());
  Pool.set_jobs (-5);
  Alcotest.(check int) "clamped" 1 (Pool.jobs ());
  Pool.set_jobs saved

let test_accounting () =
  Pool.reset_accounting ();
  ignore (Pool.map ~jobs:2 square [ 1; 2; 3 ]);
  let s = Pool.accounting () in
  Alcotest.(check int) "three timings" 3 (List.length s.Pool.timings);
  Alcotest.(check int) "workers recorded" 2 s.Pool.jobs_used;
  Alcotest.(check bool) "busy non-negative" true (s.Pool.busy_sec >= 0.);
  Alcotest.(check (list int))
    "every job accounted" [ 0; 1; 2 ]
    (List.sort compare
       (List.map (fun (t : Pool.job_timing) -> t.Pool.index) s.Pool.timings))

(* Determinism of the experiment fan-out: per-job engines built from a
   fixed seed mean fig1a's full rendered report is byte-identical no
   matter how many worker domains run it. *)
let tiny = Config.with_scale (Config.with_seed Config.default 5L) 0.02

let render_fig1a () =
  match Experiments.find "fig1a" with
  | Some e -> Report.outcome e (e.Experiments.run tiny)
  | None -> Alcotest.fail "fig1a missing"

let test_fig1a_deterministic () =
  let saved = Pool.jobs () in
  Pool.set_jobs 1;
  let sequential = render_fig1a () in
  Pool.set_jobs 4;
  let parallel = render_fig1a () in
  Pool.set_jobs saved;
  Alcotest.(check string) "byte-identical report" sequential parallel

let suite =
  [
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "abort on first error" `Quick test_abort_on_first_error;
    Alcotest.test_case "job timeout" `Quick test_job_timeout;
    Alcotest.test_case "seq/par equivalence" `Quick test_seq_par_equivalence;
    Alcotest.test_case "jobs knob" `Quick test_jobs_knob;
    Alcotest.test_case "accounting" `Quick test_accounting;
    Alcotest.test_case "fig1a deterministic across workers" `Slow
      test_fig1a_deterministic;
  ]
