(* The domain worker pool: order preservation, exception propagation,
   sequential/parallel equivalence, and the determinism argument for
   the experiment fan-out — one representative figure must render a
   byte-identical report sequentially and with 4 workers. *)

open Asman

let square x = x * x

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let expect = List.map square xs in
  Alcotest.(check (list int)) "jobs=4" expect (Pool.map ~jobs:4 square xs);
  Alcotest.(check (list int)) "jobs=1" expect (Pool.map ~jobs:1 square xs);
  Alcotest.(check (list int))
    "more workers than jobs" expect
    (Pool.map ~jobs:13 square xs)

let test_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 square []);
  Alcotest.(check (list int)) "singleton" [ 49 ] (Pool.map ~jobs:4 square [ 7 ]);
  Alcotest.(check (list int))
    "jobs clamped to 1" [ 1; 4 ]
    (Pool.map ~jobs:0 square [ 1; 2 ])

let test_exception_propagates () =
  Alcotest.check_raises "failure resurfaces" (Failure "job 37 boom") (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 37 then failwith "job 37 boom" else x)
           (List.init 64 Fun.id)))

let test_seq_par_equivalence () =
  let f x = (x * 7919) mod 997 in
  let xs = List.init 257 Fun.id in
  Alcotest.(check (list int))
    "j1 = j4"
    (Pool.map ~jobs:1 f xs)
    (Pool.map ~jobs:4 f xs)

let test_jobs_knob () =
  Alcotest.(check bool) "default positive" true (Pool.default_jobs () >= 1);
  let saved = Pool.jobs () in
  Pool.set_jobs 3;
  Alcotest.(check int) "set_jobs" 3 (Pool.jobs ());
  Pool.set_jobs (-5);
  Alcotest.(check int) "clamped" 1 (Pool.jobs ());
  Pool.set_jobs saved

let test_accounting () =
  Pool.reset_accounting ();
  ignore (Pool.map ~jobs:2 square [ 1; 2; 3 ]);
  let s = Pool.accounting () in
  Alcotest.(check int) "three timings" 3 (List.length s.Pool.timings);
  Alcotest.(check int) "workers recorded" 2 s.Pool.jobs_used;
  Alcotest.(check bool) "busy non-negative" true (s.Pool.busy_sec >= 0.);
  Alcotest.(check (list int))
    "every job accounted" [ 0; 1; 2 ]
    (List.sort compare
       (List.map (fun (t : Pool.job_timing) -> t.Pool.index) s.Pool.timings))

(* Determinism of the experiment fan-out: per-job engines built from a
   fixed seed mean fig1a's full rendered report is byte-identical no
   matter how many worker domains run it. *)
let tiny = Config.with_scale (Config.with_seed Config.default 5L) 0.02

let render_fig1a () =
  match Experiments.find "fig1a" with
  | Some e -> Report.outcome e (e.Experiments.run tiny)
  | None -> Alcotest.fail "fig1a missing"

let test_fig1a_deterministic () =
  let saved = Pool.jobs () in
  Pool.set_jobs 1;
  let sequential = render_fig1a () in
  Pool.set_jobs 4;
  let parallel = render_fig1a () in
  Pool.set_jobs saved;
  Alcotest.(check string) "byte-identical report" sequential parallel

let suite =
  [
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "seq/par equivalence" `Quick test_seq_par_equivalence;
    Alcotest.test_case "jobs knob" `Quick test_jobs_knob;
    Alcotest.test_case "accounting" `Quick test_accounting;
    Alcotest.test_case "fig1a deterministic across workers" `Slow
      test_fig1a_deterministic;
  ]
