(* Tests for the out-of-VM detection path: PLE generation in the guest
   kernel, delivery through the VMM, and the ASMan-OOV scheduler. *)

open Asman

let config = Config.with_scale (Config.with_seed Config.default 31L) 0.05

let freq = Config.freq config

let lu_scenario ?(sched = Config.Asman_oov) ?(weight = 32) ?guest_params () =
  let config =
    match guest_params with
    | Some gp -> { config with Config.guest_params = Some gp }
    | None -> config
  in
  Scenario.build
    (Config.with_work_conserving config false)
    ~sched
    ~vms:
      [
        {
          Scenario.vm_name = "V1";
          weight;
          vcpus = 4;
          workload =
            Some
              (Sim_workloads.Nas.workload
                 (Sim_workloads.Nas.params Sim_workloads.Nas.LU ~freq ~scale:0.05));
        };
      ]

let test_ple_fires_when_degraded () =
  let s = lu_scenario ~sched:Config.Credit () in
  let _ = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
  Alcotest.(check bool) "ple exits observed" true
    (Sim_vmm.Vmm.ple_exits s.Scenario.vmm > 0)

let test_no_ple_at_full_rate () =
  let s = lu_scenario ~sched:Config.Credit ~weight:256 () in
  let _ = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
  Alcotest.(check int) "no false positives at 100%" 0
    (Sim_vmm.Vmm.ple_exits s.Scenario.vmm)

let test_ple_disabled () =
  let gp = { (Config.guest_params config) with Sim_guest.Kernel.ple_window = 0 } in
  let s = lu_scenario ~sched:Config.Credit ~guest_params:gp () in
  let _ = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
  Alcotest.(check int) "window 0 disables detection" 0
    (Sim_vmm.Vmm.ple_exits s.Scenario.vmm)

let test_oov_coschedules_without_guest_reports () =
  (* Disable the in-VM Monitoring Module's hypercalls entirely: the
     OOV scheduler must still detect and coschedule via PLEs. *)
  let gp = Config.guest_params config in
  let gp =
    {
      gp with
      Sim_guest.Kernel.monitor =
        { gp.Sim_guest.Kernel.monitor with Sim_guest.Monitor.report_vcrd = false };
    }
  in
  let s = lu_scenario ~guest_params:gp () in
  let m = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
  let vm = Runner.vm_metrics m ~vm:"V1" in
  Alcotest.(check bool) "vcrd driven by the VMM itself" true
    (vm.Runner.vcrd_transitions > 0);
  Alcotest.(check bool) "ipis sent" true (m.Runner.ipis > 0)

let test_oov_matches_invm_asman () =
  let time sched =
    let s = lu_scenario ~sched () in
    let m = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
    Runner.first_round_sec m ~vm:"V1"
  in
  let invm = time Config.Asman and oov = time Config.Asman_oov in
  let credit = time Config.Credit in
  Alcotest.(check bool)
    (Printf.sprintf "oov (%.3f) close to in-vm (%.3f), both beat credit (%.3f)"
       oov invm credit)
    true
    (oov < 0.85 *. credit && abs_float (oov -. invm) /. invm < 0.25)

let test_sched_names () =
  Alcotest.(check string) "name" "asman-oov" (Config.sched_name Config.Asman_oov);
  Alcotest.(check bool) "parse" true
    (Config.sched_of_name "oov" = Some Config.Asman_oov);
  let custom = Config.Custom ("my-sched", Sim_vmm.Sched_credit.make) in
  Alcotest.(check string) "custom name" "my-sched" (Config.sched_name custom)

let test_gang_knobs_compile_and_run () =
  (* All-off gang scheduler must degrade to roughly Credit behaviour. *)
  let bare =
    Config.Custom
      ( "asman-bare",
        Sim_vmm.Sched_gang.make ~ipi:false ~solidarity:false ~continuity:false
          ~name:"asman-bare"
          ~should_cosched:(fun d -> d.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High) )
  in
  let time sched =
    let s = lu_scenario ~sched () in
    let m = Runner.run_rounds s ~rounds:1 ~max_sec:60. in
    (Runner.first_round_sec m ~vm:"V1", m.Runner.ipis)
  in
  let bare_t, bare_ipis = time bare in
  let credit_t, _ = time Config.Credit in
  Alcotest.(check int) "no ipis with dispatch off" 0 bare_ipis;
  Alcotest.(check bool)
    (Printf.sprintf "within 40%% of credit (%.3f vs %.3f)" bare_t credit_t)
    true
    (abs_float (bare_t -. credit_t) /. credit_t < 0.4)

let test_llc_aware_cuts_cross_socket_ipis () =
  let nas b =
    Sim_workloads.Nas.workload
      (Sim_workloads.Nas.params b ~freq ~scale:0.05)
  in
  let run sched =
    let s =
      Scenario.build config ~sched
        ~vms:
          (List.mapi
             (fun i b ->
               { Scenario.vm_name = Printf.sprintf "V%d" (i + 1); weight = 256;
                 vcpus = 4; workload = Some (nas b) })
             [ Sim_workloads.Nas.LU; Sim_workloads.Nas.LU;
               Sim_workloads.Nas.SP; Sim_workloads.Nas.SP ])
    in
    let _ = Runner.run_window s ~sec:1.0 in
    let total = Sim_hw.Machine.ipis_sent s.Scenario.machine in
    let cross = Sim_hw.Machine.ipis_cross_socket s.Scenario.machine in
    if total = 0 then 0. else float_of_int cross /. float_of_int total
  in
  let llc =
    Config.Custom
      ( "asman-llc",
        Sim_vmm.Sched_gang.make ~llc_aware:true ~name:"asman-llc"
          ~should_cosched:(fun d -> d.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High) )
  in
  let plain_share = run Config.Asman and llc_share = run llc in
  Alcotest.(check bool)
    (Printf.sprintf "llc share (%.2f) < plain share (%.2f)" llc_share plain_share)
    true
    (llc_share < plain_share)

let test_ablation_registry () =
  let ids = Ablations.ids () in
  Alcotest.(check int) "eight ablations" 8 (List.length ids);
  List.iter
    (fun id ->
      match Ablations.find id with
      | Some a -> Alcotest.(check string) "id" id a.Ablations.id
      | None -> Alcotest.failf "missing %s" id)
    ids;
  Alcotest.(check bool) "unknown" true (Ablations.find "nope" = None)

let test_ablation_oov_runs () =
  match Ablations.find "ablate-oov" with
  | None -> Alcotest.fail "ablate-oov missing"
  | Some a ->
    let o = a.Ablations.run (Config.with_scale config 0.03) in
    Alcotest.(check int) "three series" 3 (List.length o.Experiments.series);
    Alcotest.(check bool) "has a note" true (o.Experiments.notes <> [])

let suite =
  [
    Alcotest.test_case "ple fires when degraded" `Quick test_ple_fires_when_degraded;
    Alcotest.test_case "no ple at 100%" `Quick test_no_ple_at_full_rate;
    Alcotest.test_case "ple disabled" `Quick test_ple_disabled;
    Alcotest.test_case "oov needs no guest reports" `Quick
      test_oov_coschedules_without_guest_reports;
    Alcotest.test_case "oov matches in-vm" `Slow test_oov_matches_invm_asman;
    Alcotest.test_case "sched names" `Quick test_sched_names;
    Alcotest.test_case "gang knobs" `Slow test_gang_knobs_compile_and_run;
    Alcotest.test_case "llc-aware relocation" `Slow
      test_llc_aware_cuts_cross_socket_ipis;
    Alcotest.test_case "ablation registry" `Quick test_ablation_registry;
    Alcotest.test_case "ablate-oov runs" `Slow test_ablation_oov_runs;
  ]
