type state = Running of int | Ready | Blocked

type hooks = { on_scheduled : unit -> unit; on_preempted : unit -> unit }

let no_hooks = { on_scheduled = (fun () -> ()); on_preempted = (fun () -> ()) }

type t = {
  id : int;
  domain_id : int;
  index : int;
  mutable credit : int;
  mutable state : state;
  mutable home : int;
  mutable boosted : bool;
  mutable parked : bool;
  mutable hooks : hooks;
  mutable online_cycles : int;
  mutable last_dispatch : int;
  mutable dispatches : int;
  mutable migrations : int;
  (* Pending cold-cache cycles from a cross-socket relocation (NUMA
     model); charged as extra consumed time at the next accounting and
     reset. Stays 0 when the NUMA model is off. *)
  mutable reloc_penalty : int;
}

let make ~id ~domain_id ~index ~home =
  {
    id;
    domain_id;
    index;
    credit = 0;
    state = Blocked;
    home;
    boosted = false;
    parked = false;
    hooks = no_hooks;
    online_cycles = 0;
    last_dispatch = 0;
    dispatches = 0;
    migrations = 0;
    reloc_penalty = 0;
  }

let set_hooks t hooks = t.hooks <- hooks

let is_running t = match t.state with Running _ -> true | Ready | Blocked -> false

let is_ready t = t.state = Ready

let is_blocked t = t.state = Blocked

let eligible t = t.boosted || not t.parked

let running_on t = match t.state with Running p -> Some p | Ready | Blocked -> None

let pp fmt t =
  let state =
    match t.state with
    | Running p -> Printf.sprintf "running@%d" p
    | Ready -> "ready"
    | Blocked -> "blocked"
  in
  Format.fprintf fmt "vcpu%d(dom%d.%d %s credit=%d%s)" t.id t.domain_id t.index
    state t.credit
    (if t.boosted then " boost" else "")
