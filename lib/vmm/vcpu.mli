(** Virtual CPU.

    A VCPU is the schedulable unit the VMM multiplexes onto PCPUs. It
    carries Credit-scheduler state (credit balance, boost flag) and
    the guest-facing hooks through which the guest kernel learns when
    the VCPU goes on and off a PCPU (the "sometimes online, sometimes
    offline" behaviour of §2.1 that breaks spinlock assumptions). *)

type state =
  | Running of int  (** online on the given PCPU *)
  | Ready  (** waiting in some PCPU's run queue *)
  | Blocked  (** idle (guest halted it); not in any run queue *)

type hooks = {
  on_scheduled : unit -> unit;  (** VCPU just went online *)
  on_preempted : unit -> unit;  (** VCPU just went offline *)
}

val no_hooks : hooks

type t = {
  id : int;  (** globally unique *)
  domain_id : int;
  index : int;  (** position within the domain, 0-based *)
  mutable credit : int;
  mutable state : state;
  mutable home : int;  (** PCPU whose run queue holds/held it *)
  mutable boosted : bool;  (** coscheduling IPI priority boost *)
  mutable parked : bool;
      (** capped (non-work-conserving) and out of credit. Set and
          cleared only at accounting events, as Xen does: a capped VM's
          VCPUs park and unpark in global sync, and a parked VCPU is
          not runnable unless boosted by a coscheduling IPI. *)
  mutable hooks : hooks;
  mutable online_cycles : int;  (** accumulated online time *)
  mutable last_dispatch : int;  (** when the current online span began *)
  mutable dispatches : int;
  mutable migrations : int;
  mutable reloc_penalty : int;
      (** pending cold-cache cycles from a cross-socket relocation
          (NUMA model); charged and reset at the next accounting.
          Always 0 when the NUMA model is off. *)
}

val make : id:int -> domain_id:int -> index:int -> home:int -> t
(** A fresh VCPU, [Blocked] with zero credit. *)

val set_hooks : t -> hooks -> unit

val is_running : t -> bool
val is_ready : t -> bool
val is_blocked : t -> bool

val eligible : t -> bool
(** May be dispatched: not parked, or boost-overridden. *)

val running_on : t -> int option

val pp : Format.formatter -> t -> unit
