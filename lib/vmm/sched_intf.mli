(** Interface between the VMM core and pluggable schedulers.

    The VMM core owns the run queues, the current-VCPU assignment and
    the credit burning; a scheduler is a bundle of event handlers that
    reacts to slot boundaries, assignment periods, wake/block and VCRD
    changes by invoking the actions in {!api}. *)

type numa = {
  topo : Sim_hw.Topology.t;
  reloc_penalty_cycles : int;
      (** cold-cache cost charged to a VCPU relocated across sockets,
          consumed at its next accounting event *)
}
(** NUMA-ish host model for big (64-256 PCPU) topologies: schedulers
    prefer same-socket steals, and cross-socket relocations pay a
    one-off penalty. [None] in {!api} — the default — keeps every
    scheduler byte-identical to the flat-host behaviour. *)

type api = {
  machine : Sim_hw.Machine.t;
  runqueues : Runqueue.t array;  (** index = PCPU id *)
  domains : unit -> Domain.t list;  (** creation order *)
  work_conserving : bool;
      (** [false]: a VM's CPU time is strictly capped by its weight
          (Xen's non work-conserving mode, used in §5.2);
          [true]: VMs may consume slack (used in §5.3) *)
  credit_unit : int;
  now : unit -> int;
  current : int -> Vcpu.t option;  (** VCPU online on a PCPU *)
  run_on : pcpu:int -> Vcpu.t -> unit;
      (** Context-switch a PCPU to a [Ready] VCPU (the previous
          occupant is preempted and re-queued on that PCPU). A no-op
          if it is already running there. *)
  make_idle : pcpu:int -> unit;
      (** Preempt and re-queue the occupant, leaving the PCPU idle. *)
  migrate : Vcpu.t -> dst:int -> unit;
      (** Move a [Ready] VCPU to another PCPU's run queue. *)
  domain_online : Domain.t -> int;
      (** Cumulative guest online cycles (for VMM-side window
          metering, e.g. out-of-VM VCRD detection). *)
  pcpu_online : int -> bool;
      (** Whether the PCPU is online (hotplug fault injection);
          schedulers must not dispatch onto offline PCPUs. *)
  watchdog : Watchdog.params option;
      (** When set, the gang scheduler tracks coscheduling launches
          and demotes stalling domains to plain Credit. [None] (the
          default) leaves behavior identical to a watchdog-free
          build. *)
  metrics : Sim_obs.Metrics.t;
      (** The simulation's metrics registry, for scheduler-owned
          counters (e.g. the gang watchdog's tallies). *)
  numa : numa option;
      (** When set, {!Sched_common.steal} prefers same-socket
          runqueues and the core charges relocation penalties. *)
}

type t = {
  name : string;
  on_slot : pcpu:int -> unit;
      (** Slot-boundary scheduling event on a PCPU. The core has
          already charged credit; the handler must leave the PCPU
          either running some VCPU or idle. *)
  on_period : unit -> unit;  (** Credit assignment event (Algorithm 3). *)
  on_wake : Vcpu.t -> unit;
      (** A blocked VCPU became runnable; the core already marked it
          [Ready] (not queued). The handler must queue it (and may
          dispatch it immediately onto an idle PCPU). *)
  on_block : Vcpu.t -> unit;
      (** The VCPU running on some PCPU blocked; the core already
          removed it. The handler should fill the hole. *)
  on_vcrd_change : Domain.t -> unit;
      (** The guest changed the domain's VCRD via hypercall. *)
  on_ple : Vcpu.t -> unit;
      (** Hardware pause-loop-exit: the VCPU has been busy-spinning a
          full PLE window. The basis for out-of-VM VCRD detection (the
          paper's stated future work); ignored by the other
          schedulers. *)
  migratable : Domain.t -> bool;
      (** Whether the scheduler holds no pending state (armed windows,
          in-flight coscheduling IPIs, watchdog audits) that would
          dangle if the domain were detached from this host right
          now. Per-VCPU flags like gang boosts travel with the domain
          and don't block. Part of the decoupled-VMM quiescence gate;
          always [true] for stateless schedulers. *)
  counters : unit -> (string * int) list;
      (** Scheduler-specific health counters (e.g. the gang watchdog's
          launch/timeout/demotion tallies); [[]] when none. *)
}

type maker = api -> t
(** Scheduler constructor, passed to [Vmm.create]. *)
