(** Virtual machine (Xen domain).

    Carries the proportional-share weight, the VCPU set, and the
    paper's central dynamic property: the {b VCPU Related Degree}
    (VCRD). When the guest's Monitoring Module detects over-threshold
    spinlocks it raises VCRD to [High] via the [do_vcrd_op] hypercall;
    the Adaptive Scheduler then coschedules the domain's VCPUs. *)

type vcrd = Low | High

type t = {
  id : int;
  name : string;
  weight : int;
  vcpus : Vcpu.t array;
  mutable vcrd : vcrd;
  concurrent_type : bool;
      (** static marking used only by the CON (static-coscheduling)
          baseline of the paper's previous work [12] *)
  (* accounting *)
  mutable vcrd_transitions : int;  (** Low->High transitions *)
  mutable high_cycles : int;  (** total time spent with VCRD = High *)
  mutable high_since : int;  (** valid while vcrd = High *)
}

val make :
  ?concurrent_type:bool ->
  id:int ->
  name:string ->
  weight:int ->
  vcpus:Vcpu.t array ->
  unit ->
  t
(** Raises [Invalid_argument] on a non-positive weight or empty VCPU
    array, or if the VCPUs do not all belong to domain [id]. *)

val vcpu_count : t -> int

val set_vcrd : t -> now:int -> vcrd -> bool
(** [set_vcrd t ~now v] updates the VCRD and accounting; returns
    [true] iff the value changed. *)

val weight_proportion : t -> all:t list -> float
(** Equation (1): this domain's weight over the sum of all weights. *)

val expected_online_rate : t -> all:t list -> pcpus:int -> float
(** Equation (2): [pcpus * weight_proportion / vcpu_count], the
    fraction of time each VCPU is expected to be online. *)

val online_cycles : t -> int
(** Sum of the VCPUs' accumulated online time (excludes any open
    online span). *)

val pp : Format.formatter -> t -> unit
