(** The VMM core: owns run queues, the PCPU-to-VCPU assignment, credit
    burning and online-time accounting, and drives a pluggable
    scheduler from the machine's slot/period events.

    Responsibility split: the scheduler decides {e which} VCPU runs
    where; the core performs context switches, charges credit for time
    actually run, clears boost on preemption, and keeps the state
    invariants (a [Running] VCPU is on exactly one PCPU; a [Ready]
    VCPU is in exactly one run queue; a [Blocked] VCPU is in none). *)

type t

type invariant_mode =
  | Off  (** no runtime checking (the default) *)
  | Record  (** log violations, keep running *)
  | Raise  (** raise {!Invariant_violation} on the first violation *)

type accounting =
  | Precise
      (** span-exact charging at every span end (the default, and the
          theft defense): a VCPU pays for exactly the cycles it ran *)
  | Sampled
      (** Xen-faithful periodic-tick debiting: whoever occupies the
          PCPU at each credit tick pays one full tick quantum,
          regardless of how long it actually ran. Reproduces the
          Zhou et al. tick-dodging vulnerability. *)

val accounting_name : accounting -> string
val accounting_of_name : string -> accounting option
(** Recognises ["precise"] and ["sampled"] (case-insensitive). *)

exception Invariant_violation of string

val create :
  ?work_conserving:bool ->
  ?credit_unit:int ->
  ?accounting:accounting ->
  ?watchdog:Watchdog.params ->
  ?numa:Sched_intf.numa ->
  ?domain_id_base:int ->
  ?vcpu_id_base:int ->
  Sim_hw.Machine.t ->
  sched:Sched_intf.maker ->
  t
(** [work_conserving] defaults to [true]; [credit_unit] to
    {!Credit.default_credit_unit}; [accounting] to [Precise]
    (byte-identical to builds without the accounting knob).
    [watchdog] (default off) arms the gang scheduler's coscheduling
    watchdog — see {!Watchdog}. [numa] (default off) arms the NUMA
    host model: schedulers prefer same-socket steals and cross-socket
    relocations charge a cold-cache penalty at the next accounting —
    see {!Sched_intf.numa}. [domain_id_base]/[vcpu_id_base] (default
    0) seed the id counters — decoupled sub-hosts use disjoint bases
    so domain and VCPU ids stay globally unique when domains migrate
    between hosts. *)

val accounting : t -> accounting

val engine : t -> Sim_engine.Engine.t

val machine : t -> Sim_hw.Machine.t

val metrics : t -> Sim_obs.Metrics.t
(** The simulation's metrics registry. Created per-Vmm (never
    global) with standing gauges over the engine ([events_fired],
    [pending_events]), hardware (IPI and tick-suppression tallies)
    and VMM ([ctx_switches], [ple_exits], [invariant_violations],
    per-PCPU run-queue depths); subsystems downstream (guest
    monitors, fault injector, watchdog) register theirs here too. *)

val cpu_model : t -> Sim_hw.Cpu_model.t
val pcpu_count : t -> int
val sched_name : t -> string

val create_domain :
  t ->
  ?concurrent_type:bool ->
  name:string ->
  weight:int ->
  vcpus:int ->
  unit ->
  Domain.t
(** Create a domain whose VCPUs start [Blocked] with homes assigned
    round-robin across PCPUs. Must be called before {!start}. *)

val domains : t -> Domain.t list
(** In creation order. *)

val find_domain : t -> int -> Domain.t

val start : t -> unit
(** Install machine handlers and begin the slot/period event streams.
    Call after all domains exist; the simulation then advances by
    running the engine. *)

val vcpu_wake : t -> Vcpu.t -> unit
(** Guest signal: a [Blocked] VCPU has runnable work. No-op when not
    blocked. *)

val vcpu_block : t -> Vcpu.t -> unit
(** Guest signal: the calling VCPU (must be [Running]) halts. The
    guest is {e not} called back via [on_preempted] — it initiated the
    block and is expected to have saved its own state. *)

val do_vcrd_op : t -> Domain.t -> Domain.vcrd -> unit
(** The paper's hypercall: update a domain's VCRD and notify the
    scheduler on change. *)

val pause_loop_exit : t -> Vcpu.t -> unit
(** Hardware signal: the VCPU spent a full PLE window busy-spinning.
    Forwarded to the scheduler's [on_ple] handler (the out-of-VM
    detection path); counts are available via {!ple_exits}. *)

val current_on : t -> int -> Vcpu.t option

val now : t -> int

(** {2 Decoupled-VMM domain migration}

    A sub-host shard steals load by moving a whole quiescent domain —
    VCRD state, credit and counters travel inside the {!Domain.t} —
    to another host. These calls are only legal on a domain with no
    [Running] VCPU; the caller additionally owns the guest-kernel and
    scheduler quiescence checks ({!sched_migratable} is the
    scheduler-state part). *)

val sched_migratable : t -> Domain.t -> bool
(** Whether the scheduler holds no pending state (armed windows,
    in-flight coscheduling IPIs, watchdog audits, boosts) for the
    domain — see {!Sched_intf.t.migratable}. *)

val detach_domain : t -> Domain.t -> unit
(** Remove the domain from this host: Ready VCPUs leave their run
    queues, the accounting base entry is dropped, and the domain's
    credit leaves the conservation ledger. Raises [Invalid_argument]
    if a VCPU is [Running] or the domain is not on this host. *)

val attach_domain : t -> Domain.t -> unit
(** Adopt a detached domain (legal after {!start}): VCPUs are
    re-homed deterministically onto this host's PCPUs, Ready ones
    enter their new home queues, the domain's credit joins the
    conservation ledger, and its accounting window starts at its
    current online total. *)

(** {2 Accounting} *)

val reset_accounting : t -> unit
(** Restart the measurement window for {!online_rate} and
    {!idle_fraction}. *)

val online_rate : t -> Domain.t -> float
(** Measured per-VCPU online rate of the domain over the current
    accounting window (counts open online spans). *)

val domain_online_cycles : t -> Domain.t -> int
(** Cumulative online cycles across the domain's VCPUs since creation,
    including open online spans — the guest-consumed CPU time the
    Monitoring Module meters its VCRD windows in. *)

val idle_fraction : t -> float
(** Fraction of PCPU time spent idle over the accounting window. *)

val attained_cycles : t -> Domain.t -> int
(** Online cycles the domain attained over the current accounting
    window (counts open spans). *)

val entitled_cycles : t -> Domain.t -> int
(** The domain's proportional-share entitlement over the window:
    Eq.(2)'s expected per-VCPU online rate times elapsed time and
    VCPU count. *)

val theft_cycles : t -> Domain.t -> int
(** [max 0 (attained - entitled)] — cycles extracted beyond the fair
    share, the quantity a scheduler attack maximises. Also exported
    per VM as the [vmm/{attained,entitled,theft}_cycles] gauges. *)

val ctx_switches : t -> int

val ple_exits : t -> int
(** Total pause-loop exits delivered. *)

val check_invariants : t -> (unit, string) result
(** Verify the Running/Ready/Blocked structural invariants (plus
    nothing-runs-on-an-offline-PCPU); used by tests and property
    checks, and by the periodic runtime checker. *)

(** {2 Resilience} *)

val set_invariant_mode : t -> invariant_mode -> unit
(** When not [Off], every accounting period (after credit assignment)
    the VMM audits: the structural invariants, per-VCPU credit bounds
    (floor to cap), credit conservation (the system-wide credit sum
    may grow by at most one period's issue plus rounding slack between
    periods), and each run queue's internal consistency. *)

val invariant_mode : t -> invariant_mode

val invariant_violation_count : t -> int

val domain_violation_count : t -> Domain.t -> int
(** Violations attributed to one domain (credit-bound checks); the
    aggregate count also includes unattributed structural ones. *)

val invariant_violations : t -> string list
(** Recorded violation messages, oldest first (bounded to the first
    1000; the count keeps going). *)

val set_vcrd_filter : t -> (Domain.t -> Domain.vcrd -> Domain.vcrd option) -> unit
(** Fault-injection hook on the VCRD hypercall channel: the filter
    sees each report before it lands and may rewrite it (corruption)
    or return [None] (report lost in transit). *)

val sched_counters : t -> (string * int) list
(** The active scheduler's health counters (the gang watchdog's
    launches/timeouts/demotions); [[]] for schedulers without any. *)

val watchdog_params : t -> Watchdog.params option
