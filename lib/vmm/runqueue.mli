(** Per-PCPU run queue of [Ready] VCPUs.

    Selection order follows the paper's Adaptive Scheduler: boosted
    VCPUs (raised by a coscheduling IPI) come first, then decreasing
    unused credit, ties broken FIFO. The queue is a singly-linked
    FIFO with a tail pointer: {!insert} and {!length} are O(1) (the
    wake/preempt hot path); the priority scans and {!remove} stay
    O(n) over queues bounded by the total VCPU count. *)

type t

val create : pcpu:int -> t

val pcpu : t -> int

val length : t -> int

val is_empty : t -> bool

val insert : t -> Vcpu.t -> unit
(** Appends and records the VCPU's [home]. The VCPU must be [Ready]
    and not already queued anywhere (checked for this queue). *)

val remove : t -> Vcpu.t -> unit
(** Raises [Invalid_argument] if the VCPU is not in this queue. *)

val mem : t -> Vcpu.t -> bool

val to_list : t -> Vcpu.t list
(** Queue order (FIFO). *)

val head : t -> Vcpu.t option
(** The VCPU Algorithm 4 calls [VC(P_k)]: maximal by
    [(boosted, credit)] among {!Vcpu.eligible} VCPUs, FIFO on ties.
    Parked VCPUs are skipped unless boosted; whether an out-of-credit
    {e unparked} head may run is the scheduler's policy decision. *)

val head_under : t -> Vcpu.t option
(** Like {!head} but restricted to VCPUs with positive credit
    (Xen's UNDER priority). *)

val best_by_credit : t -> f:(Vcpu.t -> bool) -> Vcpu.t option
(** Maximal-credit VCPU satisfying [f]. *)

val has_domain : t -> domain_id:int -> bool
(** Is any VCPU of the given domain queued here? *)

val find_domain : t -> domain_id:int -> Vcpu.t list

val check : t -> (unit, string) result
(** Audit internal consistency: the node count matches {!length}, the
    tail pointer is the last node, and every queued VCPU is [Ready]
    with this queue as its home. Used by the runtime invariant
    checker. *)
