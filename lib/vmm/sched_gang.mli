(** Coscheduling schedulers: ASMan (adaptive, Algorithms 3–4) and the
    static CON baseline of the paper's previous work [12].

    Both extend the Credit scheduler with gang dispatch: when the
    policy says a domain must be coscheduled, the PCPU that schedules
    one of its VCPUs sends IPIs to the PCPUs holding the sibling
    VCPUs; the IPI handler temporarily boosts the sibling's priority
    and preempts the victim so the whole VM is online within the slot.
    Run-queue relocation (Algorithm 3, lines 8–15) keeps the siblings
    on distinct PCPUs. Proportional-share fairness is untouched: gang
    members still burn credit, so a coscheduled VM simply spends its
    share in aligned bursts.

    - {b ASMan}: coschedule while the domain's VCRD is [High] (set by
      the guest Monitoring Module through the [do_vcrd_op] hypercall).
    - {b CON}: coschedule domains statically marked
      [concurrent_type], regardless of their dynamic behaviour. *)

val make_asman : Sched_intf.maker
val make_static : Sched_intf.maker

val make_oov : Sched_intf.maker
(** {b ASMan-OOV}: out-of-VM VCRD detection — the paper's §7 future
    work. Instead of a Monitoring Module inside the guest kernel, the
    VMM consumes the hardware pause-loop-exit signal (a VCPU spent a
    full PLE window busy-spinning) and treats each exit as an
    adjusting event for its own per-domain Roth-Erev estimator. The
    guest needs no modification at all. *)

val make :
  ?oov:bool ->
  ?ipi:bool ->
  ?solidarity:bool ->
  ?continuity:bool ->
  ?llc_aware:bool ->
  name:string ->
  should_cosched:(Domain.t -> bool) ->
  Sched_intf.maker
(** Generic constructor (exposed for ablation benchmarks). [oov]
    enables the VMM-side PLE-driven VCRD management; [ipi],
    [solidarity] and [continuity] (all on by default) toggle the three
    gang-dispatch mechanisms so their contributions can be measured
    separately; [llc_aware] (off by default) makes Algorithm 3's
    relocation prefer PCPUs sharing a socket/LLC with the gang,
    keeping coscheduling IPIs on-socket (§7's architecture-aware
    future work). *)
