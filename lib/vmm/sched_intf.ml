(* NUMA-ish host model for big (64-256 PCPU) topologies: schedulers
   prefer same-socket steals, and a VCPU relocated across sockets pays
   a one-off cold-cache penalty (charged as extra consumed cycles at
   its next accounting). [None] — the default — keeps every scheduler
   byte-identical to the flat-host behaviour. *)
type numa = {
  topo : Sim_hw.Topology.t;
  reloc_penalty_cycles : int;
}

type api = {
  machine : Sim_hw.Machine.t;
  runqueues : Runqueue.t array;
  domains : unit -> Domain.t list;
  work_conserving : bool;
  credit_unit : int;
  now : unit -> int;
  current : int -> Vcpu.t option;
  run_on : pcpu:int -> Vcpu.t -> unit;
  make_idle : pcpu:int -> unit;
  migrate : Vcpu.t -> dst:int -> unit;
  domain_online : Domain.t -> int;
  pcpu_online : int -> bool;
  watchdog : Watchdog.params option;
  metrics : Sim_obs.Metrics.t;
  numa : numa option;
}

type t = {
  name : string;
  on_slot : pcpu:int -> unit;
  on_period : unit -> unit;
  on_wake : Vcpu.t -> unit;
  on_block : Vcpu.t -> unit;
  on_vcrd_change : Domain.t -> unit;
  on_ple : Vcpu.t -> unit;
  migratable : Domain.t -> bool;
  counters : unit -> (string * int) list;
}

type maker = api -> t
