(* Seeded scheduler mutations: deliberately planted bugs used to
   validate that the SimCheck oracles actually detect real scheduler
   defects (and that the shrinker converges on them). Exactly one
   mutation can be active per process; the hooks below compile to a
   single global read on the hot paths, and all call sites behave
   identically when no mutation is armed. *)

type t =
  | Skip_credit_burn
      (** [Vmm.charge] accounts online time but burns no credit *)
  | Drop_gang_sibling
      (** [Sched_gang.launch_cosched] skips the first ready sibling's
          launch IPI on every gang launch *)
  | Double_insert_reloc
      (** [Vmm.migrate] forgets to remove the VCPU from its old
          runqueue, leaving it queued twice *)
  | Sampled_accounting
      (** precise-mode [Vmm.charge] burns only in the periodic-tick
          path, silently re-introducing Xen's sampled accounting: a
          guest that blocks just before each tick is never debited *)
  | Double_place
      (** the cluster placement engine admits an arriving VM to a
          second feasible host's bookkeeping as well — the VM is
          resident on two hosts in the controller's view *)

let all =
  [ Skip_credit_burn; Drop_gang_sibling; Double_insert_reloc;
    Sampled_accounting; Double_place ]

let to_name = function
  | Skip_credit_burn -> "skip-credit-burn"
  | Drop_gang_sibling -> "drop-gang-sibling"
  | Double_insert_reloc -> "double-insert-reloc"
  | Sampled_accounting -> "sampled-accounting"
  | Double_place -> "double-place"

let of_name s =
  match String.lowercase_ascii s with
  | "skip-credit-burn" -> Some Skip_credit_burn
  | "drop-gang-sibling" -> Some Drop_gang_sibling
  | "double-insert-reloc" -> Some Double_insert_reloc
  | "sampled-accounting" -> Some Sampled_accounting
  | "double-place" -> Some Double_place
  | _ -> None

let active : t option ref = ref None

let set m = active := m
let get () = !active
let enabled m = !active = Some m
