open Sched_intf

let make (api : api) : t =
  let pick ~pcpu =
    Sched_common.pick_baseline api ~pcpu ~allowed:Sched_common.allow_any
  in
  let decide ~pcpu =
    match pick ~pcpu with
    | Some v -> api.run_on ~pcpu v
    | None -> ()
  in
  let on_slot ~pcpu =
    Sched_common.requeue_current api ~pcpu;
    decide ~pcpu
  in
  let on_period () =
    Sched_common.assign_credit api;
    Sched_common.preempt_parked api ~refill:(fun ~pcpu -> decide ~pcpu)
  in
  let on_wake (v : Vcpu.t) =
    (* Queue at home, then grab an idle PCPU if one exists (prefer
       home) so wakeups are not delayed by a whole slot. *)
    let home = v.Vcpu.home in
    Runqueue.insert api.runqueues.(home) v;
    (* Xen fast-tracks only UNDER wakeups (BOOST); an OVER VCPU waits
       for its queue turn. *)
    if Vcpu.eligible v && v.Vcpu.credit >= 0 then begin
      let idle p =
        api.pcpu_online p
        && match api.current p with None -> true | Some _ -> false
      in
      let n = Array.length api.runqueues in
      let target =
        if idle home then Some home
        else begin
          let rec scan p = if p >= n then None else if idle p then Some p else scan (p + 1) in
          scan 0
        end
      in
      match target with Some p -> api.run_on ~pcpu:p v | None -> ()
    end
  in
  let on_block (v : Vcpu.t) =
    (* The core already removed the blocked VCPU; fill the hole. *)
    decide ~pcpu:v.Vcpu.home
  in
  let on_vcrd_change _dom = () in
  let on_ple _v = () in
  { name = "credit"; on_slot; on_period; on_wake; on_block; on_vcrd_change;
    on_ple; migratable = (fun _ -> true); counters = (fun () -> []) }
