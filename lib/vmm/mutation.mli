(** Seeded scheduler mutations for oracle validation.

    A mutation is a deliberately planted scheduler bug. SimCheck's
    acceptance test arms one, fuzzes until an oracle fails, and checks
    the shrinker converges to a small deterministic repro — evidence
    that the oracles detect real defects rather than vacuously
    passing. Mutations are process-global (set once before building
    scenarios) and default to off, in which case every hook site
    behaves exactly as unmutated code. *)

type t =
  | Skip_credit_burn
      (** {!Vmm.charge} accounts online time but burns no credit, so
          caps/parking never engage — breaks proportional fairness *)
  | Drop_gang_sibling
      (** {!Sched_gang} gang launches skip the first ready sibling's
          IPI — breaks coschedule atomicity *)
  | Double_insert_reloc
      (** {!Vmm.migrate} forgets to remove the VCPU from its source
          runqueue — a VCPU queued on two PCPUs at once *)
  | Sampled_accounting
      (** precise-mode {!Vmm.charge} burns only when called from the
          periodic credit tick, never at span end — Xen's sampled
          accounting smuggled back in, so a tick-dodging guest escapes
          all debiting. Caught by the SimCheck entitlement oracle. *)
  | Double_place
      (** the cluster placement engine admits an arriving VM to a
          second feasible host's bookkeeping as well, corrupting the
          controller's capacity accounting. Caught by the SimCheck
          cluster-conservation oracle. *)

val all : t list
val to_name : t -> string
val of_name : string -> t option

val set : t option -> unit
(** Arm a mutation (or disarm with [None]). Affects scenarios built
    afterwards in this process. Not domain-safe: arm only in
    single-threaded harness code (the CLI, directed tests). *)

val get : unit -> t option

val enabled : t -> bool
(** One global read; the hot-path cost when disarmed. *)
