(** Baseline: Xen's Credit scheduler (no coscheduling).

    Proportional-share with automatic workload balancing of VCPUs
    across PCPUs — before a PCPU goes idle it steals a runnable VCPU
    from another run queue. VCRD changes are ignored: this is the
    scheduler the paper's "Credit" curves measure. *)

val make : Sched_intf.maker
