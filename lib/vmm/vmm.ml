open Sim_engine
open Sim_hw
module Trace = Sim_obs.Trace
module Metrics = Sim_obs.Metrics

type invariant_mode = Off | Record | Raise

type accounting = Precise | Sampled

let accounting_name = function Precise -> "precise" | Sampled -> "sampled"

let accounting_of_name s =
  match String.lowercase_ascii s with
  | "precise" | "exact" -> Some Precise
  | "sampled" | "sample" | "xen" -> Some Sampled
  | _ -> None

exception Invariant_violation of string

(* Keep at most this many violation messages; the count keeps going. *)
let max_recorded_violations = 1000

type t = {
  engine : Engine.t;
  machine : Machine.t;
  cpu_model : Cpu_model.t;
  runqueues : Runqueue.t array;
  current : Vcpu.t option array;
  mutable domains_rev : Domain.t list;
  mutable sched : Sched_intf.t option;
  work_conserving : bool;
  credit_unit : int;
  accounting : accounting;
  numa : Sched_intf.numa option;
  mutable numa_remote_relocs : int;
  mutable next_vcpu_id : int;
  mutable next_domain_id : int;
  slot_counts : int array;  (** per-PCPU slot boundaries seen *)
  (* accounting *)
  idle_since : int array;  (** -1 when busy *)
  idle_cycles : int array;
  mutable ctx_switches : int;
  mutable ple_count : int;
  mutable acct_start : int;
  acct_online_base : (int, int) Hashtbl.t;  (** domain id -> online at reset *)
  mutable started : bool;
  (* resilience *)
  watchdog : Watchdog.params option;
  mutable vcrd_filter : (Domain.t -> Domain.vcrd -> Domain.vcrd option) option;
  mutable invariant_mode : invariant_mode;
  mutable violations_rev : string list;  (** bounded; newest first *)
  mutable violations_count : int;
  mutable last_credit_sum : int option;  (** at the previous period check *)
  (* observability *)
  metrics : Metrics.t;
  viol_by_domain : (int, Metrics.counter) Hashtbl.t;
}

let engine t = t.engine
let machine t = t.machine
let cpu_model t = t.cpu_model
let pcpu_count t = Machine.pcpu_count t.machine

let sched_name t =
  match t.sched with Some s -> s.Sched_intf.name | None -> "(none)"

let accounting t = t.accounting

let domains t = List.rev t.domains_rev

let find_domain t id =
  match List.find_opt (fun d -> d.Domain.id = id) t.domains_rev with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Vmm.find_domain: no domain %d" id)

let now t = Engine.now t.engine

let metrics t = t.metrics

let slot_cycles t = Cpu_model.slot_cycles t.cpu_model

(* Charge the VCPU for the span it has been online and accumulate its
   online time. Called exactly once per online span, when it ends.
   Like Xen, debt is floored at one accounting period's worth of burn
   so a VCPU that overdraws cannot be starved for many periods.

   [at_tick] marks the periodic credit-tick call site
   ([charge_current] from the slot handler), the only place [Sampled]
   accounting debits: whoever occupies the PCPU at the tick pays one
   full tick quantum, however briefly it actually ran — Xen's
   discipline, and exactly the surface the tick-dodging attack
   exploits. [Precise] burns span-exact cycles everywhere and is the
   defense. *)
let charge ?(at_tick = false) t (v : Vcpu.t) =
  let ran = now t - v.Vcpu.last_dispatch in
  (* A pending cross-socket relocation penalty is consumed time the
     flat-host model never sees: it inflates the burned span (still
     capped at one slot) but not wall-clock online time. Zero unless
     the NUMA model is armed. *)
  let penalty = v.Vcpu.reloc_penalty in
  if penalty > 0 then v.Vcpu.reloc_penalty <- 0;
  let ran_capped = min (ran + penalty) (slot_cycles t) in
  let floor =
    -(t.credit_unit * t.cpu_model.Cpu_model.slots_per_period)
  in
  let burned =
    if Mutation.enabled Mutation.Skip_credit_burn then 0
    else begin
      match t.accounting with
      | Precise ->
        if Mutation.enabled Mutation.Sampled_accounting && not at_tick then 0
        else
          Credit.burn ~credit_unit:t.credit_unit ~slot_cycles:(slot_cycles t)
            ~run_cycles:ran_capped
      | Sampled ->
        if at_tick then
          Credit.burn ~credit_unit:t.credit_unit ~slot_cycles:(slot_cycles t)
            ~run_cycles:(slot_cycles t)
        else 0
    end
  in
  v.Vcpu.credit <- max floor (v.Vcpu.credit - burned);
  v.Vcpu.online_cycles <- v.Vcpu.online_cycles + ran;
  let tr = Engine.trace t.engine in
  if Trace.on tr Trace.Credit then
    Trace.emit tr ~now:(now t)
      (Trace.Credit_account
         { vcpu = v.Vcpu.id; domain = v.Vcpu.domain_id;
           credit = v.Vcpu.credit; burned })

let begin_idle t pcpu = t.idle_since.(pcpu) <- now t

let end_idle t pcpu =
  if t.idle_since.(pcpu) >= 0 then begin
    t.idle_cycles.(pcpu) <- t.idle_cycles.(pcpu) + (now t - t.idle_since.(pcpu));
    t.idle_since.(pcpu) <- -1
  end

(* Take the occupant off [pcpu], charge it, requeue it and notify the
   guest. The PCPU is left idle (accounting started). *)
let preempt_current t pcpu =
  match t.current.(pcpu) with
  | None -> ()
  | Some cur ->
    charge t cur;
    cur.Vcpu.state <- Vcpu.Ready;
    cur.Vcpu.boosted <- false;
    t.current.(pcpu) <- None;
    begin_idle t pcpu;
    Runqueue.insert t.runqueues.(pcpu) cur;
    let tr = Engine.trace t.engine in
    if Trace.on tr Trace.Sched then
      Trace.emit tr ~now:(now t) (Trace.Sched_idle { pcpu });
    cur.Vcpu.hooks.Vcpu.on_preempted ()

let run_on t ~pcpu (v : Vcpu.t) =
  match t.current.(pcpu) with
  | Some cur when cur == v -> ()
  | _ ->
    if not (Vcpu.is_ready v) then
      invalid_arg "Vmm.run_on: vcpu is not Ready";
    if not (Machine.pcpu_online t.machine pcpu) then
      invalid_arg "Vmm.run_on: pcpu is offline";
    preempt_current t pcpu;
    (* The preemption above may have re-entered the scheduler via
       guest hooks only in block paths, which cannot happen here; the
       VCPU is still Ready in some queue. *)
    Runqueue.remove t.runqueues.(v.Vcpu.home) v;
    if v.Vcpu.home <> pcpu then begin
      v.Vcpu.migrations <- v.Vcpu.migrations + 1;
      (* Pulling work from another runqueue is a zero-latency remote
         state access; the sharding ledger counts it as a coupling
         when the two PCPUs live on different shards. *)
      Engine.note_remote_touch t.engine ~src_pcpu:v.Vcpu.home ~dst_pcpu:pcpu;
      match t.numa with
      | Some { Sched_intf.topo; reloc_penalty_cycles }
        when not (Topology.same_socket topo v.Vcpu.home pcpu) ->
        v.Vcpu.reloc_penalty <- v.Vcpu.reloc_penalty + reloc_penalty_cycles;
        t.numa_remote_relocs <- t.numa_remote_relocs + 1
      | Some _ | None -> ()
    end;
    end_idle t pcpu;
    v.Vcpu.home <- pcpu;
    v.Vcpu.state <- Vcpu.Running pcpu;
    v.Vcpu.last_dispatch <- now t;
    v.Vcpu.dispatches <- v.Vcpu.dispatches + 1;
    t.current.(pcpu) <- Some v;
    t.ctx_switches <- t.ctx_switches + 1;
    let tr = Engine.trace t.engine in
    if Trace.on tr Trace.Sched then
      Trace.emit tr ~now:(now t)
        (Trace.Sched_switch
           { pcpu; vcpu = v.Vcpu.id; domain = v.Vcpu.domain_id });
    v.Vcpu.hooks.Vcpu.on_scheduled ()

let make_idle t ~pcpu = preempt_current t pcpu

let migrate t (v : Vcpu.t) ~dst =
  if not (Vcpu.is_ready v) then invalid_arg "Vmm.migrate: vcpu is not Ready";
  if v.Vcpu.home <> dst then begin
    if not (Mutation.enabled Mutation.Double_insert_reloc) then
      Runqueue.remove t.runqueues.(v.Vcpu.home) v;
    v.Vcpu.migrations <- v.Vcpu.migrations + 1;
    Engine.note_remote_touch t.engine ~src_pcpu:v.Vcpu.home ~dst_pcpu:dst;
    (match t.numa with
    | Some { Sched_intf.topo; reloc_penalty_cycles }
      when not (Topology.same_socket topo v.Vcpu.home dst) ->
      v.Vcpu.reloc_penalty <- v.Vcpu.reloc_penalty + reloc_penalty_cycles;
      t.numa_remote_relocs <- t.numa_remote_relocs + 1
    | Some _ | None -> ());
    Runqueue.insert t.runqueues.(dst) v
  end

let domain_online_cycles t dom =
  let base = Domain.online_cycles dom in
  Array.fold_left
    (fun acc (v : Vcpu.t) ->
      match v.Vcpu.state with
      | Vcpu.Running _ -> acc + (now t - v.Vcpu.last_dispatch)
      | Vcpu.Ready | Vcpu.Blocked -> acc)
    base dom.Domain.vcpus

let domain_online_now = domain_online_cycles

(* ----- attained vs entitled (theft accounting) ----- *)

(* Online cycles attained by the domain over the current measurement
   window (counts open spans). *)
let attained_cycles t dom =
  let base =
    match Hashtbl.find_opt t.acct_online_base dom.Domain.id with
    | Some b -> b
    | None -> 0
  in
  domain_online_now t dom - base

(* The domain's proportional-share entitlement over the same window:
   Eq.(2)'s per-VCPU expected online rate times elapsed wall time and
   VCPU count. *)
let entitled_cycles t dom =
  let elapsed = now t - t.acct_start in
  if elapsed <= 0 then 0
  else begin
    let e =
      Domain.expected_online_rate dom ~all:(domains t) ~pcpus:(pcpu_count t)
    in
    int_of_float
      (e *. float_of_int elapsed *. float_of_int (Domain.vcpu_count dom))
  end

(* Cycles attained beyond entitlement — the theft a scheduler-attack
   guest extracts. Zero for any domain at or below its share. *)
let theft_cycles t dom = max 0 (attained_cycles t dom - entitled_cycles t dom)

(* Register the standing gauges: closures over counters the
   subsystems already keep, evaluated only at snapshot time so the
   hot paths are untouched. One registry per Vmm (never global) keeps
   parallel Pool jobs deterministic at any worker count. *)
let register_gauges t =
  let m = t.metrics in
  Metrics.gauge m ~subsystem:"engine" ~name:"events_fired" (fun () ->
      Engine.events_fired t.engine);
  Metrics.gauge m ~subsystem:"engine" ~name:"pending_events" (fun () ->
      Engine.pending_count t.engine);
  Metrics.gauge m ~subsystem:"hw" ~name:"ipis_sent" (fun () ->
      Machine.ipis_sent t.machine);
  Metrics.gauge m ~subsystem:"hw" ~name:"ipis_cross_socket" (fun () ->
      Machine.ipis_cross_socket t.machine);
  Metrics.gauge m ~subsystem:"hw" ~name:"ipis_dropped" (fun () ->
      Machine.ipis_dropped t.machine);
  Metrics.gauge m ~subsystem:"hw" ~name:"ipis_delayed" (fun () ->
      Machine.ipis_delayed t.machine);
  Metrics.gauge m ~subsystem:"hw" ~name:"ticks_suppressed" (fun () ->
      Machine.ticks_suppressed t.machine);
  Metrics.gauge m ~subsystem:"vmm" ~name:"ctx_switches" (fun () ->
      t.ctx_switches);
  Metrics.gauge m ~subsystem:"vmm" ~name:"ple_exits" (fun () -> t.ple_count);
  Metrics.gauge m ~subsystem:"vmm" ~name:"numa_remote_relocs" (fun () ->
      t.numa_remote_relocs);
  Metrics.gauge m ~subsystem:"vmm" ~name:"invariant_violations" (fun () ->
      t.violations_count);
  Array.iteri
    (fun p rq ->
      Metrics.gauge m ~subsystem:"vmm"
        ~name:(Printf.sprintf "runqueue_depth_p%d" p)
        (fun () -> Runqueue.length rq))
    t.runqueues

let api t : Sched_intf.api =
  {
    Sched_intf.machine = t.machine;
    runqueues = t.runqueues;
    domains = (fun () -> domains t);
    work_conserving = t.work_conserving;
    credit_unit = t.credit_unit;
    now = (fun () -> now t);
    current = (fun pcpu -> t.current.(pcpu));
    run_on = (fun ~pcpu v -> run_on t ~pcpu v);
    make_idle = (fun ~pcpu -> make_idle t ~pcpu);
    migrate = (fun v ~dst -> migrate t v ~dst);
    domain_online = (fun dom -> domain_online_cycles t dom);
    pcpu_online = (fun pcpu -> Machine.pcpu_online t.machine pcpu);
    watchdog = t.watchdog;
    metrics = t.metrics;
    numa = t.numa;
  }

let create ?(work_conserving = true) ?(credit_unit = Credit.default_credit_unit)
    ?(accounting = Precise) ?watchdog ?numa ?(domain_id_base = 0)
    ?(vcpu_id_base = 0) machine ~sched =
  let n = Machine.pcpu_count machine in
  let t =
    {
      engine = Machine.engine machine;
      machine;
      cpu_model = Machine.cpu_model machine;
      runqueues = Array.init n (fun pcpu -> Runqueue.create ~pcpu);
      current = Array.make n None;
      domains_rev = [];
      sched = None;
      work_conserving;
      credit_unit;
      accounting;
      numa;
      numa_remote_relocs = 0;
      next_vcpu_id = vcpu_id_base;
      next_domain_id = domain_id_base;
      slot_counts = Array.make n 0;
      idle_since = Array.make n 0;
      idle_cycles = Array.make n 0;
      ctx_switches = 0;
      ple_count = 0;
      acct_start = 0;
      acct_online_base = Hashtbl.create 8;
      started = false;
      watchdog;
      vcrd_filter = None;
      invariant_mode = Off;
      violations_rev = [];
      violations_count = 0;
      last_credit_sum = None;
      metrics = Metrics.create ();
      viol_by_domain = Hashtbl.create 8;
    }
  in
  register_gauges t;
  t.sched <- Some (sched (api t));
  t

let sched t =
  match t.sched with Some s -> s | None -> failwith "Vmm: no scheduler"

let create_domain t ?(concurrent_type = false) ~name ~weight ~vcpus () =
  if t.started then failwith "Vmm.create_domain: VMM already started";
  if vcpus <= 0 then invalid_arg "Vmm.create_domain: vcpus must be positive";
  let domain_id = t.next_domain_id in
  t.next_domain_id <- t.next_domain_id + 1;
  let n = pcpu_count t in
  let vcpu_array =
    Array.init vcpus (fun index ->
        let id = t.next_vcpu_id in
        t.next_vcpu_id <- t.next_vcpu_id + 1;
        (* Spread homes so sibling VCPUs start on distinct PCPUs (when
           the domain has at most as many VCPUs as the machine), and
           stagger domains so they do not all pile onto PCPU 0. *)
        Vcpu.make ~id ~domain_id ~index ~home:((domain_id + index) mod n))
  in
  let dom =
    Domain.make ~concurrent_type ~id:domain_id ~name ~weight ~vcpus:vcpu_array ()
  in
  t.domains_rev <- dom :: t.domains_rev;
  (* Fairness gauges: attained vs entitled share over the current
     accounting window, and the excess (theft). Evaluated only at
     snapshot time, like every gauge. *)
  Metrics.gauge t.metrics ~subsystem:"vmm" ~vm:name ~name:"attained_cycles"
    (fun () -> attained_cycles t dom);
  Metrics.gauge t.metrics ~subsystem:"vmm" ~vm:name ~name:"entitled_cycles"
    (fun () -> entitled_cycles t dom);
  Metrics.gauge t.metrics ~subsystem:"vmm" ~vm:name ~name:"theft_cycles"
    (fun () -> theft_cycles t dom);
  dom

(* Least-loaded online PCPU (ties broken towards the lowest index, so
   evacuation targets are deterministic). [excluding] lets the hotplug
   path skip the PCPU being taken down before its flag flips. *)
let least_loaded_online t ?(excluding = -1) () =
  let n = pcpu_count t in
  let best = ref (-1) in
  for p = 0 to n - 1 do
    if p <> excluding && Machine.pcpu_online t.machine p then
      if
        !best = -1
        || Runqueue.length t.runqueues.(p) < Runqueue.length t.runqueues.(!best)
      then best := p
  done;
  if !best = -1 then failwith "Vmm: no online pcpu" else !best

(* PCPU-offline fault: kick the occupant off and re-home every VCPU
   stranded on the dead PCPU's queue, so no Ready VCPU waits on a
   queue that will never be polled again. *)
let evacuate_pcpu t pcpu =
  preempt_current t pcpu;
  List.iter
    (fun (v : Vcpu.t) ->
      migrate t v ~dst:(least_loaded_online t ~excluding:pcpu ()))
    (Runqueue.to_list t.runqueues.(pcpu))

(* Burn credit for the running VCPU without descheduling it: Xen's
   10 ms credit tick, as opposed to the 30 ms slice decision. *)
let charge_current t pcpu =
  match t.current.(pcpu) with
  | None -> ()
  | Some v ->
    charge ~at_tick:true t v;
    v.Vcpu.last_dispatch <- now t

let check_invariants t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Running VCPUs match the current array; offline PCPUs run nothing. *)
  Array.iteri
    (fun pcpu cur ->
      match cur with
      | Some (v : Vcpu.t) ->
        if v.Vcpu.state <> Vcpu.Running pcpu then
          err "pcpu %d holds vcpu %d whose state disagrees" pcpu v.Vcpu.id;
        if not (Machine.pcpu_online t.machine pcpu) then
          err "offline pcpu %d is running vcpu %d" pcpu v.Vcpu.id
      | None -> ())
    t.current;
  List.iter
    (fun dom ->
      Array.iter
        (fun (v : Vcpu.t) ->
          let queued =
            Array.fold_left
              (fun acc rq -> acc + if Runqueue.mem rq v then 1 else 0)
              0 t.runqueues
          in
          match v.Vcpu.state with
          | Vcpu.Ready ->
            if queued <> 1 then
              err "ready vcpu %d is in %d queues" v.Vcpu.id queued
            else if not (Runqueue.mem t.runqueues.(v.Vcpu.home) v) then
              err "ready vcpu %d not in its home queue" v.Vcpu.id
          | Vcpu.Running pcpu ->
            if queued <> 0 then err "running vcpu %d is queued" v.Vcpu.id;
            (match t.current.(pcpu) with
            | Some cur when cur == v -> ()
            | Some _ | None -> err "vcpu %d not current on pcpu %d" v.Vcpu.id pcpu)
          | Vcpu.Blocked ->
            if queued <> 0 then err "blocked vcpu %d is queued" v.Vcpu.id)
        dom.Domain.vcpus)
    t.domains_rev;
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " es)

(* ----- runtime invariant checking ----- *)

let set_invariant_mode t mode = t.invariant_mode <- mode

let invariant_mode t = t.invariant_mode

let set_vcrd_filter t f = t.vcrd_filter <- Some f

(* [domain = -1] means the violation has no single owning domain
   (structural, conservation or runqueue checks). *)
let record_violation ?(domain = -1) t msg =
  t.violations_count <- t.violations_count + 1;
  if t.violations_count <= max_recorded_violations then
    t.violations_rev <- msg :: t.violations_rev;
  if domain >= 0 then begin
    let c =
      match Hashtbl.find_opt t.viol_by_domain domain with
      | Some c -> c
      | None ->
        let vm =
          match
            List.find_opt (fun d -> d.Domain.id = domain) t.domains_rev
          with
          | Some d -> d.Domain.name
          | None -> Printf.sprintf "dom%d" domain
        in
        let c =
          Metrics.counter t.metrics ~subsystem:"vmm" ~vm
            ~name:"invariant_violations" ()
        in
        Hashtbl.replace t.viol_by_domain domain c;
        c
    in
    Metrics.incr c
  end;
  let tr = Engine.trace t.engine in
  if Trace.on tr Trace.Invariant then
    Trace.emit tr ~now:(now t) (Trace.Invariant_violation { domain });
  if t.invariant_mode = Raise then raise (Invariant_violation msg)

let domain_violation_count t dom =
  match Hashtbl.find_opt t.viol_by_domain dom.Domain.id with
  | Some c -> Metrics.value c
  | None -> 0

let credit_sum t =
  List.fold_left
    (fun acc dom ->
      Array.fold_left (fun acc (v : Vcpu.t) -> acc + v.Vcpu.credit) acc
        dom.Domain.vcpus)
    0 t.domains_rev

(* Fired every accounting period (after credit assignment) when the
   invariant mode is on. The conservation check is one-sided: credit
   only leaves the system through burning, the floor and the cap, so
   the sum may grow by at most one period's issue (plus one unit of
   rounding slack per domain) between two checks. *)
let run_invariant_checks t =
  let at = now t in
  (match check_invariants t with
  | Ok () -> ()
  | Error e -> record_violation t (Printf.sprintf "[%d] structural: %s" at e));
  let slots_per_period = t.cpu_model.Cpu_model.slots_per_period in
  let floor = -(t.credit_unit * slots_per_period) in
  let cap = Credit.cap ~credit_unit:t.credit_unit ~slots_per_period in
  List.iter
    (fun dom ->
      Array.iter
        (fun (v : Vcpu.t) ->
          if v.Vcpu.credit < floor || v.Vcpu.credit > cap then
            record_violation ~domain:dom.Domain.id t
              (Printf.sprintf "[%d] credit bound: vcpu %d has %d not in [%d, %d]"
                 at v.Vcpu.id v.Vcpu.credit floor cap))
        dom.Domain.vcpus)
    t.domains_rev;
  let sum = credit_sum t in
  (match t.last_credit_sum with
  | Some prev ->
    let total =
      Credit.total_per_period ~pcpus:(pcpu_count t) ~slots_per_period
        ~credit_unit:t.credit_unit
    in
    let slack = List.length t.domains_rev in
    if sum - prev > total + slack then
      record_violation t
        (Printf.sprintf
           "[%d] credit conservation: sum grew by %d > issue %d (+%d slack)" at
           (sum - prev) total slack)
  | None -> ());
  t.last_credit_sum <- Some sum;
  Array.iter
    (fun rq ->
      match Runqueue.check rq with
      | Ok () -> ()
      | Error e -> record_violation t (Printf.sprintf "[%d] runqueue: %s" at e))
    t.runqueues

let start t =
  if t.started then failwith "Vmm.start: already started";
  t.started <- true;
  let slice = t.cpu_model.Cpu_model.slots_per_slice in
  Machine.set_slot_handler t.machine (fun pcpu ->
      charge_current t pcpu;
      let count = t.slot_counts.(pcpu) in
      t.slot_counts.(pcpu) <- count + 1;
      (* A busy PCPU reschedules at slice granularity (Xen's 30 ms
         allocation); an idle one re-polls every slot so runnable work
         is picked up within a tick. *)
      if count mod slice = 0 || t.current.(pcpu) = None then
        (sched t).Sched_intf.on_slot ~pcpu);
  Machine.set_period_handler t.machine (fun () ->
      (sched t).Sched_intf.on_period ();
      if t.invariant_mode <> Off then run_invariant_checks t);
  Machine.set_hotplug_handler t.machine (fun ~pcpu ~online ->
      if not online then evacuate_pcpu t pcpu);
  Machine.start t.machine

let vcpu_wake t (v : Vcpu.t) =
  match v.Vcpu.state with
  | Vcpu.Blocked ->
    (* A fault may have offlined the VCPU's home while it slept. *)
    if not (Machine.pcpu_online t.machine v.Vcpu.home) then
      v.Vcpu.home <- least_loaded_online t ();
    v.Vcpu.state <- Vcpu.Ready;
    (sched t).Sched_intf.on_wake v
  | Vcpu.Ready | Vcpu.Running _ -> ()

let vcpu_block t (v : Vcpu.t) =
  match v.Vcpu.state with
  | Vcpu.Running pcpu ->
    charge t v;
    v.Vcpu.state <- Vcpu.Blocked;
    v.Vcpu.boosted <- false;
    t.current.(pcpu) <- None;
    begin_idle t pcpu;
    let tr = Engine.trace t.engine in
    if Trace.on tr Trace.Sched then
      Trace.emit tr ~now:(now t)
        (Trace.Sched_block
           { pcpu; vcpu = v.Vcpu.id; domain = v.Vcpu.domain_id });
    (sched t).Sched_intf.on_block v
  | Vcpu.Ready | Vcpu.Blocked ->
    invalid_arg "Vmm.vcpu_block: vcpu is not Running"

let do_vcrd_op t dom vcrd =
  (* The filter models a lossy/corrupting guest-to-VMM channel:
     [None] = the report never arrived. *)
  let delivered =
    match t.vcrd_filter with None -> Some vcrd | Some f -> f dom vcrd
  in
  match delivered with
  | None -> ()
  | Some vcrd ->
    if Domain.set_vcrd dom ~now:(now t) vcrd then begin
      let tr = Engine.trace t.engine in
      if Trace.on tr Trace.Vcrd then
        Trace.emit tr ~now:(now t)
          (Trace.Vcrd_change
             { domain = dom.Domain.id; high = dom.Domain.vcrd = Domain.High });
      (sched t).Sched_intf.on_vcrd_change dom
    end

let pause_loop_exit t v =
  t.ple_count <- t.ple_count + 1;
  let tr = Engine.trace t.engine in
  if Trace.on tr Trace.Spin then
    Trace.emit tr ~now:(now t)
      (Trace.Ple_exit { vcpu = v.Vcpu.id; domain = v.Vcpu.domain_id });
  (sched t).Sched_intf.on_ple v

let current_on t pcpu = t.current.(pcpu)

(* ----- decoupled-VMM domain migration ----- *)

let domain_credit_sum (dom : Domain.t) =
  Array.fold_left
    (fun acc (v : Vcpu.t) -> acc + v.Vcpu.credit)
    0 dom.Domain.vcpus

(* Scheduler-state part of the quiescence gate; the structural part
   (no VCPU Running, no pending guest-kernel events) belongs to the
   caller, which also owns the engine events a detached domain must
   not leave behind. *)
let sched_migratable t dom = (sched t).Sched_intf.migratable dom

(* Detach a quiescent domain from this host: its Ready VCPUs leave
   their run queues, its accounting base entry is dropped, and its
   credit leaves the conservation ledger so the next period check on
   this host sees no spurious shrinkage. The domain record itself —
   credit, online cycles, VCRD, per-VCPU counters — travels with the
   caller; that is the state a steal Grant message carries. *)
let detach_domain t (dom : Domain.t) =
  Array.iter
    (fun (v : Vcpu.t) ->
      match v.Vcpu.state with
      | Vcpu.Running _ ->
        invalid_arg
          (Printf.sprintf "Vmm.detach_domain: vcpu %d is running" v.Vcpu.id)
      | Vcpu.Ready -> Runqueue.remove t.runqueues.(v.Vcpu.home) v
      | Vcpu.Blocked -> ())
    dom.Domain.vcpus;
  if not (List.memq dom t.domains_rev) then
    invalid_arg
      (Printf.sprintf "Vmm.detach_domain: domain %d not on this host"
         dom.Domain.id);
  t.domains_rev <- List.filter (fun d -> d != dom) t.domains_rev;
  (match t.last_credit_sum with
  | Some sum -> t.last_credit_sum <- Some (sum - domain_credit_sum dom)
  | None -> ());
  Hashtbl.remove t.acct_online_base dom.Domain.id

(* Attach a migrated-in domain. Unlike [create_domain] this is legal
   after [start]: VCPUs are re-homed deterministically onto this
   host's PCPUs (same spread rule as creation), Ready ones enter
   their new home queues, and the domain's credit joins the
   conservation ledger. The accounting base starts at the domain's
   current online total, so cycles attained on previous hosts do not
   count against this host's window. *)
let attach_domain t (dom : Domain.t) =
  let n = pcpu_count t in
  Array.iter
    (fun (v : Vcpu.t) ->
      (match v.Vcpu.state with
      | Vcpu.Running _ ->
        invalid_arg
          (Printf.sprintf "Vmm.attach_domain: vcpu %d is running" v.Vcpu.id)
      | Vcpu.Ready | Vcpu.Blocked -> ());
      let home = (dom.Domain.id + v.Vcpu.index) mod n in
      v.Vcpu.home <-
        (if Machine.pcpu_online t.machine home then home
         else least_loaded_online t ());
      if Vcpu.is_ready v then Runqueue.insert t.runqueues.(v.Vcpu.home) v)
    dom.Domain.vcpus;
  t.domains_rev <- dom :: t.domains_rev;
  (match t.last_credit_sum with
  | Some sum -> t.last_credit_sum <- Some (sum + domain_credit_sum dom)
  | None -> ());
  Hashtbl.replace t.acct_online_base dom.Domain.id (domain_online_now t dom)

(* ----- accounting ----- *)


let reset_accounting t =
  t.acct_start <- now t;
  Hashtbl.reset t.acct_online_base;
  List.iter
    (fun d -> Hashtbl.replace t.acct_online_base d.Domain.id (domain_online_now t d))
    t.domains_rev;
  Array.iteri
    (fun p since ->
      t.idle_cycles.(p) <- 0;
      if since >= 0 then t.idle_since.(p) <- now t)
    t.idle_since

let online_rate t dom =
  let elapsed = now t - t.acct_start in
  if elapsed <= 0 then 0.
  else
    float_of_int (attained_cycles t dom)
    /. (float_of_int elapsed *. float_of_int (Domain.vcpu_count dom))

let idle_fraction t =
  let elapsed = now t - t.acct_start in
  if elapsed <= 0 then 0.
  else begin
    let total = ref 0 in
    Array.iteri
      (fun p cycles ->
        let open_span =
          if t.idle_since.(p) >= 0 then now t - max t.idle_since.(p) t.acct_start
          else 0
        in
        total := !total + cycles + open_span)
      t.idle_cycles;
    float_of_int !total /. (float_of_int elapsed *. float_of_int (pcpu_count t))
  end

let ctx_switches t = t.ctx_switches

let ple_exits t = t.ple_count

let invariant_violation_count t = t.violations_count

let invariant_violations t = List.rev t.violations_rev

let sched_counters t = (sched t).Sched_intf.counters ()

let watchdog_params t = t.watchdog
