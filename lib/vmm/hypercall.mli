(** The guest-to-VMM hypercall surface.

    The paper adds a single hypercall, [do_vcrd_op], through which the
    guest Monitoring Module reports VCRD changes. This module wraps it
    with per-domain call statistics, mirroring how the prototype
    instruments the Xen hypercall path. *)

type stats = { mutable to_high : int; mutable to_low : int }

type t

val create : Vmm.t -> t

val vmm : t -> Vmm.t

val retarget : t -> vmm:Vmm.t -> unit
(** Re-point the channel at the domain's new host after a
    decoupled-VMM migration; per-domain tallies travel with it. *)

val do_vcrd_op : t -> Domain.t -> Domain.vcrd -> unit
(** Forwards to {!Vmm.do_vcrd_op} and counts the call. *)

val stats_for : t -> Domain.t -> stats
(** Cumulative hypercall counts for a domain (zeros if never called). *)

val total_calls : t -> int
