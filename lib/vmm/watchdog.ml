type params = {
  ack_timeout : int;
  max_retries : int;
  backoff_base : int;
  fail_threshold : int;
  probation : int;
}

let default cpu =
  let slot = Sim_hw.Cpu_model.slot_cycles cpu in
  let ipi = cpu.Sim_hw.Cpu_model.ipi_latency_cycles in
  {
    (* Generous vs the ~2x worst-case cross-socket latency, tiny vs a
       slot: an ack window the fault-free simulator never misses. *)
    ack_timeout = max (32 * ipi) (slot / 64);
    max_retries = 3;
    backoff_base = max (16 * ipi) (slot / 128);
    fail_threshold = 3;
    probation = 10 * slot;
  }

type dom_state = {
  mutable expected : int;  (** IPIs sent by the tracked launch *)
  mutable acks : int;
  mutable gen : int;  (** launch generation; stale acks are ignored *)
  mutable retries_left : int;
  mutable backoff : int;
  mutable check_pending : bool;  (** a launch is being tracked *)
  mutable strikes : int;  (** timed-out checks since the last demotion *)
  mutable demoted_until : int;  (** absolute cycle; -1 = never demoted *)
}

type t = {
  params : params;
  states : (int, dom_state) Hashtbl.t;  (** domain id -> state *)
  mutable launches : int;
  mutable acks_total : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable demotions : int;
}

let create params =
  {
    params;
    states = Hashtbl.create 8;
    launches = 0;
    acks_total = 0;
    timeouts = 0;
    retries = 0;
    demotions = 0;
  }

let params t = t.params

let dom_state t dom_id =
  match Hashtbl.find_opt t.states dom_id with
  | Some s -> s
  | None ->
    let s =
      {
        expected = 0;
        acks = 0;
        gen = 0;
        retries_left = 0;
        backoff = 0;
        check_pending = false;
        strikes = 0;
        demoted_until = -1;
      }
    in
    Hashtbl.replace t.states dom_id s;
    s

let is_demoted t ~now dom_id =
  match Hashtbl.find_opt t.states dom_id with
  | None -> false
  | Some s -> now < s.demoted_until

let note_launch t = t.launches <- t.launches + 1

let note_ack t = t.acks_total <- t.acks_total + 1

let note_timeout t = t.timeouts <- t.timeouts + 1

let note_retry t = t.retries <- t.retries + 1

let note_demotion t = t.demotions <- t.demotions + 1

let demotions t = t.demotions

let counter_list t =
  [
    ("cosched_launches", t.launches);
    ("ipi_acks", t.acks_total);
    ("watchdog_timeouts", t.timeouts);
    ("watchdog_retries", t.retries);
    ("watchdog_demotions", t.demotions);
  ]
