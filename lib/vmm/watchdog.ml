type params = {
  ack_timeout : int;
  max_retries : int;
  backoff_base : int;
  fail_threshold : int;
  probation : int;
}

let default cpu =
  let slot = Sim_hw.Cpu_model.slot_cycles cpu in
  let ipi = cpu.Sim_hw.Cpu_model.ipi_latency_cycles in
  {
    (* Generous vs the ~2x worst-case cross-socket latency, tiny vs a
       slot: an ack window the fault-free simulator never misses. *)
    ack_timeout = max (32 * ipi) (slot / 64);
    max_retries = 3;
    backoff_base = max (16 * ipi) (slot / 128);
    fail_threshold = 3;
    probation = 10 * slot;
  }

type dom_state = {
  mutable expected : int;  (** IPIs sent by the tracked launch *)
  mutable acks : int;
  mutable gen : int;  (** launch generation; stale acks are ignored *)
  mutable retries_left : int;
  mutable backoff : int;
  mutable check_pending : bool;  (** a launch is being tracked *)
  mutable strikes : int;  (** timed-out checks since the last demotion *)
  mutable demoted_until : int;  (** absolute cycle; -1 = never demoted *)
}

(* The tallies live in the simulation's Obs.Metrics registry under
   subsystem "watchdog" (so one snapshot covers them), not in private
   mutable fields; the accessors below are thin registry reads. *)
type t = {
  params : params;
  metrics : Sim_obs.Metrics.t;
  states : (int, dom_state) Hashtbl.t;  (** domain id -> state *)
  launches : Sim_obs.Metrics.counter;
  acks_total : Sim_obs.Metrics.counter;
  timeouts : Sim_obs.Metrics.counter;
  retries : Sim_obs.Metrics.counter;
  demotions_c : Sim_obs.Metrics.counter;
  per_vm_demotions : (string, Sim_obs.Metrics.counter) Hashtbl.t;
}

let create ~metrics params =
  let c name = Sim_obs.Metrics.counter metrics ~subsystem:"watchdog" ~name () in
  {
    params;
    metrics;
    states = Hashtbl.create 8;
    launches = c "cosched_launches";
    acks_total = c "ipi_acks";
    timeouts = c "watchdog_timeouts";
    retries = c "watchdog_retries";
    demotions_c = c "watchdog_demotions";
    per_vm_demotions = Hashtbl.create 8;
  }

let params t = t.params

let dom_state t dom_id =
  match Hashtbl.find_opt t.states dom_id with
  | Some s -> s
  | None ->
    let s =
      {
        expected = 0;
        acks = 0;
        gen = 0;
        retries_left = 0;
        backoff = 0;
        check_pending = false;
        strikes = 0;
        demoted_until = -1;
      }
    in
    Hashtbl.replace t.states dom_id s;
    s

let is_demoted t ~now dom_id =
  match Hashtbl.find_opt t.states dom_id with
  | None -> false
  | Some s -> now < s.demoted_until

let note_launch t = Sim_obs.Metrics.incr t.launches

let note_ack t = Sim_obs.Metrics.incr t.acks_total

let note_timeout t = Sim_obs.Metrics.incr t.timeouts

let note_retry t = Sim_obs.Metrics.incr t.retries

let note_demotion t ~vm =
  Sim_obs.Metrics.incr t.demotions_c;
  let per_vm =
    match Hashtbl.find_opt t.per_vm_demotions vm with
    | Some c -> c
    | None ->
      let c =
        Sim_obs.Metrics.counter t.metrics ~subsystem:"watchdog" ~vm
          ~name:"demotions" ()
      in
      Hashtbl.replace t.per_vm_demotions vm c;
      c
  in
  Sim_obs.Metrics.incr per_vm

let demotions t = Sim_obs.Metrics.value t.demotions_c

let demotions_of t ~vm =
  match Hashtbl.find_opt t.per_vm_demotions vm with
  | Some c -> Sim_obs.Metrics.value c
  | None -> 0

let counter_list t =
  [
    ("cosched_launches", Sim_obs.Metrics.value t.launches);
    ("ipi_acks", Sim_obs.Metrics.value t.acks_total);
    ("watchdog_timeouts", Sim_obs.Metrics.value t.timeouts);
    ("watchdog_retries", Sim_obs.Metrics.value t.retries);
    ("watchdog_demotions", Sim_obs.Metrics.value t.demotions_c);
  ]
