type vcrd = Low | High

type t = {
  id : int;
  name : string;
  weight : int;
  vcpus : Vcpu.t array;
  mutable vcrd : vcrd;
  concurrent_type : bool;
  mutable vcrd_transitions : int;
  mutable high_cycles : int;
  mutable high_since : int;
}

let make ?(concurrent_type = false) ~id ~name ~weight ~vcpus () =
  if weight <= 0 then invalid_arg "Domain.make: weight must be positive";
  if Array.length vcpus = 0 then invalid_arg "Domain.make: no vcpus";
  Array.iter
    (fun (v : Vcpu.t) ->
      if v.Vcpu.domain_id <> id then
        invalid_arg "Domain.make: vcpu belongs to another domain")
    vcpus;
  {
    id;
    name;
    weight;
    vcpus;
    vcrd = Low;
    concurrent_type;
    vcrd_transitions = 0;
    high_cycles = 0;
    high_since = 0;
  }

let vcpu_count t = Array.length t.vcpus

let set_vcrd t ~now v =
  if t.vcrd = v then false
  else begin
    (match (t.vcrd, v) with
    | Low, High ->
      t.vcrd_transitions <- t.vcrd_transitions + 1;
      t.high_since <- now
    | High, Low -> t.high_cycles <- t.high_cycles + (now - t.high_since)
    | Low, Low | High, High -> ());
    t.vcrd <- v;
    true
  end

let weight_proportion t ~all =
  let total = List.fold_left (fun acc d -> acc + d.weight) 0 all in
  if total = 0 then 0. else float_of_int t.weight /. float_of_int total

let expected_online_rate t ~all ~pcpus =
  let rate =
    float_of_int pcpus *. weight_proportion t ~all /. float_of_int (vcpu_count t)
  in
  Float.min 1.0 rate

let online_cycles t =
  Array.fold_left (fun acc (v : Vcpu.t) -> acc + v.Vcpu.online_cycles) 0 t.vcpus

let pp fmt t =
  Format.fprintf fmt "dom%d(%s w=%d vcpus=%d vcrd=%s)" t.id t.name t.weight
    (vcpu_count t)
    (match t.vcrd with Low -> "LOW" | High -> "HIGH")
