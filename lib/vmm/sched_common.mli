(** Helpers shared by the Credit, ASMan and static-coscheduling
    schedulers: the work-stealing load balancer and idle-PCPU kicks. *)

val requeue_current : Sched_intf.api -> pcpu:int -> unit
(** Preempt the PCPU's occupant (if any) back into its run queue, so
    the slot decision can consider it like any queued VCPU. *)

val steal :
  Sched_intf.api ->
  dst:int ->
  under_only:bool ->
  allowed:(Vcpu.t -> dst:int -> bool) ->
  Vcpu.t option
(** Find the maximal-credit VCPU queued on {e another} PCPU that
    satisfies [allowed] (and has positive credit when [under_only]),
    migrate it to [dst]'s queue and return it. Boosted VCPUs are never
    stolen — a coscheduling IPI has reserved them for their own PCPU —
    and neither are parked ones. *)

val allow_any : Vcpu.t -> dst:int -> bool

val pick_baseline :
  Sched_intf.api -> pcpu:int -> allowed:(Vcpu.t -> dst:int -> bool) -> Vcpu.t option
(** The Credit scheduler's selection: local UNDER head, else steal a
    remote UNDER VCPU, else local OVER head or any remote eligible
    VCPU. The CPU-time cap is enforced by parking at accounting
    events, so unparked OVER VCPUs may run between events even in the
    non-work-conserving mode (as Xen behaves). *)

val kick_idle : Sched_intf.api -> pick:(pcpu:int -> Vcpu.t option) -> unit
(** Give every idle PCPU a chance to pick up work (used right after a
    credit-assignment event so capped VCPUs restart promptly). *)

val assign_credit : Sched_intf.api -> unit
(** Run the Algorithm 3 credit assignment (and parking update) for
    all domains. *)

val preempt_parked : Sched_intf.api -> refill:(pcpu:int -> unit) -> unit
(** Preempt every running VCPU the assignment just parked (a capped
    VM's VCPUs stop at the same accounting instant; boosted gang
    members are left alone) and let [refill] choose replacements. *)
