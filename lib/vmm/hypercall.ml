type stats = { mutable to_high : int; mutable to_low : int }

type t = { mutable vmm : Vmm.t; per_domain : (int, stats) Hashtbl.t }

let create vmm = { vmm; per_domain = Hashtbl.create 8 }

let vmm t = t.vmm

(* Domain migration re-points the guest's hypercall channel at its new
   host; per-domain call tallies travel with the channel. *)
let retarget t ~vmm = t.vmm <- vmm

let stats_for t (dom : Domain.t) =
  match Hashtbl.find_opt t.per_domain dom.Domain.id with
  | Some s -> s
  | None ->
    let s = { to_high = 0; to_low = 0 } in
    Hashtbl.replace t.per_domain dom.Domain.id s;
    s

let do_vcrd_op t dom vcrd =
  let s = stats_for t dom in
  (match vcrd with
  | Domain.High -> s.to_high <- s.to_high + 1
  | Domain.Low -> s.to_low <- s.to_low + 1);
  Vmm.do_vcrd_op t.vmm dom vcrd

let total_calls t =
  Hashtbl.fold (fun _ s acc -> acc + s.to_high + s.to_low) t.per_domain 0
