open Sched_intf

let requeue_current api ~pcpu =
  match api.current pcpu with
  | Some _ -> api.make_idle ~pcpu
  | None -> ()

let allow_any _v ~dst:_ = true

let steal api ~dst ~under_only ~allowed =
  let best pred =
    let candidate = ref None in
    Array.iter
      (fun rq ->
        let src = Runqueue.pcpu rq in
        if src <> dst && pred src then
          List.iter
            (fun (v : Vcpu.t) ->
              let eligible =
                (not v.Vcpu.boosted) && (not v.Vcpu.parked)
                && ((not under_only) || v.Vcpu.credit > 0)
                && allowed v ~dst
              in
              if eligible then
                match !candidate with
                | None -> candidate := Some v
                | Some cur ->
                  if v.Vcpu.credit > cur.Vcpu.credit then candidate := Some v)
            (Runqueue.to_list rq))
      api.runqueues;
    !candidate
  in
  let candidate =
    match api.numa with
    | None -> best (fun _ -> true)
    | Some { topo; _ } -> (
      (* Same-socket runqueues first: a local candidate wins even when
         a remote one holds more credit (LLC locality beats strict
         credit order). Falls back to the remote sockets. *)
      match best (fun src -> Sim_hw.Topology.same_socket topo src dst) with
      | Some v -> Some v
      | None ->
        best (fun src -> not (Sim_hw.Topology.same_socket topo src dst)))
  in
  match candidate with
  | None -> None
  | Some v ->
    api.migrate v ~dst;
    Some v

let pick_baseline api ~pcpu ~allowed =
  let rq = api.runqueues.(pcpu) in
  match Runqueue.head_under rq with
  | Some v -> Some v
  | None -> begin
    match steal api ~dst:pcpu ~under_only:true ~allowed with
    | Some v -> Some v
    | None -> begin
      (* The cap is enforced by parking at accounting events, so an
         unparked OVER VCPU may run between events even in the
         non-work-conserving mode (as Xen behaves). *)
      match Runqueue.head rq with
      | Some v -> Some v
      | None -> steal api ~dst:pcpu ~under_only:false ~allowed
    end
  end

let kick_idle api ~pick =
  let n = Array.length api.runqueues in
  for pcpu = 0 to n - 1 do
    match api.current pcpu with
    | None when not (api.pcpu_online pcpu) -> ()
    | None -> begin
      match pick ~pcpu with
      | Some v -> api.run_on ~pcpu v
      | None -> ()
    end
    | Some _ -> ()
  done

let assign_credit api =
  Credit.assign
    ~domains:(api.domains ())
    ~pcpus:(Array.length api.runqueues)
    ~slots_per_period:
      (Sim_hw.Machine.cpu_model api.machine).Sim_hw.Cpu_model.slots_per_period
    ~credit_unit:api.credit_unit ~work_conserving:api.work_conserving

let preempt_parked api ~refill =
  Array.iteri
    (fun pcpu _rq ->
      match api.current pcpu with
      | Some (v : Vcpu.t) when v.Vcpu.parked && not v.Vcpu.boosted ->
        api.make_idle ~pcpu;
        refill ~pcpu
      | Some _ | None -> ())
    api.runqueues
