open Sched_intf

type oov_state = {
  estimator : Sim_learn.Estimator.t;
  mutable window : Sim_engine.Engine.handle option;
  mutable budget : int;  (** online cycles left in the HIGH window *)
  mutable anchor : int;  (** domain online cycles at the last re-arm *)
}

let make ?(oov = false) ?(ipi = true) ?(solidarity = true)
    ?(continuity = true) ?(llc_aware = false) ~name ~should_cosched
    (api : api) : t =
  let domain_of (v : Vcpu.t) =
    List.find (fun d -> d.Domain.id = v.Vcpu.domain_id) (api.domains ())
  in
  (* Mutex of Algorithm 4: only one PCPU launches the coscheduling IPIs
     for a domain at any given instant. *)
  let last_launch : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let engine = Sim_hw.Machine.engine api.machine in
  let trace = Sim_engine.Engine.trace engine in
  let emit_gang ev =
    if Sim_obs.Trace.on trace Sim_obs.Trace.Gang then
      Sim_obs.Trace.emit trace ~now:(api.now ()) ev
  in

  (* Self-healing: when a watchdog is armed, a domain whose
     coscheduling launches repeatedly stall (IPIs lost to faults) is
     demoted — [cosched] goes false and every gang mechanism below
     falls back to plain Credit behavior until probation expires. *)
  let wd =
    Option.map (fun p -> Watchdog.create ~metrics:api.metrics p) api.watchdog
  in
  let demoted (dom : Domain.t) =
    match wd with
    | None -> false
    | Some w -> Watchdog.is_demoted w ~now:(api.now ()) dom.Domain.id
  in
  let cosched dom = should_cosched dom && not (demoted dom) in

  (* A VCPU of a coscheduled domain must not be migrated onto a PCPU
     whose run queue already holds a sibling (Algorithm 4, line 3). *)
  let allowed (v : Vcpu.t) ~dst =
    let dom = domain_of v in
    (not (cosched dom))
    || not (Runqueue.has_domain api.runqueues.(dst) ~domain_id:dom.Domain.id)
  in

  (* Algorithm 3, lines 8-15: relocate a domain's Ready VCPUs so each
     sits in a different PCPU's run queue (counting PCPUs that are
     already running a sibling as taken). With [llc_aware], PCPUs that
     share a socket (and thus the last-level cache) with a sibling are
     preferred — coscheduling IPIs then stay on-socket and the gang
     shares its LLC, the architectural property §7 points at. *)
  let topology = Sim_hw.Machine.topology api.machine in
  let spread (dom : Domain.t) =
    let n = Array.length api.runqueues in
    (* Offline PCPUs count as taken: never a relocation target. *)
    let taken = Array.init n (fun p -> not (api.pcpu_online p)) in
    let anchor_socket = ref None in
    let note_socket p =
      if llc_aware && !anchor_socket = None then
        anchor_socket := Some (Sim_hw.Topology.socket_of topology p)
    in
    Array.iter
      (fun (v : Vcpu.t) ->
        match Vcpu.running_on v with
        | Some p ->
          taken.(p) <- true;
          note_socket p
        | None -> ())
      dom.Domain.vcpus;
    let preferred p =
      match !anchor_socket with
      | Some socket when llc_aware ->
        Sim_hw.Topology.socket_of topology p = socket
      | Some _ | None -> true
    in
    let better candidate incumbent =
      match incumbent with
      | -1 -> true
      | b ->
        let cp = preferred candidate and bp = preferred b in
        if cp <> bp then cp
        else
          Runqueue.length api.runqueues.(candidate)
          < Runqueue.length api.runqueues.(b)
    in
    let claim_or_move (v : Vcpu.t) =
      if Vcpu.is_ready v then begin
        if
          (not taken.(v.Vcpu.home))
          && ((not llc_aware) || preferred v.Vcpu.home)
        then begin
          taken.(v.Vcpu.home) <- true;
          note_socket v.Vcpu.home
        end
        else begin
          let best = ref (-1) in
          for p = 0 to n - 1 do
            if (not taken.(p)) && better p !best then best := p
          done;
          match !best with
          | -1 ->
            (* More VCPUs than PCPUs: keep the home claim if free. *)
            if not taken.(v.Vcpu.home) then taken.(v.Vcpu.home) <- true
          | p ->
            if p <> v.Vcpu.home then api.migrate v ~dst:p
            else ();
            taken.(p) <- true;
            note_socket p
        end
      end
    in
    Array.iter claim_or_move dom.Domain.vcpus
  in

  (* Some running VCPU of the domain, to relaunch a coschedule from. *)
  let running_leader (dom : Domain.t) =
    Array.fold_left
      (fun acc (v : Vcpu.t) ->
        match acc with
        | Some _ -> acc
        | None -> (
          match Vcpu.running_on v with Some p -> Some (p, v) | None -> None))
      None dom.Domain.vcpus
  in

  (* Coschedule the siblings of [leader] (Algorithm 4, lines 5-7):
     IPI every PCPU holding a Ready sibling; the handler boosts the
     sibling and preempts the victim unless it is itself part of a
     coscheduled gang. With a watchdog armed, each launch (at most one
     tracked per domain at a time) counts its IPIs and is audited
     [ack_timeout] later by [arm_check]; IPI delivery doubles as the
     ack. [retry] relaunches bypass the per-instant mutex and keep the
     in-flight retry budget instead of resetting it. *)
  let rec launch_cosched ?(retry = false) ~pcpu (leader : Vcpu.t) =
    let dom = domain_of leader in
    let now = api.now () in
    let already = Hashtbl.find_opt last_launch dom.Domain.id in
    if ipi && (retry || already <> Some now) then begin
      Hashtbl.replace last_launch dom.Domain.id now;
      let st = Option.map (fun w -> Watchdog.dom_state w dom.Domain.id) wd in
      let track =
        match st with
        | Some s -> retry || not s.Watchdog.check_pending
        | None -> false
      in
      let gen =
        match st with
        | Some s when track ->
          s.Watchdog.gen <- s.Watchdog.gen + 1;
          s.Watchdog.gen
        | Some _ | None -> 0
      in
      let sent = ref 0 in
      let mutation_dropped = ref false in
      Array.iter
        (fun (sib : Vcpu.t) ->
          if sib != leader && Vcpu.is_ready sib then begin
            let dst = sib.Vcpu.home in
            let dst =
              if dst <> pcpu then dst
              else begin
                (* Sibling queued behind the leader: relocate first. *)
                spread dom;
                sib.Vcpu.home
              end
            in
            if
              dst <> pcpu
              && not
                   (Mutation.enabled Mutation.Drop_gang_sibling
                   && not !mutation_dropped
                   && (mutation_dropped := true;
                       true))
            then begin
              incr sent;
              Sim_hw.Machine.send_ipi api.machine ~src:pcpu ~dst (fun () ->
                  (match (wd, st) with
                  | Some w, Some s when track && s.Watchdog.gen = gen ->
                    s.Watchdog.acks <- s.Watchdog.acks + 1;
                    Watchdog.note_ack w;
                    emit_gang
                      (Sim_obs.Trace.Gang_ack
                         { domain = dom.Domain.id; pcpu = dst })
                  | _ -> ());
                  if Vcpu.is_ready sib && cosched dom then begin
                    sib.Vcpu.boosted <- true;
                    match api.current dst with
                    | None -> api.run_on ~pcpu:dst sib
                    | Some cur ->
                      if
                        cur.Vcpu.domain_id <> sib.Vcpu.domain_id
                        && not cur.Vcpu.boosted
                      then api.run_on ~pcpu:dst sib
                  end)
            end
          end)
        dom.Domain.vcpus;
      if !sent > 0 then
        emit_gang
          (Sim_obs.Trace.Gang_launch
             { domain = dom.Domain.id; pcpu; ipis = !sent; retry });
      match (wd, st) with
      | Some w, Some s when track && !sent > 0 ->
        (* IPI latency is strictly positive, so no ack can land before
           these counters are (re)armed. *)
        s.Watchdog.expected <- !sent;
        s.Watchdog.acks <- 0;
        if not retry then begin
          s.Watchdog.retries_left <- (Watchdog.params w).Watchdog.max_retries;
          s.Watchdog.backoff <- (Watchdog.params w).Watchdog.backoff_base
        end;
        s.Watchdog.check_pending <- true;
        Watchdog.note_launch w;
        arm_check w s dom
      | _ -> ()
    end

  and arm_check w (s : Watchdog.dom_state) (dom : Domain.t) =
    let p = Watchdog.params w in
    ignore
      (Sim_engine.Engine.schedule_after engine ~delay:p.Watchdog.ack_timeout
         (fun () ->
           if s.Watchdog.acks >= s.Watchdog.expected then
             (* Strikes are cumulative since the last demotion (not
                reset on success): under sustained low-rate IPI loss
                the domain still reaches the threshold and falls back
                to Credit; a clean environment accrues none. *)
             s.Watchdog.check_pending <- false
           else begin
             Watchdog.note_timeout w;
             s.Watchdog.strikes <- s.Watchdog.strikes + 1;
             emit_gang
               (Sim_obs.Trace.Gang_timeout
                  { domain = dom.Domain.id; strikes = s.Watchdog.strikes });
             if s.Watchdog.strikes >= p.Watchdog.fail_threshold then begin
               (* Demote: the gang falls back to plain Credit until
                  probation ends, then coscheduling is re-attempted. *)
               s.Watchdog.demoted_until <- api.now () + p.Watchdog.probation;
               s.Watchdog.strikes <- 0;
               s.Watchdog.check_pending <- false;
               Watchdog.note_demotion w ~vm:dom.Domain.name;
               emit_gang
                 (Sim_obs.Trace.Gang_demote
                    { domain = dom.Domain.id;
                      until = s.Watchdog.demoted_until });
               Array.iter
                 (fun (v : Vcpu.t) -> v.Vcpu.boosted <- false)
                 dom.Domain.vcpus
             end
             else if s.Watchdog.retries_left > 0 then begin
               s.Watchdog.retries_left <- s.Watchdog.retries_left - 1;
               let delay = s.Watchdog.backoff in
               s.Watchdog.backoff <- s.Watchdog.backoff * 2;
               Watchdog.note_retry w;
               emit_gang
                 (Sim_obs.Trace.Gang_retry
                    { domain = dom.Domain.id; delay });
               ignore
                 (Sim_engine.Engine.schedule_after engine ~delay (fun () ->
                      if cosched dom then begin
                        match running_leader dom with
                        | Some (p, v) -> launch_cosched ~retry:true ~pcpu:p v
                        | None -> s.Watchdog.check_pending <- false
                      end
                      else s.Watchdog.check_pending <- false))
             end
             else s.Watchdog.check_pending <- false
           end))
  in

  let run ~pcpu (v : Vcpu.t) =
    api.run_on ~pcpu v;
    if cosched (domain_of v) then launch_cosched ~pcpu v
  in

  (* Gang solidarity: while any sibling still holds entitled credit,
     the whole gang keeps running (out-of-credit members included), so
     the VM's share is consumed in long aligned bursts and the gang
     parks as a unit. Long-run fairness is preserved by the credit
     refill rate; overdraw is bounded by the VMM's credit floor. *)
  let gang_anchor (dom : Domain.t) =
    solidarity
    && Array.exists
         (fun (v : Vcpu.t) ->
           v.Vcpu.credit >= 0 && (Vcpu.is_running v || Vcpu.is_ready v))
         dom.Domain.vcpus
  in
  (* Algorithm 4 selection for one PCPU. *)
  let decide ~pcpu =
    let rq = api.runqueues.(pcpu) in
    match Runqueue.head rq with
    | None -> begin
      match Sched_common.steal api ~dst:pcpu ~under_only:true ~allowed with
      | Some v -> run ~pcpu v
      | None -> begin
        if api.work_conserving then
          match Sched_common.steal api ~dst:pcpu ~under_only:false ~allowed with
          | Some v -> run ~pcpu v
          | None -> ()
      end
    end
    | Some head ->
      let solidarity =
        head.Vcpu.credit < 0
        &&
        let dom = domain_of head in
        cosched dom && gang_anchor dom
      in
      if head.Vcpu.credit >= 0 || head.Vcpu.boosted || solidarity then
        run ~pcpu head
      else begin
        (* Head used up its credit: migrate in a remote VCPU with
           maximal credit (Algorithm 4, lines 2-4); in the capped mode
           an out-of-credit VCPU stays parked until refilled. *)
        match Sched_common.steal api ~dst:pcpu ~under_only:true ~allowed with
        | Some v -> run ~pcpu v
        | None -> if api.work_conserving then run ~pcpu head
      end
  in
  let on_slot ~pcpu =
    (* Gang continuity: a running member of an anchored coscheduled
       domain keeps the PCPU through its slice boundary, so the gang's
       aligned burst is not chopped at per-PCPU slice edges. The burst
       ends when the anchor (entitled credit) is exhausted. *)
    let keep =
      continuity
      &&
      match api.current pcpu with
      | Some cur ->
        let dom = domain_of cur in
        if cosched dom && gang_anchor dom then begin
          launch_cosched ~pcpu cur;
          true
        end
        else false
      | None -> false
    in
    if not keep then begin
      Sched_common.requeue_current api ~pcpu;
      decide ~pcpu
    end
  in
  let on_period () =
    Sched_common.assign_credit api;
    List.iter (fun d -> if cosched d then spread d) (api.domains ());
    Sched_common.preempt_parked api ~refill:(fun ~pcpu -> decide ~pcpu)
  in
  let on_wake (v : Vcpu.t) =
    let dom = domain_of v in
    (* Respect the distinct-PCPU invariant for coscheduled domains. *)
    let home =
      if
        cosched dom
        && Runqueue.has_domain api.runqueues.(v.Vcpu.home)
             ~domain_id:dom.Domain.id
      then begin
        let n = Array.length api.runqueues in
        let rec scan p =
          if p >= n then v.Vcpu.home
          else if
            api.pcpu_online p
            && not
                 (Runqueue.has_domain api.runqueues.(p)
                    ~domain_id:dom.Domain.id)
          then p
          else scan (p + 1)
        in
        scan 0
      end
      else v.Vcpu.home
    in
    Runqueue.insert api.runqueues.(home) v;
    (* Xen fast-tracks only UNDER wakeups (BOOST); an OVER VCPU waits
       for its queue turn. *)
    if Vcpu.eligible v && v.Vcpu.credit >= 0 then begin
      let idle p =
        api.pcpu_online p
        && match api.current p with None -> true | Some _ -> false
      in
      let n = Array.length api.runqueues in
      let target =
        if idle home then Some home
        else begin
          let rec scan p = if p >= n then None else if idle p then Some p else scan (p + 1) in
          scan 0
        end
      in
      match target with Some p -> run ~pcpu:p v | None -> ()
    end
  in
  let on_block (v : Vcpu.t) = decide ~pcpu:v.Vcpu.home in
  let on_vcrd_change (dom : Domain.t) =
    match dom.Domain.vcrd with
    | Domain.High ->
      if not (demoted dom) then spread dom;
      (* Start coscheduling right away from the PCPU running one of
         the domain's VCPUs (or at the next boundary otherwise). *)
      (match running_leader dom with
      | Some (p, v) -> if cosched dom then launch_cosched ~pcpu:p v
      | None -> ())
    | Domain.Low ->
      Array.iter (fun (v : Vcpu.t) -> v.Vcpu.boosted <- false) dom.Domain.vcpus
  in
  (* Out-of-VM VCRD detection (the paper's stated future work): the
     hardware pause-loop-exit signal tells the VMM that a VCPU burned
     a full PLE window busy-spinning — no guest modification needed.
     Each PLE is treated exactly like a Monitoring-Module adjusting
     event: a per-domain Roth-Erev estimator (clocked in guest online
     time, like the in-VM monitor) picks the coscheduling duration and
     the scheduler drives the domain's VCRD itself. *)
  let slot_cycles =
    Sim_hw.Cpu_model.slot_cycles (Sim_hw.Machine.cpu_model api.machine)
  in
  let oov_table : (int, oov_state) Hashtbl.t = Hashtbl.create 8 in
  let oov_state_of (dom : Domain.t) =
    match Hashtbl.find_opt oov_table dom.Domain.id with
    | Some st -> st
    | None ->
      let st =
        {
          estimator =
            Sim_learn.Estimator.create
              (Sim_learn.Estimator.default_params ~slot_cycles)
              (Sim_engine.Rng.split (Sim_engine.Engine.rng engine));
          window = None;
          budget = 0;
          anchor = 0;
        }
      in
      Hashtbl.replace oov_table dom.Domain.id st;
      st
  in
  let set_vcrd (dom : Domain.t) v =
    if Domain.set_vcrd dom ~now:(api.now ()) v then on_vcrd_change dom
  in
  let rec arm_oov_window (dom : Domain.t) st =
    let vcpus = Domain.vcpu_count dom in
    let delay = max (Sim_engine.Units.pow2 20) (st.budget / vcpus) in
    st.window <-
      Some
        (Sim_engine.Engine.schedule_after engine ~delay (fun () ->
             let consumed = api.domain_online dom - st.anchor in
             if consumed >= st.budget then begin
               st.window <- None;
               set_vcrd dom Domain.Low
             end
             else begin
               st.anchor <- st.anchor + consumed;
               st.budget <- st.budget - consumed;
               arm_oov_window dom st
             end))
  in
  let on_ple (v : Vcpu.t) =
    if oov then begin
      let dom = domain_of v in
      let st = oov_state_of dom in
      let online_now = api.domain_online dom / Domain.vcpu_count dom in
      let x =
        Sim_learn.Estimator.on_adjusting_event st.estimator ~now:online_now
      in
      (match st.window with
      | Some h -> Sim_engine.Engine.cancel engine h
      | None -> ());
      set_vcrd dom Domain.High;
      st.budget <- x * Domain.vcpu_count dom;
      st.anchor <- api.domain_online dom;
      arm_oov_window dom st
    end
  in
  let counters () =
    match wd with Some w -> Watchdog.counter_list w | None -> []
  in
  (* Quiescence gate for whole-domain migration off this host (the
     decoupled-VMM steal protocol). A domain with a pending watchdog
     audit, an armed out-of-VM VCRD window, or a coscheduling launch
     whose IPIs may still be in flight has scheduler state (or
     scheduled engine events capturing its VCPUs) that would dangle
     if it left now. IPI flight time is bounded by the cross-socket
     latency, so a launch is definitely drained once that horizon has
     passed — exact only while the IPI fault filter is off, which the
     decoupled mode guarantees. Boost flags are *not* a blocker: they
     are plain per-VCPU priority state that travels with the domain,
     is consumed by runqueue picks on the new host and cleared by its
     [on_vcrd_change] when the guest lowers VCRD. *)
  let ipi_horizon =
    2 * (Sim_hw.Machine.cpu_model api.machine).Sim_hw.Cpu_model
        .ipi_latency_cycles
  in
  let migratable (dom : Domain.t) =
    (match wd with
    | None -> true
    | Some w ->
      not (Watchdog.dom_state w dom.Domain.id).Watchdog.check_pending)
    && (match Hashtbl.find_opt oov_table dom.Domain.id with
       | Some st -> st.window = None
       | None -> true)
    && (match Hashtbl.find_opt last_launch dom.Domain.id with
       | Some at -> api.now () > at + ipi_horizon
       | None -> true)
  in
  { name; on_slot; on_period; on_wake; on_block; on_vcrd_change; on_ple;
    migratable; counters }

let make_asman api =
  make ~name:"asman"
    ~should_cosched:(fun d -> d.Domain.vcrd = Domain.High)
    api

let make_static api =
  make ~name:"cosched-static" ~should_cosched:(fun d -> d.Domain.concurrent_type) api

let make_oov api =
  make ~oov:true ~name:"asman-oov"
    ~should_cosched:(fun d -> d.Domain.vcrd = Domain.High)
    api
