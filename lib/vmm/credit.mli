(** Credit accounting (Algorithm 3, lines 1–7).

    At each assignment event (every [K] slots) the bootstrap PCPU
    computes the system-wide credit
    [Cred_total = |P| * Cred_unit * K] and hands each domain
    [Cred_total * weight_proportion], split equally among its VCPUs.
    Running VCPUs burn [Cred_unit] per fully-used slot (pro-rated for
    partial slots). Credit is capped so that a long-idle VCPU cannot
    hoard an unbounded burst (Xen behaves the same way). *)

val default_credit_unit : int
(** 1000 — kept large so pro-rated burns lose little to integer
    division. *)

val total_per_period : pcpus:int -> slots_per_period:int -> credit_unit:int -> int

val burn : credit_unit:int -> slot_cycles:int -> run_cycles:int -> int
(** Credit consumed by running [run_cycles] within a slot of
    [slot_cycles]. Raises [Invalid_argument] if [run_cycles] is
    negative or exceeds the slot. *)

val cap : credit_unit:int -> slots_per_period:int -> int
(** Maximum credit a VCPU may hold: two periods of full-speed burn. *)

val assign :
  domains:Domain.t list ->
  pcpus:int ->
  slots_per_period:int ->
  credit_unit:int ->
  work_conserving:bool ->
  unit
(** One assignment event: increment (and cap) every VCPU's credit.
    In non-work-conserving mode also update each VCPU's [parked]
    flag (parked iff credit is strictly negative — a VM that exactly
    balances its refill must keep running):
    Xen parks capped VCPUs at the global accounting event rather than
    at per-PCPU boundaries, so a capped VM's VCPUs stop and restart in
    rough global sync. *)
