(** Coscheduling watchdog state for the gang scheduler's self-healing
    path.

    A coscheduling launch is {e tracked}: the gang scheduler records
    how many IPIs it sent and checks [ack_timeout] cycles later whether
    they all arrived. A missed check is a {e strike}; the launch is
    retried with doubling backoff up to [max_retries] times. Strikes
    accumulate until [fail_threshold], at which point the domain is
    {e demoted} — scheduled as plain Credit — for [probation] cycles,
    after which coscheduling is re-attempted with a clean slate. A
    fault-free run acks every launch and accrues no strikes; sustained
    IPI loss of any rate eventually trips the threshold. This module only keeps the bookkeeping
    (per-domain state; the tallies live in the simulation's
    {!Sim_obs.Metrics} registry under subsystem ["watchdog"]); the
    policy lives in {!Sched_gang}. *)

type params = {
  ack_timeout : int;  (** cycles to wait for all IPI acks of a launch *)
  max_retries : int;  (** relaunch attempts per tracked launch *)
  backoff_base : int;  (** first retry delay; doubles per retry *)
  fail_threshold : int;  (** strikes (timed-out checks) before demotion *)
  probation : int;  (** demotion length in cycles *)
}

val default : Sim_hw.Cpu_model.t -> params
(** Thresholds scaled to the model's IPI latency and slot length so
    the fault-free simulator never trips them. *)

type dom_state = {
  mutable expected : int;
  mutable acks : int;
  mutable gen : int;
      (** Launch generation: acks carry the generation they were sent
          under, so a late ack from a superseded launch cannot satisfy
          the current one. *)
  mutable retries_left : int;
  mutable backoff : int;
  mutable check_pending : bool;
  mutable strikes : int;
  mutable demoted_until : int;
}

type t

val create : metrics:Sim_obs.Metrics.t -> params -> t
(** Registers the watchdog's counters in [metrics] (subsystem
    ["watchdog"]: [cosched_launches], [ipi_acks],
    [watchdog_timeouts], [watchdog_retries], [watchdog_demotions]). *)

val params : t -> params

val dom_state : t -> int -> dom_state
(** Per-domain state, created on first use. *)

val is_demoted : t -> now:int -> int -> bool

val note_launch : t -> unit
val note_ack : t -> unit
val note_timeout : t -> unit
val note_retry : t -> unit

val note_demotion : t -> vm:string -> unit
(** Also bumps the per-VM [watchdog/demotions{vm=...}] counter so
    health reports can attribute demotions to domains. *)

val demotions : t -> int
(** Thin read of the registry counter. *)

val demotions_of : t -> vm:string -> int

val counter_list : t -> (string * int) list
(** Counters under stable names ([cosched_launches], [ipi_acks],
    [watchdog_timeouts], [watchdog_retries], [watchdog_demotions]);
    values read back from the registry. *)
