let default_credit_unit = 1000

let total_per_period ~pcpus ~slots_per_period ~credit_unit =
  pcpus * credit_unit * slots_per_period

let burn ~credit_unit ~slot_cycles ~run_cycles =
  if run_cycles < 0 then invalid_arg "Credit.burn: negative run_cycles";
  if run_cycles > slot_cycles then
    invalid_arg "Credit.burn: run_cycles exceeds slot";
  credit_unit * run_cycles / slot_cycles

let cap ~credit_unit ~slots_per_period = 2 * credit_unit * slots_per_period

let assign ~domains ~pcpus ~slots_per_period ~credit_unit ~work_conserving =
  let total =
    total_per_period ~pcpus ~slots_per_period ~credit_unit
  in
  let cap_v = cap ~credit_unit ~slots_per_period in
  List.iter
    (fun (d : Domain.t) ->
      let share = Domain.weight_proportion d ~all:domains in
      let inc = int_of_float (Float.round (float_of_int total *. share)) in
      let per_vcpu = inc / Domain.vcpu_count d in
      Array.iter
        (fun (v : Vcpu.t) ->
          v.Vcpu.credit <- min cap_v (v.Vcpu.credit + per_vcpu);
          if not work_conserving then v.Vcpu.parked <- v.Vcpu.credit < 0)
        d.Domain.vcpus)
    domains
