(* Singly-linked FIFO with a tail pointer and a length counter:
   insert (append) and length are O(1) — they sit on the VMM's
   wake/preempt hot path — while removal and the priority scans stay
   O(n) over queues bounded by the total VCPU count. *)

type node = { v : Vcpu.t; mutable next : node option }

type t = {
  pcpu_id : int;
  mutable first : node option; (* FIFO: first = oldest *)
  mutable last : node option;
  mutable len : int;
}

let create ~pcpu = { pcpu_id = pcpu; first = None; last = None; len = 0 }

let pcpu t = t.pcpu_id

let length t = t.len

let is_empty t = t.len = 0

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.v) n.next
  in
  go init t.first

let exists t ~f =
  let rec go = function
    | None -> false
    | Some n -> f n.v || go n.next
  in
  go t.first

let mem t v = exists t ~f:(fun x -> x == v)

let insert t v =
  if not (Vcpu.is_ready v) then
    invalid_arg "Runqueue.insert: vcpu is not Ready";
  if mem t v then invalid_arg "Runqueue.insert: vcpu already queued";
  v.Vcpu.home <- t.pcpu_id;
  let n = { v; next = None } in
  (match t.last with
  | None -> t.first <- Some n
  | Some last -> last.next <- Some n);
  t.last <- Some n;
  t.len <- t.len + 1

let remove t v =
  let rec unlink prev = function
    | None -> invalid_arg "Runqueue.remove: vcpu not in queue"
    | Some n when n.v == v ->
      (match prev with
      | None -> t.first <- n.next
      | Some p -> p.next <- n.next);
      (match n.next with None -> t.last <- prev | Some _ -> ());
      t.len <- t.len - 1
    | Some n -> unlink (Some n) n.next
  in
  unlink None t.first

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc v -> v :: acc))

(* Strictly better in (boosted, credit) order; FIFO ties resolved by
   scanning in queue order and replacing only on strict improvement. *)
let better (a : Vcpu.t) (b : Vcpu.t) =
  match (a.Vcpu.boosted, b.Vcpu.boosted) with
  | true, false -> true
  | false, true -> false
  | true, true | false, false -> a.Vcpu.credit > b.Vcpu.credit

let best ~f t =
  fold t ~init:None ~f:(fun acc v ->
      if not (f v) then acc
      else
        match acc with
        | None -> Some v
        | Some cur -> if better v cur then Some v else acc)

let head t = best ~f:Vcpu.eligible t

let head_under t = best ~f:(fun v -> Vcpu.eligible v && v.Vcpu.credit > 0) t

let best_by_credit t ~f =
  fold t ~init:None ~f:(fun acc v ->
      if not (f v) then acc
      else
        match acc with
        | None -> Some v
        | Some cur -> if v.Vcpu.credit > cur.Vcpu.credit then Some v else acc)

let has_domain t ~domain_id =
  exists t ~f:(fun v -> v.Vcpu.domain_id = domain_id)

(* Internal-consistency audit for the runtime invariant checker: the
   length counter, tail pointer and per-node state can silently rot if
   a fault path requeues without going through insert/remove. *)
let check t =
  let rec walk prev count = function
    | Some n ->
      if not (Vcpu.is_ready n.v) then
        Error
          (Printf.sprintf "rq %d holds non-Ready vcpu %d" t.pcpu_id n.v.Vcpu.id)
      else if n.v.Vcpu.home <> t.pcpu_id then
        Error
          (Printf.sprintf "rq %d holds vcpu %d homed on %d" t.pcpu_id
             n.v.Vcpu.id n.v.Vcpu.home)
      else walk (Some n) (count + 1) n.next
    | None ->
      if count <> t.len then
        Error
          (Printf.sprintf "rq %d len %d but %d nodes linked" t.pcpu_id t.len
             count)
      else begin
        match (t.last, prev) with
        | None, None -> Ok ()
        | Some l, Some p when l == p -> Ok ()
        | _ -> Error (Printf.sprintf "rq %d tail pointer mismatch" t.pcpu_id)
      end
  in
  walk None 0 t.first

let find_domain t ~domain_id =
  List.rev
    (fold t ~init:[] ~f:(fun acc v ->
         if v.Vcpu.domain_id = domain_id then v :: acc else acc))
