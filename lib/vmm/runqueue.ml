type t = { pcpu_id : int; mutable queue : Vcpu.t list (* FIFO: head = oldest *) }

let create ~pcpu = { pcpu_id = pcpu; queue = [] }

let pcpu t = t.pcpu_id

let length t = List.length t.queue

let is_empty t = t.queue = []

let mem t v = List.memq v t.queue

let insert t v =
  if not (Vcpu.is_ready v) then
    invalid_arg "Runqueue.insert: vcpu is not Ready";
  if mem t v then invalid_arg "Runqueue.insert: vcpu already queued";
  v.Vcpu.home <- t.pcpu_id;
  t.queue <- t.queue @ [ v ]

let remove t v =
  if not (mem t v) then invalid_arg "Runqueue.remove: vcpu not in queue";
  t.queue <- List.filter (fun x -> x != v) t.queue

let to_list t = t.queue

(* Strictly better in (boosted, credit) order; FIFO ties resolved by
   scanning in queue order and replacing only on strict improvement. *)
let better (a : Vcpu.t) (b : Vcpu.t) =
  match (a.Vcpu.boosted, b.Vcpu.boosted) with
  | true, false -> true
  | false, true -> false
  | true, true | false, false -> a.Vcpu.credit > b.Vcpu.credit

let best ~f t =
  List.fold_left
    (fun acc v ->
      if not (f v) then acc
      else
        match acc with
        | None -> Some v
        | Some cur -> if better v cur then Some v else acc)
    None t.queue

let head t = best ~f:Vcpu.eligible t

let head_under t = best ~f:(fun v -> Vcpu.eligible v && v.Vcpu.credit > 0) t

let best_by_credit t ~f =
  List.fold_left
    (fun acc v ->
      if not (f v) then acc
      else
        match acc with
        | None -> Some v
        | Some cur -> if v.Vcpu.credit > cur.Vcpu.credit then Some v else acc)
    None t.queue

let has_domain t ~domain_id =
  List.exists (fun v -> v.Vcpu.domain_id = domain_id) t.queue

let find_domain t ~domain_id =
  List.filter (fun v -> v.Vcpu.domain_id = domain_id) t.queue
