(* Inline-everything HTML renderer. Everything below is emitted from
   scratch into one buffer: CSS in a <style> block, a few lines of JS
   for legend highlighting, charts as inline SVG with native <title>
   tooltips. Determinism matters (a CI artifact is diffed across
   reruns), so records and series keys are sorted and all numbers are
   printed with fixed formats. *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let palette =
  [|
    "#2563eb"; "#dc2626"; "#059669"; "#d97706"; "#7c3aed"; "#0891b2";
    "#be185d"; "#4d7c0f"; "#9333ea"; "#b45309"; "#0d9488"; "#6b7280";
  |]

let color i = palette.(i mod Array.length palette)

let short_sha (r : Record.t) =
  match r.Record.git_sha with
  | Some s ->
    esc (String.sub s 0 (min 12 (String.length s)))
    ^ (if r.Record.git_dirty then "<span class=\"dirty\">+dirty</span>" else "")
  | None -> "&mdash;"

(* ----- one trend chart ----- *)

type family = {
  f_title : string;
  f_unit : string;
  f_log : bool;  (** log10 y-axis (throughput spans decades) *)
  f_extract : Record.t -> (string * float) list;
}

let families =
  [
    {
      f_title = "Figure / ablation wall time";
      f_unit = "seconds";
      f_log = false;
      f_extract = Compare.runs_of;
    };
    {
      f_title = "Micro throughput (event queue + PDES)";
      f_unit = "events/sec";
      f_log = true;
      f_extract = Compare.micro_of;
    };
    {
      f_title = "Fairness: attained / entitled";
      f_unit = "ratio";
      f_log = false;
      f_extract = Compare.fairness_of;
    };
    {
      f_title = "SimCheck health";
      f_unit = "count";
      f_log = false;
      f_extract = Compare.check_of;
    };
    {
      f_title = "Cluster consolidation";
      f_unit = "value";
      f_log = false;
      f_extract = Compare.cluster_of;
    };
  ]

let width = 760.
let height = 240.
let ml = 64.
let mr = 12.
let mt = 10.
let mb = 28.

let fnum v =
  (* Fixed, locale-free value formatting for labels and tooltips. *)
  if Float.abs v >= 1e6 then Printf.sprintf "%.3g" v
  else if Float.is_integer v && Float.abs v < 1e6 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3f" v

let chart buf fam_index fam (records : Record.t list) =
  (* Only runs that carry this family participate; x is the position
     among those, in registry (date, id) order. *)
  let participating =
    List.filter (fun r -> fam.f_extract r <> []) records
  in
  Buffer.add_string buf
    (Printf.sprintf "<section class=\"family\"><h2>%s</h2>\n"
       (esc fam.f_title));
  if participating = [] then
    Buffer.add_string buf
      "<p class=\"empty\">no runs carry this metric family yet</p>\n</section>\n"
  else begin
    let n = List.length participating in
    let keys =
      List.sort_uniq compare
        (List.concat_map (fun r -> List.map fst (fam.f_extract r)) participating)
    in
    let series =
      List.map
        (fun key ->
          ( key,
            List.concat
              (List.mapi
                 (fun i r ->
                   match List.assoc_opt key (fam.f_extract r) with
                   | Some v -> [ (i, v) ]
                   | None -> [])
                 participating) ))
        keys
    in
    let values = List.concat_map (fun (_, pts) -> List.map snd pts) series in
    let vmax = List.fold_left Float.max neg_infinity values in
    let vmin = List.fold_left Float.min infinity values in
    let y_of v =
      let lo, hi =
        if fam.f_log then
          let safe x = Float.log10 (Float.max x 1e-9) in
          (safe vmin -. 0.05, safe vmax +. 0.05)
        else (0., Float.max (vmax *. 1.05) 1e-9)
      in
      let v = if fam.f_log then Float.log10 (Float.max v 1e-9) else v in
      let frac = if hi = lo then 0.5 else (v -. lo) /. (hi -. lo) in
      mt +. ((height -. mt -. mb) *. (1. -. frac))
    in
    let x_of i =
      if n = 1 then ml +. ((width -. ml -. mr) /. 2.)
      else ml +. ((width -. ml -. mr) *. float_of_int i /. float_of_int (n - 1))
    in
    Buffer.add_string buf
      (Printf.sprintf
         "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" \
          role=\"img\" aria-label=\"%s\">\n"
         width height width height (esc fam.f_title));
    (* Frame and y labels (min / max, plus unit). *)
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
          class=\"frame\"/>\n"
         ml mt (width -. ml -. mr) (height -. mt -. mb));
    let ylabel v =
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" class=\"ylab\">%s</text>\n" (ml -. 6.)
           (y_of v +. 3.) (esc (fnum v)))
    in
    if vmax > vmin then begin
      ylabel vmin;
      ylabel vmax
    end
    else ylabel vmax;
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" class=\"unit\">%s</text>\n" 4.
         (mt +. 10.) (esc fam.f_unit));
    (* x ticks: run positions. *)
    List.iteri
      (fun i (r : Record.t) ->
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%.1f\" class=\"xlab\"><title>%s</title>%d</text>\n"
             (x_of i)
             (height -. mb +. 16.)
             (esc r.Record.id) (i + 1)))
      participating;
    (* One polyline + markers per series. *)
    List.iteri
      (fun si (key, pts) ->
        let cls = Printf.sprintf "f%ds%d" fam_index si in
        if List.length pts > 1 then
          Buffer.add_string buf
            (Printf.sprintf
               "<polyline class=\"line %s\" style=\"stroke:%s\" points=\"%s\"/>\n"
               cls (color si)
               (String.concat " "
                  (List.map
                     (fun (i, v) ->
                       Printf.sprintf "%.1f,%.1f" (x_of i) (y_of v))
                     pts)));
        List.iter
          (fun (i, v) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "<circle class=\"dot %s\" style=\"fill:%s\" cx=\"%.1f\" \
                  cy=\"%.1f\" r=\"2.5\"><title>%s\nrun %d: %s %s</title></circle>\n"
                 cls (color si) (x_of i) (y_of v) (esc key) (i + 1)
                 (esc (fnum v)) (esc fam.f_unit)))
          pts)
      series;
    Buffer.add_string buf "</svg>\n<ul class=\"legend\">\n";
    List.iteri
      (fun si (key, _) ->
        Buffer.add_string buf
          (Printf.sprintf
             "<li data-s=\"f%ds%d\"><span class=\"swatch\" \
              style=\"background:%s\"></span>%s</li>\n"
             fam_index si (color si) (esc key)))
      series;
    Buffer.add_string buf "</ul>\n</section>\n"
  end

(* ----- the page ----- *)

let style =
  {css|
body { font: 14px/1.45 system-ui, sans-serif; margin: 24px auto; max-width: 820px; color: #1f2937; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin: 28px 0 8px; }
table { border-collapse: collapse; width: 100%; font-size: 12px; }
th, td { border: 1px solid #e5e7eb; padding: 3px 6px; text-align: left; white-space: nowrap; }
th { background: #f3f4f6; }
td.num, th.num { text-align: right; }
.dirty { color: #dc2626; font-weight: 600; }
svg { background: #fafafa; border: 1px solid #e5e7eb; }
svg .frame { fill: none; stroke: #d1d5db; }
svg .line { fill: none; stroke-width: 1.6; }
svg .ylab { font: 10px system-ui, sans-serif; text-anchor: end; fill: #6b7280; }
svg .xlab { font: 10px system-ui, sans-serif; text-anchor: middle; fill: #6b7280; }
svg .unit { font: 10px system-ui, sans-serif; fill: #9ca3af; }
svg .dim { opacity: 0.12; }
ul.legend { list-style: none; margin: 6px 0 0; padding: 0; display: flex; flex-wrap: wrap; gap: 2px 14px; font-size: 12px; }
ul.legend li { cursor: default; }
.swatch { display: inline-block; width: 10px; height: 10px; margin-right: 4px; border-radius: 2px; }
p.empty { color: #9ca3af; font-style: italic; }
|css}

(* Legend hover dims every other series in that chart. *)
let script =
  {js|
document.querySelectorAll('ul.legend li').forEach(function (li) {
  var cls = li.getAttribute('data-s');
  var chart = li.closest('section');
  li.addEventListener('mouseenter', function () {
    chart.querySelectorAll('.line, .dot').forEach(function (el) {
      if (!el.classList.contains(cls)) el.classList.add('dim');
    });
  });
  li.addEventListener('mouseleave', function () {
    chart.querySelectorAll('.dim').forEach(function (el) {
      el.classList.remove('dim');
    });
  });
});
|js}

let report records =
  let records =
    List.sort
      (fun (a : Record.t) (b : Record.t) ->
        compare (a.Record.date, a.Record.id) (b.Record.date, b.Record.id))
      records
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n\
     <title>ASMan run registry</title>\n<style>";
  Buffer.add_string buf style;
  Buffer.add_string buf "</style>\n</head>\n<body>\n";
  Buffer.add_string buf
    (Printf.sprintf "<h1>ASMan run registry &mdash; %d run%s</h1>\n"
       (List.length records)
       (if List.length records = 1 then "" else "s"));
  (* Run index. *)
  Buffer.add_string buf
    "<table>\n<tr><th class=\"num\">#</th><th>id</th><th>kind</th>\
     <th>date</th><th>git</th><th class=\"num\">seed</th>\
     <th class=\"num\">scale</th><th>queue</th><th class=\"num\">-j</th>\
     <th class=\"num\">sim-jobs</th><th>topology</th><th>acct</th>\
     <th>chaos</th><th class=\"num\">wall s</th></tr>\n";
  List.iteri
    (fun i (r : Record.t) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td class=\"num\">%d</td><td>%s</td><td>%s</td><td>%s</td>\
            <td>%s</td><td class=\"num\">%Ld</td><td class=\"num\">%g</td>\
            <td>%s</td><td class=\"num\">%d</td><td class=\"num\">%d</td>\
            <td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%.3f</td></tr>\n"
           (i + 1) (esc r.Record.id) (esc r.Record.kind) (esc r.Record.date)
           (short_sha r) r.Record.seed r.Record.scale (esc r.Record.queue)
           r.Record.workers r.Record.sim_jobs
           (esc r.Record.topology)
           (esc r.Record.accounting) (esc r.Record.chaos) r.Record.wall_sec))
    records;
  Buffer.add_string buf "</table>\n";
  List.iteri (fun fi fam -> chart buf fi fam records) families;
  Buffer.add_string buf "<script>";
  Buffer.add_string buf script;
  Buffer.add_string buf "</script>\n</body>\n</html>\n";
  Buffer.contents buf
