(** Minimal JSON reader/writer shared by SimCheck case files and the
    run registry.

    Self-contained (the repo carries no JSON dependency). Integers
    and floats are distinct constructors and floats print losslessly,
    so a spec survives [of_string (to_string spec)] exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?indent:bool -> t -> string
(** [indent] pretty-prints with 2-space indentation (corpus files are
    committed, so keep their diffs readable). *)

val of_string : string -> t
(** Raises {!Parse_error} on malformed input. *)

val member : string -> t -> t option

val get : string -> t -> of_:(t -> 'a) -> 'a
(** [get key obj ~of_] reads and converts a required field. Raises
    {!Parse_error} if absent. *)

val to_int : t -> int
val to_float : t -> float
val to_string_v : t -> string
val to_bool : t -> bool
val to_list : t -> t list
