(* The generalized bench/diff engine. The table format (and the
   verdict semantics on the runs/micro/fairness sections) is carried
   over from the original bench/diff.ml so existing CI gates keep
   their meaning; the check section and strict-sections gating are
   the registry's additions. *)

type thresholds = {
  threshold : float;
  min_wall : float;
  fairness_threshold : float;
  strict_sections : bool;
}

let default =
  { threshold = 25.; min_wall = 0.25; fairness_threshold = 5.;
    strict_sections = false }

type result = { regressions : int; text : string }

(* ----- section extraction ----- *)

let entry_num key v =
  match Cjson.member key v with
  | Some (Cjson.Float f) -> Some f
  | Some (Cjson.Int i) -> Some (float_of_int i)
  | Some _ | None -> None

let entry_str key v =
  match Cjson.member key v with Some (Cjson.String s) -> Some s | _ -> None

let items = function Some (Cjson.List l) -> l | Some _ | None -> []

(* (id, wall_sec) per figure/ablation run. *)
let runs_of r =
  List.filter_map
    (fun run ->
      match (entry_str "id" run, entry_num "wall_sec" run) with
      | Some id, Some w -> Some (id, w)
      | _ -> None)
    (items (Record.section r "runs"))

(* ("bench backend [pN jN] pendingN", ops_per_sec) per micro
   measurement; pcpus/sim_jobs keep PDES sweep points distinct. *)
let micro_of r =
  List.filter_map
    (fun m ->
      match
        ( entry_str "bench" m,
          entry_str "backend" m,
          entry_num "pending" m,
          entry_num "ops_per_sec" m )
      with
      | Some b, Some k, Some p, Some rate ->
        let opt name short =
          match entry_num name m with
          | Some v -> Printf.sprintf " %s%.0f" short v
          | None -> ""
        in
        Some
          ( Printf.sprintf "%s %s%s%s %.0f" b k (opt "pcpus" "p")
              (opt "sim_jobs" "j") p,
            rate )
      | _ -> None)
    (items (Record.section r "micro"))

(* (id, attained/entitled ratio) per theft-figure cell. *)
let fairness_of r =
  List.filter_map
    (fun m ->
      match (entry_str "id" m, entry_num "ratio" m) with
      | Some id, Some ratio -> Some (id, ratio)
      | _ -> None)
    (items (Record.section r "fairness"))

(* (counter, value) per SimCheck health counter. *)
let check_of r =
  List.filter_map
    (fun m ->
      match (entry_str "id" m, entry_num "value" m) with
      | Some id, Some v -> Some (id, v)
      | _ -> None)
    (items (Record.section r "check"))

(* (metric, value) per cluster-run consolidation metric (density,
   p99 stall, migration counters). *)
let cluster_of r =
  List.filter_map
    (fun m ->
      match (entry_str "id" m, entry_num "value" m) with
      | Some id, Some v -> Some (id, v)
      | _ -> None)
    (items (Record.section r "cluster"))

(* ----- comparison ----- *)

(* Guarded for zero baselines (check counters are routinely 0). *)
let pct old fresh =
  if old = 0. then (if fresh = 0. then 0. else Float.infinity)
  else (fresh -. old) /. old *. 100.

(* [regressed ~id old new] decides the verdict for one entry; [gate]
   exempts entries (e.g. runs too short to time reliably). *)
let compare_section buf ~label ~unit ~regressed ?(gate = fun _ -> true)
    old_entries new_entries =
  let regressions = ref 0 in
  let shown = ref false in
  let header () =
    if not !shown then begin
      shown := true;
      Buffer.add_string buf
        (Printf.sprintf "%s (%s):\n  %-28s %12s %12s %9s\n" label unit "entry"
           "old" "new" "delta")
    end
  in
  List.iter
    (fun (id, old_v) ->
      match List.assoc_opt id new_entries with
      | None ->
        header ();
        Buffer.add_string buf
          (Printf.sprintf "  %-28s %12.3f %12s %9s\n" id old_v "-" "gone")
      | Some new_v ->
        let delta = pct old_v new_v in
        let bad = regressed ~id old_v new_v in
        let gated = bad && gate old_v in
        if gated then incr regressions;
        header ();
        Buffer.add_string buf
          (Printf.sprintf "  %-28s %12.3f %12.3f %+8.1f%%%s%s\n" id old_v
             new_v delta
             (if gated then "  <-- REGRESSION" else "")
             (if bad && not (gate old_v) then "  (ungated: too short)" else "")))
    old_entries;
  List.iter
    (fun (id, new_v) ->
      if not (List.mem_assoc id old_entries) then begin
        header ();
        Buffer.add_string buf
          (Printf.sprintf "  %-28s %12s %12.3f %9s\n" id "-" new_v "new")
      end)
    new_entries;
  if !shown then Buffer.add_char buf '\n';
  !regressions

(* A whole section missing from one record is reported; under
   [strict_sections] a *disappeared* section is a regression. *)
let section_presence buf ~strict ~label name old_r new_r =
  match (Record.section old_r name, Record.section new_r name) with
  | None, Some _ ->
    Buffer.add_string buf
      (Printf.sprintf "%s: section added in new record (nothing to compare)\n\n"
         label);
    (false, 0)
  | Some _, None ->
    Buffer.add_string buf
      (Printf.sprintf "%s: section removed in new record%s\n\n" label
         (if strict then "  <-- REGRESSION (--strict-sections)"
          else " (nothing to compare)"));
    (false, if strict then 1 else 0)
  | None, None | Some _, Some _ -> (true, 0)

let describe (r : Record.t) =
  let sha =
    match r.Record.git_sha with
    | Some s ->
      (String.sub s 0 (min 12 (String.length s)))
      ^ (if r.Record.git_dirty then "+dirty" else "")
    | None -> "no-git"
  in
  Printf.sprintf "%s (%s, %s, %s)" r.Record.id r.Record.kind
    (if r.Record.date = "" then "undated" else r.Record.date)
    sha

let records t old_r new_r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "compare: %s -> %s (threshold %.0f%%)\n\n"
       (describe old_r) (describe new_r) t.threshold);
  let strict = t.strict_sections in
  let section ~label ~unit ~name ~regressed ?gate extract =
    let present, missing =
      section_presence buf ~strict ~label name old_r new_r
    in
    missing
    + if present then
        compare_section buf ~label ~unit ~regressed ?gate (extract old_r)
          (extract new_r)
      else 0
  in
  let r1 =
    section ~label:"figure/ablation wall time" ~unit:"sec" ~name:"runs"
      ~regressed:(fun ~id:_ old_v new_v -> pct old_v new_v > t.threshold)
      ~gate:(fun old_v -> old_v >= t.min_wall)
      runs_of
  in
  let r2 =
    section ~label:"event-queue micro throughput" ~unit:"events/sec"
      ~name:"micro"
      ~regressed:(fun ~id:_ old_v new_v -> -.pct old_v new_v > t.threshold)
      micro_of
  in
  (* Deterministic outputs: drift in either direction is a behaviour
     change, not noise, hence the tight symmetric gate. *)
  let r3 =
    section ~label:"fairness (attained/entitled)" ~unit:"ratio"
      ~name:"fairness"
      ~regressed:(fun ~id:_ old_v new_v ->
        Float.abs (pct old_v new_v) > t.fairness_threshold)
      fairness_of
  in
  (* Fuzzer health: counts, not percentages — one new failure or
     timeout is a regression no matter how many cases ran. *)
  let r4 =
    section ~label:"simcheck health" ~unit:"count" ~name:"check"
      ~regressed:(fun ~id old_v new_v ->
        (id = "failures" || id = "timeouts") && new_v > old_v)
      check_of
  in
  (* Cluster runs are seeded and deterministic like the fairness
     figure: consolidation density or tail-stall drift in either
     direction means placement or migration behaviour changed. *)
  let r5 =
    section ~label:"cluster consolidation" ~unit:"value" ~name:"cluster"
      ~regressed:(fun ~id old_v new_v ->
        (String.starts_with ~prefix:"density" id
        || String.starts_with ~prefix:"p99" id)
        && Float.abs (pct old_v new_v) > t.fairness_threshold)
      cluster_of
  in
  if old_r.Record.wall_sec > 0. && new_r.Record.wall_sec > 0. then
    Buffer.add_string buf
      (Printf.sprintf "total wall: %.3f s -> %.3f s (%+.1f%%)\n"
         old_r.Record.wall_sec new_r.Record.wall_sec
         (pct old_r.Record.wall_sec new_r.Record.wall_sec));
  let regressions = r1 + r2 + r3 + r4 + r5 in
  Buffer.add_string buf
    (if regressions > 0 then
       Printf.sprintf "\n%d regression(s) beyond threshold\n" regressions
     else "no regressions beyond threshold\n");
  { regressions; text = Buffer.contents buf }
