(* The registry's record type. Serialization notes: the seed is
   written as a JSON int when it fits 63 bits and as a decimal string
   otherwise, so any int64 round-trips exactly; absent git info is
   "git_sha": null, distinct from a present-but-dirty sha. *)

type t = {
  id : string;
  kind : string;
  date : string;
  git_sha : string option;
  git_dirty : bool;
  seed : int64;
  scale : float;
  queue : string;
  workers : int;
  sim_jobs : int;
  topology : string;
  numa : bool;
  accounting : string;
  chaos : string;
  label : string;
  spec_digest : string;
  wall_sec : float;
  busy_sec : float;
  sections : Cjson.t;
  metrics : (string * float) list;
  exports : string list;
}

(* ----- canonical digest ----- *)

let rec canonicalize (v : Cjson.t) : Cjson.t =
  match v with
  | Cjson.Obj fields ->
    Cjson.Obj
      (List.sort
         (fun (a, _) (b, _) -> compare a b)
         (List.map (fun (k, x) -> (k, canonicalize x)) fields))
  | Cjson.List items -> Cjson.List (List.map canonicalize items)
  | v -> v

let canonical_digest v =
  Digest.to_hex (Digest.string (Cjson.to_string (canonicalize v)))

(* ----- construction ----- *)

let make ~id ~kind ?date ?git ~seed ~scale ~queue ~workers ?(sim_jobs = 1)
    ?(topology = "") ?(numa = false) ?(accounting = "precise")
    ?(chaos = "none") ~label ~spec ~wall_sec ?(busy_sec = 0.)
    ?(sections = Cjson.Obj []) ?(metrics = []) ?(exports = []) () =
  let date = match date with Some d -> d | None -> Meta.timestamp () in
  let git = match git with Some g -> g | None -> Meta.git_info () in
  let git_sha, git_dirty =
    match git with Some (sha, dirty) -> (Some sha, dirty) | None -> (None, false)
  in
  {
    id; kind; date; git_sha; git_dirty; seed; scale; queue; workers;
    sim_jobs; topology; numa; accounting; chaos; label;
    spec_digest = canonical_digest spec; wall_sec; busy_sec; sections;
    metrics; exports;
  }

(* ----- JSON ----- *)

let seed_json s =
  if Int64.of_int (Int64.to_int s) = s then Cjson.Int (Int64.to_int s)
  else Cjson.String (Int64.to_string s)

let seed_of_json = function
  | Cjson.Int i -> Int64.of_int i
  | Cjson.String s -> (
    match Int64.of_string_opt s with
    | Some v -> v
    | None -> raise (Cjson.Parse_error "bad seed"))
  | Cjson.Float f when Float.is_integer f -> Int64.of_float f
  | _ -> raise (Cjson.Parse_error "bad seed")

let to_json r =
  Cjson.Obj
    [
      ("record", Cjson.Int 1);
      ("id", Cjson.String r.id);
      ("kind", Cjson.String r.kind);
      ("date", Cjson.String r.date);
      ( "git_sha",
        match r.git_sha with Some s -> Cjson.String s | None -> Cjson.Null );
      ("git_dirty", Cjson.Bool r.git_dirty);
      ("seed", seed_json r.seed);
      ("scale", Cjson.Float r.scale);
      ("queue", Cjson.String r.queue);
      ("workers", Cjson.Int r.workers);
      ("sim_jobs", Cjson.Int r.sim_jobs);
      ("topology", Cjson.String r.topology);
      ("numa", Cjson.Bool r.numa);
      ("accounting", Cjson.String r.accounting);
      ("chaos", Cjson.String r.chaos);
      ("label", Cjson.String r.label);
      ("spec_digest", Cjson.String r.spec_digest);
      ("wall_sec", Cjson.Float r.wall_sec);
      ("busy_sec", Cjson.Float r.busy_sec);
      ("sections", r.sections);
      ( "metrics",
        Cjson.Obj (List.map (fun (k, v) -> (k, Cjson.Float v)) r.metrics) );
      ("exports", Cjson.List (List.map (fun p -> Cjson.String p) r.exports));
    ]

let is_record v =
  match Cjson.member "record" v with Some (Cjson.Int _) -> true | _ -> false

let opt_string key v ~default =
  match Cjson.member key v with
  | Some (Cjson.String s) -> s
  | Some _ | None -> default

let opt_float key v ~default =
  match Cjson.member key v with
  | Some (Cjson.Float f) -> f
  | Some (Cjson.Int i) -> float_of_int i
  | Some _ | None -> default

let opt_int key v ~default =
  match Cjson.member key v with
  | Some (Cjson.Int i) -> i
  | Some _ | None -> default

let opt_bool key v ~default =
  match Cjson.member key v with
  | Some (Cjson.Bool b) -> b
  | Some _ | None -> default

let of_json v =
  if not (is_record v) then
    raise (Cjson.Parse_error "not a registry record (no \"record\" field)");
  let req key = Cjson.get key v ~of_:Cjson.to_string_v in
  {
    id = req "id";
    kind = req "kind";
    date = req "date";
    git_sha =
      (match Cjson.member "git_sha" v with
      | Some (Cjson.String s) -> Some s
      | Some Cjson.Null | None -> None
      | Some _ -> raise (Cjson.Parse_error "bad git_sha"));
    git_dirty = opt_bool "git_dirty" v ~default:false;
    seed = Cjson.get "seed" v ~of_:seed_of_json;
    scale = opt_float "scale" v ~default:1.;
    queue = opt_string "queue" v ~default:"wheel";
    workers = opt_int "workers" v ~default:1;
    sim_jobs = opt_int "sim_jobs" v ~default:1;
    topology = opt_string "topology" v ~default:"";
    numa = opt_bool "numa" v ~default:false;
    accounting = opt_string "accounting" v ~default:"precise";
    chaos = opt_string "chaos" v ~default:"none";
    label = opt_string "label" v ~default:"";
    spec_digest = opt_string "spec_digest" v ~default:"";
    wall_sec = opt_float "wall_sec" v ~default:0.;
    busy_sec = opt_float "busy_sec" v ~default:0.;
    sections =
      (match Cjson.member "sections" v with
      | Some (Cjson.Obj _ as s) -> s
      | Some _ | None -> Cjson.Obj []);
    metrics =
      (match Cjson.member "metrics" v with
      | Some (Cjson.Obj fields) ->
        List.map (fun (k, x) -> (k, Cjson.to_float x)) fields
      | Some _ | None -> []);
    exports =
      (match Cjson.member "exports" v with
      | Some (Cjson.List items) -> List.map Cjson.to_string_v items
      | Some _ | None -> []);
  }

let section r name = Cjson.member name r.sections
