(** Self-contained HTML trend report over a registry.

    One [asman report] page renders, for every run in the registry in
    date order: the run index (identity, config axes, wall time) and
    a trend chart per metric family — figure/ablation wall time,
    event-queue and PDES micro throughput, fairness
    attained/entitled ratios, and SimCheck health counts.

    The output is a single file with inline CSS, inline JS and inline
    SVG only: no external network or file references of any kind
    (no [<link>], no [src=], no [url(...)]), so the artifact can be
    archived or attached to CI and opened anywhere. *)

val report : Record.t list -> string
(** Deterministic: the same records (in any order — they are sorted
    by date then id) produce byte-identical HTML. *)
