(* runs/ directory management. Records are pretty-printed JSON (they
   are occasionally committed or diffed by hand) named by their id. *)

let dir () =
  match Sys.getenv_opt "ASMAN_RUNS" with
  | Some "" -> None
  | Some d -> Some d
  | None -> Some "runs"

let id_counter = ref 0

let fresh_id ~kind =
  let tm = Unix.localtime (Unix.time ()) in
  let stamp =
    Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  incr id_counter;
  let base = Printf.sprintf "%s-%s-%d" stamp kind (Unix.getpid ()) in
  if !id_counter = 1 then base else Printf.sprintf "%s-%d" base !id_counter

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let ensure_dir = mkdir_p

let save ?dir:d (r : Record.t) =
  let d =
    match d with
    | Some d -> d
    | None -> (
      match dir () with
      | Some d -> d
      | None -> invalid_arg "Registry.save: recording disabled (ASMAN_RUNS=)")
  in
  mkdir_p d;
  let path = Filename.concat d (r.Record.id ^ ".json") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Cjson.to_string ~indent:true (Record.to_json r)));
  path

let save_if_enabled r =
  match dir () with None -> None | Some d -> Some (save ~dir:d r)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let load path = Record.of_json (Cjson.of_string (read_file path))

let list ?dir:d () =
  let d = match d with Some d -> d | None -> Option.value (dir ()) ~default:"runs" in
  let files = try Sys.readdir d with Sys_error _ -> [||] in
  let records =
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.filter_map (fun f ->
           match load (Filename.concat d f) with
           | r -> Some r
           | exception (Cjson.Parse_error _ | Sys_error _) -> None)
  in
  List.sort
    (fun (a : Record.t) (b : Record.t) ->
      compare (a.Record.date, a.Record.id) (b.Record.date, b.Record.id))
    records

(* ----- raw BENCH_*.json back-compat ----- *)

let ingest_bench ?(id = "bench-ingest") v =
  let str key default =
    match Cjson.member key v with
    | Some (Cjson.String s) -> s
    | Some _ | None -> default
  in
  let num key default =
    match Cjson.member key v with
    | Some (Cjson.Float f) -> f
    | Some (Cjson.Int i) -> float_of_int i
    | Some _ | None -> default
  in
  let int key default = int_of_float (num key (float_of_int default)) in
  let bool key default =
    match Cjson.member key v with
    | Some (Cjson.Bool b) -> b
    | Some _ | None -> default
  in
  let sections =
    Cjson.Obj
      (List.filter_map
         (fun name ->
           match Cjson.member name v with
           | Some s -> Some (name, s)
           | None -> None)
         [ "runs"; "micro"; "fairness"; "check" ])
  in
  let seed =
    match Cjson.member "seed" v with
    | Some (Cjson.Int i) -> Int64.of_int i
    | Some (Cjson.Float f) -> Int64.of_float f
    | Some (Cjson.String s) -> Option.value (Int64.of_string_opt s) ~default:0L
    | Some _ | None -> 0L
  in
  Record.make ~id ~kind:"bench"
    ~date:(str "date" "")
    ~git:
      (match Cjson.member "git_sha" v with
      | Some (Cjson.String sha) -> Some (sha, bool "git_dirty" false)
      | Some _ | None -> None)
    ~seed ~scale:(num "scale" 1.)
    ~queue:(str "queue" "wheel")
    ~workers:(int "workers" 1) ~sim_jobs:(int "sim_jobs" 1)
    ~topology:(str "topology" "") ~numa:(bool "numa" false)
    ~accounting:(str "accounting" "precise")
    ~label:("ingested " ^ id) ~spec:v
    ~wall_sec:(num "total_wall_sec" 0.)
    ~sections ()

let resolve ?dir:d s =
  let parse path =
    let v = Cjson.of_string (read_file path) in
    if Record.is_record v then Record.of_json v
    else
      ingest_bench
        ~id:(Filename.remove_extension (Filename.basename path))
        v
  in
  if Sys.file_exists s && not (Sys.is_directory s) then parse s
  else begin
    let d =
      match d with Some d -> d | None -> Option.value (dir ()) ~default:"runs"
    in
    let candidate = Filename.concat d (s ^ ".json") in
    if Sys.file_exists candidate then parse candidate
    else
      raise
        (Sys_error
           (Printf.sprintf "%s: not a file, and %s does not exist" s candidate))
  end
