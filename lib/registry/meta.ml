(* Environment capture: git identity and timestamps. Shelling out to
   git happens at most twice per process (sha + dirty) and never on a
   simulation path. *)

let command_line cmd =
  (* [Unix.open_process_in] goes through /bin/sh; 2>/dev/null keeps
     "not a git repository" noise off the user's terminal. *)
  match Unix.open_process_in (cmd ^ " 2>/dev/null") with
  | exception Unix.Unix_error _ -> None
  | ic ->
    let line = In_channel.input_line ic in
    let status = Unix.close_process_in ic in
    (match (status, line) with
    | Unix.WEXITED 0, Some l when String.trim l <> "" -> Some (String.trim l)
    | _ -> None)

let git_cache = ref None

let git_info () =
  match !git_cache with
  | Some info -> info
  | None ->
    let info =
      match command_line "git rev-parse HEAD" with
      | None -> None
      | Some sha ->
        (* `git status --porcelain` prints nothing when clean; a
           first line means tracked or untracked changes. Restrict to
           tracked files (-uno): scratch outputs in the tree should
           not mark a run dirty. *)
        let dirty =
          command_line "git status --porcelain -uno" <> None
        in
        Some (sha, dirty)
    in
    git_cache := Some info;
    info

let timestamp () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let date () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday
