(* Minimal JSON: just enough for SimCheck case files and run-registry
   records. No external
   dependency (the repo has none to offer); integers and floats kept
   distinct so specs round-trip exactly ([%.17g] is lossless for
   IEEE doubles). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ----- printing ----- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec write b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | String s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char b ',';
          nl ()
        end;
        pad (level + 1);
        write b ~indent ~level:(level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    nl ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          nl ()
        end;
        pad (level + 1);
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\": ";
        write b ~indent ~level:(level + 1) item)
      fields;
    nl ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 256 in
  write b ~indent ~level:0 v;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

(* ----- parsing ----- *)

type cursor = { s : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if c.pos >= String.length c.s then fail c "unterminated escape";
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
         let hex = String.sub c.s c.pos 4 in
         c.pos <- c.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail c "bad \\u escape"
         in
         (* Case files are ASCII; encode BMP points as UTF-8. *)
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> fail c "bad escape");
      go ()
    | ch ->
      Buffer.add_char b ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  if tok = "" then fail c "expected number";
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') tok then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value c :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          go ()
        | Some ']' -> c.pos <- c.pos + 1
        | _ -> fail c "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          go ()
        | Some '}' -> c.pos <- c.pos + 1
        | _ -> fail c "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ----- accessors ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get key v ~of_ =
  match member key v with
  | Some x -> of_ x
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" key))

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> raise (Parse_error "expected int")

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> raise (Parse_error "expected number")

let to_string_v = function
  | String s -> s
  | _ -> raise (Parse_error "expected string")

let to_bool = function
  | Bool b -> b
  | _ -> raise (Parse_error "expected bool")

let to_list = function
  | List l -> l
  | _ -> raise (Parse_error "expected array")
