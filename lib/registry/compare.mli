(** The cross-run regression engine behind [asman compare] and
    [bench/diff.exe]: one verdict machine covering performance
    (figure/ablation wall time, micro throughput), fairness
    (attained/entitled ratios) and fuzzer health (SimCheck counts).

    Verdict rules, per section:
    - [runs] — wall time; a regression is growth beyond
      [threshold]%, exempting entries whose old wall time is under
      [min_wall] seconds (scheduler noise).
    - [micro] — throughput; a regression is shrinkage beyond
      [threshold]%.
    - [fairness] — deterministic simulator outputs; drift beyond
      [fairness_threshold]% in {e either} direction is a regression.
    - [check] — fuzzer health; any increase of [failures] or
      [timeouts] is a regression, other counters are reported only.
    - [cluster] — deterministic cluster-run outputs; [density*] and
      [p99*] entries drifting beyond [fairness_threshold]% in either
      direction are regressions, migration counters are reported
      only.

    Entries present on only one side are reported, never gated. A
    whole section missing from one side is likewise reported — unless
    [strict_sections] is set, in which case a section that {e
    disappeared} (present in old, absent in new) is itself a
    regression: a broken suite must not pass by emitting fewer
    sections. *)

type thresholds = {
  threshold : float;  (** percent, wall time and micro throughput *)
  min_wall : float;  (** seconds; shorter old runs are not gated *)
  fairness_threshold : float;  (** percent, symmetric *)
  strict_sections : bool;
}

val default : thresholds
(** 25% / 0.25 s / 5% / lax sections — the historical
    [scripts/bench_diff] defaults. *)

type result = {
  regressions : int;  (** entries (or sections) past their gate *)
  text : string;  (** the printable comparison tables *)
}

val records : thresholds -> Record.t -> Record.t -> result
(** Compare old vs new. Works on any two records, including raw
    [BENCH_*.json] dumps ingested via {!Registry.ingest_bench} —
    on those it reproduces the historical [bench/diff.exe]
    verdicts exactly. *)

(** {2 Section extractors (shared with the HTML report and tests)} *)

val runs_of : Record.t -> (string * float) list
(** (figure id, wall seconds). *)

val micro_of : Record.t -> (string * float) list
(** (["bench backend [pN jN] pending"], events/sec). *)

val fairness_of : Record.t -> (string * float) list
(** (theft cell id, attained/entitled ratio). *)

val check_of : Record.t -> (string * float) list
(** (SimCheck counter, value). *)

val cluster_of : Record.t -> (string * float) list
(** (cluster consolidation metric, value). *)
