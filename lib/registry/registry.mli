(** The on-disk run registry: a directory ([runs/] by default) of one
    JSON record per invocation.

    The directory is chosen by [$ASMAN_RUNS] — unset means [runs/],
    the empty string disables recording entirely. Writing a record is
    observation-only: it happens after the simulation finished and
    never touches simulator state. *)

val dir : unit -> string option
(** Resolved registry directory, or [None] when recording is
    disabled ([ASMAN_RUNS=""]). *)

val ensure_dir : string -> unit
(** [mkdir -p], for callers that park other run state (e.g. the
    bench cost cache) next to the records. *)

val fresh_id : kind:string -> string
(** A unique record id: timestamp + kind + pid (+ a per-process
    counter when one process records twice in a second). *)

val save : ?dir:string -> Record.t -> string
(** Write the record as [<dir>/<id>.json] (creating the directory)
    and return the path. [dir] defaults to {!dir} and raises
    [Invalid_argument] when recording is disabled. *)

val save_if_enabled : Record.t -> string option
(** {!save} into {!dir}, or [None] when disabled. *)

val load : string -> Record.t
(** Parse one record file. Raises {!Cjson.Parse_error} / [Sys_error]. *)

val list : ?dir:string -> unit -> Record.t list
(** Every parseable record in the directory, sorted by (date, id).
    Non-record files (e.g. [cost_cache]) are skipped. An absent
    directory is an empty registry. *)

val ingest_bench : ?id:string -> Cjson.t -> Record.t
(** Convert a raw [BENCH_*.json] dump (bench/main.ml [--json]) into a
    record, losslessly: its [runs]/[micro]/[fairness] sections are
    kept verbatim, and the sha/accounting/sim-jobs/topology stamps
    are read when the dump carries them (older dumps default). *)

val resolve : ?dir:string -> string -> Record.t
(** Accept a run id (looked up in the registry directory), a path to
    a record file, or a path to a raw [BENCH_*.json] dump (ingested
    for back-compat). Raises [Sys_error] when nothing matches. *)
