(** One run-registry record: the metadata-stamped result of a single
    [run]/[experiment]/[bench]/[check]/[theft] invocation.

    A record carries (a) the invocation's identity — git sha + dirty
    flag, seed, scale, queue backend, workers, [--sim-jobs],
    topology, accounting mode, chaos profile, and a canonical digest
    of the invocation spec; (b) wall/busy timings; (c) bench-style
    metric {e sections} ([runs]/[micro]/[fairness]/[check] — the same
    shapes as a [BENCH_*.json] dump, so old files ingest losslessly);
    (d) a flat key-metric snapshot; and (e) pointers to any Obs
    exports written alongside the run.

    Records survive [of_json (to_json r)] exactly, and
    {!canonical_digest} is invariant under object-field reordering
    (objects are digested with sorted keys). *)

type t = {
  id : string;  (** registry filename stem, unique per invocation *)
  kind : string;  (** run | experiment | bench | check | theft *)
  date : string;  (** local ["YYYY-MM-DDTHH:MM:SS"] *)
  git_sha : string option;
  git_dirty : bool;
  seed : int64;
  scale : float;
  queue : string;  (** event-queue backend name *)
  workers : int;  (** Pool worker domains *)
  sim_jobs : int;
  topology : string;  (** ["SxC"] *)
  numa : bool;
  accounting : string;
  chaos : string;  (** fault profile name; ["none"] when clean *)
  label : string;  (** human summary: figure ids, VM list, ... *)
  spec_digest : string;  (** {!canonical_digest} of the invocation spec *)
  wall_sec : float;
  busy_sec : float;
  sections : Cjson.t;  (** [Obj] of bench-style metric sections *)
  metrics : (string * float) list;  (** flat key-metric snapshot *)
  exports : string list;  (** paths of Obs trace/metrics exports *)
}

val make :
  id:string ->
  kind:string ->
  ?date:string ->
  ?git:(string * bool) option ->
  seed:int64 ->
  scale:float ->
  queue:string ->
  workers:int ->
  ?sim_jobs:int ->
  ?topology:string ->
  ?numa:bool ->
  ?accounting:string ->
  ?chaos:string ->
  label:string ->
  spec:Cjson.t ->
  wall_sec:float ->
  ?busy_sec:float ->
  ?sections:Cjson.t ->
  ?metrics:(string * float) list ->
  ?exports:string list ->
  unit ->
  t
(** [date] defaults to {!Meta.timestamp}, [git] to {!Meta.git_info};
    [spec_digest] is computed from [spec]. *)

val to_json : t -> Cjson.t
val of_json : Cjson.t -> t
(** Raises {!Cjson.Parse_error} on a malformed record. *)

val canonical_digest : Cjson.t -> string
(** Hex MD5 of the value's canonical form: object fields sorted
    recursively, compact printing — stable across field reordering
    and whitespace. *)

val section : t -> string -> Cjson.t option
(** [section r "runs"] — one bench-style section, when present. *)

val is_record : Cjson.t -> bool
(** Distinguishes a registry record from a raw [BENCH_*.json] dump. *)
