(** Invocation environment capture for run records.

    Everything here is best-effort and observation-only: a build
    without git (or a run outside a work tree) records no sha rather
    than failing, and nothing in this module may perturb the
    simulation. *)

val git_info : unit -> (string * bool) option
(** [(sha, dirty)] of the current work tree's HEAD, or [None] when
    git or the repository is unavailable. [dirty] is true when
    tracked files have uncommitted changes. Cached after the first
    call (one process = one invocation = one tree state). *)

val timestamp : unit -> string
(** Local time as ["YYYY-MM-DDTHH:MM:SS"]. *)

val date : unit -> string
(** Local date as ["YYYY-MM-DD"] (the historical BENCH stamp). *)
