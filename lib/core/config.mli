(** Simulation configuration: one record gathering every knob of the
    reproduction (machine, scheduler, guest, workload scale). *)

type sched_kind =
  | Credit  (** baseline Xen Credit scheduler *)
  | Asman  (** adaptive dynamic coscheduling (the paper) *)
  | Cosched_static  (** static coscheduling, the CON baseline *)
  | Asman_oov
      (** ASMan with out-of-VM VCRD detection via pause-loop exits —
          the paper's §7 future work; needs no guest modification *)
  | Custom of string * Sim_vmm.Sched_intf.maker
      (** named custom scheduler (ablation studies) *)

val sched_name : sched_kind -> string
val sched_of_name : string -> sched_kind option
val sched_maker : sched_kind -> Sim_vmm.Sched_intf.maker

type obs = {
  trace_mask : int;
      (** {!Sim_obs.Trace} category mask armed on the scenario's
          engine trace; 0 = tracing off (the default; no events are
          allocated, figure outputs stay byte-identical) *)
  trace_cap : int;  (** trace ring capacity when armed *)
  metrics : bool;  (** collect/export a metrics snapshot after runs *)
  profile : Sim_obs.Prof.t option;
      (** wall-clock self-profiler charged by {!Runner} sections *)
  hub : bool;
      (** register the scenario in {!Obs_hub} for export when
          {!obs_wanted} (default). SimCheck builds thousands of traced
          scenarios per run and turns this off. *)
}

val obs_off : obs
(** Everything off — the default; simulation results are identical
    to a build without the observability layer. *)

type t = {
  seed : int64;
  cpu : Sim_hw.Cpu_model.t;
  topology : Sim_hw.Topology.t;
  stagger : bool;  (** per-PCPU slot phase skew (realistic: on) *)
  work_conserving : bool;
  credit_unit : int;
  guest_params : Sim_guest.Kernel.params option;  (** [None] = defaults *)
  monitor_report : bool;  (** guests issue VCRD hypercalls *)
  scale : float;  (** global workload scale factor *)
  faults : Sim_faults.Fault.profile;  (** chaos profile ([none] = clean run) *)
  invariants : Sim_vmm.Vmm.invariant_mode;
      (** runtime invariant checking (default [Record]: violations are
          counted but never change scheduling, so clean runs stay
          byte-identical to a checker-free build) *)
  watchdog : bool option;
      (** arm the gang coscheduling watchdog; [None] (default) arms it
          exactly when [faults] is a real profile, so fault-free runs
          carry no watchdog events *)
  engine_queue : Sim_engine.Engine.queue_kind option;
      (** event-queue backend for this scenario's engine; [None]
          (default) uses the process-wide default (the
          [--engine-queue] flag). SimCheck pins it per case so a
          differential rerun needs no global state. *)
  sim_jobs : int;
      (** [--sim-jobs]: shards for the engine's coupled-mode sharding
          ledger (clamped to the PCPU count). 1 — the default — leaves
          the ledger unarmed. Any value produces scheduler-visible
          outcomes byte-identical to 1: the ledger attributes and
          measures, it never reorders. *)
  decouple : bool;
      (** [--decouple]: run the scenario as [sim_jobs] decoupled
          sub-hosts on the windowed PDES fabric ({!Decouple}) instead
          of arming the coupled-mode ledger. Default off: the single
          sequential engine, byte-identical to earlier builds. *)
  numa : bool;
      (** arm the NUMA host model (same-socket steal preference,
          cross-socket relocation penalty). Default off: flat-host
          behaviour, byte-identical to earlier builds. *)
  accounting : Sim_vmm.Vmm.accounting;
      (** credit-accounting discipline ([--accounting]). [Precise]
          (default) charges span-exact cycles — byte-identical to
          earlier builds. [Sampled] reproduces Xen's periodic-tick
          debiting, the surface the Zhou et al. tick-dodging attack
          exploits. *)
  obs : obs;  (** observability options (default {!obs_off}) *)
}

val default : t
(** The paper's testbed: 8 PCPUs at 2.33 GHz, staggered 10 ms slots,
    30 ms accounting, reporting guests, scale 0.25 (workloads shrunk
    4x for simulation speed; all reported metrics are ratios or
    rates, which scale out). *)

val with_scale : t -> float -> t
val with_seed : t -> int64 -> t
val with_work_conserving : t -> bool -> t
val with_faults : t -> Sim_faults.Fault.profile -> t

val watchdog_enabled : t -> bool
(** Resolve the [watchdog] option against the fault profile. *)

val obs_wanted : t -> bool
(** Tracing armed or metrics collection requested. *)

val guest_params : t -> Sim_guest.Kernel.params
(** The explicit guest params, or defaults derived from [cpu]. *)

val freq : t -> Sim_engine.Units.freq
val pcpus : t -> int
