(** The per-figure experiment registry.

    One entry per figure of the paper's evaluation (Figures 1, 2 and
    7–12). Each entry regenerates the figure's data as
    {!Sim_stats.Series.t} values and carries the paper's own numbers
    (digitized from the published figures) for side-by-side
    comparison. Absolute run times are simulator-scale; the
    reproduction target is the {e shape}: orderings, ratios and
    trends, summarized in each outcome's notes. *)

type outcome = {
  series : Sim_stats.Series.t list;  (** measured *)
  expected : Sim_stats.Series.t list;  (** digitized from the paper *)
  notes : string list;  (** shape checks and caveats *)
}

type t = {
  id : string;  (** e.g. "fig7" *)
  title : string;
  description : string;
  run : Config.t -> outcome;
}

val all : t list
(** In paper order: fig1a fig1b fig2 fig7 fig8 fig9 fig10 fig11a
    fig11b fig12a fig12b. *)

val find : string -> t option

val ids : unit -> string list

(** {2 Shared building blocks (exposed for the CLI and tests)} *)

val online_rate_points : (int * float) list
(** (weight, expected online rate %) for V1 with 4 VCPUs next to an
    8-VCPU weight-256 Dom0: 256 -> 100, 128 -> 66.7, 64 -> 40,
    32 -> 22.2 (Equations 1-2). *)

val nas_runtime :
  Config.t ->
  sched:Config.sched_kind ->
  bench:Sim_workloads.Nas.bench ->
  weight:int ->
  float
(** Run one NAS benchmark alone in V1 (non-work-conserving, §5.2) and
    return its run time in simulated seconds. *)

val fairness_entries : outcome -> (string * float) list
(** Flatten the theft figure's outcome into
    [("<series label> <attack>", attained/entitled ratio)] cells —
    the ["fairness"] section of bench dumps and registry records.
    (Meaningful on the [theft] outcome; other outcomes produce
    entries keyed by their own series labels.) *)

val wait_bucket_counts :
  Sim_guest.Monitor.t -> (string * int) list
(** Counts of monitored waits in the paper's bands: [>=2^10],
    [>=2^15], [>=2^20] (over-threshold), [>=2^25]. *)
