(** Execute scenarios and collect the paper's metrics.

    Two measurement protocols, mirroring §5:
    - {!run_rounds}: advance until every workload VM has completed a
      number of full rounds of its program (run-time experiments;
      "VM round k" completes when the slowest thread finishes pass k).
    - {!run_window}: advance for a fixed simulated wall window
      (throughput and spinlock-trace experiments — the paper's
      30-second observation).

    Counters are read through the scenario's {!Sim_obs.Metrics}
    registry: the baseline is one snapshot taken at measurement
    start and windowed values are a snapshot diff (no per-counter
    side tables). When [config.obs.profile] installs a profiler,
    the [engine.run] and [collect] phases are charged to it. *)

type vm_metrics = {
  vm_name : string;
  rounds : int;  (** completed VM rounds *)
  round_sec : float list;  (** duration of each completed VM round *)
  marks : int;  (** [Mark]s executed during the measurement *)
  online_rate : float;  (** measured over the run *)
  expected_online : float;  (** Equation (2) *)
  attained_cycles : int;  (** VCPU-online cycles over the measurement *)
  entitled_cycles : int;
      (** Equation (2) share of the measurement window, in cycles *)
  theft_cycles : int;
      (** [max 0 (attained - entitled)] — cycles attained beyond the
          weighted entitlement (see {!Sim_vmm.Vmm.theft_cycles}) *)
  spin_over_threshold : int;
  adjusting_events : int;
  vcrd_transitions : int;
  total_spin_sec : float;
  watchdog_demotions : int;
      (** gang-watchdog demotions of this VM during the measurement *)
  invariant_violations : int;
      (** runtime invariant violations attributed to this VM during
          the measurement *)
}

type metrics = {
  vms : vm_metrics list;
  by_name : (string, vm_metrics) Hashtbl.t;
      (** index of [vms] by VM name, for O(1) {!vm_metrics} lookups *)
  wall_sec : float;  (** simulated time elapsed during the measurement *)
  events_fired : int;  (** engine events during the measurement *)
  ipis : int;  (** IPIs sent during the measurement *)
  ctx_switches : int;  (** context switches during the measurement *)
  invariant_violations : int;
      (** runtime invariant violations recorded during the measurement
          (0 unless the config enables checking and something broke) *)
  sched_counters : (string * int) list;
      (** scheduler health counters (gang watchdog), cumulative *)
  fault_stats : (string * int) list;
      (** injector tallies, cumulative; [[]] on clean runs *)
}

val run_rounds :
  ?probe:float * (Scenario.t -> unit) ->
  Scenario.t ->
  rounds:int ->
  max_sec:float ->
  metrics
(** Run until every workload VM completes [rounds] rounds, or the
    simulated clock advances [max_sec] past the start.

    [?probe:(every_sec, f)] is the oracle hook point: [f scenario]
    fires every [every_sec] simulated seconds while the run is in
    flight (SimCheck's mid-run invariant sweeps), and the chain is
    stopped when the run returns. Probes must only observe. *)

val run_window :
  ?probe:float * (Scenario.t -> unit) -> Scenario.t -> sec:float -> metrics
(** Reset measurement state (monitor windows, marks, online
    accounting), run exactly [sec] simulated seconds, then collect.
    [?probe] as in {!run_rounds}. *)

val first_round_sec : metrics -> vm:string -> float
(** Duration of the VM's first round. Raises [Failure] if it never
    completed one (increase [max_sec]). *)

val mean_round_sec : metrics -> vm:string -> float

val vm_metrics : metrics -> vm:string -> vm_metrics

val metrics_kv : metrics -> (string * float) list
(** Flatten a metrics record into (key, value) pairs for a
    run-registry snapshot: the global counters plus, per VM,
    rounds / online rate / attained / entitled / theft cycles.
    Pure observation — reads the record, touches nothing. *)

val monitor_of : Scenario.t -> vm:string -> Sim_guest.Monitor.t
(** The VM's Monitoring Module (histograms and traces survive the
    run). Raises [Invalid_argument] for an idle VM. *)
