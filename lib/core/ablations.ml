open Sim_stats

type t = {
  id : string;
  title : string;
  description : string;
  run : Config.t -> Experiments.outcome;
}

let note fmt = Printf.ksprintf (fun s -> s) fmt

(* All ablations measure LU on a single capped VM — the paper's
   headline scenario — unless stated otherwise. *)
let lu_runtime config ~sched ~weight =
  Experiments.nas_runtime config ~sched ~bench:Sim_workloads.Nas.LU ~weight

let lu_baseline config = lu_runtime config ~sched:Config.Credit ~weight:256

(* Fan a list of named runs out over Pool worker domains: every thunk
   builds its own scenario from an immutable Config, so runs are
   independent jobs whose results fold back in input order. *)
let par_runs runs =
  List.combine (List.map fst runs)
    (Pool.map (fun thunk -> thunk ()) (List.map snd runs))

(* Prepend the 100%-online Credit baseline to the fan-out so it runs
   as one more parallel job, then hand [k] the base and the variants. *)
let with_baseline config runs k =
  match par_runs (("baseline", fun () -> lu_baseline config) :: runs) with
  | (_, base) :: variants -> k base variants
  | [] -> assert false

let slowdown_series ~base ~label runs =
  Series.make ~label ~x_name:"variant index" ~y_name:"slowdown vs 100%"
    (List.mapi (fun i (_, t) -> (float_of_int i, t /. base)) runs)

let variant_note runs =
  note "variants: %s"
    (String.concat ", "
       (List.mapi (fun i (name, _) -> Printf.sprintf "%d=%s" i name) runs))

(* ----- gang mechanisms ----- *)

let gang_variant ?ipi ?solidarity ?continuity name =
  Config.Custom
    ( name,
      Sim_vmm.Sched_gang.make ?ipi ?solidarity ?continuity ~name
        ~should_cosched:(fun d -> d.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High) )

let ablate_gang config =
  let variants =
    List.map
      (fun (name, sched) ->
        (name, fun () -> lu_runtime config ~sched ~weight:32))
      [
        ("credit", Config.Credit);
        ("asman (all on)", Config.Asman);
        ("no IPI dispatch", gang_variant ~ipi:false "asman-noipi");
        ("no solidarity", gang_variant ~solidarity:false "asman-nosolid");
        ("no continuity", gang_variant ~continuity:false "asman-nocont");
      ]
  in
  with_baseline config variants @@ fun base runs ->
  {
    Experiments.series = [ slowdown_series ~base ~label:"LU @22.2%" runs ];
    expected = [];
    notes =
      [
        variant_note runs;
        "each gang mechanism (IPI dispatch, credit solidarity, slice \
         continuity) should contribute; removing any moves ASMan back \
         toward the Credit baseline";
      ];
  }

(* ----- per-PCPU phase stagger ----- *)

let ablate_stagger config =
  let run ~stagger ~sched () =
    lu_runtime { config with Config.stagger } ~sched ~weight:32
  in
  let variants =
    [
      ("credit, staggered", run ~stagger:true ~sched:Config.Credit);
      ("credit, aligned", run ~stagger:false ~sched:Config.Credit);
      ("asman, staggered", run ~stagger:true ~sched:Config.Asman);
      ("asman, aligned", run ~stagger:false ~sched:Config.Asman);
    ]
  in
  with_baseline config variants @@ fun base runs ->
  {
    Experiments.series = [ slowdown_series ~base ~label:"LU @22.2%" runs ];
    expected = [];
    notes =
      [
        variant_note runs;
        "per-PCPU timer skew is a root cause of sibling-VCPU \
         de-synchronization: aligning all slot clocks should soften the \
         Credit degradation while barely moving ASMan";
      ];
  }

(* ----- guest spin grace ----- *)

let ablate_grace config =
  let freq = Config.freq config in
  let config_for grace_ms =
    let gp = Config.guest_params config in
    let gp =
      { gp with Sim_guest.Kernel.spin_grace = Sim_engine.Units.cycles_of_ms freq grace_ms }
    in
    { config with Config.guest_params = Some gp }
  in
  let graces = [ 1; 5; 10; 20; 50 ] in
  (* Three jobs per grace value: Credit@22.2%, ASMan@22.2% and the
     100% baseline (all under that grace), 15 jobs in one fan-out. *)
  let times =
    Pool.map
      (fun thunk -> thunk ())
      (List.concat_map
         (fun g ->
           let c = config_for g in
           [
             (fun () -> lu_runtime c ~sched:Config.Credit ~weight:32);
             (fun () -> lu_runtime c ~sched:Config.Asman ~weight:32);
             (fun () -> lu_baseline c);
           ])
         graces)
  in
  let rec fold_triples gs ts =
    match (gs, ts) with
    | g :: gs', credit :: asman :: base :: ts' ->
      (g, (credit /. base, asman /. base)) :: fold_triples gs' ts'
    | [], [] -> []
    | _ -> assert false
  in
  let points = fold_triples graces times in
  let series label pick =
    Series.make ~label ~x_name:"spin grace (ms)" ~y_name:"slowdown vs 100%"
      (List.map (fun (g, pair) -> (float_of_int g, pick pair)) points)
  in
  {
    Experiments.series =
      [ series "Credit LU @22.2%" fst; series "ASMan LU @22.2%" snd ];
    expected = [];
    notes =
      [
        "the guest's busy-wait budget before futex-sleeping calibrates how \
         hard Credit degrades (2008-era libgomp spun long); ASMan should \
         stay near the 4.5x fair-share bound across the sweep";
      ];
  }

(* ----- learning vs fixed windows ----- *)

let with_candidates config cycles_list =
  let gp = Config.guest_params config in
  let est =
    {
      gp.Sim_guest.Kernel.monitor.Sim_guest.Monitor.estimator with
      Sim_learn.Estimator.candidates_cycles = Array.of_list cycles_list;
    }
  in
  let monitor = { gp.Sim_guest.Kernel.monitor with Sim_guest.Monitor.estimator = est } in
  { config with Config.guest_params = Some { gp with Sim_guest.Kernel.monitor = monitor } }

let ablate_learning config =
  let slot = Sim_hw.Cpu_model.slot_cycles config.Config.cpu in
  let variants =
    [
      ( "learned (6 candidates)",
        fun () -> lu_runtime config ~sched:Config.Asman ~weight:32 );
      ( "fixed x = slot/2",
        fun () ->
          lu_runtime (with_candidates config [ slot / 2 ]) ~sched:Config.Asman ~weight:32 );
      ( "fixed x = 4 slots",
        fun () ->
          lu_runtime (with_candidates config [ 4 * slot ]) ~sched:Config.Asman ~weight:32 );
      ( "fixed x = 16 slots",
        fun () ->
          lu_runtime (with_candidates config [ 16 * slot ]) ~sched:Config.Asman ~weight:32 );
    ]
  in
  with_baseline config variants @@ fun base runs ->
  {
    Experiments.series = [ slowdown_series ~base ~label:"LU @22.2%" runs ];
    expected = [];
    notes =
      [
        variant_note runs;
        "a single-candidate estimator degenerates to a fixed coscheduling \
         duration; too short a window under-coschedules (the paper's \
         Figure 6 left case) while the learner should match the best \
         fixed choice without knowing it in advance";
      ];
  }

(* ----- detection threshold ----- *)

let ablate_threshold config =
  let run delta_exp =
    let gp = Config.guest_params config in
    let monitor = { gp.Sim_guest.Kernel.monitor with Sim_guest.Monitor.delta_exp } in
    let config =
      { config with Config.guest_params = Some { gp with Sim_guest.Kernel.monitor = monitor } }
    in
    lu_runtime config ~sched:Config.Asman ~weight:32
  in
  let deltas = [ 16; 18; 20; 22; 24 ] in
  let base, points =
    match
      Pool.map
        (fun thunk -> thunk ())
        ((fun () -> lu_baseline config)
         :: List.map (fun d () -> run d) deltas)
    with
    | base :: times -> (base, List.combine deltas times)
    | [] -> assert false
  in
  {
    Experiments.series =
      [
        Series.make ~label:"ASMan LU @22.2%" ~x_name:"delta (log2 cycles)"
          ~y_name:"slowdown vs 100%"
          (List.map (fun (d, t) -> (float_of_int d, t /. base)) points);
      ];
    expected = [];
    notes =
      [
        "the over-threshold boundary 2^delta (paper: delta = 20) separates \
         ordinary contention from virtualization-induced waits; too high \
         and detection misses stalls, too low and ordinary contention \
         triggers spurious coscheduling";
      ];
  }

(* ----- slice length ----- *)

let ablate_slice config =
  let with_slice n =
    { config with Config.cpu = { config.Config.cpu with Sim_hw.Cpu_model.slots_per_slice = n } }
  in
  let slices = [ 1; 3 ] in
  (* Per slice length: Credit, ASMan and that length's own baseline. *)
  let times =
    Pool.map
      (fun thunk -> thunk ())
      (List.concat_map
         (fun n ->
           let c = with_slice n in
           [
             (fun () -> lu_runtime c ~sched:Config.Credit ~weight:32);
             (fun () -> lu_runtime c ~sched:Config.Asman ~weight:32);
             (fun () -> lu_baseline c);
           ])
         slices)
  in
  let rec fold_triples ns ts =
    match (ns, ts) with
    | n :: ns', credit :: asman :: base :: ts' ->
      (Printf.sprintf "credit, %d0 ms slices" n, credit /. base)
      :: (Printf.sprintf "asman, %d0 ms slices" n, asman /. base)
      :: fold_triples ns' ts'
    | [], [] -> []
    | _ -> assert false
  in
  let runs = fold_triples slices times in
  {
    Experiments.series =
      [
        Series.make ~label:"LU @22.2%" ~x_name:"variant index"
          ~y_name:"slowdown vs 100%"
          (List.mapi (fun i (_, v) -> (float_of_int i, v)) runs);
      ];
    expected = [];
    notes =
      [
        variant_note (List.map (fun (n, v) -> (n, v)) runs);
        "Xen allocates PCPUs in 30 ms slices (3 slots); shorter slices \
         change both the baseline degradation and the gangs' burst \
         coherence";
      ];
  }

(* ----- in-VM vs out-of-VM detection ----- *)

let ablate_oov config =
  (* 3 schedulers x 4 online rates = 12 independent jobs. *)
  let specs =
    List.concat_map
      (fun sched ->
        List.map (fun (w, r) -> (sched, w, r)) Experiments.online_rate_points)
      [ Config.Credit; Config.Asman; Config.Asman_oov ]
  in
  let times =
    Pool.map (fun (sched, w, _r) -> lu_runtime config ~sched ~weight:w) specs
  in
  let points =
    List.map2 (fun (sched, _w, r) t -> (Config.sched_name sched, r, t)) specs times
  in
  let series sched label =
    Series.make ~label ~x_name:"online rate (%)" ~y_name:"run time (s)"
      (List.filter_map
         (fun (n, r, t) ->
           if n = Config.sched_name sched then Some (r, t) else None)
         points)
  in
  let credit = series Config.Credit "Credit" in
  let asman = series Config.Asman "ASMan (in-VM monitor)" in
  let oov = series Config.Asman_oov "ASMan-OOV (PLE, no guest changes)" in
  let gap =
    match (Series.y_at asman 22.2, Series.y_at oov 22.2) with
    | Some a, Some o when a > 0. -> 100. *. (o -. a) /. a
    | _ -> nan
  in
  {
    Experiments.series = [ credit; asman; oov ];
    expected = [];
    notes =
      [
        note
          "the paper's §7 future work: VCRD detection from outside the VM. \
           The PLE-driven variant needs no guest modification and is within \
           %.1f%% of the in-VM Monitoring Module at 22.2%%" gap;
      ];
  }

(* ----- LLC-aware relocation ----- *)

let ablate_llc config =
  let llc_sched =
    Config.Custom
      ( "asman-llc",
        Sim_vmm.Sched_gang.make ~llc_aware:true ~name:"asman-llc"
          ~should_cosched:(fun d -> d.Sim_vmm.Domain.vcrd = Sim_vmm.Domain.High) )
  in
  (* Four concurrent VMs (the Fig 11b consolidation): gangs scatter
     across sockets, so relocation policy actually matters. *)
  let run sched =
    let nas b =
      Sim_workloads.Nas.workload
        (Sim_workloads.Nas.params b ~freq:(Config.freq config)
           ~scale:config.Config.scale)
    in
    let s =
      Scenario.build config ~sched
        ~vms:
          (List.mapi
             (fun i b ->
               {
                 Scenario.vm_name = Printf.sprintf "V%d" (i + 1);
                 weight = 256;
                 vcpus = 4;
                 workload = Some (nas b);
               })
             [ Sim_workloads.Nas.LU; Sim_workloads.Nas.LU;
               Sim_workloads.Nas.SP; Sim_workloads.Nas.SP ])
    in
    let m = Runner.run_rounds s ~rounds:2 ~max_sec:300. in
    let cross = Sim_hw.Machine.ipis_cross_socket s.Scenario.machine in
    (Runner.mean_round_sec m ~vm:"V1", m.Runner.ipis, cross)
  in
  let (t_plain, ipis_plain, cross_plain), (t_llc, ipis_llc, cross_llc) =
    match Pool.map run [ Config.Asman; llc_sched ] with
    | [ plain; llc ] -> (plain, llc)
    | _ -> assert false
  in
  let pct ipis cross =
    if ipis = 0 then 0. else 100. *. float_of_int cross /. float_of_int ipis
  in
  {
    Experiments.series =
      [
        Series.make ~label:"LU mean round (s), 4-VM consolidation"
          ~x_name:"variant index" ~y_name:"seconds"
          [ (0., t_plain); (1., t_llc) ];
        Series.make ~label:"cross-socket IPI share (%)" ~x_name:"variant index"
          ~y_name:"%"
          [ (0., pct ipis_plain cross_plain); (1., pct ipis_llc cross_llc) ];
      ];
    expected = [];
    notes =
      [
        "variants: 0=asman (topology-blind relocation), 1=asman-llc (relocation prefers the gang's socket)";
        note
          "LLC-aware relocation cuts the cross-socket IPI share from %.0f%% to %.0f%% (cross-socket IPIs pay double latency); run time is nearly unchanged since IPI latency is microseconds against 10 ms slots"
          (pct ipis_plain cross_plain) (pct ipis_llc cross_llc);
      ];
  }

let all =
  [
    {
      id = "ablate-gang";
      title = "Gang-dispatch mechanisms (IPI / solidarity / continuity)";
      description =
        "Toggle each of the three coscheduling mechanisms off individually";
      run = ablate_gang;
    };
    {
      id = "ablate-stagger";
      title = "Per-PCPU slot-clock stagger";
      description = "Aligned vs staggered PCPU timers under Credit and ASMan";
      run = ablate_stagger;
    };
    {
      id = "ablate-grace";
      title = "Guest busy-wait grace sweep";
      description = "spin_grace in {1,5,10,20,50} ms: the Credit calibration knob";
      run = ablate_grace;
    };
    {
      id = "ablate-learning";
      title = "Roth-Erev estimator vs fixed coscheduling durations";
      description = "Learned window lengths against degenerate single candidates";
      run = ablate_learning;
    };
    {
      id = "ablate-threshold";
      title = "Over-threshold exponent delta";
      description = "delta in {16..24} around the paper's delta = 20";
      run = ablate_threshold;
    };
    {
      id = "ablate-slice";
      title = "Scheduling slice length";
      description = "10 ms vs Xen's 30 ms PCPU allocation slices";
      run = ablate_slice;
    };
    {
      id = "ablate-llc";
      title = "Topology-blind vs LLC-aware gang relocation";
      description =
        "Algorithm 3 relocation preferring PCPUs that share the gang's socket (the paper's future work)";
      run = ablate_llc;
    };
    {
      id = "ablate-oov";
      title = "In-VM Monitoring Module vs out-of-VM PLE detection";
      description = "The paper's future-work variant against the prototype";
      run = ablate_oov;
    };
  ]

let find id = List.find_opt (fun a -> a.id = id) all

let ids () = List.map (fun a -> a.id) all
