(** Ablation studies: measure the contribution of each design choice
    called out in DESIGN.md by switching it off (or sweeping it) on
    the paper's headline workload (LU at a 22.2% online rate, plus
    other rates where relevant).

    Run them all with [dune exec bench/main.exe -- ablations] or one
    by one through the CLI. Outcomes reuse the experiment report
    format. *)

type t = {
  id : string;
  title : string;
  description : string;
  run : Config.t -> Experiments.outcome;
}

val all : t list
(** - [ablate-gang]: the three gang mechanisms (IPI dispatch,
      solidarity, continuity) toggled individually;
    - [ablate-stagger]: per-PCPU phase skew on/off;
    - [ablate-grace]: guest busy-wait grace sweep (the Credit
      degradation calibration knob);
    - [ablate-learning]: the Roth-Erev estimator vs fixed window
      durations;
    - [ablate-threshold]: the over-threshold exponent delta;
    - [ablate-slice]: 10 ms vs 30 ms scheduling slices;
    - [ablate-llc]: topology-blind vs LLC-aware gang relocation;
    - [ablate-oov]: in-VM Monitoring Module vs out-of-VM PLE
      detection vs no detection. *)

val find : string -> t option

val ids : unit -> string list
