(** Fixed-size worker pool over OCaml 5 domains.

    The experiment harness decomposes every figure and ablation into a
    list of independent jobs — one per data point, each building its
    own [Config]/[Scenario]/[Engine] — and fans them out here.
    {!map} preserves input order and re-raises worker exceptions, so a
    parallel run is observationally identical to [List.map]: with
    per-scenario engines and fixed seeds, results are byte-identical
    at any worker count.

    Built on [Domain.spawn] and stdlib [Mutex]/[Condition] job
    queues; no external dependencies. *)

val default_jobs : unit -> int
(** The [ASMAN_JOBS] environment variable if it parses as a positive
    integer, else [Domain.recommended_domain_count () - 1], floored
    at 1. *)

val set_jobs : int -> unit
(** Set the global worker count used when {!map}'s [?jobs] is omitted
    (the [-j] flag). Values below 1 are clamped to 1; 1 selects the
    sequential path (jobs run inline in the calling domain). *)

val jobs : unit -> int
(** The current global worker count: the last {!set_jobs} value, or
    {!default_jobs} if never set. *)

exception
  Job_timeout of { index : int; elapsed_sec : float; limit_sec : float }
(** A job exceeded [map]'s [timeout_sec]. Jobs are uninterruptible
    domain compute, so the limit is enforced when the job returns:
    the (completed) result is replaced by this exception. *)

val map : ?jobs:int -> ?timeout_sec:float -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs] using at
    most [jobs] domains (default {!jobs}[ ()], never more than
    [List.length xs]) and returns the results in input order.

    Jobs are drawn from a shared Mutex/Condition FIFO; the calling
    domain participates as a worker, so [jobs = 1] spawns no domain
    at all. The first failing job aborts the queue: jobs not yet
    started are dropped, in-flight jobs finish, and the first
    exception in {e input} order is re-raised (with its backtrace)
    after every worker has joined. [timeout_sec] converts any job
    whose wall time exceeds the limit into a {!Job_timeout} failure
    (post-hoc — see {!Job_timeout}). Each job's wall time is
    recorded in the global accounting (see {!accounting}). *)

(** {2 Per-job wall-time accounting}

    A global, mutex-protected accumulator covering every job executed
    since the last {!reset_accounting} — across nested {!map} calls —
    so a driver can wrap one experiment and report its parallel
    speedup ([busy_sec / wall elapsed]). *)

type job_timing = {
  index : int;  (** position of the job in its [map] input list *)
  wall_sec : float;  (** host wall-clock seconds spent in the job *)
}

type stats = {
  jobs_used : int;  (** largest worker count used since reset *)
  timings : job_timing list;  (** completed jobs, in completion order *)
  busy_sec : float;  (** sum of all job wall times *)
}

val reset_accounting : unit -> unit

val accounting : unit -> stats

(** {2 Cost-aware job ordering}

    [map] normally hands jobs to workers in input order. When a job
    group is set, previously recorded per-job wall times (keyed
    ["group#index"]) order the queue longest-expected-first instead —
    classic LPT list scheduling, which shortens the straggler tail of
    a parallel figure regeneration. Jobs without a recorded cost sort
    first (as +infinity) with input order preserved among them, so a
    cache-less first run is identical to the unordered code. Ordering
    never changes results: each result lands in its input-index slot
    and each job seeds its own simulation.

    The cache persists across processes via {!load_cost_cache} /
    {!save_cost_cache} (the benchmark harness's [runs/cost_cache]
    file). *)

val set_job_group : string option -> unit
(** [set_job_group (Some id)] tags subsequent jobs with [id] (the
    figure/ablation being regenerated): their wall times are recorded
    under ["id#index"] and used to LPT-order later runs of the same
    group. [None] stops tagging; untagged jobs run in input order and
    are not recorded. *)

val load_cost_cache : string -> unit
(** Merge a cost-cache file (lines of [key wall_sec]) into the
    in-memory table. Missing or malformed files and lines are
    ignored. *)

val save_cost_cache : string -> unit
(** Write the in-memory cost table to a file, one sorted
    [key wall_sec] line per job. *)
