(** Decoupled VMM: one scenario as [sim_jobs] parallel sub-hosts.

    Coupled mode ([--sim-jobs] without [--decouple]) runs the whole
    VMM on one sequential engine and only {e accounts} what a sharded
    run would do. This module actually does it: the host is
    partitioned socket-aligned into [sim_jobs] shards, each shard a
    full sub-host — its own engine, machine, VMM, scheduler, Dom0 and
    guest kernels — built by {!Scenario.build} over a sub-topology,
    and the shards advance together on the conservative windowed
    {!Sim_engine.Fabric}. Shard-local scheduling needs no change: a
    shard's runqueues, timers and credit state are private by
    construction. Every cross-shard interaction is a mailbox message
    that respects the fabric lookahead (one scheduler slot):

    - [Load] — each shard broadcasts its runnable-domain count on a
      periodic balance tick (period [4 * lookahead]).
    - [Steal_req] — an idle shard asks the busiest remote (load >= 2)
      for work; at most one outstanding request per thief.
    - [Grant] — the victim parks a quiescent, scheduler-approved
      domain ({!Sim_guest.Kernel.park}, {!Sim_vmm.Vmm.detach_domain})
      and ships it; the domain's VCRD state, credits and online
      accounting travel with it. The one-window transit time is the
      modeled stop-and-copy cost. Arrival doubles as the ack: the
      thief re-points the kernel ({!Sim_guest.Kernel.retarget}),
      attaches the domain and measures the steal latency.
    - [Nack] — no migratable candidate; the thief may retry on a
      later tick.

    Every decision reads only shard-local state plus delivered mail,
    so outcomes are deterministic and worker-count invariant: the
    fabric digest for a given scenario is byte-identical at any
    [-j]. *)

type t

val build :
  Config.t -> sched:Config.sched_kind -> vms:Scenario.vm_spec list -> t
(** Build [config.sim_jobs] sub-hosts and wire the fabric and the
    balancers. VMs are dealt round-robin to shards in list order.
    Raises [Invalid_argument] if [sim_jobs < 2], if the topology's
    socket count is not divisible by [sim_jobs] (shards must be
    socket-aligned), if there are fewer VMs than shards, or if the
    config carries a fault profile (fault injection targets one
    machine; decoupled runs are clean by contract — which is also
    what makes the gang scheduler's IPI-horizon migration gate
    exact). *)

val shards : t -> int

val scenario : t -> int -> Scenario.t
(** The sub-host behind shard [i] (engine, machine, VMM, VMs). *)

val fabric : t -> Sim_engine.Fabric.t

val lookahead : t -> int
(** Cross-shard latency floor: one scheduler slot, in cycles. *)

(** {2 Running} *)

type vm_report = {
  r_vm : string;
  r_rounds : int;  (** completed whole-VM rounds *)
  r_marks : int;
  r_migrations : int;  (** times this VM was stolen across shards *)
  r_final_shard : int;
}

type report = {
  rp_shards : int;
  rp_workers : int;  (** worker domains actually used *)
  rp_wall_sec : float;
  rp_sim_sec : float;  (** max member clock at exit, in seconds *)
  rp_events : int;  (** events fired, summed over members *)
  rp_windows : int;
  rp_cross_posts : int;
  rp_max_window_mail : int;
  rp_steal_reqs : int;
  rp_grants : int;  (** completed migrations *)
  rp_nacks : int;
  rp_mean_steal_latency_cycles : float;
      (** mean request-to-arrival latency over completed steals *)
  rp_vms : vm_report list;
  rp_digest : int;  (** {!Sim_engine.Fabric.digest} at exit *)
  rp_fingerprint : string;
}

val run : ?workers:int -> t -> rounds:int -> max_sec:float -> report
(** Drive the fabric until every workload VM completes [rounds]
    rounds (checked between windows via per-VM done flags) or the
    simulated horizon [max_sec] passes. [workers] defaults to the
    recommended domain count, clamped to the shard count. A [t] is
    single-shot: run it once. *)

val report_kv : report -> (string * string) list
(** Flat key/value view of a report for printing and benchmarks
    (per-VM rows are prefixed [vm.<name>.]). *)

val report_metrics : report -> (string * float) list
(** Numeric view of the same keys for run-registry snapshots. *)
