open Sim_engine

(* Id-counter strides keeping domain/vcpu ids globally unique across
   sub-hosts (shard k's VMM numbers domains from [k * domain_stride]).
   Far above any realistic per-shard population. *)
let domain_stride = 4096
let vcpu_stride = 65536

(* One workload VM, wherever it currently lives. Mutated only from
   events on the engine hosting it; ownership transfer rides the
   fabric's window barrier, which gives the happens-before edge. *)
type unit_state = {
  u_name : string;
  u_slot : int;  (** index into the shared done array *)
  u_kernel : Sim_guest.Kernel.t;
  u_domain : Sim_vmm.Domain.t;
  mutable u_round_times : int list;  (** newest first *)
  mutable u_migrations : int;
  mutable u_shard : int;
}

(* Per-shard state and counters: single-writer (the shard's own
   events), aggregated only after the run completes. *)
type shard = {
  s_index : int;
  s_scenario : Scenario.t;
  mutable s_resident : unit_state list;
  s_remote_load : int array;  (** last Load heard from each shard *)
  mutable s_stealing : bool;  (** an outstanding Steal_req *)
  mutable s_steal_req_at : int;
  mutable s_steal_reqs : int;
  mutable s_nacks : int;
  mutable s_steals_in : int;  (** grants received as thief *)
  mutable s_steal_latency : int;  (** cycles, summed over steals in *)
}

type t = {
  config : Config.t;
  shards : shard array;
  fabric : Fabric.t;
  units : unit_state array;
  vm_done : bool array;
  lookahead : int;
  balance_period : int;
}

let mix_seed seed k =
  Int64.add (Int64.mul seed 1_000_003L) (Int64.of_int (k + 1))

(* A VM still contributes load while it has rounds left to its target
   (throughput workloads restart forever, so thread completion alone
   is not an idleness signal — the run's round target is). *)
let pending t u =
  (not t.vm_done.(u.u_slot))
  && not (Sim_guest.Kernel.all_finished u.u_kernel)

let shard_load t s =
  List.fold_left (fun n u -> if pending t u then n + 1 else n) 0 s.s_resident

(* Victim side of a steal, executing on the victim's engine at the
   request's delivery time. The candidate must be quiescent (kernel
   owns no pending event) and scheduler-approved; ties break on the
   lowest domain id so the choice is independent of resident-list
   order. Parking the monitor and detaching are victim-side queue and
   VMM mutations; the granted domain then exists only inside the
   mailbox closure until the thief attaches it one window later. *)
let handle_steal_req t ~thief ~victim =
  let v = t.shards.(victim) in
  let th = t.shards.(thief) in
  let now = Engine.now v.s_scenario.Scenario.engine in
  let vmm = v.s_scenario.Scenario.vmm in
  let candidate =
    if shard_load t v < 2 then None
    else
      List.fold_left
        (fun acc u ->
          if
            pending t u
            && Sim_guest.Kernel.quiescent u.u_kernel
            && Sim_vmm.Vmm.sched_migratable vmm u.u_domain
          then
            match acc with
            | Some (b : unit_state)
              when b.u_domain.Sim_vmm.Domain.id
                   <= u.u_domain.Sim_vmm.Domain.id ->
              acc
            | _ -> Some u
          else acc)
        None v.s_resident
  in
  (match Sys.getenv_opt "ASMAN_DECOUPLE_DEBUG" with
  | Some _ when candidate = None ->
    List.iter
      (fun u ->
        Printf.eprintf
          "nack@%d shard%d: %s pending=%b quiescent=%b migratable=%b\n%!" now
          victim u.u_name (pending t u)
          (Sim_guest.Kernel.quiescent u.u_kernel)
          (Sim_vmm.Vmm.sched_migratable vmm u.u_domain))
      v.s_resident
  | _ -> ());
  match candidate with
  | None ->
    Fabric.post t.fabric ~src:victim ~dst:thief ~time:(now + t.lookahead)
      (fun () ->
        th.s_stealing <- false;
        th.s_nacks <- th.s_nacks + 1)
  | Some u ->
    Sim_guest.Kernel.park u.u_kernel;
    Sim_vmm.Vmm.detach_domain vmm u.u_domain;
    v.s_resident <- List.filter (fun x -> x != u) v.s_resident;
    Fabric.post t.fabric ~src:victim ~dst:thief ~time:(now + t.lookahead)
      (fun () ->
        let dst_vmm = th.s_scenario.Scenario.vmm in
        Sim_guest.Kernel.retarget u.u_kernel ~vmm:dst_vmm;
        Sim_vmm.Vmm.attach_domain dst_vmm u.u_domain;
        u.u_shard <- thief;
        u.u_migrations <- u.u_migrations + 1;
        th.s_resident <- u :: th.s_resident;
        th.s_steals_in <- th.s_steals_in + 1;
        th.s_steal_latency <-
          th.s_steal_latency
          + (Engine.now th.s_scenario.Scenario.engine - th.s_steal_req_at);
        th.s_stealing <- false)

(* The balance tick: broadcast own load, and — when idle with no
   request in flight — ask the busiest remote shard (load >= 2, ties
   to the lowest index) for work. All inputs are shard-local state
   and previously delivered Load mail, so the decision is identical
   at any worker count. *)
let balance_tick t k =
  let s = t.shards.(k) in
  let now = Engine.now s.s_scenario.Scenario.engine in
  let load = shard_load t s in
  let n = Array.length t.shards in
  s.s_remote_load.(k) <- load;
  for j = 0 to n - 1 do
    if j <> k then
      Fabric.post t.fabric ~src:k ~dst:j ~time:(now + t.lookahead)
        (fun () -> t.shards.(j).s_remote_load.(k) <- load)
  done;
  if load = 0 && not s.s_stealing then begin
    let best = ref (-1) in
    for j = 0 to n - 1 do
      if
        j <> k
        && s.s_remote_load.(j) >= 2
        && (!best = -1 || s.s_remote_load.(j) > s.s_remote_load.(!best))
      then best := j
    done;
    if !best >= 0 then begin
      let victim = !best in
      s.s_stealing <- true;
      s.s_steal_req_at <- now;
      s.s_steal_reqs <- s.s_steal_reqs + 1;
      Fabric.post t.fabric ~src:k ~dst:victim ~time:(now + t.lookahead)
        (fun () -> handle_steal_req t ~thief:k ~victim)
    end
  end

let build config ~sched ~vms =
  let nshards = config.Config.sim_jobs in
  if nshards < 2 then
    invalid_arg "Decouple.build: --decouple needs --sim-jobs >= 2";
  if not (Sim_faults.Fault.is_none config.Config.faults) then
    invalid_arg "Decouple.build: fault injection requires the coupled engine";
  let topo = config.Config.topology in
  let sockets = topo.Sim_hw.Topology.sockets in
  if sockets mod nshards <> 0 then
    invalid_arg
      (Printf.sprintf
         "Decouple.build: %d sockets cannot split into %d socket-aligned \
          shards (pick --topology SxC with S a multiple of --sim-jobs)"
         sockets nshards);
  if List.length vms < nshards then
    invalid_arg "Decouple.build: need at least one VM per shard";
  let sub_topo =
    Sim_hw.Topology.make ~sockets:(sockets / nshards)
      ~cores_per_socket:topo.Sim_hw.Topology.cores_per_socket
  in
  let lookahead = Sim_hw.Cpu_model.slot_cycles config.Config.cpu in
  let subs =
    Array.init nshards (fun k ->
        let sub_vms = List.filteri (fun i _ -> i mod nshards = k) vms in
        let sub_config =
          {
            config with
            Config.topology = sub_topo;
            seed = mix_seed config.Config.seed k;
            sim_jobs = 1;
            decouple = false;
            (* Sub-hosts run dark: tracing and the obs hub are
               process-shared surfaces the member engines would race
               on. *)
            obs =
              { config.Config.obs with Config.trace_mask = 0; hub = false };
          }
        in
        Scenario.build
          ~domain_id_base:(k * domain_stride)
          ~vcpu_id_base:(k * vcpu_stride) sub_config ~sched ~vms:sub_vms)
  in
  let units = ref [] in
  let n_units = ref 0 in
  List.iteri
    (fun i (spec : Scenario.vm_spec) ->
      let k = i mod nshards in
      let inst = List.nth subs.(k).Scenario.vms (i / nshards) in
      match inst.Scenario.kernel with
      | None -> ()
      | Some kernel ->
        units :=
          {
            u_name = spec.Scenario.vm_name;
            u_slot = !n_units;
            u_kernel = kernel;
            u_domain = inst.Scenario.domain;
            u_round_times = [];
            u_migrations = 0;
            u_shard = k;
          }
          :: !units;
        incr n_units)
    vms;
  let units = Array.of_list (List.rev !units) in
  if Array.length units = 0 then
    invalid_arg "Decouple.build: no workload VMs";
  let shards =
    Array.init nshards (fun k ->
        {
          s_index = k;
          s_scenario = subs.(k);
          s_resident = [];
          s_remote_load = Array.make nshards 0;
          s_stealing = false;
          s_steal_req_at = 0;
          s_steal_reqs = 0;
          s_nacks = 0;
          s_steals_in = 0;
          s_steal_latency = 0;
        })
  in
  Array.iter
    (fun u -> shards.(u.u_shard).s_resident <- u :: shards.(u.u_shard).s_resident)
    units;
  let fabric =
    Fabric.create ~lookahead
      (Array.map (fun s -> s.s_scenario.Scenario.engine) shards)
  in
  let t =
    {
      config;
      shards;
      fabric;
      units;
      vm_done = Array.make (Array.length units) false;
      lookahead;
      balance_period = 4 * lookahead;
    }
  in
  (* Identical chains armed at the same start on every member fire at
     identical times; load info posted at tick T arrives by T +
     lookahead < T + balance_period, so each tick sees fresh loads. *)
  Array.iter
    (fun s ->
      let (_stop : unit -> unit) =
        Engine.periodic s.s_scenario.Scenario.engine ~start:t.balance_period
          ~period:t.balance_period (fun () -> balance_tick t s.s_index)
      in
      ())
    t.shards;
  t

let shards t = Array.length t.shards
let scenario t i = t.shards.(i).s_scenario
let fabric t = t.fabric
let lookahead t = t.lookahead

type vm_report = {
  r_vm : string;
  r_rounds : int;
  r_marks : int;
  r_migrations : int;
  r_final_shard : int;
}

type report = {
  rp_shards : int;
  rp_workers : int;
  rp_wall_sec : float;
  rp_sim_sec : float;
  rp_events : int;
  rp_windows : int;
  rp_cross_posts : int;
  rp_max_window_mail : int;
  rp_steal_reqs : int;
  rp_grants : int;
  rp_nacks : int;
  rp_mean_steal_latency_cycles : float;
  rp_vms : vm_report list;
  rp_digest : int;
  rp_fingerprint : string;
}

(* Round completion, mirroring Runner.install_round_tracking: the
   hook reads the kernel's *current* engine for timestamps (correct
   across migrations) and flips the VM's done slot, which only the
   coordinator reads, between windows. *)
let install_round_tracking t ~target =
  Array.iter
    (fun u ->
      Sim_guest.Kernel.set_round_hook u.u_kernel
        (fun _thread ~round:_ ~duration:_ ->
          let completed = Sim_guest.Kernel.min_rounds u.u_kernel in
          let have = List.length u.u_round_times in
          if completed > have then begin
            let now = Sim_vmm.Vmm.now (Sim_guest.Kernel.vmm u.u_kernel) in
            for _ = have + 1 to completed do
              u.u_round_times <- now :: u.u_round_times
            done
          end;
          if completed >= target && not t.vm_done.(u.u_slot) then
            t.vm_done.(u.u_slot) <- true))
    t.units

let run ?workers t ~rounds ~max_sec =
  install_round_tracking t ~target:rounds;
  let freq = Config.freq t.config in
  let limit = Units.cycles_of_sec_f freq max_sec in
  let wall0 = Unix.gettimeofday () in
  Fabric.run ?workers ~until:limit
    ~stop:(fun () -> Array.for_all Fun.id t.vm_done)
    t.fabric;
  let wall = Unix.gettimeofday () -. wall0 in
  let n = Array.length t.shards in
  let sim_end =
    Array.fold_left
      (fun acc s -> max acc (Engine.now s.s_scenario.Scenario.engine))
      0 t.shards
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 t.shards in
  let grants = sum (fun s -> s.s_steals_in) in
  let latency = sum (fun s -> s.s_steal_latency) in
  {
    rp_shards = n;
    rp_workers =
      (match workers with
      | Some w -> max 1 (min w n)
      | None -> max 1 (min n (Stdlib.Domain.recommended_domain_count ())));
    rp_wall_sec = wall;
    rp_sim_sec = Units.sec_of_cycles freq sim_end;
    rp_events = Fabric.events_fired t.fabric;
    rp_windows = Fabric.windows t.fabric;
    rp_cross_posts = Fabric.cross_posts t.fabric;
    rp_max_window_mail = Fabric.max_window_mail t.fabric;
    rp_steal_reqs = sum (fun s -> s.s_steal_reqs);
    rp_grants = grants;
    rp_nacks = sum (fun s -> s.s_nacks);
    rp_mean_steal_latency_cycles =
      (if grants = 0 then 0. else float_of_int latency /. float_of_int grants);
    rp_vms =
      Array.to_list
        (Array.map
           (fun u ->
             {
               r_vm = u.u_name;
               r_rounds = List.length u.u_round_times;
               r_marks = Sim_guest.Kernel.total_marks u.u_kernel;
               r_migrations = u.u_migrations;
               r_final_shard = u.u_shard;
             })
           t.units);
    rp_digest = Fabric.digest t.fabric;
    rp_fingerprint = Fabric.fingerprint t.fabric;
  }

let report_metrics r =
  [
    ("shards", float_of_int r.rp_shards);
    ("workers", float_of_int r.rp_workers);
    ("wall_sec", r.rp_wall_sec);
    ("sim_sec", r.rp_sim_sec);
    ("events", float_of_int r.rp_events);
    ("windows", float_of_int r.rp_windows);
    ("cross_posts", float_of_int r.rp_cross_posts);
    ("max_window_mail", float_of_int r.rp_max_window_mail);
    ("steal_reqs", float_of_int r.rp_steal_reqs);
    ("grants", float_of_int r.rp_grants);
    ("nacks", float_of_int r.rp_nacks);
    ("mean_steal_latency_cycles", r.rp_mean_steal_latency_cycles);
    ("digest", float_of_int (r.rp_digest land 0xffffffff));
  ]
  @ List.concat_map
      (fun v ->
        [
          (Printf.sprintf "vm.%s.rounds" v.r_vm, float_of_int v.r_rounds);
          (Printf.sprintf "vm.%s.migrations" v.r_vm,
           float_of_int v.r_migrations);
        ])
      r.rp_vms

let report_kv r =
  [
    ("shards", string_of_int r.rp_shards);
    ("workers", string_of_int r.rp_workers);
    ("wall_sec", Printf.sprintf "%.3f" r.rp_wall_sec);
    ("sim_sec", Printf.sprintf "%.3f" r.rp_sim_sec);
    ("events", string_of_int r.rp_events);
    ("windows", string_of_int r.rp_windows);
    ("cross_posts", string_of_int r.rp_cross_posts);
    ("max_window_mail", string_of_int r.rp_max_window_mail);
    ("steal_reqs", string_of_int r.rp_steal_reqs);
    ("grants", string_of_int r.rp_grants);
    ("nacks", string_of_int r.rp_nacks);
    ("mean_steal_latency_cycles",
     Printf.sprintf "%.0f" r.rp_mean_steal_latency_cycles);
    ("digest", Printf.sprintf "%08x" (r.rp_digest land 0xffffffff));
  ]
  @ List.concat_map
      (fun v ->
        [
          (Printf.sprintf "vm.%s.rounds" v.r_vm, string_of_int v.r_rounds);
          (Printf.sprintf "vm.%s.migrations" v.r_vm,
           string_of_int v.r_migrations);
          (Printf.sprintf "vm.%s.final_shard" v.r_vm,
           string_of_int v.r_final_shard);
        ])
      r.rp_vms
