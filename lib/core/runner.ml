open Sim_engine
module Metrics = Sim_obs.Metrics

type vm_metrics = {
  vm_name : string;
  rounds : int;
  round_sec : float list;
  marks : int;
  online_rate : float;
  expected_online : float;
  attained_cycles : int;
  entitled_cycles : int;
  theft_cycles : int;
  spin_over_threshold : int;
  adjusting_events : int;
  vcrd_transitions : int;
  total_spin_sec : float;
  watchdog_demotions : int;
  invariant_violations : int;
}

type metrics = {
  vms : vm_metrics list;
  by_name : (string, vm_metrics) Hashtbl.t;
  wall_sec : float;
  events_fired : int;
  ipis : int;
  ctx_switches : int;
  invariant_violations : int;
  sched_counters : (string * int) list;
  fault_stats : (string * int) list;
}

let freq (s : Scenario.t) = Config.freq s.Scenario.config

(* Everything countable now flows through the VMM's metrics registry:
   the measurement baseline is one snapshot, and window values are a
   pointwise diff — no per-counter side tables. Cumulative-by-design
   quantities (over-threshold detections, adjusting events, VCRD
   transitions, spin time) read the absolute snapshot, matching the
   pre-registry semantics exactly. *)
let collect (s : Scenario.t) ~round_times ~started ~base =
  let f = freq s in
  let now = Engine.now s.Scenario.engine in
  let snap = Metrics.snapshot (Sim_vmm.Vmm.metrics s.Scenario.vmm) in
  let d = Metrics.diff ~base snap in
  let vms =
    List.map
      (fun (inst : Scenario.vm_instance) ->
        let name = inst.Scenario.spec.Scenario.vm_name in
        let times =
          match Hashtbl.find_opt round_times name with
          | Some l -> List.rev !l
          | None -> []
        in
        let round_sec =
          let rec durations prev = function
            | [] -> []
            | t :: rest ->
              Units.sec_of_cycles f (t - prev) :: durations t rest
          in
          durations started times
        in
        let guest of_ n = Metrics.get of_ ~subsystem:"guest" ~vm:name ~name:n () in
        {
          vm_name = name;
          rounds = List.length times;
          round_sec;
          marks = guest d "marks";
          online_rate = Sim_vmm.Vmm.online_rate s.Scenario.vmm inst.Scenario.domain;
          expected_online = Scenario.expected_online_rate s inst;
          attained_cycles =
            Sim_vmm.Vmm.attained_cycles s.Scenario.vmm inst.Scenario.domain;
          entitled_cycles =
            Sim_vmm.Vmm.entitled_cycles s.Scenario.vmm inst.Scenario.domain;
          theft_cycles =
            Sim_vmm.Vmm.theft_cycles s.Scenario.vmm inst.Scenario.domain;
          spin_over_threshold = guest snap "over_threshold";
          adjusting_events = guest snap "adjusting_events";
          vcrd_transitions =
            Metrics.get snap ~subsystem:"vmm" ~vm:name ~name:"vcrd_transitions" ();
          total_spin_sec = Units.sec_of_cycles f (guest snap "total_spin_cycles");
          watchdog_demotions =
            Metrics.get d ~subsystem:"watchdog" ~vm:name ~name:"demotions" ();
          invariant_violations =
            Metrics.get d ~subsystem:"vmm" ~vm:name ~name:"invariant_violations" ();
        })
      s.Scenario.vms
  in
  let by_name = Hashtbl.create (List.length vms) in
  List.iter (fun v -> Hashtbl.replace by_name v.vm_name v) vms;
  {
    vms;
    by_name;
    wall_sec = Units.sec_of_cycles f (now - started);
    events_fired = Metrics.get d ~subsystem:"engine" ~name:"events_fired" ();
    ipis = Metrics.get d ~subsystem:"hw" ~name:"ipis_sent" ();
    ctx_switches = Metrics.get d ~subsystem:"vmm" ~name:"ctx_switches" ();
    invariant_violations =
      Metrics.get d ~subsystem:"vmm" ~name:"invariant_violations" ();
    sched_counters = Sim_vmm.Vmm.sched_counters s.Scenario.vmm;
    fault_stats =
      (match s.Scenario.injector with
      | Some inj -> Sim_faults.Injector.stats inj
      | None -> []);
  }

(* Track VM-round completion times via the kernels' round hooks: VM
   round k completes when the slowest thread finishes its k-th pass. *)
let install_round_tracking (s : Scenario.t) ~on_all_done ~target =
  let round_times = Hashtbl.create (List.length s.Scenario.vms) in
  List.iter
    (fun (inst : Scenario.vm_instance) ->
      Hashtbl.replace round_times inst.Scenario.spec.Scenario.vm_name (ref []))
    s.Scenario.vms;
  let workload_vms =
    List.filter (fun (i : Scenario.vm_instance) -> i.Scenario.kernel <> None) s.Scenario.vms
  in
  let done_vms = Hashtbl.create 8 in
  List.iter
    (fun (inst : Scenario.vm_instance) ->
      match inst.Scenario.kernel with
      | None -> ()
      | Some k ->
        let name = inst.Scenario.spec.Scenario.vm_name in
        let times = Hashtbl.find round_times name in
        Sim_guest.Kernel.set_round_hook k (fun _ ~round:_ ~duration:_ ->
            let completed = Sim_guest.Kernel.min_rounds k in
            let recorded = List.length !times in
            if completed > recorded then begin
              let now = Engine.now s.Scenario.engine in
              for _ = recorded + 1 to completed do
                times := now :: !times
              done;
              if completed >= target && not (Hashtbl.mem done_vms name) then begin
                Hashtbl.replace done_vms name ();
                if Hashtbl.length done_vms = List.length workload_vms then
                  on_all_done ()
              end
            end))
    s.Scenario.vms;
  round_times

let baseline (s : Scenario.t) =
  Metrics.snapshot (Sim_vmm.Vmm.metrics s.Scenario.vmm)

(* Charge the run's phases to the configured self-profiler, when one
   is installed; a no-op wrapper otherwise. *)
let timed (s : Scenario.t) label f =
  match s.Scenario.config.Config.obs.Config.profile with
  | None -> f ()
  | Some p -> Sim_obs.Prof.time p label f

(* Oracle hook: fire [f s] every [every_sec] of simulated time while
   the run is in flight, then stop the chain so later windows on the
   same scenario are unaffected. Probes must observe only (SimCheck's
   mid-run invariant checks); a probe mutating scheduler state would
   perturb the run it is judging. *)
let with_probe (s : Scenario.t) probe run =
  match probe with
  | None -> run ()
  | Some (every_sec, f) ->
    let period = Units.cycles_of_sec_f (freq s) every_sec in
    if period <= 0 then invalid_arg "Runner: probe period must be positive";
    let stop =
      Engine.periodic s.Scenario.engine
        ~start:(Engine.now s.Scenario.engine + period)
        ~period
        (fun () -> f s)
    in
    Fun.protect ~finally:stop run

let run_rounds ?probe (s : Scenario.t) ~rounds ~max_sec =
  if rounds <= 0 then invalid_arg "Runner.run_rounds: rounds must be positive";
  let started = Engine.now s.Scenario.engine in
  let base = baseline s in
  let round_times =
    install_round_tracking s ~target:rounds ~on_all_done:(fun () ->
        Engine.halt s.Scenario.engine)
  in
  let limit = started + Units.cycles_of_sec_f (freq s) max_sec in
  timed s "engine.run" (fun () ->
      with_probe s probe (fun () -> Engine.run ~until:limit s.Scenario.engine));
  timed s "collect" (fun () -> collect s ~round_times ~started ~base)

let reset_measurements (s : Scenario.t) =
  Sim_vmm.Vmm.reset_accounting s.Scenario.vmm;
  List.iter
    (fun (inst : Scenario.vm_instance) ->
      match inst.Scenario.kernel with
      | None -> ()
      | Some k ->
        Sim_guest.Kernel.reset_marks k;
        Sim_guest.Monitor.reset_window (Sim_guest.Kernel.monitor k))
    s.Scenario.vms

let run_window ?probe (s : Scenario.t) ~sec =
  if sec <= 0. then invalid_arg "Runner.run_window: sec must be positive";
  reset_measurements s;
  let started = Engine.now s.Scenario.engine in
  let base = baseline s in
  let round_times =
    install_round_tracking s ~target:max_int ~on_all_done:(fun () -> ())
  in
  let limit = started + Units.cycles_of_sec_f (freq s) sec in
  timed s "engine.run" (fun () ->
      with_probe s probe (fun () -> Engine.run ~until:limit s.Scenario.engine));
  timed s "collect" (fun () -> collect s ~round_times ~started ~base)

let vm_metrics m ~vm =
  match Hashtbl.find_opt m.by_name vm with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Runner.vm_metrics: no VM %s" vm)

let first_round_sec m ~vm =
  match (vm_metrics m ~vm).round_sec with
  | first :: _ -> first
  | [] -> failwith (Printf.sprintf "Runner: VM %s completed no round" vm)

let mean_round_sec m ~vm =
  match (vm_metrics m ~vm).round_sec with
  | [] -> failwith (Printf.sprintf "Runner: VM %s completed no round" vm)
  | durations ->
    List.fold_left ( +. ) 0. durations /. float_of_int (List.length durations)

let monitor_of (s : Scenario.t) ~vm =
  let inst = Scenario.find_vm s vm in
  match inst.Scenario.kernel with
  | Some k -> Sim_guest.Kernel.monitor k
  | None -> invalid_arg (Printf.sprintf "Runner.monitor_of: VM %s is idle" vm)

(* Flat snapshot of a metrics record for run-registry records. *)
let metrics_kv (m : metrics) =
  let global =
    [
      ("wall_sec", m.wall_sec);
      ("events_fired", float_of_int m.events_fired);
      ("ipis", float_of_int m.ipis);
      ("ctx_switches", float_of_int m.ctx_switches);
      ("invariant_violations", float_of_int m.invariant_violations);
    ]
  in
  let per_vm =
    List.concat_map
      (fun vm ->
        let k suffix = Printf.sprintf "vm.%s.%s" vm.vm_name suffix in
        [
          (k "rounds", float_of_int vm.rounds);
          (k "online_rate", vm.online_rate);
          (k "attained_cycles", float_of_int vm.attained_cycles);
          (k "entitled_cycles", float_of_int vm.entitled_cycles);
          (k "theft_cycles", float_of_int vm.theft_cycles);
        ])
      m.vms
  in
  global @ per_vm
