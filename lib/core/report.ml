open Sim_stats

let outcome (e : Experiments.t) (o : Experiments.outcome) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "=== %s: %s ===\n%s\n\n" e.Experiments.id
       e.Experiments.title e.Experiments.description);
  if o.Experiments.series <> [] then begin
    Buffer.add_string buf "measured:\n";
    Buffer.add_string buf (Table.render_series o.Experiments.series);
    Buffer.add_char buf '\n'
  end;
  if o.Experiments.expected <> [] then begin
    Buffer.add_string buf "paper (digitized from the published figure):\n";
    Buffer.add_string buf (Table.render_series o.Experiments.expected);
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n))
    o.Experiments.notes;
  Buffer.contents buf

let summary_line (e : Experiments.t) (o : Experiments.outcome) =
  Printf.sprintf "%-7s %-55s %d series, %d notes" e.Experiments.id
    e.Experiments.title
    (List.length o.Experiments.series)
    (List.length o.Experiments.notes)

let health_summary (m : Runner.metrics) =
  let buf = Buffer.create 256 in
  let section title l =
    if l <> [] then begin
      Buffer.add_string buf (title ^ ":\n");
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf "  %-24s %d\n" k v))
        l
    end
  in
  section "scheduler health" m.Runner.sched_counters;
  section "fault injection" m.Runner.fault_stats;
  Buffer.add_string buf
    (Printf.sprintf "invariant violations: %d\n" m.Runner.invariant_violations);
  List.iter
    (fun (v : Runner.vm_metrics) ->
      if v.Runner.watchdog_demotions > 0 || v.Runner.invariant_violations > 0
      then
        Buffer.add_string buf
          (Printf.sprintf "  %-24s demotions=%d violations=%d\n"
             v.Runner.vm_name v.Runner.watchdog_demotions
             v.Runner.invariant_violations))
    m.Runner.vms;
  Buffer.contents buf

let series_csv series = Csv.to_string (Csv.of_series series)

let trace_csv entries =
  let header = [ "time_cycles"; "wait_cycles"; "log2_wait"; "lock_id" ] in
  let rows =
    List.map
      (fun (e : Sim_guest.Monitor.trace_entry) ->
        [
          string_of_int e.Sim_guest.Monitor.time;
          string_of_int e.Sim_guest.Monitor.wait;
          (if e.Sim_guest.Monitor.wait >= 1 then
             string_of_int (Sim_engine.Units.log2_floor e.Sim_guest.Monitor.wait)
           else "0");
          string_of_int e.Sim_guest.Monitor.lock_id;
        ])
      entries
  in
  Csv.to_string (header :: rows)
