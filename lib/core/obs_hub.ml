(* Scenarios built with observability on register themselves here so
   the CLI can export traces/metrics after a run that constructed its
   scenarios deep inside an experiment. Drain order is by label, not
   registration order: parallel Pool jobs register from several
   domains, and sorting keeps exports deterministic at any -j. *)

type entry = {
  label : string;
  freq_khz : int;
  pcpus : int;
  vm_names : (int * string) list;
  trace : Sim_obs.Trace.t;
  metrics : Sim_obs.Metrics.t;
}

let mutex = Mutex.create ()
let store : entry list ref = ref []

let register e = Mutex.protect mutex (fun () -> store := e :: !store)

let sorted l = List.stable_sort (fun a b -> compare a.label b.label) l

let entries () = Mutex.protect mutex (fun () -> sorted !store)

let drain () =
  Mutex.protect mutex (fun () ->
      let l = !store in
      store := [];
      sorted l)

let clear () = Mutex.protect mutex (fun () -> store := [])

(* Paths of written exports, newest first; registry records drain
   them to carry pointers at the artifacts of their invocation. *)
let export_store : string list ref = ref []

let note_export p =
  Mutex.protect mutex (fun () -> export_store := p :: !export_store)

let exports () = Mutex.protect mutex (fun () -> List.rev !export_store)

let drain_exports () =
  Mutex.protect mutex (fun () ->
      let l = !export_store in
      export_store := [];
      List.rev l)

let chrome_json entries =
  let events = Buffer.create 65536 in
  List.iteri
    (fun i e ->
      Sim_obs.Trace.chrome_events_into events ~pid:(i + 1)
        ~process_name:e.label ~vm_names:e.vm_names
        ~freq_hz:(e.freq_khz * 1000) ~pcpus:e.pcpus e.trace)
    entries;
  Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
    (Buffer.contents events)

let metrics_text entries =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" e.label);
      Buffer.add_string buf (Sim_obs.Metrics.to_text (Sim_obs.Metrics.snapshot e.metrics)))
    entries;
  Buffer.contents buf

let metrics_json entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n\"%s\": %s" e.label
           (Sim_obs.Metrics.to_json (Sim_obs.Metrics.snapshot e.metrics))))
    entries;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
