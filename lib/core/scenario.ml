type vm_spec = {
  vm_name : string;
  weight : int;
  vcpus : int;
  workload : Sim_workloads.Workload.t option;
}

let vm ?(weight = 256) ?(vcpus = 4) ~name workload =
  { vm_name = name; weight; vcpus; workload = Some workload }

type vm_instance = {
  spec : vm_spec;
  domain : Sim_vmm.Domain.t;
  kernel : Sim_guest.Kernel.t option;
  threads : Sim_guest.Thread.t list;
}

type t = {
  config : Config.t;
  engine : Sim_engine.Engine.t;
  machine : Sim_hw.Machine.t;
  vmm : Sim_vmm.Vmm.t;
  dom0 : Sim_vmm.Domain.t;
  vms : vm_instance list;
  injector : Sim_faults.Injector.t option;
}

let build config ~sched ~vms =
  if vms = [] then invalid_arg "Scenario.build: no VMs";
  List.iter
    (fun spec ->
      if spec.weight <= 0 then invalid_arg "Scenario.build: non-positive weight";
      if spec.vcpus <= 0 then invalid_arg "Scenario.build: non-positive vcpus")
    vms;
  let engine = Sim_engine.Engine.create ~seed:config.Config.seed () in
  let machine =
    Sim_hw.Machine.create ~stagger:config.Config.stagger engine
      config.Config.cpu config.Config.topology
  in
  let watchdog =
    if Config.watchdog_enabled config then
      Some (Sim_vmm.Watchdog.default config.Config.cpu)
    else None
  in
  let vmm =
    Sim_vmm.Vmm.create ~work_conserving:config.Config.work_conserving
      ~credit_unit:config.Config.credit_unit ?watchdog machine
      ~sched:(Config.sched_maker sched)
  in
  Sim_vmm.Vmm.set_invariant_mode vmm config.Config.invariants;
  let injector =
    if Sim_faults.Fault.is_none config.Config.faults then None
    else
      Some
        (Sim_faults.Injector.install ~profile:config.Config.faults
           ~seed:(Int64.to_int config.Config.seed)
           machine vmm)
  in
  (* Dom0 first, as in Xen: one VCPU per PCPU, weight 256, idle. *)
  let dom0 =
    Sim_vmm.Vmm.create_domain vmm ~name:"Domain-0" ~weight:256
      ~vcpus:(Config.pcpus config) ()
  in
  let guest_params = Config.guest_params config in
  let instances =
    List.map
      (fun spec ->
        let concurrent_type =
          match spec.workload with
          | Some w -> w.Sim_workloads.Workload.kind = Sim_workloads.Workload.Concurrent
          | None -> false
        in
        let domain =
          Sim_vmm.Vmm.create_domain vmm ~concurrent_type ~name:spec.vm_name
            ~weight:spec.weight ~vcpus:spec.vcpus ()
        in
        match spec.workload with
        | None -> { spec; domain; kernel = None; threads = [] }
        | Some workload ->
          let kernel =
            Sim_guest.Kernel.create ~params:guest_params vmm domain ()
          in
          let threads = Sim_workloads.Workload.install workload kernel in
          { spec; domain; kernel = Some kernel; threads })
      vms
  in
  Sim_vmm.Vmm.start vmm;
  List.iter
    (fun inst ->
      match inst.kernel with
      | Some k -> Sim_guest.Kernel.launch k
      | None -> ())
    instances;
  { config; engine; machine; vmm; dom0; vms = instances; injector }

let expected_online_rate t inst =
  Sim_vmm.Domain.expected_online_rate inst.domain
    ~all:(Sim_vmm.Vmm.domains t.vmm)
    ~pcpus:(Config.pcpus t.config)

let find_vm t name =
  match List.find_opt (fun i -> i.spec.vm_name = name) t.vms with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Scenario.find_vm: no VM %s" name)
