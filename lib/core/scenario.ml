type vm_spec = {
  vm_name : string;
  weight : int;
  vcpus : int;
  workload : Sim_workloads.Workload.t option;
}

let vm ?(weight = 256) ?(vcpus = 4) ~name workload =
  { vm_name = name; weight; vcpus; workload = Some workload }

type vm_instance = {
  spec : vm_spec;
  domain : Sim_vmm.Domain.t;
  kernel : Sim_guest.Kernel.t option;
  threads : Sim_guest.Thread.t list;
}

type t = {
  config : Config.t;
  engine : Sim_engine.Engine.t;
  machine : Sim_hw.Machine.t;
  vmm : Sim_vmm.Vmm.t;
  dom0 : Sim_vmm.Domain.t;
  vms : vm_instance list;
  injector : Sim_faults.Injector.t option;
}

let build config ~sched ~vms =
  if vms = [] then invalid_arg "Scenario.build: no VMs";
  List.iter
    (fun spec ->
      if spec.weight <= 0 then invalid_arg "Scenario.build: non-positive weight";
      if spec.vcpus <= 0 then invalid_arg "Scenario.build: non-positive vcpus")
    vms;
  let engine = Sim_engine.Engine.create ~seed:config.Config.seed () in
  (* Arm tracing before the machine exists so boot-time events (tick
     programming, first switches) land in the ring too. *)
  if config.Config.obs.Config.trace_mask <> 0 then
    Sim_obs.Trace.enable
      ~cap:config.Config.obs.Config.trace_cap
      (Sim_engine.Engine.trace engine)
      ~mask:config.Config.obs.Config.trace_mask;
  let machine =
    Sim_hw.Machine.create ~stagger:config.Config.stagger engine
      config.Config.cpu config.Config.topology
  in
  let watchdog =
    if Config.watchdog_enabled config then
      Some (Sim_vmm.Watchdog.default config.Config.cpu)
    else None
  in
  let vmm =
    Sim_vmm.Vmm.create ~work_conserving:config.Config.work_conserving
      ~credit_unit:config.Config.credit_unit ?watchdog machine
      ~sched:(Config.sched_maker sched)
  in
  Sim_vmm.Vmm.set_invariant_mode vmm config.Config.invariants;
  let injector =
    if Sim_faults.Fault.is_none config.Config.faults then None
    else
      Some
        (Sim_faults.Injector.install ~profile:config.Config.faults
           ~seed:(Int64.to_int config.Config.seed)
           machine vmm)
  in
  (* Dom0 first, as in Xen: one VCPU per PCPU, weight 256, idle. *)
  let dom0 =
    Sim_vmm.Vmm.create_domain vmm ~name:"Domain-0" ~weight:256
      ~vcpus:(Config.pcpus config) ()
  in
  let guest_params = Config.guest_params config in
  let registry = Sim_vmm.Vmm.metrics vmm in
  (* A clean run still reports the faults subsystem (as zeros) so a
     snapshot always distinguishes "no faults occurred" from "faults
     were not measured"; the injector re-registers these over live
     tallies when a profile is active. *)
  if injector = None then
    List.iter
      (fun n -> Sim_obs.Metrics.gauge registry ~subsystem:"faults" ~name:n (fun () -> 0))
      [
        "vcrd_reports_dropped"; "vcrd_reports_corrupted"; "pcpu_stalls";
        "pcpu_offlines";
      ];
  (* Per-VM guest/domain gauges: closures over the live kernel and
     monitor state, evaluated only at snapshot time. *)
  let register_vm_gauges ~name ~domain ~kernel =
    Sim_obs.Metrics.gauge registry ~subsystem:"vmm" ~vm:name
      ~name:"vcrd_transitions" (fun () ->
        domain.Sim_vmm.Domain.vcrd_transitions);
    match kernel with
    | None -> ()
    | Some k ->
      let m = Sim_guest.Kernel.monitor k in
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name ~name:"marks"
        (fun () -> Sim_guest.Kernel.total_marks k);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"total_spin_cycles" (fun () ->
          Sim_guest.Kernel.total_spin_cycles k);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"over_threshold" (fun () ->
          Sim_guest.Monitor.over_threshold_count m);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"adjusting_events" (fun () ->
          Sim_guest.Monitor.adjusting_events m);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"trace_dropped" (fun () -> Sim_guest.Monitor.trace_dropped m)
  in
  let instances =
    List.map
      (fun spec ->
        let concurrent_type =
          match spec.workload with
          | Some w -> w.Sim_workloads.Workload.kind = Sim_workloads.Workload.Concurrent
          | None -> false
        in
        let domain =
          Sim_vmm.Vmm.create_domain vmm ~concurrent_type ~name:spec.vm_name
            ~weight:spec.weight ~vcpus:spec.vcpus ()
        in
        match spec.workload with
        | None ->
          register_vm_gauges ~name:spec.vm_name ~domain ~kernel:None;
          { spec; domain; kernel = None; threads = [] }
        | Some workload ->
          let kernel =
            Sim_guest.Kernel.create ~params:guest_params vmm domain ()
          in
          let threads = Sim_workloads.Workload.install workload kernel in
          register_vm_gauges ~name:spec.vm_name ~domain ~kernel:(Some kernel);
          { spec; domain; kernel = Some kernel; threads })
      vms
  in
  if Config.obs_wanted config then
    Obs_hub.register
      {
        Obs_hub.label =
          Printf.sprintf "%s/%s/seed%Ld" (Config.sched_name sched)
            (String.concat "+" (List.map (fun s -> s.vm_name) vms))
            config.Config.seed;
        freq_khz = Sim_engine.Units.freq_to_khz (Config.freq config);
        pcpus = Config.pcpus config;
        vm_names =
          (dom0.Sim_vmm.Domain.id, "Domain-0")
          :: List.map
               (fun (i : vm_instance) ->
                 (i.domain.Sim_vmm.Domain.id, i.spec.vm_name))
               instances;
        trace = Sim_engine.Engine.trace engine;
        metrics = Sim_vmm.Vmm.metrics vmm;
      };
  Sim_vmm.Vmm.start vmm;
  List.iter
    (fun inst ->
      match inst.kernel with
      | Some k -> Sim_guest.Kernel.launch k
      | None -> ())
    instances;
  { config; engine; machine; vmm; dom0; vms = instances; injector }

let expected_online_rate t inst =
  Sim_vmm.Domain.expected_online_rate inst.domain
    ~all:(Sim_vmm.Vmm.domains t.vmm)
    ~pcpus:(Config.pcpus t.config)

let find_vm t name =
  match List.find_opt (fun i -> i.spec.vm_name = name) t.vms with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Scenario.find_vm: no VM %s" name)
