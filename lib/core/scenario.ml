type vm_spec = {
  vm_name : string;
  weight : int;
  vcpus : int;
  workload : Sim_workloads.Workload.t option;
}

let vm ?(weight = 256) ?(vcpus = 4) ~name workload =
  { vm_name = name; weight; vcpus; workload = Some workload }

type vm_instance = {
  spec : vm_spec;
  domain : Sim_vmm.Domain.t;
  kernel : Sim_guest.Kernel.t option;
  threads : Sim_guest.Thread.t list;
}

type t = {
  config : Config.t;
  engine : Sim_engine.Engine.t;
  machine : Sim_hw.Machine.t;
  vmm : Sim_vmm.Vmm.t;
  dom0 : Sim_vmm.Domain.t;
  vms : vm_instance list;
  injector : Sim_faults.Injector.t option;
}

let build ?(domain_id_base = 0) ?(vcpu_id_base = 0) ?(launch = true) config
    ~sched ~vms =
  if vms = [] then invalid_arg "Scenario.build: no VMs";
  List.iter
    (fun spec ->
      if spec.weight <= 0 then invalid_arg "Scenario.build: non-positive weight";
      if spec.vcpus <= 0 then invalid_arg "Scenario.build: non-positive vcpus")
    vms;
  let engine =
    Sim_engine.Engine.create ~seed:config.Config.seed
      ?queue:config.Config.engine_queue ()
  in
  (* Arm tracing before the machine exists so boot-time events (tick
     programming, first switches) land in the ring too. *)
  if config.Config.obs.Config.trace_mask <> 0 then
    Sim_obs.Trace.enable
      ~cap:config.Config.obs.Config.trace_cap
      (Sim_engine.Engine.trace engine)
      ~mask:config.Config.obs.Config.trace_mask;
  (* Arm the coupled-mode sharding ledger before the machine programs
     its tick chains, so every event is attributed from boot. PCPUs
     map to shards in contiguous blocks; the lookahead — the window a
     conservative decoupled run would use — is the modeled IPI
     latency, the fastest cross-PCPU signal in the simulation. *)
  (if config.Config.sim_jobs > 1 then begin
     let pcpus = Config.pcpus config in
     let nshards = max 1 (min config.Config.sim_jobs pcpus) in
     let shard_of_pcpu = Array.init pcpus (fun p -> p * nshards / pcpus) in
     Sim_engine.Engine.arm_sharding engine
       ~lookahead:
         (max 1 config.Config.cpu.Sim_hw.Cpu_model.ipi_latency_cycles)
       ~shard_of_pcpu
   end);
  let machine =
    Sim_hw.Machine.create ~stagger:config.Config.stagger engine
      config.Config.cpu config.Config.topology
  in
  let watchdog =
    if Config.watchdog_enabled config then
      Some (Sim_vmm.Watchdog.default config.Config.cpu)
    else None
  in
  let numa =
    if config.Config.numa then
      Some
        {
          Sim_vmm.Sched_intf.topo = config.Config.topology;
          (* ~25 us of cold-cache refill at the modeled frequency. *)
          reloc_penalty_cycles =
            Sim_engine.Units.cycles_of_us (Config.freq config) 25;
        }
    else None
  in
  let vmm =
    Sim_vmm.Vmm.create ~domain_id_base ~vcpu_id_base
      ~work_conserving:config.Config.work_conserving
      ~credit_unit:config.Config.credit_unit
      ~accounting:config.Config.accounting ?watchdog ?numa machine
      ~sched:(Config.sched_maker sched)
  in
  Sim_vmm.Vmm.set_invariant_mode vmm config.Config.invariants;
  let injector =
    if Sim_faults.Fault.is_none config.Config.faults then None
    else
      Some
        (Sim_faults.Injector.install ~profile:config.Config.faults
           ~seed:(Int64.to_int config.Config.seed)
           machine vmm)
  in
  (* Dom0 first, as in Xen: one VCPU per PCPU, weight 256, idle. *)
  let dom0 =
    Sim_vmm.Vmm.create_domain vmm ~name:"Domain-0" ~weight:256
      ~vcpus:(Config.pcpus config) ()
  in
  let guest_params = Config.guest_params config in
  let registry = Sim_vmm.Vmm.metrics vmm in
  (* A clean run still reports the faults subsystem (as zeros) so a
     snapshot always distinguishes "no faults occurred" from "faults
     were not measured"; the injector re-registers these over live
     tallies when a profile is active. *)
  if injector = None then
    List.iter
      (fun n -> Sim_obs.Metrics.gauge registry ~subsystem:"faults" ~name:n (fun () -> 0))
      [
        "vcrd_reports_dropped"; "vcrd_reports_corrupted"; "pcpu_stalls";
        "pcpu_offlines";
      ];
  (* Per-VM guest/domain gauges: closures over the live kernel and
     monitor state, evaluated only at snapshot time. *)
  let register_vm_gauges ~name ~domain ~kernel =
    Sim_obs.Metrics.gauge registry ~subsystem:"vmm" ~vm:name
      ~name:"vcrd_transitions" (fun () ->
        domain.Sim_vmm.Domain.vcrd_transitions);
    match kernel with
    | None -> ()
    | Some k ->
      let m = Sim_guest.Kernel.monitor k in
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name ~name:"marks"
        (fun () -> Sim_guest.Kernel.total_marks k);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"total_spin_cycles" (fun () ->
          Sim_guest.Kernel.total_spin_cycles k);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"over_threshold" (fun () ->
          Sim_guest.Monitor.over_threshold_count m);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"adjusting_events" (fun () ->
          Sim_guest.Monitor.adjusting_events m);
      Sim_obs.Metrics.gauge registry ~subsystem:"guest" ~vm:name
        ~name:"trace_dropped" (fun () -> Sim_guest.Monitor.trace_dropped m)
  in
  let instances =
    List.map
      (fun spec ->
        let concurrent_type =
          match spec.workload with
          | Some w -> w.Sim_workloads.Workload.kind = Sim_workloads.Workload.Concurrent
          | None -> false
        in
        let domain =
          Sim_vmm.Vmm.create_domain vmm ~concurrent_type ~name:spec.vm_name
            ~weight:spec.weight ~vcpus:spec.vcpus ()
        in
        match spec.workload with
        | None ->
          register_vm_gauges ~name:spec.vm_name ~domain ~kernel:None;
          { spec; domain; kernel = None; threads = [] }
        | Some workload ->
          let kernel =
            Sim_guest.Kernel.create ~params:guest_params vmm domain ()
          in
          let threads = Sim_workloads.Workload.install workload kernel in
          register_vm_gauges ~name:spec.vm_name ~domain ~kernel:(Some kernel);
          { spec; domain; kernel = Some kernel; threads })
      vms
  in
  if Config.obs_wanted config && config.Config.obs.Config.hub then
    Obs_hub.register
      {
        Obs_hub.label =
          Printf.sprintf "%s/%s/seed%Ld" (Config.sched_name sched)
            (String.concat "+" (List.map (fun s -> s.vm_name) vms))
            config.Config.seed;
        freq_khz = Sim_engine.Units.freq_to_khz (Config.freq config);
        pcpus = Config.pcpus config;
        vm_names =
          (dom0.Sim_vmm.Domain.id, "Domain-0")
          :: List.map
               (fun (i : vm_instance) ->
                 (i.domain.Sim_vmm.Domain.id, i.spec.vm_name))
               instances;
        trace = Sim_engine.Engine.trace engine;
        metrics = Sim_vmm.Vmm.metrics vmm;
      };
  Sim_vmm.Vmm.start vmm;
  if launch then
    List.iter
      (fun inst ->
        match inst.kernel with
        | Some k -> Sim_guest.Kernel.launch k
        | None -> ())
      instances;
  { config; engine; machine; vmm; dom0; vms = instances; injector }

let expected_online_rate t inst =
  Sim_vmm.Domain.expected_online_rate inst.domain
    ~all:(Sim_vmm.Vmm.domains t.vmm)
    ~pcpus:(Config.pcpus t.config)

let find_vm t name =
  match List.find_opt (fun i -> i.spec.vm_name = name) t.vms with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Scenario.find_vm: no VM %s" name)

(* ----- declarative workload descriptors -----

   A [workload_desc] is a plain-data description of a VM's workload:
   everything the CLI and the SimCheck fuzzer need to rebuild the
   exact same [Sim_workloads.Workload.t] from a serialized case file.
   Durations are microseconds so descriptors stay integer-valued and
   CPU-model independent. *)

type workload_desc =
  | W_nas of string
  | W_speccpu of string
  | W_jbb of { warehouses : int }
  | W_compute of { threads : int; chunks : int; chunk_us : int }
  | W_lock_storm of { threads : int; rounds : int; cs_us : int; think_us : int }
  | W_barrier of { threads : int; rounds : int; compute_us : int; cv : float }
  | W_ping_pong of { rounds : int; compute_us : int }
  | W_random of { threads : int; ops : int; nlocks : int; prog_seed : int }
  | W_attack_dodge of { threads : int }
  | W_attack_steal of { threads : int }
  | W_attack_launder of { threads : int; phased : bool }

let workload_of_desc config desc =
  let freq = Config.freq config in
  let us n = Sim_engine.Units.cycles_of_us freq n in
  let slot_cycles = Sim_hw.Cpu_model.slot_cycles config.Config.cpu in
  match desc with
  | W_nas name -> (
    match Sim_workloads.Nas.of_name name with
    | Some b ->
      Sim_workloads.Nas.workload
        (Sim_workloads.Nas.params b ~freq ~scale:config.Config.scale)
    | None ->
      invalid_arg (Printf.sprintf "workload_of_desc: unknown NAS bench %S" name))
  | W_speccpu name -> (
    let bench =
      match String.lowercase_ascii name with
      | "gcc" -> Some Sim_workloads.Speccpu.Gcc
      | "bzip2" -> Some Sim_workloads.Speccpu.Bzip2
      | _ -> None
    in
    match bench with
    | Some b ->
      Sim_workloads.Speccpu.workload
        (Sim_workloads.Speccpu.params b ~freq ~scale:config.Config.scale)
    | None ->
      invalid_arg
        (Printf.sprintf "workload_of_desc: unknown SPEC CPU bench %S" name))
  | W_jbb { warehouses } ->
    Sim_workloads.Specjbb.workload
      (Sim_workloads.Specjbb.default_params ~freq ~warehouses)
  | W_compute { threads; chunks; chunk_us } ->
    Sim_workloads.Synthetic.compute_only ~threads ~chunks
      ~chunk_cycles:(us chunk_us) ()
  | W_lock_storm { threads; rounds; cs_us; think_us } ->
    Sim_workloads.Synthetic.lock_storm ~threads ~rounds ~cs_cycles:(us cs_us)
      ~think_cycles:(us think_us) ()
  | W_barrier { threads; rounds; compute_us; cv } ->
    Sim_workloads.Synthetic.barrier_loop ~threads ~rounds
      ~compute_cycles:(us compute_us) ~cv ()
  | W_ping_pong { rounds; compute_us } ->
    Sim_workloads.Synthetic.ping_pong ~rounds ~compute_cycles:(us compute_us)
  | W_random { threads; ops; nlocks; prog_seed } ->
    let rng = Sim_engine.Rng.create (Int64.of_int prog_seed) in
    let programs =
      List.init threads (fun _ ->
          Sim_workloads.Synthetic.random_program rng ~ops ~nlocks
            ~max_compute:(us 500))
    in
    {
      Sim_workloads.Workload.name = "random";
      kind = Sim_workloads.Workload.Concurrent;
      threads =
        List.mapi
          (fun i program ->
            { Sim_workloads.Workload.affinity = i; program; restart = false })
          programs;
      barriers = [];
      semaphores = [];
    }
  | W_attack_dodge { threads } ->
    Sim_workloads.Attack.tick_dodge ~threads ~slot_cycles ()
  | W_attack_steal { threads } ->
    Sim_workloads.Attack.cycle_steal ~threads ~slot_cycles ()
  | W_attack_launder { threads; phased } ->
    Sim_workloads.Attack.launder_half ~threads ~slot_cycles ~phased ()

type vm_desc = {
  vd_name : string;
  vd_weight : int;
  vd_vcpus : int;
  vd_workload : workload_desc option;
}

let of_descs config ~sched descs =
  let vms =
    List.map
      (fun d ->
        {
          vm_name = d.vd_name;
          weight = d.vd_weight;
          vcpus = d.vd_vcpus;
          workload = Option.map (workload_of_desc config) d.vd_workload;
        })
      descs
  in
  build config ~sched ~vms
