type sched_kind =
  | Credit
  | Asman
  | Cosched_static
  | Asman_oov
  | Custom of string * Sim_vmm.Sched_intf.maker

let sched_name = function
  | Credit -> "credit"
  | Asman -> "asman"
  | Cosched_static -> "con"
  | Asman_oov -> "asman-oov"
  | Custom (name, _) -> name

let sched_of_name s =
  match String.lowercase_ascii s with
  | "credit" -> Some Credit
  | "asman" -> Some Asman
  | "con" | "cosched" | "static" -> Some Cosched_static
  | "asman-oov" | "oov" -> Some Asman_oov
  | _ -> None

let sched_maker = function
  | Credit -> Sim_vmm.Sched_credit.make
  | Asman -> Sim_vmm.Sched_gang.make_asman
  | Cosched_static -> Sim_vmm.Sched_gang.make_static
  | Asman_oov -> Sim_vmm.Sched_gang.make_oov
  | Custom (_, maker) -> maker

type obs = {
  trace_mask : int;
  trace_cap : int;
  metrics : bool;
  profile : Sim_obs.Prof.t option;
  hub : bool;
}

let obs_off =
  {
    trace_mask = 0;
    trace_cap = Sim_obs.Trace.default_cap;
    metrics = false;
    profile = None;
    hub = true;
  }

type t = {
  seed : int64;
  cpu : Sim_hw.Cpu_model.t;
  topology : Sim_hw.Topology.t;
  stagger : bool;
  work_conserving : bool;
  credit_unit : int;
  guest_params : Sim_guest.Kernel.params option;
  monitor_report : bool;
  scale : float;
  faults : Sim_faults.Fault.profile;
  invariants : Sim_vmm.Vmm.invariant_mode;
  watchdog : bool option;  (** [None] = armed iff faults are enabled *)
  engine_queue : Sim_engine.Engine.queue_kind option;
      (** [None] = the process default ([--engine-queue]) *)
  sim_jobs : int;
  decouple : bool;
  numa : bool;
  accounting : Sim_vmm.Vmm.accounting;
  obs : obs;
}

let default =
  {
    seed = 42L;
    cpu = Sim_hw.Cpu_model.default;
    topology = Sim_hw.Topology.default;
    stagger = true;
    work_conserving = true;
    credit_unit = Sim_vmm.Credit.default_credit_unit;
    guest_params = None;
    monitor_report = true;
    scale = 0.25;
    faults = Sim_faults.Fault.none;
    invariants = Sim_vmm.Vmm.Record;
    watchdog = None;
    engine_queue = None;
    sim_jobs = 1;
    decouple = false;
    numa = false;
    accounting = Sim_vmm.Vmm.Precise;
    obs = obs_off;
  }

let obs_wanted t = t.obs.trace_mask <> 0 || t.obs.metrics

let with_scale t scale = { t with scale }
let with_seed t seed = { t with seed }
let with_work_conserving t work_conserving = { t with work_conserving }
let with_faults t faults = { t with faults }

let watchdog_enabled t =
  match t.watchdog with
  | Some b -> b
  | None -> not (Sim_faults.Fault.is_none t.faults)

let guest_params t =
  match t.guest_params with
  | Some p -> p
  | None ->
    let p = Sim_guest.Kernel.default_params t.cpu in
    if t.monitor_report then p
    else
      {
        p with
        Sim_guest.Kernel.monitor =
          { p.Sim_guest.Kernel.monitor with Sim_guest.Monitor.report_vcrd = false };
      }

let freq t = t.cpu.Sim_hw.Cpu_model.freq

let pcpus t = Sim_hw.Topology.pcpu_count t.topology
