(** Scenario builder: instantiate the full stack for one experiment.

    A scenario is the administrator VM (Dom0: one VCPU per PCPU,
    weight 256, no workload — as in §5.2) plus a list of guest VMs,
    each with a weight, a VCPU count and an optional workload. The
    builder wires engine, machine, VMM, scheduler, guest kernels and
    workloads, starts the VMM and launches the guests; the caller then
    advances the engine (see {!Runner}). *)

type vm_spec = {
  vm_name : string;
  weight : int;
  vcpus : int;
  workload : Sim_workloads.Workload.t option;
}

val vm :
  ?weight:int ->
  ?vcpus:int ->
  name:string ->
  Sim_workloads.Workload.t ->
  vm_spec
(** Convenience constructor: weight 256, 4 VCPUs. *)

type vm_instance = {
  spec : vm_spec;
  domain : Sim_vmm.Domain.t;
  kernel : Sim_guest.Kernel.t option;  (** [None] for idle VMs *)
  threads : Sim_guest.Thread.t list;
}

type t = {
  config : Config.t;
  engine : Sim_engine.Engine.t;
  machine : Sim_hw.Machine.t;
  vmm : Sim_vmm.Vmm.t;
  dom0 : Sim_vmm.Domain.t;
  vms : vm_instance list;  (** in [vm_spec] order; excludes Dom0 *)
  injector : Sim_faults.Injector.t option;
      (** present when [config.faults] is a real profile *)
}

val build :
  ?domain_id_base:int ->
  ?vcpu_id_base:int ->
  ?launch:bool ->
  Config.t ->
  sched:Config.sched_kind ->
  vms:vm_spec list ->
  t
(** Raises [Invalid_argument] on an empty or ill-formed VM list.
    [domain_id_base]/[vcpu_id_base] offset the VMM's id counters so
    that ids stay globally unique across the sub-hosts of a decoupled
    ({!Decouple}) run. [launch] (default [true]) controls whether the
    guest kernels are launched; the cluster layer builds its incubator
    host with [~launch:false] so trace VMs stay quiescent until they
    are placed, then calls {!Sim_guest.Kernel.launch} on arrival.
    VMs whose workload is {!Sim_workloads.Workload.Concurrent} are
    marked [concurrent_type] (the static CON classification an
    administrator would apply).

    Observability: per-VM guest gauges always join the VMM's metrics
    registry (snapshot-time closures, no run-time cost); when
    [config.obs] asks for tracing the engine trace is armed before
    the machine boots, and when {!Config.obs_wanted} the scenario
    registers its trace + registry in {!Obs_hub} for export. *)

val expected_online_rate : t -> vm_instance -> float
(** Equation (2) for the instance's domain. *)

val find_vm : t -> string -> vm_instance

(** {2 Declarative scenario descriptors}

    Plain-data workload descriptions, rebuildable from a serialized
    case file (the SimCheck fuzzer and the CLI share them). Durations
    are in microseconds so descriptors stay integer-valued and
    CPU-model independent. *)

type workload_desc =
  | W_nas of string  (** NAS benchmark by name ("LU", "CG", ...) *)
  | W_speccpu of string  (** "gcc" or "bzip2" (restarting rate protocol) *)
  | W_jbb of { warehouses : int }
  | W_compute of { threads : int; chunks : int; chunk_us : int }
  | W_lock_storm of { threads : int; rounds : int; cs_us : int; think_us : int }
  | W_barrier of { threads : int; rounds : int; compute_us : int; cv : float }
  | W_ping_pong of { rounds : int; compute_us : int }  (** semaphores *)
  | W_random of { threads : int; ops : int; nlocks : int; prog_seed : int }
      (** independent random programs from {!Sim_workloads.Synthetic.random_program} *)
  | W_attack_dodge of { threads : int }
      (** {!Sim_workloads.Attack.tick_dodge}: sleep across the
          accounting tick *)
  | W_attack_steal of { threads : int }
      (** {!Sim_workloads.Attack.cycle_steal}: sub-tick bursts *)
  | W_attack_launder of { threads : int; phased : bool }
      (** one half of {!Sim_workloads.Attack.launder_pair}; put the
          [phased] half in a second colocated VM *)

val workload_of_desc : Config.t -> workload_desc -> Sim_workloads.Workload.t
(** Deterministic in (config, desc). Raises [Invalid_argument] on an
    unknown benchmark name. *)

type vm_desc = {
  vd_name : string;
  vd_weight : int;
  vd_vcpus : int;
  vd_workload : workload_desc option;
}

val of_descs : Config.t -> sched:Config.sched_kind -> vm_desc list -> t
(** {!build} over descriptor-built workloads. *)
