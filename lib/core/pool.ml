(* Jobs close over immutable inputs and fan out through a
   Mutex/Condition work queue; each result lands in the array slot of
   its input index, so [map] preserves order no matter which worker
   finishes first. Worker exceptions are captured per slot and the
   first one (in input order) is re-raised after every domain joins.
   The first failure also aborts the queue: jobs not yet started are
   drained and never run (in-flight jobs finish normally). *)

exception
  Job_timeout of { index : int; elapsed_sec : float; limit_sec : float }

let () =
  Printexc.register_printer (function
    | Job_timeout { index; elapsed_sec; limit_sec } ->
      Some
        (Printf.sprintf
           "Pool.Job_timeout (job %d took %.1f s, limit %.1f s)" index
           elapsed_sec limit_sec)
    | _ -> None)

(* ----- worker-count knob (-j / ASMAN_JOBS) ----- *)

let env_jobs () =
  match Sys.getenv_opt "ASMAN_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* 0 = unset: fall back to [default_jobs] at each call. *)
let current_jobs = Atomic.make 0

let set_jobs n = Atomic.set current_jobs (max 1 n)

let jobs () =
  match Atomic.get current_jobs with 0 -> default_jobs () | n -> n

(* ----- per-job wall-time accounting ----- *)

type job_timing = { index : int; wall_sec : float }

type stats = {
  jobs_used : int;
  timings : job_timing list;
  busy_sec : float;
}

let acc_mutex = Mutex.create ()

(* Reversed completion order; re-reversed in [accounting]. *)
let acc_timings : job_timing list ref = ref []

let acc_jobs_used = ref 1

let reset_accounting () =
  Mutex.protect acc_mutex (fun () ->
      acc_timings := [];
      acc_jobs_used := 1)

let record_timing index wall_sec =
  Mutex.protect acc_mutex (fun () ->
      acc_timings := { index; wall_sec } :: !acc_timings)

let note_jobs_used k =
  Mutex.protect acc_mutex (fun () ->
      if k > !acc_jobs_used then acc_jobs_used := k)

let accounting () =
  Mutex.protect acc_mutex (fun () ->
      let timings = List.rev !acc_timings in
      {
        jobs_used = !acc_jobs_used;
        timings;
        busy_sec = List.fold_left (fun s t -> s +. t.wall_sec) 0. timings;
      })

(* ----- cost-aware job ordering (LPT) -----

   Per-job wall times are remembered across runs keyed by
   ["group#index"], where the group is the enclosing figure/ablation
   id ({!set_job_group}) and the index is the job's position in its
   [map] input. [run_parallel] hands jobs out longest-expected-first
   (classic LPT list scheduling), which shortens the tail where one
   late-started long job leaves the other workers idle. Ordering only
   affects which worker starts what first — results are slot-indexed
   and simulations seeded per job — so outputs are unchanged.

   Jobs with no recorded cost sort as +infinity (ties keep input
   order): a first run executes in input order exactly like the
   cache-less code. *)

let cost_mutex = Mutex.create ()

let cost_table : (string, float) Hashtbl.t = Hashtbl.create 64

let current_group : string option ref = ref None

let set_job_group g = Mutex.protect cost_mutex (fun () -> current_group := g)

let job_key group i = group ^ "#" ^ string_of_int i

let record_cost i wall_sec =
  Mutex.protect cost_mutex (fun () ->
      match !current_group with
      | Some g -> Hashtbl.replace cost_table (job_key g i) wall_sec
      | None -> ())

(* Descending expected cost, unknown first, stable on input index. *)
let lpt_order n =
  let costs =
    Mutex.protect cost_mutex (fun () ->
        match !current_group with
        | None -> None
        | Some g ->
          Some
            (Array.init n (fun i ->
                 match Hashtbl.find_opt cost_table (job_key g i) with
                 | Some c -> c
                 | None -> infinity)))
  in
  let order = Array.init n Fun.id in
  (match costs with
  | Some costs ->
    Array.stable_sort (fun a b -> compare costs.(b) costs.(a)) order
  | None -> ());
  order

let load_cost_cache path =
  match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    Mutex.protect cost_mutex (fun () ->
        try
          while true do
            let line = input_line ic in
            match String.index_opt line ' ' with
            | Some sp -> (
              let key = String.sub line 0 sp in
              let v =
                String.sub line (sp + 1) (String.length line - sp - 1)
              in
              match float_of_string_opt v with
              | Some c when c >= 0. -> Hashtbl.replace cost_table key c
              | Some _ | None -> ())
            | None -> ()
          done
        with End_of_file -> close_in ic)

let save_cost_cache path =
  let entries =
    Mutex.protect cost_mutex (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) cost_table [])
  in
  let entries = List.sort compare entries in
  let oc = open_out path in
  List.iter (fun (k, v) -> Printf.fprintf oc "%s %.6f\n" k v) entries;
  close_out oc

(* ----- blocking FIFO of pending jobs ----- *)

module Jobq = struct
  type 'a t = {
    q : 'a Queue.t;
    m : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool;
  }

  let create () =
    {
      q = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }

  let push t x =
    Mutex.protect t.m (fun () ->
        Queue.push x t.q;
        Condition.signal t.nonempty)

  let close t =
    Mutex.protect t.m (fun () ->
        t.closed <- true;
        Condition.broadcast t.nonempty)

  (* Drop every job not yet started and wake all waiters. *)
  let abort t =
    Mutex.protect t.m (fun () ->
        Queue.clear t.q;
        t.closed <- true;
        Condition.broadcast t.nonempty)

  (* Blocks until a job is available; [None] once closed and drained. *)
  let pop t =
    Mutex.protect t.m (fun () ->
        while Queue.is_empty t.q && not t.closed do
          Condition.wait t.nonempty t.m
        done;
        if Queue.is_empty t.q then None else Some (Queue.pop t.q))
end

(* ----- parallel map ----- *)

let now () = Unix.gettimeofday ()

(* Jobs are plain OCaml compute on a domain, so a stuck job cannot be
   interrupted: the timeout is checked when the job returns, turning
   an overlong (but completed) job into a [Job_timeout] error. *)
let run_job ?timeout_sec ~on_error f results i x =
  let t0 = now () in
  let r =
    match f x with
    | y -> Ok y
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  let elapsed = now () -. t0 in
  let r =
    match (r, timeout_sec) with
    | Ok _, Some limit when elapsed > limit ->
      Error
        ( Job_timeout { index = i; elapsed_sec = elapsed; limit_sec = limit },
          Printexc.get_callstack 0 )
    | _ -> r
  in
  results.(i) <- Some r;
  record_timing i elapsed;
  record_cost i elapsed;
  match r with Error _ -> on_error () | Ok _ -> ()

let run_parallel ?timeout_sec ~workers f input results =
  let q = Jobq.create () in
  let order = lpt_order (Array.length input) in
  Array.iter (fun i -> Jobq.push q (i, input.(i))) order;
  Jobq.close q;
  let worker () =
    let rec loop () =
      match Jobq.pop q with
      | None -> ()
      | Some (i, x) ->
        run_job ?timeout_sec ~on_error:(fun () -> Jobq.abort q) f results i x;
        loop ()
    in
    loop ()
  in
  (* The calling domain is worker number [workers]. *)
  let helpers = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join helpers

let map ?jobs:requested ?timeout_sec f xs =
  match xs with
  | [] -> []
  | _ ->
    let n = List.length xs in
    let k =
      let want = match requested with Some j -> j | None -> jobs () in
      max 1 (min want n)
    in
    note_jobs_used k;
    let input = Array.of_list xs in
    let results = Array.make n None in
    if k = 1 then begin
      let stop = ref false in
      Array.iteri
        (fun i x ->
          if not !stop then
            run_job ?timeout_sec ~on_error:(fun () -> stop := true) f results
              i x)
        input
    end
    else run_parallel ?timeout_sec ~workers:k f input results;
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function Some (Ok y) -> y | Some (Error _) | None -> assert false)
         results)
