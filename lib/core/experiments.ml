open Sim_stats

type outcome = {
  series : Series.t list;
  expected : Series.t list;
  notes : string list;
}

type t = {
  id : string;
  title : string;
  description : string;
  run : Config.t -> outcome;
}

let online_rate_points = [ (256, 100.); (128, 66.7); (64, 40.); (32, 22.2) ]

let note fmt = Printf.ksprintf (fun s -> s) fmt

(* ----- shared building blocks ----- *)

let single_vm_scenario config ~sched ~weight ~workload =
  let config = Config.with_work_conserving config false in
  Scenario.build config ~sched
    ~vms:
      [
        {
          Scenario.vm_name = "V1";
          weight;
          vcpus = 4;
          workload = Some workload;
        };
      ]

let nas_workload config bench =
  Sim_workloads.Nas.workload
    (Sim_workloads.Nas.params bench ~freq:(Config.freq config)
       ~scale:config.Config.scale)

(* Generous wall-clock cap: the slowest single-VM runs are ~5x the
   ideal time at a 22.2% online rate. *)
let max_sec_for config bench =
  let ideal =
    Sim_workloads.Nas.ideal_runtime_sec bench ~freq:(Config.freq config)
      ~scale:config.Config.scale
  in
  Float.max 30. (ideal *. 40.)

let nas_run config ~sched ~bench ~weight =
  let s =
    single_vm_scenario config ~sched ~weight ~workload:(nas_workload config bench)
  in
  let m =
    Runner.run_rounds s ~rounds:1 ~max_sec:(max_sec_for config bench)
  in
  (s, m)

let nas_runtime config ~sched ~bench ~weight =
  let _, m = nas_run config ~sched ~bench ~weight in
  Runner.first_round_sec m ~vm:"V1"

let wait_bucket_counts monitor =
  let h = Sim_guest.Monitor.spin_histogram monitor in
  [
    (">=2^10", Histogram.count_ge_pow2 h 10);
    (">=2^15", Histogram.count_ge_pow2 h 15);
    (">=2^20", Histogram.count_ge_pow2 h 20);
    (">=2^25", Histogram.count_ge_pow2 h 25);
  ]

let rates = List.map snd online_rate_points

(* Every data point below is an independent job: it builds its own
   Scenario — hence its own Engine, RNG and guest state — from the
   shared immutable Config, so fanning jobs out over Pool worker
   domains shares no mutable state and the folded-back outcome is
   identical at any worker count. *)
let par_map f xs = Pool.map f xs

(* ----- Fig 1a: LU run time vs online rate, Credit scheduler ----- *)

let paper_fig1a_credit =
  Series.make ~label:"paper Credit LU (s)" ~x_name:"online rate (%)"
    ~y_name:"run time (s)"
    [ (100., 400.); (66.7, 700.); (40., 1400.); (22.2, 2700.) ]

let fig1a_run config =
  let runtimes =
    par_map
      (fun (w, r) ->
        (r, nas_runtime config ~sched:Config.Credit ~bench:Sim_workloads.Nas.LU ~weight:w))
      online_rate_points
  in
  let measured =
    Series.make ~label:"Credit LU (sim s)" ~x_name:"online rate (%)"
      ~y_name:"run time (s)" runtimes
  in
  let base = List.assoc 100. runtimes in
  let slowdown =
    Series.map_y measured ~f:(fun y -> y /. base)
  in
  let paper_slowdown = Series.map_y paper_fig1a_credit ~f:(fun y -> y /. 400.) in
  let measured_222 = List.assoc 22.2 runtimes /. base in
  {
    series = [ measured; { slowdown with Series.label = "Credit LU slowdown" } ];
    expected =
      [
        paper_fig1a_credit;
        { paper_slowdown with Series.label = "paper slowdown" };
      ];
    notes =
      [
        note
          "shape: slowdown at 22.2%% online should be well above the 4.5x \
           fair-share bound (paper ~6.8x; measured %.2fx)"
          measured_222;
        "absolute seconds are simulator scale (workloads shrunk by \
         config.scale); compare slowdowns, not seconds";
      ];
  }

(* ----- Fig 1b: spinlock waiting-time statistics vs online rate ----- *)

let fig1b_run config =
  let per_rate =
    par_map
      (fun (w, r) ->
        let s, _m = nas_run config ~sched:Config.Credit ~bench:Sim_workloads.Nas.LU ~weight:w in
        (r, wait_bucket_counts (Runner.monitor_of s ~vm:"V1")))
      online_rate_points
  in
  let series_for band =
    Series.make
      ~label:(Printf.sprintf "waits %s cycles" band)
      ~x_name:"online rate (%)" ~y_name:"count"
      (List.map
         (fun (r, counts) -> (r, float_of_int (List.assoc band counts)))
         per_rate)
  in
  let ge10 = series_for ">=2^10" in
  let ge20 = series_for ">=2^20" in
  let ge25 = series_for ">=2^25" in
  let frac_25 r =
    let counts = List.assoc r per_rate in
    let total = List.assoc ">=2^10" counts in
    if total = 0 then 0.
    else float_of_int (List.assoc ">=2^25" counts) /. float_of_int total
  in
  {
    series = [ ge10; ge20; ge25 ];
    expected =
      [
        Series.make ~label:"paper waits >=2^10" ~x_name:"online rate (%)"
          ~y_name:"count"
          [ (100., 3000.); (66.7, 1500.); (40., 600.); (22.2, 350.) ];
      ];
    notes =
      [
        "paper observations: (1) total spinlock count falls with the online \
         rate; (2) most waits < 2^15; (3) the share of waits > 2^25 grows \
         quickly as the online rate drops";
        note "measured share of waits >= 2^25: %s"
          (String.concat ", "
             (List.map
                (fun r -> Printf.sprintf "%.1f%% at %g%%" (100. *. frac_25 r) r)
                rates));
      ];
  }

(* ----- Fig 2 / Fig 8: detailed spinlock wait traces ----- *)

let trace_summary config ~sched =
  (* Each job returns its scenario's monitor: private to the job while
     running, read-only once the job has completed. *)
  let per_rate =
    par_map
      (fun (w, r) ->
        let s, _m = nas_run config ~sched ~bench:Sim_workloads.Nas.LU ~weight:w in
        let monitor = Runner.monitor_of s ~vm:"V1" in
        (r, monitor))
      online_rate_points
  in
  let band lo hi =
    Series.make
      ~label:(Printf.sprintf "waits in [2^%d, 2^%d)" lo hi)
      ~x_name:"online rate (%)" ~y_name:"count"
      (List.map
         (fun (r, m) ->
           let h = Sim_guest.Monitor.spin_histogram m in
           ( r,
             float_of_int
               (Histogram.count_ge_pow2 h lo - Histogram.count_ge_pow2 h hi) ))
         per_rate)
  in
  let max_wait =
    Series.make ~label:"max wait (log2 cycles)" ~x_name:"online rate (%)"
      ~y_name:"log2 cycles"
      (List.map
         (fun (r, m) ->
           let h = Sim_guest.Monitor.spin_histogram m in
           match Histogram.max_value h with
           | Some v when v >= 1 ->
             (r, float_of_int (Sim_engine.Units.log2_floor v))
           | Some _ | None -> (r, 0.))
         per_rate)
  in
  ([ band 10 15; band 15 20; band 20 25; band 25 31; max_wait ], per_rate)

let locality_note per_rate =
  (* Property (4) of §2.2: long waits arrive in neighbouring spinlocks.
     Measure the fraction of >=2^20 trace entries whose predecessor in
     the trace is also >=2^20 (clustering). *)
  let cluster m =
    let threshold = Sim_engine.Units.pow2 20 in
    let entries = Sim_guest.Monitor.trace m in
    let rec scan prev_big hits total = function
      | [] -> (hits, total)
      | (e : Sim_guest.Monitor.trace_entry) :: rest ->
        let big = e.Sim_guest.Monitor.wait >= threshold in
        if big then
          scan big (if prev_big then hits + 1 else hits) (total + 1) rest
        else scan big hits total rest
    in
    let hits, total = scan false 0 0 entries in
    if total = 0 then nan else float_of_int hits /. float_of_int total
  in
  note "locality: fraction of >=2^20 waits immediately preceded by another: %s"
    (String.concat ", "
       (List.map
          (fun (r, m) -> Printf.sprintf "%.2f at %g%%" (cluster m) r)
          per_rate))

let fig2_run config =
  let series, per_rate = trace_summary config ~sched:Config.Credit in
  {
    series;
    expected = [];
    notes =
      [
        "paper Fig 2: under Credit, waits >= 2^25 appear at reduced online \
         rates and cluster (locality of synchronization)";
        locality_note per_rate;
      ];
  }

let fig8_run config =
  let series, per_rate = trace_summary config ~sched:Config.Asman in
  let over_222 =
    match List.assoc_opt 22.2 per_rate with
    | Some m -> Histogram.count_ge_pow2 (Sim_guest.Monitor.spin_histogram m) 25
    | None -> 0
  in
  {
    series;
    expected = [];
    notes =
      [
        "paper Fig 8: ASMan eliminates most over-threshold waits that Credit \
         exhibits in Fig 2 at the same online rates";
        note "measured waits >= 2^25 at 22.2%% online under ASMan: %d" over_222;
      ];
  }

(* ----- Fig 7: LU run time, Credit vs ASMan ----- *)

let paper_fig7_asman =
  Series.make ~label:"paper ASMan LU (s)" ~x_name:"online rate (%)"
    ~y_name:"run time (s)"
    [ (100., 400.); (66.7, 620.); (40., 1050.); (22.2, 1900.) ]

let fig7_run config =
  (* One job per (scheduler, online rate) point: 8 independent runs. *)
  let specs =
    List.concat_map
      (fun sched -> List.map (fun (w, r) -> (sched, w, r)) online_rate_points)
      [ Config.Credit; Config.Asman ]
  in
  let times =
    par_map
      (fun (sched, w, _r) ->
        nas_runtime config ~sched ~bench:Sim_workloads.Nas.LU ~weight:w)
      specs
  in
  let points =
    List.map2 (fun (sched, _w, r) t -> (Config.sched_name sched, r, t)) specs times
  in
  let series_of sched_name label =
    Series.make ~label ~x_name:"online rate (%)" ~y_name:"run time (s)"
      (List.filter_map
         (fun (n, r, t) -> if n = sched_name then Some (r, t) else None)
         points)
  in
  let credit = series_of "credit" "Credit LU (sim s)" in
  let asman = series_of "asman" "ASMan LU (sim s)" in
  let ratio_at r =
    match (Series.y_at asman r, Series.y_at credit r) with
    | Some a, Some c when c > 0. -> a /. c
    | _ -> nan
  in
  {
    series = [ credit; asman ];
    expected = [ paper_fig1a_credit; paper_fig7_asman ];
    notes =
      [
        note
          "shape: ASMan should track the fair-share bound while Credit \
           degrades superlinearly; ASMan/Credit run-time ratio at 22.2%% = \
           %.2f (paper ~0.70), at 40%% = %.2f (paper ~0.75), at 100%% = %.2f \
           (paper ~1.0)"
          (ratio_at 22.2) (ratio_at 40.) (ratio_at 100.);
      ];
  }

(* ----- Fig 9: NAS slowdowns, Credit vs ASMan ----- *)

let fig9_rates = [ (128, 66.7); (64, 40.); (32, 22.2) ]

let fig9_run config =
  let benches = Sim_workloads.Nas.all in
  (* One flat fan-out: 7 baseline runs plus 2 schedulers x 3 rates x 7
     benchmarks, every run an independent job. *)
  let base_specs = List.map (fun b -> (Config.Credit, 256, b)) benches in
  let sweep_specs =
    List.concat_map
      (fun sched ->
        List.concat_map
          (fun (w, _r) -> List.map (fun b -> (sched, w, b)) benches)
          fig9_rates)
      [ Config.Credit; Config.Asman ]
  in
  let specs = base_specs @ sweep_specs in
  let times =
    par_map
      (fun (sched, w, b) -> nas_runtime config ~sched ~bench:b ~weight:w)
      specs
  in
  let table =
    List.map2
      (fun (sched, w, b) t ->
        ((Config.sched_name sched, w, Sim_workloads.Nas.name b), t))
      specs times
  in
  let time sched w b =
    List.assoc (Config.sched_name sched, w, Sim_workloads.Nas.name b) table
  in
  let slowdown sched b w = time sched w b /. time Config.Credit 256 b in
  let per_sched_rate sched (w, r) =
    let label =
      Printf.sprintf "%s @%g%%" (Config.sched_name sched) r
    in
    let values =
      List.mapi (fun i b -> (float_of_int i, slowdown sched b w)) benches
    in
    Series.make ~label ~x_name:"benchmark index" ~y_name:"slowdown" values
  in
  let credit_series = List.map (per_sched_rate Config.Credit) fig9_rates in
  let asman_series = List.map (per_sched_rate Config.Asman) fig9_rates in
  let avg s =
    let ys = Series.ys s in
    List.fold_left ( +. ) 0. ys /. float_of_int (List.length ys)
  in
  let avg_series label series_list =
    Series.make ~label ~x_name:"online rate (%)" ~y_name:"avg slowdown"
      (List.map2 (fun (_, r) s -> (r, avg s)) fig9_rates series_list)
  in
  let credit_avg = avg_series "Credit avg slowdown" credit_series in
  let asman_avg = avg_series "ASMan avg slowdown" asman_series in
  let saving r =
    match (Series.y_at credit_avg r, Series.y_at asman_avg r) with
    | Some c, Some a when c > 0. -> 100. *. (c -. a) /. c
    | _ -> nan
  in
  {
    series = (credit_series @ asman_series) @ [ credit_avg; asman_avg ];
    expected = [];
    notes =
      [
        note "benchmark indices: %s"
          (String.concat ", "
             (List.mapi
                (fun i b -> Printf.sprintf "%d=%s" i (Sim_workloads.Nas.name b))
                benches));
        note
          "paper: ASMan saves up to 70%% of the average slowdown at 22.2%%; \
           measured savings: %.0f%% at 66.7%%, %.0f%% at 40%%, %.0f%% at 22.2%%"
          (saving 66.7) (saving 40.) (saving 22.2);
        "shape: EP (index 2) should degrade least and be insensitive to the \
         scheduler; sync-heavy CG/MG/LU should benefit most from ASMan";
      ];
  }

(* ----- Fig 10: SPECjbb throughput and score ----- *)

let fig10_warehouses = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let fig10_window_sec = 0.6

let fig10_throughput config ~sched ~weight ~warehouses =
  let params =
    Sim_workloads.Specjbb.default_params ~freq:(Config.freq config) ~warehouses
  in
  let workload = Sim_workloads.Specjbb.workload ~vcpus:4 params in
  let s = single_vm_scenario config ~sched ~weight ~workload in
  (* Warm up half a second, then measure a fixed window. *)
  let warm = Sim_engine.Units.cycles_of_sec_f (Config.freq config) 0.3 in
  Sim_engine.Engine.run ~until:warm s.Scenario.engine;
  let m = Runner.run_window s ~sec:fig10_window_sec in
  let vm = Runner.vm_metrics m ~vm:"V1" in
  float_of_int vm.Runner.marks /. fig10_window_sec /. 1000.

let fig10_run config =
  (* 2 schedulers x 3 rates x 8 warehouse counts = 48 independent jobs. *)
  let specs =
    List.concat_map
      (fun sched ->
        List.concat_map
          (fun (w, r) -> List.map (fun wh -> (sched, w, r, wh)) fig10_warehouses)
          fig9_rates)
      [ Config.Credit; Config.Asman ]
  in
  let tputs =
    par_map
      (fun (sched, w, _r, wh) ->
        fig10_throughput config ~sched ~weight:w ~warehouses:wh)
      specs
  in
  let table =
    List.map2
      (fun (sched, _w, r, wh) v -> ((Config.sched_name sched, r, wh), v))
      specs tputs
  in
  let per sched (_w, r) =
    let label =
      Printf.sprintf "%s @%g%%" (Config.sched_name sched) r
    in
    Series.make ~label ~x_name:"warehouses" ~y_name:"throughput (k bops)"
      (List.map
         (fun wh ->
           ( float_of_int wh,
             List.assoc (Config.sched_name sched, r, wh) table ))
         fig10_warehouses)
  in
  let credit_series = List.map (per Config.Credit) fig9_rates in
  let asman_series = List.map (per Config.Asman) fig9_rates in
  let score s =
    Sim_workloads.Specjbb.score ~vcpus:4
      (List.filter_map
         (fun (x, y) -> if x >= 4. then Some (int_of_float x, y) else None)
         (Series.points s))
  in
  let score_series label series_list =
    Series.make ~label ~x_name:"online rate (%)" ~y_name:"score (k bops)"
      (List.map2 (fun (_, r) s -> (r, score s)) fig9_rates series_list)
  in
  let credit_score = score_series "Credit score" credit_series in
  let asman_score = score_series "ASMan score" asman_series in
  let gain r =
    match (Series.y_at credit_score r, Series.y_at asman_score r) with
    | Some c, Some a when c > 0. -> 100. *. (a -. c) /. c
    | _ -> nan
  in
  {
    series = (credit_series @ asman_series) @ [ credit_score; asman_score ];
    expected = [];
    notes =
      [
        note
          "paper: ASMan improves the SPECjbb score by up to 26%% at low \
           online rates; measured score gains: %.0f%% at 66.7%%, %.0f%% at \
           40%%, %.0f%% at 22.2%%"
          (gain 66.7) (gain 40.) (gain 22.2);
      ];
  }

(* ----- Figs 11-12: multiple VMs, work-conserving ----- *)

type multi_vm = { label : string; make : Config.t -> Sim_workloads.Workload.t }

let mk_nas bench =
  {
    label = Sim_workloads.Nas.name bench;
    make = (fun c -> nas_workload c bench);
  }

let mk_cpu bench =
  {
    label = Sim_workloads.Speccpu.name bench;
    make =
      (fun c ->
        Sim_workloads.Speccpu.workload
          (Sim_workloads.Speccpu.params bench ~freq:(Config.freq c)
             ~scale:c.Config.scale));
  }

let multi_vm_rounds = 3

let multi_vm_run config ~vms ~sched =
  let specs =
    List.mapi
      (fun i mv ->
        {
          Scenario.vm_name = Printf.sprintf "V%d:%s" (i + 1) mv.label;
          weight = 256;
          vcpus = 4;
          workload = Some (mv.make config);
        })
      vms
  in
  let s = Scenario.build config ~sched ~vms:specs in
  let m = Runner.run_rounds s ~rounds:multi_vm_rounds ~max_sec:400. in
  List.map
    (fun spec ->
      let name = spec.Scenario.vm_name in
      let vmres = Runner.vm_metrics m ~vm:name in
      let mean =
        match vmres.Runner.round_sec with
        | [] -> nan
        | durations ->
          List.fold_left ( +. ) 0. durations
          /. float_of_int (List.length durations)
      in
      (name, mean))
    specs

let multi_vm_outcome config ~vms ~paper_note =
  let scheds =
    [
      (Config.Credit, "Credit");
      (Config.Asman, "ASMan");
      (Config.Cosched_static, "CON");
    ]
  in
  (* One job per scheduler; each builds its own multi-VM scenario. *)
  let results =
    par_map
      (fun (sched, label) -> (label, multi_vm_run config ~vms ~sched))
      scheds
  in
  let series =
    List.map
      (fun (label, by_vm) ->
        Series.make ~label ~x_name:"VM index" ~y_name:"mean round time (s)"
          (List.mapi (fun i (_, sec) -> (float_of_int i, sec)) by_vm))
      results
  in
  let vm_names = List.map fst (List.assoc "Credit" results) in
  let ratio a b vm_index =
    let get label =
      match List.nth_opt (List.assoc label results) vm_index with
      | Some (_, v) -> v
      | None -> nan
    in
    get a /. get b
  in
  let per_vm_notes =
    List.mapi
      (fun i name ->
        note "%s: ASMan/Credit = %.2f, CON/Credit = %.2f" name
          (ratio "ASMan" "Credit" i)
          (ratio "CON" "Credit" i))
      vm_names
  in
  {
    series;
    expected = [];
    notes = (paper_note :: per_vm_notes)
            @ [ note "mean of the first %d rounds per VM (paper: 10 rounds)"
                  multi_vm_rounds ];
  }

let fig11a_run config =
  multi_vm_outcome config
    ~vms:
      [
        mk_cpu Sim_workloads.Speccpu.Bzip2;
        mk_cpu Sim_workloads.Speccpu.Gcc;
        mk_nas Sim_workloads.Nas.SP;
        mk_nas Sim_workloads.Nas.LU;
      ]
    ~paper_note:
      "paper Fig 11a: coscheduling cuts SP and (especially) LU run times; \
       dynamic ASMan costs the throughput VMs (bzip2, gcc) less than static \
       CON"

let fig11b_run config =
  multi_vm_outcome config
    ~vms:
      [
        mk_nas Sim_workloads.Nas.LU;
        mk_nas Sim_workloads.Nas.LU;
        mk_nas Sim_workloads.Nas.SP;
        mk_nas Sim_workloads.Nas.SP;
      ]
    ~paper_note:
      "paper Fig 11b: with four concurrent VMs, both coscheduling variants \
       dramatically outperform Credit for LU and SP"

let fig12a_run config =
  multi_vm_outcome config
    ~vms:
      [
        mk_cpu Sim_workloads.Speccpu.Bzip2;
        mk_cpu Sim_workloads.Speccpu.Bzip2;
        mk_cpu Sim_workloads.Speccpu.Gcc;
        mk_cpu Sim_workloads.Speccpu.Gcc;
        mk_nas Sim_workloads.Nas.SP;
        mk_nas Sim_workloads.Nas.LU;
      ]
    ~paper_note:
      "paper Fig 12a: coscheduling saves up to ~45% of SP's and ~70% of LU's \
       run time; throughput degradation <=8% under ASMan vs <=18% under CON"

let fig12b_run config =
  multi_vm_outcome config
    ~vms:
      [
        mk_cpu Sim_workloads.Speccpu.Bzip2;
        mk_cpu Sim_workloads.Speccpu.Gcc;
        mk_nas Sim_workloads.Nas.SP;
        mk_nas Sim_workloads.Nas.SP;
        mk_nas Sim_workloads.Nas.LU;
        mk_nas Sim_workloads.Nas.LU;
      ]
    ~paper_note:
      "paper Fig 12b: coscheduling saves ~30% of SP's and ~60% of LU's run \
       time"

(* ----- Resilience: fairness + slowdown vs IPI-loss rate ----- *)

let resilience_rates = [ 0.; 0.05; 0.10; 0.20; 0.40 ]

(* Three LU VMs over-commit the 8 PCPUs (12 guest VCPUs + Dom0), so
   the gang scheduler re-gathers each VM with coscheduling IPIs every
   period — exactly the traffic the chaos layer attacks, and enough of
   it for the watchdog's strike counter to be statistically
   meaningful over the run. *)
let resilience_rounds = 6

let contended_run config ~sched =
  let vms =
    List.map
      (fun i ->
        {
          Scenario.vm_name = Printf.sprintf "V%d" i;
          weight = 256;
          vcpus = 4;
          workload = Some (nas_workload config Sim_workloads.Nas.LU);
        })
      [ 1; 2; 3 ]
  in
  let s = Scenario.build config ~sched ~vms in
  let max_sec =
    float_of_int resilience_rounds *. max_sec_for config Sim_workloads.Nas.LU
  in
  let m = Runner.run_rounds s ~rounds:resilience_rounds ~max_sec in
  (s, m)

let resilience_run config =
  let specs =
    List.concat_map
      (fun sched -> List.map (fun rate -> (sched, rate)) resilience_rates)
      [ Config.Credit; Config.Asman ]
  in
  let results =
    par_map
      (fun (sched, rate) ->
        let config =
          Config.with_faults config (Sim_faults.Fault.ipi_loss rate)
        in
        let _s, m = contended_run config ~sched in
        let demotions =
          match List.assoc_opt "watchdog_demotions" m.Runner.sched_counters with
          | Some d -> d
          | None -> 0
        in
        let mean l =
          List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
        in
        let runtime =
          mean
            (List.map
               (fun (v : Runner.vm_metrics) -> Runner.mean_round_sec m ~vm:v.Runner.vm_name)
               m.Runner.vms)
        in
        let fairness =
          mean
            (List.map
               (fun (v : Runner.vm_metrics) ->
                 if v.Runner.expected_online <= 0. then nan
                 else v.Runner.online_rate /. v.Runner.expected_online)
               m.Runner.vms)
        in
        (runtime, fairness, demotions, m.Runner.invariant_violations))
      specs
  in
  let table =
    List.map2
      (fun (sched, rate) r -> ((Config.sched_name sched, rate), r))
      specs results
  in
  let get sched rate = List.assoc (Config.sched_name sched, rate) table in
  let pct r = r *. 100. in
  let slowdown_series sched label =
    let base, _, _, _ = get sched 0. in
    Series.make ~label ~x_name:"IPI loss (%)" ~y_name:"slowdown vs clean"
      (List.map
         (fun rate ->
           let t, _, _, _ = get sched rate in
           (pct rate, t /. base))
         resilience_rates)
  in
  let fairness_series sched label =
    Series.make ~label ~x_name:"IPI loss (%)" ~y_name:"online/expected"
      (List.map
         (fun rate ->
           let _, f, _, _ = get sched rate in
           (pct rate, f))
         resilience_rates)
  in
  let demotion_series =
    Series.make ~label:"ASMan watchdog demotions" ~x_name:"IPI loss (%)"
      ~y_name:"demotions"
      (List.map
         (fun rate ->
           let _, _, d, _ = get Config.Asman rate in
           (pct rate, float_of_int d))
         resilience_rates)
  in
  let violation_series =
    Series.make ~label:"invariant violations (all runs)"
      ~x_name:"IPI loss (%)" ~y_name:"violations"
      (List.map
         (fun rate ->
           let _, _, _, vc = get Config.Credit rate in
           let _, _, _, va = get Config.Asman rate in
           (pct rate, float_of_int (vc + va)))
         resilience_rates)
  in
  let total_violations =
    List.fold_left (fun acc (_, (_, _, _, v)) -> acc + v) 0 table
  in
  let asman_slow rate =
    let base, _, _, _ = get Config.Asman 0. in
    let t, _, _, _ = get Config.Asman rate in
    t /. base
  in
  {
    series =
      [
        slowdown_series Config.Credit "Credit slowdown";
        slowdown_series Config.Asman "ASMan slowdown";
        fairness_series Config.Credit "Credit fairness";
        fairness_series Config.Asman "ASMan fairness";
        demotion_series;
        violation_series;
      ];
    expected = [];
    notes =
      [
        note
          "self-healing: every run completes with %d invariant violations \
           total; under heavy IPI loss the watchdog demotes the VM to plain \
           Credit, bounding ASMan's slowdown (%.2fx at 40%% loss) near the \
           Credit baseline instead of stalling on lost coschedules"
          total_violations (asman_slow 0.40);
        "Credit sends no coscheduling IPIs, so its curve is the \
         fault-insensitive control; fairness = measured/expected online rate \
         (Equation 2)";
      ];
  }

(* ----- theft: attained vs entitled under scheduler attacks ----- *)

(* A small, saturated host makes entitlement a binding constraint: on
   2 PCPUs, a weight-128 attacker among weight-512 sustained victims
   is entitled to ~13% of a PCPU, so the attained/entitled ratio has
   headroom to expose theft. The window protocol (not rounds): attack
   guests run forever. *)

let theft_attack_names = [ "dodge"; "steal"; "launder" ]

let theft_attackers attack : (string * Scenario.workload_desc) list =
  match attack with
  | "dodge" -> [ ("A1", Scenario.W_attack_dodge { threads = 1 }) ]
  | "steal" -> [ ("A1", Scenario.W_attack_steal { threads = 1 }) ]
  | "launder" ->
    [
      ("A1", Scenario.W_attack_launder { threads = 1; phased = false });
      ("A2", Scenario.W_attack_launder { threads = 1; phased = true });
    ]
  | a -> invalid_arg (Printf.sprintf "theft_attackers: unknown attack %S" a)

let theft_vm_descs attack =
  List.map
    (fun (n, w) ->
      { Scenario.vd_name = n; vd_weight = 128; vd_vcpus = 1; vd_workload = Some w })
    (theft_attackers attack)
  @ List.init 3 (fun i ->
        {
          Scenario.vd_name = Printf.sprintf "V%d" (i + 1);
          vd_weight = 512;
          vd_vcpus = 2;
          vd_workload =
            Some (Scenario.W_speccpu (if i mod 2 = 0 then "gcc" else "bzip2"));
        })

let theft_window_sec = 1.0

(* One cell of the grid: (attacker ratio, worst victim ratio, attacker
   theft cycles). Ratios are aggregate attained/entitled; attackers
   aggregated so the laundering pair is judged as a coalition. *)
let theft_cell config ~sched ~accounting ~attack =
  let config =
    {
      (Config.with_work_conserving config true) with
      Config.topology = Sim_hw.Topology.make ~sockets:1 ~cores_per_socket:2;
      accounting;
    }
  in
  let s = Scenario.of_descs config ~sched (theft_vm_descs attack) in
  let m = Runner.run_window s ~sec:theft_window_sec in
  let is_attacker (inst : Scenario.vm_instance) =
    match inst.Scenario.spec.Scenario.workload with
    | Some w -> Sim_workloads.Attack.is_attack w
    | None -> false
  in
  let ratio insts =
    let att, ent =
      List.fold_left
        (fun (a, e) (inst : Scenario.vm_instance) ->
          let vm =
            Runner.vm_metrics m ~vm:inst.Scenario.spec.Scenario.vm_name
          in
          (a + vm.Runner.attained_cycles, e + vm.Runner.entitled_cycles))
        (0, 0) insts
    in
    if ent <= 0 then nan else float_of_int att /. float_of_int ent
  in
  let attackers, victims = List.partition is_attacker s.Scenario.vms in
  let worst_victim =
    List.fold_left
      (fun acc (inst : Scenario.vm_instance) ->
        Float.min acc (ratio [ inst ]))
      infinity victims
  in
  let theft =
    List.fold_left
      (fun acc (inst : Scenario.vm_instance) ->
        acc
        + (Runner.vm_metrics m ~vm:inst.Scenario.spec.Scenario.vm_name)
            .Runner.theft_cycles)
      0 attackers
  in
  (ratio attackers, worst_victim, theft)

let theft_combos =
  [
    (Config.Credit, Sim_vmm.Vmm.Sampled, "Credit sampled");
    (Config.Credit, Sim_vmm.Vmm.Precise, "Credit precise");
    (Config.Asman, Sim_vmm.Vmm.Sampled, "ASMan sampled");
    (Config.Asman, Sim_vmm.Vmm.Precise, "ASMan precise");
  ]

let theft_run config =
  let cells =
    par_map
      (fun ((sched, accounting, _), attack) ->
        theft_cell config ~sched ~accounting ~attack)
      (List.concat_map
         (fun combo -> List.map (fun a -> (combo, a)) theft_attack_names)
         theft_combos)
  in
  let table =
    List.map2
      (fun (combo, attack) cell -> ((combo, attack), cell))
      (List.concat_map
         (fun combo -> List.map (fun a -> (combo, a)) theft_attack_names)
         theft_combos)
      cells
  in
  let x_of_attack = List.mapi (fun i a -> (a, float_of_int i)) theft_attack_names in
  let attacker_series (combo : Config.sched_kind * Sim_vmm.Vmm.accounting * string) =
    let _, _, label = combo in
    Series.make
      ~label:(Printf.sprintf "%s: attacker attained/entitled" label)
      ~x_name:"attack (0=dodge 1=steal 2=launder)" ~y_name:"ratio"
      (List.map
         (fun a ->
           let r, _, _ = List.assoc (combo, a) table in
           (List.assoc a x_of_attack, r))
         theft_attack_names)
  in
  let victim_series combo =
    let _, _, label = combo in
    Series.make
      ~label:(Printf.sprintf "%s: worst victim attained/entitled" label)
      ~x_name:"attack (0=dodge 1=steal 2=launder)" ~y_name:"ratio"
      (List.map
         (fun a ->
           let _, v, _ = List.assoc (combo, a) table in
           (List.assoc a x_of_attack, v))
         theft_attack_names)
  in
  let cell combo attack = List.assoc (combo, attack) table in
  let credit_sampled = List.nth theft_combos 0 in
  let dodge_sampled, _, _ = cell credit_sampled "dodge" in
  let precise_combos =
    List.filter (fun (_, a, _) -> a = Sim_vmm.Vmm.Precise) theft_combos
  in
  let worst_precise_attacker =
    List.fold_left
      (fun acc combo ->
        List.fold_left
          (fun acc a ->
            let r, _, _ = cell combo a in
            Float.max acc r)
          acc theft_attack_names)
      0. precise_combos
  in
  let precise_theft =
    List.fold_left
      (fun acc combo ->
        List.fold_left
          (fun acc a ->
            let _, _, t = cell combo a in
            acc + t)
          acc theft_attack_names)
      0 precise_combos
  in
  {
    series =
      List.map attacker_series theft_combos
      @ List.map victim_series theft_combos;
    expected = [];
    notes =
      [
        note
          "sampled accounting is attackable: under Credit the tick-dodger \
           attains %.2fx its entitlement (expect >= 2x) by sleeping across \
           the debiting tick"
          dodge_sampled;
        note
          "precise accounting contains all three attacks: worst attacker \
           ratio %.2fx (expect <= 1.5x), aggregate attacker theft %d cycles \
           across precise cells"
          worst_precise_attacker precise_theft;
        "ratios are aggregate attained/entitled per coalition; the \
         laundering pair is judged summed, which is what exposes it";
      ];
  }

(* ----- registry ----- *)

let all =
  [
    {
      id = "fig1a";
      title = "LU run time vs VCPU online rate (Credit)";
      description =
        "Parallel benchmark LU on a 4-VCPU VM under the Credit scheduler, \
         non-work-conserving, online rate swept via the VM weight";
      run = fig1a_run;
    };
    {
      id = "fig1b";
      title = "Spinlock waiting-time statistics vs online rate (Credit)";
      description =
        "Counts of monitored waits above 2^10 / 2^20 / 2^25 cycles during \
         the LU runs of Fig 1a";
      run = fig1b_run;
    };
    {
      id = "fig2";
      title = "Detailed spinlock waits under Credit (trace summary)";
      description =
        "Distribution of per-acquisition waiting times at each online rate; \
         long waits appear and cluster as the rate drops";
      run = fig2_run;
    };
    {
      id = "fig7";
      title = "LU run time: Credit vs ASMan";
      description = "The headline result: adaptive coscheduling vs baseline";
      run = fig7_run;
    };
    {
      id = "fig8";
      title = "Detailed spinlock waits under ASMan (trace summary)";
      description = "Fig 2 repeated under ASMan: over-threshold waits vanish";
      run = fig8_run;
    };
    {
      id = "fig9";
      title = "NAS benchmark slowdowns: Credit vs ASMan";
      description =
        "All seven NAS benchmarks at 66.7/40/22.2% online rates; slowdown \
         relative to the 100% Credit run; plus average slowdown";
      run = fig9_run;
    };
    {
      id = "fig10";
      title = "SPECjbb2005 throughput and score: Credit vs ASMan";
      description =
        "Throughput vs warehouses (1-8) at three online rates; score = mean \
         over warehouses >= 4";
      run = fig10_run;
    };
    {
      id = "fig11a";
      title = "Four VMs: bzip2, gcc, SP, LU (work-conserving)";
      description = "Mixed workloads under Credit / ASMan / static CON";
      run = fig11a_run;
    };
    {
      id = "fig11b";
      title = "Four VMs: LU, LU, SP, SP (work-conserving)";
      description = "All-concurrent workloads under the three schedulers";
      run = fig11b_run;
    };
    {
      id = "fig12a";
      title = "Six VMs: bzip2 x2, gcc x2, SP, LU";
      description = "Four throughput + two concurrent VMs";
      run = fig12a_run;
    };
    {
      id = "fig12b";
      title = "Six VMs: bzip2, gcc, SP x2, LU x2";
      description = "Two throughput + four concurrent VMs";
      run = fig12b_run;
    };
    {
      id = "theft";
      title = "Attained vs entitled CPU under scheduler attacks";
      description =
        "Tick-dodging, cycle-stealing and laundering-pair guests on a \
         saturated 2-PCPU host: Credit/ASMan under Xen-style sampled \
         accounting (attackable) vs span-exact precise accounting \
         (contained)";
      run = theft_run;
    };
    {
      id = "resilience";
      title = "Fairness and slowdown vs coscheduling IPI-loss rate";
      description =
        "Three contended LU VMs under injected IPI loss (0-40%): Credit vs \
         ASMan with the coscheduling watchdog; plus watchdog demotions and \
         runtime invariant violations per loss rate";
      run = resilience_run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

(* Theft-figure cells flattened to "<series label> <attack>" ->
   attained/entitled ratio — the bench dump's "fairness" section and
   the run registry's fairness entries come from here. *)
let fairness_entries (o : outcome) =
  let attack_of_x x =
    match int_of_float x with
    | 0 -> "dodge"
    | 1 -> "steal"
    | 2 -> "launder"
    | i -> string_of_int i
  in
  List.concat_map
    (fun (s : Series.t) ->
      List.map
        (fun (x, y) ->
          (Printf.sprintf "%s %s" s.Series.label (attack_of_x x), y))
        (Series.points s))
    o.series
