(** Render experiment outcomes as plain-text reports. *)

val outcome : Experiments.t -> Experiments.outcome -> string
(** Title, measured-series table, paper-series table (if any), notes. *)

val summary_line : Experiments.t -> Experiments.outcome -> string
(** One line: id, title, series count. *)

val health_summary : Runner.metrics -> string
(** Watchdog counters, fault-injector tallies and the invariant
    violation count of one run (as printed by [asman_cli run]),
    with a per-VM demotion/violation breakdown for any VM the
    watchdog demoted or the invariant checker flagged. *)

val series_csv : Sim_stats.Series.t list -> string

val trace_csv : Sim_guest.Monitor.trace_entry list -> string
(** Columns: time (cycles), wait (cycles), log2 wait, lock id — the
    raw data behind the Fig 2/8 scatter plots. *)
