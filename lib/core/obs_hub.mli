(** Cross-scenario observability registry.

    Experiment figures construct scenarios deep inside their job
    functions; when a scenario is built with observability enabled
    ({!Config.obs_wanted}), {!Scenario.build} registers its trace and
    metrics registry here, labelled, so the CLI can export everything
    after the run. Mutex-protected: parallel {!Pool} jobs register
    from their own domains. Listing order is sorted by label, keeping
    exports deterministic at any worker count. *)

type entry = {
  label : string;  (** scheduler, VM list and seed of the scenario *)
  freq_khz : int;
  pcpus : int;
  vm_names : (int * string) list;  (** domain id -> VM name *)
  trace : Sim_obs.Trace.t;
  metrics : Sim_obs.Metrics.t;
}

val register : entry -> unit

val entries : unit -> entry list
(** Registered entries, sorted by label (does not clear). *)

val drain : unit -> entry list
(** Like {!entries} but also empties the registry. *)

val clear : unit -> unit

(** {1 Combined exporters} *)

val chrome_json : entry list -> string
(** One Chrome [trace_event] document; each entry becomes its own
    process ([pid] = position + 1) named by its label. *)

val metrics_text : entry list -> string

val metrics_json : entry list -> string
(** [{"label": {...}, ...}] — one metrics snapshot object per entry. *)

(** {1 Export pointers}

    When the CLI writes an Obs export (trace/metrics file), it notes
    the path here so the run-registry record of the invocation can
    point at it. *)

val note_export : string -> unit

val exports : unit -> string list
(** Noted paths in write order (does not clear). *)

val drain_exports : unit -> string list
(** Like {!exports} but also empties the list. *)
