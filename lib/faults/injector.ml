open Sim_engine
open Sim_hw
module Trace = Sim_obs.Trace

type t = {
  machine : Machine.t;
  mutable vcrd_reports_dropped : int;
  mutable vcrd_reports_corrupted : int;
  mutable pcpu_stalls : int;
  mutable pcpu_offlines : int;
}

let flip = function Sim_vmm.Domain.High -> Sim_vmm.Domain.Low
  | Sim_vmm.Domain.Low -> Sim_vmm.Domain.High

(* One recurring stall/offline window chain. Targets rotate over the
   PCPUs so the same victim is not hit every time; a window that finds
   its target already degraded (or that would take down the last
   online PCPU) is skipped rather than retargeted, keeping the event
   stream independent of scheduler state. *)
let recurring_window t ~period ~length ~count ~degrade ~restore =
  let engine = Machine.engine t.machine in
  let n = Machine.pcpu_count t.machine in
  let k = ref 0 in
  let (_ : unit -> unit) =
    Engine.periodic engine ~start:period ~period (fun () ->
        let pcpu = !k mod n in
        incr k;
        if degrade ~pcpu then begin
          count ();
          ignore
            (Engine.schedule_after engine ~delay:length (fun () ->
                 restore ~pcpu))
        end)
  in
  ()

let install ~profile ~seed machine vmm =
  let t =
    {
      machine;
      vcrd_reports_dropped = 0;
      vcrd_reports_corrupted = 0;
      pcpu_stalls = 0;
      pcpu_offlines = 0;
    }
  in
  let trace = Engine.trace (Machine.engine machine) in
  let emit_fault ~kind ~pcpu ~info =
    if Trace.on trace Trace.Fault then
      Trace.emit trace
        ~now:(Engine.now (Machine.engine machine))
        (Trace.Fault_injected { kind; pcpu; info })
  in
  (* The injector's own tallies join the simulation registry so one
     snapshot covers the faults subsystem alongside engine/VMM/guest. *)
  let m = Sim_vmm.Vmm.metrics vmm in
  Sim_obs.Metrics.gauge m ~subsystem:"faults" ~name:"vcrd_reports_dropped"
    (fun () -> t.vcrd_reports_dropped);
  Sim_obs.Metrics.gauge m ~subsystem:"faults" ~name:"vcrd_reports_corrupted"
    (fun () -> t.vcrd_reports_corrupted);
  Sim_obs.Metrics.gauge m ~subsystem:"faults" ~name:"pcpu_stalls" (fun () ->
      t.pcpu_stalls);
  Sim_obs.Metrics.gauge m ~subsystem:"faults" ~name:"pcpu_offlines" (fun () ->
      t.pcpu_offlines);
  let cpu = Machine.cpu_model machine in
  let freq = cpu.Cpu_model.freq in
  let cycles_of_ms_f ms = Units.cycles_of_sec_f freq (ms /. 1000.) in
  (* Independent streams per fault channel, split in a fixed order so
     e.g. adding timer jitter to a profile does not perturb the IPI
     loss pattern of the same seed. *)
  let root = Rng.create (Int64.of_int (0x6F41 + seed)) in
  let ipi_rng = Rng.split root in
  let vcrd_rng = Rng.split root in
  let jitter_rng = Rng.split root in
  (* Fold the specs into one decision per channel. *)
  let ipi_loss_prob = ref 0. in
  let ipi_delay = ref None in
  let jitter_max = ref 0 in
  let vcrd_loss_prob = ref 0. in
  let vcrd_corrupt_prob = ref 0. in
  List.iter
    (fun spec ->
      match spec with
      | Fault.Ipi_loss { prob } -> ipi_loss_prob := prob
      | Fault.Ipi_delay { prob; max_ms } ->
        ipi_delay := Some (prob, cycles_of_ms_f max_ms)
      | Fault.Timer_jitter { max_ms } -> jitter_max := cycles_of_ms_f max_ms
      | Fault.Vcrd_loss { prob } -> vcrd_loss_prob := prob
      | Fault.Vcrd_corrupt { prob } -> vcrd_corrupt_prob := prob
      | Fault.Pcpu_stall _ | Fault.Pcpu_offline _ -> ())
    profile.Fault.specs;
  if !ipi_loss_prob > 0. || !ipi_delay <> None then
    Machine.set_ipi_filter machine (fun ~src:_ ~dst:_ ->
        (* Draw both channels unconditionally so the stream consumed
           per IPI is fixed regardless of the loss outcome. *)
        let lost =
          let u = Rng.uniform ipi_rng in
          !ipi_loss_prob > 0. && u < !ipi_loss_prob
        in
        let delay =
          match !ipi_delay with
          | None -> 0
          | Some (prob, max_cycles) ->
            let u = Rng.uniform ipi_rng in
            if u < prob then 1 + Rng.int ipi_rng (max 1 max_cycles) else 0
        in
        if lost then Machine.Drop
        else if delay > 0 then Machine.Delay delay
        else Machine.Deliver);
  if !jitter_max > 0 then
    Machine.set_tick_jitter machine (fun ~pcpu:_ ->
        Rng.int jitter_rng (!jitter_max + 1));
  if !vcrd_loss_prob > 0. || !vcrd_corrupt_prob > 0. then
    Sim_vmm.Vmm.set_vcrd_filter vmm (fun dom vcrd ->
        let u = Rng.uniform vcrd_rng in
        let v = Rng.uniform vcrd_rng in
        if !vcrd_loss_prob > 0. && u < !vcrd_loss_prob then begin
          t.vcrd_reports_dropped <- t.vcrd_reports_dropped + 1;
          emit_fault ~kind:Trace.fault_vcrd_dropped ~pcpu:(-1)
            ~info:dom.Sim_vmm.Domain.id;
          None
        end
        else if !vcrd_corrupt_prob > 0. && v < !vcrd_corrupt_prob then begin
          t.vcrd_reports_corrupted <- t.vcrd_reports_corrupted + 1;
          emit_fault ~kind:Trace.fault_vcrd_corrupted ~pcpu:(-1)
            ~info:dom.Sim_vmm.Domain.id;
          Some (flip vcrd)
        end
        else Some vcrd);
  List.iter
    (fun spec ->
      match spec with
      | Fault.Pcpu_stall { period_sec; for_sec } ->
        recurring_window t
          ~period:(Units.cycles_of_sec_f freq period_sec)
          ~length:(Units.cycles_of_sec_f freq for_sec)
          ~count:(fun () -> t.pcpu_stalls <- t.pcpu_stalls + 1)
          ~degrade:(fun ~pcpu ->
            if Machine.pcpu_stalled machine pcpu || not (Machine.pcpu_online machine pcpu)
            then false
            else begin
              Machine.set_pcpu_stalled machine ~pcpu true;
              emit_fault ~kind:Trace.fault_pcpu_stall ~pcpu ~info:1;
              true
            end)
          ~restore:(fun ~pcpu ->
            Machine.set_pcpu_stalled machine ~pcpu false;
            emit_fault ~kind:Trace.fault_pcpu_stall ~pcpu ~info:0)
      | Fault.Pcpu_offline { period_sec; for_sec } ->
        recurring_window t
          ~period:(Units.cycles_of_sec_f freq period_sec)
          ~length:(Units.cycles_of_sec_f freq for_sec)
          ~count:(fun () -> t.pcpu_offlines <- t.pcpu_offlines + 1)
          ~degrade:(fun ~pcpu ->
            if
              (not (Machine.pcpu_online machine pcpu))
              || Machine.pcpu_stalled machine pcpu
              || Machine.online_count machine <= 1
            then false
            else begin
              Machine.set_pcpu_online machine ~pcpu false;
              emit_fault ~kind:Trace.fault_pcpu_offline ~pcpu ~info:0;
              true
            end)
          ~restore:(fun ~pcpu ->
            Machine.set_pcpu_online machine ~pcpu true;
            emit_fault ~kind:Trace.fault_pcpu_restore ~pcpu ~info:0)
      | Fault.Ipi_loss _ | Fault.Ipi_delay _ | Fault.Timer_jitter _
      | Fault.Vcrd_loss _ | Fault.Vcrd_corrupt _ -> ())
    profile.Fault.specs;
  t

let stats t =
  [
    ("ipis_dropped", Machine.ipis_dropped t.machine);
    ("ipis_delayed", Machine.ipis_delayed t.machine);
    ("ticks_suppressed", Machine.ticks_suppressed t.machine);
    ("vcrd_reports_dropped", t.vcrd_reports_dropped);
    ("vcrd_reports_corrupted", t.vcrd_reports_corrupted);
    ("pcpu_stalls", t.pcpu_stalls);
    ("pcpu_offlines", t.pcpu_offlines);
  ]
