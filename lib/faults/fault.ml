type spec =
  | Ipi_loss of { prob : float }
  | Ipi_delay of { prob : float; max_ms : float }
  | Timer_jitter of { max_ms : float }
  | Pcpu_stall of { period_sec : float; for_sec : float }
  | Pcpu_offline of { period_sec : float; for_sec : float }
  | Vcrd_loss of { prob : float }
  | Vcrd_corrupt of { prob : float }

type profile = { pname : string; specs : spec list }

let none = { pname = "none"; specs = [] }

let is_none p = p.specs = []

let ipi_loss rate =
  if rate <= 0. then none
  else
    {
      pname = Printf.sprintf "ipi-loss-%g" (rate *. 100.);
      specs = [ Ipi_loss { prob = rate } ];
    }

let chaos_mild =
  {
    pname = "chaos-mild";
    specs =
      [
        Ipi_loss { prob = 0.05 };
        Timer_jitter { max_ms = 0.5 };
        Vcrd_loss { prob = 0.05 };
      ];
  }

let chaos_heavy =
  {
    pname = "chaos-heavy";
    specs =
      [
        Ipi_loss { prob = 0.20 };
        Ipi_delay { prob = 0.10; max_ms = 2.0 };
        Timer_jitter { max_ms = 1.0 };
        Pcpu_stall { period_sec = 0.7; for_sec = 0.2 };
        Pcpu_offline { period_sec = 1.0; for_sec = 0.3 };
        Vcrd_loss { prob = 0.10 };
        Vcrd_corrupt { prob = 0.05 };
      ];
  }

let stall_profile =
  { pname = "stall"; specs = [ Pcpu_stall { period_sec = 0.7; for_sec = 0.2 } ] }

let hotplug_profile =
  {
    pname = "hotplug";
    specs = [ Pcpu_offline { period_sec = 1.0; for_sec = 0.3 } ];
  }

let spec_to_string = function
  | Ipi_loss { prob } -> Printf.sprintf "ipi-loss %g%%" (prob *. 100.)
  | Ipi_delay { prob; max_ms } ->
    Printf.sprintf "ipi-delay %g%% up to %gms" (prob *. 100.) max_ms
  | Timer_jitter { max_ms } -> Printf.sprintf "timer-jitter up to %gms" max_ms
  | Pcpu_stall { period_sec; for_sec } ->
    Printf.sprintf "pcpu-stall %gs every %gs" for_sec period_sec
  | Pcpu_offline { period_sec; for_sec } ->
    Printf.sprintf "pcpu-offline %gs every %gs" for_sec period_sec
  | Vcrd_loss { prob } -> Printf.sprintf "vcrd-loss %g%%" (prob *. 100.)
  | Vcrd_corrupt { prob } -> Printf.sprintf "vcrd-corrupt %g%%" (prob *. 100.)

let to_string p =
  if is_none p then "none"
  else
    Printf.sprintf "%s (%s)" p.pname
      (String.concat ", " (List.map spec_to_string p.specs))

(* "ipi-loss-10" style names: the suffix is a percentage. *)
let percent_suffix ~prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    float_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let of_name name =
  match name with
  | "none" -> Some none
  | "chaos-mild" -> Some chaos_mild
  | "chaos-heavy" -> Some chaos_heavy
  | "jitter" ->
    Some { pname = "jitter"; specs = [ Timer_jitter { max_ms = 1.0 } ] }
  | "stall" -> Some stall_profile
  | "hotplug" -> Some hotplug_profile
  | _ -> (
    match percent_suffix ~prefix:"ipi-loss-" name with
    | Some pct when pct >= 0. && pct <= 100. ->
      Some { pname = name; specs = [ Ipi_loss { prob = pct /. 100. } ] }
    | _ -> (
      match percent_suffix ~prefix:"ipi-delay-" name with
      | Some pct when pct >= 0. && pct <= 100. ->
        Some
          {
            pname = name;
            specs = [ Ipi_delay { prob = pct /. 100.; max_ms = 2.0 } ];
          }
      | _ -> (
        match percent_suffix ~prefix:"vcrd-loss-" name with
        | Some pct when pct >= 0. && pct <= 100. ->
          Some { pname = name; specs = [ Vcrd_loss { prob = pct /. 100. } ] }
        | _ -> None)))

let known_names =
  [
    "none";
    "chaos-mild";
    "chaos-heavy";
    "jitter";
    "stall";
    "hotplug";
    "ipi-loss-<pct>";
    "ipi-delay-<pct>";
    "vcrd-loss-<pct>";
  ]
