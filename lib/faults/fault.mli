(** Fault taxonomy for the chaos layer.

    A {!spec} is one declarative fault source; a {!profile} is a named
    bundle of them, carried in [Config] and realised against a
    concrete machine/VMM by {!Injector.install}. Rates are
    probabilities per event (IPI, VCRD report); windows are in
    simulated seconds so profiles are independent of the CPU model. *)

type spec =
  | Ipi_loss of { prob : float }
      (** Each coscheduling IPI is independently lost. *)
  | Ipi_delay of { prob : float; max_ms : float }
      (** Each IPI is independently delayed by up to [max_ms]. *)
  | Timer_jitter of { max_ms : float }
      (** Every per-PCPU slot tick slips by up to [max_ms]. *)
  | Pcpu_stall of { period_sec : float; for_sec : float }
      (** Recurringly stall one PCPU's slot timer for [for_sec]
          (round-robin over PCPUs). *)
  | Pcpu_offline of { period_sec : float; for_sec : float }
      (** Recurringly hot-unplug one PCPU for [for_sec] (round-robin;
          never the last online PCPU). *)
  | Vcrd_loss of { prob : float }
      (** Each guest VCRD report is independently dropped. *)
  | Vcrd_corrupt of { prob : float }
      (** Each guest VCRD report is independently inverted. *)

type profile = { pname : string; specs : spec list }

val none : profile

val is_none : profile -> bool

val ipi_loss : float -> profile
(** [ipi_loss rate] is a single-spec profile; [rate <= 0] is {!none}.
    Used by the resilience figure's loss-rate sweep. *)

val chaos_mild : profile
val chaos_heavy : profile

val of_name : string -> profile option
(** Parse a named profile: [none], [chaos-mild], [chaos-heavy],
    [jitter], [stall], [hotplug], or the parameterized
    [ipi-loss-<pct>], [ipi-delay-<pct>], [vcrd-loss-<pct>]. *)

val known_names : string list
(** For usage messages. *)

val to_string : profile -> string
