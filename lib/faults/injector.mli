(** Realize a fault {!Fault.profile} against a machine/VMM pair.

    The injector draws every stochastic decision from its own seeded
    RNG streams (split per fault channel in a fixed order), so a given
    [(profile, seed)] produces the same fault schedule on every run —
    chaos runs are as reproducible as clean ones. *)

type t

val install : profile:Fault.profile -> seed:int -> Sim_hw.Machine.t ->
  Sim_vmm.Vmm.t -> t
(** Install the profile's hooks (IPI filter, tick jitter, VCRD filter)
    and recurring stall/offline windows. Must be called after
    [Vmm.create] and before [Vmm.start] (tick jitter cannot be armed
    on a started machine). *)

val stats : t -> (string * int) list
(** Injection tallies under stable names: [ipis_dropped],
    [ipis_delayed], [ticks_suppressed], [vcrd_reports_dropped],
    [vcrd_reports_corrupted], [pcpu_stalls], [pcpu_offlines]. *)
