type t = { sockets : int; cores_per_socket : int }

let make ~sockets ~cores_per_socket =
  if sockets <= 0 || cores_per_socket <= 0 then
    invalid_arg "Topology.make: dimensions must be positive";
  { sockets; cores_per_socket }

let default = make ~sockets:2 ~cores_per_socket:4

let pcpu_count t = t.sockets * t.cores_per_socket

let check t pcpu =
  if pcpu < 0 || pcpu >= pcpu_count t then
    invalid_arg (Printf.sprintf "Topology: pcpu %d out of range" pcpu)

let socket_of t pcpu =
  check t pcpu;
  pcpu / t.cores_per_socket

let same_socket t a b = socket_of t a = socket_of t b

let pcpus_of_socket t s =
  if s < 0 || s >= t.sockets then invalid_arg "Topology.pcpus_of_socket";
  List.init t.cores_per_socket (fun i -> (s * t.cores_per_socket) + i)

let to_string t = Printf.sprintf "%dx%d" t.sockets t.cores_per_socket

let of_string s =
  match String.index_opt s 'x' with
  | None -> None
  | Some i -> (
    let l = String.sub s 0 i in
    let r = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt l, int_of_string_opt r) with
    | Some sockets, Some cores_per_socket
      when sockets > 0 && cores_per_socket > 0 ->
      Some (make ~sockets ~cores_per_socket)
    | _ -> None)
