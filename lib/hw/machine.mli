(** Physical machine: PCPUs with per-CPU slot clocks and IPI delivery.

    Each PCPU fires a recurring {e slot-boundary} event every
    [slot_cycles]. When [stagger] is on (the realistic default — Xen's
    per-CPU timers are not aligned), PCPU [k]'s boundaries are offset
    by [k * slot / pcpu_count], which de-synchronizes sibling VCPUs of
    a VM and is a root cause of the paper's degradation. The scheduler
    built on top registers a handler for these boundaries and uses
    {!send_ipi} for coscheduling. *)

type t

val create :
  ?stagger:bool ->
  Sim_engine.Engine.t ->
  Cpu_model.t ->
  Topology.t ->
  t
(** [stagger] defaults to [true]. *)

val engine : t -> Sim_engine.Engine.t
val cpu_model : t -> Cpu_model.t
val topology : t -> Topology.t
val pcpu_count : t -> int

val set_slot_handler : t -> (int -> unit) -> unit
(** [set_slot_handler t f] installs [f pcpu], called at each of
    [pcpu]'s slot boundaries. Must be set before {!start}. *)

val set_period_handler : t -> (unit -> unit) -> unit
(** Handler for the credit-assignment event, fired by the bootstrap
    PCPU (PCPU 0) every [slots_per_period] slots, just before PCPU 0's
    own slot handler for that boundary. *)

val start : t -> unit
(** Begin firing slot and period events. The first period event fires
    at time [phase 0] so credits exist before any scheduling decision.
    Raises [Failure] if no slot handler is installed or if called
    twice. *)

val started : t -> bool

val phase : t -> int -> int
(** [phase t pcpu] is the offset of [pcpu]'s first slot boundary. *)

val next_boundary : t -> pcpu:int -> after:int -> int
(** First slot boundary of [pcpu] strictly greater than [after]. *)

val send_ipi : t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Deliver a callback on [dst] after the model's IPI latency
    (doubled when [src] and [dst] sit on different sockets — the
    interconnect hop). Self-IPIs are permitted. *)

val ipis_sent : t -> int
(** Total IPIs delivered or in flight (monotone counter). *)

val ipis_cross_socket : t -> int
(** How many of them crossed a socket boundary. *)
