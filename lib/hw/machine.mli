(** Physical machine: PCPUs with per-CPU slot clocks and IPI delivery.

    Each PCPU fires a recurring {e slot-boundary} event every
    [slot_cycles]. When [stagger] is on (the realistic default — Xen's
    per-CPU timers are not aligned), PCPU [k]'s boundaries are offset
    by [k * slot / pcpu_count], which de-synchronizes sibling VCPUs of
    a VM and is a root cause of the paper's degradation. The scheduler
    built on top registers a handler for these boundaries and uses
    {!send_ipi} for coscheduling. *)

type t

type ipi_fate = Deliver | Drop | Delay of int
(** Decision of an installed IPI filter: deliver normally, silently
    lose the interrupt, or add [Delay] extra cycles on top of the
    model latency. *)

val create :
  ?stagger:bool ->
  Sim_engine.Engine.t ->
  Cpu_model.t ->
  Topology.t ->
  t
(** [stagger] defaults to [true]. *)

val engine : t -> Sim_engine.Engine.t
val cpu_model : t -> Cpu_model.t
val topology : t -> Topology.t
val pcpu_count : t -> int

val set_slot_handler : t -> (int -> unit) -> unit
(** [set_slot_handler t f] installs [f pcpu], called at each of
    [pcpu]'s slot boundaries. Must be set before {!start}. *)

val set_period_handler : t -> (unit -> unit) -> unit
(** Handler for the credit-assignment event, fired by the bootstrap
    PCPU (PCPU 0) every [slots_per_period] slots, just before PCPU 0's
    own slot handler for that boundary. *)

val start : t -> unit
(** Begin firing slot and period events. The first period event fires
    at time [phase 0] so credits exist before any scheduling decision.
    Raises [Failure] if no slot handler is installed or if called
    twice. *)

val started : t -> bool

val phase : t -> int -> int
(** [phase t pcpu] is the offset of [pcpu]'s first slot boundary. *)

val next_boundary : t -> pcpu:int -> after:int -> int
(** First slot boundary of [pcpu] strictly greater than [after]. *)

val send_ipi : t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Deliver a callback on [dst] after the model's IPI latency
    (doubled when [src] and [dst] sit on different sockets — the
    interconnect hop). Self-IPIs are permitted. *)

val ipis_sent : t -> int
(** Total IPIs delivered or in flight (monotone counter). *)

val ipis_cross_socket : t -> int
(** How many of them crossed a socket boundary. *)

(** {1 Fault-injection surface}

    Hooks used by [Sim_faults.Injector]. None are installed by
    default, and with none installed the machine's event stream is
    byte-identical to a build without this surface. *)

val set_ipi_filter : t -> (src:int -> dst:int -> ipi_fate) -> unit
(** Intercept every IPI before delivery. IPIs to an offline
    destination are dropped before the filter is consulted. *)

val set_tick_jitter : t -> (pcpu:int -> int) -> unit
(** [set_tick_jitter t f] adds [max 0 (f ~pcpu)] cycles of skew to
    each slot-tick interval of [pcpu] (the period/accounting timer is
    not jittered — it models the VMM's software clock). Must be
    called before {!start}; raises [Failure] afterwards. *)

val set_hotplug_handler : t -> (pcpu:int -> online:bool -> unit) -> unit
(** Called from {!set_pcpu_online} after the state flips, so the VMM
    can evacuate (offline) or re-integrate (online) the PCPU. *)

val pcpu_online : t -> int -> bool

val pcpu_stalled : t -> int -> bool

val online_count : t -> int

val set_pcpu_stalled : t -> pcpu:int -> bool -> unit
(** A stalled PCPU's slot timer stops calling the scheduler (ticks
    are counted in {!ticks_suppressed}) but it still receives IPIs —
    the lost-timer fault, distinct from being offline. *)

val set_pcpu_online : t -> pcpu:int -> bool -> unit
(** Offline: ticks suppressed and inbound IPIs dropped. No-op if the
    state already matches. Raises [Invalid_argument] when asked to
    offline the last online PCPU. *)

val ipis_dropped : t -> int
(** IPIs lost to the filter or to an offline destination. *)

val ipis_delayed : t -> int

val ticks_suppressed : t -> int
(** Slot ticks swallowed on stalled/offline PCPUs. *)
