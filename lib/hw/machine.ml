open Sim_engine

type ipi_fate = Deliver | Drop | Delay of int

type t = {
  engine : Engine.t;
  cpu_model : Cpu_model.t;
  topology : Topology.t;
  phases : int array;
  mutable slot_handler : (int -> unit) option;
  mutable period_handler : (unit -> unit) option;
  mutable started : bool;
  mutable ipis : int;
  mutable ipis_cross_socket : int;
  (* fault-injection surface: all hooks default to the fault-free
     identity so a machine with no injector behaves byte-identically
     to one built before this surface existed *)
  online : bool array;  (** offline PCPUs tick silently and drop IPIs *)
  stalled : bool array;  (** stalled PCPUs tick silently (lost timer) *)
  mutable ipi_filter : (src:int -> dst:int -> ipi_fate) option;
  mutable tick_jitter : (pcpu:int -> int) option;
  mutable hotplug_handler : (pcpu:int -> online:bool -> unit) option;
  mutable ipis_dropped : int;
  mutable ipis_delayed : int;
  mutable ticks_suppressed : int;
}

let create ?(stagger = true) engine cpu_model topology =
  (match Cpu_model.validate cpu_model with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.create: " ^ msg));
  let n = Topology.pcpu_count topology in
  let slot = Cpu_model.slot_cycles cpu_model in
  let phases =
    Array.init n (fun k -> if stagger then k * slot / n else 0)
  in
  {
    engine;
    cpu_model;
    topology;
    phases;
    slot_handler = None;
    period_handler = None;
    started = false;
    ipis = 0;
    ipis_cross_socket = 0;
    online = Array.make n true;
    stalled = Array.make n false;
    ipi_filter = None;
    tick_jitter = None;
    hotplug_handler = None;
    ipis_dropped = 0;
    ipis_delayed = 0;
    ticks_suppressed = 0;
  }

let engine t = t.engine
let cpu_model t = t.cpu_model
let topology t = t.topology
let pcpu_count t = Topology.pcpu_count t.topology

let set_slot_handler t f = t.slot_handler <- Some f

let set_period_handler t f = t.period_handler <- Some f

let phase t pcpu = t.phases.(pcpu)

let next_boundary t ~pcpu ~after =
  let slot = Cpu_model.slot_cycles t.cpu_model in
  let ph = t.phases.(pcpu) in
  if after < ph then ph
  else begin
    let k = (after - ph) / slot in
    ph + ((k + 1) * slot)
  end

let start t =
  if t.started then failwith "Machine.start: already started";
  let slot_handler =
    match t.slot_handler with
    | Some f -> f
    | None -> failwith "Machine.start: no slot handler installed"
  in
  t.started <- true;
  let slot = Cpu_model.slot_cycles t.cpu_model in
  let period_slots = t.cpu_model.Cpu_model.slots_per_period in
  (* Period events are anchored to the bootstrap PCPU's clock and fire
     before its slot handler at the shared instant, so freshly assigned
     credits are visible to that boundary's decisions. The accounting
     timer is a VMM software clock: it keeps firing even when PCPU 0's
     slot timer is stalled or the PCPU is offlined by a fault. *)
  let (_ : unit -> unit) =
    Engine.periodic
      ?shard:(Engine.shard_hint t.engine ~pcpu:0)
      t.engine ~start:t.phases.(0) ~period:(slot * period_slots)
      (fun () -> match t.period_handler with Some f -> f () | None -> ())
  in
  for pcpu = 0 to pcpu_count t - 1 do
    let jitter =
      match t.tick_jitter with
      | None -> None
      | Some j -> Some (fun () -> j ~pcpu)
    in
    let (_ : unit -> unit) =
      Engine.periodic
        ?shard:(Engine.shard_hint t.engine ~pcpu)
        t.engine ~start:t.phases.(pcpu) ~period:slot ?jitter
        (fun () ->
          if t.online.(pcpu) && not t.stalled.(pcpu) then slot_handler pcpu
          else begin
            t.ticks_suppressed <- t.ticks_suppressed + 1;
            let tr = Engine.trace t.engine in
            if Sim_obs.Trace.on tr Sim_obs.Trace.Fault then
              Sim_obs.Trace.emit tr ~now:(Engine.now t.engine)
                (Sim_obs.Trace.Fault_injected
                   { kind = Sim_obs.Trace.fault_tick_suppressed; pcpu;
                     info = 0 })
          end)
    in
    ()
  done

let started t = t.started

(* ----- fault-injection surface ----- *)

let set_ipi_filter t f = t.ipi_filter <- Some f

let set_tick_jitter t f =
  if t.started then failwith "Machine.set_tick_jitter: machine already started";
  t.tick_jitter <- Some f

let set_hotplug_handler t f = t.hotplug_handler <- Some f

let pcpu_online t pcpu = t.online.(pcpu)

let pcpu_stalled t pcpu = t.stalled.(pcpu)

let online_count t =
  Array.fold_left (fun acc up -> if up then acc + 1 else acc) 0 t.online

let set_pcpu_stalled t ~pcpu stalled =
  if pcpu < 0 || pcpu >= pcpu_count t then
    invalid_arg "Machine.set_pcpu_stalled: bad pcpu";
  t.stalled.(pcpu) <- stalled

let set_pcpu_online t ~pcpu online =
  if pcpu < 0 || pcpu >= pcpu_count t then
    invalid_arg "Machine.set_pcpu_online: bad pcpu";
  if t.online.(pcpu) <> online then begin
    if (not online) && online_count t <= 1 then
      invalid_arg "Machine.set_pcpu_online: cannot offline the last PCPU";
    t.online.(pcpu) <- online;
    match t.hotplug_handler with
    | Some f -> f ~pcpu ~online
    | None -> ()
  end

let send_ipi t ~src ~dst callback =
  if dst < 0 || dst >= pcpu_count t then invalid_arg "Machine.send_ipi: bad dst";
  if src < 0 || src >= pcpu_count t then invalid_arg "Machine.send_ipi: bad src";
  t.ipis <- t.ipis + 1;
  (* Cross-socket interrupts traverse the interconnect: double latency. *)
  let cross = not (Topology.same_socket t.topology src dst) in
  if cross then t.ipis_cross_socket <- t.ipis_cross_socket + 1;
  let latency =
    t.cpu_model.Cpu_model.ipi_latency_cycles * if cross then 2 else 1
  in
  let fate =
    if not t.online.(dst) then Drop
    else
      match t.ipi_filter with
      | None -> Deliver
      | Some f -> f ~src ~dst
  in
  let tr = Engine.trace t.engine in
  if Sim_obs.Trace.on tr Sim_obs.Trace.Ipi then
    Sim_obs.Trace.emit tr ~now:(Engine.now t.engine)
      (Sim_obs.Trace.Ipi_sent { src; dst; cross });
  let emit_fault kind info =
    if Sim_obs.Trace.on tr Sim_obs.Trace.Fault then
      Sim_obs.Trace.emit tr ~now:(Engine.now t.engine)
        (Sim_obs.Trace.Fault_injected { kind; pcpu = dst; info })
  in
  match fate with
  | Drop ->
    t.ipis_dropped <- t.ipis_dropped + 1;
    emit_fault Sim_obs.Trace.fault_ipi_dropped src
  | Deliver ->
    (* The delivery event belongs to the destination PCPU's shard: the
       interrupt latency is exactly the modeled cross-shard lag. *)
    ignore
      (Engine.schedule_after
         ?shard:(Engine.shard_hint t.engine ~pcpu:dst)
         t.engine ~delay:latency callback)
  | Delay extra ->
    t.ipis_delayed <- t.ipis_delayed + 1;
    emit_fault Sim_obs.Trace.fault_ipi_delayed (max 0 extra);
    ignore
      (Engine.schedule_after
         ?shard:(Engine.shard_hint t.engine ~pcpu:dst)
         t.engine ~delay:(latency + max 0 extra) callback)

let ipis_sent t = t.ipis

let ipis_cross_socket t = t.ipis_cross_socket

let ipis_dropped t = t.ipis_dropped

let ipis_delayed t = t.ipis_delayed

let ticks_suppressed t = t.ticks_suppressed
