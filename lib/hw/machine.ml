open Sim_engine

type t = {
  engine : Engine.t;
  cpu_model : Cpu_model.t;
  topology : Topology.t;
  phases : int array;
  mutable slot_handler : (int -> unit) option;
  mutable period_handler : (unit -> unit) option;
  mutable started : bool;
  mutable ipis : int;
  mutable ipis_cross_socket : int;
}

let create ?(stagger = true) engine cpu_model topology =
  (match Cpu_model.validate cpu_model with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.create: " ^ msg));
  let n = Topology.pcpu_count topology in
  let slot = Cpu_model.slot_cycles cpu_model in
  let phases =
    Array.init n (fun k -> if stagger then k * slot / n else 0)
  in
  {
    engine;
    cpu_model;
    topology;
    phases;
    slot_handler = None;
    period_handler = None;
    started = false;
    ipis = 0;
    ipis_cross_socket = 0;
  }

let engine t = t.engine
let cpu_model t = t.cpu_model
let topology t = t.topology
let pcpu_count t = Topology.pcpu_count t.topology

let set_slot_handler t f = t.slot_handler <- Some f

let set_period_handler t f = t.period_handler <- Some f

let phase t pcpu = t.phases.(pcpu)

let next_boundary t ~pcpu ~after =
  let slot = Cpu_model.slot_cycles t.cpu_model in
  let ph = t.phases.(pcpu) in
  if after < ph then ph
  else begin
    let k = (after - ph) / slot in
    ph + ((k + 1) * slot)
  end

let start t =
  if t.started then failwith "Machine.start: already started";
  let slot_handler =
    match t.slot_handler with
    | Some f -> f
    | None -> failwith "Machine.start: no slot handler installed"
  in
  t.started <- true;
  let slot = Cpu_model.slot_cycles t.cpu_model in
  let period_slots = t.cpu_model.Cpu_model.slots_per_period in
  (* Period events are anchored to the bootstrap PCPU's clock and fire
     before its slot handler at the shared instant, so freshly assigned
     credits are visible to that boundary's decisions. *)
  let rec period_tick () =
    (match t.period_handler with Some f -> f () | None -> ());
    ignore
      (Engine.schedule_after t.engine ~delay:(slot * period_slots) period_tick)
  in
  ignore (Engine.schedule_at t.engine ~time:t.phases.(0) period_tick);
  for pcpu = 0 to pcpu_count t - 1 do
    let rec tick () =
      slot_handler pcpu;
      ignore (Engine.schedule_after t.engine ~delay:slot tick)
    in
    ignore (Engine.schedule_at t.engine ~time:t.phases.(pcpu) tick)
  done

let started t = t.started

let send_ipi t ~src ~dst callback =
  if dst < 0 || dst >= pcpu_count t then invalid_arg "Machine.send_ipi: bad dst";
  if src < 0 || src >= pcpu_count t then invalid_arg "Machine.send_ipi: bad src";
  t.ipis <- t.ipis + 1;
  (* Cross-socket interrupts traverse the interconnect: double latency. *)
  let cross = not (Topology.same_socket t.topology src dst) in
  if cross then t.ipis_cross_socket <- t.ipis_cross_socket + 1;
  let latency =
    t.cpu_model.Cpu_model.ipi_latency_cycles * if cross then 2 else 1
  in
  ignore (Engine.schedule_after t.engine ~delay:latency callback)

let ipis_sent t = t.ipis

let ipis_cross_socket t = t.ipis_cross_socket
