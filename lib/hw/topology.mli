(** Physical CPU topology (sockets x cores).

    The paper's testbed is a dual-socket quad-core machine (8 PCPUs).
    Socket locality is exposed for the LLC-aware extension the paper
    lists as future work. *)

type t = private { sockets : int; cores_per_socket : int }

val make : sockets:int -> cores_per_socket:int -> t
(** Raises [Invalid_argument] on non-positive dimensions. *)

val default : t
(** 2 sockets x 4 cores = 8 PCPUs (Dell T5400, dual Xeon X5410). *)

val pcpu_count : t -> int

val socket_of : t -> int -> int
(** [socket_of t pcpu] is the socket holding [pcpu]. Raises
    [Invalid_argument] for an out-of-range id. *)

val same_socket : t -> int -> int -> bool

val pcpus_of_socket : t -> int -> int list

val to_string : t -> string
(** ["SxC"], e.g. ["2x4"]. *)

val of_string : string -> t option
(** Parse ["SxC"] (e.g. ["8x16"] = 128 PCPUs); [None] unless both
    dimensions are positive integers. *)
