open Sim_engine

type t = {
  freq : Units.freq;
  slot_ms : int;
  slots_per_period : int;
  slots_per_slice : int;
  ipi_latency_cycles : int;
  ctx_switch_cycles : int;
  cache_handoff_cycles : int;
}

let default =
  let freq = Units.ghz_f 2.33 in
  {
    freq;
    slot_ms = 10;
    slots_per_period = 3;
    slots_per_slice = 3;
    ipi_latency_cycles = Units.cycles_of_us freq 2;
    ctx_switch_cycles = Units.cycles_of_us freq 5;
    cache_handoff_cycles = 200;
  }

let slot_cycles t = Units.cycles_of_ms t.freq t.slot_ms

let period_cycles t = slot_cycles t * t.slots_per_period

let slice_cycles t = slot_cycles t * t.slots_per_slice

let validate t =
  let checks =
    [
      (Units.freq_to_khz t.freq > 0, "freq must be positive");
      (t.slot_ms > 0, "slot_ms must be positive");
      (t.slots_per_period > 0, "slots_per_period must be positive");
      (t.slots_per_slice > 0, "slots_per_slice must be positive");
      (t.ipi_latency_cycles >= 0, "ipi_latency_cycles must be non-negative");
      (t.ctx_switch_cycles >= 0, "ctx_switch_cycles must be non-negative");
      (t.cache_handoff_cycles >= 0, "cache_handoff_cycles must be non-negative");
      ( t.ipi_latency_cycles < slot_cycles t,
        "ipi latency must be shorter than a slot" );
    ]
  in
  match List.find_opt (fun (ok, _) -> not ok) checks with
  | Some (_, msg) -> Error msg
  | None -> Ok ()
