(** Processor timing model.

    Captures the parameters of the paper's testbed (dual quad-core
    Xeon X5410, 2.33 GHz) and the Xen Credit scheduler's time
    quantization: a basic scheduling slot of 10 ms and a credit
    accounting period of 3 slots (30 ms). *)

type t = {
  freq : Sim_engine.Units.freq;  (** core clock *)
  slot_ms : int;  (** basic scheduling slot / credit tick (Xen: 10 ms) *)
  slots_per_period : int;  (** K — credit assignment interval in slots (Xen: 3) *)
  slots_per_slice : int;
      (** scheduling-decision interval in slots: Xen's Credit
          scheduler allocates PCPUs in 30 ms time slices while burning
          credit every 10 ms (paper §3.3) *)
  ipi_latency_cycles : int;  (** inter-processor interrupt delivery latency *)
  ctx_switch_cycles : int;  (** VCPU context-switch cost charged on switch *)
  cache_handoff_cycles : int;  (** contended cache-line transfer (lock handoff) *)
}

val default : t
(** 2.33 GHz, 10 ms slots, K = 3, 30 ms slices, ~2 us IPI, ~5 us
    context switch, ~200-cycle lock handoff. *)

val slot_cycles : t -> int
(** Length of one scheduling slot in cycles. *)

val period_cycles : t -> int
(** Length of one credit accounting period ([slots_per_period] slots). *)

val slice_cycles : t -> int
(** Length of one scheduling slice ([slots_per_slice] slots). *)

val validate : t -> (unit, string) result
(** Check that all parameters are positive and consistent. *)
