type params = {
  recency : float;
  experimentation : float;
  initial_scale : float;
  floor : float;
}

let default_params =
  { recency = 0.1; experimentation = 0.2; initial_scale = 1.0; floor = 1e-9 }

let validate_params p =
  if p.recency < 0. || p.recency >= 1. then Error "recency must be in [0, 1)"
  else if p.experimentation < 0. || p.experimentation >= 1. then
    Error "experimentation must be in [0, 1)"
  else if p.initial_scale <= 0. then Error "initial_scale must be positive"
  else if p.floor <= 0. then Error "floor must be positive"
  else Ok ()

type t = { params : params; candidates : float array; q : float array }

let create params ~candidates =
  (match validate_params params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Roth_erev.create: " ^ msg));
  let n = Array.length candidates in
  if n = 0 then invalid_arg "Roth_erev.create: no candidates";
  let mean = Array.fold_left ( +. ) 0. candidates /. float_of_int n in
  let q0 = max params.floor (params.initial_scale *. mean /. float_of_int n) in
  { params; candidates = Array.copy candidates; q = Array.make n q0 }

let params t = t.params

let candidates t = Array.copy t.candidates

let n t = Array.length t.candidates

let propensity t j = t.q.(j)

let propensities t = Array.copy t.q

let select_best t =
  let best = ref 0 in
  for j = 1 to Array.length t.q - 1 do
    if t.q.(j) > t.q.(!best) then best := j
  done;
  !best

let select_probabilistic t rng =
  let total = Array.fold_left ( +. ) 0. t.q in
  let target = Sim_engine.Rng.float rng total in
  let acc = ref 0. in
  let chosen = ref (Array.length t.q - 1) in
  (try
     for j = 0 to Array.length t.q - 1 do
       acc := !acc +. t.q.(j);
       if !acc > target then begin
         chosen := j;
         raise Exit
       end
     done
   with Exit -> ());
  !chosen

let update t ~reinforcement =
  let r = t.params.recency in
  (* Reinforcements must all be computed against the pre-update
     propensities, so evaluate them before mutating. *)
  let u = Array.init (Array.length t.q) reinforcement in
  Array.iteri
    (fun j uj -> t.q.(j) <- max t.params.floor (((1. -. r) *. t.q.(j)) +. uj))
    u
