(** The locality-of-synchronization model (paper §4.2, Figure 5).

    A concurrent program's over-threshold spinlocks arrive in bursts
    (localities) [L_i], each with a lasting time [X_i] and an
    inter-locality start gap [Z_i >= X_i]. Properties (ii) and (iii)
    of §4.2 say consecutive [X_i] are correlated while distant ones
    decorrelate — modelled here as an AR(1) process on [log X].

    This module generates synthetic locality traces for testing the
    {!Estimator} in isolation from the full simulator and for the
    [adaptive_learning] example. *)

type locality = { start : int; duration : int }

type t = { localities : locality list; horizon : int }

type profile = {
  mean_duration : float;  (** cycles, mean of X_i *)
  mean_gap : float;  (** cycles, mean of Z_i - X_i *)
  correlation : float;  (** AR(1) coefficient in [0, 1) *)
  jitter_cv : float;  (** coefficient of variation of the AR noise *)
}

val default_profile : slot_cycles:int -> profile

val generate : Sim_engine.Rng.t -> profile -> n:int -> t
(** [generate rng profile ~n] is a trace of [n] localities starting at
    time 0. Raises [Invalid_argument] on a non-positive [n] or invalid
    profile. *)

val event_times : ?spacing:int -> t -> int list
(** Over-threshold spinlock timestamps: one at each locality start and
    then every [spacing] cycles (default: 10% of the mean duration)
    until the locality ends. Sorted ascending. *)

val coverage : t -> windows:(int * int) list -> float * float
(** [coverage t ~windows] evaluates a set of coscheduling windows
    [(start, duration)] against the trace: returns
    [(hit, excess)] where [hit] is the fraction of locality time
    covered by the union of the windows and [excess] is the fraction
    of (unioned) window time falling outside any locality
    (over-coscheduling). Overlapping windows are merged first. *)

val autocorrelation : t -> lag:int -> float
(** Sample autocorrelation of the [X_i] sequence at the given lag;
    [nan] if the trace is too short. *)
