(** Modified Roth–Erev reinforcement learner (Roth & Erev 1995).

    Maintains a propensity [q_x] for each candidate action [x]. The
    paper (Algorithm 1) updates propensities at every VCRD adjusting
    event as [q_x(i+1) = (1 - r) * q_x(i) + U(x, ...)], where [U] is an
    experience-dependent reinforcement (Algorithm 2), then picks the
    action with maximal propensity. This module is the generic
    propensity machinery; the paper-specific [U] lives in
    {!Estimator}. *)

type params = {
  recency : float;  (** r — forgetting of old propensity, in [0, 1) *)
  experimentation : float;  (** e — probability mass spread to other actions *)
  initial_scale : float;  (** s(0) — scale of initial propensities *)
  floor : float;  (** minimum propensity, keeps selection well-defined *)
}

val default_params : params
(** r = 0.1, e = 0.2, s(0) = 1.0, floor = 1e-9. *)

val validate_params : params -> (unit, string) result

type t

val create : params -> candidates:float array -> t
(** Initial propensity of every candidate is [s(0) * A / N] where [A]
    is the mean candidate value and [N] the number of candidates, as in
    the paper. Raises [Invalid_argument] on an empty candidate set or
    invalid params. *)

val params : t -> params

val candidates : t -> float array
(** A copy. *)

val n : t -> int

val propensity : t -> int -> float

val propensities : t -> float array
(** A copy. *)

val select_best : t -> int
(** Index with maximal propensity (lowest index on ties). *)

val select_probabilistic : t -> Sim_engine.Rng.t -> int
(** Index drawn with probability proportional to propensity. *)

val update : t -> reinforcement:(int -> float) -> unit
(** [update t ~reinforcement] applies
    [q_j <- (1 - r) * q_j + reinforcement j] to every index [j],
    flooring the result. [reinforcement j] sees the {e pre-update}
    propensities via {!propensity}. *)
