type params = {
  learner : Roth_erev.params;
  candidates_cycles : int array;
  delta_cycles : int;
  ratio_cap : float;
}

let default_candidates ~slot_cycles =
  [|
    slot_cycles / 2;
    slot_cycles;
    slot_cycles * 2;
    slot_cycles * 4;
    slot_cycles * 8;
    slot_cycles * 16;
  |]

let default_params ~slot_cycles =
  {
    learner = Roth_erev.default_params;
    candidates_cycles = default_candidates ~slot_cycles;
    delta_cycles = 8 * slot_cycles;
    ratio_cap = 1.2;
  }

let validate_params p =
  match Roth_erev.validate_params p.learner with
  | Error _ as e -> e
  | Ok () ->
    if Array.length p.candidates_cycles = 0 then Error "no candidates"
    else if Array.exists (fun c -> c <= 0) p.candidates_cycles then
      Error "candidates must be positive"
    else if p.delta_cycles < 0 then Error "delta must be non-negative"
    else if p.ratio_cap <= 0. then Error "ratio_cap must be positive"
    else Ok ()

type t = {
  params : params;
  learner : Roth_erev.t;
  rng : Sim_engine.Rng.t;
  mutable events : int;
  mutable last_time : int;  (** time of the previous adjusting event *)
  mutable last_index : int;  (** candidate chosen at the previous event *)
  mutable prev_slack : int option;  (** z_{i-1} - x_{i-1} *)
}

let create params rng =
  (match validate_params params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Estimator.create: " ^ msg));
  (* The learner works on candidates normalized by their mean so that
     propensities are O(1) — the same scale as Algorithm 2's
     reinforcements (which are at most [ratio_cap * (1 - e)]). Feeding
     raw cycle counts (~1e8) would drown the reinforcements in the
     q-proportional experimentation terms and freeze learning. *)
  let n = Array.length params.candidates_cycles in
  let mean =
    Array.fold_left (fun acc c -> acc +. float_of_int c) 0. params.candidates_cycles
    /. float_of_int n
  in
  let candidates =
    Array.map (fun c -> float_of_int c /. mean) params.candidates_cycles
  in
  {
    params;
    learner = Roth_erev.create params.learner ~candidates;
    rng;
    events = 0;
    last_time = 0;
    last_index = -1;
    prev_slack = None;
  }

let events_seen t = t.events

let candidates t = Array.copy t.params.candidates_cycles

let propensities t = Roth_erev.propensities t.learner

let last_estimate t =
  if t.last_index < 0 then None
  else Some t.params.candidates_cycles.(t.last_index)

(* Algorithm 2: the reinforcement U(x, x_i, i, N, e). *)
let reinforcement t ~slack ~prev_slack j =
  let p = t.params in
  let e = p.learner.Roth_erev.experimentation in
  let n = Roth_erev.n t.learner in
  let spread =
    if n <= 1 then 0.
    else Roth_erev.propensity t.learner j *. e /. float_of_int (n - 1)
  in
  if slack <= p.delta_cycles then begin
    (* Under-coscheduling: every strictly longer duration gets 1 - e.
       Boundary case (unspecified by the paper): when the chosen
       duration is already the longest candidate there is nothing
       longer to reinforce, so reinforce the longest itself —
       otherwise every propensity decays to the floor and selection
       snaps back to the shortest candidate. *)
    let x_i = p.candidates_cycles.(t.last_index) in
    let longest = Array.fold_left max min_int p.candidates_cycles in
    if
      p.candidates_cycles.(j) > x_i
      || (j = t.last_index && x_i = longest)
    then 1. -. e
    else spread
  end
  else if j = t.last_index then begin
    let denom = float_of_int (max 1 prev_slack) in
    let ratio = float_of_int slack /. denom in
    let ratio = Float.min p.ratio_cap (Float.max 0. ratio) in
    ratio *. (1. -. e)
  end
  else spread

let on_adjusting_event t ~now =
  if t.events > 0 && now < t.last_time then
    invalid_arg "Estimator.on_adjusting_event: time went backwards";
  let index =
    if t.events < 2 then
      (* First two events: probabilistic exploration (Algorithm 1). *)
      Roth_erev.select_probabilistic t.learner t.rng
    else begin
      let z = now - t.last_time in
      let x = t.params.candidates_cycles.(t.last_index) in
      let slack = z - x in
      let prev_slack = match t.prev_slack with Some s -> s | None -> 1 in
      Roth_erev.update t.learner
        ~reinforcement:(reinforcement t ~slack ~prev_slack);
      t.prev_slack <- Some slack;
      Roth_erev.select_best t.learner
    end
  in
  if t.events = 1 then begin
    (* After the second event we can compute the first slack for use as
       z_{i-1} - x_{i-1} in the next update. *)
    let z = now - t.last_time in
    let x = t.params.candidates_cycles.(t.last_index) in
    t.prev_slack <- Some (z - x)
  end;
  t.events <- t.events + 1;
  t.last_time <- now;
  t.last_index <- index;
  t.params.candidates_cycles.(index)
