open Sim_engine

type locality = { start : int; duration : int }

type t = { localities : locality list; horizon : int }

type profile = {
  mean_duration : float;
  mean_gap : float;
  correlation : float;
  jitter_cv : float;
}

let default_profile ~slot_cycles =
  {
    mean_duration = 4. *. float_of_int slot_cycles;
    mean_gap = 12. *. float_of_int slot_cycles;
    correlation = 0.7;
    jitter_cv = 0.3;
  }

let validate_profile p =
  p.mean_duration > 0. && p.mean_gap >= 0.
  && p.correlation >= 0. && p.correlation < 1.
  && p.jitter_cv >= 0.

let generate rng profile ~n =
  if n <= 0 then invalid_arg "Locality.generate: n must be positive";
  if not (validate_profile profile) then
    invalid_arg "Locality.generate: invalid profile";
  let log_mean = log profile.mean_duration in
  let sigma = profile.jitter_cv in
  let rec build i t log_x acc =
    if i = n then (List.rev acc, t)
    else begin
      let noise = Rng.gaussian rng ~mu:0. ~sigma in
      let log_x' =
        (profile.correlation *. log_x)
        +. ((1. -. profile.correlation) *. log_mean)
        +. noise
      in
      let duration = max 1 (int_of_float (exp log_x')) in
      let gap =
        max 1 (int_of_float (Rng.exponential rng ~mean:profile.mean_gap))
      in
      let loc = { start = t; duration } in
      build (i + 1) (t + duration + gap) log_x' (loc :: acc)
    end
  in
  let localities, horizon = build 0 0 log_mean [] in
  { localities; horizon }

let event_times ?spacing t =
  let default_spacing =
    let total =
      List.fold_left (fun acc l -> acc + l.duration) 0 t.localities
    in
    let n = max 1 (List.length t.localities) in
    max 1 (total / n / 10)
  in
  let spacing =
    match spacing with
    | Some s when s > 0 -> s
    | Some _ -> invalid_arg "Locality.event_times: spacing must be positive"
    | None -> default_spacing
  in
  List.concat_map
    (fun l ->
      let rec emit t acc =
        if t >= l.start + l.duration then List.rev acc else emit (t + spacing) (t :: acc)
      in
      emit l.start [])
    t.localities

let overlap (a0, a1) (b0, b1) = max 0 (min a1 b1 - max a0 b0)

(* Merge possibly-overlapping intervals into a disjoint union. *)
let merge_ranges ranges =
  let sorted = List.sort compare ranges in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> begin
      match acc with
      | (ps, pe) :: tail when s <= pe -> go ((ps, max pe e) :: tail) rest
      | _ -> go ((s, e) :: acc) rest
    end
  in
  go [] sorted

let coverage t ~windows =
  let window_ranges =
    merge_ranges (List.map (fun (s, d) -> (s, s + d)) windows)
  in
  let locality_ranges =
    List.map (fun l -> (l.start, l.start + l.duration)) t.localities
  in
  let total_locality =
    List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 locality_ranges
  in
  let total_window =
    List.fold_left (fun acc (s, e) -> acc + (e - s)) 0 window_ranges
  in
  let covered =
    List.fold_left
      (fun acc lr ->
        acc
        + List.fold_left (fun a wr -> a + overlap lr wr) 0 window_ranges)
      0 locality_ranges
  in
  let hit =
    if total_locality = 0 then 0.
    else float_of_int covered /. float_of_int total_locality
  in
  let excess =
    if total_window = 0 then 0.
    else float_of_int (total_window - covered) /. float_of_int total_window
  in
  (hit, excess)

let autocorrelation t ~lag =
  let xs = Array.of_list (List.map (fun l -> float_of_int l.duration) t.localities) in
  let n = Array.length xs in
  if lag <= 0 || n - lag < 2 then nan
  else begin
    let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
    let num = ref 0. and den = ref 0. in
    for i = 0 to n - 1 do
      let d = xs.(i) -. mean in
      den := !den +. (d *. d);
      if i + lag < n then num := !num +. (d *. (xs.(i + lag) -. mean))
    done;
    if !den = 0. then nan else !num /. !den
  end
