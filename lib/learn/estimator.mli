(** Coscheduling-duration estimator — Algorithms 1 and 2 of the paper.

    Each {e adjusting event} (detection of an over-threshold spinlock)
    asks the estimator for the lasting time [x_{i+1}] of the locality
    of synchronization that is starting. The estimator learns from the
    observed interval [z_i] between consecutive adjusting events:

    - [z_i - x_i <= delta] means {e under-coscheduling}: the next
      over-threshold spinlock arrived (almost) immediately after the
      coscheduling window closed, so the window was too short — all
      longer candidates are reinforced with [1 - e].
    - otherwise the chosen duration sufficed; the chosen candidate is
      reinforced with [(z_i - x_i) / (z_{i-1} - x_{i-1}) * (1 - e)].

    The first two events select probabilistically (exploration); later
    events pick the maximal-propensity candidate.

    Deviations from the paper (it leaves these corners unspecified):
    the slack ratio is clamped to [\[0, ratio_cap\]] and the previous
    slack is floored at one cycle, keeping the recurrence defined when
    slacks are zero or negative. *)

type params = {
  learner : Roth_erev.params;
  candidates_cycles : int array;  (** N possible lasting times *)
  delta_cycles : int;  (** Δ — slack below which we under-coscheduled *)
  ratio_cap : float;  (** clamp for the slack ratio reinforcement *)
}

val default_candidates : slot_cycles:int -> int array
(** Geometric grid from slot/2 to 16*slot (N = 6): coscheduling bursts
    between half a slot and a handful of accounting periods. *)

val default_params : slot_cycles:int -> params
(** [delta_cycles] = 2 slots (an over-threshold spinlock within two
    slots of the window closing means the locality outlived the
    estimate), [ratio_cap] = 4. *)

val validate_params : params -> (unit, string) result

type t

val create : params -> Sim_engine.Rng.t -> t

val on_adjusting_event : t -> now:int -> int
(** [on_adjusting_event t ~now] records an adjusting event at virtual
    time [now] and returns the estimated lasting time (cycles) for the
    coscheduling window to open now. [now] must not decrease across
    calls. *)

val events_seen : t -> int

val last_estimate : t -> int option
(** Estimate returned by the most recent adjusting event. *)

val propensities : t -> float array
(** Exposed for inspection and tests. *)

val candidates : t -> int array
