(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic decision in the simulator draws from an explicit
    [Rng.t] so that simulations are reproducible bit-for-bit from a
    seed, and independent subsystems can be given independent streams
    via {!split}. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Two generators created from
    the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state. *)

val split : t -> t
(** [split t] derives a statistically independent child stream and
    advances [t]. *)

val next_int64 : t -> int64
(** Raw 64-bit output. *)

val bits : t -> int
(** [bits t] is a non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val lognormal_cv : t -> mean:float -> cv:float -> float
(** [lognormal_cv t ~mean ~cv] draws a log-normal deviate with the
    given arithmetic mean and coefficient of variation. A [cv] of 0
    returns [mean] exactly. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element. Raises
    [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
