(** Event-queue dispatch: the timing-wheel fast path and the
    binary-heap oracle behind one interface.

    Both backends share the pooled handle representation of {!Wheel}
    and order events by the exact lexicographic [(time, seq)] key, so
    their pop sequences — and therefore whole simulations — are
    identical event for event. The wheel is the default; the heap is
    kept for differential testing (`--engine-queue=heap`). *)

type kind = Wheel_queue | Heap_queue

val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Recognises ["wheel"] and ["heap"] (case-insensitive). *)

type t

type handle = int
(** A packed (generation, slot) reference to a pooled event — an
    immediate integer, so scheduling allocates nothing. Stale handles
    (to events that fired, were cancelled, or whose slot has been
    recycled) are detected by the generation stamp. *)

val create : kind -> t

val kind : t -> kind

val length : t -> int
(** Live (scheduled − fired − cancelled) events; O(1). *)

val is_empty : t -> bool

val schedule : t -> time:int -> (unit -> unit) -> handle
(** Insert an event; the sequence number (FIFO tie-break at equal
    times) is assigned internally and monotonically. *)

val is_pending : t -> handle -> bool

val fire_time : t -> handle -> int
(** Scheduled fire time. Raises [Invalid_argument] on a stale
    handle (fired/cancelled events may have been recycled). *)

val cancel : t -> handle -> bool
(** [cancel t h] is [true] iff the event was still pending: wheel
    residents are unlinked and recycled eagerly, slot-heap residents
    tombstoned and dropped lazily. Stale handles return [false]. *)

val next_time : t -> int option
(** Fire time of the live [(time, seq)]-minimum event, without
    extracting it; [None] on an empty queue. The backend descent is
    shared with {!pop}, so a following [pop] re-finds the minimum in
    O(1). The conservative shard scheduler uses this to compute the
    global safe horizon. *)

type pop_result =
  | Event of int * (unit -> unit)  (** fire time and action *)
  | Beyond  (** next live event is after [limit]; left queued *)
  | Empty

val pop : ?limit:int -> t -> pop_result
(** Extract the live [(time, seq)]-minimum event in one queue
    descent. With [limit], an event strictly after it is left queued
    and [Beyond] is returned. *)

val drain : t -> limit:int -> (int -> (unit -> unit) -> unit) -> unit
(** [drain t ~limit f] pops and applies [f time action] to every live
    event with fire time at or below [limit], in [(time, seq)] order —
    exactly a [pop ~limit] loop, minus the per-event [pop_result] and
    option allocations. [f] may schedule further events; ones landing
    at or below [limit] fire within the same drain. *)
