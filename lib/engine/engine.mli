(** Discrete-event simulation engine.

    The engine owns a virtual clock (integer CPU cycles) and an event
    queue. Events are thunks scheduled for a future instant; they fire
    in [(time, insertion-order)] order, so simulations are fully
    deterministic.

    The queue has two run-time selectable backends with identical
    firing semantics: the hierarchical timing wheel (default; O(1)
    schedule and eager cancellation) and the binary-heap oracle kept
    for differential testing. Events live in a pooled slab and handles
    are generation-stamped integers, so the schedule/fire/cancel hot
    path allocates nothing. *)

type t

type handle = Equeue.handle
(** A scheduled event: a packed (generation, slot) immediate integer.
    Operations on a handle ({!cancel}, {!is_pending}, {!fire_time})
    need the owning engine; stale handles — events that fired or were
    cancelled, even if their pool slot has since been recycled — are
    detected by the generation stamp. *)

type queue_kind = Equeue.kind = Wheel_queue | Heap_queue

val set_default_queue : queue_kind -> unit
(** Set the backend used by {!create} when [?queue] is omitted (the
    [--engine-queue] flag). *)

val default_queue : unit -> queue_kind
(** The last {!set_default_queue} value, else [ASMAN_ENGINE_QUEUE]
    from the environment ([wheel]/[heap]), else [Wheel_queue]. *)

val create : ?seed:int64 -> ?queue:queue_kind -> unit -> t
(** [create ?seed ()] is an engine at time 0 with an empty queue and a
    root RNG seeded from [seed] (default [1L]). [queue] picks the
    event-queue backend (default {!default_queue}). *)

val queue_kind : t -> queue_kind

val now : t -> int
(** Current virtual time in cycles. *)

val rng : t -> Rng.t
(** The engine's root RNG. Subsystems should {!Rng.split} it. *)

val trace : t -> Sim_obs.Trace.t
(** The engine's event-trace sink. Created disabled (category mask 0,
    zero-capacity ring) so instrumented subsystems pay one branch per
    potential event; arm it with {!Sim_obs.Trace.enable}. *)

val schedule_at : ?shard:int -> t -> time:int -> (unit -> unit) -> handle
(** [schedule_at t ~time f] fires [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past.

    When the sharding ledger is armed ({!arm_sharding}), [?shard]
    attributes the event to that shard; omitted, it inherits the shard
    of the event currently executing. Tagging never changes execution
    order — it feeds the coupled-mode shard accounting. *)

val schedule_after : ?shard:int -> t -> delay:int -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is
    [schedule_at t ~time:(now t + delay)]. A zero delay fires later in
    the current instant, after already-queued same-time events. *)

val cancel : t -> handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. A
    pending event in a wheel bucket is unlinked and its slot recycled
    immediately (no tombstone); slot-heap residents are tombstoned
    and dropped when they surface. *)

val is_pending : t -> handle -> bool
(** [is_pending t h] is [true] iff the event has neither fired nor
    been cancelled. *)

val fire_time : t -> handle -> int
(** The virtual time a pending event is scheduled for. Raises
    [Invalid_argument] on a stale (fired/cancelled) handle. *)

val pending_count : t -> int
(** Number of live (non-cancelled) events in the queue. O(1): reads
    a counter maintained on schedule/fire/cancel rather than folding
    over the queue. *)

val step : t -> bool
(** [step t] fires the next event. [false] if the queue was empty. *)

val run : ?until:int -> t -> unit
(** [run ?until t] fires events until the queue is empty, the engine
    is {!halt}ed, or the next event is strictly after [until] (the
    clock is then advanced to [until]). *)

val halt : t -> unit
(** Stop the current {!run} after the in-flight event returns. *)

val halted : t -> bool

val events_fired : t -> int
(** Total events executed since creation (simulation-cost metric). *)

val stream_fp : t -> int
(** Order-sensitive rolling hash of every fired event's time since
    creation. Two engines that executed the same event stream carry
    equal fingerprints; the decoupled fabric's worker-count-invariance
    gate compares these per member. *)

val next_time : t -> int option
(** Fire time of the earliest pending event, or [None] on an empty
    queue. Cancelled events never surface. O(live queue descent), no
    extraction — the fabric's window-bound probe. *)

val periodic :
  ?shard:int ->
  t ->
  start:int ->
  period:int ->
  ?jitter:(unit -> int) ->
  (unit -> unit) ->
  unit ->
  unit
(** [periodic t ~start ~period ?jitter f] fires [f] at [start] and
    then repeatedly [period + jitter ()] cycles after each firing
    (jitter is clamped to be non-negative; default none). The action
    runs before the next occurrence is inserted, so two chains created
    in order keep their relative insertion order at shared instants.
    Returns a stop function that cancels the pending occurrence and
    ends the chain — the cancellation path used by fault windows.
    [?shard] tags the first occurrence (see {!schedule_at});
    reschedules inherit the chain's shard ambiently. Raises
    [Invalid_argument] if [period <= 0]. *)

(** {1 Coupled-mode sharding ledger ([--sim-jobs N] on a scenario)}

    The VMM's scheduler state is global (host-wide work stealing and
    credit accounting), so scenarios cannot yet run on the decoupled
    {!Shard} engine without changing scheduler-visible outcomes.
    Arming this ledger keeps the exact single (time, seq) execution
    order — outcomes stay byte-identical to the unarmed engine by
    construction — while partitioning PCPUs into shards on paper:
    every fired event is attributed to a shard, conservative windows
    are counted at the lookahead quantum, and the coupling density
    that blocks partitioned execution is measured (cross-shard events
    scheduled closer than the lookahead, zero-latency remote-state
    touches). *)

type shard_report = {
  r_shards : int;
  r_lookahead : int;  (** cycles; the conservative window quantum *)
  r_windows : int;  (** windows a decoupled run would have executed *)
  r_cross : int;  (** cross-shard events >= lookahead ahead: mailable *)
  r_coupled : int;  (** sub-lookahead cross-shard events + remote touches *)
  r_events : int array;  (** events fired, per shard *)
}

val arm_sharding : t -> lookahead:int -> shard_of_pcpu:int array -> unit
(** Arm the ledger on a fresh engine (empty queue, clock 0), mapping
    PCPU [p] to shard [shard_of_pcpu.(p)]. The shard count is
    [1 + max shard_of_pcpu]. Raises [Invalid_argument] if the engine
    has been used, is already armed, [lookahead < 1], or the map is
    empty or contains a negative shard. *)

val sharded : t -> bool

val shard_count : t -> int
(** Number of shards; [1] when the ledger is unarmed. *)

val shard_hint : t -> pcpu:int -> int option
(** Shard owning [pcpu], for [?shard] tagging at scheduling sites;
    [None] when unarmed (or [pcpu] outside the map), so callers can
    pass [?shard:(shard_hint t ~pcpu)] unconditionally. *)

val note_remote_touch : t -> src_pcpu:int -> dst_pcpu:int -> unit
(** Record a zero-latency cross-shard state access (a steal or
    relocation touching another shard's runqueue). Counted as a
    coupling when the two PCPUs live on different shards; no-op when
    unarmed. *)

val shard_report : t -> shard_report option

val shard_fingerprint : t -> string option
(** Per-shard digest (event counts, final clocks, rolling hashes of
    fire times, window count) of the executed stream. Identical
    streams — e.g. [-j N] vs the [-j 1] reference replayed through the
    same ledger — must produce identical fingerprints. *)
