(** Discrete-event simulation engine.

    The engine owns a virtual clock (integer CPU cycles) and an event
    queue. Events are thunks scheduled for a future instant; they fire
    in [(time, insertion-order)] order, so simulations are fully
    deterministic.

    The queue has two run-time selectable backends with identical
    firing semantics: the hierarchical timing wheel (default; O(1)
    schedule and eager cancellation) and the binary-heap oracle kept
    for differential testing. Events live in a pooled slab and handles
    are generation-stamped integers, so the schedule/fire/cancel hot
    path allocates nothing. *)

type t

type handle = Equeue.handle
(** A scheduled event: a packed (generation, slot) immediate integer.
    Operations on a handle ({!cancel}, {!is_pending}, {!fire_time})
    need the owning engine; stale handles — events that fired or were
    cancelled, even if their pool slot has since been recycled — are
    detected by the generation stamp. *)

type queue_kind = Equeue.kind = Wheel_queue | Heap_queue

val set_default_queue : queue_kind -> unit
(** Set the backend used by {!create} when [?queue] is omitted (the
    [--engine-queue] flag). *)

val default_queue : unit -> queue_kind
(** The last {!set_default_queue} value, else [ASMAN_ENGINE_QUEUE]
    from the environment ([wheel]/[heap]), else [Wheel_queue]. *)

val create : ?seed:int64 -> ?queue:queue_kind -> unit -> t
(** [create ?seed ()] is an engine at time 0 with an empty queue and a
    root RNG seeded from [seed] (default [1L]). [queue] picks the
    event-queue backend (default {!default_queue}). *)

val queue_kind : t -> queue_kind

val now : t -> int
(** Current virtual time in cycles. *)

val rng : t -> Rng.t
(** The engine's root RNG. Subsystems should {!Rng.split} it. *)

val trace : t -> Sim_obs.Trace.t
(** The engine's event-trace sink. Created disabled (category mask 0,
    zero-capacity ring) so instrumented subsystems pay one branch per
    potential event; arm it with {!Sim_obs.Trace.enable}. *)

val schedule_at : t -> time:int -> (unit -> unit) -> handle
(** [schedule_at t ~time f] fires [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> delay:int -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is
    [schedule_at t ~time:(now t + delay)]. A zero delay fires later in
    the current instant, after already-queued same-time events. *)

val cancel : t -> handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. A
    pending event in a wheel bucket is unlinked and its slot recycled
    immediately (no tombstone); slot-heap residents are tombstoned
    and dropped when they surface. *)

val is_pending : t -> handle -> bool
(** [is_pending t h] is [true] iff the event has neither fired nor
    been cancelled. *)

val fire_time : t -> handle -> int
(** The virtual time a pending event is scheduled for. Raises
    [Invalid_argument] on a stale (fired/cancelled) handle. *)

val pending_count : t -> int
(** Number of live (non-cancelled) events in the queue. O(1): reads
    a counter maintained on schedule/fire/cancel rather than folding
    over the queue. *)

val step : t -> bool
(** [step t] fires the next event. [false] if the queue was empty. *)

val run : ?until:int -> t -> unit
(** [run ?until t] fires events until the queue is empty, the engine
    is {!halt}ed, or the next event is strictly after [until] (the
    clock is then advanced to [until]). *)

val halt : t -> unit
(** Stop the current {!run} after the in-flight event returns. *)

val halted : t -> bool

val events_fired : t -> int
(** Total events executed since creation (simulation-cost metric). *)

val periodic :
  t ->
  start:int ->
  period:int ->
  ?jitter:(unit -> int) ->
  (unit -> unit) ->
  unit ->
  unit
(** [periodic t ~start ~period ?jitter f] fires [f] at [start] and
    then repeatedly [period + jitter ()] cycles after each firing
    (jitter is clamped to be non-negative; default none). The action
    runs before the next occurrence is inserted, so two chains created
    in order keep their relative insertion order at shared instants.
    Returns a stop function that cancels the pending occurrence and
    ends the chain — the cancellation path used by fault windows.
    Raises [Invalid_argument] if [period <= 0]. *)
