(** Discrete-event simulation engine.

    The engine owns a virtual clock (integer CPU cycles) and an event
    queue. Events are thunks scheduled for a future instant; they fire
    in [(time, insertion-order)] order, so simulations are fully
    deterministic. Events may be cancelled (lazy deletion). *)

type t

type handle
(** A scheduled event. *)

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] is an engine at time 0 with an empty queue and a
    root RNG seeded from [seed] (default [1L]). *)

val now : t -> int
(** Current virtual time in cycles. *)

val rng : t -> Rng.t
(** The engine's root RNG. Subsystems should {!Rng.split} it. *)

val trace : t -> Sim_obs.Trace.t
(** The engine's event-trace sink. Created disabled (category mask 0,
    zero-capacity ring) so instrumented subsystems pay one branch per
    potential event; arm it with {!Sim_obs.Trace.enable}. *)

val schedule_at : t -> time:int -> (unit -> unit) -> handle
(** [schedule_at t ~time f] fires [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is in the past. *)

val schedule_after : t -> delay:int -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] is
    [schedule_at t ~time:(now t + delay)]. A zero delay fires later in
    the current instant, after already-queued same-time events. *)

val cancel : handle -> unit
(** Cancelling a fired or already-cancelled event is a no-op. *)

val is_pending : handle -> bool
(** [is_pending h] is [true] iff the event has neither fired nor been
    cancelled. *)

val fire_time : handle -> int
(** The virtual time the event was scheduled for. *)

val pending_count : t -> int
(** Number of live (non-cancelled) events in the queue. O(1): reads
    a counter maintained on schedule/fire/cancel rather than folding
    over the heap. *)

val step : t -> bool
(** [step t] fires the next event. [false] if the queue was empty. *)

val run : ?until:int -> t -> unit
(** [run ?until t] fires events until the queue is empty, the engine
    is {!halt}ed, or the next event is strictly after [until] (the
    clock is then advanced to [until]). *)

val halt : t -> unit
(** Stop the current {!run} after the in-flight event returns. *)

val halted : t -> bool

val events_fired : t -> int
(** Total events executed since creation (simulation-cost metric). *)

val periodic :
  t ->
  start:int ->
  period:int ->
  ?jitter:(unit -> int) ->
  (unit -> unit) ->
  unit ->
  unit
(** [periodic t ~start ~period ?jitter f] fires [f] at [start] and
    then repeatedly [period + jitter ()] cycles after each firing
    (jitter is clamped to be non-negative; default none). The action
    runs before the next occurrence is inserted, so two chains created
    in order keep their relative insertion order at shared instants.
    Returns a stop function that cancels the pending occurrence and
    ends the chain — the cancellation path used by fault windows.
    Raises [Invalid_argument] if [period <= 0]. *)
