(* Hierarchical timing wheel over a pooled event store.

   The pool is a struct-of-arrays slab: every scheduled event occupies
   one integer slot whose time/seq/links live in flat int arrays and
   whose action lives in a parallel closure array. Slots are recycled
   through a free list on fire/cancel, so the steady-state hot path
   (schedule, fire, cancel) allocates nothing — the public handle is
   the slot index packed with a generation stamp that detects stale
   references to recycled slots.

   Wheel geometry (cycle-granularity virtual time):

     level 0: 256 slots x 2^8 cycles    (window 2^16 ~ 28 us @2.33GHz)
     level 1:  64 slots x 2^16 cycles   (window 2^22 ~ 1.8 ms)
     level 2:  64 slots x 2^22 cycles   (window 2^28 ~ 115 ms)
     level 3:  64 slots x 2^28 cycles   (window 2^34 ~ 7.4 s)
     beyond:  far-future slot-heap, pulled when the cursor enters
              its 2^34 window

   The fine level-0 slot (2^8 cycles) keeps the near heap small even
   when the pending set is dense: the near heap holds one slot's
   events, and its size is what the wheel pays log() on.

   Events land in the lowest level whose window contains them; when
   the cursor crosses a level boundary the corresponding bucket
   cascades down. A bucket reaching level 0 is dumped into the "near"
   slot-heap, which restores exact (time, seq) order; insertions at or
   behind the cursor go straight to the near heap, so zero-delay and
   same-instant scheduling keep their FIFO semantics. Cancelled events
   are unlinked from wheel buckets eagerly (O(1) via the intrusive
   doubly-linked lists); only events already in a slot-heap are
   tombstoned and dropped lazily at the top. *)

(* ----- pooled event store ----- *)

let noop () = ()

type pool = {
  mutable time : int array;
  mutable seq : int array;
  mutable gen : int array;
  mutable loc : int array;
  mutable link_next : int array;
  mutable link_prev : int array;
  mutable act : (unit -> unit) array;
  mutable free : int;  (* free-list head threaded through link_next *)
  mutable cap : int;
}

(* [loc] is the event's current container: a non-negative
   [(level lsl 9) lor bucket] for wheel buckets, or one of: *)
let loc_free = -1
let loc_near = -2 (* in the near slot-heap *)
let loc_far = -3 (* in the far-future slot-heap *)
let loc_aux = -4 (* in a backend-owned slot-heap (heap oracle) *)
let loc_dead = -5 (* cancelled while in a slot-heap; dropped lazily *)

(* Handles pack (gen lsl slot_bits) lor slot: 25 bits of slot index
   (33M concurrently pending events) and 37 bits of per-slot
   generation, bumped every time the slot is released. *)
let slot_bits = 25
let slot_mask = (1 lsl slot_bits) - 1

let pool_create () =
  {
    time = [||];
    seq = [||];
    gen = [||];
    loc = [||];
    link_next = [||];
    link_prev = [||];
    act = [||];
    free = -1;
    cap = 0;
  }

let grow_pool p =
  let cap = if p.cap = 0 then 256 else 2 * p.cap in
  if cap > slot_mask + 1 then failwith "Wheel: event pool exhausted";
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 p.cap;
    b
  in
  p.time <- extend p.time 0;
  p.seq <- extend p.seq 0;
  p.gen <- extend p.gen 0;
  p.loc <- extend p.loc loc_free;
  p.link_next <- extend p.link_next (-1);
  p.link_prev <- extend p.link_prev (-1);
  p.act <- extend p.act noop;
  (* Thread the new slots onto the free list, newest last so low
     indices are preferred (keeps the live region compact). *)
  for s = cap - 1 downto p.cap do
    p.link_next.(s) <- p.free;
    p.free <- s
  done;
  p.cap <- cap

let alloc p ~time ~seq action =
  if p.free < 0 then grow_pool p;
  let s = p.free in
  p.free <- p.link_next.(s);
  p.time.(s) <- time;
  p.seq.(s) <- seq;
  p.act.(s) <- action;
  p.link_next.(s) <- -1;
  p.link_prev.(s) <- -1;
  s

(* Bump the generation (invalidating outstanding handles), drop the
   action closure (so fired events are not pinned by the queue) and
   recycle the slot. *)
let release p s =
  p.gen.(s) <- p.gen.(s) + 1;
  p.loc.(s) <- loc_free;
  p.act.(s) <- noop;
  p.link_next.(s) <- p.free;
  p.free <- s

let handle_of p s = (p.gen.(s) lsl slot_bits) lor s

let handle_slot h = h land slot_mask

let handle_live p h =
  let s = h land slot_mask in
  s < p.cap
  && p.gen.(s) = h lsr slot_bits
  && p.loc.(s) <> loc_free
  && p.loc.(s) <> loc_dead

(* ----- slot-heap: binary min-heap of pool slots ----- *)

(* Ordering is the exact lexicographic (time, seq) key read straight
   from the pool's unboxed int arrays — no per-entry allocation. *)
module Sheap = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let length h = h.n

  let is_empty h = h.n = 0

  let clear h = h.n <- 0

  let less p i j =
    p.time.(i) < p.time.(j)
    || (p.time.(i) = p.time.(j) && p.seq.(i) < p.seq.(j))

  let push p h s =
    if h.n = Array.length h.a then begin
      let cap = if h.n = 0 then 64 else 2 * h.n in
      let b = Array.make cap 0 in
      Array.blit h.a 0 b 0 h.n;
      h.a <- b
    end;
    let a = h.a in
    a.(h.n) <- s;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      less p a.(!i) a.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = a.(!i) in
      a.(!i) <- a.(parent);
      a.(parent) <- tmp;
      i := parent
    done

  let top h = if h.n = 0 then -1 else h.a.(0)

  let pop p h =
    if h.n = 0 then -1
    else begin
      let a = h.a in
      let res = a.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        a.(0) <- a.(h.n);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 in
          let r = l + 1 in
          let m = ref !i in
          if l < h.n && less p a.(l) a.(!m) then m := l;
          if r < h.n && less p a.(r) a.(!m) then m := r;
          if !m = !i then continue := false
          else begin
            let tmp = a.(!i) in
            a.(!i) <- a.(!m);
            a.(!m) <- tmp;
            i := !m
          end
        done
      end;
      res
    end
end

(* ----- wheel geometry ----- *)

(* Bit position of each level's slot width. *)
let shifts = [| 8; 16; 22; 28 |]

let level_sizes = [| 256; 64; 64; 64 |]

let level_masks = [| 255; 63; 63; 63 |]

let bucket_offsets = [| 0; 256; 320; 384 |]

let total_buckets = 448

type t = {
  p : pool;
  heads : int array;
  tails : int array;
  (* Occupancy bitmaps, one bit per bucket, 32 bits per word. *)
  bits : int array;
  near : Sheap.t;
  far : Sheap.t;
  mutable in_wheel : int;
  (* Cursor in level-0 slot units: every level-0 bucket with absolute
     index < cur0 has been dumped; events at or behind it go straight
     to the near heap. *)
  mutable cur0 : int;
}

let create p =
  {
    p;
    heads = Array.make total_buckets (-1);
    tails = Array.make total_buckets (-1);
    bits = Array.make ((total_buckets + 31) / 32) 0;
    near = Sheap.create ();
    far = Sheap.create ();
    in_wheel = 0;
    cur0 = 0;
  }

let bit_set w b = w.bits.(b lsr 5) <- w.bits.(b lsr 5) lor (1 lsl (b land 31))

let bit_clear w b =
  w.bits.(b lsr 5) <- w.bits.(b lsr 5) land lnot (1 lsl (b land 31))

(* Lowest set bucket of [level] whose in-level index is >= [from];
   -1 when the rest of the level is empty. *)
let next_occupied w ~level ~from =
  let base = bucket_offsets.(level) in
  let size = level_sizes.(level) in
  let idx = ref (-1) in
  let i = ref from in
  while !idx < 0 && !i < size do
    let b = base + !i in
    let word = w.bits.(b lsr 5) lsr (b land 31) in
    if word = 0 then
      (* Skip to the next word boundary. *)
      i := ((b lor 31) + 1) - base
    else if word land 1 <> 0 then idx := !i
    else incr i
  done;
  !idx

(* ----- bucket lists (intrusive, FIFO in insertion = seq order) ----- *)

let bucket_append w b s =
  let p = w.p in
  let tail = w.tails.(b) in
  if tail < 0 then begin
    w.heads.(b) <- s;
    bit_set w b
  end
  else begin
    p.link_next.(tail) <- s;
    p.link_prev.(s) <- tail
  end;
  p.link_next.(s) <- -1;
  w.tails.(b) <- s;
  p.loc.(s) <- b;
  w.in_wheel <- w.in_wheel + 1

let bucket_unlink w b s =
  let p = w.p in
  let nx = p.link_next.(s) in
  let pv = p.link_prev.(s) in
  if pv >= 0 then p.link_next.(pv) <- nx else w.heads.(b) <- nx;
  if nx >= 0 then p.link_prev.(nx) <- pv else w.tails.(b) <- pv;
  if w.heads.(b) < 0 then bit_clear w b;
  p.link_next.(s) <- -1;
  p.link_prev.(s) <- -1;
  w.in_wheel <- w.in_wheel - 1

(* Detach a whole bucket and return its head (FIFO order). *)
let bucket_take w b =
  let head = w.heads.(b) in
  if head >= 0 then begin
    w.heads.(b) <- -1;
    w.tails.(b) <- -1;
    bit_clear w b
  end;
  head

(* ----- insertion ----- *)

let insert w s =
  let p = w.p in
  let time = p.time.(s) in
  if time lsr shifts.(0) < w.cur0 then begin
    (* At or behind the cursor: the bucket was already dumped, so the
       event joins the near heap directly (zero-delay / same-instant
       scheduling lands here). *)
    p.loc.(s) <- loc_near;
    Sheap.push p w.near s
  end
  else begin
    (* Lowest level whose current window contains the event. The
       cursor's window at level l spans the times sharing its
       [time lsr shifts.(l+1)] prefix. *)
    let now0 = w.cur0 in
    let level =
      if time lsr shifts.(1) = now0 lsr (shifts.(1) - shifts.(0)) then 0
      else if time lsr shifts.(2) = now0 lsr (shifts.(2) - shifts.(0)) then 1
      else if time lsr shifts.(3) = now0 lsr (shifts.(3) - shifts.(0)) then 2
      else if time lsr (shifts.(3) + 6) = now0 lsr (shifts.(3) + 6 - shifts.(0)) then 3
      else -1
    in
    if level < 0 then begin
      p.loc.(s) <- loc_far;
      Sheap.push p w.far s
    end
    else
      let b =
        bucket_offsets.(level)
        + ((time lsr shifts.(level)) land level_masks.(level))
      in
      bucket_append w b s
  end

(* Eager removal of a cancelled event sitting in a wheel bucket
   (loc >= 0). The slot is unlinked in O(1) and can be released
   immediately — no tombstone is left behind. *)
let remove w s = bucket_unlink w w.p.loc.(s) s

(* ----- cursor advance and cascading ----- *)

(* Re-distribute a higher-level bucket after the cursor entered its
   window: every event lands at a strictly lower level (or the near
   heap), preserving FIFO bucket order so re-insertion is stable. *)
let cascade w ~level =
  let b =
    bucket_offsets.(level)
    + ((w.cur0 lsr (shifts.(level) - shifts.(0))) land level_masks.(level))
  in
  let s = ref (bucket_take w b) in
  let p = w.p in
  while !s >= 0 do
    let nx = p.link_next.(!s) in
    p.link_next.(!s) <- -1;
    p.link_prev.(!s) <- -1;
    w.in_wheel <- w.in_wheel - 1;
    insert w !s;
    s := nx
  done

(* Pull far-future events whose 2^38 window the cursor has entered.
   Cancelled tombstones surfacing at the top are dropped here. *)
let pull_far w =
  let p = w.p in
  let window = w.cur0 lsr (shifts.(3) + 6 - shifts.(0)) in
  let continue = ref true in
  while !continue && not (Sheap.is_empty w.far) do
    let s = Sheap.top w.far in
    if p.loc.(s) = loc_dead then begin
      ignore (Sheap.pop p w.far);
      release p s
    end
    else if p.time.(s) lsr (shifts.(3) + 6) = window then begin
      ignore (Sheap.pop p w.far);
      insert w s
    end
    else continue := false
  done

(* Dump the level-0 bucket at absolute slot index [idx0] into the
   near heap and move the cursor past it. *)
let dump w idx0 =
  let p = w.p in
  let b = bucket_offsets.(0) + (idx0 land level_masks.(0)) in
  let s = ref (bucket_take w b) in
  while !s >= 0 do
    let nx = p.link_next.(!s) in
    p.link_next.(!s) <- -1;
    p.link_prev.(!s) <- -1;
    w.in_wheel <- w.in_wheel - 1;
    p.loc.(!s) <- loc_near;
    Sheap.push p w.near !s;
    s := nx
  done;
  w.cur0 <- idx0 + 1

(* Drop cancelled events that bubbled to the top of the near heap. *)
let drop_dead_near w =
  let p = w.p in
  let continue = ref true in
  while !continue && not (Sheap.is_empty w.near) do
    let s = Sheap.top w.near in
    if p.loc.(s) = loc_dead then begin
      ignore (Sheap.pop p w.near);
      release p s
    end
    else continue := false
  done

(* Process the level boundaries the cursor currently sits on: entering
   a level-1 window cascades its bucket down to level 0; entering a
   higher-level window cascades outermost-first so events settle one
   level at a time (far -> 3 -> 2 -> 1). The cursor can land on a
   boundary either by the empty-window jump below or by [dump]ing the
   last slot of a window, so this runs at the top of every advance
   step; it is idempotent at a fixed cursor — an already-opened
   window's buckets are simply empty. *)
let open_boundaries w =
  if w.cur0 land 255 = 0 then begin
    if w.cur0 land ((1 lsl 14) - 1) = 0 then begin
      if w.cur0 land ((1 lsl 26) - 1) = 0 then pull_far w;
      if w.cur0 land ((1 lsl 20) - 1) = 0 then cascade w ~level:3;
      cascade w ~level:2
    end;
    cascade w ~level:1
  end

(* Advance the cursor until the near heap holds the global minimum
   (time, seq) event, cascading buckets at level boundaries. Returns
   false when no live event remains anywhere. *)
let ensure_near w =
  drop_dead_near w;
  let live = ref (not (Sheap.is_empty w.near)) in
  let exhausted = ref false in
  while (not !live) && not !exhausted do
    if w.in_wheel = 0 then begin
      (* Only far-future events (if any) remain: fast-forward the
         cursor straight to the earliest one's window. *)
      let p = w.p in
      let continue = ref true in
      while !continue && not (Sheap.is_empty w.far) do
        let s = Sheap.top w.far in
        if p.loc.(s) = loc_dead then begin
          ignore (Sheap.pop p w.far);
          release p s
        end
        else continue := false
      done;
      if Sheap.is_empty w.far then exhausted := true
      else begin
        let t_min = p.time.(Sheap.top w.far) in
        w.cur0 <- max w.cur0 ((t_min lsr (shifts.(3) + 6)) lsl (shifts.(3) + 6 - shifts.(0)));
        pull_far w
      end
    end
    else begin
      open_boundaries w;
      (* Next occupied level-0 bucket in the cursor's current level-1
         window, if any; otherwise jump to the window boundary (the
         next iteration opens it). *)
      match next_occupied w ~level:0 ~from:(w.cur0 land 255) with
      | idx when idx >= 0 ->
        (* The masked scan never wraps: buckets below cur0's masked
           index belong to already-dumped slots, and next-window
           events live at level >= 1 until their cascade. *)
        dump w ((w.cur0 land lnot 255) lor idx);
        live := true
      | _ -> w.cur0 <- ((w.cur0 lsr 8) + 1) lsl 8
    end
  done;
  !live

(* Next live event's fire time without removing it; only valid right
   after [ensure_near] returned true. *)
let near_top_time w = w.p.time.(Sheap.top w.near)

(* Remove and return the near-heap minimum slot (caller releases). *)
let take_near w = Sheap.pop w.p w.near
