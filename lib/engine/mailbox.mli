(** Deterministic cross-shard mailbox with a fused, allocation-free
    post/flush hot path.

    One mailbox per receiving shard (used by both {!Shard} and
    {!Fabric}). Senders {!post} under the mailbox mutex; the window
    coordinator {!flush}es between conservative windows, delivering in
    the canonical [(time, src, per-src seq)] order. Messages live in
    preallocated parallel arrays: a post is four array stores, a flush
    is an in-place insertion sort plus a callback sweep, and nothing
    is allocated per message in steady state (arrays double only when
    a window posts more mail than any window before it). *)

type t

val create : ?cap:int -> unit -> t
(** [create ?cap ()] preallocates room for [cap] messages
    (default 64; grows by doubling). *)

val post : t -> time:int -> src:int -> seq:int -> (unit -> unit) -> unit
(** Append a message. Thread-safe (senders on concurrent domains).
    [seq] must be a per-[src] monotonic counter — it breaks ties
    among equal-time posts from one source; the caller owns the
    counters and the lookahead contract. *)

val length : t -> int
(** Pending messages. Coordinator-only (racy under concurrent posts). *)

val flush : t -> (time:int -> (unit -> unit) -> unit) -> int
(** [flush t sink] delivers every pending message to [sink] in
    [(time, src, seq)] order, clears the mailbox, and returns the
    number delivered. The sink typically schedules the action into
    the destination queue; it must not post back into [t]. *)
