(* Conservative parallel DES: sharded queues, lookahead windows,
   mailboxed cross-shard events.

   Window protocol
   ---------------
     1. flush every mailbox into its shard queue, in (time, src, seq)
        order;
     2. t_min   := min over shards of Equeue.next_time;
     3. horizon := t_min + lookahead; shards drain events with
        time < horizon (strictly — an event exactly at the lookahead
        edge belongs to the next window) concurrently and without
        locks;
     4. repeat until no shard has a pending event at or below [until].

   Safety: during step 3 a shard only ever *receives* work through its
   own queue (local schedules) or its mailbox (cross posts). The post
   contract time >= src.clock + lookahead, together with
   src.clock < horizon while draining, guarantees a posted time is
   >= t_min + lookahead = horizon, i.e. outside the current window, so
   holding mail until the next flush never reorders anything a shard
   could have observed.

   Determinism: per-shard event order is the (time, seq) order of its
   private queue; mailbox flushes assign queue sequence numbers in the
   sorted (time, src, per-src seq) order, which no domain interleaving
   can perturb. Hence the executed streams depend only on the
   partition, not on the worker team — Seq and Par runs fingerprint
   identically. *)

type mail = {
  m_time : int;
  m_src : int;
  m_seq : int;  (* per-source counter: FIFO among equal-time posts *)
  m_act : unit -> unit;
}

type shard = {
  sid : int;
  q : Equeue.t;
  mutable clock : int;
  mutable fired : int;
  (* Order-sensitive rolling hash of this shard's fire times. *)
  mutable fp : int;
  (* Commutative (order-independent) contribution to the global
     outcome digest; summed across shards it is invariant under
     repartitioning as long as the same events execute. *)
  mutable dg : int;
  lock : Mutex.t;
  mutable inbox : mail list;  (* newest first; sorted at flush *)
  mutable out_seq : int;
}

type t = {
  shardv : shard array;
  lookahead : int;
  mutable windows : int;
  mutable cross_posts : int;
}

let create ?(queue = Equeue.Wheel_queue) ~shards ~lookahead () =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  if lookahead < 1 then invalid_arg "Shard.create: lookahead < 1";
  {
    shardv =
      Array.init shards (fun sid ->
          {
            sid;
            q = Equeue.create queue;
            clock = 0;
            fired = 0;
            fp = 0;
            dg = 0;
            lock = Mutex.create ();
            inbox = [];
            out_seq = 0;
          });
    lookahead;
    windows = 0;
    cross_posts = 0;
  }

let shards t = Array.length t.shardv

let lookahead t = t.lookahead

let clock t ~shard = t.shardv.(shard).clock

let schedule t ~shard ~time action =
  let sh = t.shardv.(shard) in
  if time < sh.clock then
    invalid_arg
      (Printf.sprintf "Shard.schedule: time %d before shard %d clock %d" time
         shard sh.sid);
  Equeue.schedule sh.q ~time action

let cancel t ~shard h = Equeue.cancel t.shardv.(shard).q h

let post t ~src ~dst ~time action =
  let s = t.shardv.(src) in
  if time < s.clock + t.lookahead then
    invalid_arg
      (Printf.sprintf
         "Shard.post: time %d violates lookahead (shard %d clock %d + %d)" time
         src s.clock t.lookahead);
  let m = { m_time = time; m_src = src; m_seq = s.out_seq; m_act = action } in
  s.out_seq <- s.out_seq + 1;
  let d = t.shardv.(dst) in
  Mutex.lock d.lock;
  d.inbox <- m :: d.inbox;
  Mutex.unlock d.lock

(* --- window execution ------------------------------------------------ *)

let mail_order a b =
  if a.m_time <> b.m_time then compare a.m_time b.m_time
  else if a.m_src <> b.m_src then compare a.m_src b.m_src
  else compare a.m_seq b.m_seq

(* Coordinator-only, between windows: move mailbox contents into the
   destination queues in deterministic order. *)
let deliver t =
  Array.iter
    (fun d ->
      Mutex.lock d.lock;
      let mail = d.inbox in
      d.inbox <- [];
      Mutex.unlock d.lock;
      match mail with
      | [] -> ()
      | mail ->
        List.iter
          (fun m ->
            t.cross_posts <- t.cross_posts + 1;
            ignore (Equeue.schedule d.q ~time:m.m_time m.m_act))
          (List.sort mail_order mail))
    t.shardv

let next_global t =
  Array.fold_left
    (fun acc sh ->
      match Equeue.next_time sh.q with
      | None -> acc
      | Some nt -> (
        match acc with None -> Some nt | Some a -> Some (min a nt)))
    None t.shardv

(* Mix a fire time into the commutative digest. The per-event hash is
   a strong scramble; the combination is plain wrapping addition so
   the total is independent of execution and partition order. *)
let dg_mix time =
  let h = (time + 1) * 0x2545F4914F6CDD1 in
  (h lxor (h lsr 29)) land max_int

let drain sh ~limit =
  Equeue.drain sh.q ~limit (fun time action ->
      sh.clock <- time;
      sh.fired <- sh.fired + 1;
      sh.fp <- ((sh.fp * 31) + time + 1) land max_int;
      sh.dg <- (sh.dg + dg_mix time) land max_int;
      action ())

(* --- worker team ------------------------------------------------------

   A persistent team of [workers - 1] spawned domains plus the
   coordinator. Each window the coordinator publishes (limit, gen+1)
   under the mutex; workers grab shard indices from an atomic counter,
   drain them, and check in. All shard state crosses domains inside
   mutex-protected generation transitions, so every window's writes
   happen-before the next window's reads. *)

type team = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable gen : int;  (* window generation; bumped to start a window *)
  mutable limit : int;
  mutable stop : bool;
  mutable checked_in : int;  (* workers finished with current gen *)
  mutable failure : exn option;  (* first exception raised in a window *)
  next_shard : int Atomic.t;
}

let team_make () =
  {
    mu = Mutex.create ();
    cv = Condition.create ();
    gen = 0;
    limit = 0;
    stop = false;
    checked_in = 0;
    failure = None;
    next_shard = Atomic.make 0;
  }

(* Drain shards off the grab counter until it runs out; record (don't
   propagate) the first exception so the barrier still completes. *)
let team_grab t tm =
  let n = Array.length t.shardv in
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add tm.next_shard 1 in
    if i >= n then continue_ := false
    else
      try drain t.shardv.(i) ~limit:tm.limit
      with e ->
        Mutex.lock tm.mu;
        if tm.failure = None then tm.failure <- Some e;
        Mutex.unlock tm.mu
  done

let team_worker t tm () =
  let gen_seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock tm.mu;
    while (not tm.stop) && tm.gen = !gen_seen do
      Condition.wait tm.cv tm.mu
    done;
    if tm.stop then begin
      Mutex.unlock tm.mu;
      continue_ := false
    end
    else begin
      gen_seen := tm.gen;
      Mutex.unlock tm.mu;
      team_grab t tm;
      Mutex.lock tm.mu;
      tm.checked_in <- tm.checked_in + 1;
      Condition.broadcast tm.cv;
      Mutex.unlock tm.mu
    end
  done

(* Run one window on the team (coordinator participates). Re-raises a
   worker exception only after the barrier, so the team is never left
   mid-window. *)
let team_window t tm ~workers ~limit =
  Mutex.lock tm.mu;
  tm.limit <- limit;
  tm.checked_in <- 0;
  Atomic.set tm.next_shard 0;
  tm.gen <- tm.gen + 1;
  Condition.broadcast tm.cv;
  Mutex.unlock tm.mu;
  team_grab t tm;
  Mutex.lock tm.mu;
  tm.checked_in <- tm.checked_in + 1;
  while tm.checked_in < workers do
    Condition.wait tm.cv tm.mu
  done;
  let failure = tm.failure in
  tm.failure <- None;
  Mutex.unlock tm.mu;
  match failure with None -> () | Some e -> raise e

let team_shutdown tm domains =
  Mutex.lock tm.mu;
  tm.stop <- true;
  Condition.broadcast tm.cv;
  Mutex.unlock tm.mu;
  Array.iter Domain.join domains

(* --- main loop -------------------------------------------------------- *)

let run ?workers ?until t =
  let n = Array.length t.shardv in
  let workers =
    match workers with
    | Some w -> max 1 (min w n)
    | None -> max 1 (min n (Domain.recommended_domain_count ()))
  in
  let finish () =
    match until with
    | None -> ()
    | Some u ->
      Array.iter (fun sh -> if sh.clock < u then sh.clock <- u) t.shardv
  in
  let rec loop window =
    deliver t;
    match next_global t with
    | None -> finish ()
    | Some t_min when (match until with Some u -> t_min > u | None -> false)
      ->
      finish ()
    | Some t_min ->
      (* Strict < horizon via pop ~limit: limit is inclusive, so the
         last admissible time is horizon - 1 = t_min + lookahead - 1.
         lookahead >= 1 keeps t_min itself admissible: progress. *)
      let limit =
        let l = t_min + t.lookahead - 1 in
        match until with Some u -> min l u | None -> l
      in
      t.windows <- t.windows + 1;
      window limit;
      loop window
  in
  if workers = 1 then loop (fun limit -> Array.iter (drain ~limit) t.shardv)
  else begin
    let tm = team_make () in
    let domains =
      Array.init (workers - 1) (fun _ -> Domain.spawn (team_worker t tm))
    in
    match loop (fun limit -> team_window t tm ~workers ~limit) with
    | () -> team_shutdown tm domains
    | exception e ->
      team_shutdown tm domains;
      raise e
  end

let events_fired t = Array.fold_left (fun acc sh -> acc + sh.fired) 0 t.shardv

let shard_events t ~shard = t.shardv.(shard).fired

let windows t = t.windows

let cross_posts t = t.cross_posts

let fingerprint t =
  let b = Buffer.create (16 * Array.length t.shardv) in
  Buffer.add_string b (Printf.sprintf "w%d" t.windows);
  Array.iter
    (fun sh ->
      Buffer.add_string b
        (Printf.sprintf "|s%d:%d@%d:%08x" sh.sid sh.fired sh.clock
           (sh.fp land 0xFFFFFFFF)))
    t.shardv;
  Buffer.contents b

let digest t = Array.fold_left (fun acc sh -> (acc + sh.dg) land max_int) 0 t.shardv
