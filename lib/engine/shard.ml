(* Conservative parallel DES: sharded queues, lookahead windows,
   mailboxed cross-shard events.

   Window protocol
   ---------------
     1. flush every mailbox into its shard queue, in (time, src, seq)
        order;
     2. t_min   := min over shards of Equeue.next_time;
     3. horizon := t_min + lookahead; shards drain events with
        time < horizon (strictly — an event exactly at the lookahead
        edge belongs to the next window) concurrently and without
        locks;
     4. repeat until no shard has a pending event at or below [until].

   Safety: during step 3 a shard only ever *receives* work through its
   own queue (local schedules) or its mailbox (cross posts). The post
   contract time >= src.clock + lookahead, together with
   src.clock < horizon while draining, guarantees a posted time is
   >= t_min + lookahead = horizon, i.e. outside the current window, so
   holding mail until the next flush never reorders anything a shard
   could have observed.

   Determinism: per-shard event order is the (time, seq) order of its
   private queue; mailbox flushes assign queue sequence numbers in the
   sorted (time, src, per-src seq) order, which no domain interleaving
   can perturb. Hence the executed streams depend only on the
   partition, not on the worker team — Seq and Par runs fingerprint
   identically. *)

type shard = {
  sid : int;
  q : Equeue.t;
  mutable clock : int;
  mutable fired : int;
  (* Order-sensitive rolling hash of this shard's fire times. *)
  mutable fp : int;
  (* Commutative (order-independent) contribution to the global
     outcome digest; summed across shards it is invariant under
     repartitioning as long as the same events execute. *)
  mutable dg : int;
  inbox : Mailbox.t;
  (* Prebuilt flush sink (schedule into [q]): one closure per shard
     for the mailbox's lifetime, nothing per delivery. *)
  sink : time:int -> (unit -> unit) -> unit;
  mutable out_seq : int;
}

type t = {
  shardv : shard array;
  lookahead : int;
  mutable windows : int;
  mutable cross_posts : int;
}

let create ?(queue = Equeue.Wheel_queue) ~shards ~lookahead () =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  if lookahead < 1 then invalid_arg "Shard.create: lookahead < 1";
  {
    shardv =
      Array.init shards (fun sid ->
          let q = Equeue.create queue in
          {
            sid;
            q;
            clock = 0;
            fired = 0;
            fp = 0;
            dg = 0;
            inbox = Mailbox.create ();
            sink = (fun ~time act -> ignore (Equeue.schedule q ~time act));
            out_seq = 0;
          });
    lookahead;
    windows = 0;
    cross_posts = 0;
  }

let shards t = Array.length t.shardv

let lookahead t = t.lookahead

let clock t ~shard = t.shardv.(shard).clock

let schedule t ~shard ~time action =
  let sh = t.shardv.(shard) in
  if time < sh.clock then
    invalid_arg
      (Printf.sprintf "Shard.schedule: time %d before shard %d clock %d" time
         shard sh.sid);
  Equeue.schedule sh.q ~time action

let cancel t ~shard h = Equeue.cancel t.shardv.(shard).q h

let post t ~src ~dst ~time action =
  let s = t.shardv.(src) in
  if time < s.clock + t.lookahead then
    invalid_arg
      (Printf.sprintf
         "Shard.post: time %d violates lookahead (shard %d clock %d + %d)" time
         src s.clock t.lookahead);
  let seq = s.out_seq in
  s.out_seq <- seq + 1;
  Mailbox.post t.shardv.(dst).inbox ~time ~src ~seq action

(* --- window execution ------------------------------------------------ *)

(* Coordinator-only, between windows: move mailbox contents into the
   destination queues in deterministic (time, src, seq) order. *)
let deliver t =
  Array.iter
    (fun d -> t.cross_posts <- t.cross_posts + Mailbox.flush d.inbox d.sink)
    t.shardv

let next_global t =
  Array.fold_left
    (fun acc sh ->
      match Equeue.next_time sh.q with
      | None -> acc
      | Some nt -> (
        match acc with None -> Some nt | Some a -> Some (min a nt)))
    None t.shardv

(* Mix a fire time into the commutative digest. The per-event hash is
   a strong scramble; the combination is plain wrapping addition so
   the total is independent of execution and partition order. *)
let dg_mix time =
  let h = (time + 1) * 0x2545F4914F6CDD1 in
  (h lxor (h lsr 29)) land max_int

let drain sh ~limit =
  Equeue.drain sh.q ~limit (fun time action ->
      sh.clock <- time;
      sh.fired <- sh.fired + 1;
      sh.fp <- ((sh.fp * 31) + time + 1) land max_int;
      sh.dg <- (sh.dg + dg_mix time) land max_int;
      action ())

(* --- main loop --------------------------------------------------------

   Window execution runs on a persistent {!Team} of worker domains
   (extracted from the original in-module team so {!Fabric} drives the
   same machinery). *)

let run ?workers ?until t =
  let n = Array.length t.shardv in
  let workers =
    match workers with
    | Some w -> max 1 (min w n)
    | None -> max 1 (min n (Domain.recommended_domain_count ()))
  in
  let finish () =
    match until with
    | None -> ()
    | Some u ->
      Array.iter (fun sh -> if sh.clock < u then sh.clock <- u) t.shardv
  in
  let tm =
    Team.create ~workers ~tasks:n ~work:(fun i ~limit ->
        drain t.shardv.(i) ~limit)
  in
  let rec loop () =
    deliver t;
    match next_global t with
    | None -> finish ()
    | Some t_min when (match until with Some u -> t_min > u | None -> false)
      ->
      finish ()
    | Some t_min ->
      (* Strict < horizon via pop ~limit: limit is inclusive, so the
         last admissible time is horizon - 1 = t_min + lookahead - 1.
         lookahead >= 1 keeps t_min itself admissible: progress. *)
      let limit =
        let l = t_min + t.lookahead - 1 in
        match until with Some u -> min l u | None -> l
      in
      t.windows <- t.windows + 1;
      Team.window tm ~limit;
      loop ()
  in
  match loop () with
  | () -> Team.shutdown tm
  | exception e ->
    Team.shutdown tm;
    raise e

let events_fired t = Array.fold_left (fun acc sh -> acc + sh.fired) 0 t.shardv

let shard_events t ~shard = t.shardv.(shard).fired

let windows t = t.windows

let cross_posts t = t.cross_posts

let fingerprint t =
  let b = Buffer.create (16 * Array.length t.shardv) in
  Buffer.add_string b (Printf.sprintf "w%d" t.windows);
  Array.iter
    (fun sh ->
      Buffer.add_string b
        (Printf.sprintf "|s%d:%d@%d:%08x" sh.sid sh.fired sh.clock
           (sh.fp land 0xFFFFFFFF)))
    t.shardv;
  Buffer.contents b

let digest t = Array.fold_left (fun acc sh -> (acc + sh.dg) land max_int) 0 t.shardv
