(** Array-based binary min-heap keyed by [(int * int)] pairs.

    The key is compared lexicographically: primary key first (event
    time), secondary key second (a sequence number that makes ordering
    of same-time events deterministic and FIFO). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently stored. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int -> seq:int -> 'a -> unit
(** [add h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val peek : 'a t -> (int * int * 'a) option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum element. *)

val clear : 'a t -> unit
(** [clear h] removes every element and nulls the backing slots, so
    no dropped value stays reachable through the heap ([pop] likewise
    nulls the slot it vacates). *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** [fold h ~init ~f] folds over elements in unspecified order. *)
