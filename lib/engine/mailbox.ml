(* Deterministic cross-shard mailbox, fused post/flush hot path.

   One mailbox per receiving shard. Senders post (time, src, per-src
   seq, action) tuples under the mailbox mutex; the coordinator
   flushes between conservative windows, delivering in the canonical
   (time, src, seq) order no domain interleaving can perturb.

   Zero-alloc contract (the PR 6 Equeue.drain treatment applied to
   mail): messages live in preallocated parallel arrays — three int
   arrays plus one action array — so a post is four array stores under
   the lock and a flush is an in-place insertion sort plus a callback
   sweep. The only allocation on the whole path is the amortized array
   doubling when a window's mail exceeds every previous window's;
   steady state allocates nothing per message (see the regression test
   in test/test_fabric.ml). Insertion sort is the right shape here:
   per-window mail is small (tens of messages) and already nearly
   sorted because per-src sequences arrive monotonically. *)

type t = {
  lock : Mutex.t;
  mutable time : int array;
  mutable src : int array;
  mutable seq : int array;
  mutable act : (unit -> unit) array;
  mutable len : int;
}

let nop () = ()

let create ?(cap = 64) () =
  let cap = max 1 cap in
  {
    lock = Mutex.create ();
    time = Array.make cap 0;
    src = Array.make cap 0;
    seq = Array.make cap 0;
    act = Array.make cap nop;
    len = 0;
  }

let grow t =
  let cap = Array.length t.time in
  let cap' = 2 * cap in
  let copy a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.time <- copy t.time 0;
  t.src <- copy t.src 0;
  t.seq <- copy t.seq 0;
  t.act <- copy t.act nop

let post t ~time ~src ~seq action =
  Mutex.lock t.lock;
  if t.len = Array.length t.time then grow t;
  let i = t.len in
  t.time.(i) <- time;
  t.src.(i) <- src;
  t.seq.(i) <- seq;
  t.act.(i) <- action;
  t.len <- i + 1;
  Mutex.unlock t.lock

let length t = t.len

(* In-place insertion sort of the parallel arrays by (time, src, seq).
   Strictly-greater comparisons keep the sort stable, though stability
   is moot: (time, src, seq) triples are unique by construction. *)
let sort_in_place t =
  let n = t.len in
  for i = 1 to n - 1 do
    let ti = t.time.(i) and si = t.src.(i) and qi = t.seq.(i) in
    let ai = t.act.(i) in
    let j = ref (i - 1) in
    let after j =
      let tj = t.time.(j) in
      tj > ti
      || (tj = ti
          && (let sj = t.src.(j) in
              sj > si || (sj = si && t.seq.(j) > qi)))
    in
    while !j >= 0 && after !j do
      t.time.(!j + 1) <- t.time.(!j);
      t.src.(!j + 1) <- t.src.(!j);
      t.seq.(!j + 1) <- t.seq.(!j);
      t.act.(!j + 1) <- t.act.(!j);
      decr j
    done;
    t.time.(!j + 1) <- ti;
    t.src.(!j + 1) <- si;
    t.seq.(!j + 1) <- qi;
    t.act.(!j + 1) <- ai
  done

let flush t sink =
  Mutex.lock t.lock;
  let n = t.len in
  if n > 0 then begin
    sort_in_place t;
    for i = 0 to n - 1 do
      sink ~time:t.time.(i) t.act.(i)
    done;
    (* Drop closure references so delivered actions are collectable. *)
    Array.fill t.act 0 n nop;
    t.len <- 0
  end;
  Mutex.unlock t.lock;
  n
