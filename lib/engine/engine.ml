type t = {
  mutable clock : int;
  mutable seq : int;
  queue : handle Heap.t;
  (* live = scheduled - fired - cancelled: maintained so that
     [pending_count] is O(1) instead of a fold over the heap. *)
  mutable live : int;
  mutable stop : bool;
  mutable fired_count : int;
  root_rng : Rng.t;
  trace : Sim_obs.Trace.t;
}

and handle = {
  time : int;
  mutable cancelled : bool;
  mutable fired : bool;
  action : unit -> unit;
  owner : t;
}

let create ?(seed = 1L) () =
  {
    clock = 0;
    seq = 0;
    queue = Heap.create ();
    live = 0;
    stop = false;
    fired_count = 0;
    root_rng = Rng.create seed;
    trace = Sim_obs.Trace.create ();
  }

let now t = t.clock

let trace t = t.trace

let rng t = t.root_rng

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time
         t.clock);
  let h = { time; cancelled = false; fired = false; action; owner = t } in
  Heap.add t.queue ~key:time ~seq:t.seq h;
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  h

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock + delay) action

let cancel h =
  if (not h.fired) && not h.cancelled then begin
    h.cancelled <- true;
    h.owner.live <- h.owner.live - 1
  end

let is_pending h = (not h.fired) && not h.cancelled

let fire_time h = h.time

let rec drop_cancelled t =
  match Heap.peek t.queue with
  | Some (_, _, h) when h.cancelled ->
    ignore (Heap.pop t.queue);
    drop_cancelled t
  | _ -> ()

let pending_count t = t.live

let step t =
  drop_cancelled t;
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, h) ->
    t.clock <- time;
    h.fired <- true;
    t.live <- t.live - 1;
    t.fired_count <- t.fired_count + 1;
    h.action ();
    true

let halt t = t.stop <- true

let halted t = t.stop

let run ?until t =
  t.stop <- false;
  let continue = ref true in
  while !continue && not t.stop do
    drop_cancelled t;
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _, _) -> begin
      match until with
      | Some limit when time > limit ->
        t.clock <- max t.clock limit;
        continue := false
      | _ -> ignore (step t)
    end
  done;
  match until with
  | Some limit when (not t.stop) && t.clock < limit -> t.clock <- limit
  | _ -> ()

let events_fired t = t.fired_count

(* Self-rescheduling event chains: the machine's slot/period clocks
   and the fault injector's recurring chaos windows. The action runs
   first and the next occurrence is scheduled after it returns, so a
   chain created with no jitter hook fires at exactly [start + k *
   period] with the same heap insertion order as a hand-rolled
   recursive schedule. *)
let periodic t ~start ~period ?jitter action =
  if period <= 0 then invalid_arg "Engine.periodic: period must be positive";
  let stopped = ref false in
  let pending = ref None in
  let rec fire () =
    action ();
    if not !stopped then begin
      let extra = match jitter with None -> 0 | Some j -> max 0 (j ()) in
      pending := Some (schedule_after t ~delay:(period + extra) fire)
    end
  in
  pending := Some (schedule_at t ~time:start fire);
  fun () ->
    stopped := true;
    match !pending with
    | Some h ->
      cancel h;
      pending := None
    | None -> ()
