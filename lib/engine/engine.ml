type queue_kind = Equeue.kind = Wheel_queue | Heap_queue

(* Process-wide default backend: the timing wheel, unless overridden
   by --engine-queue / ASMAN_ENGINE_QUEUE (the binary-heap oracle for
   differential runs). Read once per Engine.create. *)
let env_queue () =
  match Sys.getenv_opt "ASMAN_ENGINE_QUEUE" with
  | None -> None
  | Some s -> Equeue.kind_of_name (String.trim s)

let default_queue_ref : queue_kind option ref = ref None

let set_default_queue k = default_queue_ref := Some k

let default_queue () =
  match !default_queue_ref with
  | Some k -> k
  | None -> ( match env_queue () with Some k -> k | None -> Wheel_queue)

(* Coupled-mode sharding ledger (--sim-jobs N on a scenario).

   The VMM's scheduler state is global — work stealing scans every
   runqueue with zero latency and credit accounting is host-wide — so
   a scenario cannot yet run on truly partitioned queues without
   changing scheduler-visible outcomes. Arming the ledger keeps the
   single exact (time, seq) execution order (outcomes are byte-
   identical to the unarmed engine by construction) while attributing
   every fired event to the shard of the PCPU it runs on, enforcing
   the conservative-window bookkeeping (window count at the lookahead
   granularity), and measuring the coupling that blocks partitioned
   execution: cross-shard events scheduled closer than the lookahead,
   plus zero-latency remote-state touches (steals, relocations). The
   [Shard] module is the decoupled engine those counters qualify
   workloads for. *)
type sharding = {
  sh_lookahead : int;
  sh_shard_of_pcpu : int array;
  sh_nshards : int;
  (* Shard of the event currently executing; events scheduled while it
     runs inherit it unless tagged with ?shard. *)
  mutable sh_cur : int;
  sh_clock : int array;
  sh_fired : int array;
  sh_fp : int array;
  mutable sh_cross : int;  (* cross-shard, >= lookahead ahead: mailable *)
  mutable sh_coupled : int;  (* cross-shard, < lookahead: couplings *)
  mutable sh_windows : int;
  mutable sh_horizon : int;
}

type shard_report = {
  r_shards : int;
  r_lookahead : int;
  r_windows : int;
  r_cross : int;
  r_coupled : int;
  r_events : int array;
}

type t = {
  mutable clock : int;
  queue : Equeue.t;
  mutable stop : bool;
  mutable fired_count : int;
  (* Order-sensitive rolling hash of fire times: the per-member stream
     fingerprint the decoupled fabric's worker-count-invariance gate
     reads. One multiply-add per fired event. *)
  mutable stream_fp : int;
  root_rng : Rng.t;
  trace : Sim_obs.Trace.t;
  mutable sharding : sharding option;
}

type handle = Equeue.handle

let create ?(seed = 1L) ?queue () =
  let kind = match queue with Some k -> k | None -> default_queue () in
  {
    clock = 0;
    queue = Equeue.create kind;
    stop = false;
    fired_count = 0;
    stream_fp = 0;
    root_rng = Rng.create seed;
    trace = Sim_obs.Trace.create ();
    sharding = None;
  }

let queue_kind t = Equeue.kind t.queue

let now t = t.clock

let trace t = t.trace

let rng t = t.root_rng

let arm_sharding t ~lookahead ~shard_of_pcpu =
  if t.sharding <> None then invalid_arg "Engine.arm_sharding: already armed";
  if Equeue.length t.queue > 0 || t.clock > 0 then
    invalid_arg "Engine.arm_sharding: engine already in use";
  if lookahead < 1 then invalid_arg "Engine.arm_sharding: lookahead < 1";
  if Array.length shard_of_pcpu = 0 then
    invalid_arg "Engine.arm_sharding: empty pcpu map";
  let nshards = 1 + Array.fold_left max 0 shard_of_pcpu in
  Array.iter
    (fun s ->
      if s < 0 || s >= nshards then
        invalid_arg "Engine.arm_sharding: negative shard id")
    shard_of_pcpu;
  t.sharding <-
    Some
      {
        sh_lookahead = lookahead;
        sh_shard_of_pcpu = Array.copy shard_of_pcpu;
        sh_nshards = nshards;
        sh_cur = 0;
        sh_clock = Array.make nshards 0;
        sh_fired = Array.make nshards 0;
        sh_fp = Array.make nshards 0;
        sh_cross = 0;
        sh_coupled = 0;
        sh_windows = 0;
        sh_horizon = 0;
      }

let sharded t = t.sharding <> None

let shard_count t =
  match t.sharding with None -> 1 | Some sh -> sh.sh_nshards

let shard_hint t ~pcpu =
  match t.sharding with
  | None -> None
  | Some sh ->
    if pcpu >= 0 && pcpu < Array.length sh.sh_shard_of_pcpu then
      Some sh.sh_shard_of_pcpu.(pcpu)
    else None

let note_remote_touch t ~src_pcpu ~dst_pcpu =
  match t.sharding with
  | None -> ()
  | Some sh ->
    let m = Array.length sh.sh_shard_of_pcpu in
    if
      src_pcpu >= 0 && src_pcpu < m && dst_pcpu >= 0 && dst_pcpu < m
      && sh.sh_shard_of_pcpu.(src_pcpu) <> sh.sh_shard_of_pcpu.(dst_pcpu)
    then
      (* A zero-latency cross-shard state access — by definition inside
         the lookahead, so it counts as a coupling. *)
      sh.sh_coupled <- sh.sh_coupled + 1

let shard_report t =
  match t.sharding with
  | None -> None
  | Some sh ->
    Some
      {
        r_shards = sh.sh_nshards;
        r_lookahead = sh.sh_lookahead;
        r_windows = sh.sh_windows;
        r_cross = sh.sh_cross;
        r_coupled = sh.sh_coupled;
        r_events = Array.copy sh.sh_fired;
      }

let shard_fingerprint t =
  match t.sharding with
  | None -> None
  | Some sh ->
    let b = Buffer.create (16 * sh.sh_nshards) in
    Buffer.add_string b (Printf.sprintf "w%d" sh.sh_windows);
    for s = 0 to sh.sh_nshards - 1 do
      Buffer.add_string b
        (Printf.sprintf "|s%d:%d@%d:%08x" s sh.sh_fired.(s) sh.sh_clock.(s)
           (sh.sh_fp.(s) land 0xFFFFFFFF))
    done;
    Some (Buffer.contents b)

let schedule_at ?shard t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time
         t.clock);
  let action =
    match t.sharding with
    | None -> action
    | Some sh ->
      let s =
        match shard with
        | Some s ->
          if s < 0 || s >= sh.sh_nshards then
            invalid_arg "Engine.schedule_at: shard out of range";
          s
        | None -> sh.sh_cur
      in
      if s <> sh.sh_cur then
        if time - t.clock >= sh.sh_lookahead then
          sh.sh_cross <- sh.sh_cross + 1
        else sh.sh_coupled <- sh.sh_coupled + 1;
      fun () ->
        (* Window accounting at the lookahead quantum: how many
           conservative barriers a decoupled run of this event stream
           would have executed. *)
        if t.clock >= sh.sh_horizon then begin
          sh.sh_windows <- sh.sh_windows + 1;
          sh.sh_horizon <- t.clock + sh.sh_lookahead
        end;
        sh.sh_cur <- s;
        sh.sh_clock.(s) <- t.clock;
        sh.sh_fired.(s) <- sh.sh_fired.(s) + 1;
        sh.sh_fp.(s) <- ((sh.sh_fp.(s) * 31) + t.clock + s + 1) land max_int;
        action ()
  in
  Equeue.schedule t.queue ~time action

let schedule_after ?shard t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at ?shard t ~time:(t.clock + delay) action

let cancel t h = ignore (Equeue.cancel t.queue h)

let is_pending t h = Equeue.is_pending t.queue h

let fire_time t h = Equeue.fire_time t.queue h

let pending_count t = Equeue.length t.queue

let step t =
  match Equeue.pop t.queue with
  | Equeue.Empty | Equeue.Beyond -> false
  | Equeue.Event (time, action) ->
    t.clock <- time;
    t.fired_count <- t.fired_count + 1;
    t.stream_fp <- ((t.stream_fp * 31) + time + 1) land max_int;
    action ();
    true

let halt t = t.stop <- true

let halted t = t.stop

(* One queue descent per fired event: [Equeue.pop ?limit] locates the
   live minimum once and either extracts it or reports it beyond the
   horizon, where the old loop peeked (dropping cancelled events) and
   then popped (dropping them again). *)
let run ?until t =
  t.stop <- false;
  let continue = ref true in
  while !continue && not t.stop do
    match Equeue.pop ?limit:until t.queue with
    | Equeue.Event (time, action) ->
      t.clock <- time;
      t.fired_count <- t.fired_count + 1;
      t.stream_fp <- ((t.stream_fp * 31) + time + 1) land max_int;
      action ()
    | Equeue.Beyond ->
      (match until with
      | Some limit -> t.clock <- max t.clock limit
      | None -> ());
      continue := false
    | Equeue.Empty -> continue := false
  done;
  match until with
  | Some limit when (not t.stop) && t.clock < limit -> t.clock <- limit
  | _ -> ()

let events_fired t = t.fired_count

let stream_fp t = t.stream_fp

let next_time t = Equeue.next_time t.queue

(* Self-rescheduling event chains: the machine's slot/period clocks
   and the fault injector's recurring chaos windows. The action runs
   first and the next occurrence is scheduled after it returns, so a
   chain created with no jitter hook fires at exactly [start + k *
   period] with the same queue insertion order as a hand-rolled
   recursive schedule. *)
let periodic ?shard t ~start ~period ?jitter action =
  if period <= 0 then invalid_arg "Engine.periodic: period must be positive";
  let stopped = ref false in
  let pending = ref None in
  let rec fire () =
    action ();
    if not !stopped then begin
      let extra = match jitter with None -> 0 | Some j -> max 0 (j ()) in
      (* Reschedules inherit the chain's shard ambiently: they are
         created while its own event is the one executing. *)
      pending := Some (schedule_after t ~delay:(period + extra) fire)
    end
  in
  pending := Some (schedule_at ?shard t ~time:start fire);
  fun () ->
    stopped := true;
    match !pending with
    | Some h ->
      cancel t h;
      pending := None
    | None -> ()
