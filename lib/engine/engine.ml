type queue_kind = Equeue.kind = Wheel_queue | Heap_queue

(* Process-wide default backend: the timing wheel, unless overridden
   by --engine-queue / ASMAN_ENGINE_QUEUE (the binary-heap oracle for
   differential runs). Read once per Engine.create. *)
let env_queue () =
  match Sys.getenv_opt "ASMAN_ENGINE_QUEUE" with
  | None -> None
  | Some s -> Equeue.kind_of_name (String.trim s)

let default_queue_ref : queue_kind option ref = ref None

let set_default_queue k = default_queue_ref := Some k

let default_queue () =
  match !default_queue_ref with
  | Some k -> k
  | None -> ( match env_queue () with Some k -> k | None -> Wheel_queue)

type t = {
  mutable clock : int;
  queue : Equeue.t;
  mutable stop : bool;
  mutable fired_count : int;
  root_rng : Rng.t;
  trace : Sim_obs.Trace.t;
}

type handle = Equeue.handle

let create ?(seed = 1L) ?queue () =
  let kind = match queue with Some k -> k | None -> default_queue () in
  {
    clock = 0;
    queue = Equeue.create kind;
    stop = false;
    fired_count = 0;
    root_rng = Rng.create seed;
    trace = Sim_obs.Trace.create ();
  }

let queue_kind t = Equeue.kind t.queue

let now t = t.clock

let trace t = t.trace

let rng t = t.root_rng

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time
         t.clock);
  Equeue.schedule t.queue ~time action

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t ~time:(t.clock + delay) action

let cancel t h = ignore (Equeue.cancel t.queue h)

let is_pending t h = Equeue.is_pending t.queue h

let fire_time t h = Equeue.fire_time t.queue h

let pending_count t = Equeue.length t.queue

let step t =
  match Equeue.pop t.queue with
  | Equeue.Empty | Equeue.Beyond -> false
  | Equeue.Event (time, action) ->
    t.clock <- time;
    t.fired_count <- t.fired_count + 1;
    action ();
    true

let halt t = t.stop <- true

let halted t = t.stop

(* One queue descent per fired event: [Equeue.pop ?limit] locates the
   live minimum once and either extracts it or reports it beyond the
   horizon, where the old loop peeked (dropping cancelled events) and
   then popped (dropping them again). *)
let run ?until t =
  t.stop <- false;
  let continue = ref true in
  while !continue && not t.stop do
    match Equeue.pop ?limit:until t.queue with
    | Equeue.Event (time, action) ->
      t.clock <- time;
      t.fired_count <- t.fired_count + 1;
      action ()
    | Equeue.Beyond ->
      (match until with
      | Some limit -> t.clock <- max t.clock limit
      | None -> ());
      continue := false
    | Equeue.Empty -> continue := false
  done;
  match until with
  | Some limit when (not t.stop) && t.clock < limit -> t.clock <- limit
  | _ -> ()

let events_fired t = t.fired_count

(* Self-rescheduling event chains: the machine's slot/period clocks
   and the fault injector's recurring chaos windows. The action runs
   first and the next occurrence is scheduled after it returns, so a
   chain created with no jitter hook fires at exactly [start + k *
   period] with the same queue insertion order as a hand-rolled
   recursive schedule. *)
let periodic t ~start ~period ?jitter action =
  if period <= 0 then invalid_arg "Engine.periodic: period must be positive";
  let stopped = ref false in
  let pending = ref None in
  let rec fire () =
    action ();
    if not !stopped then begin
      let extra = match jitter with None -> 0 | Some j -> max 0 (j ()) in
      pending := Some (schedule_after t ~delay:(period + extra) fire)
    end
  in
  pending := Some (schedule_at t ~time:start fire);
  fun () ->
    stopped := true;
    match !pending with
    | Some h ->
      cancel t h;
      pending := None
    | None -> ()
