(** Conservative parallel discrete-event simulation over sharded
    event queues.

    The simulated host's PCPUs are partitioned into [shards], each
    owning a private {!Equeue.t} (timing wheel or heap oracle), a
    private clock, and a mailbox for inbound cross-shard events. The
    engine advances in windows: each window picks the global minimum
    pending fire time [t_min], sets the safe horizon
    [t_min + lookahead], and lets every shard drain its local queue
    strictly below the horizon with no synchronization at all. The
    conservative contract making this safe is {!post}: a cross-shard
    event must be scheduled at least [lookahead] ahead of the sending
    shard's clock, so nothing posted during a window can land inside
    it. Mailboxes are flushed between windows in the deterministic
    [(time, source shard, source sequence)] order.

    Logical sharding is decoupled from physical workers: the shard
    count fixes the partition (and therefore which events share a
    queue), while {!run}'s worker-domain team only changes who drains
    which queue. Outcomes are a function of the partition alone —
    running the same sharded simulation with 1 worker or [N] worker
    domains produces identical per-shard event streams by
    construction, which {!fingerprint} checks cheaply. *)

type t

val create : ?queue:Equeue.kind -> shards:int -> lookahead:int -> unit -> t
(** [create ~shards ~lookahead ()] builds an engine with [shards]
    independent event queues ([queue] defaults to the timing wheel)
    synchronized on a conservative window of [lookahead] simulated
    cycles. Raises [Invalid_argument] if [shards < 1] or
    [lookahead < 1]. *)

val shards : t -> int

val lookahead : t -> int

val clock : t -> shard:int -> int
(** The shard's local clock: the fire time of its latest event, later
    clamped up to [until] when {!run} exhausts the window bound. *)

val schedule : t -> shard:int -> time:int -> (unit -> unit) -> Equeue.handle
(** Schedule a shard-local event. Raises [Invalid_argument] if [time]
    is before the shard's clock. Actions run on the domain draining
    that shard and may call [schedule] (same shard) and {!post} (other
    shards) freely. *)

val cancel : t -> shard:int -> Equeue.handle -> bool
(** Cancel a pending shard-local event; [false] if it already fired or
    was cancelled. Only the shard that scheduled the event may cancel
    it (the handle is meaningless to any other shard's queue). *)

val post : t -> src:int -> dst:int -> time:int -> (unit -> unit) -> unit
(** Mailbox a cross-shard event from shard [src] to shard [dst]. The
    conservative contract requires [time >= clock src + lookahead];
    violations raise [Invalid_argument] (they would race the receiving
    shard's current window). Delivery happens at the next window
    boundary, in [(time, src, per-src sequence)] order, so the
    receiving shard observes a deterministic arrival order no matter
    which domains ran the windows. *)

val run : ?workers:int -> ?until:int -> t -> unit
(** Drain all shards window by window until every queue is empty, or
    until the next global event lies strictly after [until] (shard
    clocks are then clamped to [until], mirroring {!Engine.run}).

    [workers] caps the domain team draining shards within a window; it
    defaults to [min shards (Domain.recommended_domain_count ())] and
    is determinism-irrelevant: any worker count yields the same
    per-shard event streams. With [workers = 1] no domain is spawned
    and shards are drained round-robin on the calling domain. *)

val events_fired : t -> int
(** Total events fired across all shards. *)

val shard_events : t -> shard:int -> int

val windows : t -> int
(** Conservative windows executed so far. *)

val cross_posts : t -> int
(** Cross-shard events delivered through mailboxes so far. *)

val fingerprint : t -> string
(** Per-shard digest of the executed event streams — each shard's
    event count, final clock, and an order-sensitive rolling hash of
    its fire times, plus the window count. Two runs of the same
    partition must produce equal fingerprints regardless of worker
    count; differing partitions legitimately differ. *)

val digest : t -> int
(** Partition-independent outcome digest: a commutative hash over the
    fire times of every executed event. Two runs that execute the same
    multiset of events — e.g. the same workload at different shard
    counts — produce equal digests; this is the [-j1]-vs-[-jN]
    fingerprint the bench and CI gate on. *)
