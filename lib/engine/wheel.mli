(** Hierarchical timing wheel over a pooled, allocation-free event
    store.

    This is the engine's fast event-queue backend (Varghese–Lauck
    scheme 6: hashed hierarchical wheels). Events live in a
    struct-of-arrays slab ({!pool}) and are identified by integer
    slots; the wheel files them into per-level buckets by fire time,
    cascades buckets down as the cursor advances, and restores exact
    [(time, seq)] order through a small "near" slot-heap. A far-future
    slot-heap catches events beyond the top level's window.

    Users normally go through {!Equeue}, which multiplexes this wheel
    with the binary-heap oracle behind one interface. *)

(** {2 Pooled event store} *)

type pool = {
  mutable time : int array;
  mutable seq : int array;
  mutable gen : int array;
  mutable loc : int array;
  mutable link_next : int array;
  mutable link_prev : int array;
  mutable act : (unit -> unit) array;
  mutable free : int;
  mutable cap : int;
}
(** Struct-of-arrays event slab. [time]/[seq] form the unboxed
    ordering key; [loc] says which container holds the slot (a wheel
    bucket index, or one of the [loc_*] sentinels); [gen] is bumped on
    every release so packed handles detect recycled slots; [link_*]
    thread the intrusive bucket lists and the free list. *)

val loc_free : int
val loc_near : int
val loc_far : int

val loc_aux : int
(** Container tag reserved for a backend-owned slot-heap (the binary
    heap oracle in {!Equeue}). *)

val loc_dead : int
(** Cancelled while inside a slot-heap; dropped lazily at the top. *)

val noop : unit -> unit

val pool_create : unit -> pool

val alloc : pool -> time:int -> seq:int -> (unit -> unit) -> int
(** Claim a slot from the free list (growing the slab if needed) and
    initialise it. Returns the slot index; the caller sets [loc]. *)

val release : pool -> int -> unit
(** Recycle a slot: bump its generation, drop the action closure and
    push it on the free list. *)

val handle_of : pool -> int -> int
(** Pack a slot and its current generation into a public handle. *)

val handle_slot : int -> int

val handle_live : pool -> int -> bool
(** Whether a packed handle still refers to a pending event (the
    generation matches and the slot is neither free nor cancelled). *)

(** {2 Slot-heap}

    Binary min-heap of pool slots ordered by the exact lexicographic
    [(time, seq)] key read from the pool arrays — no per-entry
    allocation, used for the near/far regions and the heap oracle. *)
module Sheap : sig
  type t

  val create : unit -> t
  val length : t -> int
  val is_empty : t -> bool
  val clear : t -> unit
  val push : pool -> t -> int -> unit

  val top : t -> int
  (** Minimum slot without removing it; [-1] when empty. *)

  val pop : pool -> t -> int
  (** Remove and return the minimum slot; [-1] when empty. *)
end

(** {2 Wheel} *)

type t

val create : pool -> t

val insert : t -> int -> unit
(** File a slot by its [time]: into the near heap if at or behind the
    cursor, into the lowest wheel level whose window contains it, or
    into the far-future heap. Sets the slot's [loc]. *)

val remove : t -> int -> unit
(** Eagerly unlink a slot from its wheel bucket (only valid when
    [loc >= 0]); O(1), leaves no tombstone. The caller releases. *)

val ensure_near : t -> bool
(** Advance the cursor — dumping due buckets, cascading levels and
    pulling far-future events — until the near heap's top is the
    queue's live [(time, seq)] minimum. [false] iff no live event
    remains. *)

val near_top_time : t -> int
(** Fire time of the near-heap top; call only after {!ensure_near}
    returned [true]. *)

val take_near : t -> int
(** Pop the near-heap minimum slot; the caller releases it. *)
