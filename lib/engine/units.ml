type freq = int

let khz k =
  if k <= 0 then invalid_arg "Units.khz: frequency must be positive";
  k

let mhz m = khz (m * 1_000)

let ghz_f g =
  let k = Float.round (g *. 1e6) in
  khz (int_of_float k)

let freq_to_khz f = f

(* freq is kHz = cycles per ms. *)
let cycles_of_ms f ms = f * ms

let cycles_of_us f us = f * us / 1_000

let cycles_of_ns f ns = f * ns / 1_000_000

let cycles_of_sec f s = f * 1_000 * s

let cycles_of_sec_f f s = int_of_float (Float.round (float_of_int f *. 1_000. *. s))

let sec_of_cycles f c = float_of_int c /. (float_of_int f *. 1_000.)

let ms_of_cycles f c = float_of_int c /. float_of_int f

let us_of_cycles f c = float_of_int c *. 1_000. /. float_of_int f

let pow2 k =
  if k < 0 || k > 61 then invalid_arg "Units.pow2: exponent out of range";
  1 lsl k

let log2_floor n =
  if n < 1 then invalid_arg "Units.log2_floor: argument must be >= 1";
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let pp_cycles f fmt c =
  let s = sec_of_cycles f c in
  if s >= 1. then Format.fprintf fmt "%.3f s" s
  else if s >= 1e-3 then Format.fprintf fmt "%.3f ms" (s *. 1e3)
  else if s >= 1e-6 then Format.fprintf fmt "%.3f us" (s *. 1e6)
  else Format.fprintf fmt "%d cyc" c
