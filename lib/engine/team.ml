(* Persistent worker-domain team with a generation barrier.

   Extracted from Shard.run so the decoupled-VMM fabric can drive the
   same machinery: [tasks] drainable units (shards, member engines),
   a [work i ~limit] closure that drains unit [i] up to [limit], and a
   team of [workers - 1] spawned domains plus the calling coordinator.

   Each window the coordinator publishes (limit, gen+1) under the
   mutex; workers grab unit indices from an atomic counter, drain
   them, and check in. All simulation state crosses domains inside
   mutex-protected generation transitions, so every window's writes
   happen-before the next window's reads. With [workers = 1] no domain
   is spawned and windows run sequentially on the caller. *)

type t = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable gen : int;  (* window generation; bumped to start a window *)
  mutable limit : int;
  mutable stop : bool;
  mutable checked_in : int;  (* workers finished with current gen *)
  mutable failure : exn option;  (* first exception raised in a window *)
  next_task : int Atomic.t;
  tasks : int;
  work : int -> limit:int -> unit;
  workers : int;
  mutable domains : unit Domain.t array;
}

let workers t = t.workers

(* Drain tasks off the grab counter until it runs out; record (don't
   propagate) the first exception so the barrier still completes. *)
let grab t =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add t.next_task 1 in
    if i >= t.tasks then continue_ := false
    else
      try t.work i ~limit:t.limit
      with e ->
        Mutex.lock t.mu;
        if t.failure = None then t.failure <- Some e;
        Mutex.unlock t.mu
  done

let worker_loop t () =
  let gen_seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mu;
    while (not t.stop) && t.gen = !gen_seen do
      Condition.wait t.cv t.mu
    done;
    if t.stop then begin
      Mutex.unlock t.mu;
      continue_ := false
    end
    else begin
      gen_seen := t.gen;
      Mutex.unlock t.mu;
      grab t;
      Mutex.lock t.mu;
      t.checked_in <- t.checked_in + 1;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu
    end
  done

let create ~workers ~tasks ~work =
  let workers = max 1 (min workers tasks) in
  let t =
    {
      mu = Mutex.create ();
      cv = Condition.create ();
      gen = 0;
      limit = 0;
      stop = false;
      checked_in = 0;
      failure = None;
      next_task = Atomic.make 0;
      tasks;
      work;
      workers;
      domains = [||];
    }
  in
  if workers > 1 then
    t.domains <- Array.init (workers - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

(* Run one window (coordinator participates). Re-raises a worker
   exception only after the barrier, so the team is never left
   mid-window. *)
let window t ~limit =
  if t.workers = 1 then begin
    t.limit <- limit;
    for i = 0 to t.tasks - 1 do
      t.work i ~limit
    done
  end
  else begin
    Mutex.lock t.mu;
    t.limit <- limit;
    t.checked_in <- 0;
    Atomic.set t.next_task 0;
    t.gen <- t.gen + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    grab t;
    Mutex.lock t.mu;
    t.checked_in <- t.checked_in + 1;
    while t.checked_in < t.workers do
      Condition.wait t.cv t.mu
    done;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mu;
    match failure with None -> () | Some e -> raise e
  end

let shutdown t =
  if t.workers > 1 then begin
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    Array.iter Domain.join t.domains
  end
