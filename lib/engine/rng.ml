type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let child_seed = next_int64 t in
  create child_seed

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling avoids modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let uniform t =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let float t bound = uniform t *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = uniform t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~mean =
  let rec nonzero () =
    let u = uniform t in
    if u > 0. then u else nonzero ()
  in
  -.mean *. log (nonzero ())

let lognormal_cv t ~mean ~cv =
  if cv <= 0. then mean
  else begin
    let sigma2 = log (1. +. (cv *. cv)) in
    let mu = log mean -. (sigma2 /. 2.) in
    exp (gaussian t ~mu ~sigma:(sqrt sigma2))
  end

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
