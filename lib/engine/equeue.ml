(* Event-queue dispatch: one pooled handle representation, two
   interchangeable backends.

   - Wheel: the hierarchical timing wheel (Wheel.t) — O(1) schedule,
     near-O(1) amortised pop, eager cancel. The default.
   - Heap: a single slot-heap over the same pool — the old binary-heap
     behaviour (lazy cancellation), kept as the differential-testing
     oracle behind `--engine-queue=heap`.

   Both backends order events by the exact lexicographic (time, seq)
   key, so their pop sequences are identical event for event; figures
   and ablations are byte-identical across backends. *)

type kind = Wheel_queue | Heap_queue

let kind_name = function Wheel_queue -> "wheel" | Heap_queue -> "heap"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "wheel" -> Some Wheel_queue
  | "heap" -> Some Heap_queue
  | _ -> None

type backend = Wheel of Wheel.t | Heap of Wheel.Sheap.t

type t = {
  pool : Wheel.pool;
  backend : backend;
  mutable seq : int;
  (* Live (scheduled - fired - cancelled) events, maintained here so
     [length] is O(1) with either backend. *)
  mutable live : int;
}

let create kind =
  let pool = Wheel.pool_create () in
  let backend =
    match kind with
    | Wheel_queue -> Wheel (Wheel.create pool)
    | Heap_queue -> Heap (Wheel.Sheap.create ())
  in
  { pool; backend; seq = 0; live = 0 }

let kind t =
  match t.backend with Wheel _ -> Wheel_queue | Heap _ -> Heap_queue

let length t = t.live

let is_empty t = t.live = 0

type handle = int

let schedule t ~time action =
  let s = Wheel.alloc t.pool ~time ~seq:t.seq action in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  (match t.backend with
  | Wheel w -> Wheel.insert w s
  | Heap h ->
    t.pool.Wheel.loc.(s) <- Wheel.loc_aux;
    Wheel.Sheap.push t.pool h s);
  Wheel.handle_of t.pool s

let is_pending t h = Wheel.handle_live t.pool h

let fire_time t h =
  if not (Wheel.handle_live t.pool h) then
    invalid_arg "Equeue.fire_time: stale or fired handle"
  else t.pool.Wheel.time.(Wheel.handle_slot h)

(* [cancel] returns whether the event was still pending (the caller
   keeps the live-event accounting). Wheel-bucket residents are
   unlinked and recycled on the spot; slot-heap residents (near/far
   regions and the heap oracle) are tombstoned and dropped when they
   surface. *)
let cancel t h =
  if not (Wheel.handle_live t.pool h) then false
  else begin
    let s = Wheel.handle_slot h in
    let loc = t.pool.Wheel.loc.(s) in
    if loc >= 0 then begin
      (match t.backend with
      | Wheel w -> Wheel.remove w s
      | Heap _ -> assert false);
      Wheel.release t.pool s
    end
    else begin
      t.pool.Wheel.loc.(s) <- Wheel.loc_dead;
      t.pool.Wheel.act.(s) <- Wheel.noop
    end;
    t.live <- t.live - 1;
    true
  end

(* Drop tombstones off the heap-oracle top; [true] iff a live event
   remains on top. *)
let rec heap_ensure pool h =
  let s = Wheel.Sheap.top h in
  if s < 0 then false
  else if pool.Wheel.loc.(s) = Wheel.loc_dead then begin
    ignore (Wheel.Sheap.pop pool h);
    Wheel.release pool s;
    heap_ensure pool h
  end
  else true

(* Peek at the live minimum's fire time without extracting it. Shares
   the backend descent with [pop]: the wheel advances its cursor until
   the near heap holds the global minimum, the heap oracle sheds
   tombstones off its top. Both are work [pop] would do anyway. *)
let next_time t =
  match t.backend with
  | Wheel w -> if Wheel.ensure_near w then Some (Wheel.near_top_time w) else None
  | Heap h ->
    if heap_ensure t.pool h then
      Some t.pool.Wheel.time.(Wheel.Sheap.top h)
    else None

type pop_result =
  | Event of int * (unit -> unit)  (** fire time and action *)
  | Beyond  (** next live event is after [limit]; left queued *)
  | Empty

(* One queue descent per fired event: find the live minimum, compare
   against the limit, and either extract it or leave it queued. *)
let pop ?limit t =
  let take_slot time s =
    let action = t.pool.Wheel.act.(s) in
    Wheel.release t.pool s;
    t.live <- t.live - 1;
    Event (time, action)
  in
  match t.backend with
  | Wheel w ->
    if not (Wheel.ensure_near w) then Empty
    else begin
      let time = Wheel.near_top_time w in
      match limit with
      | Some l when time > l -> Beyond
      | _ -> take_slot time (Wheel.take_near w)
    end
  | Heap h ->
    if not (heap_ensure t.pool h) then Empty
    else begin
      let time = t.pool.Wheel.time.(Wheel.Sheap.top h) in
      match limit with
      | Some l when time > l -> Beyond
      | _ -> take_slot time (Wheel.Sheap.pop t.pool h)
    end

(* Fused fire loop: equivalent to looping over [pop ~limit] but with
   no per-event allocation (neither the [limit] option nor the
   [pop_result] block), which matters on the sharded drain hot path
   where millions of events fire per window. *)
let drain t ~limit f =
  let continue_ = ref true in
  (match t.backend with
  | Wheel w ->
    while !continue_ do
      if not (Wheel.ensure_near w) then continue_ := false
      else begin
        let time = Wheel.near_top_time w in
        if time > limit then continue_ := false
        else begin
          let s = Wheel.take_near w in
          let action = t.pool.Wheel.act.(s) in
          Wheel.release t.pool s;
          t.live <- t.live - 1;
          f time action
        end
      end
    done
  | Heap h ->
    while !continue_ do
      if not (heap_ensure t.pool h) then continue_ := false
      else begin
        let time = t.pool.Wheel.time.(Wheel.Sheap.top h) in
        if time > limit then continue_ := false
        else begin
          let s = Wheel.Sheap.pop t.pool h in
          let action = t.pool.Wheel.act.(s) in
          Wheel.release t.pool s;
          t.live <- t.live - 1;
          f time action
        end
      end
    done)
