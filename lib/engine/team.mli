(** Persistent worker-domain team with a per-window generation
    barrier — the execution engine under {!Shard.run} and
    {!Fabric.run}.

    [tasks] numbered drainable units share one [work i ~limit]
    closure; each {!window} distributes the unit indices over the
    team through an atomic grab counter and barriers before
    returning. Which domain drains which unit is scheduling noise —
    determinism must come from the caller's window protocol. *)

type t

val create : workers:int -> tasks:int -> work:(int -> limit:int -> unit) -> t
(** Spawn [workers - 1] domains (clamped to [max 1 (min workers
    tasks)]). With one worker, no domain is spawned and windows run
    sequentially on the caller. The team persists until {!shutdown} —
    spawn cost is paid once, not per window. *)

val workers : t -> int
(** The clamped worker count actually in use. *)

val window : t -> limit:int -> unit
(** Run one window: every unit gets [work i ~limit] exactly once,
    then barrier. The first exception a unit raised is re-raised
    here, after the barrier, so the team is never left mid-window. *)

val shutdown : t -> unit
(** Stop and join the spawned domains. Idempotent only in the
    one-worker case; call exactly once otherwise. *)
