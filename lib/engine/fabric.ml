(* Conservative windowed coordination of full Engine members — the
   decoupled-VMM execution core.

   Where {!Shard} shards one logical simulation over bare Equeues,
   the fabric couples N complete {!Engine} instances (each carrying
   its own clock, RNG, trace and, above it, a whole VMM sub-host) and
   advances them in lockstep conservative windows on a {!Team} of
   worker domains:

     1. flush every member's {!Mailbox} into its queue, in
        (time, src, seq) order;
     2. t_min   := min over members of Engine.next_time;
     3. limit   := t_min + lookahead - 1 (inclusive); every member
        drains [Engine.run ~until:limit] concurrently, lock-free;
     4. repeat until a stop condition holds, the [until] horizon is
        passed, or every queue is empty.

   The safety argument is Shard's: {!post} requires
   [time >= src clock + lookahead], and a draining member's clock
   stays <= limit < t_min + lookahead, so no message posted during a
   window can land inside it; holding mail until the next flush
   reorders nothing any member could have observed. Member event
   streams therefore depend only on the member partition and the
   message contents — never on the worker count — which
   {!fingerprint}/{!digest} check cheaply via the engines' rolling
   stream fingerprints. *)

type t = {
  members : Engine.t array;
  lookahead : int;
  inboxes : Mailbox.t array;
  (* Prebuilt flush sinks (schedule into the member's queue): one
     closure per member for the fabric's lifetime. *)
  sinks : (time:int -> (unit -> unit) -> unit) array;
  out_seq : int array;  (* per-src sequence counters *)
  mutable windows : int;
  mutable cross_posts : int;
  mutable max_window_mail : int;
}

let create ~lookahead members =
  if Array.length members = 0 then invalid_arg "Fabric.create: no members";
  if lookahead < 1 then invalid_arg "Fabric.create: lookahead < 1";
  {
    members;
    lookahead;
    inboxes = Array.map (fun _ -> Mailbox.create ()) members;
    sinks =
      Array.map
        (fun m ~time act -> ignore (Engine.schedule_at m ~time act))
        members;
    out_seq = Array.make (Array.length members) 0;
    windows = 0;
    cross_posts = 0;
    max_window_mail = 0;
  }

let members t = Array.length t.members
let member t i = t.members.(i)
let lookahead t = t.lookahead

let post t ~src ~dst ~time action =
  let now = Engine.now t.members.(src) in
  if time < now + t.lookahead then
    invalid_arg
      (Printf.sprintf
         "Fabric.post: time %d violates lookahead (member %d clock %d + %d)"
         time src now t.lookahead);
  let seq = t.out_seq.(src) in
  t.out_seq.(src) <- seq + 1;
  Mailbox.post t.inboxes.(dst) ~time ~src ~seq action

(* Coordinator-only, between windows. *)
let deliver t =
  let delivered = ref 0 in
  Array.iteri
    (fun i inbox -> delivered := !delivered + Mailbox.flush inbox t.sinks.(i))
    t.inboxes;
  t.cross_posts <- t.cross_posts + !delivered;
  if !delivered > t.max_window_mail then t.max_window_mail <- !delivered

let next_global t =
  Array.fold_left
    (fun acc m ->
      match Engine.next_time m with
      | None -> acc
      | Some nt -> (
        match acc with None -> Some nt | Some a -> Some (min a nt)))
    None t.members

let run ?workers ?until ?(stop = fun () -> false) t =
  let n = Array.length t.members in
  let workers =
    match workers with
    | Some w -> max 1 (min w n)
    | None -> max 1 (min n (Domain.recommended_domain_count ()))
  in
  let finish () =
    match until with
    | None -> ()
    | Some u ->
      (* Clamp every member clock to the horizon (drains nothing: the
         earliest pending event is already beyond [u]). *)
      Array.iter (fun m -> Engine.run ~until:u m) t.members
  in
  let tm =
    Team.create ~workers ~tasks:n ~work:(fun i ~limit ->
        Engine.run ~until:limit t.members.(i))
  in
  let rec loop () =
    deliver t;
    (* Stop flags are written by member events during the previous
       window; the Team barrier's mutex transitions order those writes
       before this read. Stopping between windows keeps the stop point
       deterministic: window boundaries derive from event times. *)
    if stop () then ()
    else
      match next_global t with
      | None -> finish ()
      | Some t_min
        when (match until with Some u -> t_min > u | None -> false) ->
        finish ()
      | Some t_min ->
        let limit =
          let l = t_min + t.lookahead - 1 in
          match until with Some u -> min l u | None -> l
        in
        t.windows <- t.windows + 1;
        Team.window tm ~limit;
        loop ()
  in
  match loop () with
  | () -> Team.shutdown tm
  | exception e ->
    Team.shutdown tm;
    raise e

let windows t = t.windows
let cross_posts t = t.cross_posts
let max_window_mail t = t.max_window_mail

let events_fired t =
  Array.fold_left (fun acc m -> acc + Engine.events_fired m) 0 t.members

let fingerprint t =
  let b = Buffer.create (16 * Array.length t.members) in
  Buffer.add_string b (Printf.sprintf "w%d" t.windows);
  Array.iteri
    (fun i m ->
      Buffer.add_string b
        (Printf.sprintf "|m%d:%d@%d:%08x" i (Engine.events_fired m)
           (Engine.now m)
           (Engine.stream_fp m land 0xFFFFFFFF)))
    t.members;
  Buffer.contents b

let digest t =
  Array.fold_left
    (fun acc m ->
      ((acc * 1000003) + (Engine.stream_fp m lxor Engine.events_fired m))
      land max_int)
    t.windows t.members
