(** Time units.

    The simulator's clock counts integer CPU cycles. This module
    converts between cycles and wall-clock units for a given CPU
    frequency expressed in kHz (kept integral so conversions stay in
    exact integer arithmetic; 2.33 GHz = 2_330_000 kHz). *)

type freq = private int
(** CPU frequency in kHz. *)

val khz : int -> freq
(** [khz k] is a frequency of [k] kHz. Raises [Invalid_argument] on
    non-positive values. *)

val mhz : int -> freq

val ghz_f : float -> freq
(** [ghz_f g] is [g] GHz rounded to the nearest kHz. *)

val freq_to_khz : freq -> int

val cycles_of_ns : freq -> int -> int
val cycles_of_us : freq -> int -> int
val cycles_of_ms : freq -> int -> int
val cycles_of_sec : freq -> int -> int

val cycles_of_sec_f : freq -> float -> int
(** Fractional seconds, rounded to the nearest cycle. *)

val sec_of_cycles : freq -> int -> float
val ms_of_cycles : freq -> int -> float
val us_of_cycles : freq -> int -> float

val pow2 : int -> int
(** [pow2 k] is [2{^k}]. Raises [Invalid_argument] outside [0, 61]. *)

val log2_floor : int -> int
(** [log2_floor n] for [n >= 1] is the position of the highest set
    bit: the greatest [k] with [2{^k} <= n]. *)

val pp_cycles : freq -> Format.formatter -> int -> unit
(** Pretty-print a cycle count as a human-friendly duration. *)
