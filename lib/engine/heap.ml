type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let initial_capacity = 64

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow h =
  match h.size with
  | 0 ->
    (* Array creation is deferred until first insertion because we have
       no dummy ['a] value to pre-fill with. *)
    ()
  | n when n = Array.length h.data ->
    let bigger = Array.make (2 * n) h.data.(0) in
    Array.blit h.data 0 bigger 0 n;
    h.data <- bigger
  | _ -> ()

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && less h.data.(left) h.data.(!smallest) then
    smallest := left;
  if right < h.size && less h.data.(right) h.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~key ~seq value =
  let entry = { key; seq; value } in
  if Array.length h.data = 0 then h.data <- Array.make initial_capacity entry
  else grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = h.data.(0) in
    Some (e.key, e.seq, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.key, top.seq, top.value)
  end

let clear h = h.size <- 0

let fold h ~init ~f =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    acc := f !acc h.data.(i).value
  done;
  !acc
