type 'a entry = { key : int; seq : int; value : 'a }

(* Slots at indices >= size are [None]: [pop] and [clear] null out
   vacated slots so the heap never pins fired closures or values the
   caller has dropped (the old array-of-entries backing kept them
   reachable until overwritten by a later insertion). *)
type 'a t = { mutable data : 'a entry option array; mutable size : int }

let initial_capacity = 64

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let get h i =
  match h.data.(i) with
  | Some e -> e
  | None -> assert false (* i < size by construction *)

let grow h =
  if h.size = Array.length h.data then begin
    let cap = if h.size = 0 then initial_capacity else 2 * h.size in
    let bigger = Array.make cap None in
    Array.blit h.data 0 bigger 0 h.size;
    h.data <- bigger
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get h i) (get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && less (get h left) (get h !smallest) then smallest := left;
  if right < h.size && less (get h right) (get h !smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~key ~seq value =
  grow h;
  h.data.(h.size) <- Some { key; seq; value };
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else
    let e = get h 0 in
    Some (e.key, e.seq, e.value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = get h 0 in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- None;
      sift_down h 0
    end
    else h.data.(0) <- None;
    Some (top.key, top.seq, top.value)
  end

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0

let fold h ~init ~f =
  let acc = ref init in
  for i = 0 to h.size - 1 do
    acc := f !acc (get h i).value
  done;
  !acc
