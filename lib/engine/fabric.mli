(** Conservative windowed coordination of full {!Engine} members —
    the decoupled-VMM execution core.

    Each member is a complete engine (own clock, queue, RNG, trace)
    carrying an independent sub-simulation; the fabric advances all of
    them in lockstep conservative windows on a persistent {!Team} of
    worker domains, flushing deterministic [(time, src, seq)]-ordered
    {!Mailbox}es between windows. Every cross-member interaction must
    go through {!post} at least [lookahead] cycles ahead — members
    never touch each other's state directly — so executed event
    streams depend only on the member partition and message contents,
    never on the worker count. *)

type t

val create : lookahead:int -> Engine.t array -> t
(** Raises [Invalid_argument] on an empty member array or
    [lookahead < 1]. The engines should be freshly built and must
    thereafter only be advanced through {!run}. *)

val members : t -> int
val member : t -> int -> Engine.t
val lookahead : t -> int

val post : t -> src:int -> dst:int -> time:int -> (unit -> unit) -> unit
(** Mail an event from member [src] to member [dst]. The conservative
    contract requires [time >= Engine.now src + lookahead]; violations
    raise [Invalid_argument]. Delivery happens at the next window
    boundary in [(time, src, per-src seq)] order. Call only from an
    event executing on member [src] (the per-src sequence counter is
    unsynchronized by design). *)

val run : ?workers:int -> ?until:int -> ?stop:(unit -> bool) -> t -> unit
(** Advance all members window by window until every queue is empty,
    the next global event lies strictly after [until] (member clocks
    are then clamped to [until]), or [stop ()] holds at a window
    boundary. [stop] is polled between windows only — member events
    set flags during a window and the run ends at the next boundary,
    keeping the stop point a pure function of event times. [workers]
    defaults to [min members (recommended_domain_count ())]; any
    value yields identical member streams. *)

val windows : t -> int
val cross_posts : t -> int
(** Messages delivered through mailboxes so far. *)

val max_window_mail : t -> int
(** Largest single-window delivery batch (mailbox pressure stat). *)

val events_fired : t -> int
(** Total events fired across members. *)

val fingerprint : t -> string
(** Per-member digest (event count, clock, rolling stream hash) plus
    the window count. Equal across runs of the same partition at any
    worker count; the [-j1]-vs-[-jN] oracle string. *)

val digest : t -> int
(** [fingerprint] folded to one int (order-sensitive over members). *)
