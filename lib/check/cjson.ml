(* Cjson moved to lib/registry so the run registry (which lib/check
   must not depend on and vice versa) can share it. This alias keeps
   [Sim_check.Cjson] — and its [Parse_error] identity — intact for
   existing users (Spec, the CLI, the corpus tests). *)
include Sim_registry.Cjson
