open Asman

(* Greedy shrinking in a fixed priority order (shrink the cluster —
   hosts, then trace length — then remove VMs, then shrink workloads,
   then VCPU counts, then drop faults, then halve the horizon): try
   each candidate in order, keep the first that still fails, restart
   from it. Candidate evaluation re-runs the full case, so the budget
   bounds total simulations. *)

let half n = max 1 (n / 2)

(* Strictly-smaller workload rewrites, most aggressive first. The
   benchmark models shrink onto small synthetic equivalents so a
   minimal repro never depends on a benchmark parameter table. *)
let shrink_workload (w : Scenario.workload_desc) : Scenario.workload_desc list =
  match w with
  | Scenario.W_nas _ ->
    [
      Scenario.W_barrier { threads = 2; rounds = 5; compute_us = 200; cv = 0.1 };
      Scenario.W_compute { threads = 2; chunks = 4; chunk_us = 500 };
    ]
  | Scenario.W_speccpu _ ->
    (* stay sustained: a finite rewrite would idle the VM and turn a
       fairness failure into a meaningless one *)
    [ Scenario.W_compute { threads = 2; chunks = 1_000_000; chunk_us = 500 } ]
  | Scenario.W_jbb { warehouses } ->
    (if warehouses > 2 then
       [ Scenario.W_jbb { warehouses = half warehouses } ]
     else [])
    @ [
        Scenario.W_lock_storm
          { threads = 2; rounds = 100_000; cs_us = 2; think_us = 30 };
      ]
  | Scenario.W_compute { threads; chunks; chunk_us } ->
    List.filter_map
      (fun x -> x)
      [
        (if threads > 1 then
           Some (Scenario.W_compute { threads = half threads; chunks; chunk_us })
         else None);
        (if chunks > 1 then
           Some (Scenario.W_compute { threads; chunks = half chunks; chunk_us })
         else None);
      ]
  | Scenario.W_lock_storm { threads; rounds; cs_us; think_us } ->
    List.filter_map
      (fun x -> x)
      [
        (if threads > 2 then
           Some
             (Scenario.W_lock_storm
                { threads = half threads; rounds; cs_us; think_us })
         else None);
        (if rounds > 1 then
           Some
             (Scenario.W_lock_storm
                { threads; rounds = half rounds; cs_us; think_us })
         else None);
      ]
  | Scenario.W_barrier { threads; rounds; compute_us; cv } ->
    List.filter_map
      (fun x -> x)
      [
        (if threads > 2 then
           Some
             (Scenario.W_barrier
                { threads = half threads; rounds; compute_us; cv })
         else None);
        (if rounds > 1 then
           Some
             (Scenario.W_barrier
                { threads; rounds = half rounds; compute_us; cv })
         else None);
      ]
  | Scenario.W_ping_pong { rounds; compute_us } ->
    if rounds > 1 then
      [ Scenario.W_ping_pong { rounds = half rounds; compute_us } ]
    else []
  | Scenario.W_random { threads; ops; nlocks; prog_seed } ->
    List.filter_map
      (fun x -> x)
      [
        (if threads > 1 then
           Some
             (Scenario.W_random { threads = half threads; ops; nlocks; prog_seed })
         else None);
        (if ops > 1 then
           Some
             (Scenario.W_random { threads; ops = half ops; nlocks; prog_seed })
         else None);
        (if nlocks > 1 then
           Some (Scenario.W_random { threads; ops; nlocks = 1; prog_seed })
         else None);
      ]
  (* attack programs are already the minimal semantic unit — only the
     thread count shrinks; rewriting them into benign workloads would
     change the question (is the attack contained?), not the size *)
  | Scenario.W_attack_dodge { threads } ->
    if threads > 1 then [ Scenario.W_attack_dodge { threads = half threads } ]
    else []
  | Scenario.W_attack_steal { threads } ->
    if threads > 1 then [ Scenario.W_attack_steal { threads = half threads } ]
    else []
  | Scenario.W_attack_launder { threads; phased } ->
    if threads > 1 then
      [ Scenario.W_attack_launder { threads = half threads; phased } ]
    else []

let replace_nth l n x = List.mapi (fun i v -> if i = n then x else v) l

let candidates (spec : Spec.t) : Spec.t list =
  let vms = spec.Spec.vms in
  (* 0. shrink the datacenter: fewer hosts first (a conservation bug
     on two hosts beats one on four), then a shorter trace — halving
     before decrementing. The per-entry trace streams make a shorter
     trace an exact prefix, so survivors keep their arrival times. *)
  let shrink_cluster =
    match spec.Spec.cluster with
    | None -> []
    | Some c ->
      (if c.Spec.cl_hosts > 1 then
         [
           {
             spec with
             Spec.cluster = Some { c with Spec.cl_hosts = c.Spec.cl_hosts - 1 };
           };
         ]
       else [])
      @ (if c.Spec.cl_vms > 1 then
           [
             {
               spec with
               Spec.cluster = Some { c with Spec.cl_vms = half c.Spec.cl_vms };
             };
             {
               spec with
               Spec.cluster = Some { c with Spec.cl_vms = c.Spec.cl_vms - 1 };
             };
           ]
         else [])
  in
  (* 1. drop whole VMs *)
  let drop_vm =
    if List.length vms > 1 then
      List.mapi
        (fun i _ ->
          { spec with Spec.vms = List.filteri (fun j _ -> j <> i) vms })
        vms
    else []
  in
  (* 2. shrink workloads — except on fairness and entitlement shapes,
     whose oracles are only sound under the generator-certified
     sustained-demand workloads; rewriting the workload there changes
     the question, not just the size *)
  let shrink_wl =
    if spec.Spec.check_fairness || spec.Spec.check_entitlement then []
    else
      List.concat
      (List.mapi
         (fun i (vm : Spec.vm) ->
           match vm.Spec.v_workload with
           | None -> []
           | Some w ->
             List.map
               (fun w' ->
                 {
                   spec with
                   Spec.vms =
                     replace_nth vms i { vm with Spec.v_workload = Some w' };
                 })
               (shrink_workload w))
         vms)
  in
  (* 3. shrink VCPU counts — victim VCPU counts carry the entitlement
     shape's saturation certificate (demand must exceed capacity, or
     work-conserving slack reads as theft), so they are pinned there *)
  let shrink_vcpus =
    if spec.Spec.check_entitlement then []
    else
      List.concat
      (List.mapi
         (fun i (vm : Spec.vm) ->
           if vm.Spec.v_vcpus > 1 then
             [
               {
                 spec with
                 Spec.vms =
                   replace_nth vms i
                     { vm with Spec.v_vcpus = half vm.Spec.v_vcpus };
               };
             ]
           else [])
         vms)
  in
  (* 4. drop the fault profile *)
  let drop_faults =
    if spec.Spec.faults <> "none" then [ { spec with Spec.faults = "none" } ]
    else []
  in
  (* 4b. disarm the sharding ledger — outcome-invariant by contract,
     so a failure surviving this candidate is not a sharding bug *)
  let drop_sim_jobs =
    if spec.Spec.sim_jobs > 1 then [ { spec with Spec.sim_jobs = 1 } ] else []
  in
  (* 5. halve the horizon *)
  let shrink_horizon =
    if spec.Spec.horizon_sec > 0.05 then
      [ { spec with Spec.horizon_sec = Float.max 0.05 (spec.Spec.horizon_sec /. 2.) } ]
    else []
  in
  shrink_cluster @ drop_vm @ shrink_wl @ shrink_vcpus @ drop_faults
  @ drop_sim_jobs @ shrink_horizon

let minimize ?(budget = 200) ~(fails : Spec.t -> Oracle.failure list) spec
    ~initial_failures =
  (* Only candidates reproducing the *same* oracle's failure count:
     accepting any failure would let the search drift onto an
     unrelated (often spec-degeneracy-induced) bug and "minimize"
     that instead. *)
  let target_oracle =
    match initial_failures with
    | { Oracle.oracle; _ } :: _ -> oracle
    | [] -> invalid_arg "Shrink.minimize: initial_failures is empty"
  in
  let same_bug fs =
    List.exists (fun f -> f.Oracle.oracle = target_oracle) fs
  in
  let runs = ref 0 in
  let rec go current current_failures =
    if !runs >= budget then (current, current_failures)
    else begin
      let rec try_candidates = function
        | [] -> None
        | c :: rest ->
          if !runs >= budget then None
          else begin
            incr runs;
            match fails c with
            | fs when same_bug fs -> Some (c, fs)
            | _ -> try_candidates rest
          end
      in
      match try_candidates (candidates current) with
      | Some (c, fs) -> go c fs
      | None -> (current, current_failures)
    end
  in
  go spec initial_failures
