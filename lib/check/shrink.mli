(** Greedy spec shrinker.

    Shrink order (most structural first): remove whole VMs, shrink
    workloads (thread counts, op counts, benchmarks onto small
    synthetic equivalents), shrink VCPU counts, drop the fault
    profile, halve the horizon (floored at 50 ms). Each candidate is
    judged by re-running the full case; the first still-failing
    candidate becomes the new current spec and the search restarts
    from it. *)

val candidates : Spec.t -> Spec.t list
(** Strictly-smaller rewrites of the spec, in shrink-priority order. *)

val minimize :
  ?budget:int ->
  fails:(Spec.t -> Oracle.failure list) ->
  Spec.t ->
  initial_failures:Oracle.failure list ->
  Spec.t * Oracle.failure list
(** [minimize ~fails spec ~initial_failures] greedily shrinks a spec
    known to fail with [initial_failures]. [budget] (default 200)
    bounds the number of [fails] evaluations. Returns the smallest
    still-failing spec reached and its failures. *)
