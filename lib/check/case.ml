open Asman
module Trace = Sim_obs.Trace
module Engine = Sim_engine.Engine

(* The trace categories the oracles read. Spin/Ipi/Fault are excluded
   to bound ring volume on contention-heavy cases (oracles needing a
   complete record skip themselves when the ring overflowed). *)
let trace_mask =
  List.fold_left
    (fun m c -> m lor Trace.cat_bit c)
    0
    [ Trace.Sched; Trace.Credit; Trace.Vcrd; Trace.Gang; Trace.Invariant ]

let trace_cap = 1 lsl 17

let probe_every_sec = 0.005
let max_probe_errors = 5

let config_of_spec ?queue ?sim_jobs (spec : Spec.t) =
  let queue = Option.value queue ~default:(Spec.queue_kind spec) in
  {
    Config.default with
    Config.seed = spec.Spec.seed;
    topology =
      Sim_hw.Topology.make ~sockets:spec.Spec.sockets
        ~cores_per_socket:spec.Spec.cores_per_socket;
    scale = spec.Spec.scale;
    work_conserving = spec.Spec.work_conserving;
    faults = Spec.fault_profile spec;
    accounting = Spec.accounting_mode spec;
    invariants = Sim_vmm.Vmm.Record;
    engine_queue = Some queue;
    sim_jobs = Option.value sim_jobs ~default:spec.Spec.sim_jobs;
    obs =
      {
        Config.trace_mask;
        trace_cap;
        metrics = false;
        profile = None;
        (* thousands of scenarios per fuzz run: stay out of the
           global export hub *)
        hub = false;
      };
  }

type fingerprint = {
  fp_now : int;
  fp_events : int;
  fp_ctx_switches : int;
  fp_ipis : int;
  fp_vms : (string * int * int * int) list;
      (** (name, marks, rounds, vcrd transitions) in VM order *)
}

let fingerprint_to_string fp =
  Printf.sprintf "now=%d events=%d ctx=%d ipis=%d vms=[%s]" fp.fp_now
    fp.fp_events fp.fp_ctx_switches fp.fp_ipis
    (String.concat "; "
       (List.map
          (fun (n, m, r, v) -> Printf.sprintf "%s:%d/%d/%d" n m r v)
          fp.fp_vms))

let run_once ?queue ?sim_jobs (spec : Spec.t) =
  let config = config_of_spec ?queue ?sim_jobs spec in
  let s =
    Scenario.of_descs config ~sched:(Spec.sched_kind spec) (Spec.vm_descs spec)
  in
  let probe_errors = ref [] in
  let probe =
    ( probe_every_sec,
      fun (sc : Scenario.t) ->
        if List.length !probe_errors < max_probe_errors then
          match Sim_vmm.Vmm.check_invariants sc.Scenario.vmm with
          | Ok () -> ()
          | Error e -> probe_errors := e :: !probe_errors )
  in
  let started = Engine.now s.Scenario.engine in
  let m = Runner.run_window ~probe s ~sec:spec.Spec.horizon_sec in
  let finished = Engine.now s.Scenario.engine in
  let tr = Engine.trace s.Scenario.engine in
  let vmm = s.Scenario.vmm in
  let vms =
    List.map
      (fun (inst : Scenario.vm_instance) ->
        let dom = inst.Scenario.domain in
        let name = inst.Scenario.spec.Scenario.vm_name in
        let vm = Runner.vm_metrics m ~vm:name in
        {
          Oracle.o_name = name;
          o_domain = dom.Sim_vmm.Domain.id;
          o_vcpus =
            Array.map
              (fun (v : Sim_vmm.Vcpu.t) -> v.Sim_vmm.Vcpu.id)
              dom.Sim_vmm.Domain.vcpus;
          o_weight = dom.Sim_vmm.Domain.weight;
          o_concurrent = dom.Sim_vmm.Domain.concurrent_type;
          o_final_credits =
            Array.map
              (fun (v : Sim_vmm.Vcpu.t) -> v.Sim_vmm.Vcpu.credit)
              dom.Sim_vmm.Domain.vcpus;
          o_online_rate = vm.Runner.online_rate;
          o_expected_online = vm.Runner.expected_online;
          o_attacker =
            (match inst.Scenario.spec.Scenario.workload with
            | Some w -> Sim_workloads.Attack.is_attack w
            | None -> false);
        })
      s.Scenario.vms
  in
  let input =
    {
      Oracle.pcpus = Config.pcpus config;
      slot_cycles = Sim_hw.Cpu_model.slot_cycles config.Config.cpu;
      slots_per_period = config.Config.cpu.Sim_hw.Cpu_model.slots_per_period;
      credit_unit = config.Config.credit_unit;
      work_conserving = spec.Spec.work_conserving;
      clean = Sim_faults.Fault.is_none config.Config.faults;
      sched = spec.Spec.sched;
      check_fairness = spec.Spec.check_fairness;
      accounting = spec.Spec.accounting;
      check_entitlement = spec.Spec.check_entitlement;
      started;
      finished;
      entries = Trace.entries tr;
      trace_dropped = Trace.dropped tr;
      dom0 = s.Scenario.dom0.Sim_vmm.Domain.id;
      dom0_vcpus =
        Array.map
          (fun (v : Sim_vmm.Vcpu.t) -> v.Sim_vmm.Vcpu.id)
          s.Scenario.dom0.Sim_vmm.Domain.vcpus;
      vms;
      runtime_violations = Sim_vmm.Vmm.invariant_violation_count vmm;
      runtime_messages = Sim_vmm.Vmm.invariant_violations vmm;
      structural = Sim_vmm.Vmm.check_invariants vmm;
      probe_errors = List.rev !probe_errors;
    }
  in
  let fp =
    {
      fp_now = finished;
      fp_events = Engine.events_fired s.Scenario.engine;
      fp_ctx_switches = Sim_vmm.Vmm.ctx_switches vmm;
      fp_ipis = Sim_hw.Machine.ipis_sent s.Scenario.machine;
      fp_vms =
        List.map
          (fun (inst : Scenario.vm_instance) ->
            let name = inst.Scenario.spec.Scenario.vm_name in
            let vm = Runner.vm_metrics m ~vm:name in
            (name, vm.Runner.marks, vm.Runner.rounds, vm.Runner.vcrd_transitions))
          s.Scenario.vms;
    }
  in
  (fp, Oracle.run_all input)

let flip = function
  | Sim_engine.Engine.Wheel_queue -> Sim_engine.Engine.Heap_queue
  | Sim_engine.Engine.Heap_queue -> Sim_engine.Engine.Wheel_queue

(* ----- decoupled cases ----- *)

(* A modest round target: enough simulated work for cross-shard
   steals to happen, bounded by the spec's horizon either way. *)
let decouple_rounds = 2

let run_decoupled_once ~workers (spec : Spec.t) =
  let config = { (config_of_spec spec) with Config.decouple = true } in
  let vms =
    List.map
      (fun (d : Scenario.vm_desc) ->
        {
          Scenario.vm_name = d.Scenario.vd_name;
          weight = d.Scenario.vd_weight;
          vcpus = d.Scenario.vd_vcpus;
          workload =
            Option.map (Scenario.workload_of_desc config) d.Scenario.vd_workload;
        })
      (Spec.vm_descs spec)
  in
  let d = Decouple.build config ~sched:(Spec.sched_kind spec) ~vms in
  let r =
    Decouple.run ~workers d ~rounds:decouple_rounds
      ~max_sec:spec.Spec.horizon_sec
  in
  (r.Decouple.rp_digest, r.Decouple.rp_events, r.Decouple.rp_fingerprint)

(* A decoupled case's contract is worker-count invariance: the same
   scenario run on one worker and on two must produce byte-identical
   fabric digests. The coupled trace oracles don't apply — each
   sub-host runs dark (no trace), and the interesting state (steals,
   relocations) lives in the fabric, which the digest covers. *)
let run_decoupled (spec : Spec.t) : Oracle.failure list =
  match run_decoupled_once ~workers:1 spec with
  | exception e ->
    [ { Oracle.oracle = "no-crash"; message = Printexc.to_string e } ]
  | d1, ev1, fp1 -> (
    match run_decoupled_once ~workers:2 spec with
    | exception e ->
      [
        {
          Oracle.oracle = "decouple-workers";
          message =
            Printf.sprintf "rerun with 2 workers crashed: %s"
              (Printexc.to_string e);
        };
      ]
    | d2, ev2, fp2 ->
      if d1 = d2 && ev1 = ev2 then []
      else
        [
          {
            Oracle.oracle = "decouple-workers";
            message =
              Printf.sprintf
                "1-vs-2 worker divergence: digest %x/%x events %d/%d\n\
                 w1: %s\nw2: %s" d1 d2 ev1 ev2 fp1 fp2;
          };
        ])

(* ----- cluster cases ----- *)

let run_cluster_once ~workers (spec : Spec.t) =
  let config = config_of_spec spec in
  let c = Option.get spec.Spec.cluster in
  let trace =
    Sim_cluster.Vtrace.generate
      ~max_vcpus:(Config.pcpus config)
      ~seed:c.Spec.cl_trace_seed ~vms:c.Spec.cl_vms
      ~dist:(Spec.cluster_dist spec) ~horizon_sec:spec.Spec.horizon_sec ()
  in
  let t =
    Sim_cluster.Cluster.build config ~sched:(Spec.sched_kind spec)
      ~policy:(Spec.cluster_policy spec) ~hosts:c.Spec.cl_hosts ~trace
  in
  let r = Sim_cluster.Cluster.run ~workers t ~horizon_sec:spec.Spec.horizon_sec in
  (r, Sim_cluster.Cluster.conservation_errors t)

(* A cluster case's contract is twofold: the conservation oracle (no
   VM lost, duplicated or double-booked; capacity and departures
   consistent) on the single-worker run, then placement determinism —
   the same datacenter on two fabric workers must produce the
   identical placement log and digest. *)
let run_cluster (spec : Spec.t) : Oracle.failure list =
  match run_cluster_once ~workers:1 spec with
  | exception e ->
    [ { Oracle.oracle = "no-crash"; message = Printexc.to_string e } ]
  | r1, errs1 -> (
    if errs1 <> [] then
      [
        {
          Oracle.oracle = "cluster-conservation";
          message = String.concat "; " errs1;
        };
      ]
    else
      match run_cluster_once ~workers:2 spec with
      | exception e ->
        [
          {
            Oracle.oracle = "placement-determinism";
            message =
              Printf.sprintf "rerun with 2 workers crashed: %s"
                (Printexc.to_string e);
          };
        ]
      | r2, _ ->
        if
          r1.Sim_cluster.Cluster.cr_digest = r2.Sim_cluster.Cluster.cr_digest
          && r1.Sim_cluster.Cluster.cr_log = r2.Sim_cluster.Cluster.cr_log
        then []
        else
          [
            {
              Oracle.oracle = "placement-determinism";
              message =
                Printf.sprintf
                  "1-vs-2 worker divergence: digest %x/%x log %d/%d entries\n\
                   w1: %s\nw2: %s"
                  r1.Sim_cluster.Cluster.cr_digest
                  r2.Sim_cluster.Cluster.cr_digest
                  (List.length r1.Sim_cluster.Cluster.cr_log)
                  (List.length r2.Sim_cluster.Cluster.cr_log)
                  r1.Sim_cluster.Cluster.cr_fingerprint
                  r2.Sim_cluster.Cluster.cr_fingerprint;
            };
          ])

let run (spec : Spec.t) : Oracle.failure list =
  match Spec.validate spec with
  | Error e -> [ { Oracle.oracle = "spec"; message = e } ]
  | Ok () when spec.Spec.cluster <> None -> run_cluster spec
  | Ok () when spec.Spec.decouple -> run_decoupled spec
  | Ok () -> (
    match run_once spec with
    | exception e ->
      [ { Oracle.oracle = "no-crash"; message = Printexc.to_string e } ]
    | _, (_ :: _ as failures) -> failures
    | fp, [] -> (
      (* Primary run clean: the determinism oracle reruns the exact
         case on the other queue backend and diffs observable
         outcomes. (Per-case isolation — own engine, own registry —
         is what makes [-j 1] vs [-j 4] equality hold by
         construction; the backend flip is the part that needs an
         actual rerun.) *)
      match run_once ~queue:(flip (Spec.queue_kind spec)) spec with
      | exception e ->
        [
          {
            Oracle.oracle = "determinism";
            message =
              Printf.sprintf "rerun on flipped queue backend crashed: %s"
                (Printexc.to_string e);
          };
        ]
      | fp', _ when fp <> fp' ->
        [
          {
            Oracle.oracle = "determinism";
            message =
              Printf.sprintf "wheel/heap divergence: %s vs %s"
                (fingerprint_to_string fp)
                (fingerprint_to_string fp');
          };
        ]
      | _ -> (
        (* Backend flip clean: the sim-jobs oracle reruns with the
           sharding ledger flipped (armed cases rerun unarmed and vice
           versa) — scheduler-visible outcomes must be byte-identical,
           the -j1-vs-jN contract. *)
        let sim_jobs' = if spec.Spec.sim_jobs > 1 then 1 else 4 in
        match run_once ~sim_jobs:sim_jobs' spec with
        | exception e ->
          [
            {
              Oracle.oracle = "sim-jobs";
              message =
                Printf.sprintf "rerun with --sim-jobs %d crashed: %s" sim_jobs'
                  (Printexc.to_string e);
            };
          ]
        | fp'', _ ->
          if fp = fp'' then []
          else
            [
              {
                Oracle.oracle = "sim-jobs";
                message =
                  Printf.sprintf "--sim-jobs %d vs %d divergence: %s vs %s"
                    spec.Spec.sim_jobs sim_jobs' (fingerprint_to_string fp)
                    (fingerprint_to_string fp'');
              };
            ])))
