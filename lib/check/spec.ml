open Asman

type vm = {
  v_name : string;
  v_weight : int;
  v_vcpus : int;
  v_workload : Scenario.workload_desc option;
}

type provenance = {
  pv_record : string option;
      (** run-registry record id of the check run that found it *)
  pv_seed : int64;  (** the case seed that generated the failing spec *)
}

type cluster = {
  cl_hosts : int;
  cl_trace_seed : int64;  (** seeds {!Sim_cluster.Vtrace.generate} *)
  cl_policy : string;  (** placement policy name *)
  cl_dist : string;  (** lifetime distribution name *)
  cl_vms : int;  (** trace length *)
}

type t = {
  seed : int64;  (** the scenario engine's seed *)
  sched : string;
  scale : float;
  work_conserving : bool;
  faults : string;  (** profile name, ["none"] for clean runs *)
  queue : string;  (** ["wheel"] or ["heap"] *)
  sim_jobs : int;  (** --sim-jobs shard count; 1 = ledger unarmed *)
  decouple : bool;
      (** run the scenario as [sim_jobs] decoupled sub-hosts on the
          PDES fabric; judged by the worker-invariance oracle instead
          of the coupled trace oracles *)
  sockets : int;
  cores_per_socket : int;
  horizon_sec : float;
  check_fairness : bool;
      (** generator-certified fairness shape: capped mode, restarting
          CPU-bound workloads, distinct weights — the only shape where
          the proportionality oracle's Eq. (2) prediction is exact *)
  accounting : string;  (** ["precise"] (default) or ["sampled"] *)
  check_entitlement : bool;
      (** generator-certified attack shape: attacker VMs (recognisable
          from their workload descriptors) plus sustained CPU-bound
          victims — the only shape where the entitlement oracle's
          attacker-vs-victim comparison is sound *)
  vms : vm list;
  cluster : cluster option;
      (** [Some _]: the case is a whole simulated datacenter — hosts
          on the PDES fabric driven by a seeded arrival/departure
          trace — judged by the cluster-conservation and
          placement-determinism oracles instead of the coupled trace
          oracles. [None] (the default when absent from older corpus
          JSON) keeps the single-host path. *)
  provenance : provenance option;
      (** corpus bookkeeping, not an input: which check run and case
          seed produced this spec. [None] on freshly generated cases;
          stamped onto shrunk repros by {!Check.write_repros}. *)
}

let pcpus t = t.sockets * t.cores_per_socket

(* ----- JSON ----- *)

let workload_to_json (w : Scenario.workload_desc) =
  let o kind fields = Cjson.Obj (("kind", Cjson.String kind) :: fields) in
  let i n v = (n, Cjson.Int v) in
  match w with
  | Scenario.W_nas name -> o "nas" [ ("bench", Cjson.String name) ]
  | Scenario.W_speccpu name -> o "speccpu" [ ("bench", Cjson.String name) ]
  | Scenario.W_jbb { warehouses } -> o "jbb" [ i "warehouses" warehouses ]
  | Scenario.W_compute { threads; chunks; chunk_us } ->
    o "compute" [ i "threads" threads; i "chunks" chunks; i "chunk_us" chunk_us ]
  | Scenario.W_lock_storm { threads; rounds; cs_us; think_us } ->
    o "lock_storm"
      [ i "threads" threads; i "rounds" rounds; i "cs_us" cs_us;
        i "think_us" think_us ]
  | Scenario.W_barrier { threads; rounds; compute_us; cv } ->
    o "barrier"
      [ i "threads" threads; i "rounds" rounds; i "compute_us" compute_us;
        ("cv", Cjson.Float cv) ]
  | Scenario.W_ping_pong { rounds; compute_us } ->
    o "ping_pong" [ i "rounds" rounds; i "compute_us" compute_us ]
  | Scenario.W_random { threads; ops; nlocks; prog_seed } ->
    o "random"
      [ i "threads" threads; i "ops" ops; i "nlocks" nlocks;
        i "prog_seed" prog_seed ]
  | Scenario.W_attack_dodge { threads } -> o "attack_dodge" [ i "threads" threads ]
  | Scenario.W_attack_steal { threads } -> o "attack_steal" [ i "threads" threads ]
  | Scenario.W_attack_launder { threads; phased } ->
    o "attack_launder" [ i "threads" threads; ("phased", Cjson.Bool phased) ]

let workload_of_json j : Scenario.workload_desc =
  let geti n = Cjson.get n j ~of_:Cjson.to_int in
  match Cjson.get "kind" j ~of_:Cjson.to_string_v with
  | "nas" -> Scenario.W_nas (Cjson.get "bench" j ~of_:Cjson.to_string_v)
  | "speccpu" -> Scenario.W_speccpu (Cjson.get "bench" j ~of_:Cjson.to_string_v)
  | "jbb" -> Scenario.W_jbb { warehouses = geti "warehouses" }
  | "compute" ->
    Scenario.W_compute
      { threads = geti "threads"; chunks = geti "chunks";
        chunk_us = geti "chunk_us" }
  | "lock_storm" ->
    Scenario.W_lock_storm
      { threads = geti "threads"; rounds = geti "rounds"; cs_us = geti "cs_us";
        think_us = geti "think_us" }
  | "barrier" ->
    Scenario.W_barrier
      { threads = geti "threads"; rounds = geti "rounds";
        compute_us = geti "compute_us";
        cv = Cjson.get "cv" j ~of_:Cjson.to_float }
  | "ping_pong" ->
    Scenario.W_ping_pong
      { rounds = geti "rounds"; compute_us = geti "compute_us" }
  | "random" ->
    Scenario.W_random
      { threads = geti "threads"; ops = geti "ops"; nlocks = geti "nlocks";
        prog_seed = geti "prog_seed" }
  | "attack_dodge" -> Scenario.W_attack_dodge { threads = geti "threads" }
  | "attack_steal" -> Scenario.W_attack_steal { threads = geti "threads" }
  | "attack_launder" ->
    Scenario.W_attack_launder
      { threads = geti "threads";
        phased = Cjson.get "phased" j ~of_:Cjson.to_bool }
  | k -> raise (Cjson.Parse_error (Printf.sprintf "unknown workload kind %S" k))

let vm_to_json v =
  Cjson.Obj
    [
      ("name", Cjson.String v.v_name);
      ("weight", Cjson.Int v.v_weight);
      ("vcpus", Cjson.Int v.v_vcpus);
      ( "workload",
        match v.v_workload with
        | None -> Cjson.Null
        | Some w -> workload_to_json w );
    ]

let vm_of_json j =
  {
    v_name = Cjson.get "name" j ~of_:Cjson.to_string_v;
    v_weight = Cjson.get "weight" j ~of_:Cjson.to_int;
    v_vcpus = Cjson.get "vcpus" j ~of_:Cjson.to_int;
    v_workload =
      (match Cjson.member "workload" j with
      | None | Some Cjson.Null -> None
      | Some w -> Some (workload_of_json w));
  }

let to_json t =
  Cjson.Obj
    ([
      (* int64 seeds exceed JSON's exact-integer range: as a string *)
      ("seed", Cjson.String (Int64.to_string t.seed));
      ("sched", Cjson.String t.sched);
      ("scale", Cjson.Float t.scale);
      ("work_conserving", Cjson.Bool t.work_conserving);
      ("faults", Cjson.String t.faults);
      ("queue", Cjson.String t.queue);
      ("sim_jobs", Cjson.Int t.sim_jobs);
      ("decouple", Cjson.Bool t.decouple);
      ("sockets", Cjson.Int t.sockets);
      ("cores_per_socket", Cjson.Int t.cores_per_socket);
      ("horizon_sec", Cjson.Float t.horizon_sec);
      ("check_fairness", Cjson.Bool t.check_fairness);
      ("accounting", Cjson.String t.accounting);
      ("check_entitlement", Cjson.Bool t.check_entitlement);
      ("vms", Cjson.List (List.map vm_to_json t.vms));
    ]
    @
    (* absent for single-host specs: pre-cluster corpus files and
       their diffs stay untouched *)
    (match t.cluster with
    | None -> []
    | Some c ->
      [
        ( "cluster",
          Cjson.Obj
            [
              ("hosts", Cjson.Int c.cl_hosts);
              (* int64, same exact-range concern as the spec seed *)
              ("trace_seed", Cjson.String (Int64.to_string c.cl_trace_seed));
              ("policy", Cjson.String c.cl_policy);
              ("dist", Cjson.String c.cl_dist);
              ("vms", Cjson.Int c.cl_vms);
            ] );
      ])
    @
    (* provenance is bookkeeping: absent keys keep pre-provenance
       corpus files and their diffs untouched *)
    (match t.provenance with
    | None -> []
    | Some p ->
      [ ("found_seed", Cjson.String (Int64.to_string p.pv_seed)) ]
      @ (match p.pv_record with
        | None -> []
        | Some id -> [ ("found_record", Cjson.String id) ])))

let of_json j =
  {
    seed =
      (let s = Cjson.get "seed" j ~of_:Cjson.to_string_v in
       match Int64.of_string_opt s with
       | Some v -> v
       | None -> raise (Cjson.Parse_error (Printf.sprintf "bad seed %S" s)));
    sched = Cjson.get "sched" j ~of_:Cjson.to_string_v;
    scale = Cjson.get "scale" j ~of_:Cjson.to_float;
    work_conserving = Cjson.get "work_conserving" j ~of_:Cjson.to_bool;
    faults = Cjson.get "faults" j ~of_:Cjson.to_string_v;
    queue = Cjson.get "queue" j ~of_:Cjson.to_string_v;
    (* absent in pre-sim-jobs corpus files: default to the unarmed
       ledger so the committed corpus replays unchanged *)
    sim_jobs =
      (match Cjson.member "sim_jobs" j with
      | None -> 1
      | Some v -> Cjson.to_int v);
    (* absent in pre-decouple corpus files: coupled, as before *)
    decouple =
      (match Cjson.member "decouple" j with
      | None -> false
      | Some v -> Cjson.to_bool v);
    sockets = Cjson.get "sockets" j ~of_:Cjson.to_int;
    cores_per_socket = Cjson.get "cores_per_socket" j ~of_:Cjson.to_int;
    horizon_sec = Cjson.get "horizon_sec" j ~of_:Cjson.to_float;
    check_fairness = Cjson.get "check_fairness" j ~of_:Cjson.to_bool;
    (* both absent in pre-accounting corpus files: precise accounting,
       oracle ungated — the committed corpus replays unchanged *)
    accounting =
      (match Cjson.member "accounting" j with
      | None -> "precise"
      | Some v -> Cjson.to_string_v v);
    check_entitlement =
      (match Cjson.member "check_entitlement" j with
      | None -> false
      | Some v -> Cjson.to_bool v);
    vms = Cjson.get "vms" j ~of_:(fun v -> List.map vm_of_json (Cjson.to_list v));
    (* absent in pre-cluster corpus files: single-host, as before *)
    cluster =
      (match Cjson.member "cluster" j with
      | None | Some Cjson.Null -> None
      | Some c ->
        let s = Cjson.get "trace_seed" c ~of_:Cjson.to_string_v in
        let cl_trace_seed =
          match Int64.of_string_opt s with
          | Some v -> v
          | None ->
            raise (Cjson.Parse_error (Printf.sprintf "bad trace_seed %S" s))
        in
        Some
          {
            cl_hosts = Cjson.get "hosts" c ~of_:Cjson.to_int;
            cl_trace_seed;
            cl_policy = Cjson.get "policy" c ~of_:Cjson.to_string_v;
            cl_dist = Cjson.get "dist" c ~of_:Cjson.to_string_v;
            cl_vms = Cjson.get "vms" c ~of_:Cjson.to_int;
          });
    provenance =
      (match Cjson.member "found_seed" j with
      | None -> None
      | Some v ->
        let s = Cjson.to_string_v v in
        let pv_seed =
          match Int64.of_string_opt s with
          | Some sv -> sv
          | None ->
            raise (Cjson.Parse_error (Printf.sprintf "bad found_seed %S" s))
        in
        Some
          {
            pv_seed;
            pv_record =
              (match Cjson.member "found_record" j with
              | None | Some Cjson.Null -> None
              | Some r -> Some (Cjson.to_string_v r));
          });
  }

let to_string t = Cjson.to_string ~indent:true (to_json t)
let of_string s = of_json (Cjson.of_string s)

let load file =
  let ic = open_in_bin file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s

let save t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* ----- validation / realisation ----- *)

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if t.sockets <= 0 || t.cores_per_socket <= 0 then err "empty topology"
  else if t.horizon_sec <= 0. then err "non-positive horizon"
  else if t.scale <= 0. then err "non-positive scale"
  else if t.vms = [] && t.cluster = None then err "no VMs"
  else if Config.sched_of_name t.sched = None then
    err "unknown scheduler %S" t.sched
  else if Sim_faults.Fault.of_name t.faults = None then
    err "unknown fault profile %S" t.faults
  else if t.queue <> "wheel" && t.queue <> "heap" then
    err "unknown queue backend %S" t.queue
  else if t.sim_jobs < 1 then err "non-positive sim_jobs"
  else if Sim_vmm.Vmm.accounting_of_name t.accounting = None then
    err "unknown accounting discipline %S" t.accounting
  else if
    List.exists (fun v -> v.v_weight <= 0 || v.v_vcpus <= 0) t.vms
  then err "non-positive VM weight or vcpus"
  else
    match t.cluster with
    | Some c ->
      (* mirror Cluster.build / Vtrace.generate's preconditions so a
         cluster case (or a shrink candidate derived from one) fails
         validation instead of crashing the builder *)
      if t.decouple then err "cluster excludes decouple"
      else if t.faults <> "none" then err "cluster excludes fault injection"
      else if t.vms <> [] then
        err "cluster cases draw their VMs from the trace, not [vms]"
      else if c.cl_hosts < 1 then err "cluster needs at least one host"
      else if c.cl_vms < 1 then err "empty cluster trace"
      else if Sim_cluster.Placement.policy_of_name c.cl_policy = None then
        err "unknown placement policy %S" c.cl_policy
      else if Sim_cluster.Vtrace.dist_of_name c.cl_dist = None then
        err "unknown lifetime distribution %S" c.cl_dist
      else Ok ()
    | None ->
      if t.decouple then
    (* mirror Decouple.build's preconditions so a decoupled case (or a
       shrink candidate derived from one) fails validation instead of
       crashing the builder *)
    if t.sim_jobs < 2 then err "decouple needs sim_jobs >= 2"
    else if t.faults <> "none" then err "decouple excludes fault injection"
    else if t.sockets mod t.sim_jobs <> 0 then
      err "%d sockets cannot split into %d shards" t.sockets t.sim_jobs
    else if List.length t.vms < t.sim_jobs then
      err "decouple needs at least one VM per shard"
    else if List.for_all (fun v -> v.v_workload = None) t.vms then
      err "decouple needs a workload VM"
    else Ok ()
  else Ok ()

let sched_kind t =
  match Config.sched_of_name t.sched with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Spec.sched_kind: %S" t.sched)

let queue_kind t =
  match t.queue with
  | "heap" -> Sim_engine.Engine.Heap_queue
  | _ -> Sim_engine.Engine.Wheel_queue

let fault_profile t =
  match Sim_faults.Fault.of_name t.faults with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Spec.fault_profile: %S" t.faults)

let accounting_mode t =
  match Sim_vmm.Vmm.accounting_of_name t.accounting with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Spec.accounting_mode: %S" t.accounting)

let cluster_policy t =
  match t.cluster with
  | Some c -> (
    match Sim_cluster.Placement.policy_of_name c.cl_policy with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Spec.cluster_policy: %S" c.cl_policy))
  | None -> invalid_arg "Spec.cluster_policy: not a cluster spec"

let cluster_dist t =
  match t.cluster with
  | Some c -> (
    match Sim_cluster.Vtrace.dist_of_name c.cl_dist with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Spec.cluster_dist: %S" c.cl_dist))
  | None -> invalid_arg "Spec.cluster_dist: not a cluster spec"

let is_attack_vm v =
  match v.v_workload with
  | Some (Scenario.W_attack_dodge _)
  | Some (Scenario.W_attack_steal _)
  | Some (Scenario.W_attack_launder _) ->
    true
  | Some _ | None -> false

let vm_descs t =
  List.map
    (fun v ->
      {
        Scenario.vd_name = v.v_name;
        vd_weight = v.v_weight;
        vd_vcpus = v.v_vcpus;
        vd_workload = v.v_workload;
      })
    t.vms
