open Asman
module Rng = Sim_engine.Rng

(* Every draw comes from one splitmix64 stream seeded by the case
   seed, so a case is reproducible from the seed alone and shrunk
   specs can be serialized without re-running the generator. *)

let weights = [| 128; 256; 512; 1024 |]

let nas_names = [| "BT"; "CG"; "EP"; "FT"; "MG"; "SP"; "LU" |]

(* Finite workloads: every thread's program terminates (restart =
   false throughout), so [Runner.run_rounds ~rounds:1] completes.
   Shared with test_properties, which needs termination. Covers
   locks (storm, random programs), barriers and semaphores. *)
let finite_workload rng : Scenario.workload_desc =
  match Rng.int rng 5 with
  | 0 ->
    Scenario.W_compute
      {
        threads = Rng.int_in rng ~lo:1 ~hi:4;
        chunks = Rng.int_in rng ~lo:2 ~hi:8;
        chunk_us = Rng.int_in rng ~lo:100 ~hi:2000;
      }
  | 1 ->
    Scenario.W_lock_storm
      {
        threads = Rng.int_in rng ~lo:2 ~hi:4;
        rounds = Rng.int_in rng ~lo:5 ~hi:40;
        cs_us = Rng.int_in rng ~lo:2 ~hi:30;
        think_us = Rng.int_in rng ~lo:5 ~hi:100;
      }
  | 2 ->
    Scenario.W_barrier
      {
        threads = Rng.int_in rng ~lo:2 ~hi:4;
        rounds = Rng.int_in rng ~lo:3 ~hi:20;
        compute_us = Rng.int_in rng ~lo:50 ~hi:1000;
        cv = float_of_int (Rng.int rng 40) /. 100.;
      }
  | 3 ->
    Scenario.W_ping_pong
      {
        rounds = Rng.int_in rng ~lo:5 ~hi:50;
        compute_us = Rng.int_in rng ~lo:10 ~hi:200;
      }
  | _ ->
    Scenario.W_random
      {
        threads = Rng.int_in rng ~lo:1 ~hi:4;
        ops = Rng.int_in rng ~lo:5 ~hi:60;
        nlocks = Rng.int_in rng ~lo:1 ~hi:4;
        prog_seed = Rng.int rng 1_000_000;
      }

(* Sustained workloads keep demand up through the whole window
   (restarting or long-running); used where the window must stay
   busy. *)
let sustained_workload rng : Scenario.workload_desc =
  match Rng.int rng 4 with
  | 0 -> Scenario.W_speccpu (if Rng.bool rng then "gcc" else "bzip2")
  | 1 -> Scenario.W_jbb { warehouses = Rng.int_in rng ~lo:2 ~hi:6 }
  | 2 -> Scenario.W_nas (Rng.pick rng nas_names)
  | _ ->
    Scenario.W_lock_storm
      {
        threads = Rng.int_in rng ~lo:2 ~hi:4;
        rounds = 100_000;
        cs_us = Rng.int_in rng ~lo:2 ~hi:30;
        think_us = Rng.int_in rng ~lo:5 ~hi:100;
      }

let any_workload rng =
  if Rng.bool rng then finite_workload rng else sustained_workload rng

let vm_name i = Printf.sprintf "vm%d" i

let base_spec rng =
  (* Mostly paper-testbed-sized hosts; one case in 16 is a big-host
     NUMA-ish box (64/128 PCPUs) so the sharding ledger and the
     big-topology paths stay fuzzed. *)
  let sockets, cores_per_socket =
    if Rng.int rng 16 = 0 then ((if Rng.bool rng then 4 else 8), 16)
    else
      ((if Rng.int rng 4 = 0 then 2 else 1), [| 2; 4; 4 |].(Rng.int rng 3))
  in
  {
    Spec.seed = Rng.next_int64 rng;
    sched = [| "credit"; "asman"; "asman"; "con"; "asman-oov" |].(Rng.int rng 5);
    scale = 0.05;
    work_conserving = Rng.int rng 4 <> 0;
    faults = "none";
    queue = (if Rng.bool rng then "wheel" else "heap");
    sim_jobs = [| 1; 1; 2; 4 |].(Rng.int rng 4);
    decouple = false;
    sockets;
    cores_per_socket;
    horizon_sec = 0.06 +. (0.02 *. float_of_int (Rng.int rng 8));
    check_fairness = false;
    accounting = "precise";
    check_entitlement = false;
    vms = [];
    cluster = None;
    provenance = None;
  }

(* The dedicated fairness shape: the only generated shape where
   Eq. (2) is an exact prediction — capped (non-work-conserving) mode
   so shares are enforced, every VM runs a restarting CPU-bound
   workload so demand never dips, distinct weights so a
   proportionality bug actually moves the measured rates, and no
   faults so nothing legitimately steals time. *)
let fairness_shape rng spec =
  let nvms = Rng.int_in rng ~lo:2 ~hi:3 in
  let ws = Array.copy weights in
  Rng.shuffle rng ws;
  let vms =
    List.init nvms (fun i ->
        {
          Spec.v_name = vm_name i;
          v_weight = ws.(i);
          v_vcpus = [| 2; 4 |].(Rng.int rng 2);
          (* pure compute only: jbb's think time makes demand
             unprovable, and the proportionality oracle is only sound
             when every VM provably wants the whole machine *)
          v_workload =
            Some (Scenario.W_speccpu (if Rng.bool rng then "gcc" else "bzip2"));
        })
  in
  {
    spec with
    (* always-coschedule trades fairness for gang alignment by
       design; proportionality is only a theorem for credit-family
       schedulers *)
    Spec.sched = (if Rng.bool rng then "credit" else "asman");
    work_conserving = false;
    faults = "none";
    check_fairness = true;
    horizon_sec = 0.3;
    vms;
  }

(* All-HIGH storm: every VM hammers locks, so under ASMan every VCRD
   goes and stays High — maximum gang-launch pressure. *)
let storm_shape rng spec =
  let nvms = Rng.int_in rng ~lo:2 ~hi:4 in
  let vms =
    List.init nvms (fun i ->
        {
          Spec.v_name = vm_name i;
          v_weight = Rng.pick rng weights;
          v_vcpus = Rng.int_in rng ~lo:2 ~hi:4;
          v_workload =
            Some
              (Scenario.W_lock_storm
                 {
                   threads = 4;
                   rounds = 100_000;
                   cs_us = Rng.int_in rng ~lo:5 ~hi:30;
                   think_us = Rng.int_in rng ~lo:5 ~hi:50;
                 });
        })
  in
  { spec with Spec.sched = "asman"; faults = "none"; vms }

(* The dedicated attack shape: the only generated shape where the
   entitlement oracle's attacker-vs-victim comparison is sound.
   Precise accounting (the defense under test: attacks must gain
   nothing), a small host so attacker and victims genuinely contend,
   attacker VMs running scheduler-attack guests, and victims running
   sustained CPU-bound work whose demand provably never dips. *)
let attack_shape rng spec =
  let attackers =
    if Rng.int rng 3 = 0 then
      [
        {
          Spec.v_name = "attacker-a";
          v_weight = 64;
          v_vcpus = 1;
          v_workload =
            Some (Scenario.W_attack_launder { threads = 1; phased = false });
        };
        {
          Spec.v_name = "attacker-b";
          v_weight = 64;
          v_vcpus = 1;
          v_workload =
            Some (Scenario.W_attack_launder { threads = 1; phased = true });
        };
      ]
    else
      [
        {
          Spec.v_name = "attacker";
          v_weight = 64;
          v_vcpus = 1;
          v_workload =
            Some
              (if Rng.bool rng then Scenario.W_attack_dodge { threads = 1 }
               else Scenario.W_attack_steal { threads = 1 });
        };
      ]
  in
  (* Saturation certificate: the attacker-vs-victim entitlement
     comparison is only sound when demand exceeds capacity — on an
     underloaded host a dodger's excess is legitimate work-conserving
     slack, not theft (victims still attain their full entitlement).
     Two victims sized to the host guarantee >= 2x oversubscription
     whatever the core count. *)
  let cores = if Rng.bool rng then 1 else 2 in
  let victims =
    List.init 2 (fun i ->
        {
          Spec.v_name = Printf.sprintf "victim%d" i;
          v_weight = 512;
          v_vcpus = cores;
          v_workload =
            Some (Scenario.W_speccpu (if Rng.bool rng then "gcc" else "bzip2"));
        })
  in
  {
    spec with
    (* credit-family only: entitlement is an Eq. (2) statement *)
    Spec.sched = (if Rng.bool rng then "credit" else "asman");
    sockets = 1;
    cores_per_socket = cores;
    faults = "none";
    accounting = "precise";
    check_entitlement = true;
    horizon_sec = 1.0;
    vms = attackers @ victims;
  }

(* The decoupled shape: a multi-socket host split into socket-aligned
   sub-hosts on the PDES fabric, judged by the worker-invariance
   oracle. Small shards (the fabric's window protocol, not host scale,
   is what's under test here), every VM loaded (idle VMs can't
   migrate), no faults (the decoupled engine excludes injection). *)
let decoupled_shape rng spec =
  let shards = if Rng.bool rng then 2 else 4 in
  let nvms = shards + Rng.int_in rng ~lo:1 ~hi:4 in
  let vms =
    List.init nvms (fun i ->
        {
          Spec.v_name = vm_name i;
          v_weight = Rng.pick rng weights;
          v_vcpus = [| 1; 2; 2; 4 |].(Rng.int rng 4);
          v_workload = Some (any_workload rng);
        })
  in
  {
    spec with
    Spec.sched = [| "credit"; "asman"; "con" |].(Rng.int rng 3);
    faults = "none";
    sim_jobs = shards;
    decouple = true;
    sockets = shards * (if Rng.bool rng then 1 else 2);
    cores_per_socket = [| 2; 4 |].(Rng.int rng 2);
    horizon_sec = 0.06 +. (0.02 *. float_of_int (Rng.int rng 4));
    vms;
  }

(* The cluster shape: a small simulated datacenter (the fabric's
   cross-host protocol and the placement bookkeeping, not host scale,
   are what's under test), judged by the cluster-conservation and
   placement-determinism oracles. Small hosts so arrivals actually
   contend for slots, every policy and lifetime distribution in
   rotation. *)
let cluster_shape rng spec =
  {
    spec with
    Spec.sched = [| "credit"; "asman"; "con" |].(Rng.int rng 3);
    faults = "none";
    sim_jobs = 1;
    decouple = false;
    sockets = 1;
    cores_per_socket = [| 2; 2; 4 |].(Rng.int rng 3);
    horizon_sec = 0.2 +. (0.1 *. float_of_int (Rng.int rng 3));
    vms = [];
    cluster =
      Some
        {
          Spec.cl_hosts = Rng.int_in rng ~lo:2 ~hi:4;
          cl_trace_seed = Rng.next_int64 rng;
          cl_policy = [| "first-fit"; "best-fit"; "lifetime" |].(Rng.int rng 3);
          cl_dist = [| "uniform"; "bimodal"; "heavy" |].(Rng.int rng 3);
          cl_vms = Rng.int_in rng ~lo:3 ~hi:8;
        };
  }

let fault_profiles =
  [| "chaos-mild"; "chaos-heavy"; "jitter"; "stall"; "hotplug";
     "ipi-loss-10"; "ipi-delay-20"; "vcrd-loss-20" |]

let chaos_shape rng spec =
  { spec with Spec.faults = Rng.pick rng fault_profiles }

let mixed_shape rng spec =
  let nvms = Rng.int_in rng ~lo:1 ~hi:4 in
  let vms =
    List.init nvms (fun i ->
        {
          Spec.v_name = vm_name i;
          v_weight = Rng.pick rng weights;
          v_vcpus = [| 1; 2; 2; 4 |].(Rng.int rng 4);
          v_workload =
            (* an occasional idle VM exercises the no-workload path *)
            (if Rng.int rng 10 = 0 then None else Some (any_workload rng));
        })
  in
  {
    spec with
    (* occasional sampled-accounting case: fuzzes the tick-debit paths
       for crashes and determinism (the entitlement oracle stays off —
       theft under sampled accounting is modeled behaviour) *)
    Spec.accounting = (if Rng.int rng 8 = 0 then "sampled" else "precise");
    vms;
  }

let spec case_seed =
  let rng = Rng.create case_seed in
  let base = base_spec rng in
  match Rng.int rng 11 with
  | 0 | 1 -> fairness_shape rng base
  | 2 -> storm_shape rng base
  | 3 | 4 -> chaos_shape rng (mixed_shape rng base)
  | 5 -> attack_shape rng base
  | 6 -> decoupled_shape rng base
  | 7 -> cluster_shape rng base
  | _ -> mixed_shape rng base

(* Case seeds for a run: decorrelate neighbouring indices so
   [--seed 1] and [--seed 2] share no cases. *)
let case_seed ~seed ~index =
  let r = Rng.create seed in
  let salt = Rng.next_int64 r in
  Int64.add salt (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1)))
