(** The fuzz driver: generate N cases from a run seed, fan them out
    over the worker pool, shrink every failure, and report.

    Case verdicts are independent (each case builds its own engine,
    VMM and registry), so the fan-out is deterministic at any worker
    count. Shrinking runs sequentially afterwards — there is rarely
    more than one failure, and shrink candidates must be evaluated
    in order. *)

type failure_report = {
  fr_index : int;  (** case index within the run *)
  fr_seed : int64;  (** case seed: [Gen.spec fr_seed] regenerates it *)
  fr_spec : Spec.t;  (** as generated *)
  fr_failures : Oracle.failure list;
  fr_shrunk : Spec.t;  (** minimal still-failing spec *)
  fr_shrunk_failures : Oracle.failure list;
}

type timeout_report = { tr_index : int; tr_seed : int64; tr_limit_sec : float }

type report = {
  cases : int;
      (** cases with a verdict ([cases] requested; fewer only when a
          timeout aborted the run) *)
  failures : failure_report list;
  timeouts : timeout_report list;
      (** a timed-out case is a reported failure with its seed, never
          silently dropped *)
}

val passed : report -> bool

val run :
  ?jobs:int ->
  ?timeout_sec:float ->
  ?shrink_budget:int ->
  cases:int ->
  seed:int64 ->
  unit ->
  report

val summary_kv : report -> (string * float) list
(** Fuzzer-health counters for a run-registry record's ["check"]
    section: [cases], [failures], [timeouts] and [shrunk] (failures
    whose minimized spec still fails). *)

val failure_summary : failure_report -> string

val repro_filename : failure_report -> string

val write_repros : ?dir:string -> ?record_id:string -> report -> string list
(** Write each failure's shrunk spec as a JSON case file (CI uploads
    these as artifacts); returns the paths. Each file is stamped with
    {!Spec.provenance} — the finding case seed, plus [record_id] (the
    check run's registry record) when given — shown by [asman repro]. *)
