(** Seeded scenario generator.

    [spec case_seed] is a pure function of the seed: the same seed
    always yields the same {!Spec.t} (the determinism the corpus and
    [asman repro] rely on). Shapes mix general random scenarios with
    three targeted ones: a {e fairness} shape (the only one that sets
    [check_fairness]), an {e all-HIGH storm} (maximal gang pressure
    under ASMan) and {e chaos} (a random fault profile). *)

val spec : int64 -> Spec.t

val case_seed : seed:int64 -> index:int -> int64
(** The case seed for [--seed seed] at case [index]; decorrelated so
    different run seeds share no cases. *)

val finite_workload : Sim_engine.Rng.t -> Asman.Scenario.workload_desc
(** A workload whose every thread terminates (no restarts):
    [Runner.run_rounds ~rounds:1] on it completes. Draws cover
    compute, lock storms, barriers, semaphores (ping-pong) and
    random lock/compute programs — used by the ported
    [test_properties] generator. *)

val sustained_workload : Sim_engine.Rng.t -> Asman.Scenario.workload_desc
(** A workload that keeps demand up for a whole measurement window
    (restarting or effectively unbounded). *)
