(** A SimCheck case: the complete, serializable description of one
    randomly generated full-stack scenario.

    The spec is the unit of reproduction — the generator emits one
    from a case seed, the shrinker rewrites it, [asman repro] and the
    committed [test/corpus/] replay it from JSON. Everything the run
    depends on is in here; rebuilding a spec under the same binary is
    bit-for-bit deterministic. *)

type vm = {
  v_name : string;
  v_weight : int;
  v_vcpus : int;
  v_workload : Asman.Scenario.workload_desc option;  (** [None] = idle VM *)
}

type t = {
  seed : int64;  (** the scenario engine's seed *)
  sched : string;  (** scheduler name, as {!Asman.Config.sched_of_name} *)
  scale : float;
  work_conserving : bool;
  faults : string;  (** fault profile name; ["none"] = clean *)
  queue : string;  (** event-queue backend: ["wheel"] or ["heap"] *)
  sim_jobs : int;
      (** [--sim-jobs] shard count for the engine's sharding ledger;
          1 (the default when absent from older corpus JSON) leaves
          the ledger unarmed. Outcome-invariant by contract — the
          sim-jobs oracle reruns cases across values to enforce it. *)
  sockets : int;
  cores_per_socket : int;
  horizon_sec : float;  (** simulated measurement window *)
  check_fairness : bool;
      (** set only by the generator's dedicated fairness shape (capped
          mode, restarting CPU-bound workloads, distinct weights); the
          proportionality oracle runs only on such cases *)
  accounting : string;
      (** credit-accounting discipline: ["precise"] (default when
          absent from older corpus JSON) or ["sampled"] *)
  check_entitlement : bool;
      (** set only by the generator's dedicated attack shape (attacker
          VMs plus sustained CPU-bound victims; false when absent from
          older corpus JSON); the entitlement oracle runs only on such
          cases, where attacker-vs-victim attainment is meaningful *)
  vms : vm list;
}

val pcpus : t -> int

val to_json : t -> Cjson.t
val of_json : Cjson.t -> t

val to_string : t -> string
(** Indented JSON (corpus files are committed; keep diffs readable). *)

val of_string : string -> t
(** Raises {!Cjson.Parse_error} on malformed input. *)

val load : string -> t
val save : t -> string -> unit

val validate : t -> (unit, string) result
(** Structural sanity before attempting to build the scenario. *)

(** {2 Realisation} — resolve names to live configuration. All raise
    [Invalid_argument] on names {!validate} would have rejected. *)

val sched_kind : t -> Asman.Config.sched_kind
val queue_kind : t -> Sim_engine.Engine.queue_kind
val fault_profile : t -> Sim_faults.Fault.profile
val accounting_mode : t -> Sim_vmm.Vmm.accounting
val vm_descs : t -> Asman.Scenario.vm_desc list

val is_attack_vm : vm -> bool
(** The VM's workload descriptor is one of the [W_attack_*] shapes —
    the entitlement oracle's attacker/victim split. *)
