(** A SimCheck case: the complete, serializable description of one
    randomly generated full-stack scenario.

    The spec is the unit of reproduction — the generator emits one
    from a case seed, the shrinker rewrites it, [asman repro] and the
    committed [test/corpus/] replay it from JSON. Everything the run
    depends on is in here; rebuilding a spec under the same binary is
    bit-for-bit deterministic. *)

type vm = {
  v_name : string;
  v_weight : int;
  v_vcpus : int;
  v_workload : Asman.Scenario.workload_desc option;  (** [None] = idle VM *)
}

type provenance = {
  pv_record : string option;
      (** run-registry record id of the check run that found it;
          [None] when the registry was disabled at write time *)
  pv_seed : int64;  (** the case seed that generated the failing spec *)
}
(** Where a corpus file came from: stamped onto shrunk repros by
    {!Check.write_repros}, shown by [asman repro], round-tripped
    through the corpus JSON ([found_seed]/[found_record] keys). *)

type cluster = {
  cl_hosts : int;  (** datacenter size *)
  cl_trace_seed : int64;
      (** seeds {!Sim_cluster.Vtrace.generate}; independent of the
          spec seed so shrinking one never perturbs the other *)
  cl_policy : string;  (** name, as {!Sim_cluster.Placement.policy_of_name} *)
  cl_dist : string;  (** name, as {!Sim_cluster.Vtrace.dist_of_name} *)
  cl_vms : int;  (** trace length (arriving VMs) *)
}
(** The cluster axis: the case is a whole simulated datacenter driven
    by a seeded arrival/departure trace over [horizon_sec]. *)

type t = {
  seed : int64;  (** the scenario engine's seed *)
  sched : string;  (** scheduler name, as {!Asman.Config.sched_of_name} *)
  scale : float;
  work_conserving : bool;
  faults : string;  (** fault profile name; ["none"] = clean *)
  queue : string;  (** event-queue backend: ["wheel"] or ["heap"] *)
  sim_jobs : int;
      (** [--sim-jobs] shard count for the engine's sharding ledger;
          1 (the default when absent from older corpus JSON) leaves
          the ledger unarmed. Outcome-invariant by contract — the
          sim-jobs oracle reruns cases across values to enforce it. *)
  decouple : bool;
      (** [true]: run the scenario as [sim_jobs] decoupled sub-hosts
          on the windowed PDES fabric and judge it with the
          worker-invariance oracle (the fabric digest must not depend
          on the worker count) instead of the coupled trace oracles.
          [false] (the default when absent from older corpus JSON)
          keeps the single-engine path. *)
  sockets : int;
  cores_per_socket : int;
  horizon_sec : float;  (** simulated measurement window *)
  check_fairness : bool;
      (** set only by the generator's dedicated fairness shape (capped
          mode, restarting CPU-bound workloads, distinct weights); the
          proportionality oracle runs only on such cases *)
  accounting : string;
      (** credit-accounting discipline: ["precise"] (default when
          absent from older corpus JSON) or ["sampled"] *)
  check_entitlement : bool;
      (** set only by the generator's dedicated attack shape (attacker
          VMs plus sustained CPU-bound victims; false when absent from
          older corpus JSON); the entitlement oracle runs only on such
          cases, where attacker-vs-victim attainment is meaningful *)
  vms : vm list;  (** empty on cluster cases: the trace is the VM list *)
  cluster : cluster option;
      (** [Some _]: judge with the cluster-conservation and
          placement-determinism oracles instead of the coupled trace
          oracles; [None] (the default when absent from older corpus
          JSON) keeps the single-host path *)
  provenance : provenance option;
      (** corpus bookkeeping, not a run input: [None] on freshly
          generated cases and pre-provenance corpus files *)
}

val pcpus : t -> int

val to_json : t -> Cjson.t
val of_json : Cjson.t -> t

val to_string : t -> string
(** Indented JSON (corpus files are committed; keep diffs readable). *)

val of_string : string -> t
(** Raises {!Cjson.Parse_error} on malformed input. *)

val load : string -> t
val save : t -> string -> unit

val validate : t -> (unit, string) result
(** Structural sanity before attempting to build the scenario. *)

(** {2 Realisation} — resolve names to live configuration. All raise
    [Invalid_argument] on names {!validate} would have rejected. *)

val sched_kind : t -> Asman.Config.sched_kind
val queue_kind : t -> Sim_engine.Engine.queue_kind
val fault_profile : t -> Sim_faults.Fault.profile
val accounting_mode : t -> Sim_vmm.Vmm.accounting
val vm_descs : t -> Asman.Scenario.vm_desc list
val cluster_policy : t -> Sim_cluster.Placement.policy
val cluster_dist : t -> Sim_cluster.Vtrace.dist

val is_attack_vm : vm -> bool
(** The VM's workload descriptor is one of the [W_attack_*] shapes —
    the entitlement oracle's attacker/victim split. *)
