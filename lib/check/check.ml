open Asman

type failure_report = {
  fr_index : int;
  fr_seed : int64;
  fr_spec : Spec.t;
  fr_failures : Oracle.failure list;
  fr_shrunk : Spec.t;
  fr_shrunk_failures : Oracle.failure list;
}

type timeout_report = { tr_index : int; tr_seed : int64; tr_limit_sec : float }

type report = {
  cases : int;  (** cases whose verdict is in — [cases] requested, fewer on abort *)
  failures : failure_report list;
  timeouts : timeout_report list;
}

let passed r = r.failures = [] && r.timeouts = []

let run ?jobs ?timeout_sec ?(shrink_budget = 200) ~cases ~seed () =
  let indices = List.init cases (fun i -> i) in
  let run_index i =
    let case_seed = Gen.case_seed ~seed ~index:i in
    let spec = Gen.spec case_seed in
    (i, case_seed, spec, Case.run spec)
  in
  match Pool.map ?jobs ?timeout_sec run_index indices with
  | exception Pool.Job_timeout { index; limit_sec; _ } ->
    (* A hung case must surface with its seed, not vanish: the pool
       aborts the whole map, so this timeout is the run's verdict. *)
    {
      cases = index;
      failures = [];
      timeouts =
        [
          {
            tr_index = index;
            tr_seed = Gen.case_seed ~seed ~index;
            tr_limit_sec = limit_sec;
          };
        ];
    }
  | results ->
    let failing =
      List.filter (fun (_, _, _, failures) -> failures <> []) results
    in
    let failures =
      List.map
        (fun (i, case_seed, spec, fs) ->
          let shrunk, shrunk_fs =
            Shrink.minimize ~budget:shrink_budget ~fails:Case.run spec
              ~initial_failures:fs
          in
          {
            fr_index = i;
            fr_seed = case_seed;
            fr_spec = spec;
            fr_failures = fs;
            fr_shrunk = shrunk;
            fr_shrunk_failures = shrunk_fs;
          })
        failing
    in
    { cases; failures; timeouts = [] }

let failure_summary fr =
  let head = function
    | { Oracle.oracle; message } :: _ -> Printf.sprintf "%s: %s" oracle message
    | [] -> "(no failure?)"
  in
  Printf.sprintf
    "case %d (seed %Ld)\n  failed:  %s\n  shrunk:  %d VM(s), %d vcpu(s) max, \
     horizon %.3fs\n  still:   %s"
    fr.fr_index fr.fr_seed (head fr.fr_failures)
    (List.length fr.fr_shrunk.Spec.vms)
    (List.fold_left
       (fun m (v : Spec.vm) -> max m v.Spec.v_vcpus)
       0 fr.fr_shrunk.Spec.vms)
    fr.fr_shrunk.Spec.horizon_sec
    (head fr.fr_shrunk_failures)

let repro_filename fr =
  let oracle =
    match fr.fr_shrunk_failures with
    | { Oracle.oracle; _ } :: _ -> oracle
    | [] -> "unknown"
  in
  Printf.sprintf "repro-%s-case%d.json" oracle fr.fr_index

(* Each repro is stamped with where it came from — the check run's
   registry record (when recording was on) and the case seed that
   generated it — so a corpus file found months later still names the
   run that produced it. *)
let write_repros ?(dir = ".") ?record_id report =
  List.map
    (fun fr ->
      let path = Filename.concat dir (repro_filename fr) in
      let stamped =
        {
          fr.fr_shrunk with
          Spec.provenance =
            Some { Spec.pv_record = record_id; pv_seed = fr.fr_seed };
        }
      in
      Spec.save stamped path;
      path)
    report.failures

(* Fuzzer-health counters for the run registry's "check" section. *)
let summary_kv r =
  [
    ("cases", float_of_int r.cases);
    ("failures", float_of_int (List.length r.failures));
    ("timeouts", float_of_int (List.length r.timeouts));
    ( "shrunk",
      float_of_int
        (List.length
           (List.filter (fun fr -> fr.fr_shrunk_failures <> []) r.failures)) );
  ]
