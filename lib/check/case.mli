(** Execute one spec and judge it.

    A case run builds the full stack from the spec ([Record]-mode
    runtime invariants, oracle trace categories armed, export hub
    off, queue backend pinned), drives it one measurement window with
    a structural-invariant probe firing every 5 simulated ms, then
    assembles the {!Oracle.input} and runs the catalogue. A clean
    primary run is rerun on the flipped queue backend and compared by
    fingerprint (the determinism oracle). Exceptions anywhere become
    a ["no-crash"] failure — a fuzz case must never kill the run. *)

type fingerprint = {
  fp_now : int;
  fp_events : int;
  fp_ctx_switches : int;
  fp_ipis : int;
  fp_vms : (string * int * int * int) list;
      (** (name, marks, rounds, vcrd transitions) in VM order *)
}

val fingerprint_to_string : fingerprint -> string

val config_of_spec :
  ?queue:Sim_engine.Engine.queue_kind ->
  ?sim_jobs:int ->
  Spec.t ->
  Asman.Config.t
(** The exact config a case runs under ([queue] overrides the spec's
    backend — the determinism rerun; [sim_jobs] overrides the spec's
    shard count — the sim-jobs rerun). *)

val run_once :
  ?queue:Sim_engine.Engine.queue_kind ->
  ?sim_jobs:int ->
  Spec.t ->
  fingerprint * Oracle.failure list
(** One simulation, no determinism rerun, exceptions propagate. *)

val run_cluster_once :
  workers:int -> Spec.t -> Sim_cluster.Cluster.report * string list
(** One datacenter simulation of a cluster spec at the given fabric
    worker count, paired with its conservation-oracle verdict.
    Exceptions propagate. *)

val run : Spec.t -> Oracle.failure list
(** The full judgement: validate, run, oracles, then on clean runs the
    determinism rerun (flipped queue backend) and the sim-jobs rerun
    (sharding ledger flipped: armed specs rerun at [--sim-jobs 1],
    unarmed ones at 4). Cluster specs are judged instead by the
    cluster-conservation oracle and a 1-vs-2-worker
    placement-determinism rerun. [[]] means the case passed
    everything. *)
