(** The oracle catalogue: pluggable pass/fail judges over one
    completed run's observable record.

    Every oracle consumes the same {!input} — a plain record that a
    test can fabricate by hand (each oracle's unit test builds a
    known-violating input without running a simulation). {!Case}
    assembles the real thing from a finished scenario.

    Soundness over completeness: an oracle that cannot be sure
    returns [Skip] (fault profiles legitimately break timing
    assumptions; a dropped trace ring hides evidence). A [Fail] is
    designed to always be a real bug. *)

type vm_obs = {
  o_name : string;
  o_domain : int;  (** domain id *)
  o_vcpus : int array;  (** the domain's VCPU ids *)
  o_weight : int;
  o_concurrent : bool;  (** static CON marking *)
  o_final_credits : int array;  (** per-VCPU, at window end *)
  o_online_rate : float;  (** measured over the window *)
  o_expected_online : float;  (** Equation (2) *)
  o_attacker : bool;
      (** workload is one of the [Sim_workloads.Attack] guests (the
          [W_attack_*] descriptors) *)
}

type input = {
  pcpus : int;
  slot_cycles : int;
  slots_per_period : int;
  credit_unit : int;
  work_conserving : bool;
  clean : bool;  (** no fault profile *)
  sched : string;
  check_fairness : bool;  (** generator-certified fairness shape *)
  accounting : string;  (** ["precise"] or ["sampled"] *)
  check_entitlement : bool;  (** generator-certified attack shape *)
  started : int;  (** window start, cycles *)
  finished : int;  (** window end, cycles *)
  entries : Sim_obs.Trace.entry list;  (** the armed categories, oldest first *)
  trace_dropped : int;  (** ring overflow count; gates trace oracles *)
  dom0 : int;
  dom0_vcpus : int array;
  vms : vm_obs list;
  runtime_violations : int;  (** lib/vmm per-period checker count *)
  runtime_messages : string list;
  structural : (unit, string) result;  (** final {!Sim_vmm.Vmm.check_invariants} *)
  probe_errors : string list;  (** mid-run structural sweeps that failed *)
}

type verdict = Pass | Skip of string | Fail of string

type t = { name : string; check : input -> verdict }

val invariants : t
(** Runtime per-period checker, mid-run probes and final structural
    audit all clean — includes no-lost/duplicated-VCPUs across
    runqueue relocations. *)

val credit_bounds : t
(** Final per-VCPU credit within [[floor, cap]] of [lib/vmm/credit.ml]. *)

val credit_burn : t
(** Time run is paid for: credit billed in [Credit_account] events
    within factor 2 of the timeline-measured guest online time's
    worth. Clean runs with enough signal only. *)

val proportionality : t
(** Equation (2) CPU-share tolerance on fairness-shape cases. *)

val entitlement : t
(** Attack containment on attack-shape cases under precise
    accounting: the attacker VMs' aggregate attained/entitled ratio
    must not dominate the victims' (relative, because work-conserving
    slack makes absolute bands unsound; aggregated, to catch the
    laundering pair). *)

val gang_atomicity : t
(** Every trace-provably-Ready sibling runs within slot/4 of its gang
    launch, on clean single-gang asman/con runs. *)

val vcpu_conservation : t
(** No VCPU on two PCPUs at once; no unknown VCPU ids scheduled. *)

val monotonic_time : t
val trace_wellformed : t

val catalogue : t list

type failure = { oracle : string; message : string }

val run_all : input -> failure list
(** Failures only ([Pass] and [Skip] drop out), in catalogue order. *)
