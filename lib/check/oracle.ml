module Trace = Sim_obs.Trace
module Timeline = Sim_obs.Timeline

type vm_obs = {
  o_name : string;
  o_domain : int;
  o_vcpus : int array;
  o_weight : int;
  o_concurrent : bool;
  o_final_credits : int array;
  o_online_rate : float;
  o_expected_online : float;
  o_attacker : bool;
}

type input = {
  pcpus : int;
  slot_cycles : int;
  slots_per_period : int;
  credit_unit : int;
  work_conserving : bool;
  clean : bool;
  sched : string;
  check_fairness : bool;
  accounting : string;
  check_entitlement : bool;
  started : int;
  finished : int;
  entries : Trace.entry list;
  trace_dropped : int;
  dom0 : int;
  dom0_vcpus : int array;
  vms : vm_obs list;
  runtime_violations : int;
  runtime_messages : string list;
  structural : (unit, string) result;
  probe_errors : string list;
}

type verdict = Pass | Skip of string | Fail of string

type t = { name : string; check : input -> verdict }

let failf fmt = Printf.ksprintf (fun m -> Fail m) fmt

(* ----- shared reconstruction helpers ----- *)

let guest_vcpu_set input =
  let s = Hashtbl.create 32 in
  List.iter
    (fun vm -> Array.iter (fun id -> Hashtbl.replace s id vm.o_domain) vm.o_vcpus)
    input.vms;
  s

let known_domains input =
  let s = Hashtbl.create 8 in
  Hashtbl.replace s input.dom0 ();
  List.iter (fun vm -> Hashtbl.replace s vm.o_domain ()) input.vms;
  s

let known_vcpus input =
  let s = guest_vcpu_set input in
  Array.iter (fun id -> Hashtbl.replace s id input.dom0) input.dom0_vcpus;
  s

let timeline input =
  Timeline.of_entries ~stop_at:input.finished ~pcpus:input.pcpus input.entries

(* Cycles [vcpu] spent running inside the measurement window. *)
let window_run_cycles input tl ~vcpu =
  List.fold_left
    (fun acc (a, b) ->
      let a = max a input.started and b = min b input.finished in
      if b > a then acc + (b - a) else acc)
    0
    (Timeline.running_intervals tl ~vcpu)

(* ----- oracles ----- *)

(* Runtime + structural invariants: the per-period checker recorded
   nothing, the mid-run probes saw a consistent structure, and the
   final state is consistent. Catches lost/duplicated VCPUs across
   runqueue relocations (every VCPU in exactly the right number of
   queues) among everything else lib/vmm's checker audits. *)
let invariants =
  {
    name = "invariants";
    check =
      (fun input ->
        if input.runtime_violations > 0 then
          failf "%d runtime invariant violation(s): %s"
            input.runtime_violations
            (match input.runtime_messages with m :: _ -> m | [] -> "?")
        else
          match (input.probe_errors, input.structural) with
          | e :: _, _ -> failf "mid-run structural check: %s" e
          | [], Error e -> failf "final structural check: %s" e
          | [], Ok () -> Pass);
  }

(* Every VCPU's final credit within [floor, cap] from lib/vmm/credit.ml. *)
let credit_bounds =
  {
    name = "credit-bounds";
    check =
      (fun input ->
        let floor = -(input.credit_unit * input.slots_per_period) in
        let cap =
          Sim_vmm.Credit.cap ~credit_unit:input.credit_unit
            ~slots_per_period:input.slots_per_period
        in
        let bad = ref None in
        List.iter
          (fun vm ->
            Array.iteri
              (fun i c ->
                if (c < floor || c > cap) && !bad = None then
                  bad := Some (vm.o_name, i, c))
              vm.o_final_credits)
          input.vms;
        match !bad with
        | Some (vm, i, c) ->
          failf "%s vcpu[%d] credit %d outside [%d, %d]" vm i c floor cap
        | None -> Pass);
  }

(* Credit conservation, burn side: time actually run must be paid
   for. The timeline gives an independent measure of guest online
   cycles; Credit_account events say what was billed. Burn is
   pro-rated per span ([credit_unit * ran / slot]), so total billed
   ~= online * unit / slot; a generous factor-2 band in both
   directions keeps rounding, span-capping and window-edge spans from
   ever tripping a correct scheduler, while a scheduler that forgets
   to burn (billed = 0) is far outside it. *)
let credit_burn =
  {
    name = "credit-burn";
    check =
      (fun input ->
        if not input.clean then Skip "faulty run"
        else if input.trace_dropped > 0 then Skip "trace ring overflowed"
        else begin
          let guests = guest_vcpu_set input in
          let tl = timeline input in
          let online =
            Hashtbl.fold
              (fun vcpu _ acc -> acc + window_run_cycles input tl ~vcpu)
              guests 0
          in
          let billed =
            List.fold_left
              (fun acc (e : Trace.entry) ->
                match e.Trace.ev with
                | Trace.Credit_account { vcpu; burned; _ }
                  when e.Trace.at > input.started
                       && e.Trace.at <= input.finished
                       && Hashtbl.mem guests vcpu ->
                  acc + burned
                | _ -> acc)
              0 input.entries
          in
          let expected =
            int_of_float
              (float_of_int online /. float_of_int input.slot_cycles
              *. float_of_int input.credit_unit)
          in
          if expected < 20 * input.credit_unit then
            Skip "too little guest run time to judge"
          else if 2 * billed < expected then
            failf "billed %d credit for ~%d expected (online %d cycles)"
              billed expected online
          else if billed > (2 * expected) + input.credit_unit then
            failf "billed %d credit for ~%d expected (over-burn)" billed
              expected
          else Pass
        end);
  }

(* Equation (2) proportionality for capped runs: only on the
   generator's certified fairness shape (sustained pure-compute
   demand, enforced shares, no faults). One-sided on purpose: the
   failure signature of a broken share mechanism is a VM *starved*
   below its weighted share. Running above it is legal slack
   absorption — [charge] floors debt at one period ("cannot be
   starved for many periods"), dom0's share mostly idles, and both
   hand short-horizon surplus to whoever is hungriest. *)
let proportionality =
  {
    name = "proportionality";
    check =
      (fun input ->
        if not input.check_fairness then Skip "not a fairness-shape case"
        else if not input.clean then Skip "faulty run"
        else if input.sched = "con" then
          Skip "always-coschedule trades fairness for gang alignment"
        else begin
          let bad = ref None in
          List.iter
            (fun vm ->
              let e = vm.o_expected_online in
              (* near-saturated shares measure as ~1.0 regardless of
                 scheduler correctness: no signal, skip the VM *)
              if e > 0.01 && e < 0.85 && !bad = None then begin
                let tol = Float.max 0.1 (0.2 *. e) in
                if e -. vm.o_online_rate > tol then
                  bad := Some (vm.o_name, vm.o_online_rate, e, tol)
              end)
            input.vms;
          match !bad with
          | Some (vm, got, want, tol) ->
            failf "%s starved: online rate %.3f vs expected %.3f (tol %.3f)"
              vm got want tol
          | None -> Pass
        end);
  }

(* Entitlement containment under precise accounting: only on the
   generator's certified attack shape (attacker VMs running the
   scheduler-attack guests of [Sim_workloads.Attack], victims running
   sustained CPU-bound demand). Work-conserving slack makes an
   absolute epsilon-band unsound — a lone hungry VM may legitimately
   absorb the whole host — so the test is relative: the attackers'
   aggregate attained/entitled ratio must not dominate the victims'.
   An attacker that escapes accounting keeps maximal credit and with
   it strict dispatch priority, landing at several times the victims'
   ratio; a contained attacker lands within noise of it. Summing over
   all attacker VMs is what catches the laundering pair, each half of
   which looks individually modest. *)
let entitlement =
  {
    name = "entitlement";
    check =
      (fun input ->
        if not input.check_entitlement then Skip "not an attack-shape case"
        else if input.accounting <> "precise" then
          Skip "sampled accounting: theft is modeled behaviour, not a bug"
        else if not input.clean then Skip "faulty run"
        else begin
          let norm vms =
            let att, ent =
              List.fold_left
                (fun (a, e) vm ->
                  let v = float_of_int (Array.length vm.o_vcpus) in
                  ( a +. (vm.o_online_rate *. v),
                    e +. (vm.o_expected_online *. v) ))
                (0., 0.) vms
            in
            if ent <= 0. then None else Some (att /. ent)
          in
          let attackers, victims =
            List.partition (fun vm -> vm.o_attacker) input.vms
          in
          match (norm attackers, norm victims) with
          | None, _ -> Skip "no attacker entitlement to compare"
          | _, None -> Skip "no victim entitlement to compare"
          | Some a, Some v ->
            if a > 1.3 && a > 2.0 *. Float.max v 0.10 then
              failf
                "attackers attained %.2fx their entitlement while victims \
                 attained %.2fx"
                a v
            else Pass
        end);
  }

(* Gang-coschedule atomicity: at each gang launch, every sibling the
   trace proves Ready must be running within W = slot/4 — far above
   the IPI latency (~2 us) that a correct launch needs, far below the
   next slot boundary (10 ms) that would pick a dropped sibling up
   anyway. Heavily gated to stay sound: clean single-gang windows
   only, enough PCPUs for the whole gang, and a sibling parked behind
   a running sibling (which the launch legitimately skips) is
   excused. *)
let gang_atomicity =
  {
    name = "gang-atomicity";
    check =
      (fun input ->
        if not input.clean then Skip "faulty run"
        else if input.trace_dropped > 0 then Skip "trace ring overflowed"
        else if input.sched <> "asman" && input.sched <> "con" then
          Skip "scheduler has no traced gang protocol"
        else begin
          let vm_by_domain = Hashtbl.create 8 in
          List.iter
            (fun vm -> Hashtbl.replace vm_by_domain vm.o_domain vm)
            input.vms;
          let concurrent_vms =
            List.filter (fun vm -> vm.o_concurrent) input.vms
          in
          let tl = timeline input in
          let intervals = Hashtbl.create 64 in
          let intervals_of vcpu =
            match Hashtbl.find_opt intervals vcpu with
            | Some l -> l
            | None ->
              let l = Timeline.running_intervals tl ~vcpu in
              Hashtbl.replace intervals vcpu l;
              l
          in
          let runs_within vcpu ~from_ ~until =
            List.exists
              (fun (a, b) -> a <= until && b > from_)
              (intervals_of vcpu)
          in
          (* Vcrd_change times per domain, for High-through-W gating. *)
          let vcrd_events = Hashtbl.create 8 in
          List.iter
            (fun (e : Trace.entry) ->
              match e.Trace.ev with
              | Trace.Vcrd_change { domain; high } ->
                let l =
                  Option.value ~default:[]
                    (Hashtbl.find_opt vcrd_events domain)
                in
                Hashtbl.replace vcrd_events domain ((e.Trace.at, high) :: l)
              | _ -> ())
            input.entries;
          let drops_low domain ~from_ ~until =
            match Hashtbl.find_opt vcrd_events domain with
            | None -> false
            | Some l ->
              List.exists
                (fun (at, high) -> (not high) && at > from_ && at <= until)
                l
          in
          let w = input.slot_cycles / 4 in
          (* One forward pass: per-PCPU occupant, per-VCPU last known
             state, the set of High domains; judge each Gang_launch
             in context. (Wakes are untraced, so a VCPU we think is
             Blocked may be Ready — the under-approximation only
             excuses siblings, never accuses one.) *)
          let occupant = Array.make input.pcpus (-1) in
          let state = Hashtbl.create 64 (* vcpu -> `Ready of home | `Run | `Blocked *) in
          let high = Hashtbl.create 8 in
          let violation = ref None in
          List.iter
            (fun (e : Trace.entry) ->
              match e.Trace.ev with
              | Trace.Sched_switch { pcpu; vcpu; _ } ->
                if occupant.(pcpu) >= 0 then
                  Hashtbl.replace state occupant.(pcpu) (`Ready pcpu);
                occupant.(pcpu) <- vcpu;
                Hashtbl.replace state vcpu `Run
              | Trace.Sched_idle { pcpu } ->
                if occupant.(pcpu) >= 0 then begin
                  Hashtbl.replace state occupant.(pcpu) (`Ready pcpu);
                  occupant.(pcpu) <- -1
                end
              | Trace.Sched_block { pcpu; vcpu; _ } ->
                Hashtbl.replace state vcpu `Blocked;
                if occupant.(pcpu) = vcpu then occupant.(pcpu) <- -1
              | Trace.Vcrd_change { domain; high = h } ->
                if h then Hashtbl.replace high domain ()
                else Hashtbl.remove high domain
              | Trace.Gang_launch { domain; pcpu = _; ipis = _; retry }
                when not retry -> begin
                match Hashtbl.find_opt vm_by_domain domain with
                | None -> ()
                | Some vm ->
                  let t = e.Trace.at in
                  let single_gang =
                    match input.sched with
                    | "asman" ->
                      Hashtbl.length high = 1 && Hashtbl.mem high domain
                    | _ -> (
                      match concurrent_vms with
                      | [ only ] -> only.o_domain = domain
                      | _ -> false)
                  in
                  let fits = Array.length vm.o_vcpus <= input.pcpus in
                  let in_window = t + w <= input.finished in
                  let stays_high =
                    input.sched <> "asman"
                    || not (drops_low domain ~from_:t ~until:(t + w))
                  in
                  if
                    single_gang && fits && in_window && stays_high
                    && !violation = None
                  then
                    Array.iter
                      (fun sib ->
                        match Hashtbl.find_opt state sib with
                        | Some (`Ready home) ->
                          (* launches skip a sibling queued behind a
                             running sibling; excuse it *)
                          let behind_sibling =
                            home >= 0 && home < input.pcpus
                            && occupant.(home) >= 0
                            && Array.exists
                                 (fun s -> s = occupant.(home))
                                 vm.o_vcpus
                          in
                          if
                            (not behind_sibling)
                            && not (runs_within sib ~from_:t ~until:(t + w))
                            && !violation = None
                          then
                            violation :=
                              Some
                                (Printf.sprintf
                                   "%s: gang launch at %d left ready vcpu \
                                    %d descheduled for > %d cycles"
                                   vm.o_name t sib w)
                        | _ -> ())
                      vm.o_vcpus
              end
              | _ -> ())
            input.entries;
          match !violation with Some m -> Fail m | None -> Pass
        end);
  }

(* No lost or duplicated VCPUs, as visible in the schedule: a VCPU
   never runs on two PCPUs at once (its running intervals are
   disjoint), and every scheduled id belongs to a created VCPU. The
   runqueue side (queued exactly once) is [invariants]'s job. *)
let vcpu_conservation =
  {
    name = "vcpu-conservation";
    check =
      (fun input ->
        if input.trace_dropped > 0 then Skip "trace ring overflowed"
        else begin
          let known = known_vcpus input in
          let unknown = ref None in
          List.iter
            (fun (e : Trace.entry) ->
              match e.Trace.ev with
              | Trace.Sched_switch { vcpu; _ } | Trace.Sched_block { vcpu; _ }
                ->
                if (not (Hashtbl.mem known vcpu)) && !unknown = None then
                  unknown := Some vcpu
              | _ -> ())
            input.entries;
          match !unknown with
          | Some v -> failf "schedule references unknown vcpu %d" v
          | None ->
            let tl = timeline input in
            let overlap = ref None in
            Hashtbl.iter
              (fun vcpu _ ->
                if !overlap = None then
                  let ivs =
                    List.sort compare (Timeline.running_intervals tl ~vcpu)
                  in
                  let rec scan = function
                    | (_, b) :: ((a2, _) :: _ as rest) ->
                      if a2 < b then overlap := Some (vcpu, a2)
                      else scan rest
                    | _ -> ()
                  in
                  scan ivs)
              known;
            (match !overlap with
            | Some (v, at) ->
              failf "vcpu %d running on two PCPUs around cycle %d" v at
            | None -> Pass)
        end);
  }

(* Virtual time never goes backwards in the trace. *)
let monotonic_time =
  {
    name = "monotonic-time";
    check =
      (fun input ->
        let rec scan prev = function
          | [] -> Pass
          | (e : Trace.entry) :: rest ->
            if e.Trace.at < prev then
              failf "trace time went backwards: %d after %d" e.Trace.at prev
            else if e.Trace.at > input.finished then
              failf "trace timestamp %d beyond window end %d" e.Trace.at
                input.finished
            else scan e.Trace.at rest
        in
        scan 0 input.entries);
  }

(* Field-level sanity of every traced event. *)
let trace_wellformed =
  {
    name = "trace-wellformed";
    check =
      (fun input ->
        let domains = known_domains input in
        let bad = ref None in
        let check_pcpu p =
          if (p < 0 || p >= input.pcpus) && !bad = None then
            bad := Some (Printf.sprintf "pcpu %d out of range" p)
        in
        let check_domain d =
          if (not (Hashtbl.mem domains d)) && !bad = None then
            bad := Some (Printf.sprintf "unknown domain %d" d)
        in
        List.iter
          (fun (e : Trace.entry) ->
            match e.Trace.ev with
            | Trace.Sched_switch { pcpu; domain; _ }
            | Trace.Sched_block { pcpu; domain; _ } ->
              check_pcpu pcpu;
              check_domain domain
            | Trace.Sched_idle { pcpu } -> check_pcpu pcpu
            | Trace.Credit_account { domain; burned; _ } ->
              check_domain domain;
              if burned < 0 && !bad = None then
                bad := Some (Printf.sprintf "negative burn %d" burned)
            | Trace.Vcrd_change { domain; _ } -> check_domain domain
            | Trace.Gang_launch { domain; pcpu; ipis; _ } ->
              check_domain domain;
              check_pcpu pcpu;
              if ipis < 1 && !bad = None then
                bad := Some "gang launch with no IPIs"
            | Trace.Gang_ack { domain; pcpu } ->
              check_domain domain;
              check_pcpu pcpu
            | Trace.Gang_timeout { domain; _ }
            | Trace.Gang_retry { domain; _ }
            | Trace.Gang_demote { domain; _ }
            | Trace.Invariant_violation { domain } ->
              if domain >= 0 then check_domain domain
            | _ -> ())
          input.entries;
        match !bad with Some m -> Fail m | None -> Pass);
  }

let catalogue =
  [
    invariants; credit_bounds; credit_burn; proportionality; entitlement;
    gang_atomicity; vcpu_conservation; monotonic_time; trace_wellformed;
  ]

type failure = { oracle : string; message : string }

let run_all input =
  List.filter_map
    (fun o ->
      match o.check input with
      | Pass | Skip _ -> None
      | Fail m -> Some { oracle = o.name; message = m })
    catalogue
