(** Seeded VM arrival/departure traces for the cluster layer.

    A trace is a list of VM descriptions sorted by arrival time; each
    entry carries an actual lifetime (when the cluster retires the VM)
    and a noisy predicted lifetime (what the lifetime-aware placement
    scorer sees, per LAVA's model of imperfect lifetime predictors).
    Generation is deterministic in [(seed, vms, dist, horizon_sec)]
    and per-entry streams are independent, so a shorter trace from the
    same seed is a prefix of the longer one — the SimCheck shrinker
    relies on this to drop trace entries. *)

type dist = Uniform | Bimodal | Heavy

val dist_name : dist -> string
val dist_of_name : string -> dist option

type entry = {
  e_name : string;
  e_arrive_sec : float;  (** arrival, seconds of sim time *)
  e_life_sec : float;  (** actual runtime once placed *)
  e_predicted_sec : float;  (** predicted runtime (noisy) *)
  e_vcpus : int;
  e_weight : int;
  e_footprint_mb : int;  (** memory footprint; sets stop-and-copy cost *)
  e_workload : Asman.Scenario.workload_desc;
      (** sustained and sleep-free so departures drain promptly *)
}

type t = entry list

val generate :
  ?max_vcpus:int ->
  seed:int64 ->
  vms:int ->
  dist:dist ->
  horizon_sec:float ->
  unit ->
  t
(** [max_vcpus] (default 4, always clamped to 4) caps per-VM VCPU
    counts — pass the per-host PCPU count for small-host clusters.
    Raises [Invalid_argument] on [vms < 1] or a non-positive
    horizon. *)
