open Sim_engine

type dist = Uniform | Bimodal | Heavy

let dist_name = function
  | Uniform -> "uniform"
  | Bimodal -> "bimodal"
  | Heavy -> "heavy"

let dist_of_name s =
  match String.lowercase_ascii s with
  | "uniform" -> Some Uniform
  | "bimodal" -> Some Bimodal
  | "heavy" -> Some Heavy
  | _ -> None

type entry = {
  e_name : string;
  e_arrive_sec : float;
  e_life_sec : float;
  e_predicted_sec : float;
  e_vcpus : int;
  e_weight : int;
  e_footprint_mb : int;
  e_workload : Asman.Scenario.workload_desc;
}

type t = entry list

(* Each entry draws from its own stream so that a trace of [vms - 1]
   VMs is exactly a prefix of the [vms] trace (modulo the final sort
   by arrival): the shrinker can drop trace entries without
   perturbing the survivors. *)
let entry_rng seed i =
  Rng.create (Int64.add (Int64.mul seed 10_000_019L) (Int64.of_int (i + 1)))

let lifetime rng dist ~horizon =
  let u = Rng.uniform rng in
  match dist with
  | Uniform -> (0.25 +. (0.55 *. u)) *. horizon
  | Bimodal ->
    let v = Rng.uniform rng in
    if u < 0.8 then (0.08 +. (0.10 *. v)) *. horizon
    else (0.70 +. (0.50 *. v)) *. horizon
  | Heavy ->
    (* Pareto-ish tail, capped so every lifetime stays comparable to
       the horizon. *)
    let life = 0.08 *. horizon *. ((1.0 /. Float.max u 0.02) ** 0.7) in
    Float.min life (1.2 *. horizon)

(* Only sustained, sleep-free workloads: a departing VM must drain to
   quiescence via {!Sim_guest.Kernel.request_halt}, which these reach
   within a handful of instruction boundaries. *)
let workload rng ~vcpus =
  match Rng.int rng 3 with
  | 0 | 1 ->
    (* Hot locks (holder busy most of the cycle): lock-holder
       preemption on a stacked host shows up as multi-ms spin waits,
       which is what the consolidation figure's stall axis reads. *)
    Asman.Scenario.W_lock_storm
      {
        threads = vcpus;
        rounds = 200_000;
        cs_us = Rng.int_in rng ~lo:150 ~hi:300;
        think_us = Rng.int_in rng ~lo:100 ~hi:400;
      }
  | _ ->
    Asman.Scenario.W_compute
      { threads = vcpus; chunks = 5_000_000; chunk_us = 200 }

let generate ?(max_vcpus = 4) ~seed ~vms ~dist ~horizon_sec () =
  if vms < 1 then invalid_arg "Vtrace.generate: vms < 1";
  if max_vcpus < 1 then invalid_arg "Vtrace.generate: max_vcpus < 1";
  if horizon_sec <= 0.0 then invalid_arg "Vtrace.generate: horizon <= 0";
  let entries =
    List.init vms (fun i ->
        let rng = entry_rng seed i in
        let arrive = Rng.uniform rng *. 0.55 *. horizon_sec in
        let life = lifetime rng dist ~horizon:horizon_sec in
        (* Prediction noise in [0.7, 1.3): underestimates exercise the
           lifetime-aware scorer's repredict-on-expiry adaptation. *)
        let predicted = life *. (0.7 +. (0.6 *. Rng.uniform rng)) in
        let vcpus = 1 + Rng.int rng (min 4 max_vcpus) in
        let footprint = 64 lsl Rng.int rng 3 in
        {
          e_name = Printf.sprintf "vm%d" i;
          e_arrive_sec = arrive;
          e_life_sec = life;
          e_predicted_sec = predicted;
          e_vcpus = vcpus;
          e_weight = 256;
          e_footprint_mb = footprint;
          e_workload = workload rng ~vcpus;
        })
  in
  List.sort
    (fun a b ->
      match compare a.e_arrive_sec b.e_arrive_sec with
      | 0 -> compare a.e_name b.e_name
      | c -> c)
    entries
