(** Cluster-scale layer: a simulated datacenter of N full
    Engine+Machine+Vmm hosts on the conservative-parallel fabric,
    driven by a seeded VM arrival/departure trace ({!Vtrace}) through
    a pluggable placement engine ({!Placement}).

    Topology: hosts 0..N-1 are fabric members each running a complete
    single-host stack (with an idle sentinel VM); member N is the
    {e incubator}, a tiny extra host whose VMM holds every trace VM
    unlaunched (hence quiescent) and whose engine runs the cluster
    controller: arrival events, the admission queue, the placement
    bookkeeping ({!Placement.host_view}s), departure timers and the
    periodic repredict/rebalance tick.

    All cross-host movement reuses the decoupled-VMM migration
    machinery — [Kernel.park] + [Vmm.detach_domain] on the source,
    mailbox transit, [Kernel.retarget] + [Vmm.attach_domain] on the
    destination — so VCRD/credit state travels with the domain.
    Placement: the incubator parks the unlaunched VM and ships it to
    its host, which launches it on attach. Live migration: the
    controller picks a victim, the source grants only when the guest
    is quiescent and scheduler-migratable, and the stop-and-copy cost
    rides as extra mailbox latency proportional to the VM's memory
    footprint. Departure: the controller's lifetime timer asks the
    guest to drain ({!Sim_guest.Kernel.request_halt}), polls
    quiescence and detaches.

    Determinism: controller state is mutated only by incubator-member
    events and host state only by that host's events, with every
    cross-member hop a [Fabric.post] at [>= lookahead]; the placement
    log and digest are therefore identical at any worker count. *)

type t

val build :
  ?overcommit:float ->
  ?penalty_sec:float ->
  ?rebalance:bool ->
  ?rebalance_margin:int ->
  Asman.Config.t ->
  sched:Asman.Config.sched_kind ->
  policy:Placement.policy ->
  hosts:int ->
  trace:Vtrace.t ->
  t
(** [overcommit] (default 2.0) scales each host's VCPU-slot capacity
    relative to its PCPU count; [penalty_sec] (default 0.75) is the
    lifetime-aware scorer's load-spreading weight;
    [rebalance]/[rebalance_margin] (default on, 4 slots) control
    pressure migrations. [config.topology] is the per-host topology.
    Raises [Invalid_argument] on an empty trace, a fault profile, or
    a trace VM with more VCPUs than a host has PCPUs. *)

type vm_report = {
  v_name : string;
  v_phase : string;
  v_vcpus : int;
  v_run_at : int;  (** controller launch-ack time, -1 if never placed *)
  v_life_cycles : int;
  v_departed_at : int;  (** -1 until departed *)
  v_migrations : int;
  v_downtime_cycles : int;  (** total stop-and-copy freeze *)
  v_repredictions : int;
}

type host_report = {
  h_host : int;
  h_peak_used : int;
  h_physical : string list;
  h_view : string list;
}

type report = {
  cr_hosts : int;
  cr_workers : int;
  cr_policy : string;
  cr_wall_sec : float;
  cr_sim_sec : float;
  cr_end_cycles : int;
  cr_events : int;
  cr_windows : int;
  cr_cross_posts : int;
  cr_density : float;
      (** time-averaged admitted VMs per host (consolidation density) *)
  cr_p99_stall_ms : float;
      (** p99 over all guests' non-zero spin waits *)
  cr_mean_stall_ms : float;
  cr_stall_samples : int;
  cr_stall_tail : (int * int) list;
      (** [(k, count)] of spin waits >= 2{^k} cycles at the paper's
          reporting thresholds k = 10, 15, 20, 25 *)
  cr_placements : int;
  cr_deferrals : int;
  cr_evictions : int;  (** pressure migrations initiated *)
  cr_migrations : int;  (** pressure migrations completed *)
  cr_nacks : int;
  cr_departures : int;
  cr_repredictions : int;
  cr_double_places : int;
  cr_log : (int * string) list;
  cr_digest : int;
  cr_fingerprint : string;
  cr_vms : vm_report list;
  cr_host_reports : host_report list;
}

val run : ?workers:int -> t -> horizon_sec:float -> report
(** Drive the fabric to the horizon (or until every trace VM has
    departed). The report is identical at any [workers]. *)

val placement_log : t -> (int * string) list
(** The controller's event log (time, event), oldest first; the
    placement-determinism oracle compares it across worker counts. *)

val digest : t -> int
(** Fabric digest folded with the placement log. *)

val conservation_errors : t -> string list
(** The cluster-conservation oracle, evaluated after {!run}: no VM
    lost, duplicated, or on two hosts (physically or in the
    controller's books); bookkeeping consistent with each VM's phase;
    capacity never oversubscribed; departures never early and never
    missing once the lifetime plus drain slack fits inside the run;
    the placement log exactly-once per VM. Empty on a clean run. *)
