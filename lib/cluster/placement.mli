(** Pluggable VM placement for the cluster layer.

    A placement decision sees only the controller's bookkeeping — an
    array of {!host_view}s tracking each host's slot capacity, current
    occupancy (residents plus in-flight reservations) and residents'
    predicted exit times — never host-internal simulator state, so
    decisions are identical at any worker count. *)

type policy =
  | First_fit  (** lowest-id feasible host (bin-packing baseline) *)
  | Best_fit  (** feasible host with the tightest remaining capacity *)
  | Lifetime_aware
      (** LAVA-style scorer: minimize the extension of the host's
          predicted drain window plus a load-spreading penalty *)

val policy_name : policy -> string
val policy_of_name : string -> policy option

type resident = {
  r_name : string;
  r_vcpus : int;
  mutable r_predicted_end_sec : float;
      (** doubled in place when the prediction expires and the VM is
          still running (LAVA's repredict adaptation) *)
}

type host_view = {
  h_id : int;
  h_capacity : int;
  mutable h_used : int;
  mutable h_peak_used : int;
  mutable h_residents : resident list;
}

val make_view : id:int -> capacity:int -> host_view
val feasible : host_view -> vcpus:int -> bool

val admit : host_view -> resident -> unit
val remove : host_view -> resident -> unit
(** [remove] matches the resident physically ([==]); raises
    [Invalid_argument] if occupancy would go negative. *)

val reserve : host_view -> vcpus:int -> unit
val release : host_view -> vcpus:int -> unit
(** Capacity holds for decisions whose VM is still in flight (initial
    copy, stop-and-copy migration), so an arrival landing mid-copy
    sees the true future occupancy. *)

val drain_end : host_view -> now_sec:float -> float
val utilization : host_view -> float

val la_score :
  host_view ->
  now_sec:float ->
  predicted_end_sec:float ->
  penalty_sec:float ->
  float
(** Lower is better. *)

val choose :
  policy ->
  host_view array ->
  vcpus:int ->
  now_sec:float ->
  predicted_end_sec:float ->
  penalty_sec:float ->
  int option
(** The chosen host id among feasible views, or [None] when no host
    fits. Deterministic; ties break to the lowest host id. *)
