type policy = First_fit | Best_fit | Lifetime_aware

let policy_name = function
  | First_fit -> "first-fit"
  | Best_fit -> "best-fit"
  | Lifetime_aware -> "lifetime"

let policy_of_name s =
  match String.lowercase_ascii s with
  | "first-fit" | "ff" -> Some First_fit
  | "best-fit" | "bf" -> Some Best_fit
  | "lifetime" | "lifetime-aware" | "la" -> Some Lifetime_aware
  | _ -> None

type resident = {
  r_name : string;
  r_vcpus : int;
  mutable r_predicted_end_sec : float;
}

type host_view = {
  h_id : int;
  h_capacity : int;  (** VCPU slots: pcpus x overcommit ratio *)
  mutable h_used : int;  (** slots of residents plus reservations *)
  mutable h_peak_used : int;
  mutable h_residents : resident list;
}

let make_view ~id ~capacity =
  { h_id = id; h_capacity = capacity; h_used = 0; h_peak_used = 0;
    h_residents = [] }

let feasible h ~vcpus = h.h_used + vcpus <= h.h_capacity

let admit h r =
  h.h_used <- h.h_used + r.r_vcpus;
  if h.h_used > h.h_peak_used then h.h_peak_used <- h.h_used;
  h.h_residents <- r :: h.h_residents

let reserve h ~vcpus =
  h.h_used <- h.h_used + vcpus;
  if h.h_used > h.h_peak_used then h.h_peak_used <- h.h_used

let release h ~vcpus =
  h.h_used <- h.h_used - vcpus;
  if h.h_used < 0 then invalid_arg "Placement.release: negative occupancy"

let remove h r =
  h.h_residents <- List.filter (fun x -> x != r) h.h_residents;
  h.h_used <- h.h_used - r.r_vcpus;
  if h.h_used < 0 then invalid_arg "Placement.remove: negative occupancy"

(* The moment the host is expected to drain empty, per current
   predictions. An empty host drains "now". *)
let drain_end h ~now_sec =
  List.fold_left
    (fun acc r -> Float.max acc r.r_predicted_end_sec)
    now_sec h.h_residents

let utilization h = float_of_int h.h_used /. float_of_int h.h_capacity

(* Lifetime-aware score, lower is better (LAVA-style): placing the VM
   on host [h] extends the host's drain window by
   [max 0 (predicted_end - drain_end h)] seconds — aligned exits keep
   whole hosts draining together, freeing contiguous capacity for
   large late arrivals — plus a load-spreading penalty proportional
   to current utilization, which keeps any single host from absorbing
   all the LHP-stall pressure. *)
let la_score h ~now_sec ~predicted_end_sec ~penalty_sec =
  let extension = Float.max 0.0 (predicted_end_sec -. drain_end h ~now_sec) in
  extension +. (penalty_sec *. utilization h)

let choose policy views ~vcpus ~now_sec ~predicted_end_sec ~penalty_sec =
  let best = ref None in
  Array.iter
    (fun h ->
      if feasible h ~vcpus then
        let better =
          match (!best, policy) with
          | None, _ -> true
          | Some (b : host_view), First_fit -> h.h_id < b.h_id
          | Some b, Best_fit ->
            (* tightest remaining capacity, ties to the lowest id *)
            h.h_used > b.h_used || (h.h_used = b.h_used && h.h_id < b.h_id)
          | Some b, Lifetime_aware ->
            let sh = la_score h ~now_sec ~predicted_end_sec ~penalty_sec in
            let sb = la_score b ~now_sec ~predicted_end_sec ~penalty_sec in
            sh < sb || (sh = sb && h.h_id < b.h_id)
        in
        if better then best := Some h)
    views;
  Option.map (fun h -> h.h_id) !best
