(** The cluster consolidation-density experiment and its registry
    glue. Lives here rather than in {!Asman.Experiments} because the
    cluster layer depends on the [asman] library (and so cannot be
    depended on by it); the CLI appends {!experiment} to
    [Experiments.all]. *)

val hosts : int
val horizon_sec : float
val loads : int list

val experiment : Asman.Experiments.t
(** id ["cluster"]: VMs-per-host vs p99 LHP stall, Credit/ASMan/CON x
    first-fit/lifetime-aware, one point per offered load. *)

val registry_entries :
  Asman.Experiments.outcome -> (string * float) list
(** Flatten the outcome into ["cluster"]-section metric cells
    (density and p99 per series point), for the run registry. *)
