(* The consolidation-density figure: VMs-per-host vs worst-trace p99
   LHP stall, ASMan vs Credit vs static gang, first-fit vs
   lifetime-aware placement. Not a figure of the paper itself — it
   extends the single-host evaluation to fleet scale the way LAVA
   frames lifetime-aware consolidation — so [expected] stays empty
   and the notes carry the shape checks.

   Regime: many small (2x2) hosts at 3x slot overcommit with the
   rebalancer off, so placement is destiny. First-fit stacks arrivals
   on the lowest-id host with room; when a hot-lock guest lands on a
   stacked host, lock-holder preemption stretches its spin waits to
   tens of milliseconds. The lifetime-aware scorer's utilization
   penalty spreads that risk, so its worst-trace p99 stays flat while
   density grows. Each point pools [replicas] independent arrival
   traces and reports the worst per-trace p99 — the tenant-SLO view
   of a placement policy's risk. *)

let hosts = 8
let horizon_sec = 1.0
let overcommit = 3.0
let replicas = 5
let loads = [ 16; 28; 40 ]

(* Worst-trace p99 above this is a busted stall budget: an LHP storm
   (holder descheduled for whole timeslices), not lock queueing. *)
let stall_budget_ms = 1.0

let scheds =
  [
    ("credit", Asman.Config.Credit);
    ("asman", Asman.Config.Asman);
    ("con", Asman.Config.Cosched_static);
  ]

let policies =
  [ ("first-fit", Placement.First_fit); ("lifetime", Placement.Lifetime_aware) ]

let series_label sched_name policy_name =
  Printf.sprintf "%s/%s" sched_name policy_name

let replica_seed base r = Int64.add (Int64.mul base 1_000_003L) (Int64.of_int r)

let run_point config ~sched ~policy ~vms ~replica =
  let seed = replica_seed config.Asman.Config.seed replica in
  let config = { config with Asman.Config.seed } in
  let trace =
    Vtrace.generate
      ~max_vcpus:(Asman.Config.pcpus config)
      ~seed ~vms ~dist:Vtrace.Bimodal ~horizon_sec ()
  in
  let t =
    Cluster.build ~overcommit ~rebalance:false config ~sched ~policy ~hosts
      ~trace
  in
  (* workers:1 — the experiment harness already parallelizes across
     points, and the report is worker-count-invariant anyway *)
  Cluster.run ~workers:1 t ~horizon_sec

type point_summary = {
  ps_density : float;  (** mean over replicas *)
  ps_p99_ms : float;  (** worst replica's p99 *)
}

let summarize reports =
  let n = float_of_int (List.length reports) in
  {
    ps_density =
      List.fold_left (fun a (r : Cluster.report) -> a +. r.Cluster.cr_density)
        0.0 reports
      /. n;
    ps_p99_ms =
      List.fold_left
        (fun a (r : Cluster.report) -> Float.max a r.Cluster.cr_p99_stall_ms)
        0.0 reports;
  }

let run config =
  let config =
    {
      config with
      Asman.Config.topology = Sim_hw.Topology.make ~sockets:2 ~cores_per_socket:2;
    }
  in
  let points =
    List.concat_map
      (fun (sname, sched) ->
        List.concat_map
          (fun (pname, policy) ->
            List.concat_map
              (fun vms ->
                List.init replicas (fun r -> (sname, sched, pname, policy, vms, r)))
              loads)
          policies)
      scheds
  in
  let reports =
    Asman.Pool.map
      (fun (sname, sched, pname, policy, vms, r) ->
        ((sname, pname, vms), run_point config ~sched ~policy ~vms ~replica:r))
      points
  in
  let summary_of sname pname vms =
    summarize
      (List.filter_map
         (fun ((s, p, v), r) ->
           if s = sname && p = pname && v = vms then Some r else None)
         reports)
  in
  let series =
    List.map
      (fun (sname, _) ->
        List.map
          (fun (pname, _) ->
            let pts =
              List.map
                (fun vms ->
                  let s = summary_of sname pname vms in
                  (s.ps_density, s.ps_p99_ms))
                loads
            in
            Sim_stats.Series.make
              ~label:(series_label sname pname)
              ~x_name:"density (VMs per host)"
              ~y_name:"p99 stall, worst trace (ms)" pts)
          policies)
      scheds
    |> List.concat
  in
  (* The consolidation frontier: the densest operating point a policy
     sustains without busting the stall budget on any trace. *)
  let sustained sname pname =
    List.fold_left
      (fun acc vms ->
        let s = summary_of sname pname vms in
        if s.ps_p99_ms <= stall_budget_ms then Float.max acc s.ps_density
        else acc)
      0.0 loads
  in
  let notes =
    List.map
      (fun (sname, _) ->
        let la = sustained sname "lifetime" in
        let ff = sustained sname "first-fit" in
        Printf.sprintf
          "%s: at a %.1f ms worst-trace p99 stall budget, lifetime-aware \
           sustains %.2f VMs/host vs first-fit %.2f -> %s"
          sname stall_budget_ms la ff
          (if la > ff +. 0.01 then "lifetime-aware consolidates denser"
           else if ff > la +. 0.01 then "first-fit consolidates denser"
           else "parity"))
      scheds
    @ List.concat_map
        (fun (sname, _) ->
          List.map
            (fun vms ->
              let la = summary_of sname "lifetime" vms in
              let ff = summary_of sname "first-fit" vms in
              Printf.sprintf
                "%s load %d: lifetime %.2f VMs/host worst p99 %.2f ms | \
                 first-fit %.2f VMs/host worst p99 %.2f ms"
                sname vms la.ps_density la.ps_p99_ms ff.ps_density
                ff.ps_p99_ms)
            loads)
        scheds
  in
  { Asman.Experiments.series; expected = []; notes }

let experiment =
  {
    Asman.Experiments.id = "cluster";
    title =
      "Consolidation density: VMs per host vs worst-trace p99 LHP stall \
       across placement policies";
    description =
      "Simulated 8-host datacenter of small (2x2) hosts at 3x slot \
       overcommit, driven by seeded bimodal-lifetime arrival traces (5 \
       replicas per point, rebalancer off so placement is destiny); \
       first-fit bin-packing vs the LAVA-style lifetime-aware scorer under \
       Credit, ASMan and static gang scheduling. x is time-averaged \
       admitted VMs per host, y is the worst replica's p99 guest spin-wait \
       stall: first-fit's stacking turns lock-holder preemption into \
       tens-of-ms storms that the lifetime-aware spread avoids, and the \
       ASMan scheduler mitigates even under stacking.";
    run;
  }

(* Flatten an outcome of the cluster experiment into registry metric
   cells, mirroring [Experiments.fairness_entries] for theft: one
   density and one p99 entry per (sched, policy, load) point. *)
let registry_entries (outcome : Asman.Experiments.outcome) =
  List.concat_map
    (fun (s : Sim_stats.Series.t) ->
      List.concat
        (List.mapi
           (fun i (pt : Sim_stats.Series.point) ->
             let load =
               match List.nth_opt loads i with
               | Some l -> string_of_int l
               | None -> Printf.sprintf "p%d" i
             in
             [
               (Printf.sprintf "density %s L%s" s.Sim_stats.Series.label load,
                pt.Sim_stats.Series.x);
               (Printf.sprintf "p99 %s L%s" s.Sim_stats.Series.label load,
                pt.Sim_stats.Series.y);
             ])
           s.Sim_stats.Series.points))
    outcome.Asman.Experiments.series
