open Sim_engine

(* Id-counter strides keeping domain/vcpu ids globally unique across
   the hosts of a cluster (host k's VMM numbers domains from
   [k * domain_stride]); same scheme as {!Asman.Decouple}. *)
let domain_stride = 4096
let vcpu_stride = 65536

let mix_seed seed k =
  Int64.add (Int64.mul seed 1_000_003L) (Int64.of_int (k + 1))

(* Where a VM currently is, from the controller's point of view.
   Written only by controller (incubator-member) events; host events
   learn about ownership through mailbox deliveries. *)
type phase =
  | Incubating  (** trace entry not yet arrived *)
  | Pending  (** arrived, waiting in the admission queue *)
  | Placing of int  (** placement decided, initial copy in flight *)
  | Resident of int
  | Evicting of int  (** chosen for migration, awaiting source grant *)
  | Migrating of int * int  (** parked, stop-and-copy in flight *)
  | Departing of int  (** lifetime expired, draining on its host *)
  | Departed

let phase_name = function
  | Incubating -> "incubating"
  | Pending -> "pending"
  | Placing h -> Printf.sprintf "placing:%d" h
  | Resident h -> Printf.sprintf "resident:%d" h
  | Evicting h -> Printf.sprintf "evicting:%d" h
  | Migrating (a, b) -> Printf.sprintf "migrating:%d:%d" a b
  | Departing h -> Printf.sprintf "departing:%d" h
  | Departed -> "departed"

type unit_state = {
  cu_entry : Vtrace.entry;
  cu_kernel : Sim_guest.Kernel.t;
  cu_domain : Sim_vmm.Domain.t;
  cu_resident : Placement.resident;
      (** the controller's bookkeeping record; lives in exactly one
          host view while the VM is admitted *)
  cu_life_cycles : int;
  mutable cu_phase : phase;  (** controller-side only *)
  mutable cu_run_at : int;  (** controller ack of first launch; -1 *)
  mutable cu_departed_at : int;  (** -1 until departed *)
  mutable cu_migrations : int;  (** written by source-host grant events *)
  mutable cu_downtime : int;  (** cycles frozen in stop-and-copy *)
  mutable cu_repredictions : int;  (** controller-side *)
}

(* Per-host physical truth: mutated only by that host's own events
   (attach/detach), read by the coordinator after the run. *)
type host = {
  ho_index : int;
  ho_scenario : Asman.Scenario.t;
  mutable ho_resident : unit_state list;
}

type t = {
  config : Asman.Config.t;
  sched : Asman.Config.sched_kind;
  policy : Placement.policy;
  hosts : host array;
  incubator : Asman.Scenario.t;
  fabric : Fabric.t;
  units : unit_state array;
  by_name : (string, unit_state) Hashtbl.t;
  views : Placement.host_view array;  (** controller bookkeeping *)
  lookahead : int;
  freq : Units.freq;
  copy_cycles_per_mb : int;
  penalty_sec : float;
  rebalance : bool;
  rebalance_margin : int;
  mutable queue : unit_state list;  (** admission queue, arrival order *)
  mutable log_rev : (int * string) list;
  mutable placements : int;
  mutable deferrals : int;
  mutable evictions : int;
  mutable migrations : int;
  mutable nacks : int;
  mutable departures : int;
  mutable double_places : int;
  (* time-integrated admitted-VM count, for consolidation density *)
  mutable admitted : int;
  mutable last_change : int;
  mutable resident_integral : float;
}

let controller t = Array.length t.hosts

let inc_engine t = t.incubator.Asman.Scenario.engine
let inc_now t = Engine.now (inc_engine t)
let sec_of t cycles = Units.sec_of_cycles t.freq cycles
let now_sec t = sec_of t (inc_now t)

let logf t fmt =
  Printf.ksprintf (fun s -> t.log_rev <- (inc_now t, s) :: t.log_rev) fmt

let note_admitted_change t delta =
  let now = inc_now t in
  t.resident_integral <-
    t.resident_integral +. (float_of_int t.admitted *. float_of_int (now - t.last_change));
  t.admitted <- t.admitted + delta;
  t.last_change <- now

let copy_cycles t (u : unit_state) =
  u.cu_entry.Vtrace.e_footprint_mb * t.copy_cycles_per_mb

(* ----- controller-side bookkeeping transitions ----- *)

let rec ctrl_attached t u h ~first =
  if first then begin
    u.cu_phase <- Resident h;
    u.cu_run_at <- inc_now t;
    logf t "run %s host %d" u.cu_entry.Vtrace.e_name h;
    (* The lifetime clock starts at the launch ack; the controller
       owns the departure timer so it survives later migrations. *)
    let (_ : Engine.handle) =
      Engine.schedule_after (inc_engine t) ~delay:u.cu_life_cycles (fun () ->
          ctrl_depart t u)
    in
    ()
  end
  else begin
    (* stop-and-copy landed: turn the destination reservation into
       residency (same slot count, so occupancy is unchanged) *)
    Placement.release t.views.(h) ~vcpus:u.cu_entry.Vtrace.e_vcpus;
    Placement.admit t.views.(h) u.cu_resident;
    u.cu_phase <- Resident h;
    t.migrations <- t.migrations + 1;
    logf t "migrated %s host %d" u.cu_entry.Vtrace.e_name h
  end

and ctrl_depart t u =
  match u.cu_phase with
  | Resident h ->
    u.cu_phase <- Departing h;
    logf t "halt %s host %d" u.cu_entry.Vtrace.e_name h;
    let now = inc_now t in
    Fabric.post t.fabric ~src:(controller t) ~dst:h ~time:(now + t.lookahead)
      (fun () -> host_halt t u h)
  | Evicting _ | Migrating _ | Placing _ ->
    (* mid-migration; try again once the move settles *)
    let (_ : Engine.handle) =
      Engine.schedule_after (inc_engine t) ~delay:(2 * t.lookahead) (fun () ->
          ctrl_depart t u)
    in
    ()
  | Incubating | Pending | Departing _ | Departed -> ()

(* ----- host-side events ----- *)

and host_halt t u h =
  Sim_guest.Kernel.request_halt u.cu_kernel;
  let hs = t.hosts.(h) in
  let (_ : Engine.handle) =
    Engine.schedule_after hs.ho_scenario.Asman.Scenario.engine
      ~delay:t.lookahead (fun () -> host_depart_poll t u h)
  in
  ()

and host_depart_poll t u h =
  let hs = t.hosts.(h) in
  let vmm = hs.ho_scenario.Asman.Scenario.vmm in
  if
    Sim_guest.Kernel.quiescent u.cu_kernel
    && Sim_vmm.Vmm.sched_migratable vmm u.cu_domain
  then begin
    Sim_guest.Kernel.park u.cu_kernel;
    Sim_vmm.Vmm.detach_domain vmm u.cu_domain;
    hs.ho_resident <- List.filter (fun x -> x != u) hs.ho_resident;
    let now = Engine.now hs.ho_scenario.Asman.Scenario.engine in
    Fabric.post t.fabric ~src:h ~dst:(controller t) ~time:(now + t.lookahead)
      (fun () -> ctrl_departed t u h)
  end
  else
    let (_ : Engine.handle) =
      Engine.schedule_after hs.ho_scenario.Asman.Scenario.engine
        ~delay:t.lookahead (fun () -> host_depart_poll t u h)
    in
    ()

and ctrl_departed t u h =
  Placement.remove t.views.(h) u.cu_resident;
  u.cu_phase <- Departed;
  u.cu_departed_at <- inc_now t;
  t.departures <- t.departures + 1;
  note_admitted_change t (-1);
  logf t "depart %s host %d" u.cu_entry.Vtrace.e_name h;
  try_place_queue t

and host_attach t u h ~first =
  let hs = t.hosts.(h) in
  let vmm = hs.ho_scenario.Asman.Scenario.vmm in
  Sim_guest.Kernel.retarget u.cu_kernel ~vmm;
  Sim_vmm.Vmm.attach_domain vmm u.cu_domain;
  hs.ho_resident <- u :: hs.ho_resident;
  if first then Sim_guest.Kernel.launch u.cu_kernel
  else Sim_guest.Kernel.thaw u.cu_kernel;
  let now = Engine.now hs.ho_scenario.Asman.Scenario.engine in
  Fabric.post t.fabric ~src:h ~dst:(controller t) ~time:(now + t.lookahead)
    (fun () -> ctrl_attached t u h ~first)

(* Source side of a pressure migration, executing on the source
   host's engine. This is live migration of a running guest:
   [Kernel.request_freeze] drains it to quiescence with all state
   intact, the grant polls for the drain to land, and the domain then
   exists only inside the mailbox closure for the duration of the
   stop-and-copy (modeled as footprint-proportional mailbox latency).
   The destination thaws it on attach. *)
and host_release t u ~src ~dst =
  let hs = t.hosts.(src) in
  let now = Engine.now hs.ho_scenario.Asman.Scenario.engine in
  if
    List.memq u hs.ho_resident
    && not (Sim_guest.Kernel.halt_requested u.cu_kernel)
  then begin
    Sim_guest.Kernel.request_freeze u.cu_kernel;
    host_release_poll t u ~src ~dst ~frozen_at:now ~tries:0
  end
  else
    Fabric.post t.fabric ~src ~dst:(controller t) ~time:(now + t.lookahead)
      (fun () -> ctrl_migration_nack t u ~src ~dst)

and host_release_poll t u ~src ~dst ~frozen_at ~tries =
  let hs = t.hosts.(src) in
  let vmm = hs.ho_scenario.Asman.Scenario.vmm in
  let now = Engine.now hs.ho_scenario.Asman.Scenario.engine in
  if
    Sim_guest.Kernel.quiescent u.cu_kernel
    && Sim_vmm.Vmm.sched_migratable vmm u.cu_domain
  then begin
    Sim_guest.Kernel.park u.cu_kernel;
    Sim_vmm.Vmm.detach_domain vmm u.cu_domain;
    hs.ho_resident <- List.filter (fun x -> x != u) hs.ho_resident;
    let copy = copy_cycles t u in
    u.cu_migrations <- u.cu_migrations + 1;
    (* downtime = freeze drain + transit + stop-and-copy *)
    u.cu_downtime <- u.cu_downtime + (now - frozen_at) + t.lookahead + copy;
    Fabric.post t.fabric ~src ~dst ~time:(now + t.lookahead + copy) (fun () ->
        host_attach t u dst ~first:false);
    Fabric.post t.fabric ~src ~dst:(controller t) ~time:(now + t.lookahead)
      (fun () -> ctrl_migration_started t u ~src ~dst)
  end
  else if tries >= 64 then begin
    (* drain never landed (scheduler state pinned): resume in place *)
    Sim_guest.Kernel.thaw u.cu_kernel;
    Fabric.post t.fabric ~src ~dst:(controller t) ~time:(now + t.lookahead)
      (fun () -> ctrl_migration_nack t u ~src ~dst)
  end
  else
    let (_ : Engine.handle) =
      Engine.schedule_after hs.ho_scenario.Asman.Scenario.engine
        ~delay:t.lookahead (fun () ->
          host_release_poll t u ~src ~dst ~frozen_at ~tries:(tries + 1))
    in
    ()

and ctrl_migration_started t u ~src ~dst =
  Placement.remove t.views.(src) u.cu_resident;
  u.cu_phase <- Migrating (src, dst);
  logf t "copy %s %d->%d" u.cu_entry.Vtrace.e_name src dst;
  try_place_queue t

and ctrl_migration_nack t u ~src ~dst =
  (match u.cu_phase with
  | Evicting _ -> u.cu_phase <- Resident src
  | _ -> ());
  Placement.release t.views.(dst) ~vcpus:u.cu_entry.Vtrace.e_vcpus;
  t.nacks <- t.nacks + 1;
  logf t "nack %s %d->%d" u.cu_entry.Vtrace.e_name src dst

(* ----- placement ----- *)

and try_place t u =
  let now = inc_now t in
  let now_s = sec_of t now in
  let predicted_end = now_s +. u.cu_entry.Vtrace.e_predicted_sec in
  let vcpus = u.cu_entry.Vtrace.e_vcpus in
  match
    Placement.choose t.policy t.views ~vcpus ~now_sec:now_s
      ~predicted_end_sec:predicted_end ~penalty_sec:t.penalty_sec
  with
  | None -> false
  | Some h ->
    u.cu_resident.Placement.r_predicted_end_sec <- predicted_end;
    Placement.admit t.views.(h) u.cu_resident;
    t.placements <- t.placements + 1;
    note_admitted_change t 1;
    u.cu_phase <- Placing h;
    logf t "place %s host %d" u.cu_entry.Vtrace.e_name h;
    (if Sim_vmm.Mutation.enabled Sim_vmm.Mutation.Double_place then
       (* planted bug: admit the VM to a second feasible host's
          bookkeeping as well — the phantom residency corrupts the
          controller's capacity accounting and is what the SimCheck
          cluster-conservation oracle must catch *)
       let phantom = ref None in
       Array.iter
         (fun (v : Placement.host_view) ->
           if
             !phantom = None && v.Placement.h_id <> h
             && Placement.feasible v ~vcpus
           then phantom := Some v)
         t.views;
       match !phantom with
       | None -> ()
       | Some v ->
         Placement.admit v
           {
             Placement.r_name = u.cu_entry.Vtrace.e_name;
             r_vcpus = vcpus;
             r_predicted_end_sec = predicted_end;
           };
         t.double_places <- t.double_places + 1;
         logf t "place %s host %d (double)" u.cu_entry.Vtrace.e_name
           v.Placement.h_id);
    (* the VM incubates unlaunched, hence quiescent: park it out of
       the incubator and ship it to its host *)
    Sim_guest.Kernel.park u.cu_kernel;
    Sim_vmm.Vmm.detach_domain t.incubator.Asman.Scenario.vmm u.cu_domain;
    Fabric.post t.fabric ~src:(controller t) ~dst:h ~time:(now + t.lookahead)
      (fun () -> host_attach t u h ~first:true);
    true

and try_place_queue t =
  t.queue <- List.filter (fun u -> not (try_place t u)) t.queue

let arrive t u =
  u.cu_phase <- Pending;
  t.queue <- t.queue @ [ u ];
  try_place_queue t;
  if List.memq u t.queue then begin
    t.deferrals <- t.deferrals + 1;
    logf t "defer %s" u.cu_entry.Vtrace.e_name
  end

(* ----- pressure rebalance + lifetime repredict tick ----- *)

let repredict t =
  let now_s = now_sec t in
  Array.iter
    (fun u ->
      match u.cu_phase with
      | Resident _
        when u.cu_resident.Placement.r_predicted_end_sec <= now_s ->
        (* LAVA-style adaptation: the prediction expired but the VM is
           still running — extend by one predicted lifetime from now *)
        u.cu_resident.Placement.r_predicted_end_sec <-
          now_s +. u.cu_entry.Vtrace.e_predicted_sec;
        u.cu_repredictions <- u.cu_repredictions + 1
      | _ -> ())
    t.units

let migration_in_flight t =
  Array.exists
    (fun u ->
      match u.cu_phase with
      | Evicting _ | Migrating _ -> true
      | _ -> false)
    t.units

let rebalance_tick t =
  repredict t;
  if t.rebalance && not (migration_in_flight t) then begin
    let n = Array.length t.views in
    let src = ref 0 and dst = ref 0 in
    for i = 1 to n - 1 do
      if t.views.(i).Placement.h_used > t.views.(!src).Placement.h_used then
        src := i;
      if t.views.(i).Placement.h_used < t.views.(!dst).Placement.h_used then
        dst := i
    done;
    if !src <> !dst then begin
      let sv = t.views.(!src) and dv = t.views.(!dst) in
      (* best candidate: the largest Resident VM on the source whose
         move both fits the destination and strictly narrows the
         imbalance; ties break on the name for determinism *)
      let cand = ref None in
      List.iter
        (fun (r : Placement.resident) ->
          match Hashtbl.find_opt t.by_name r.Placement.r_name with
          | Some u when u.cu_phase = Resident !src ->
            let v = r.Placement.r_vcpus in
            if
              dv.Placement.h_used + v <= dv.Placement.h_capacity
              && sv.Placement.h_used - dv.Placement.h_used
                 >= max t.rebalance_margin (2 * v)
            then begin
              match !cand with
              | Some (b : unit_state)
                when b.cu_entry.Vtrace.e_vcpus > v
                     || (b.cu_entry.Vtrace.e_vcpus = v
                        && b.cu_entry.Vtrace.e_name
                           <= u.cu_entry.Vtrace.e_name) ->
                ()
              | _ -> cand := Some u
            end
          | _ -> ())
        sv.Placement.h_residents;
      match !cand with
      | None -> ()
      | Some u ->
        let s = !src and d = !dst in
        Placement.reserve dv ~vcpus:u.cu_entry.Vtrace.e_vcpus;
        u.cu_phase <- Evicting s;
        t.evictions <- t.evictions + 1;
        logf t "evict %s %d->%d" u.cu_entry.Vtrace.e_name s d;
        let now = inc_now t in
        Fabric.post t.fabric ~src:(controller t) ~dst:s
          ~time:(now + t.lookahead) (fun () -> host_release t u ~src:s ~dst:d)
    end
  end

(* ----- build ----- *)

let build ?(overcommit = 2.0) ?(penalty_sec = 0.75) ?(rebalance = true)
    ?(rebalance_margin = 4) config ~sched ~policy ~hosts:nhosts ~trace =
  if nhosts < 1 then invalid_arg "Cluster.build: hosts < 1";
  if trace = [] then invalid_arg "Cluster.build: empty trace";
  if not (Sim_faults.Fault.is_none config.Asman.Config.faults) then
    invalid_arg "Cluster.build: fault injection is per-host only";
  let pcpus = Asman.Config.pcpus config in
  List.iter
    (fun (e : Vtrace.entry) ->
      if e.Vtrace.e_vcpus > pcpus then
        invalid_arg
          (Printf.sprintf "Cluster.build: %s has %d VCPUs but hosts have %d \
                           PCPUs" e.Vtrace.e_name e.Vtrace.e_vcpus pcpus))
    trace;
  let lookahead = Sim_hw.Cpu_model.slot_cycles config.Asman.Config.cpu in
  let freq = Asman.Config.freq config in
  let sub_config k topology =
    {
      config with
      Asman.Config.topology;
      seed = mix_seed config.Asman.Config.seed k;
      sim_jobs = 1;
      decouple = false;
      (* members run dark: tracing and the obs hub are process-shared
         surfaces the engines would race on *)
      obs = { config.Asman.Config.obs with Asman.Config.trace_mask = 0; hub = false };
    }
  in
  let hosts =
    Array.init nhosts (fun k ->
        let scen =
          Asman.Scenario.build
            ~domain_id_base:(k * domain_stride)
            ~vcpu_id_base:(k * vcpu_stride)
            (sub_config k config.Asman.Config.topology)
            ~sched
            ~vms:
              [
                (* an idle sentinel keeps the host scenario well-formed;
                   it has no kernel and never wakes *)
                {
                  Asman.Scenario.vm_name = "idle";
                  weight = 256;
                  vcpus = 1;
                  workload = None;
                };
              ]
        in
        { ho_index = k; ho_scenario = scen; ho_resident = [] })
  in
  let inc_config =
    sub_config nhosts (Sim_hw.Topology.make ~sockets:1 ~cores_per_socket:1)
  in
  let incubator =
    Asman.Scenario.build
      ~domain_id_base:(nhosts * domain_stride)
      ~vcpu_id_base:(nhosts * vcpu_stride)
      ~launch:false inc_config ~sched
      ~vms:
        (List.map
           (fun (e : Vtrace.entry) ->
             {
               Asman.Scenario.vm_name = e.Vtrace.e_name;
               weight = e.Vtrace.e_weight;
               vcpus = e.Vtrace.e_vcpus;
               workload =
                 Some
                   (Asman.Scenario.workload_of_desc inc_config
                      e.Vtrace.e_workload);
             })
           trace)
  in
  let units =
    Array.of_list
      (List.map
         (fun (e : Vtrace.entry) ->
           let inst = Asman.Scenario.find_vm incubator e.Vtrace.e_name in
           let kernel =
             match inst.Asman.Scenario.kernel with
             | Some k -> k
             | None ->
               invalid_arg
                 (Printf.sprintf "Cluster.build: %s has no kernel"
                    e.Vtrace.e_name)
           in
           {
             cu_entry = e;
             cu_kernel = kernel;
             cu_domain = inst.Asman.Scenario.domain;
             cu_resident =
               {
                 Placement.r_name = e.Vtrace.e_name;
                 r_vcpus = e.Vtrace.e_vcpus;
                 r_predicted_end_sec = 0.0;
               };
             cu_life_cycles = Units.cycles_of_sec_f freq e.Vtrace.e_life_sec;
             cu_phase = Incubating;
             cu_run_at = -1;
             cu_departed_at = -1;
             cu_migrations = 0;
             cu_downtime = 0;
             cu_repredictions = 0;
           })
         trace)
  in
  let by_name = Hashtbl.create 64 in
  Array.iter (fun u -> Hashtbl.replace by_name u.cu_entry.Vtrace.e_name u) units;
  let capacity = int_of_float (overcommit *. float_of_int pcpus) in
  let views =
    Array.init nhosts (fun k -> Placement.make_view ~id:k ~capacity)
  in
  let engines =
    Array.append
      (Array.map (fun h -> h.ho_scenario.Asman.Scenario.engine) hosts)
      [| incubator.Asman.Scenario.engine |]
  in
  let fabric = Fabric.create ~lookahead engines in
  let t =
    {
      config;
      sched;
      policy;
      hosts;
      incubator;
      fabric;
      units;
      by_name;
      views;
      lookahead;
      freq;
      copy_cycles_per_mb = Units.cycles_of_us freq 100;
      penalty_sec;
      rebalance;
      rebalance_margin;
      queue = [];
      log_rev = [];
      placements = 0;
      deferrals = 0;
      evictions = 0;
      migrations = 0;
      nacks = 0;
      departures = 0;
      double_places = 0;
      admitted = 0;
      last_change = 0;
      resident_integral = 0.0;
    }
  in
  (* arrivals fire on the controller's engine at their trace times *)
  Array.iter
    (fun u ->
      let at =
        max 1 (Units.cycles_of_sec_f freq u.cu_entry.Vtrace.e_arrive_sec)
      in
      let (_ : Engine.handle) =
        Engine.schedule_at (inc_engine t) ~time:at (fun () -> arrive t u)
      in
      ())
    t.units;
  let (_ : unit -> unit) =
    Engine.periodic (inc_engine t) ~start:(4 * lookahead)
      ~period:(4 * lookahead) (fun () -> rebalance_tick t)
  in
  t

(* ----- run + report ----- *)

type vm_report = {
  v_name : string;
  v_phase : string;
  v_vcpus : int;
  v_run_at : int;
  v_life_cycles : int;
  v_departed_at : int;
  v_migrations : int;
  v_downtime_cycles : int;
  v_repredictions : int;
}

type host_report = {
  h_host : int;
  h_peak_used : int;
  h_physical : string list;  (** VMs attached to the host at the end *)
  h_view : string list;  (** controller bookkeeping for the host *)
}

type report = {
  cr_hosts : int;
  cr_workers : int;
  cr_policy : string;
  cr_wall_sec : float;
  cr_sim_sec : float;
  cr_end_cycles : int;
  cr_events : int;
  cr_windows : int;
  cr_cross_posts : int;
  cr_density : float;
  cr_p99_stall_ms : float;
  cr_mean_stall_ms : float;
  cr_stall_samples : int;
  cr_stall_tail : (int * int) list;
  cr_placements : int;
  cr_deferrals : int;
  cr_evictions : int;
  cr_migrations : int;
  cr_nacks : int;
  cr_departures : int;
  cr_repredictions : int;
  cr_double_places : int;
  cr_log : (int * string) list;
  cr_digest : int;
  cr_fingerprint : string;
  cr_vms : vm_report list;
  cr_host_reports : host_report list;
}

let stall_histogram t =
  Array.fold_left
    (fun acc u ->
      Sim_stats.Histogram.merge acc
        (Sim_guest.Monitor.spin_histogram (Sim_guest.Kernel.monitor u.cu_kernel)))
    (Sim_stats.Histogram.create ()) t.units

(* p99 over real (non-zero) spin waits, HDR-style: locate the
   power-of-two bucket holding the 99th-percentile sample, then
   interpolate its position linearly inside the bucket so tail shifts
   smaller than a full doubling still move the estimate. *)
let p99_cycles hist =
  let positive = Sim_stats.Histogram.count_ge_pow2 hist 1 in
  if positive = 0 then 0.0
  else begin
    let target = 0.99 *. float_of_int positive in
    let k = ref 1 and cum = ref 0 in
    while
      !k < 62
      && float_of_int (!cum + Sim_stats.Histogram.bucket hist !k) < target
    do
      cum := !cum + Sim_stats.Histogram.bucket hist !k;
      incr k
    done;
    let in_bucket = Sim_stats.Histogram.bucket hist !k in
    let frac =
      if in_bucket = 0 then 0.0
      else (target -. float_of_int !cum) /. float_of_int in_bucket
    in
    float_of_int (1 lsl !k) *. (1.0 +. frac)
  end

let log_digest log =
  List.fold_left
    (fun acc (time, s) -> (acc * 1_000_003) lxor time lxor Hashtbl.hash s)
    0x6d5a log

let placement_log t = List.rev t.log_rev

let digest t =
  Fabric.digest t.fabric lxor log_digest (placement_log t)

let run ?workers t ~horizon_sec =
  let limit = Units.cycles_of_sec_f t.freq horizon_sec in
  let wall0 = Unix.gettimeofday () in
  Fabric.run ?workers ~until:limit
    ~stop:(fun () ->
      Array.for_all (fun u -> u.cu_phase = Departed) t.units)
    t.fabric;
  let wall = Unix.gettimeofday () -. wall0 in
  (* close the density integral at the controller's final clock *)
  note_admitted_change t 0;
  let end_cycles = max 1 (inc_now t) in
  let sim_end =
    Array.fold_left
      (fun acc (h : host) ->
        max acc (Engine.now h.ho_scenario.Asman.Scenario.engine))
      (inc_now t) t.hosts
  in
  let hist = stall_histogram t in
  let n = Array.length t.hosts in
  let density =
    t.resident_integral /. float_of_int end_cycles /. float_of_int n
  in
  let log = placement_log t in
  {
    cr_hosts = n;
    cr_workers =
      (match workers with
      | Some w -> max 1 (min w (n + 1))
      | None -> max 1 (min (n + 1) (Stdlib.Domain.recommended_domain_count ())));
    cr_policy = Placement.policy_name t.policy;
    cr_wall_sec = wall;
    cr_sim_sec = Units.sec_of_cycles t.freq sim_end;
    cr_end_cycles = end_cycles;
    cr_events = Fabric.events_fired t.fabric;
    cr_windows = Fabric.windows t.fabric;
    cr_cross_posts = Fabric.cross_posts t.fabric;
    cr_density = density;
    cr_p99_stall_ms = Units.ms_of_cycles t.freq 1 *. p99_cycles hist;
    cr_mean_stall_ms =
      (if Sim_stats.Histogram.count hist = 0 then 0.0
       else
         Units.ms_of_cycles t.freq 1
         *. (float_of_int (Sim_stats.Histogram.sum hist)
            /. float_of_int (Sim_stats.Histogram.count hist)));
    cr_stall_samples = Sim_stats.Histogram.count hist;
    cr_stall_tail =
      List.map
        (fun k -> (k, Sim_stats.Histogram.count_ge_pow2 hist k))
        [ 10; 15; 20; 25 ];
    cr_placements = t.placements;
    cr_deferrals = t.deferrals;
    cr_evictions = t.evictions;
    cr_migrations = t.migrations;
    cr_nacks = t.nacks;
    cr_departures = t.departures;
    cr_repredictions =
      Array.fold_left (fun acc u -> acc + u.cu_repredictions) 0 t.units;
    cr_double_places = t.double_places;
    cr_log = log;
    cr_digest = digest t;
    cr_fingerprint = Fabric.fingerprint t.fabric;
    cr_vms =
      Array.to_list
        (Array.map
           (fun u ->
             {
               v_name = u.cu_entry.Vtrace.e_name;
               v_phase = phase_name u.cu_phase;
               v_vcpus = u.cu_entry.Vtrace.e_vcpus;
               v_run_at = u.cu_run_at;
               v_life_cycles = u.cu_life_cycles;
               v_departed_at = u.cu_departed_at;
               v_migrations = u.cu_migrations;
               v_downtime_cycles = u.cu_downtime;
               v_repredictions = u.cu_repredictions;
             })
           t.units);
    cr_host_reports =
      Array.to_list
        (Array.map
           (fun (h : host) ->
             {
               h_host = h.ho_index;
               h_peak_used = t.views.(h.ho_index).Placement.h_peak_used;
               h_physical =
                 List.sort compare
                   (List.map
                      (fun u -> u.cu_entry.Vtrace.e_name)
                      h.ho_resident);
               h_view =
                 List.sort compare
                   (List.map
                      (fun (r : Placement.resident) -> r.Placement.r_name)
                      t.views.(h.ho_index).Placement.h_residents);
             })
           t.hosts);
  }

(* ----- cluster-conservation oracle ----- *)

(* Slack granted to in-flight drains when judging "this VM should
   have departed by now": covers the controller's mid-migration
   retries, the stop-and-copy latency, the guest's halt drain under
   overcommit, and the quiescence polling cadence. *)
let departure_slack t = 30 * t.lookahead

let conservation_errors t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n = Array.length t.hosts in
  let physical = Array.map (fun h -> h.ho_resident) t.hosts in
  let phys_names k =
    List.map (fun u -> u.cu_entry.Vtrace.e_name) physical.(k)
  in
  let view_names k =
    List.map
      (fun (r : Placement.resident) -> r.Placement.r_name)
      t.views.(k).Placement.h_residents
  in
  let mem name l = List.exists (String.equal name) l in
  let count name l =
    List.length (List.filter (String.equal name) l)
  in
  (* no VM on two hosts, physically or in the controller's books *)
  Array.iter
    (fun u ->
      let name = u.cu_entry.Vtrace.e_name in
      let phys_on = List.filter (fun k -> mem name (phys_names k)) (List.init n Fun.id) in
      let view_on = List.filter (fun k -> mem name (view_names k)) (List.init n Fun.id) in
      if List.length phys_on > 1 then
        err "%s physically resident on hosts %s" name
          (String.concat "," (List.map string_of_int phys_on));
      if List.length view_on > 1 then
        err "%s in the controller's books on hosts %s (duplicated)" name
          (String.concat "," (List.map string_of_int view_on));
      List.iter
        (fun k ->
          if count name (view_names k) > 1 then
            err "%s appears twice in host %d's books" name k)
        view_on;
      (* phase-consistency between books and physical truth *)
      (match u.cu_phase with
      | Incubating | Pending ->
        if phys_on <> [] then err "%s is %s but attached to a host" name (phase_name u.cu_phase);
        if view_on <> [] then err "%s is %s but in the books" name (phase_name u.cu_phase)
      | Placing h ->
        if view_on <> [ h ] then
          err "%s placing on host %d but booked on [%s]" name h
            (String.concat "," (List.map string_of_int view_on));
        if phys_on <> [] && phys_on <> [ h ] then
          err "%s placing on host %d but attached to [%s]" name h
            (String.concat "," (List.map string_of_int phys_on))
      | Resident h ->
        if view_on <> [ h ] then
          err "%s on host %d per phase but booked on [%s]" name h
            (String.concat "," (List.map string_of_int view_on));
        if phys_on <> [ h ] then
          err "%s on host %d per phase but attached to [%s]" name h
            (String.concat "," (List.map string_of_int phys_on))
      | Departing h | Evicting h ->
        if view_on <> [ h ] then
          err "%s on host %d per phase but booked on [%s]" name h
            (String.concat "," (List.map string_of_int view_on));
        (* the host detaches as soon as the drain lands; until the
           controller's ack arrives one lookahead later the VM is
           legitimately attached nowhere *)
        if phys_on <> [ h ] && phys_on <> [] then
          err "%s leaving host %d but attached to [%s]" name h
            (String.concat "," (List.map string_of_int phys_on))
      | Migrating (_, d) ->
        if view_on <> [] then
          err "%s mid-migration but still in the books on [%s]" name
            (String.concat "," (List.map string_of_int view_on));
        if phys_on <> [] && phys_on <> [ d ] then
          err "%s mid-migration but attached to [%s]" name
            (String.concat "," (List.map string_of_int phys_on))
      | Departed ->
        if phys_on <> [] then err "%s departed but still attached" name;
        if view_on <> [] then err "%s departed but still in the books" name))
    t.units;
  (* capacity was never oversubscribed in the books *)
  Array.iter
    (fun (v : Placement.host_view) ->
      if v.Placement.h_peak_used > v.Placement.h_capacity then
        err "host %d peak occupancy %d exceeds capacity %d" v.Placement.h_id
          v.Placement.h_peak_used v.Placement.h_capacity)
    t.views;
  (* departures match the trace: never early, and never missing once
     the lifetime (plus drain slack) fits inside the run *)
  let end_now = inc_now t in
  Array.iter
    (fun u ->
      let name = u.cu_entry.Vtrace.e_name in
      if u.cu_departed_at >= 0 && u.cu_run_at >= 0
         && u.cu_departed_at < u.cu_run_at + u.cu_life_cycles
      then
        err "%s departed early (at %d, lifetime ends %d)" name
          u.cu_departed_at (u.cu_run_at + u.cu_life_cycles);
      if
        u.cu_run_at >= 0 && u.cu_phase <> Departed
        && u.cu_run_at + u.cu_life_cycles + departure_slack t < end_now
      then
        err "%s should have departed by %d but is %s at %d" name
          (u.cu_run_at + u.cu_life_cycles + departure_slack t)
          (phase_name u.cu_phase) end_now)
    t.units;
  (* the log is exactly-once: one place and at most one depart per VM *)
  let log = placement_log t in
  Array.iter
    (fun u ->
      let name = u.cu_entry.Vtrace.e_name in
      let count_prefix prefix =
        List.length
          (List.filter (fun (_, s) -> String.starts_with ~prefix s) log)
      in
      (* the trailing space/keyword keeps "vm1" from matching "vm10" *)
      let places = count_prefix (Printf.sprintf "place %s host" name) in
      let departs = count_prefix (Printf.sprintf "depart %s " name) in
      if u.cu_run_at >= 0 && places <> 1 then
        err "%s placed %d times in the log" name places;
      if departs > 1 then err "%s departed %d times in the log" name departs;
      if u.cu_phase = Departed && departs = 0 then
        err "%s departed with no log entry" name)
    t.units;
  List.rev !errs
