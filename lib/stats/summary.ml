type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let cv t = stddev t /. mean t

let min_value t = t.min_v

let max_value t = t.max_v

let of_array values =
  let t = create () in
  Array.iter (add t) values;
  t

let percentile values p =
  let n = Array.length values in
  if n = 0 then invalid_arg "Summary.percentile: empty array";
  if p < 0. || p > 1. then invalid_arg "Summary.percentile: p out of [0,1]";
  let sorted = Array.copy values in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end
