(** Plain-text table and bar-chart rendering for benchmark reports. *)

val render : headers:string list -> string list list -> string
(** [render ~headers rows] is an aligned, boxed ASCII table. Rows
    shorter than [headers] are padded with empty cells. *)

val render_series : Series.t list -> string
(** Render series sharing an x axis as one table: first column x,
    one column per series. *)

val bar_chart : ?width:int -> (string * float) list -> string
(** Horizontal ASCII bar chart, scaled to the maximum value. *)

val fixed : ?decimals:int -> float -> string
(** Format a float with a fixed number of decimals (default 2); [nan]
    renders as ["-"]. *)
