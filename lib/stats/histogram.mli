(** Power-of-two bucketed histogram of non-negative integer samples.

    Used for spinlock waiting-time distributions: the paper reports
    counts of waits exceeding 2^10, 2^15, 2^20 and 2^25 CPU cycles.
    Bucket [k] holds samples [v] with [log2_floor (max v 1) = k]. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** [add t v] records one sample. Raises [Invalid_argument] if
    [v < 0]. *)

val count : t -> int
(** Total samples recorded. *)

val sum : t -> int

val min_value : t -> int option
val max_value : t -> int option

val bucket : t -> int -> int
(** [bucket t k] is the number of samples with [log2_floor = k],
    [0 <= k <= 62]. *)

val count_ge_pow2 : t -> int -> int
(** [count_ge_pow2 t k] is the number of samples in buckets [>= k],
    i.e. samples known to be [>= 2{^k}]. Exact for power-of-two
    thresholds because bucket [k] contains exactly the samples in
    [\[2{^k}, 2{^k+1})]. *)

val merge : t -> t -> t
(** Pointwise sum; inputs are unchanged. *)

val mean : t -> float
(** Mean of exact sample values ([nan] when empty). *)

val pp : Format.formatter -> t -> unit
(** One line per non-empty bucket. *)
