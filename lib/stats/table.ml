let fixed ?(decimals = 2) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render ~headers rows =
  let ncols = List.length headers in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let line sep =
    let parts = Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths) in
    sep ^ String.concat sep parts ^ sep
  in
  let render_row cells =
    let parts = List.mapi (fun i c -> " " ^ pad widths.(i) c ^ " ") cells in
    "|" ^ String.concat "|" parts ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line "+");
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line "+");
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line "+");
  Buffer.contents buf

let render_series series =
  match series with
  | [] -> render ~headers:[ "(empty)" ] []
  | first :: _ ->
    let headers = first.Series.x_name :: List.map (fun s -> s.Series.label) series in
    let xs =
      List.sort_uniq compare (List.concat_map (fun s -> Series.xs s) series)
    in
    let row x =
      fixed ~decimals:1 x
      :: List.map
           (fun s ->
             match Series.y_at s x with
             | Some y -> fixed ~decimals:2 y
             | None -> "-")
           series
    in
    render ~headers (List.map row xs)

let bar_chart ?(width = 40) entries =
  let max_v = List.fold_left (fun acc (_, v) -> max acc v) 0. entries in
  let max_label =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let n =
        if max_v <= 0. then 0
        else int_of_float (Float.round (v /. max_v *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s | %s %s\n" (pad max_label label) (String.make n '#')
           (fixed v)))
    entries;
  Buffer.contents buf
