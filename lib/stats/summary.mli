(** Streaming univariate summary statistics (Welford's algorithm). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Sample (unbiased) variance; [nan] with fewer than two samples. *)

val stddev : t -> float

val cv : t -> float
(** Coefficient of variation: [stddev /. mean]. *)

val min_value : t -> float
val max_value : t -> float

val of_array : float array -> t

val percentile : float array -> float -> float
(** [percentile values p] for [p] in [\[0, 1\]] computes the
    linearly-interpolated percentile of a copy of [values]. Raises
    [Invalid_argument] on an empty array or out-of-range [p]. *)
