let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string row = String.concat "," (List.map escape row)

let to_string rows = String.concat "\n" (List.map row_to_string rows) ^ "\n"

let write oc rows = output_string oc (to_string rows)

let of_series series =
  match series with
  | [] -> []
  | first :: _ ->
    let header = first.Series.x_name :: List.map (fun s -> s.Series.label) series in
    let xs = List.sort_uniq compare (List.concat_map Series.xs series) in
    let row x =
      Printf.sprintf "%g" x
      :: List.map
           (fun s ->
             match Series.y_at s x with
             | Some y -> Printf.sprintf "%g" y
             | None -> "")
           series
    in
    header :: List.map row xs
