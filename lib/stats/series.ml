type point = { x : float; y : float }

type t = { label : string; x_name : string; y_name : string; points : point list }

let make ~label ~x_name ~y_name pts =
  { label; x_name; y_name; points = List.map (fun (x, y) -> { x; y }) pts }

let points s = List.map (fun p -> (p.x, p.y)) s.points

let ys s = List.map (fun p -> p.y) s.points

let xs s = List.map (fun p -> p.x) s.points

let y_at s x =
  List.find_map (fun p -> if p.x = x then Some p.y else None) s.points

let map_y s ~f = { s with points = List.map (fun p -> { p with y = f p.y }) s.points }

let ratio a b =
  let pts =
    List.filter_map
      (fun p ->
        match y_at b p.x with
        | Some denom when denom <> 0. -> Some (p.x, p.y /. denom)
        | Some _ | None -> None)
      a.points
  in
  make ~label:(a.label ^ "/" ^ b.label) ~x_name:a.x_name ~y_name:"ratio" pts
