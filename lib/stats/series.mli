(** Labeled data series: the unit of figure reproduction.

    Each paper figure is regenerated as one or more [Series.t] values
    (e.g. "LU run time under Credit" with x = VCPU online rate and
    y = seconds), rendered by {!Table} and {!Csv}. *)

type point = { x : float; y : float }

type t = { label : string; x_name : string; y_name : string; points : point list }

val make : label:string -> x_name:string -> y_name:string -> (float * float) list -> t

val points : t -> (float * float) list

val ys : t -> float list
val xs : t -> float list

val y_at : t -> float -> float option
(** [y_at s x] is the y value of the first point with that exact x. *)

val map_y : t -> f:(float -> float) -> t

val ratio : t -> t -> t
(** [ratio a b] divides [a]'s y values by [b]'s, matching points by x.
    Points with no x-match in [b] are dropped. Label is
    ["a/b"]. *)
