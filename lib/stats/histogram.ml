type t = {
  buckets : int array; (* index = log2_floor of the sample, 63 buckets *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let nbuckets = 63

let create () =
  { buckets = Array.make nbuckets 0; count = 0; sum = 0; min_v = max_int; max_v = -1 }

let add t v =
  if v < 0 then invalid_arg "Histogram.add: negative sample";
  let k = Sim_engine.Units.log2_floor (max v 1) in
  t.buckets.(k) <- t.buckets.(k) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then None else Some t.min_v

let max_value t = if t.count = 0 then None else Some t.max_v

let bucket t k =
  if k < 0 || k >= nbuckets then invalid_arg "Histogram.bucket: index out of range";
  t.buckets.(k)

let count_ge_pow2 t k =
  if k < 0 || k >= nbuckets then invalid_arg "Histogram.count_ge_pow2: out of range";
  let acc = ref 0 in
  for i = k to nbuckets - 1 do
    acc := !acc + t.buckets.(i)
  done;
  !acc

let merge a b =
  let out = create () in
  for i = 0 to nbuckets - 1 do
    out.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  out.count <- a.count + b.count;
  out.sum <- a.sum + b.sum;
  out.min_v <- min a.min_v b.min_v;
  out.max_v <- max a.max_v b.max_v;
  out

let mean t = if t.count = 0 then nan else float_of_int t.sum /. float_of_int t.count

let pp fmt t =
  Format.fprintf fmt "histogram (%d samples)@." t.count;
  for k = 0 to nbuckets - 1 do
    if t.buckets.(k) > 0 then
      Format.fprintf fmt "  [2^%-2d, 2^%-2d): %d@." k (k + 1) t.buckets.(k)
  done
