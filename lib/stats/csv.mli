(** Minimal CSV output (RFC-4180 quoting) for exporting figure data. *)

val escape : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val row_to_string : string list -> string

val write : out_channel -> string list list -> unit

val to_string : string list list -> string

val of_series : Series.t list -> string list list
(** Header row (x name + labels) followed by one row per distinct x. *)
