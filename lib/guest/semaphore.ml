type t = {
  sem_id : int;
  mutable count : int;
  mutable waiters : (Thread.t * int) list;
  mutable waits : int;
  mutable blocked : int;
}

let create ~id ~init =
  if init < 0 then invalid_arg "Semaphore.create: negative count";
  { sem_id = id; count = init; waiters = []; waits = 0; blocked = 0 }

let id t = t.sem_id

let count t = t.count

let try_wait t =
  if t.count > 0 then begin
    t.count <- t.count - 1;
    t.waits <- t.waits + 1;
    true
  end
  else false

let enqueue_waiter t thread ~now =
  if List.exists (fun (w, _) -> w == thread) t.waiters then
    invalid_arg "Semaphore.enqueue_waiter: already waiting";
  t.waiters <- t.waiters @ [ (thread, now) ];
  t.blocked <- t.blocked + 1

let post t =
  match t.waiters with
  | [] ->
    t.count <- t.count + 1;
    None
  | (w, since) :: rest ->
    t.waiters <- rest;
    t.waits <- t.waits + 1;
    Some (w, since)

let waiter_count t = List.length t.waiters

let waits t = t.waits

let blocked_waits t = t.blocked
