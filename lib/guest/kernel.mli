(** Guest kernel for one VM.

    Owns the VM's threads, synchronization objects, per-VCPU guest
    scheduler and Monitoring Module, and implements the execution
    machinery: it receives online/offline notifications through the
    VCPU hooks and advances threads by scheduling engine events for
    compute spans, lock handoffs and barrier releases.

    Execution model highlights:
    - All timed work is a [pending_compute] span plus a resume point,
      so VMM preemption at any instant is loss-free.
    - Spinning threads occupy their VCPU (burning its credit) and are
      never timesliced away by the guest — kernel spinlock semantics,
      the precondition for lock-holder preemption.
    - A spinlock released while some waiter's VCPU is online is handed
      over after the cache-handoff latency; otherwise it stays free
      until a waiter's VCPU comes back online. Waiting times are
      measured in wall-clock cycles and reported to the
      {!Monitor} — over-threshold waits raise VCRD via hypercall. *)

type params = {
  instr_overhead : int;  (** cycles charged per synchronization instruction *)
  handoff : int;  (** contended lock handoff latency, cycles *)
  flag_latency : int;  (** barrier-release observation latency, cycles *)
  timeslice : int;  (** guest scheduler timeslice, cycles *)
  spin_grace : int;
      (** barrier busy-wait budget per online span before the thread
          futex-sleeps (OpenMP/libgomp spin-then-block). Kernel
          {e spinlocks} never block — that asymmetry is the paper's
          entire subject. *)
  ple_window : int;
      (** cycles of continuous busy-spinning after which the modelled
          processor raises a pause-loop exit to the VMM (0 disables).
          Feeds the out-of-VM ASMan variant; harmless elsewhere. *)
  monitor : Monitor.params;
}

val default_params : Sim_hw.Cpu_model.t -> params
(** ~80-cycle instruction overhead, the model's cache-handoff latency,
    ~300-cycle flag latency, 4 ms timeslice, 10 ms spin grace (2008-era
    libgomp active-wait behaviour). *)

type t

val create :
  ?params:params -> Sim_vmm.Vmm.t -> Sim_vmm.Domain.t -> unit -> t
(** Installs hooks on the domain's VCPUs. One kernel per domain. *)

val vmm : t -> Sim_vmm.Vmm.t
val domain : t -> Sim_vmm.Domain.t
val monitor : t -> Monitor.t
val hypercall : t -> Sim_vmm.Hypercall.t
val params : t -> params

(** {2 Synchronization objects} *)

val add_semaphore : t -> id:int -> init:int -> unit
val add_barrier : t -> id:int -> parties:int -> unit

val lock_stats : t -> (int * Spinlock.t) list
(** All guest-kernel spinlocks (user locks and barrier-internal
    locks), keyed by id. *)

val barrier_stats : t -> (int * Barrier.t) list

(** {2 Threads} *)

val add_thread :
  t -> ?restart:bool -> affinity:int -> Program.t -> Thread.t
(** [affinity] is taken modulo the domain's VCPU count. [restart]
    makes the thread begin a new round when its program ends
    (throughput workloads). Must be called before {!launch}. Raises
    [Invalid_argument] if the program references an undeclared
    semaphore or barrier. *)

val threads : t -> Thread.t list

val set_round_hook : t -> (Thread.t -> round:int -> duration:int -> unit) -> unit
(** Called whenever a thread completes one full pass of its program. *)

val set_finished_hook : t -> (Thread.t -> unit) -> unit
(** Called when a non-restarting thread finishes for good. *)

val launch : t -> unit
(** Wake every VCPU that has an executable thread. Requires the VMM to
    have been started (or to be started before the engine runs). *)

(** {2 Decoupled-VMM domain migration} *)

val quiescent : t -> bool
(** The kernel-side quiescence gate: no VCPU online and no untracked
    kernel timer (sleep wake, lock handoff, barrier release, PLE
    window, spin-grace fallback) in flight — i.e. the kernel owns
    zero pending events on its current engine, so the domain may
    leave this host. *)

val request_halt : t -> unit
(** Ask the guest to drain: every thread retires at its next
    instruction boundary (lock holders unwind their critical sections
    first so waiters are never orphaned), after which the domain
    converges to {!quiescent} without outside help. Idempotent;
    callers poll {!quiescent} to learn when the drain has landed.
    Used by the cluster layer to complete trace departures. *)

val halt_requested : t -> bool
(** Whether {!request_halt} has been called. *)

val request_freeze : t -> unit
(** Reversible sibling of {!request_halt} for stop-and-copy migration
    of a {e running} guest: every thread pauses at its next
    instruction boundary (lock holders unwind first, pending sleeps
    fire out) and the domain converges to {!quiescent} with all guest
    state intact. Idempotent; callers poll {!quiescent}. *)

val freeze_requested : t -> bool
(** Whether {!request_freeze} has been called (and no {!thaw} yet). *)

val thaw : t -> unit
(** Resume a frozen guest: clear the freeze and wake every paused
    thread, which refetches from the cursor it froze at. Run on the
    destination host after {!retarget} + [Vmm.attach_domain] — no
    guest progress is lost across the migration. *)

val park : t -> unit
(** Source-side half of a migration: verify {!quiescent} (fails
    otherwise) and cancel the monitor's pending window event on the
    source engine. Call before {!Sim_vmm.Vmm.detach_domain}. *)

val retarget : t -> vmm:Sim_vmm.Vmm.t -> unit
(** Destination-side half: re-point the kernel, its monitor and its
    hypercall channel at the domain's new host. Fails unless
    {!quiescent}. The caller pairs {!park}/[detach_domain] on the
    source with [retarget]/{!Sim_vmm.Vmm.attach_domain} on the
    destination. *)

(** {2 Measurements} *)

val min_rounds : t -> int
(** Smallest completed-round count over all threads: round [k] of the
    VM as a whole is done when [min_rounds >= k]. *)

val total_marks : t -> int
(** Sum of [Mark] executions since the last {!reset_marks}. *)

val reset_marks : t -> unit

val all_finished : t -> bool

val total_spin_cycles : t -> int
(** Aggregate wall-clock spinlock waiting across threads. *)
