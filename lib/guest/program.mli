(** Guest thread programs.

    A program is the op-level model of a benchmark thread: compute
    chunks interleaved with kernel synchronization (spinlocks,
    semaphores, busy-wait barriers). A {!cursor} flattens the program
    into a resumable instruction stream — the guest kernel executes one
    instruction at a time and can be preempted between (or inside)
    instructions without losing position. *)

type op =
  | Compute of int  (** deterministic compute, in cycles *)
  | Compute_rand of { mean : int; cv : float }
      (** log-normal compute chunk drawn at execution time (per-thread
          imbalance) *)
  | Lock of int  (** acquire guest-kernel spinlock [id] *)
  | Unlock of int
  | Sem_wait of int
  | Sem_post of int
  | Barrier of int  (** arrive at barrier [id] and busy-wait *)
  | Mark  (** application-level completion marker (e.g. one
              SPECjbb transaction); counted by the kernel *)
  | Sleep of int
      (** block the thread for exactly this many cycles of simulated
          time (a guest timer sleep, not busy-wait). The primitive
          scheduler-attack guests use to dodge the accounting tick. *)
  | Repeat of int * op list  (** [Repeat (n, body)] runs [body] n times *)

type instr =
  | I_compute of int
  | I_lock of int
  | I_unlock of int
  | I_sem_wait of int
  | I_sem_post of int
  | I_barrier of int
  | I_mark
  | I_sleep of int

type t

val make : op list -> t
(** Raises [Invalid_argument] if any [Repeat] count or compute length
    is negative, a [Compute_rand] has non-positive mean, or a [Sleep]
    is non-positive. *)

val ops : t -> op list

val static_instr_count : t -> int
(** Total instructions one full execution emits (loops unrolled). *)

val total_compute_cycles : t -> int
(** Sum of compute cycles using [mean] for random chunks — the ideal
    single-run CPU demand of the program. *)

type cursor

val cursor : t -> cursor
(** A fresh cursor at the start of the program. *)

val reset : cursor -> unit

val next : cursor -> rng:Sim_engine.Rng.t -> instr option
(** Advance and return the next instruction; [None] when the program
    has finished. [rng] materializes [Compute_rand] chunks. *)

val locks_referenced : t -> int list
(** Sorted, distinct lock ids used by [Lock]/[Unlock]. *)

val barriers_referenced : t -> int list

val semaphores_referenced : t -> int list
