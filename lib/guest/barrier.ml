type t = {
  barrier_id : int;
  parties : int;
  lock : Spinlock.t;
  mutable count : int;
  mutable generation : int;
  mutable first_arrival : int;
  mutable crossings : int;
  mutable longest : int;
}

let create ~id ~parties =
  if parties < 1 then invalid_arg "Barrier.create: parties must be >= 1";
  {
    barrier_id = id;
    parties;
    (* The internal lock shares the barrier's id space; the kernel
       allocates distinct ids for it. *)
    lock = Spinlock.create ~id:(-(id + 1));
    count = 0;
    generation = 0;
    first_arrival = 0;
    crossings = 0;
    longest = 0;
  }

let id t = t.barrier_id

let parties t = t.parties

let lock t = t.lock

let generation t = t.generation

let arrive t ~now =
  if t.count = 0 then t.first_arrival <- now;
  t.count <- t.count + 1;
  if t.count >= t.parties then begin
    t.count <- 0;
    t.generation <- t.generation + 1;
    t.crossings <- t.crossings + 1;
    t.longest <- max t.longest (now - t.first_arrival);
    `Last
  end
  else `Wait t.generation

let passed t ~gen = t.generation > gen

let crossings t = t.crossings

let longest_episode t = t.longest
