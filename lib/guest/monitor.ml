open Sim_engine

type params = {
  delta_exp : int;
  trace_exp : int;
  report_vcrd : bool;
  trace_cap : int;
  estimator : Sim_learn.Estimator.params;
}

let default_params ~slot_cycles =
  {
    delta_exp = 20;
    trace_exp = 10;
    report_vcrd = true;
    (* Bounds the spinlock trace (ring, oldest overwritten): generous
       for any figure window; prevents unbounded growth on very long
       simulations. *)
    trace_cap = 1_000_000;
    estimator = Sim_learn.Estimator.default_params ~slot_cycles;
  }

type trace_entry = { time : int; wait : int; lock_id : int }

type t = {
  params : params;
  mutable engine : Engine.t;
  hypercall : Sim_vmm.Hypercall.t;
  domain : Sim_vmm.Domain.t;
  estimator : Sim_learn.Estimator.t;
  mutable spin_hist : Sim_stats.Histogram.t;
  mutable sem_hist : Sim_stats.Histogram.t;
  trace_ring : trace_entry Sim_obs.Ring.t;
  mutable over_threshold : int;
  mutable adjusting_events : int;
  mutable window_end : Engine.handle option;
  mutable window_budget : int;  (** online cycles left in the HIGH window *)
  mutable window_anchor : int;  (** domain online cycles at the last re-arm *)
  mutable parked : bool;  (** a HIGH window was cancelled by {!park} *)
}

let create params ~engine ~hypercall ~domain ~rng =
  {
    params;
    engine;
    hypercall;
    domain;
    estimator = Sim_learn.Estimator.create params.estimator rng;
    spin_hist = Sim_stats.Histogram.create ();
    sem_hist = Sim_stats.Histogram.create ();
    trace_ring = Sim_obs.Ring.create ~cap:params.trace_cap;
    over_threshold = 0;
    adjusting_events = 0;
    window_end = None;
    window_budget = 0;
    window_anchor = 0;
    parked = false;
  }

let params t = t.params

let threshold_cycles t = Units.pow2 t.params.delta_exp

let set_vcrd t v =
  if t.params.report_vcrd then Sim_vmm.Hypercall.do_vcrd_op t.hypercall t.domain v

let domain_online t =
  Sim_vmm.Vmm.domain_online_cycles
    (Sim_vmm.Hypercall.vmm t.hypercall)
    t.domain

(* The HIGH window is metered in guest-consumed CPU time, not wall
   time: a capped VM may be entirely offline for long stretches during
   which no synchronization can occur, and a wall-clock window would
   silently expire there. The budget is [x * |C(V)|] online cycles —
   equivalent to [x] wall cycles when the whole gang is coscheduled.
   The timer re-arms until the budget is consumed. *)
let rec arm_window t =
  let vcpus = Sim_vmm.Domain.vcpu_count t.domain in
  let min_delay = Units.pow2 20 in
  let delay = max min_delay (t.window_budget / vcpus) in
  let handle =
    Engine.schedule_after t.engine ~delay (fun () ->
        let consumed = domain_online t - t.window_anchor in
        if consumed >= t.window_budget then begin
          t.window_end <- None;
          set_vcrd t Sim_vmm.Domain.Low
        end
        else begin
          t.window_anchor <- t.window_anchor + consumed;
          t.window_budget <- t.window_budget - consumed;
          arm_window t
        end)
  in
  t.window_end <- Some handle

(* Domain migration is a two-phase handoff because the two engines
   run in different fabric windows, possibly on different OS threads:
   [park] executes on the source host (cancelling [window_end], the
   monitor's only engine event, is a queue mutation only the source
   side may perform), [retarget] on the destination one window later.
   The budget and anchor are metered in guest online cycles, which
   are continuous across hosts, so a HIGH window survives the move
   intact (modulo the re-check landing [delay] after the attach
   instant instead of the original arm instant, part of the modeled
   stop-and-copy latency). *)
let park t =
  match t.window_end with
  | Some h ->
    Engine.cancel t.engine h;
    t.window_end <- None;
    t.parked <- true
  | None -> ()

let retarget t ~engine =
  t.engine <- engine;
  if t.parked then begin
    t.parked <- false;
    arm_window t
  end

(* Algorithm 1: an over-threshold spinlock is an adjusting event.
   The estimator's clock is per-VCPU guest online time, not wall time:
   localities of synchronization are a property of the program, which
   makes progress only while the VM is online. Estimates and window
   budgets are therefore all in online cycles. *)
let adjusting_event t =
  t.adjusting_events <- t.adjusting_events + 1;
  let online_now = domain_online t / Sim_vmm.Domain.vcpu_count t.domain in
  let x = Sim_learn.Estimator.on_adjusting_event t.estimator ~now:online_now in
  (match t.window_end with
  | Some h -> Engine.cancel t.engine h
  | None -> ());
  set_vcrd t Sim_vmm.Domain.High;
  t.window_budget <- x * Sim_vmm.Domain.vcpu_count t.domain;
  t.window_anchor <- domain_online t;
  arm_window t

let record_spin_wait ?(vcpu = -1) ?(holder = -1) t ~lock_id ~wait =
  Sim_stats.Histogram.add t.spin_hist wait;
  if wait >= Units.pow2 t.params.trace_exp then
    Sim_obs.Ring.push t.trace_ring
      { time = Engine.now t.engine; wait; lock_id };
  if wait > threshold_cycles t then begin
    t.over_threshold <- t.over_threshold + 1;
    let tr = Engine.trace t.engine in
    if Sim_obs.Trace.on tr Sim_obs.Trace.Spin then
      Sim_obs.Trace.emit tr ~now:(Engine.now t.engine)
        (Sim_obs.Trace.Spin_overthreshold
           { domain = t.domain.Sim_vmm.Domain.id; vcpu; lock_id; wait;
             holder });
    adjusting_event t
  end

let record_sem_wait t ~wait = Sim_stats.Histogram.add t.sem_hist wait

let spin_histogram t = t.spin_hist

let sem_histogram t = t.sem_hist

let trace t = Sim_obs.Ring.to_list t.trace_ring

let trace_in_window t ~from_ ~until =
  List.filter (fun e -> e.time >= from_ && e.time <= until) (trace t)

let over_threshold_count t = t.over_threshold

let adjusting_events t = t.adjusting_events

let estimator t = t.estimator

let reset_window t =
  t.spin_hist <- Sim_stats.Histogram.create ();
  t.sem_hist <- Sim_stats.Histogram.create ();
  (* Ring.clear keeps the lifetime drop count — the semantics
     [trace_dropped] has always had across window resets. *)
  Sim_obs.Ring.clear t.trace_ring;
  t.over_threshold <- 0

let trace_dropped t = Sim_obs.Ring.dropped t.trace_ring
