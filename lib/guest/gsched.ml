type t = {
  timeslice : int;
  mutable threads : Thread.t list;  (** in add order *)
  mutable active : Thread.t option;
}

let create ~timeslice =
  if timeslice <= 0 then invalid_arg "Gsched.create: timeslice must be positive";
  { timeslice; threads = []; active = None }

let timeslice t = t.timeslice

let add t thread =
  if List.exists (fun th -> th == thread) t.threads then
    invalid_arg "Gsched.add: thread already registered";
  t.threads <- t.threads @ [ thread ]

let threads t = t.threads

let thread_count t = List.length t.threads

let active t = t.active

let set_active t thread = t.active <- thread

let pick t =
  let executable = List.filter Thread.is_executable t.threads in
  match executable with
  | [] -> None
  | first :: _ -> begin
    match t.active with
    | None -> Some first
    | Some cur -> begin
      (* Round-robin: first executable thread strictly after [cur] in
         list order, wrapping around. *)
      let rec split before after = function
        | [] -> (List.rev before, after)
        | th :: rest ->
          if th == cur then (List.rev before, rest)
          else split (th :: before) after rest
      in
      let before, after = split [] [] t.threads in
      let order = after @ before in
      match List.find_opt Thread.is_executable order with
      | Some th -> Some th
      | None -> if Thread.is_executable cur then Some cur else Some first
    end
  end

let executable_count t =
  List.length (List.filter Thread.is_executable t.threads)
