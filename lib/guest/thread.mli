(** Guest thread: the execution state of one program instance.

    A thread advances through its program's instruction stream; all
    in-progress timed work is captured by [pending_compute] plus a
    {!resume_point}, so the kernel can preempt a VCPU at any instant
    and later resume the thread exactly where it stopped. *)

type status =
  | Runnable  (** executes when its VCPU is online and selected *)
  | Spinning of int  (** busy-waiting on a spinlock (occupies the VCPU) *)
  | Spin_barrier of int * int  (** busy-waiting on barrier [id] for a
                                   generation newer than the second field *)
  | Blocked_barrier of int * int
      (** barrier wait after the spin grace expired: the thread
          futex-sleeps (OpenMP spin-then-block), releasing the VCPU *)
  | Blocked_sem of int  (** descheduled, waiting on a semaphore *)
  | Blocked_sleep
      (** timer sleep ([Program.Sleep]): descheduled until a kernel
          timer wakes it at an exact simulated instant *)
  | Paused
      (** frozen at an instruction boundary by {!Kernel.request_freeze}
          (stop-and-copy migration): descheduled, holding no locks,
          resumed verbatim by {!Kernel.thaw} on the destination host *)
  | Finished

(** Where execution continues once [pending_compute] reaches zero. *)
type resume_point =
  | R_fetch  (** fetch the next instruction *)
  | R_sleep of int  (** begin a timer sleep of this many cycles *)
  | R_acquire of int  (** attempt to take a user spinlock *)
  | R_unlock of int
  | R_sem_wait of int
  | R_sem_post of int
  | R_barrier_arrive of int  (** take the barrier's internal lock *)
  | R_barrier_locked of int  (** inside the barrier's critical section *)
  | R_barrier_exit of int
      (** just observed the generation bump; record the measured wait
          and carry on *)

type t = {
  id : int;
  affinity : int;  (** VCPU index within the domain *)
  program : Program.t;
  cursor : Program.cursor;
  rng : Sim_engine.Rng.t;
  restart : bool;  (** start a new round when the program ends *)
  mutable status : status;
  mutable resume : resume_point;
  mutable pending_compute : int;  (** cycles left before [resume] runs *)
  mutable compute_started : int;  (** engine time the open span began *)
  mutable spin_request : int;  (** timestamp of the outstanding lock request *)
  mutable spin_holder : int;
      (** VCPU id holding the awaited lock when the wait began; -1 =
          none/unknown (LHP attribution for the spin trace) *)
  mutable locks_held : int;
  mutable rounds : int;  (** completed program rounds *)
  mutable round_started : int;
  mutable marks : int;  (** [Mark] instructions executed (resettable) *)
  mutable total_spin_cycles : int;  (** wall time spent waiting on spinlocks *)
}

val make :
  id:int ->
  affinity:int ->
  restart:bool ->
  rng:Sim_engine.Rng.t ->
  Program.t ->
  t

val is_executable : t -> bool
(** Runnable, spinning or barrier-spinning: occupies a VCPU when
    selected. *)

val is_preemptible_by_guest : t -> bool
(** The guest scheduler may timeslice it away: pure compute, no locks
    held, not spinning (kernel spinlock semantics). *)

val pp : Format.formatter -> t -> unit
