(** Guest-kernel spinlock (Linux 2.6.18 semantics: non-FIFO).

    Waiters spin, actively occupying their VCPU; on release the lock
    goes to the earliest-requesting waiter whose VCPU is currently
    online (after a cache-line handoff delay, during which the lock is
    {e reserved}). A waiter whose VCPU is offline keeps its place in
    the request order and re-contends when it comes back online.

    This is exactly the structure virtualization breaks: a preempted
    {e holder} leaves every online waiter spinning for one or more
    offline periods — the paper's over-threshold spinlocks. *)

type t

val create : id:int -> t

val id : t -> int

val owner : t -> Thread.t option

val is_reserved : t -> bool
(** A handoff grant is in flight. *)

val try_acquire : t -> Thread.t -> now:int -> bool
(** Fast path: succeeds iff the lock is free and unreserved. On
    success the thread becomes owner. *)

val enqueue_waiter : t -> Thread.t -> now:int -> unit
(** Register a contending thread (it should transition to
    [Spinning]). Raises [Invalid_argument] if it already waits or owns
    the lock. *)

val waiting_since : t -> Thread.t -> int option

val release : t -> Thread.t -> unit
(** Raises [Invalid_argument] unless the thread is the owner. The
    lock becomes free (waiters stay queued). *)

val pick_online_waiter : t -> online:(Thread.t -> bool) -> Thread.t option
(** Earliest-requesting waiter whose VCPU is online; [None] if the
    lock is not free, is reserved, or no waiter is online. *)

val reserve_for : t -> Thread.t -> unit
(** Start a handoff: mark reserved for the given waiter. *)

val complete_grant : t -> Thread.t -> now:int -> int
(** Finish a handoff: the thread (which must hold the reservation)
    becomes owner and leaves the waiter list. Returns its waiting time
    [now - request time]. *)

val abort_grant : t -> Thread.t -> unit
(** Cancel an in-flight handoff (e.g. the grantee was preempted); the
    thread stays a waiter. *)

val waiter_count : t -> int

val acquisitions : t -> int
(** Total successful acquisitions (fast path + grants). *)

val contended_acquisitions : t -> int
