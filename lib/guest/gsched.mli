(** Per-VCPU guest thread scheduler (round-robin).

    Each VCPU runs the threads pinned to it (affinity). The scheduler
    is deliberately simple — benchmarks of interest either pin one
    thread per VCPU (NAS) or balance statically (SPECjbb warehouses) —
    but honours kernel preemption rules: a thread that holds a
    spinlock or is spinning is never timesliced away by the guest
    (only the VMM can preempt its VCPU — the lock-holder-preemption
    hazard). *)

type t

val create : timeslice:int -> t
(** [timeslice] in cycles; used by the kernel to rotate threads. *)

val timeslice : t -> int

val add : t -> Thread.t -> unit

val threads : t -> Thread.t list

val thread_count : t -> int

val active : t -> Thread.t option

val set_active : t -> Thread.t option -> unit

val pick : t -> Thread.t option
(** Next executable thread in round-robin order starting after the
    current active one; the active thread itself is returned if it is
    the only executable one. [None] when no thread can run. *)

val executable_count : t -> int
