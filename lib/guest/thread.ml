type status =
  | Runnable
  | Spinning of int
  | Spin_barrier of int * int
  | Blocked_barrier of int * int
  | Blocked_sem of int
  | Blocked_sleep
  | Paused
  | Finished

type resume_point =
  | R_fetch
  | R_sleep of int
  | R_acquire of int
  | R_unlock of int
  | R_sem_wait of int
  | R_sem_post of int
  | R_barrier_arrive of int
  | R_barrier_locked of int
  | R_barrier_exit of int

type t = {
  id : int;
  affinity : int;
  program : Program.t;
  cursor : Program.cursor;
  rng : Sim_engine.Rng.t;
  restart : bool;
  mutable status : status;
  mutable resume : resume_point;
  mutable pending_compute : int;
  mutable compute_started : int;
  mutable spin_request : int;
  mutable spin_holder : int;
  mutable locks_held : int;
  mutable rounds : int;
  mutable round_started : int;
  mutable marks : int;
  mutable total_spin_cycles : int;
}

let make ~id ~affinity ~restart ~rng program =
  {
    id;
    affinity;
    program;
    cursor = Program.cursor program;
    rng;
    restart;
    status = Runnable;
    resume = R_fetch;
    pending_compute = 0;
    compute_started = 0;
    spin_request = 0;
    spin_holder = -1;
    locks_held = 0;
    rounds = 0;
    round_started = 0;
    marks = 0;
    total_spin_cycles = 0;
  }

let is_executable t =
  match t.status with
  | Runnable | Spinning _ | Spin_barrier _ -> true
  | Blocked_barrier _ | Blocked_sem _ | Blocked_sleep | Paused | Finished ->
    false

let is_preemptible_by_guest t =
  match t.status with
  | Runnable -> t.locks_held = 0 && t.resume = R_fetch
  | Spinning _ | Spin_barrier _ | Blocked_barrier _ | Blocked_sem _
  | Blocked_sleep | Paused | Finished ->
    false

let pp fmt t =
  let status =
    match t.status with
    | Runnable -> "runnable"
    | Spinning l -> Printf.sprintf "spin(lock %d)" l
    | Spin_barrier (b, g) -> Printf.sprintf "spin(barrier %d gen %d)" b g
    | Blocked_barrier (b, g) -> Printf.sprintf "sleep(barrier %d gen %d)" b g
    | Blocked_sem s -> Printf.sprintf "blocked(sem %d)" s
    | Blocked_sleep -> "sleeping"
    | Paused -> "paused"
    | Finished -> "finished"
  in
  Format.fprintf fmt "thread%d(vcpu %d %s rounds=%d)" t.id t.affinity status
    t.rounds
