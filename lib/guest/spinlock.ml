type t = {
  lock_id : int;
  mutable owner : Thread.t option;
  mutable waiters : (Thread.t * int) list;  (** request order, oldest first *)
  mutable reserved_for : Thread.t option;
  mutable acquisitions : int;
  mutable contended : int;
}

let create ~id =
  {
    lock_id = id;
    owner = None;
    waiters = [];
    reserved_for = None;
    acquisitions = 0;
    contended = 0;
  }

let id t = t.lock_id

let owner t = t.owner

let is_reserved t = t.reserved_for <> None

let is_waiter t thread = List.exists (fun (w, _) -> w == thread) t.waiters

let try_acquire t thread ~now =
  ignore now;
  match (t.owner, t.reserved_for) with
  | None, None ->
    t.owner <- Some thread;
    t.acquisitions <- t.acquisitions + 1;
    true
  | Some _, _ | _, Some _ -> false

let enqueue_waiter t thread ~now =
  (match t.owner with
  | Some o when o == thread -> invalid_arg "Spinlock: owner cannot wait"
  | Some _ | None -> ());
  if is_waiter t thread then invalid_arg "Spinlock: thread already waiting";
  t.waiters <- t.waiters @ [ (thread, now) ]

let waiting_since t thread =
  List.find_map (fun (w, since) -> if w == thread then Some since else None) t.waiters

let release t thread =
  match t.owner with
  | Some o when o == thread -> t.owner <- None
  | Some _ | None -> invalid_arg "Spinlock.release: thread is not the owner"

let pick_online_waiter t ~online =
  match (t.owner, t.reserved_for) with
  | None, None -> List.find_map (fun (w, _) -> if online w then Some w else None) t.waiters
  | Some _, _ | _, Some _ -> None

let reserve_for t thread =
  if t.owner <> None then invalid_arg "Spinlock.reserve_for: lock is held";
  if t.reserved_for <> None then invalid_arg "Spinlock.reserve_for: already reserved";
  if not (is_waiter t thread) then
    invalid_arg "Spinlock.reserve_for: thread is not a waiter";
  t.reserved_for <- Some thread

let complete_grant t thread ~now =
  (match t.reserved_for with
  | Some r when r == thread -> ()
  | Some _ | None -> invalid_arg "Spinlock.complete_grant: no reservation");
  let since =
    match waiting_since t thread with
    | Some s -> s
    | None -> invalid_arg "Spinlock.complete_grant: thread is not a waiter"
  in
  t.waiters <- List.filter (fun (w, _) -> w != thread) t.waiters;
  t.reserved_for <- None;
  t.owner <- Some thread;
  t.acquisitions <- t.acquisitions + 1;
  t.contended <- t.contended + 1;
  now - since

let abort_grant t thread =
  match t.reserved_for with
  | Some r when r == thread -> t.reserved_for <- None
  | Some _ | None -> invalid_arg "Spinlock.abort_grant: no matching reservation"

let waiter_count t = List.length t.waiters

let acquisitions t = t.acquisitions

let contended_acquisitions t = t.contended
