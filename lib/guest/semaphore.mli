(** Guest-kernel counting semaphore (blocking, FIFO).

    Waiters are descheduled (their VCPU can halt), so — unlike
    spinlocks — virtualization costs them little: the paper measures
    all semaphore waits below 2^16 cycles even at a 22.2% online
    rate. *)

type t

val create : id:int -> init:int -> t
(** Raises [Invalid_argument] on a negative initial count. *)

val id : t -> int

val count : t -> int

val try_wait : t -> bool
(** Decrement if positive. *)

val enqueue_waiter : t -> Thread.t -> now:int -> unit

val post : t -> (Thread.t * int) option
(** If a waiter exists, dequeue the oldest and return it with its
    enqueue time (the token transfers directly); otherwise increment
    the count and return [None]. *)

val waiter_count : t -> int

val waits : t -> int
(** Total successful wait operations. *)

val blocked_waits : t -> int
