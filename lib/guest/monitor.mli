(** The Monitoring Module (paper §3.3), one per VM.

    Runs "in the guest kernel": instruments every spinlock acquisition
    with the hi-res timer, keeps the waiting-time histogram and trace
    (Figures 1b, 2, 8), and detects {e over-threshold} spinlocks —
    waits above [2^delta_exp] cycles (δ = 20). Each detection is a
    VCRD {e adjusting event} (Algorithm 1): the {!Sim_learn.Estimator}
    picks a lasting time [x], the module raises the domain's VCRD to
    HIGH through the [do_vcrd_op] hypercall, and — if no further
    over-threshold spinlock arrives within [x] — lowers it back. A
    further detection inside the window is simply the next adjusting
    event: the estimate is refreshed and the window extended. *)

type params = {
  delta_exp : int;  (** δ: over-threshold boundary is 2^δ cycles *)
  trace_exp : int;  (** record trace entries for waits >= 2^trace_exp *)
  report_vcrd : bool;
      (** issue hypercalls (off when the module only observes, e.g.
          under the plain Credit scheduler one can disable reporting —
          the scheduler would ignore it anyway) *)
  trace_cap : int;
      (** spinlock-trace ring capacity; oldest entries are overwritten
          beyond it (see {!trace_dropped}) *)
  estimator : Sim_learn.Estimator.params;
}

val default_params : slot_cycles:int -> params
(** δ = 20, trace threshold 2^10, reporting on, trace capacity one
    million entries. *)

type trace_entry = { time : int; wait : int; lock_id : int }

type t

val create :
  params ->
  engine:Sim_engine.Engine.t ->
  hypercall:Sim_vmm.Hypercall.t ->
  domain:Sim_vmm.Domain.t ->
  rng:Sim_engine.Rng.t ->
  t

val params : t -> params

val park : t -> unit
(** Source-side half of a decoupled-VMM domain migration: cancel the
    monitor's single pending event (the HIGH-window end check) on the
    current engine. Must run on the source host — cancelling mutates
    that engine's queue. A no-op when no window is armed. *)

val retarget : t -> engine:Sim_engine.Engine.t -> unit
(** Destination-side half: swap engines and, if {!park} interrupted
    an open HIGH window, re-arm it on the new engine. The window
    budget is metered in guest online cycles, continuous across
    hosts, so the window survives the move. *)

val threshold_cycles : t -> int
(** [2^delta_exp]. *)

val record_spin_wait :
  ?vcpu:int -> ?holder:int -> t -> lock_id:int -> wait:int -> unit
(** Called by the kernel at every spinlock acquisition with the
    measured wall-clock waiting time (0 for the uncontended fast
    path). May trigger an adjusting event. [vcpu] is the waiter's
    VCPU and [holder] the VCPU holding the lock when the wait began
    (both -1 = unknown, e.g. barrier flag spins); over-threshold
    waits are emitted as [Spin_overthreshold] trace events carrying
    them, the join key for LHP classification. *)

val record_sem_wait : t -> wait:int -> unit

val spin_histogram : t -> Sim_stats.Histogram.t
val sem_histogram : t -> Sim_stats.Histogram.t

val trace : t -> trace_entry list
(** Chronological trace of waits above the trace threshold. Bounded
    by a [trace_cap]-entry ring ({!Sim_obs.Ring}, the same type the
    VMM event trace uses): beyond capacity the oldest entry is
    overwritten (see {!trace_dropped}). *)

val trace_in_window : t -> from_:int -> until:int -> trace_entry list

val over_threshold_count : t -> int

val adjusting_events : t -> int

val estimator : t -> Sim_learn.Estimator.t

val trace_dropped : t -> int
(** Entries discarded by the bound over the monitor's lifetime
    (0 in any normal run); not reset by {!reset_window}. *)

val reset_window : t -> unit
(** Clear histograms and trace (not the learner, nor the
    {!trace_dropped} tally): starts a fresh measurement window, e.g.
    the paper's 30-second observation. *)
