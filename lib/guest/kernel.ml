open Sim_engine

type params = {
  instr_overhead : int;
  handoff : int;
  flag_latency : int;
  timeslice : int;
  spin_grace : int;
  ple_window : int;
  monitor : Monitor.params;
}

let default_params (cpu : Sim_hw.Cpu_model.t) =
  let freq = cpu.Sim_hw.Cpu_model.freq in
  {
    instr_overhead = Units.cycles_of_ns freq 35;
    handoff = cpu.Sim_hw.Cpu_model.cache_handoff_cycles;
    flag_latency = Units.cycles_of_ns freq 130;
    timeslice = Units.cycles_of_ms freq 4;
    spin_grace = Units.cycles_of_ms freq 10;
    ple_window = Units.pow2 20;
    monitor =
      Monitor.default_params ~slot_cycles:(Sim_hw.Cpu_model.slot_cycles cpu);
  }

type vcpu_ctx = {
  vcpu : Sim_vmm.Vcpu.t;
  gsched : Gsched.t;
  mutable online : bool;
  mutable timer : Engine.handle option;  (** compute-completion event *)
  mutable slice_timer : Engine.handle option;
}

type t = {
  mutable vmm : Sim_vmm.Vmm.t;
  domain : Sim_vmm.Domain.t;
  mutable engine : Engine.t;
  params : params;
  hypercall : Sim_vmm.Hypercall.t;
  monitor : Monitor.t;
  rng : Rng.t;
  locks : (int, Spinlock.t) Hashtbl.t;
  sems : (int, Semaphore.t) Hashtbl.t;
  barriers : (int, Barrier.t) Hashtbl.t;
  vcpus : vcpu_ctx array;
  mutable threads_rev : Thread.t list;
  mutable next_thread_id : int;
  mutable round_hook : Thread.t -> round:int -> duration:int -> unit;
  mutable finished_hook : Thread.t -> unit;
  mutable launched : bool;
  mutable halted : bool;
      (** a drain was requested: threads retire at their next
          instruction boundary instead of fetching more work *)
  mutable frozen : bool;
      (** a freeze was requested (stop-and-copy migration): threads
          pause at their next instruction boundary and resume verbatim
          when {!thaw} runs on the destination host *)
  mutable pending_untracked : int;
      (** in-flight kernel timers not tracked through a vcpu_ctx
          handle; must be 0 before the domain may migrate *)
}

let vmm t = t.vmm
let domain t = t.domain
let monitor t = t.monitor
let hypercall t = t.hypercall
let params t = t.params
let threads t = List.rev t.threads_rev

let now t = Engine.now t.engine

(* ----- object lookup ----- *)

let ensure_lock t id =
  match Hashtbl.find_opt t.locks id with
  | Some l -> l
  | None ->
    let l = Spinlock.create ~id in
    Hashtbl.replace t.locks id l;
    l

let get_sem t id =
  match Hashtbl.find_opt t.sems id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Kernel: undeclared semaphore %d" id)

let get_barrier t id =
  match Hashtbl.find_opt t.barriers id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Kernel: undeclared barrier %d" id)

let add_semaphore t ~id ~init =
  if Hashtbl.mem t.sems id then invalid_arg "Kernel.add_semaphore: duplicate id";
  Hashtbl.replace t.sems id (Semaphore.create ~id ~init)

let add_barrier t ~id ~parties =
  if Hashtbl.mem t.barriers id then invalid_arg "Kernel.add_barrier: duplicate id";
  Hashtbl.replace t.barriers id (Barrier.create ~id ~parties)

let lock_stats t =
  let user = Hashtbl.fold (fun id l acc -> (id, l) :: acc) t.locks [] in
  let internal =
    Hashtbl.fold
      (fun _ b acc ->
        let l = Barrier.lock b in
        (Spinlock.id l, l) :: acc)
      t.barriers []
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (user @ internal)

let barrier_stats t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun id b acc -> (id, b) :: acc) t.barriers [])

(* ----- thread/vcpu helpers ----- *)

let vctx_of t (thread : Thread.t) = t.vcpus.(thread.Thread.affinity)

(* System-wide VCPU id of the thread's (fixed-affinity) VCPU — the
   identity scheduling trace events use, so spin waits recorded with
   it can be joined against the VMM timeline. *)
let vcpu_id_of t (thread : Thread.t) =
  (vctx_of t thread).vcpu.Sim_vmm.Vcpu.id

(* A thread "occupies" its VCPU when it is the active guest thread and
   the VCPU is online: only then does it actually execute (or spin). *)
let occupying t thread =
  let vc = vctx_of t thread in
  vc.online
  &&
  match Gsched.active vc.gsched with
  | Some active -> active == thread
  | None -> false

let cancel_timer t vc =
  match vc.timer with
  | Some h ->
    Engine.cancel t.engine h;
    vc.timer <- None
  | None -> ()

let cancel_slice t vc =
  match vc.slice_timer with
  | Some h ->
    Engine.cancel t.engine h;
    vc.slice_timer <- None
  | None -> ()

(* Pseudo lock id under which a barrier's flag-spin waits are reported
   (distinct from its arrival lock's id, which is [-(id + 1)]). *)
let flag_id barrier = -(1000 + Barrier.id barrier)

(* Self-validating kernel timers that are not tracked through a
   vcpu_ctx handle — sleep wakes, lock handoffs, barrier releases,
   PLE windows, spin-grace fallbacks — are counted while in flight:
   their events capture [t] and live on the current engine, so the
   decoupled-VMM quiescence gate ({!quiescent}) refuses to migrate a
   domain whose kernel still has one pending. *)
let schedule_untracked t ~delay k =
  t.pending_untracked <- t.pending_untracked + 1;
  ignore
    (Engine.schedule_after t.engine ~delay (fun () ->
         t.pending_untracked <- t.pending_untracked - 1;
         k ()))

(* ----- execution machinery ----- *)

let rec continue_thread t vc (thread : Thread.t) =
  assert vc.online;
  if thread.Thread.pending_compute > 0 then begin
    thread.Thread.compute_started <- now t;
    let h =
      Engine.schedule_after t.engine ~delay:thread.Thread.pending_compute
        (fun () ->
          vc.timer <- None;
          thread.Thread.pending_compute <- 0;
          do_resume t vc thread)
    in
    vc.timer <- Some h
  end
  else do_resume t vc thread

and do_resume t vc (thread : Thread.t) =
  match thread.Thread.resume with
  | Thread.R_fetch -> fetch t vc thread
  | Thread.R_sleep cycles ->
    (* Timer sleep: release the VCPU and arm a wake at an exact
       instant. Self-validating like every kernel timer — only a
       thread still in [Blocked_sleep] is woken (a sleeping thread
       cannot be re-dispatched, so the status check suffices). *)
    thread.Thread.status <- Thread.Blocked_sleep;
    thread.Thread.resume <- Thread.R_fetch;
    schedule_untracked t ~delay:cycles (fun () ->
        match thread.Thread.status with
        | Thread.Blocked_sleep ->
          thread.Thread.status <- Thread.Runnable;
          wake_thread t thread
        | Thread.Runnable | Thread.Spinning _ | Thread.Spin_barrier _
        | Thread.Blocked_barrier _ | Thread.Blocked_sem _ | Thread.Paused
        | Thread.Finished ->
          ());
    rotate_or_halt t vc
  | Thread.R_acquire lock_id ->
    let lock = ensure_lock t lock_id in
    acquire_lock t vc thread lock ~cs:0 ~next:Thread.R_fetch
  | Thread.R_unlock lock_id ->
    let lock = ensure_lock t lock_id in
    Spinlock.release lock thread;
    thread.Thread.locks_held <- thread.Thread.locks_held - 1;
    handoff_check t lock;
    thread.Thread.resume <- Thread.R_fetch;
    fetch t vc thread
  | Thread.R_sem_wait sem_id ->
    let sem = get_sem t sem_id in
    if Semaphore.try_wait sem then begin
      thread.Thread.resume <- Thread.R_fetch;
      fetch t vc thread
    end
    else begin
      Semaphore.enqueue_waiter sem thread ~now:(now t);
      thread.Thread.status <- Thread.Blocked_sem sem_id;
      thread.Thread.resume <- Thread.R_fetch;
      rotate_or_halt t vc
    end
  | Thread.R_sem_post sem_id ->
    let sem = get_sem t sem_id in
    (match Semaphore.post sem with
    | None -> ()
    | Some (waiter, since) ->
      Monitor.record_sem_wait t.monitor ~wait:(now t - since);
      waiter.Thread.status <- Thread.Runnable;
      wake_thread t waiter);
    thread.Thread.resume <- Thread.R_fetch;
    fetch t vc thread
  | Thread.R_barrier_arrive barrier_id ->
    let barrier = get_barrier t barrier_id in
    acquire_lock t vc thread (Barrier.lock barrier) ~cs:t.params.instr_overhead
      ~next:(Thread.R_barrier_locked barrier_id)
  | Thread.R_barrier_locked barrier_id ->
    let barrier = get_barrier t barrier_id in
    let lock = Barrier.lock barrier in
    let outcome = Barrier.arrive barrier ~now:(now t) in
    Spinlock.release lock thread;
    thread.Thread.locks_held <- thread.Thread.locks_held - 1;
    handoff_check t lock;
    thread.Thread.resume <- Thread.R_fetch;
    (match outcome with
    | `Last ->
      (* The last arriver never spins on the flag: zero wait. *)
      Monitor.record_spin_wait t.monitor ~lock_id:(flag_id barrier) ~wait:0;
      release_barrier t barrier;
      fetch t vc thread
    | `Wait gen ->
      thread.Thread.status <- Thread.Spin_barrier (barrier_id, gen);
      thread.Thread.spin_request <- now t;
      (* Busy-wait with a grace budget: if the flag does not flip
         within [spin_grace], fall back to a futex sleep. *)
      arm_spin_grace t thread barrier_id gen;
      arm_ple t thread)
  | Thread.R_barrier_exit barrier_id ->
    let barrier = get_barrier t barrier_id in
    let wait = now t - thread.Thread.spin_request in
    thread.Thread.total_spin_cycles <- thread.Thread.total_spin_cycles + wait;
    (* Barrier flag spins have no lock holder: the classifier falls
       back to a sibling-descheduled heuristic for these. *)
    Monitor.record_spin_wait t.monitor ~vcpu:(vcpu_id_of t thread)
      ~lock_id:(flag_id barrier) ~wait;
    thread.Thread.resume <- Thread.R_fetch;
    fetch t vc thread

and fetch t vc (thread : Thread.t) =
  if t.halted && thread.Thread.locks_held = 0 then begin
    (* Drain requested: retire at this instruction boundary.  Lock
       holders keep running until their critical sections unwind so
       waiters are never orphaned mid-handoff. *)
    thread.Thread.status <- Thread.Finished;
    t.finished_hook thread;
    rotate_or_halt t vc
  end
  else if t.frozen && thread.Thread.locks_held = 0 then begin
    (* Freeze requested: pause at this instruction boundary.  Same
       drain discipline as the halt above — lock holders unwind their
       critical sections first — but a paused thread keeps its cursor
       and resumes exactly here when {!thaw} runs after migration. *)
    thread.Thread.status <- Thread.Paused;
    thread.Thread.resume <- Thread.R_fetch;
    rotate_or_halt t vc
  end
  else
  match Program.next thread.Thread.cursor ~rng:thread.Thread.rng with
  | None -> round_complete t vc thread
  | Some instr -> begin
    let overhead = t.params.instr_overhead in
    match instr with
    | Program.I_compute n -> start_work t vc thread ~cycles:n ~next:Thread.R_fetch
    | Program.I_lock l ->
      start_work t vc thread ~cycles:overhead ~next:(Thread.R_acquire l)
    | Program.I_unlock l ->
      start_work t vc thread ~cycles:overhead ~next:(Thread.R_unlock l)
    | Program.I_sem_wait s ->
      start_work t vc thread ~cycles:overhead ~next:(Thread.R_sem_wait s)
    | Program.I_sem_post s ->
      start_work t vc thread ~cycles:overhead ~next:(Thread.R_sem_post s)
    | Program.I_barrier b ->
      start_work t vc thread ~cycles:overhead ~next:(Thread.R_barrier_arrive b)
    | Program.I_mark ->
      thread.Thread.marks <- thread.Thread.marks + 1;
      start_work t vc thread ~cycles:1 ~next:Thread.R_fetch
    | Program.I_sleep n ->
      start_work t vc thread ~cycles:overhead ~next:(Thread.R_sleep n)
  end

and start_work t vc (thread : Thread.t) ~cycles ~next =
  thread.Thread.pending_compute <- cycles;
  thread.Thread.resume <- next;
  continue_thread t vc thread

and round_complete t vc (thread : Thread.t) =
  thread.Thread.rounds <- thread.Thread.rounds + 1;
  let duration = now t - thread.Thread.round_started in
  t.round_hook thread ~round:thread.Thread.rounds ~duration;
  if thread.Thread.restart && Program.static_instr_count thread.Thread.program > 0
  then begin
    Program.reset thread.Thread.cursor;
    thread.Thread.round_started <- now t;
    fetch t vc thread
  end
  else begin
    thread.Thread.status <- Thread.Finished;
    t.finished_hook thread;
    rotate_or_halt t vc
  end

(* Acquire [lock]; on ownership, run [cs] cycles then [next]. *)
and acquire_lock t vc (thread : Thread.t) lock ~cs ~next =
  if Spinlock.try_acquire lock thread ~now:(now t) then begin
    thread.Thread.locks_held <- thread.Thread.locks_held + 1;
    Monitor.record_spin_wait t.monitor ~lock_id:(Spinlock.id lock) ~wait:0;
    start_work t vc thread ~cycles:cs ~next
  end
  else begin
    (* Capture who holds the lock as the wait begins: with fixed
       thread affinity this VCPU is the holder for the whole wait, so
       the monitor can attribute an over-threshold wait to holder
       preemption (or not) when it ends. *)
    thread.Thread.spin_holder <-
      (match Spinlock.owner lock with
      | Some o -> vcpu_id_of t o
      | None -> -1);
    Spinlock.enqueue_waiter lock thread ~now:(now t);
    thread.Thread.status <- Thread.Spinning (Spinlock.id lock);
    thread.Thread.spin_request <- now t;
    thread.Thread.pending_compute <- cs;
    thread.Thread.resume <- next;
    arm_ple t thread;
    (* The lock may be free but reserved, or held: either way we spin.
       If it is free and unreserved (released while we were enqueuing
       is impossible in one engine instant, but a free lock with only
       offline waiters is), start a handoff now. *)
    handoff_check t lock
  end

(* If the lock is free and some waiter is online, start a handoff. *)
and handoff_check t lock =
  let online (waiter : Thread.t) =
    (match waiter.Thread.status with
    | Thread.Spinning id -> id = Spinlock.id lock
    | Thread.Runnable | Thread.Spin_barrier _ | Thread.Blocked_barrier _
    | Thread.Blocked_sem _ | Thread.Blocked_sleep | Thread.Paused
    | Thread.Finished ->
      false)
    && occupying t waiter
  in
  match Spinlock.pick_online_waiter lock ~online with
  | None -> ()
  | Some waiter ->
    Spinlock.reserve_for lock waiter;
    schedule_untracked t ~delay:t.params.handoff (fun () ->
        grant t lock waiter)

(* Complete (or abort) an in-flight handoff. Self-validating: the
   grantee may have been preempted during the handoff latency. *)
and grant t lock (waiter : Thread.t) =
  let still_spinning =
    match waiter.Thread.status with
    | Thread.Spinning id -> id = Spinlock.id lock
    | Thread.Runnable | Thread.Spin_barrier _ | Thread.Blocked_barrier _
    | Thread.Blocked_sem _ | Thread.Blocked_sleep | Thread.Paused
    | Thread.Finished ->
      false
  in
  if still_spinning && occupying t waiter then begin
    let wait = Spinlock.complete_grant lock waiter ~now:(now t) in
    waiter.Thread.total_spin_cycles <- waiter.Thread.total_spin_cycles + wait;
    waiter.Thread.locks_held <- waiter.Thread.locks_held + 1;
    waiter.Thread.status <- Thread.Runnable;
    Monitor.record_spin_wait t.monitor ~vcpu:(vcpu_id_of t waiter)
      ~holder:waiter.Thread.spin_holder ~lock_id:(Spinlock.id lock) ~wait;
    waiter.Thread.spin_holder <- -1;
    continue_thread t (vctx_of t waiter) waiter
  end
  else begin
    Spinlock.abort_grant lock waiter;
    handoff_check t lock
  end

(* The last arrival bumped the generation: release online spinners
   after the flag-observation latency; sleeping (futex-blocked)
   waiters are woken through the kernel wake path; offline spinners
   will notice when their VCPU is next scheduled. *)
and release_barrier t barrier =
  List.iter
    (fun (thread : Thread.t) ->
      match thread.Thread.status with
      | Thread.Spin_barrier (bid, gen)
        when bid = Barrier.id barrier && Barrier.passed barrier ~gen ->
        if occupying t thread then
          schedule_untracked t ~delay:t.params.flag_latency (fun () ->
              barrier_proceed t barrier thread)
      | Thread.Blocked_barrier (bid, gen)
        when bid = Barrier.id barrier && Barrier.passed barrier ~gen ->
        thread.Thread.status <- Thread.Runnable;
        thread.Thread.resume <- Thread.R_barrier_exit bid;
        thread.Thread.pending_compute <-
          t.params.flag_latency + t.params.instr_overhead;
        wake_thread t thread
      | Thread.Spin_barrier _ | Thread.Blocked_barrier _ | Thread.Runnable
      | Thread.Spinning _ | Thread.Blocked_sem _ | Thread.Blocked_sleep | Thread.Paused
      | Thread.Finished ->
        ())
    t.threads_rev

(* Self-validating barrier-exit event for online spinners. The wait
   itself is measured and reported at [R_barrier_exit]: barrier waits
   are busy-wait kernel synchronization wall time, the dominant source
   of over-threshold waits once sibling VCPUs are de-synchronized. *)
and barrier_proceed t barrier (thread : Thread.t) =
  match thread.Thread.status with
  | Thread.Spin_barrier (bid, gen)
    when bid = Barrier.id barrier && Barrier.passed barrier ~gen
         && occupying t thread ->
    thread.Thread.status <- Thread.Runnable;
    thread.Thread.resume <- Thread.R_barrier_exit bid;
    thread.Thread.pending_compute <- 0;
    continue_thread t (vctx_of t thread) thread
  | Thread.Spin_barrier _ | Thread.Blocked_barrier _ | Thread.Runnable
  | Thread.Spinning _ | Thread.Blocked_sem _ | Thread.Blocked_sleep | Thread.Paused
  | Thread.Finished ->
    ()

(* Hardware pause-loop detection: while a thread busy-spins through a
   whole PLE window on an online VCPU, the (modelled) processor raises
   a pause-loop exit to the VMM — the signal the out-of-VM ASMan
   variant consumes. Self-validating and re-arming: one exit per
   window for as long as the same spin span persists. *)
and arm_ple t (thread : Thread.t) =
  if t.params.ple_window > 0 then begin
    let span = thread.Thread.spin_request in
    schedule_untracked t ~delay:t.params.ple_window (fun () ->
        let still_spinning =
          match thread.Thread.status with
          | Thread.Spinning _ | Thread.Spin_barrier _ ->
            thread.Thread.spin_request = span
          | Thread.Runnable | Thread.Blocked_barrier _
          | Thread.Blocked_sem _ | Thread.Blocked_sleep | Thread.Paused
          | Thread.Finished ->
            false
        in
        if still_spinning && occupying t thread then begin
          let vc = vctx_of t thread in
          Sim_vmm.Vmm.pause_loop_exit t.vmm vc.vcpu;
          arm_ple t thread
        end)
  end

(* Spin-then-block: if the barrier flag has not flipped when the grace
   budget expires, the thread futex-sleeps and frees its VCPU. *)
and arm_spin_grace t (thread : Thread.t) barrier_id gen =
  schedule_untracked t ~delay:t.params.spin_grace (fun () ->
      match thread.Thread.status with
      | Thread.Spin_barrier (bid, g)
        when bid = barrier_id && g = gen && occupying t thread ->
        let barrier = get_barrier t bid in
        if not (Barrier.passed barrier ~gen:g) then begin
          thread.Thread.status <- Thread.Blocked_barrier (bid, g);
          rotate_or_halt t (vctx_of t thread)
        end
      | Thread.Spin_barrier _ | Thread.Blocked_barrier _ | Thread.Runnable
      | Thread.Spinning _ | Thread.Blocked_sem _ | Thread.Blocked_sleep | Thread.Paused
      | Thread.Finished ->
        ())

(* A blocked thread became runnable (semaphore token or launch). *)
and wake_thread t (thread : Thread.t) =
  let vc = vctx_of t thread in
  if vc.online then begin
    match Gsched.active vc.gsched with
    | None ->
      Gsched.set_active vc.gsched (Some thread);
      resume_active t vc
    | Some _ -> () (* picked up at the next rotation/dispatch *)
  end
  else Sim_vmm.Vmm.vcpu_wake t.vmm vc.vcpu

(* The active thread can no longer execute: pick another, or halt the
   VCPU if none can. *)
and rotate_or_halt t vc =
  cancel_timer t vc;
  Gsched.set_active vc.gsched None;
  match Gsched.pick vc.gsched with
  | Some next ->
    Gsched.set_active vc.gsched (Some next);
    resume_active t vc
  | None -> halt_vcpu t vc

and halt_vcpu t vc =
  cancel_timer t vc;
  cancel_slice t vc;
  vc.online <- false;
  (* The VMM does not call on_preempted for guest-initiated blocks. *)
  Sim_vmm.Vmm.vcpu_block t.vmm vc.vcpu

(* Resume the active thread according to its status. *)
and resume_active t vc =
  match Gsched.active vc.gsched with
  | None -> ()
  | Some thread -> begin
    match thread.Thread.status with
    | Thread.Runnable -> continue_thread t vc thread
    | Thread.Spinning lock_id ->
      arm_ple t thread;
      handoff_check t (ensure_lock t lock_id)
    | Thread.Spin_barrier (bid, gen) ->
      let barrier = get_barrier t bid in
      if Barrier.passed barrier ~gen then
        schedule_untracked t ~delay:t.params.flag_latency (fun () ->
            barrier_proceed t barrier thread)
      else begin
        arm_spin_grace t thread bid gen;
        arm_ple t thread
      end
    | Thread.Blocked_barrier _ | Thread.Blocked_sem _ | Thread.Blocked_sleep | Thread.Paused
    | Thread.Finished ->
      rotate_or_halt t vc
  end

(* ----- timeslice rotation ----- *)

let rec arm_slice t vc =
  cancel_slice t vc;
  if Gsched.thread_count vc.gsched > 1 then begin
    let h =
      Engine.schedule_after t.engine ~delay:(Gsched.timeslice vc.gsched)
        (fun () ->
          vc.slice_timer <- None;
          if vc.online then begin
            (match Gsched.active vc.gsched with
            | Some active
              when Thread.is_preemptible_by_guest active
                   && Gsched.executable_count vc.gsched > 1 -> begin
              (* Save the active thread's progress and rotate. *)
              cancel_timer t vc;
              if thread_mid_compute active then
                active.Thread.pending_compute <-
                  max 0
                    (active.Thread.pending_compute
                    - (now t - active.Thread.compute_started));
              match Gsched.pick vc.gsched with
              | Some next when next != active ->
                Gsched.set_active vc.gsched (Some next);
                resume_active t vc
              | Some _ | None -> resume_active t vc
            end
            | Some _ | None -> ());
            arm_slice t vc
          end)
    in
    vc.slice_timer <- Some h
  end

and thread_mid_compute (thread : Thread.t) =
  thread.Thread.status = Thread.Runnable && thread.Thread.pending_compute > 0

(* ----- VCPU hooks ----- *)

let on_scheduled t vc () =
  vc.online <- true;
  (match Gsched.active vc.gsched with
  | Some active when Thread.is_executable active -> resume_active t vc
  | Some _ | None -> begin
    match Gsched.pick vc.gsched with
    | Some next ->
      Gsched.set_active vc.gsched (Some next);
      resume_active t vc
    | None -> halt_vcpu t vc
  end);
  if vc.online then arm_slice t vc

let on_preempted t vc () =
  vc.online <- false;
  cancel_slice t vc;
  (match vc.timer with
  | Some h ->
    Engine.cancel t.engine h;
    vc.timer <- None;
    (match Gsched.active vc.gsched with
    | Some active when thread_mid_compute active ->
      active.Thread.pending_compute <-
        max 0
          (active.Thread.pending_compute
          - (now t - active.Thread.compute_started))
    | Some _ | None -> ())
  | None -> ())

(* ----- construction ----- *)

let create ?params:params_opt vmm domain () =
  let cpu = Sim_vmm.Vmm.cpu_model vmm in
  let params =
    match params_opt with Some p -> p | None -> default_params cpu
  in
  let engine = Sim_vmm.Vmm.engine vmm in
  let rng = Rng.split (Engine.rng engine) in
  let hypercall = Sim_vmm.Hypercall.create vmm in
  let monitor =
    Monitor.create params.monitor ~engine ~hypercall ~domain
      ~rng:(Rng.split rng)
  in
  let t =
    {
      vmm;
      domain;
      engine;
      params;
      hypercall;
      monitor;
      rng;
      locks = Hashtbl.create 16;
      sems = Hashtbl.create 8;
      barriers = Hashtbl.create 8;
      vcpus =
        Array.map
          (fun vcpu ->
            {
              vcpu;
              gsched = Gsched.create ~timeslice:params.timeslice;
              online = false;
              timer = None;
              slice_timer = None;
            })
          domain.Sim_vmm.Domain.vcpus;
      threads_rev = [];
      next_thread_id = 0;
      round_hook = (fun _ ~round:_ ~duration:_ -> ());
      finished_hook = (fun _ -> ());
      launched = false;
      halted = false;
      frozen = false;
      pending_untracked = 0;
    }
  in
  Array.iter
    (fun vc ->
      Sim_vmm.Vcpu.set_hooks vc.vcpu
        {
          Sim_vmm.Vcpu.on_scheduled = on_scheduled t vc;
          on_preempted = on_preempted t vc;
        })
    t.vcpus;
  t

let add_thread t ?(restart = false) ~affinity program =
  if t.launched then failwith "Kernel.add_thread: kernel already launched";
  List.iter
    (fun id ->
      if not (Hashtbl.mem t.sems id) then
        invalid_arg (Printf.sprintf "Kernel.add_thread: undeclared semaphore %d" id))
    (Program.semaphores_referenced program);
  List.iter
    (fun id ->
      if not (Hashtbl.mem t.barriers id) then
        invalid_arg (Printf.sprintf "Kernel.add_thread: undeclared barrier %d" id))
    (Program.barriers_referenced program);
  let id = t.next_thread_id in
  t.next_thread_id <- t.next_thread_id + 1;
  let affinity = affinity mod Array.length t.vcpus in
  let thread =
    Thread.make ~id ~affinity ~restart ~rng:(Rng.split t.rng) program
  in
  t.threads_rev <- thread :: t.threads_rev;
  Gsched.add t.vcpus.(affinity).gsched thread;
  thread

(* ----- decoupled-VMM domain migration ----- *)

(* The kernel-side quiescence gate: no VCPU online (every per-VCPU
   compute/slice timer is cancelled on preemption and halt, so a
   fully-offline domain holds none) and no untracked timer in flight.
   Only then does the kernel own zero events on the current engine
   and the domain may leave this host. *)
let quiescent t =
  t.pending_untracked = 0
  && Array.for_all
       (fun vc -> (not vc.online) && vc.timer = None && vc.slice_timer = None)
       t.vcpus

(* Domain migration is a two-phase handoff. [park] runs on the source
   host (inside the grant decision): it verifies quiescence and
   cancels the monitor's pending window event — a source-engine queue
   mutation only the source side may perform. [retarget] runs on the
   destination host one fabric window later: every closure the kernel
   will schedule from here on reads [t.engine]/[t.vmm] through [t],
   so the swap is complete and the VCPU hooks installed at creation
   remain valid. *)
(* Ask the guest to drain: every thread retires at its next
   instruction boundary (lock holders first unwind their critical
   sections, spinners fall back to futex sleeps via the usual grace
   path), after which all VCPUs halt and the pending untracked timers
   fire out — the domain converges to {!quiescent} without outside
   help.  Idempotent; callers poll [quiescent] to learn when the
   drain has landed. *)
let request_halt t = t.halted <- true
let halt_requested t = t.halted

(* Reversible sibling of [request_halt] for stop-and-copy migration:
   the guest drains to {!quiescent} with every thread [Paused] (or in
   a wait that the drain leaves intact), ready to be parked, shipped
   and resumed.  [thaw] runs on the destination after [retarget] +
   [Vmm.attach_domain]; it wakes each paused thread, which refetches
   from the cursor it froze at — no guest progress is lost. *)
let request_freeze t = t.frozen <- true
let freeze_requested t = t.frozen

let thaw t =
  t.frozen <- false;
  List.iter
    (fun (th : Thread.t) ->
      if th.Thread.status = Thread.Paused then begin
        th.Thread.status <- Thread.Runnable;
        wake_thread t th
      end)
    (List.rev t.threads_rev)

let park t =
  if not (quiescent t) then failwith "Kernel.park: kernel not quiescent";
  Monitor.park t.monitor

let retarget t ~vmm =
  if not (quiescent t) then failwith "Kernel.retarget: kernel not quiescent";
  t.vmm <- vmm;
  t.engine <- Sim_vmm.Vmm.engine vmm;
  Sim_vmm.Hypercall.retarget t.hypercall ~vmm;
  Monitor.retarget t.monitor ~engine:t.engine

let set_round_hook t hook = t.round_hook <- hook

let set_finished_hook t hook = t.finished_hook <- hook

let launch t =
  if t.launched then failwith "Kernel.launch: already launched";
  t.launched <- true;
  let start = now t in
  List.iter (fun (th : Thread.t) -> th.Thread.round_started <- start) t.threads_rev;
  Array.iter
    (fun vc ->
      if Gsched.executable_count vc.gsched > 0 then
        Sim_vmm.Vmm.vcpu_wake t.vmm vc.vcpu)
    t.vcpus

let min_rounds t =
  match t.threads_rev with
  | [] -> 0
  | threads ->
    List.fold_left
      (fun acc (th : Thread.t) -> min acc th.Thread.rounds)
      max_int threads

let total_marks t =
  List.fold_left (fun acc (th : Thread.t) -> acc + th.Thread.marks) 0 t.threads_rev

let reset_marks t =
  List.iter (fun (th : Thread.t) -> th.Thread.marks <- 0) t.threads_rev

let all_finished t =
  t.threads_rev <> []
  && List.for_all
       (fun (th : Thread.t) -> th.Thread.status = Thread.Finished)
       t.threads_rev

let total_spin_cycles t =
  List.fold_left
    (fun acc (th : Thread.t) -> acc + th.Thread.total_spin_cycles)
    0 t.threads_rev
