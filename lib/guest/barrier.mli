(** Sense-reversing busy-wait barrier (OpenMP-style).

    Arrival is protected by an internal guest-kernel spinlock (so the
    arrival path is monitored like any kernel lock — this is where NAS
    benchmarks contend); non-last threads then spin on the generation
    word until the last arrival bumps it. The spin is a busy wait: a
    waiting thread occupies its VCPU, so de-synchronized sibling VCPUs
    make barriers dramatically more expensive — the second mechanism
    (besides lock-holder preemption) behind Figure 1's degradation. *)

type t

val create : id:int -> parties:int -> t
(** Raises [Invalid_argument] unless [parties >= 1]. *)

val id : t -> int

val parties : t -> int

val lock : t -> Spinlock.t
(** The internal arrival lock. *)

val generation : t -> int

val arrive : t -> now:int -> [ `Last | `Wait of int ]
(** Record one arrival (caller must hold {!lock}). [`Last] means this
    arrival completes the barrier: the generation has been bumped and
    the caller should release waiters. [`Wait gen] tells the caller to
    spin until [generation t > gen]. *)

val passed : t -> gen:int -> bool
(** Has the barrier opened for a thread that arrived in [gen]? *)

val crossings : t -> int
(** Completed barrier episodes. *)

val longest_episode : t -> int
(** Longest wall-clock time between the first arrival and the opening
    of an episode. *)
