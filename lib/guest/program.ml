type op =
  | Compute of int
  | Compute_rand of { mean : int; cv : float }
  | Lock of int
  | Unlock of int
  | Sem_wait of int
  | Sem_post of int
  | Barrier of int
  | Mark
  | Sleep of int
  | Repeat of int * op list

type instr =
  | I_compute of int
  | I_lock of int
  | I_unlock of int
  | I_sem_wait of int
  | I_sem_post of int
  | I_barrier of int
  | I_mark
  | I_sleep of int

type t = { ops : op list }

let rec validate ops =
  List.iter
    (fun op ->
      match op with
      | Compute n -> if n < 0 then invalid_arg "Program: negative compute"
      | Compute_rand { mean; cv } ->
        if mean <= 0 then invalid_arg "Program: non-positive compute mean";
        if cv < 0. then invalid_arg "Program: negative cv"
      | Sleep n -> if n <= 0 then invalid_arg "Program: non-positive sleep"
      | Repeat (n, body) ->
        if n < 0 then invalid_arg "Program: negative repeat count";
        validate body
      | Lock _ | Unlock _ | Sem_wait _ | Sem_post _ | Barrier _ | Mark -> ())
    ops

let make ops =
  validate ops;
  { ops }

let ops t = t.ops

let rec count_ops ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Repeat (n, body) -> acc + (n * count_ops body)
      | Compute _ | Compute_rand _ | Lock _ | Unlock _ | Sem_wait _ | Sem_post _
      | Barrier _ | Mark | Sleep _ ->
        acc + 1)
    0 ops

let static_instr_count t = count_ops t.ops

let rec compute_cycles ops =
  List.fold_left
    (fun acc op ->
      match op with
      | Compute n -> acc + n
      | Compute_rand { mean; _ } -> acc + mean
      | Repeat (n, body) -> acc + (n * compute_cycles body)
      | Lock _ | Unlock _ | Sem_wait _ | Sem_post _ | Barrier _ | Mark
      | Sleep _ ->
        acc)
    0 ops

let total_compute_cycles t = compute_cycles t.ops

(* The cursor is a stack of frames: the ops remaining at each nesting
   level plus the iterations left for that level's loop body. *)
type frame = { mutable rest : op list; body : op list; mutable iters_left : int }

type cursor = { program : t; mutable stack : frame list }

let cursor program =
  { program; stack = [ { rest = program.ops; body = []; iters_left = 0 } ] }

let reset c =
  c.stack <- [ { rest = c.program.ops; body = []; iters_left = 0 } ]

let rec next c ~rng =
  match c.stack with
  | [] -> None
  | frame :: parents -> begin
    match frame.rest with
    | [] ->
      if frame.iters_left > 0 then begin
        frame.iters_left <- frame.iters_left - 1;
        frame.rest <- frame.body;
        next c ~rng
      end
      else begin
        c.stack <- parents;
        next c ~rng
      end
    | op :: rest ->
      frame.rest <- rest;
      (match op with
      | Compute n -> Some (I_compute n)
      | Compute_rand { mean; cv } ->
        let n =
          Sim_engine.Rng.lognormal_cv rng ~mean:(float_of_int mean) ~cv
        in
        Some (I_compute (max 1 (int_of_float n)))
      | Lock id -> Some (I_lock id)
      | Unlock id -> Some (I_unlock id)
      | Sem_wait id -> Some (I_sem_wait id)
      | Sem_post id -> Some (I_sem_post id)
      | Barrier id -> Some (I_barrier id)
      | Mark -> Some I_mark
      | Sleep n -> Some (I_sleep n)
      | Repeat (n, body) ->
        if n = 0 || body = [] then next c ~rng
        else begin
          c.stack <- { rest = body; body; iters_left = n - 1 } :: c.stack;
          next c ~rng
        end)
  end

let referenced ~f t =
  let rec collect acc ops =
    List.fold_left
      (fun acc op ->
        match f op with
        | Some id -> id :: acc
        | None -> ( match op with Repeat (_, body) -> collect acc body | _ -> acc))
      acc ops
  in
  List.sort_uniq compare (collect [] t.ops)

let locks_referenced t =
  referenced t ~f:(function Lock id | Unlock id -> Some id | _ -> None)

let barriers_referenced t =
  referenced t ~f:(function Barrier id -> Some id | _ -> None)

let semaphores_referenced t =
  referenced t ~f:(function Sem_wait id | Sem_post id -> Some id | _ -> None)
