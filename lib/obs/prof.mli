(** Wall-clock self-profiler: named sections accumulating
    (total seconds, call count).

    The clock is injected (pass [Unix.gettimeofday]) so this library
    stays dependency-free. Thread-safe: Pool workers in other
    domains may time into the same profiler. *)

type section = { label : string; total_sec : float; calls : int }

type t

val create : ?clock:(unit -> float) -> unit -> t
(** Default clock always returns 0 (sections record calls only). *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, charging its wall time to the section — even on
    exceptions. *)

val add : t -> string -> float -> unit
(** Charge [sec] seconds to a section directly. *)

val sections : t -> section list
(** Sorted by label. *)

val reset : t -> unit

val to_text : t -> string

val to_json_fragment : t -> string
(** Comma-separated JSON objects (no brackets) for embedding in
    BENCH_*.json. *)
