(* Wall-clock self-profiling of the simulator itself: named sections
   accumulating (total seconds, calls). The clock is injected so this
   library needs no unix dependency; callers pass
   Unix.gettimeofday. Mutex-protected because Pool workers in other
   domains time their jobs into the same profiler. *)

type section = { label : string; total_sec : float; calls : int }

type t = {
  clock : unit -> float;
  mu : Mutex.t;
  tbl : (string, float ref * int ref) Hashtbl.t;
}

let create ?(clock = fun () -> 0.) () =
  { clock; mu = Mutex.create (); tbl = Hashtbl.create 16 }

let add t label sec =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.tbl label with
  | Some (total, calls) ->
    total := !total +. sec;
    incr calls
  | None -> Hashtbl.replace t.tbl label (ref sec, ref 1));
  Mutex.unlock t.mu

let time t label f =
  let t0 = t.clock () in
  Fun.protect ~finally:(fun () -> add t label (t.clock () -. t0)) f

let sections t =
  Mutex.lock t.mu;
  let out =
    Hashtbl.fold
      (fun label (total, calls) acc ->
        { label; total_sec = !total; calls = !calls } :: acc)
      t.tbl []
  in
  Mutex.unlock t.mu;
  List.sort (fun a b -> compare a.label b.label) out

let reset t =
  Mutex.lock t.mu;
  Hashtbl.reset t.tbl;
  Mutex.unlock t.mu

let to_text t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "profile (wall-clock per section):\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-32s %10.3f s  %8d calls\n" s.label s.total_sec
           s.calls))
    (sections t);
  Buffer.contents buf

let to_json_fragment t =
  sections t
  |> List.map (fun s ->
         Printf.sprintf "{\"label\":\"%s\",\"total_sec\":%.6f,\"calls\":%d}"
           s.label s.total_sec s.calls)
  |> String.concat ","
