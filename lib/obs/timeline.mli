(** Per-PCPU scheduling timeline (gantt rows) derived from the
    [Sched] events of a trace. *)

type segment = {
  pcpu : int;
  vcpu : int;
  domain : int;
  start : int;
  stop : int;  (** exclusive; cycles *)
}

type t

val of_entries : ?stop_at:int -> pcpus:int -> Trace.entry list -> t
(** Reconstruct occupancy from [Sched_switch]/[Sched_idle]/
    [Sched_block]. A slice still open at the end is closed at
    [stop_at] (default: the last event's timestamp). *)

val segments : t -> segment list
(** All rows, ordered by start time then PCPU. *)

val running_intervals : t -> vcpu:int -> (int * int) list
(** When this VCPU held a PCPU, in time order. *)

val descheduled_in : t -> vcpu:int -> from_:int -> until:int -> int
(** Cycles within [[from_, until]] during which [vcpu] was not
    running on any PCPU. *)

val to_text : ?vm_names:(int * string) list -> t -> string
