(* Named counters / gauges / histograms registered by subsystem.

   A registry is per-simulation (created by the Vmm), not global, so
   parallel Pool jobs running in separate domains never share one and
   snapshots stay deterministic at any -j. Counters are mutable ints
   bumped on the owner's hot path; gauges are closures evaluated only
   at snapshot time, which is how existing subsystem counters
   (ctx_switches, ipis_sent, ...) join the registry without moving. *)

type key = { subsystem : string; name : string; vm : string option }

let key_compare a b =
  match compare a.subsystem b.subsystem with
  | 0 -> (
    match compare a.name b.name with 0 -> compare a.vm b.vm | c -> c)
  | c -> c

let key_to_string k =
  match k.vm with
  | None -> Printf.sprintf "%s/%s" k.subsystem k.name
  | Some vm -> Printf.sprintf "%s/%s{vm=%s}" k.subsystem k.name vm

type counter = { mutable count : int }

let incr ?(by = 1) c = c.count <- c.count + by

let value c = c.count

(* Log2-bucketed histogram: bucket i counts values v with
   2^(i-1) <= v < 2^i (bucket 0 counts v <= 0 and v = 1 in bucket 1
   per the bits-based rule below). 63 buckets cover every OCaml int. *)
type histogram = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits v 0

let observe h v =
  let b = bucket_of v in
  let b = if b >= Array.length h.buckets then Array.length h.buckets - 1 else b in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

type instrument =
  | Counter of counter
  | Gauge of (unit -> int)
  | Histogram of histogram

type t = { mutable items : (key * instrument) list }

let create () = { items = [] }

let register t key inst =
  (* Last registration wins; keeps re-arming idempotent. *)
  t.items <- (key, inst) :: List.remove_assoc key t.items

let counter t ~subsystem ?vm ~name () =
  let c = { count = 0 } in
  register t { subsystem; name; vm } (Counter c);
  c

let gauge t ~subsystem ?vm ~name f =
  register t { subsystem; name; vm } (Gauge f)

let histogram t ~subsystem ?vm ~name () =
  let h = { buckets = Array.make 63 0; h_count = 0; h_sum = 0; h_max = 0 } in
  register t { subsystem; name; vm } (Histogram h);
  h

(* ----- snapshots ----- *)

type value =
  | Int of int
  | Hist of { count : int; sum : int; max : int; buckets : int array }

type sample = { key : key; value : value }

type snapshot = sample list

let snapshot t : snapshot =
  t.items
  |> List.map (fun (key, inst) ->
         let value =
           match inst with
           | Counter c -> Int c.count
           | Gauge f -> Int (f ())
           | Histogram h ->
             Hist
               { count = h.h_count; sum = h.h_sum; max = h.h_max;
                 buckets = Array.copy h.buckets }
         in
         { key; value })
  |> List.sort (fun a b -> key_compare a.key b.key)

(* Subtract [base] from [snap] pointwise; keys absent from base pass
   through. Histograms don't diff (windowed histograms reset instead),
   so they pass through too. *)
let diff ~base snap =
  let base_int key =
    List.find_map
      (fun s ->
        if key_compare s.key key = 0 then
          match s.value with Int v -> Some v | Hist _ -> None
        else None)
      base
  in
  List.map
    (fun s ->
      match s.value with
      | Int v -> (
        match base_int s.key with
        | Some b -> { s with value = Int (v - b) }
        | None -> s)
      | Hist _ -> s)
    snap

let find snap ~subsystem ?vm ~name () =
  List.find_map
    (fun s ->
      if
        s.key.subsystem = subsystem && s.key.name = name && s.key.vm = vm
      then
        match s.value with Int v -> Some v | Hist _ -> None
      else None)
    snap

let get snap ~subsystem ?vm ~name () =
  match find snap ~subsystem ?vm ~name () with Some v -> v | None -> 0

(* ----- rendering ----- *)

let to_text snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      match s.value with
      | Int v ->
        Buffer.add_string buf
          (Printf.sprintf "%-48s %12d\n" (key_to_string s.key) v)
      | Hist h ->
        Buffer.add_string buf
          (Printf.sprintf "%-48s count=%d sum=%d max=%d\n"
             (key_to_string s.key) h.count h.sum h.max))
    snap;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let sample_json s =
    let vm_field =
      match s.key.vm with
      | None -> ""
      | Some vm -> Printf.sprintf ",\"vm\":\"%s\"" (json_escape vm)
    in
    match s.value with
    | Int v ->
      Printf.sprintf
        "    {\"subsystem\":\"%s\",\"name\":\"%s\"%s,\"value\":%d}"
        (json_escape s.key.subsystem)
        (json_escape s.key.name) vm_field v
    | Hist h ->
      let nonzero =
        Array.to_list h.buckets
        |> List.mapi (fun i c -> (i, c))
        |> List.filter (fun (_, c) -> c > 0)
        |> List.map (fun (i, c) -> Printf.sprintf "\"%d\":%d" i c)
        |> String.concat ","
      in
      Printf.sprintf
        "    {\"subsystem\":\"%s\",\"name\":\"%s\"%s,\"count\":%d,\
         \"sum\":%d,\"max\":%d,\"log2_buckets\":{%s}}"
        (json_escape s.key.subsystem)
        (json_escape s.key.name) vm_field h.count h.sum h.max nonzero
  in
  Printf.sprintf "{\n  \"metrics\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map sample_json snap))
