(** Structured event tracing: a bounded ring-buffer sink of typed,
    timestamped events with per-category enable masks.

    The overhead contract: with tracing disabled (the default,
    mask 0), the only cost at an instrumented call site is the
    {!on} guard — one load, one mask, one branch — because call
    sites are written

    {[ if Trace.on tr Trace.Sched then
         Trace.emit tr ~now (Trace.Sched_switch { ... }) ]}

    so the event payload is never even allocated. *)

(** {1 Categories} *)

type category =
  | Sched  (** context switches, idling, blocking *)
  | Credit  (** credit accounting ticks *)
  | Vcrd  (** VCRD High/Low transitions *)
  | Gang  (** coscheduling launches, acks, watchdog actions *)
  | Ipi  (** inter-processor interrupts *)
  | Spin  (** over-threshold spinlock waits, PLE exits *)
  | Fault  (** injected faults *)
  | Invariant  (** runtime invariant violations *)

val cat_bit : category -> int
val cat_name : category -> string
val categories : category list

val all_mask : int
(** Every category enabled. *)

val mask_of_string : string -> (int, string) result
(** Parse ["sched,gang"]-style comma-separated category lists;
    ["all"] means {!all_mask}. *)

(** {1 Events} — integer-only payloads so every subsystem can emit. *)

type event =
  | Sched_switch of { pcpu : int; vcpu : int; domain : int }
  | Sched_idle of { pcpu : int }
  | Sched_block of { pcpu : int; vcpu : int; domain : int }
  | Credit_account of { vcpu : int; domain : int; credit : int; burned : int }
  | Vcrd_change of { domain : int; high : bool }
  | Gang_launch of { domain : int; pcpu : int; ipis : int; retry : bool }
  | Gang_ack of { domain : int; pcpu : int }
  | Gang_timeout of { domain : int; strikes : int }
  | Gang_retry of { domain : int; delay : int }
  | Gang_demote of { domain : int; until : int }
  | Ipi_sent of { src : int; dst : int; cross : bool }
  | Spin_overthreshold of {
      domain : int;
      vcpu : int;
      lock_id : int;
      wait : int;
      holder : int;  (** holder VCPU id at wait begin; -1 = unknown *)
    }
  | Fault_injected of { kind : int; pcpu : int; info : int }
  | Invariant_violation of { domain : int }
  | Ple_exit of { vcpu : int; domain : int }

(** Codes for [Fault_injected.kind]. *)

val fault_ipi_dropped : int
val fault_ipi_delayed : int
val fault_tick_suppressed : int
val fault_vcrd_dropped : int
val fault_vcrd_corrupted : int
val fault_pcpu_stall : int
val fault_pcpu_offline : int
val fault_pcpu_restore : int
val fault_kind_name : int -> string

val category_of : event -> category
val event_name : event -> string

val event_fields : event -> (string * int) list
(** Payload as (field, value) pairs in a stable order. *)

type entry = { at : int; ev : event }

(** {1 The sink} *)

type t

val create : unit -> t
(** Disabled: mask 0, zero-capacity ring. *)

val default_cap : int

val enable : ?cap:int -> t -> mask:int -> unit
(** Set the category mask and (re)allocate the ring to [cap]
    (default {!default_cap}) if the capacity changes. *)

val disable : t -> unit
val mask : t -> int

val on : t -> category -> bool
(** The one-branch hot-path guard. *)

val emit : t -> now:int -> event -> unit
(** Record unconditionally — call only under an {!on} guard. *)

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val dropped : t -> int
(** Events lost to ring overflow. *)

val clear : t -> unit

(** {1 Exporters} *)

val to_csv : t -> string
(** [time,category,event,args] rows; args are [k=v] pairs joined
    with [;]. *)

val to_jsonl : t -> string
(** One JSON object per line: [{"t":..,"cat":..,"ev":..,<fields>}]. *)

val chrome_events_into :
  Buffer.t ->
  ?pid:int ->
  ?process_name:string ->
  ?vm_names:(int * string) list ->
  freq_hz:int ->
  pcpus:int ->
  t ->
  unit
(** Append this trace's Chrome [trace_event] objects (comma-separated,
    no brackets) so several scenarios can share one [traceEvents]
    array, each under its own [pid]. Tracks: tid 0..pcpus-1 are PCPU
    gantt rows ("X" slices reconstructed from Sched_* events); tid
    100+domain are per-VM instant tracks. [ts] is microseconds. *)

val to_chrome_json :
  ?pid:int ->
  ?process_name:string ->
  ?vm_names:(int * string) list ->
  freq_hz:int ->
  pcpus:int ->
  t ->
  string
(** Complete [{"traceEvents":[...]}] document for
    [chrome://tracing] / Perfetto. *)
