(* Lock-holder-preemption diagnostics: join the over-threshold
   spinlock waits from the trace against the scheduling timeline and
   classify each wait as *preempted-holder* (the VCPU holding the
   lock was off-CPU for a meaningful share of the wait — classic LHP,
   the pathology the paper's coscheduler removes) or *contended* (the
   holder kept running; the wait was plain contention). *)

type classification = Preempted_holder | Contended

type wait = {
  at : int;  (** wait end (when the monitor recorded it) *)
  domain : int;
  vcpu : int;
  lock_id : int;
  wait_cycles : int;
  holder : int;  (** -1 = unknown (barrier flag spins) *)
  descheduled : int;  (** holder cycles off-CPU inside the wait span *)
  cls : classification;
}

type report = {
  total : int;
  preempted : int;
  contended : int;
  preempted_share : float;
  by_domain : (int * int * int) list;  (** domain, preempted, contended *)
  waits : wait list;
}

(* A wait recorded at [at] with duration [w] spans [at - w, at]. The
   holder VCPU was captured at wait begin; with fixed thread affinity
   it is the holder for the whole span. holder = -1 (barrier spins,
   no lock owner) falls back to the most-descheduled sibling VCPU of
   the same domain — the spun-on flag setter is one of them. *)
let classify ?(frac = 0.1) ~(timeline : Timeline.t) entries =
  let domain_vcpus = Hashtbl.create 16 in
  List.iter
    (fun (s : Timeline.segment) ->
      let vs =
        Option.value ~default:[] (Hashtbl.find_opt domain_vcpus s.domain)
      in
      if not (List.mem s.vcpu vs) then
        Hashtbl.replace domain_vcpus s.domain (s.vcpu :: vs))
    (Timeline.segments timeline);
  let waits =
    List.filter_map
      (fun { Trace.at; ev } ->
        match ev with
        | Trace.Spin_overthreshold { domain; vcpu; lock_id; wait; holder } ->
          let from_ = max 0 (at - wait) and until = at in
          let descheduled =
            if holder >= 0 then
              Timeline.descheduled_in timeline ~vcpu:holder ~from_ ~until
            else
              (* Unknown holder: max over sibling VCPUs. *)
              Hashtbl.find_opt domain_vcpus domain
              |> Option.value ~default:[]
              |> List.filter (fun v -> v <> vcpu)
              |> List.fold_left
                   (fun acc v ->
                     max acc
                       (Timeline.descheduled_in timeline ~vcpu:v ~from_
                          ~until))
                   0
          in
          let cls =
            if wait > 0 && float_of_int descheduled
                           >= frac *. float_of_int wait
            then Preempted_holder
            else Contended
          in
          Some
            { at; domain; vcpu; lock_id; wait_cycles = wait; holder;
              descheduled; cls }
        | _ -> None)
      entries
  in
  let total = List.length waits in
  let preempted =
    List.length (List.filter (fun w -> w.cls = Preempted_holder) waits)
  in
  let contended = total - preempted in
  let by_domain =
    waits
    |> List.fold_left
         (fun acc w ->
           let p, c =
             Option.value ~default:(0, 0) (List.assoc_opt w.domain acc)
           in
           let p, c =
             match w.cls with
             | Preempted_holder -> (p + 1, c)
             | Contended -> (p, c + 1)
           in
           (w.domain, (p, c)) :: List.remove_assoc w.domain acc)
         []
    |> List.map (fun (d, (p, c)) -> (d, p, c))
    |> List.sort compare
  in
  let preempted_share =
    if total = 0 then 0. else float_of_int preempted /. float_of_int total
  in
  { total; preempted; contended; preempted_share; by_domain; waits }

let to_text ?vm_names r =
  let vm_name d =
    match Option.bind vm_names (List.assoc_opt d) with
    | Some n -> n
    | None -> Printf.sprintf "dom%d" d
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "over-threshold spin waits: %d total — %d preempted-holder (%.1f%%), \
        %d contended\n"
       r.total r.preempted (100. *. r.preempted_share) r.contended);
  List.iter
    (fun (d, p, c) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s preempted-holder %4d   contended %4d\n"
           (vm_name d) p c))
    r.by_domain;
  Buffer.contents buf
