(** Bounded ring buffer with drop accounting.

    Shared by {!Trace} (the event sink) and the guest Monitoring
    Module's spinlock trace, so both bound memory the same way: once
    [cap] elements are held, each further push overwrites the oldest
    element and increments {!dropped}. *)

type 'a t

val create : cap:int -> 'a t
(** A ring holding at most [cap] elements. [cap = 0] drops
    everything. The backing array is allocated on the first push.
    Raises [Invalid_argument] on a negative capacity. *)

val capacity : 'a t -> int

val length : 'a t -> int

val dropped : 'a t -> int
(** Elements overwritten (or refused by a zero-capacity ring) over the
    ring's lifetime; {!clear} does not reset it. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest first. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit
(** Empty the ring; the drop count survives. *)
