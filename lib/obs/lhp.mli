(** Lock-holder-preemption diagnostics.

    Joins [Spin_overthreshold] trace events against the scheduling
    {!Timeline} and classifies each over-threshold wait as
    [Preempted_holder] (the lock-holding VCPU was descheduled for a
    meaningful share of the wait — the pathology coscheduling
    removes) or [Contended] (the holder kept running). *)

type classification = Preempted_holder | Contended

type wait = {
  at : int;  (** wait end timestamp, cycles *)
  domain : int;
  vcpu : int;
  lock_id : int;
  wait_cycles : int;
  holder : int;  (** -1 = unknown (barrier flag spins) *)
  descheduled : int;  (** holder cycles off-CPU during the wait span *)
  cls : classification;
}

type report = {
  total : int;
  preempted : int;
  contended : int;
  preempted_share : float;  (** preempted / total, 0 if no waits *)
  by_domain : (int * int * int) list;  (** domain, preempted, contended *)
  waits : wait list;
}

val classify :
  ?frac:float -> timeline:Timeline.t -> Trace.entry list -> report
(** A wait of [w] cycles ending at [at] spans [[at-w, at]]; it is
    [Preempted_holder] when the holder was descheduled for at least
    [frac] (default 0.1) of the span. When the holder is unknown
    (-1), the most-descheduled sibling VCPU of the same domain stands
    in. *)

val to_text : ?vm_names:(int * string) list -> report -> string
